package pipette_test

import (
	"strings"
	"testing"

	"pipette"
)

// TestQuickstartFlow exercises the public API end to end, as the README's
// quickstart does.
func TestQuickstartFlow(t *testing.T) {
	g := pipette.RoadGraph(24, 24, 42)
	cfg := pipette.DefaultConfig()
	sys := pipette.NewSystem(cfg)
	r, err := pipette.Run(sys, pipette.BFSPipette(g, 0, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.IPC() <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

// TestCustomProgramAPI builds a small Pipette pipeline directly against the
// public API: producer -> indirect RA -> consumer with a CV terminator.
func TestCustomProgramAPI(t *testing.T) {
	sys := pipette.NewSystem(pipette.DefaultConfig())
	const n = 64
	table := sys.Mem.AllocWords(n)
	var want uint64
	for i := uint64(0); i < n; i++ {
		sys.Mem.Write64(table+i*8, i*7)
		want += i * 7
	}
	res := sys.Mem.AllocWords(1)

	p := pipette.NewProgram("producer")
	p.MapQ(26, 0, pipette.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.Mov(26, 1)
	p.AddI(1, 1, 1)
	p.BneI(1, n, "loop")
	p.EnqCI(0, 0)
	p.Halt()

	c := pipette.NewProgram("consumer")
	c.MapQ(27, 1, pipette.QueueOut)
	c.OnDeqCV("done")
	c.MovI(1, 0)
	c.Label("loop")
	c.Add(1, 1, 27)
	c.Jmp("loop")
	c.Label("done")
	c.MovU(2, res)
	c.St8(2, 0, 1)
	c.Halt()

	core := sys.Cores[0]
	core.Load(0, p.MustLink())
	core.Load(1, c.MustLink())
	pipette.NewRA(core, pipette.RAConfig{Mode: pipette.RAIndirect, In: 0, Out: 1, Base: table})

	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Mem.Read64(res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestExperimentNames(t *testing.T) {
	names := pipette.ExperimentNames()
	if len(names) == 0 {
		t.Fatal("no experiments")
	}
	var sb strings.Builder
	if err := pipette.RunExperiment("table3", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2356") {
		t.Fatalf("table3 output wrong:\n%s", sb.String())
	}
	if err := pipette.RunExperiment("nope", &sb); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}
