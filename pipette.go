// Package pipette is a from-scratch reproduction of "Pipette: Improving
// Core Utilization on Irregular Applications through Intra-Core Pipeline
// Parallelism" (Nguyen & Sanchez, MICRO 2020).
//
// It provides:
//
//   - A cycle-level simulator of multithreaded out-of-order cores extended
//     with the Pipette ISA: architecturally visible inter-thread FIFO queues
//     implemented in the physical register file, register-mapped implicit
//     enqueue/dequeue, control values with user-level enqueue/dequeue
//     handlers, skip_to_ctrl, reference accelerators, and cross-core
//     connectors (NewSystem, Config).
//   - An assembler for the simulated ISA so new pipeline-parallel kernels
//     can be written against the public API (NewProgram).
//   - The paper's six benchmarks (BFS, CC, PageRank-Delta, Radii, SpMM,
//     Silo) in serial, data-parallel, Pipette, and streaming variants
//     (the bench sub-API re-exported here), and
//   - The experiment harness that regenerates every figure and table of the
//     paper's evaluation (RunExperiment; see EXPERIMENTS.md).
//
// # Quickstart
//
//	cfg := pipette.DefaultConfig()
//	sys := pipette.NewSystem(cfg)
//	g := pipette.RoadGraph(90, 90, 1)
//	result, err := pipette.Run(sys, pipette.BFSPipette(g, 0, 4, true))
//	fmt.Printf("cycles=%d IPC=%.2f\n", result.Cycles, result.IPC())
package pipette

import (
	"io"

	"pipette/internal/bench"
	"pipette/internal/graph"
	"pipette/internal/harness"
	"pipette/internal/isa"
	"pipette/internal/ra"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

// Config describes a simulated system (cores, SMT threads, memory
// hierarchy, Pipette queue configuration). See sim.Config for fields.
type Config = sim.Config

// System is a runnable simulated machine.
type System = sim.System

// Result summarizes a completed simulation.
type Result = sim.Result

// Builder constructs a workload inside a prepared system.
type Builder = bench.Builder

// Program is a linked instruction sequence for one hardware thread.
type Program = isa.Program

// Assembler builds programs in the simulated ISA, including the Pipette
// queue instructions.
type Assembler = isa.Assembler

// RAConfig programs a reference accelerator (Sec. IV-B).
type RAConfig = ra.Config

// Reg names an architectural register (r0 is hardwired zero; RHCV/RHQ
// receive the control value and queue id inside dequeue handlers).
type Reg = isa.Reg

// Handler registers.
const (
	RHCV = isa.RHCV
	RHQ  = isa.RHQ
)

// Queue binding directions for Assembler.MapQ: writes to an In-mapped
// register enqueue; reads of an Out-mapped register dequeue.
const (
	QueueIn  = isa.QueueIn
	QueueOut = isa.QueueOut
)

// RA access modes.
const (
	RAIndirect     = ra.Indirect
	RAIndirectPair = ra.IndirectPair
	RAScan         = ra.Scan
)

// Graph is a CSR graph (Fig. 1(c)).
type Graph = graph.Graph

// Matrix is a square sparse matrix with CSR and CSC views.
type Matrix = sparse.Matrix

// DefaultConfig returns the paper's Table IV system: one 4-thread SMT
// 6-wide OOO core with a 212-entry PRF and 16 Pipette queues.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewSystem builds a system; lay out data in sys.Mem and load programs on
// sys.Cores, or use a benchmark Builder with Run.
func NewSystem(cfg Config) *System { return sim.New(cfg) }

// NewProgram returns an assembler for a new thread program.
func NewProgram(name string) *Assembler { return isa.NewAssembler(name) }

// NewRA attaches a reference accelerator to a core.
var NewRA = ra.New

// Run builds the workload in the system, simulates to completion, and
// validates results against the reference implementation.
var Run = bench.Run

// Benchmark builders (see internal/bench for details).
var (
	BFSSerial       = bench.BFSSerial
	BFSDataParallel = bench.BFSDataParallel
	BFSPipette      = bench.BFSPipette
	BFSStreaming    = bench.BFSStreaming
	BFSMulticore    = bench.BFSMulticore

	CCSerial       = bench.CCSerial
	CCDataParallel = bench.CCDataParallel
	CCPipette      = bench.CCPipette
	CCStreaming    = bench.CCStreaming

	PRDSerial       = bench.PRDSerial
	PRDDataParallel = bench.PRDDataParallel
	PRDPipette      = bench.PRDPipette
	PRDStreaming    = bench.PRDStreaming

	RadiiSerial       = bench.RadiiSerial
	RadiiDataParallel = bench.RadiiDataParallel
	RadiiPipette      = bench.RadiiPipette
	RadiiStreaming    = bench.RadiiStreaming

	SpMMSerial       = bench.SpMMSerial
	SpMMDataParallel = bench.SpMMDataParallel
	SpMMPipette      = bench.SpMMPipette
	SpMMStreaming    = bench.SpMMStreaming

	SiloSerial       = bench.SiloSerial
	SiloDataParallel = bench.SiloDataParallel
	SiloPipette      = bench.SiloPipette
	SiloStreaming    = bench.SiloStreaming
)

// Graph generators shaped like the paper's Table V inputs.
var (
	RoadGraph          = graph.Road
	PowerLawGraph      = graph.PowerLaw
	UniformGraph       = graph.Uniform
	CollaborationGraph = graph.Collaboration
	CircuitGraph       = graph.Circuit
)

// Sparse matrix generators shaped like Table VI.
var (
	RandomMatrix = sparse.Random
	BandedMatrix = sparse.Banded
)

// RunExperiment regenerates one of the paper's tables or figures by name
// ("fig2", "fig9", ..., "table3"; ExperimentNames lists them) and writes the
// report to w.
func RunExperiment(name string, w io.Writer) error {
	return harness.Run(name, w, harness.Default(), harness.SweepOptions{})
}

// ExperimentNames lists the experiments RunExperiment accepts.
func ExperimentNames() []string { return harness.Names() }

// ParseAsm assembles a textual thread program (see internal/isa.ParseAsm
// for the syntax; examples/asm-pipeline uses it with embedded .s files).
var ParseAsm = isa.ParseAsm
