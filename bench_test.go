package pipette

import (
	"io"
	"os"
	"testing"

	"pipette/internal/harness"
)

// Each benchmark regenerates one of the paper's tables or figures (the full
// evaluation matrix is computed once and cached across benchmarks, so the
// first figure benchmark pays for the shared runs). Run with:
//
//	go test -bench=. -benchmem
//
// Set PIPETTE_BENCH_VERBOSE=1 to print the reproduced tables.
func benchOut() io.Writer {
	if os.Getenv("PIPETTE_BENCH_VERBOSE") != "" {
		return os.Stdout
	}
	return io.Discard
}

func runExp(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := harness.Run(name, benchOut(), harness.Default(), harness.SweepOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02BFS(b *testing.B)        { runExp(b, "fig2") }
func BenchmarkFig09Summary(b *testing.B)    { runExp(b, "fig9") }
func BenchmarkFig10Instr(b *testing.B)      { runExp(b, "fig10") }
func BenchmarkFig11CPI(b *testing.B)        { runExp(b, "fig11") }
func BenchmarkFig12Energy(b *testing.B)     { runExp(b, "fig12") }
func BenchmarkFig13PerInput(b *testing.B)   { runExp(b, "fig13") }
func BenchmarkFig14PRF(b *testing.B)        { runExp(b, "fig14") }
func BenchmarkFig15Stages(b *testing.B)     { runExp(b, "fig15") }
func BenchmarkFig16RA(b *testing.B)         { runExp(b, "fig16") }
func BenchmarkFig17Multicore(b *testing.B)  { runExp(b, "fig17") }
func BenchmarkTable02ISA(b *testing.B)      { runExp(b, "table2") }
func BenchmarkTable03Storage(b *testing.B)  { runExp(b, "table3") }
func BenchmarkTable04System(b *testing.B)   { runExp(b, "table4") }
func BenchmarkTable05Graphs(b *testing.B)   { runExp(b, "table5") }
func BenchmarkTable06Matrices(b *testing.B) { runExp(b, "table6") }
