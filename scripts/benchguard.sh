#!/bin/sh
# Benchmark-regression + model-fidelity guard. Runs the telemetry-overhead
# benchmark (the disabled-telemetry hot path), the profile-overhead pair
# (cycle accounting disabled and enabled), the sweep-throughput benchmark,
# and the simulation-kernel throughput bench (pipette-kernelbench on the
# bfs/prd rows), then fails if any number exceeds its ceiling in
# build/baselines/bench_thresholds.txt / kernel_thresholds.txt. Finally it
# scores a cheap app subset against the committed model-fidelity reference
# (build/baselines/paper_reference.json, see docs/VALIDATION.md) — the
# full-matrix correlation gate lives in CI's validate job.
#
# Threshold logic lives in scripts/benchlib.sh, unit-tested by
# scripts/benchguard_test.sh. Thresholds are deliberately loose (4x a
# measured run; fast-forward speedup floors at half measured) so
# shared-runner noise cannot trip them: a trip means a real, large
# regression. To re-baseline after an intentional performance change:
#
#	scripts/benchguard.sh -update   # rewrites thresholds at 4x measured
#
# and commit the updated build/baselines/ files. (-update does NOT touch
# the model-fidelity reference; that re-baselines via
# pipette-calibrate -write-ref after an intentional model change.)
set -eu

cd "$(dirname "$0")/.."
. scripts/benchlib.sh
base=build/baselines/bench_thresholds.txt
kernelbase=build/baselines/kernel_thresholds.txt
reference=build/baselines/paper_reference.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
	go test -bench='TelemetryOverheadOff|ProfileOverhead' -benchtime=2x -run '^$' .
	go test -bench='SweepThroughput$' -benchtime=2x -run '^$' ./internal/harness
} | tee /dev/stderr | awk '/^Benchmark/ { sub(/-[0-9]+$/, "", $1); print $1, $3 }' >"$tmp"

if [ "${1:-}" = "-update" ]; then
	bench_write_thresholds "$tmp" "$base" 4
	echo "benchguard: thresholds rewritten:"
	cat "$base"
	go run ./cmd/pipette-kernelbench -apps bfs,prd -update-baseline "$kernelbase"
	exit 0
fi

fail=0
bench_check_thresholds "$tmp" "$base" || fail=1

# Kernel throughput: ticked ns/cycle ceilings and contrast speedup floors
# on the bfs/prd rows of every regime — fast-forward, parallel, decoded
# and speculative (see cmd/pipette-kernelbench; the parallel and
# speculative floors are host-gated and skip themselves on small runners).
if ! go run ./cmd/pipette-kernelbench -apps bfs,prd -check "$kernelbase"; then
	fail=1
fi

# Model-fidelity correlation on a cheap subset: the tiny bfs+silo rows
# scored against the committed reference must stay inside their tolerance
# bands (deterministic simulation: an unchanged model scores zero error).
if [ ! -f "$reference" ]; then
	echo "benchguard: missing $reference (run: go run ./cmd/pipette-calibrate -tiny -write-ref)" >&2
	fail=1
elif ! go run ./cmd/pipette-calibrate -tiny -apps bfs,silo -quiet \
	-sweep-cache build/sweepcache -ref "$reference" -check \
	-out build/smoke/correlation_subset.json; then
	echo "benchguard: model-fidelity correlation failed (see docs/VALIDATION.md)" >&2
	fail=1
fi
exit "$fail"
