#!/bin/sh
# Benchmark-regression guard. Runs the telemetry-overhead benchmark (the
# disabled-telemetry hot path), the profile-overhead pair (cycle accounting
# disabled and enabled), the sweep-throughput benchmark, and the
# simulation-kernel throughput bench (pipette-kernelbench on the bfs/prd
# rows), then fails if any number exceeds its ceiling in
# build/baselines/bench_thresholds.txt / kernel_thresholds.txt.
#
# Thresholds are deliberately loose (4x a measured run; fast-forward speedup
# floors at half measured) so shared-runner noise cannot trip them: a trip
# means a real, large regression. To re-baseline after an intentional
# performance change:
#
#	scripts/benchguard.sh -update   # rewrites thresholds at 4x measured
#
# and commit the updated build/baselines/ files.
set -eu

cd "$(dirname "$0")/.."
base=build/baselines/bench_thresholds.txt
kernelbase=build/baselines/kernel_thresholds.txt
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
	go test -bench='TelemetryOverheadOff|ProfileOverhead' -benchtime=2x -run '^$' .
	go test -bench='SweepThroughput$' -benchtime=2x -run '^$' ./internal/harness
} | tee /dev/stderr | awk '/^Benchmark/ { sub(/-[0-9]+$/, "", $1); print $1, $3 }' >"$tmp"

if [ "${1:-}" = "-update" ]; then
	mkdir -p build/baselines
	{
		echo "# Benchmark-regression thresholds: max allowed ns/op per benchmark."
		echo "# Loose ceilings (4x measured) so runner noise cannot trip them."
		echo "# Regenerate with scripts/benchguard.sh -update; see docs/SWEEP.md."
		awk '{ printf "%s %d\n", $1, $2 * 4 }' "$tmp"
	} >"$base"
	echo "benchguard: thresholds rewritten:"
	cat "$base"
	go run ./cmd/pipette-kernelbench -apps bfs,prd -update-baseline "$kernelbase"
	exit 0
fi

if [ ! -f "$base" ]; then
	echo "benchguard: missing $base (run scripts/benchguard.sh -update)" >&2
	exit 1
fi

fail=0
while read -r name ns; do
	limit=$(awk -v n="$name" '$1 == n { print $2 }' "$base")
	if [ -z "$limit" ]; then
		echo "benchguard: no threshold for $name (run scripts/benchguard.sh -update)" >&2
		fail=1
	elif [ "$(awk -v a="$ns" -v b="$limit" 'BEGIN { print (a > b) ? 1 : 0 }')" = 1 ]; then
		echo "benchguard: FAIL $name: $ns ns/op exceeds threshold $limit" >&2
		fail=1
	else
		echo "benchguard: ok $name ($ns ns/op <= $limit)"
	fi
done <"$tmp"

# Kernel throughput: ticked ns/cycle ceilings and fast-forward speedup
# floors on the bfs/prd rows (see cmd/pipette-kernelbench).
if ! go run ./cmd/pipette-kernelbench -apps bfs,prd -check "$kernelbase"; then
	fail=1
fi
exit "$fail"
