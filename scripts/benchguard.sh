#!/bin/sh
# Benchmark-regression guard. Runs the telemetry-overhead benchmark (the
# disabled-telemetry hot path) and the sweep-throughput benchmark, then
# fails if any ns/op exceeds its ceiling in
# build/baselines/bench_thresholds.txt.
#
# Thresholds are deliberately loose (4x a measured run) so shared-runner
# noise cannot trip them: a trip means a real, large regression. To
# re-baseline after an intentional performance change:
#
#	scripts/benchguard.sh -update   # rewrites thresholds at 4x measured
#
# and commit the updated build/baselines/bench_thresholds.txt.
set -eu

cd "$(dirname "$0")/.."
base=build/baselines/bench_thresholds.txt
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
	go test -bench='TelemetryOverheadOff' -benchtime=2x -run '^$' .
	go test -bench='SweepThroughput$' -benchtime=2x -run '^$' ./internal/harness
} | tee /dev/stderr | awk '/^Benchmark/ { sub(/-[0-9]+$/, "", $1); print $1, $3 }' >"$tmp"

if [ "${1:-}" = "-update" ]; then
	mkdir -p build/baselines
	{
		echo "# Benchmark-regression thresholds: max allowed ns/op per benchmark."
		echo "# Loose ceilings (4x measured) so runner noise cannot trip them."
		echo "# Regenerate with scripts/benchguard.sh -update; see docs/SWEEP.md."
		awk '{ printf "%s %d\n", $1, $2 * 4 }' "$tmp"
	} >"$base"
	echo "benchguard: thresholds rewritten:"
	cat "$base"
	exit 0
fi

if [ ! -f "$base" ]; then
	echo "benchguard: missing $base (run scripts/benchguard.sh -update)" >&2
	exit 1
fi

fail=0
while read -r name ns; do
	limit=$(awk -v n="$name" '$1 == n { print $2 }' "$base")
	if [ -z "$limit" ]; then
		echo "benchguard: no threshold for $name (run scripts/benchguard.sh -update)" >&2
		fail=1
	elif [ "$(awk -v a="$ns" -v b="$limit" 'BEGIN { print (a > b) ? 1 : 0 }')" = 1 ]; then
		echo "benchguard: FAIL $name: $ns ns/op exceeds threshold $limit" >&2
		fail=1
	else
		echo "benchguard: ok $name ($ns ns/op <= $limit)"
	fi
done <"$tmp"
exit "$fail"
