#!/bin/sh
# Unit tests for scripts/benchlib.sh (the benchguard threshold logic),
# driven entirely on synthetic files — no Go benchmarks run. CI's validate
# job executes this; run it locally after touching benchlib.sh.
set -eu

cd "$(dirname "$0")/.."
. scripts/benchlib.sh

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
pass=0 fail=0

ok() {
	echo "ok   $1"
	pass=$((pass + 1))
}

bad() {
	echo "FAIL $1" >&2
	fail=$((fail + 1))
}

# -update path: thresholds written at the factor with the header.
cat >"$tmp/meas" <<'EOF'
BenchmarkTelemetryOverheadOff 1000
BenchmarkSweepThroughput 250
EOF
bench_write_thresholds "$tmp/meas" "$tmp/base" 4
if grep -q '^BenchmarkTelemetryOverheadOff 4000$' "$tmp/base" &&
	grep -q '^BenchmarkSweepThroughput 1000$' "$tmp/base" &&
	head -1 "$tmp/base" | grep -q '^#'; then
	ok "update writes factored thresholds with header"
else
	bad "update writes factored thresholds with header"
	cat "$tmp/base" >&2
fi

# Clean pass: measured below every ceiling.
if bench_check_thresholds "$tmp/meas" "$tmp/base" >"$tmp/out" 2>&1; then
	ok "within-ceiling measurements pass"
else
	bad "within-ceiling measurements pass"
	cat "$tmp/out" >&2
fi

# Missing baseline file: loud failure pointing at -update.
if bench_check_thresholds "$tmp/meas" "$tmp/nosuch" >"$tmp/out" 2>&1; then
	bad "missing baseline rejected"
else
	if grep -q 'missing.*-update' "$tmp/out"; then
		ok "missing baseline rejected"
	else
		bad "missing baseline rejected (wrong message: $(cat "$tmp/out"))"
	fi
fi

# Ceiling trip: one benchmark regresses past its threshold.
cat >"$tmp/meas_slow" <<'EOF'
BenchmarkTelemetryOverheadOff 9000
BenchmarkSweepThroughput 250
EOF
if bench_check_thresholds "$tmp/meas_slow" "$tmp/base" >"$tmp/out" 2>&1; then
	bad "ceiling trip fails the check"
else
	if grep -q 'FAIL BenchmarkTelemetryOverheadOff: 9000' "$tmp/out" &&
		grep -q 'ok BenchmarkSweepThroughput' "$tmp/out"; then
		ok "ceiling trip fails the check"
	else
		bad "ceiling trip fails the check (output: $(cat "$tmp/out"))"
	fi
fi

# Unknown benchmark: measured name absent from the baseline.
cat >"$tmp/meas_new" <<'EOF'
BenchmarkBrandNew 10
EOF
if bench_check_thresholds "$tmp/meas_new" "$tmp/base" >"$tmp/out" 2>&1; then
	bad "missing threshold entry rejected"
else
	if grep -q 'no threshold for BenchmarkBrandNew' "$tmp/out"; then
		ok "missing threshold entry rejected"
	else
		bad "missing threshold entry rejected (output: $(cat "$tmp/out"))"
	fi
fi

# Malformed threshold: a non-numeric ceiling must abort (exit 2), not
# silently pass or count as a mere regression.
cat >"$tmp/base_bad" <<'EOF'
# header
BenchmarkTelemetryOverheadOff oops
EOF
cat >"$tmp/meas_one" <<'EOF'
BenchmarkTelemetryOverheadOff 1000
EOF
rc=0
(bench_check_thresholds "$tmp/meas_one" "$tmp/base_bad") >"$tmp/out" 2>&1 || rc=$?
if [ "$rc" = 2 ] && grep -q 'malformed threshold' "$tmp/out"; then
	ok "malformed threshold fails loudly"
else
	bad "malformed threshold fails loudly (rc=$rc, output: $(cat "$tmp/out"))"
fi

# Malformed measured line: junk from the benchmark pipeline must abort too.
cat >"$tmp/meas_bad" <<'EOF'
BenchmarkTelemetryOverheadOff not-a-number
EOF
rc=0
(bench_check_thresholds "$tmp/meas_bad" "$tmp/base") >"$tmp/out" 2>&1 || rc=$?
if [ "$rc" = 2 ] && grep -q 'malformed measured line' "$tmp/out"; then
	ok "malformed measured line fails loudly"
else
	bad "malformed measured line fails loudly (rc=$rc, output: $(cat "$tmp/out"))"
fi

# And -update must refuse to bake a corrupt baseline from it.
rc=0
(bench_write_thresholds "$tmp/meas_bad" "$tmp/base_new" 4) >"$tmp/out" 2>&1 || rc=$?
if [ "$rc" = 2 ] && [ ! -f "$tmp/base_new" ]; then
	ok "update refuses malformed measurements"
else
	bad "update refuses malformed measurements (rc=$rc)"
fi

echo "benchguard_test: $pass passed, $fail failed"
[ "$fail" = 0 ]
