# Threshold parsing/checking shared by benchguard.sh and its test suite
# (scripts/benchguard_test.sh). POSIX sh, sourced — no side effects.
#
# Measured files hold "name ns" pairs (one benchmark per line); baseline
# files hold the same shape plus '#' comment lines. Every consumer fails
# loudly on malformed input: a threshold that doesn't parse is a broken
# gate, not a pass.

# bench_is_number VALUE — accept integers and awk-style decimals.
bench_is_number() {
	case "$1" in
	'' | *[!0-9.]* | *.*.*) return 1 ;;
	esac
	return 0
}

# bench_lookup_threshold NAME BASELINE_FILE — print NAME's ceiling.
# Returns 1 (nothing printed) when NAME has no entry; exits 2 on a
# malformed entry so a corrupt baseline cannot silently pass.
bench_lookup_threshold() {
	_name=$1 _base=$2
	_limit=$(awk -v n="$_name" '$1 !~ /^#/ && $1 == n { print $2; exit }' "$_base")
	if [ -z "$_limit" ]; then
		return 1
	fi
	if ! bench_is_number "$_limit"; then
		echo "benchguard: malformed threshold for $_name in $_base: '$_limit'" >&2
		exit 2
	fi
	printf '%s\n' "$_limit"
}

# bench_check_thresholds MEASURED_FILE BASELINE_FILE — compare every
# measured "name ns" line against its ceiling. Prints a verdict per
# benchmark; returns 1 if any benchmark has no threshold or exceeds it,
# exits 2 on malformed measured or baseline lines.
bench_check_thresholds() {
	_meas=$1 _base=$2
	if [ ! -f "$_base" ]; then
		echo "benchguard: missing $_base (run scripts/benchguard.sh -update)" >&2
		return 1
	fi
	_fail=0
	while read -r _n _ns _rest; do
		[ -n "$_n" ] || continue
		if [ -n "$_rest" ] || ! bench_is_number "$_ns"; then
			echo "benchguard: malformed measured line '$_n $_ns $_rest' in $_meas" >&2
			exit 2
		fi
		_rc=0
		_limit=$(bench_lookup_threshold "$_n" "$_base") || _rc=$?
		# The lookup runs in a subshell: re-raise its malformed-entry abort.
		if [ "$_rc" = 2 ]; then
			exit 2
		fi
		if [ "$_rc" != 0 ]; then
			echo "benchguard: no threshold for $_n (run scripts/benchguard.sh -update)" >&2
			_fail=1
		elif [ "$(awk -v a="$_ns" -v b="$_limit" 'BEGIN { print (a > b) ? 1 : 0 }')" = 1 ]; then
			echo "benchguard: FAIL $_n: $_ns ns/op exceeds threshold $_limit" >&2
			_fail=1
		else
			echo "benchguard: ok $_n ($_ns ns/op <= $_limit)"
		fi
	done <"$_meas"
	return "$_fail"
}

# bench_write_thresholds MEASURED_FILE BASELINE_FILE FACTOR — rewrite the
# baseline at FACTOR x measured with the standard header. Exits 2 on
# malformed measured lines (never bake a corrupt baseline).
bench_write_thresholds() {
	_meas=$1 _base=$2 _factor=$3
	while read -r _n _ns _rest; do
		[ -n "$_n" ] || continue
		if [ -n "$_rest" ] || ! bench_is_number "$_ns"; then
			echo "benchguard: malformed measured line '$_n $_ns $_rest' in $_meas" >&2
			exit 2
		fi
	done <"$_meas"
	mkdir -p "$(dirname "$_base")"
	{
		echo "# Benchmark-regression thresholds: max allowed ns/op per benchmark."
		echo "# Loose ceilings (${_factor}x measured) so runner noise cannot trip them."
		echo "# Regenerate with scripts/benchguard.sh -update; see docs/SWEEP.md."
		awk -v f="$_factor" '{ printf "%s %d\n", $1, $2 * f }' "$_meas"
	} >"$_base"
}
