#!/bin/sh
# CI gate: vet + build + race tests + a telemetry smoke run whose artifacts
# must validate against the schemas. `scripts/ci.sh smoke` runs only the
# smoke stage.
set -eu

cd "$(dirname "$0")/.."
out=build/smoke
mkdir -p "$out"

smoke() {
	echo "== smoke: pipette-sim bfs/pipette with telemetry =="
	go build -o "$out/pipette-sim" ./cmd/pipette-sim
	go build -o "$out/pipette-validate" ./cmd/pipette-validate
	"$out/pipette-sim" -app bfs -variant pipette -json \
		-trace-out "$out/trace.json" -metrics-out "$out/metrics.csv" \
		>"$out/report.json"
	"$out/pipette-validate" -min-trace-cats 3 \
		"$out/report.json" "$out/trace.json" "$out/metrics.csv"
	echo "smoke OK"
}

if [ "${1:-}" = "smoke" ]; then
	smoke
	exit 0
fi

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
smoke
echo "CI OK"
