#!/bin/sh
# CI gate: lint (gofmt + vet) + build + race tests + a telemetry smoke run
# whose artifacts must validate against the schemas + a sharded sweep
# smoke exercising the parallel evaluation engine + the benchmark
# regression guard. Individual stages run via:
#
#	scripts/ci.sh lint | smoke | sweep-smoke | bench
set -eu

cd "$(dirname "$0")/.."
out=build/smoke
mkdir -p "$out"

lint() {
	echo "== gofmt =="
	bad=$(gofmt -l .)
	if [ -n "$bad" ]; then
		echo "gofmt needed on:" >&2
		echo "$bad" >&2
		exit 1
	fi
	echo "== go vet =="
	go vet ./...
}

smoke() {
	echo "== smoke: pipette-sim bfs/pipette with telemetry =="
	go build -o "$out/pipette-sim" ./cmd/pipette-sim
	go build -o "$out/pipette-validate" ./cmd/pipette-validate
	"$out/pipette-sim" -app bfs -variant pipette -json \
		-trace-out "$out/trace.json" -metrics-out "$out/metrics.csv" \
		>"$out/report.json"
	"$out/pipette-validate" -min-trace-cats 3 \
		"$out/report.json" "$out/trace.json" "$out/metrics.csv"
	echo "smoke OK"
}

# Sweep smoke: both halves of a sharded tiny sweep through a shared result
# cache, then a warm full re-run that must be served entirely from the
# cache; every emitted run set must validate against pipette.runset/v1.
sweep_smoke() {
	echo "== sweep smoke: sharded parallel evaluation =="
	go build -o "$out/pipette-bench" ./cmd/pipette-bench
	go build -o "$out/pipette-validate" ./cmd/pipette-validate
	cachedir="$out/sweepcache"
	rm -rf "$cachedir"
	"$out/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 0/2 -sweep-cache "$cachedir" -report-out "$out/shard0.json"
	"$out/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 1/2 -sweep-cache "$cachedir" -report-out "$out/shard1.json"
	"$out/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-sweep-cache "$cachedir" -report-out "$out/warm.json" |
		tee "$out/warm.txt"
	grep -q " 0 computed," "$out/warm.txt" || {
		echo "sweep smoke: warm run recomputed cells" >&2
		exit 1
	}
	"$out/pipette-validate" "$out/shard0.json" "$out/shard1.json" "$out/warm.json"
	echo "sweep smoke OK"
}

case "${1:-}" in
lint)
	lint
	exit 0
	;;
smoke)
	smoke
	exit 0
	;;
sweep-smoke)
	sweep_smoke
	exit 0
	;;
bench)
	./scripts/benchguard.sh
	exit 0
	;;
esac

lint
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
smoke
sweep_smoke
echo "== benchmark regression guard =="
./scripts/benchguard.sh
echo "CI OK"
