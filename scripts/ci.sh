#!/bin/sh
# CI gate: lint (gofmt + vet) + build + race tests + a telemetry smoke run
# whose artifacts must validate against the schemas + a sharded sweep
# smoke exercising the parallel evaluation engine + a checkpoint/diverge
# smoke (resume fidelity and divergence bisection) + a cycle-accounting
# smoke (profiled v2 report validates; live -http endpoint answers) + a
# stale-artifact gate on the committed tiny-scale experiments transcript +
# a simulation-service smoke (pipette-server lifecycle: load-verified jobs,
# SIGTERM drain, restart-resume of a hand-seeded queued job) + the
# benchmark regression guard (which ends with a subset model-fidelity
# correlation check; the full-matrix gate is the 'correlation' stage, run
# by CI's validate job). Individual stages run via:
#
#	scripts/ci.sh lint | smoke | sweep-smoke | diverge-smoke | profile-smoke |
#	               speculate-smoke | serve-smoke | experiments-check |
#	               correlation | benchguard-test | bench
set -eu

cd "$(dirname "$0")/.."
out=build/smoke
bin=build/bin
mkdir -p "$out"

# All stages share one tool-build pass (go's build cache makes repeats
# cheap, but the stage logs stay honest about what ran).
tools_built=0
tools() {
	if [ "$tools_built" = 1 ]; then
		return 0
	fi
	echo "== build tools =="
	mkdir -p "$bin"
	go build -o "$bin/" ./cmd/...
	tools_built=1
}

lint() {
	echo "== gofmt =="
	bad=$(gofmt -l .)
	if [ -n "$bad" ]; then
		echo "gofmt needed on:" >&2
		echo "$bad" >&2
		exit 1
	fi
	echo "== go vet =="
	go vet ./...
	echo "== staticcheck =="
	# Bug-finding checks only (SA*): the style/simplification classes are
	# opinion, not defects, and would make the gate churn. The pinned copy
	# lives in build/bin (make staticcheck-tool); a PATH install also
	# counts. Skipped with a note when neither exists (offline dev boxes).
	if [ -x "$bin/staticcheck" ]; then
		"$bin/staticcheck" -checks 'SA*' ./...
	elif command -v staticcheck >/dev/null 2>&1; then
		staticcheck -checks 'SA*' ./...
	else
		echo "staticcheck not installed; skipping (CI runs it — 'make staticcheck-tool' installs the pinned version)"
	fi
}

smoke() {
	echo "== smoke: pipette-sim bfs/pipette with telemetry =="
	tools
	"$bin/pipette-sim" -app bfs -variant pipette -json \
		-trace-out "$out/trace.json" -metrics-out "$out/metrics.csv" \
		>"$out/report.json"
	"$bin/pipette-validate" -min-trace-cats 3 \
		"$out/report.json" "$out/trace.json" "$out/metrics.csv"
	echo "smoke OK"
}

# Sweep smoke: both halves of a sharded tiny sweep through a shared result
# cache, then a warm full re-run that must be served entirely from the
# cache; every emitted run set must validate against pipette.runset/v1.
sweep_smoke() {
	echo "== sweep smoke: sharded parallel evaluation =="
	tools
	cachedir="$out/sweepcache"
	rm -rf "$cachedir"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 0/2 -sweep-cache "$cachedir" -report-out "$out/shard0.json"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 1/2 -sweep-cache "$cachedir" -report-out "$out/shard1.json"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-sweep-cache "$cachedir" -report-out "$out/warm.json" |
		tee "$out/warm.txt"
	grep -q " 0 computed," "$out/warm.txt" || {
		echo "sweep smoke: warm run recomputed cells" >&2
		exit 1
	}
	"$bin/pipette-validate" "$out/shard0.json" "$out/shard1.json" "$out/warm.json"
	echo "sweep smoke OK"
}

# Checkpoint/diverge smoke: a checkpointed run resumed from its last
# snapshot must print byte-identical stdout to the uninterrupted run
# (docs/CHECKPOINT.md), and pipette-diverge must bisect a DRAM-latency
# divergence from the same snapshot — and report none when the two sides
# share a config.
diverge_smoke() {
	echo "== diverge smoke: checkpoint resume + divergence bisection =="
	tools
	snap="$out/cc.snap"
	rm -f "$snap"
	"$bin/pipette-sim" -app cc -variant pipette -input Co \
		-checkpoint-every 50000 -checkpoint-out "$snap" \
		>"$out/ckpt-full.txt" 2>/dev/null
	"$bin/pipette-sim" -resume "$snap" >"$out/ckpt-resumed.txt" 2>/dev/null
	cmp "$out/ckpt-full.txt" "$out/ckpt-resumed.txt" || {
		echo "diverge smoke: resumed stdout differs from uninterrupted run" >&2
		exit 1
	}
	"$bin/pipette-diverge" -snapshot "$snap" -b Cache.DRAMLat=200 \
		>"$out/diverge.txt"
	grep -q "first divergence at cycle" "$out/diverge.txt" || {
		echo "diverge smoke: no divergence found for a DRAM latency change" >&2
		cat "$out/diverge.txt" >&2
		exit 1
	}
	grep -q "machine-state diff" "$out/diverge.txt" || {
		echo "diverge smoke: missing machine-state diff" >&2
		exit 1
	}
	"$bin/pipette-diverge" -snapshot "$snap" >"$out/diverge-same.txt"
	grep -q "no divergence" "$out/diverge-same.txt" || {
		echo "diverge smoke: identical configs reported a divergence" >&2
		cat "$out/diverge-same.txt" >&2
		exit 1
	}
	echo "diverge smoke OK"
}

# Cycle-accounting smoke: a profiled run's report must carry the v2
# cpi_stacks/queue_hist sections and pass pipette-validate's conservation
# checks, and the -http live endpoint must serve /top and /debug/vars
# while a run is held open (docs/PROFILING.md).
profile_smoke() {
	echo "== profile smoke: cycle accounting + live endpoint =="
	tools
	"$bin/pipette-sim" -app cc -variant pipette -input Co -profile -json \
		>"$out/profiled.json" 2>/dev/null
	grep -q '"cpi_stacks"' "$out/profiled.json" || {
		echo "profile smoke: report lacks cpi_stacks" >&2
		exit 1
	}
	"$bin/pipette-validate" "$out/profiled.json"

	"$bin/pipette-sim" -app bfs -variant pipette -input Rd \
		-http 127.0.0.1:18080 -http-hold 30s >/dev/null 2>&1 &
	simpid=$!
	# Snapshots are pushed at segment boundaries, so poll until the first
	# labeled one lands (the post-run push at the latest).
	ok=0
	for _ in $(seq 1 100); do
		if curl -sf http://127.0.0.1:18080/top >"$out/top.txt" 2>/dev/null &&
			grep -q 'bfs/pipette/Rd' "$out/top.txt"; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ "$ok" = 1 ] || {
		echo "profile smoke: /top never served a labeled snapshot" >&2
		cat "$out/top.txt" >&2 || true
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	curl -sf http://127.0.0.1:18080/debug/vars >"$out/vars.json" || {
		echo "profile smoke: /debug/vars unreachable" >&2
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	grep -q '"pipette"' "$out/vars.json" || {
		echo "profile smoke: /debug/vars lacks the pipette expvar" >&2
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	kill "$simpid" 2>/dev/null || true
	echo "profile smoke OK"
}

# Speculative-kernel smoke (docs/SPECULATION.md): a -speculate -epoch 64
# run of a 4-core streaming workload must (a) report simulated numbers
# identical to the barrier run, (b) carry a speculation section that
# passes pipette-validate's conservation checks, and (c) actually commit
# epochs — a silently-fallen-back run would satisfy (a) and (b) vacuously.
speculate_smoke() {
	echo "== speculate smoke: epoch kernel CLI =="
	tools
	"$bin/pipette-sim" -app bfs -variant streaming -input Rd -json \
		>"$out/barrier.json" 2>/dev/null
	"$bin/pipette-sim" -app bfs -variant streaming -input Rd -json \
		-speculate -epoch 64 >"$out/speculate.json" 2>/dev/null
	"$bin/pipette-validate" "$out/speculate.json"
	grep -q '"speculation"' "$out/speculate.json" || {
		echo "speculate smoke: report lacks the speculation section" >&2
		exit 1
	}
	grep -q '"commits": 0,' "$out/speculate.json" && {
		echo "speculate smoke: speculative run never committed an epoch" >&2
		grep -A10 '"speculation"' "$out/speculate.json" >&2
		exit 1
	}
	for field in '"cycles"' '"committed"' '"ipc"'; do
		b=$(grep -m1 "$field" "$out/barrier.json")
		s=$(grep -m1 "$field" "$out/speculate.json")
		[ "$b" = "$s" ] || {
			echo "speculate smoke: $field differs: barrier $b vs speculate $s" >&2
			exit 1
		}
	done
	echo "speculate smoke OK"
}

# Simulation-service smoke (docs/SERVER.md): bring up pipette-server,
# push a verified multi-tenant job mix through it with pipette-load
# (which recomputes every distinct cell in-process and demands
# byte-identical payloads), validate the persisted pipette.job/v1
# records, drain on SIGTERM (must exit 0), hand-seed a queued job record
# into the data dir, and check that a restarted server adopts and
# completes it.
serve_smoke() {
	echo "== serve smoke: pipette-server lifecycle =="
	tools
	sdata="$out/serverdata"
	saddr=127.0.0.1:18091
	rm -rf "$sdata"
	"$bin/pipette-server" -addr "$saddr" -data "$sdata" -workers 2 \
		>"$out/server.log" 2>&1 &
	spid=$!
	trap 'kill "$spid" 2>/dev/null || true' EXIT
	ok=0
	for _ in $(seq 1 100); do
		if curl -sf "http://$saddr/healthz" >/dev/null 2>&1; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ "$ok" = 1 ] || {
		echo "serve smoke: server never became healthy" >&2
		cat "$out/server.log" >&2 || true
		exit 1
	}
	"$bin/pipette-load" -addr "http://$saddr" -tenants 3 -jobs 8 \
		-tiny -apps silo | tee "$out/load.txt"
	grep -q "verified" "$out/load.txt" || {
		echo "serve smoke: pipette-load did not verify results" >&2
		exit 1
	}
	curl -sf "http://$saddr/healthz" >"$out/serve-health.json"
	grep -q '"status": "ok"' "$out/serve-health.json" || {
		echo "serve smoke: /healthz not ok" >&2
		cat "$out/serve-health.json" >&2
		exit 1
	}
	"$bin/pipette-validate" "$sdata"/jobs/*.json >/dev/null || {
		echo "serve smoke: persisted job records failed validation" >&2
		exit 1
	}
	echo "serve smoke: draining on SIGTERM"
	kill -TERM "$spid"
	wait "$spid" || {
		echo "serve smoke: drain exited non-zero" >&2
		cat "$out/server.log" >&2
		exit 1
	}
	# Restart-resume: a queued record seeded while the server is down must
	# be adopted and completed by the next incarnation.
	cat >"$sdata/jobs/j-seeded-000001.json" <<'EOF'
{
 "schema": "pipette.job/v1",
 "id": "j-seeded-000001",
 "tenant": "seeded",
 "spec": {
  "app": "silo",
  "variant": "serial",
  "input": "ycsbc",
  "tiny": true
 },
 "state": "queued",
 "submitted_unix": 1700000000
}
EOF
	"$bin/pipette-validate" "$sdata/jobs/j-seeded-000001.json"
	"$bin/pipette-server" -addr "$saddr" -data "$sdata" -workers 2 \
		>>"$out/server.log" 2>&1 &
	spid=$!
	ok=0
	for _ in $(seq 1 150); do
		if curl -sf "http://$saddr/v1/jobs/j-seeded-000001" 2>/dev/null |
			grep -q '"state": "done"'; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ "$ok" = 1 ] || {
		echo "serve smoke: restarted server never completed the seeded job" >&2
		curl -sf "http://$saddr/v1/jobs/j-seeded-000001" >&2 || true
		cat "$out/server.log" >&2
		exit 1
	}
	curl -sf "http://$saddr/v1/jobs/j-seeded-000001/result" >"$out/seeded-cell.json"
	grep -q '"Cycles"' "$out/seeded-cell.json" || {
		echo "serve smoke: seeded job result has no cell payload" >&2
		cat "$out/seeded-cell.json" >&2
		exit 1
	}
	curl -sf "http://$saddr/healthz" | grep -q '"resumed": [1-9]' || {
		echo "serve smoke: restarted server reports no resumed jobs" >&2
		exit 1
	}
	"$bin/pipette-validate" "$sdata/jobs/j-seeded-000001.json"
	kill -TERM "$spid"
	wait "$spid" || {
		echo "serve smoke: second drain exited non-zero" >&2
		cat "$out/server.log" >&2
		exit 1
	}
	trap - EXIT
	echo "serve smoke OK"
}

# Stale-artifact gate: the committed tiny-scale experiments transcript
# (experiments_output_tiny.txt, stdout only — timing lines go to stderr)
# must match a fresh regeneration byte for byte, and its section titles
# must agree with the default-scale transcript so the two never drift
# apart in coverage. Regenerate after an intentional model change with:
#
#	make experiments-regen   # then commit experiments_output_tiny.txt
experiments_check() {
	echo "== experiments-check: tiny transcript regeneration =="
	tools
	"$bin/pipette-bench" -exp all -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache >"$out/experiments_tiny.txt"
	cmp experiments_output_tiny.txt "$out/experiments_tiny.txt" || {
		echo "experiments-check: committed experiments_output_tiny.txt is stale" >&2
		echo "experiments-check: regenerate with 'make experiments-regen' and commit it" >&2
		diff experiments_output_tiny.txt "$out/experiments_tiny.txt" | head -40 >&2 || true
		exit 1
	}
	grep '^== ' experiments_output.txt | sort -u >"$out/sections_default.txt"
	grep '^== ' experiments_output_tiny.txt | sort -u >"$out/sections_tiny.txt"
	cmp "$out/sections_default.txt" "$out/sections_tiny.txt" || {
		echo "experiments-check: tiny and default transcripts cover different sections" >&2
		diff "$out/sections_default.txt" "$out/sections_tiny.txt" >&2 || true
		exit 1
	}
	echo "experiments-check OK"
}

# Model-fidelity correlation gate (docs/VALIDATION.md): the full tiny
# matrix scored against the committed reference must pass its tolerance
# bands and the emitted report must validate; a deliberately mis-modeled
# run (doubled DRAM latency) must fail the same gate; and a small
# calibration grid must recover the default DRAM latency from the
# perturbed starting point, with a schema-valid sensitivity report.
correlation() {
	echo "== correlation: model fidelity vs committed reference =="
	tools
	ref=build/baselines/paper_reference.json
	"$bin/pipette-calibrate" -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -check \
		-out "$out/correlation.json"
	"$bin/pipette-validate" "$out/correlation.json"
	if "$bin/pipette-calibrate" -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -set dram=360 -check \
		-out "$out/correlation_mismodel.json"; then
		echo "correlation: doubled DRAM latency PASSED the gate (tolerances too loose?)" >&2
		exit 1
	fi
	echo "correlation: mis-modeled config tripped the gate, as it must"
	"$bin/pipette-calibrate" -tiny -apps bfs -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -set dram=360 \
		-calibrate 'dram=90,180,360' -out "$out/calibration.json"
	"$bin/pipette-validate" "$out/calibration.json"
	grep -q '"dram": 180' "$out/calibration.json" || {
		echo "correlation: calibration did not recover dram=180" >&2
		grep -A3 '"best"' "$out/calibration.json" >&2 || true
		exit 1
	}
	echo "correlation OK"
}

case "${1:-}" in
lint)
	lint
	exit 0
	;;
smoke)
	smoke
	exit 0
	;;
sweep-smoke)
	sweep_smoke
	exit 0
	;;
diverge-smoke)
	diverge_smoke
	exit 0
	;;
profile-smoke)
	profile_smoke
	exit 0
	;;
speculate-smoke)
	speculate_smoke
	exit 0
	;;
serve-smoke)
	serve_smoke
	exit 0
	;;
experiments-check)
	experiments_check
	exit 0
	;;
correlation)
	correlation
	exit 0
	;;
benchguard-test)
	./scripts/benchguard_test.sh
	exit 0
	;;
bench)
	./scripts/benchguard.sh
	exit 0
	;;
esac

lint
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "== steady-state allocation gate =="
# The gate skips itself under -race (instrumentation allocates), so run it
# once without the detector.
go test -run TestSteadyStateAllocs ./internal/sim/
smoke
sweep_smoke
diverge_smoke
profile_smoke
speculate_smoke
serve_smoke
./scripts/benchguard_test.sh
experiments_check
echo "== benchmark regression guard =="
./scripts/benchguard.sh
echo "CI OK"
