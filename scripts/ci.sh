#!/bin/sh
# CI gate: lint (gofmt + vet) + build + race tests + a telemetry smoke run
# whose artifacts must validate against the schemas + a sharded sweep
# smoke exercising the parallel evaluation engine + a checkpoint/diverge
# smoke (resume fidelity and divergence bisection) + a cycle-accounting
# smoke (profiled v2 report validates; live -http endpoint answers) + a
# stale-artifact gate on the committed tiny-scale experiments transcript +
# the benchmark regression guard (which ends with a subset model-fidelity
# correlation check; the full-matrix gate is the 'correlation' stage, run
# by CI's validate job). Individual stages run via:
#
#	scripts/ci.sh lint | smoke | sweep-smoke | diverge-smoke | profile-smoke |
#	               experiments-check | correlation | benchguard-test | bench
set -eu

cd "$(dirname "$0")/.."
out=build/smoke
bin=build/bin
mkdir -p "$out"

# All stages share one tool-build pass (go's build cache makes repeats
# cheap, but the stage logs stay honest about what ran).
tools_built=0
tools() {
	if [ "$tools_built" = 1 ]; then
		return 0
	fi
	echo "== build tools =="
	mkdir -p "$bin"
	go build -o "$bin/" ./cmd/...
	tools_built=1
}

lint() {
	echo "== gofmt =="
	bad=$(gofmt -l .)
	if [ -n "$bad" ]; then
		echo "gofmt needed on:" >&2
		echo "$bad" >&2
		exit 1
	fi
	echo "== go vet =="
	go vet ./...
}

smoke() {
	echo "== smoke: pipette-sim bfs/pipette with telemetry =="
	tools
	"$bin/pipette-sim" -app bfs -variant pipette -json \
		-trace-out "$out/trace.json" -metrics-out "$out/metrics.csv" \
		>"$out/report.json"
	"$bin/pipette-validate" -min-trace-cats 3 \
		"$out/report.json" "$out/trace.json" "$out/metrics.csv"
	echo "smoke OK"
}

# Sweep smoke: both halves of a sharded tiny sweep through a shared result
# cache, then a warm full re-run that must be served entirely from the
# cache; every emitted run set must validate against pipette.runset/v1.
sweep_smoke() {
	echo "== sweep smoke: sharded parallel evaluation =="
	tools
	cachedir="$out/sweepcache"
	rm -rf "$cachedir"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 0/2 -sweep-cache "$cachedir" -report-out "$out/shard0.json"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-shard 1/2 -sweep-cache "$cachedir" -report-out "$out/shard1.json"
	"$bin/pipette-bench" -sweep -tiny -apps silo,spmm -jobs 2 -quiet \
		-sweep-cache "$cachedir" -report-out "$out/warm.json" |
		tee "$out/warm.txt"
	grep -q " 0 computed," "$out/warm.txt" || {
		echo "sweep smoke: warm run recomputed cells" >&2
		exit 1
	}
	"$bin/pipette-validate" "$out/shard0.json" "$out/shard1.json" "$out/warm.json"
	echo "sweep smoke OK"
}

# Checkpoint/diverge smoke: a checkpointed run resumed from its last
# snapshot must print byte-identical stdout to the uninterrupted run
# (docs/CHECKPOINT.md), and pipette-diverge must bisect a DRAM-latency
# divergence from the same snapshot — and report none when the two sides
# share a config.
diverge_smoke() {
	echo "== diverge smoke: checkpoint resume + divergence bisection =="
	tools
	snap="$out/cc.snap"
	rm -f "$snap"
	"$bin/pipette-sim" -app cc -variant pipette -input Co \
		-checkpoint-every 50000 -checkpoint-out "$snap" \
		>"$out/ckpt-full.txt" 2>/dev/null
	"$bin/pipette-sim" -resume "$snap" >"$out/ckpt-resumed.txt" 2>/dev/null
	cmp "$out/ckpt-full.txt" "$out/ckpt-resumed.txt" || {
		echo "diverge smoke: resumed stdout differs from uninterrupted run" >&2
		exit 1
	}
	"$bin/pipette-diverge" -snapshot "$snap" -b Cache.DRAMLat=200 \
		>"$out/diverge.txt"
	grep -q "first divergence at cycle" "$out/diverge.txt" || {
		echo "diverge smoke: no divergence found for a DRAM latency change" >&2
		cat "$out/diverge.txt" >&2
		exit 1
	}
	grep -q "machine-state diff" "$out/diverge.txt" || {
		echo "diverge smoke: missing machine-state diff" >&2
		exit 1
	}
	"$bin/pipette-diverge" -snapshot "$snap" >"$out/diverge-same.txt"
	grep -q "no divergence" "$out/diverge-same.txt" || {
		echo "diverge smoke: identical configs reported a divergence" >&2
		cat "$out/diverge-same.txt" >&2
		exit 1
	}
	echo "diverge smoke OK"
}

# Cycle-accounting smoke: a profiled run's report must carry the v2
# cpi_stacks/queue_hist sections and pass pipette-validate's conservation
# checks, and the -http live endpoint must serve /top and /debug/vars
# while a run is held open (docs/PROFILING.md).
profile_smoke() {
	echo "== profile smoke: cycle accounting + live endpoint =="
	tools
	"$bin/pipette-sim" -app cc -variant pipette -input Co -profile -json \
		>"$out/profiled.json" 2>/dev/null
	grep -q '"cpi_stacks"' "$out/profiled.json" || {
		echo "profile smoke: report lacks cpi_stacks" >&2
		exit 1
	}
	"$bin/pipette-validate" "$out/profiled.json"

	"$bin/pipette-sim" -app bfs -variant pipette -input Rd \
		-http 127.0.0.1:18080 -http-hold 30s >/dev/null 2>&1 &
	simpid=$!
	# Snapshots are pushed at segment boundaries, so poll until the first
	# labeled one lands (the post-run push at the latest).
	ok=0
	for _ in $(seq 1 100); do
		if curl -sf http://127.0.0.1:18080/top >"$out/top.txt" 2>/dev/null &&
			grep -q 'bfs/pipette/Rd' "$out/top.txt"; then
			ok=1
			break
		fi
		sleep 0.2
	done
	[ "$ok" = 1 ] || {
		echo "profile smoke: /top never served a labeled snapshot" >&2
		cat "$out/top.txt" >&2 || true
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	curl -sf http://127.0.0.1:18080/debug/vars >"$out/vars.json" || {
		echo "profile smoke: /debug/vars unreachable" >&2
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	grep -q '"pipette"' "$out/vars.json" || {
		echo "profile smoke: /debug/vars lacks the pipette expvar" >&2
		kill "$simpid" 2>/dev/null || true
		exit 1
	}
	kill "$simpid" 2>/dev/null || true
	echo "profile smoke OK"
}

# Stale-artifact gate: the committed tiny-scale experiments transcript
# (experiments_output_tiny.txt, stdout only — timing lines go to stderr)
# must match a fresh regeneration byte for byte, and its section titles
# must agree with the default-scale transcript so the two never drift
# apart in coverage. Regenerate after an intentional model change with:
#
#	make experiments-regen   # then commit experiments_output_tiny.txt
experiments_check() {
	echo "== experiments-check: tiny transcript regeneration =="
	tools
	"$bin/pipette-bench" -exp all -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache >"$out/experiments_tiny.txt"
	cmp experiments_output_tiny.txt "$out/experiments_tiny.txt" || {
		echo "experiments-check: committed experiments_output_tiny.txt is stale" >&2
		echo "experiments-check: regenerate with 'make experiments-regen' and commit it" >&2
		diff experiments_output_tiny.txt "$out/experiments_tiny.txt" | head -40 >&2 || true
		exit 1
	}
	grep '^== ' experiments_output.txt | sort -u >"$out/sections_default.txt"
	grep '^== ' experiments_output_tiny.txt | sort -u >"$out/sections_tiny.txt"
	cmp "$out/sections_default.txt" "$out/sections_tiny.txt" || {
		echo "experiments-check: tiny and default transcripts cover different sections" >&2
		diff "$out/sections_default.txt" "$out/sections_tiny.txt" >&2 || true
		exit 1
	}
	echo "experiments-check OK"
}

# Model-fidelity correlation gate (docs/VALIDATION.md): the full tiny
# matrix scored against the committed reference must pass its tolerance
# bands and the emitted report must validate; a deliberately mis-modeled
# run (doubled DRAM latency) must fail the same gate; and a small
# calibration grid must recover the default DRAM latency from the
# perturbed starting point, with a schema-valid sensitivity report.
correlation() {
	echo "== correlation: model fidelity vs committed reference =="
	tools
	ref=build/baselines/paper_reference.json
	"$bin/pipette-calibrate" -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -check \
		-out "$out/correlation.json"
	"$bin/pipette-validate" "$out/correlation.json"
	if "$bin/pipette-calibrate" -tiny -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -set dram=360 -check \
		-out "$out/correlation_mismodel.json"; then
		echo "correlation: doubled DRAM latency PASSED the gate (tolerances too loose?)" >&2
		exit 1
	fi
	echo "correlation: mis-modeled config tripped the gate, as it must"
	"$bin/pipette-calibrate" -tiny -apps bfs -jobs "${JOBS:-2}" -quiet \
		-sweep-cache build/sweepcache -ref "$ref" -set dram=360 \
		-calibrate 'dram=90,180,360' -out "$out/calibration.json"
	"$bin/pipette-validate" "$out/calibration.json"
	grep -q '"dram": 180' "$out/calibration.json" || {
		echo "correlation: calibration did not recover dram=180" >&2
		grep -A3 '"best"' "$out/calibration.json" >&2 || true
		exit 1
	}
	echo "correlation OK"
}

case "${1:-}" in
lint)
	lint
	exit 0
	;;
smoke)
	smoke
	exit 0
	;;
sweep-smoke)
	sweep_smoke
	exit 0
	;;
diverge-smoke)
	diverge_smoke
	exit 0
	;;
profile-smoke)
	profile_smoke
	exit 0
	;;
experiments-check)
	experiments_check
	exit 0
	;;
correlation)
	correlation
	exit 0
	;;
benchguard-test)
	./scripts/benchguard_test.sh
	exit 0
	;;
bench)
	./scripts/benchguard.sh
	exit 0
	;;
esac

lint
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "== steady-state allocation gate =="
# The gate skips itself under -race (instrumentation allocates), so run it
# once without the detector.
go test -run TestSteadyStateAllocs ./internal/sim/
smoke
sweep_smoke
diverge_smoke
profile_smoke
./scripts/benchguard_test.sh
experiments_check
echo "== benchmark regression guard =="
./scripts/benchguard.sh
echo "CI OK"
