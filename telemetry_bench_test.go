package pipette

import (
	"io"
	"testing"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Telemetry overhead benchmarks. ISSUE acceptance: the disabled path (a nil
// check on every hook) must cost < 2% of cycle time vs. the pre-telemetry
// seed. Run with
//
//	go test -bench=TelemetryOverhead -benchtime=5x -run '^$'
//
// and compare the off/tracing/sampling wall times directly.

func telemetryRun(b *testing.B, enable func(*sim.System)) {
	b.Helper()
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Cache = cache.DefaultConfig().Scale(8)
		cfg.WatchdogCycles = 5_000_000
		s := sim.New(cfg)
		if enable != nil {
			enable(s)
		}
		if _, err := bench.Run(s, bench.BFSPipette(g, 0, 4, true)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverheadOff is the baseline: hooks present, tracer nil.
func BenchmarkTelemetryOverheadOff(b *testing.B) {
	telemetryRun(b, nil)
}

// BenchmarkTelemetryOverheadTracing measures the fully-enabled tracer
// (every queue/trap/RA/connector/cache event into the ring).
func BenchmarkTelemetryOverheadTracing(b *testing.B) {
	telemetryRun(b, func(s *sim.System) { s.EnableTracing(0) })
}

// BenchmarkTelemetryOverheadSampling measures sampling alone (one sample
// per 1,024 cycles).
func BenchmarkTelemetryOverheadSampling(b *testing.B) {
	telemetryRun(b, func(s *sim.System) { s.EnableSampling(0) })
}

// BenchmarkTelemetryOverheadFull enables both layers at once, bounding the
// in-simulation cost of the whole observability stack.
func BenchmarkTelemetryOverheadFull(b *testing.B) {
	telemetryRun(b, func(s *sim.System) {
		s.EnableTracing(0)
		s.EnableSampling(0)
	})
}

// BenchmarkProfileOverheadOff is the cycle-accounting baseline: the
// profiling hooks are compiled in but disabled (one nil check per cycle).
// benchguard holds this within the same ceiling family as the telemetry-off
// path — the ISSUE budget is < 2% over the unhooked seed.
func BenchmarkProfileOverheadOff(b *testing.B) {
	telemetryRun(b, nil)
}

// BenchmarkProfileOverheadOn measures the fully-enabled cycle account:
// per-cycle slot attribution, per-thread CPI stacks, queue-occupancy
// histograms and outstanding-load tracking.
func BenchmarkProfileOverheadOn(b *testing.B) {
	telemetryRun(b, func(s *sim.System) { s.EnableProfiling() })
}

// BenchmarkTelemetryExport measures the end-of-run sink cost alone
// (Chrome-trace JSON of a full ring + metrics CSV); it is paid once per
// run, never per cycle, and dominates the fully-enabled path.
func BenchmarkTelemetryExport(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 5_000_000
	s := sim.New(cfg)
	s.EnableTracing(0)
	s.EnableSampling(0)
	if _, err := bench.Run(s, bench.BFSPipette(ablGraph(), 0, 4, true)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := telemetry.WriteChromeTrace(io.Discard, s.Tracer(), s.Sampler()); err != nil {
			b.Fatal(err)
		}
		if err := s.Sampler().WriteCSV(io.Discard, core.StallNames()); err != nil {
			b.Fatal(err)
		}
	}
}
