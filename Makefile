GO ?= go

.PHONY: all build tools staticcheck-tool lint vet test race smoke sweep-smoke diverge-smoke profile-smoke speculate-smoke serve-smoke bench benchguard benchguard-test experiments-check experiments-regen correlation write-ref perfbench rebaseline ci clean

all: build

build:
	$(GO) build ./...

# One shared build of every command into build/bin/ (the CI stages and
# workflow jobs all consume this instead of ad-hoc go build preambles).
tools:
	mkdir -p build/bin
	$(GO) build -o build/bin/ ./cmd/...

# STATICCHECK_VERSION pins the lint tool so results do not drift with
# upstream releases; bump deliberately. The install lands in build/bin
# (where actions/setup-go's build cache keeps it warm across CI runs) and
# needs network on the first run — offline boxes skip it and `make lint`
# notes the skip instead of failing.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck-tool:
	mkdir -p build/bin
	@if [ -x build/bin/staticcheck ]; then \
		echo "staticcheck already in build/bin"; \
	else \
		GOBIN=$(CURDIR)/build/bin $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) \
			|| echo "staticcheck install failed (offline?); make lint will skip it"; \
	fi

# Lint: gofmt cleanliness + go vet + staticcheck SA checks (CI's first
# stage; staticcheck is skipped with a note when not installed).
lint:
	./scripts/ci.sh lint

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke: one full pipette run emitting every telemetry artifact, validated
# against the schemas (report consistency, trace coverage of >= 3 component
# types, metrics CSV shape).
smoke:
	./scripts/ci.sh smoke

# Sweep smoke: both shards of a sharded tiny evaluation sweep through a
# shared result cache, plus a warm all-hits re-run, run sets validated.
sweep-smoke:
	./scripts/ci.sh sweep-smoke

# Checkpoint/diverge smoke: resume a checkpointed run (stdout must be
# byte-identical to the uninterrupted run) and bisect a config divergence
# with pipette-diverge (see docs/CHECKPOINT.md).
diverge-smoke:
	./scripts/ci.sh diverge-smoke

# Cycle-accounting smoke: a profiled run's v2 report must validate
# (conservation included) and the -http live endpoint must serve /top and
# /debug/vars mid-run (see docs/PROFILING.md).
profile-smoke:
	./scripts/ci.sh profile-smoke

# Speculative-kernel smoke: a -speculate -epoch 64 CLI run must match the
# barrier run and emit a conserved speculation report section
# (docs/SPECULATION.md).
speculate-smoke:
	./scripts/ci.sh speculate-smoke

# Simulation-service smoke: pipette-server lifecycle — load-verified
# multi-tenant jobs, record validation, SIGTERM drain, and restart-resume
# of a hand-seeded queued job (see docs/SERVER.md).
serve-smoke:
	./scripts/ci.sh serve-smoke

bench:
	$(GO) test -bench='TelemetryOverhead|ProfileOverhead' -benchtime=2x -run ^$$ .
	$(GO) test -bench=SweepThroughput -benchtime=2x -run ^$$ ./internal/harness

# Benchmark regression guard: fails if TelemetryOverheadOff, the
# ProfileOverhead pair, SweepThroughput or the kernel-throughput rows
# exceed the thresholds in build/baselines/, or if the bfs+silo subset
# drifts outside the model-fidelity tolerance bands (docs/VALIDATION.md).
benchguard:
	./scripts/benchguard.sh

# Unit tests for the benchguard threshold logic (scripts/benchlib.sh),
# pure shell on synthetic files.
benchguard-test:
	./scripts/benchguard_test.sh

# Stale-artifact gate: the committed experiments_output_tiny.txt must match
# a fresh tiny-scale regeneration byte for byte.
experiments-check:
	./scripts/ci.sh experiments-check

# Regenerate the committed tiny-scale transcript (stdout only — timing
# lines go to stderr) after an intentional model change, then commit it.
experiments-regen: tools
	build/bin/pipette-bench -exp all -tiny -quiet \
		-sweep-cache build/sweepcache > experiments_output_tiny.txt

# Model-fidelity correlation gate: full tiny matrix vs the committed
# reference, mis-model trip check, and a calibration-recovery demo
# (docs/VALIDATION.md).
correlation:
	./scripts/ci.sh correlation

# Regenerate the model-fidelity reference table from the current model
# (re-baselining after an intentional model change; commit the result).
write-ref: tools
	build/bin/pipette-calibrate -tiny -quiet -sweep-cache build/sweepcache \
		-write-ref -ref build/baselines/paper_reference.json

# Simulation-kernel throughput: cycles/sec and host-ns per simulated cycle
# for every app, fast-forward on vs off, written to BENCH_kernel.json
# (commit the result; see docs/ARCHITECTURE.md).
perfbench:
	$(GO) run ./cmd/pipette-kernelbench -out BENCH_kernel.json

# Rewrite the benchmark thresholds at 4x currently measured (commit the
# result; see docs/SWEEP.md).
rebaseline:
	./scripts/benchguard.sh -update

ci:
	./scripts/ci.sh

# Removes generated artifacts but keeps the checked-in benchmark baselines
# under build/baselines/.
clean:
	rm -rf build/smoke build/sweepcache build/bin
	rm -f cpu.out mem.out
