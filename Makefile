GO ?= go

.PHONY: all build vet test race smoke bench ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke: one full pipette run emitting every telemetry artifact, validated
# against the schemas (report consistency, trace coverage of >= 3 component
# types, metrics CSV shape).
smoke:
	./scripts/ci.sh smoke

bench:
	$(GO) test -bench=TelemetryOverhead -benchtime=2x -run ^$$ .

ci:
	./scripts/ci.sh

clean:
	rm -rf build
