// Silo: YCSB-C zipfian lookups against a B+tree index (Fig. 8). The Pipette
// version overlaps several tree traversals per lookup thread by recycling
// queries through a bounded feedback queue — the pipeline-with-a-cycle
// pattern the paper uses to show that bounded cycles are deadlock-free.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	const keys, queries = 30000, 1500

	run := func(name string, b pipette.Builder) pipette.Result {
		cfg := pipette.DefaultConfig()
		cfg.Cache = cfg.Cache.Scale(8)
		sys := pipette.NewSystem(cfg)
		r, err := pipette.Run(sys, b)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-14s cycles=%9d IPC=%.2f  (%.1f cycles/query)\n",
			name, r.Cycles, r.IPC(), float64(r.Cycles)/queries)
		return r
	}

	fmt.Printf("B+tree with %d keys; %d zipfian (YCSB-C) lookups\n\n", keys, queries)
	serial := run("serial", pipette.SiloSerial(keys, queries, 99))
	dp := run("data-parallel", pipette.SiloDataParallel(keys, queries, 4, 99))
	pip := run("pipette", pipette.SiloPipette(keys, queries, true, 99))

	fmt.Printf("\nPipette: %.2fx over serial, %.2fx over data-parallel\n",
		float64(serial.Cycles)/float64(pip.Cycles),
		float64(dp.Cycles)/float64(pip.Cycles))
}
