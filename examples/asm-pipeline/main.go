// asm-pipeline: the same producer/RA/consumer pipeline as custom-pipeline,
// but with the thread programs written in the textual assembly syntax and
// embedded from .s files — the workflow for writing new Pipette kernels
// without touching the builder API.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"pipette"
)

//go:embed kernels/producer.s
var producerSrc string

//go:embed kernels/consumer.s
var consumerSrc string

func main() {
	const n = 2000
	sys := pipette.NewSystem(pipette.DefaultConfig())

	// A table of squares for the indirect RA: queue 0 carries indices,
	// queue 1 receives table[i] = i*i.
	table := sys.Mem.AllocWords(n + 1)
	var want uint64
	for i := uint64(1); i <= n; i++ {
		sys.Mem.Write64(table+i*8, i*i)
		want += i * i
	}
	res := sys.Mem.AllocWords(1)

	producer, err := pipette.ParseAsm(producerSrc)
	if err != nil {
		log.Fatal(err)
	}
	producer.InitRegs[2] = n

	consumer, err := pipette.ParseAsm(consumerSrc)
	if err != nil {
		log.Fatal(err)
	}
	consumer.InitRegs[9] = res

	core := sys.Cores[0]
	core.Load(0, producer)
	core.Load(1, consumer)
	pipette.NewRA(core, pipette.RAConfig{
		Mode: pipette.RAIndirect, In: 0, Out: 1, Base: table,
	})

	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	got := sys.Mem.Read64(res)
	fmt.Printf("sum of squares 1..%d = %d (want %d) in %d cycles, IPC %.2f\n",
		n, got, want, r.Cycles, r.IPC())
	if got != want {
		log.Fatal("MISMATCH")
	}
}
