; Producer: stream the numbers 1..N into queue 0, then a Done control value.
; r1 = counter, r2 = N (set by the host), r10 = queue 0 input.
.name producer
.map r10 q0 in

loop:
  addi r1, r1, 1
  mov  r10, r1        ; implicit enqueue
  bne  r1, r2, loop
  enqc q0, 0          ; Done
  halt
