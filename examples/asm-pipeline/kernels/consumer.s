; Consumer: sum the squares of everything in queue 1 until the Done control
; value arrives, then store the total at the address in r9.
; (Queue 1 is the output of an indirect squaring RA fed by queue 0.)
.name consumer
.map r11 q1 out
.ondeq done

loop:
  mov r2, r11         ; implicit dequeue (traps to `done` on the CV)
  add r1, r1, r2
  jmp loop

done:
  st8 r9, 0, r1
  halt
