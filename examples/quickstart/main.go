// Quickstart: run BFS on a road-network graph in three configurations —
// serial, 4-thread data-parallel, and the Pipette pipeline with reference
// accelerators — on the same simulated core, reproducing the headline
// comparison of Fig. 2.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	g := pipette.RoadGraph(90, 90, 7)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N, g.M())

	run := func(name string, cores int, b pipette.Builder) pipette.Result {
		cfg := pipette.DefaultConfig()
		cfg.Cores = cores
		// Scale the caches down so the scaled-down graph still exceeds
		// the LLC, like the paper's inputs do (see DESIGN.md).
		cfg.Cache = cfg.Cache.Scale(8)
		sys := pipette.NewSystem(cfg)
		r, err := pipette.Run(sys, b)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-14s cycles=%9d  IPC=%.2f  instructions=%d\n",
			name, r.Cycles, r.IPC(), r.Committed)
		return r
	}

	serial := run("serial", 1, pipette.BFSSerial(g, 0))
	dp := run("data-parallel", 1, pipette.BFSDataParallel(g, 0, 4))
	pip := run("pipette", 1, pipette.BFSPipette(g, 0, 4, true))

	fmt.Printf("\nPipette speedup: %.2fx over serial, %.2fx over data-parallel\n",
		float64(serial.Cycles)/float64(pip.Cycles),
		float64(dp.Cycles)/float64(pip.Cycles))
}
