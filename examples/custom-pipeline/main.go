// Custom pipeline: build a Pipette program directly against the public API.
//
// The kernel is a two-stage gather-reduce — the simplest shape that shows
// every Pipette mechanism end to end:
//
//	producer thread: streams indices into a queue, delimits batches with
//	                 control values, and terminates with a Done CV
//	indirect RA:     turns each index i into table[i] (queue -> queue)
//	consumer thread: accumulates values; its dequeue control handler fires
//	                 on each batch delimiter and stores the partial sum
//
// This is the Fig. 3 pattern: the loads that feed the reduction are issued
// by an accelerator and the inner loops contain no end-of-batch checks.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	cfg := pipette.DefaultConfig()
	sys := pipette.NewSystem(cfg)

	// Lay out a table and the result area in simulated memory.
	const n = 4096
	const batches = 8
	table := sys.Mem.AllocWords(n)
	for i := uint64(0); i < n; i++ {
		sys.Mem.Write64(table+i*8, i*i%1000)
	}
	results := sys.Mem.AllocWords(batches)

	const (
		qIdx uint8 = 0 // producer -> RA (indices)
		qVal uint8 = 1 // RA -> consumer (gathered values)
	)

	// Producer: for each batch, enqueue n/batches indices (a strided
	// permutation so the gather is irregular), then a control value
	// carrying the batch number.
	p := pipette.NewProgram("producer")
	const rIdx, rCnt, rBatch pipette.Reg = 1, 2, 3
	const mOut pipette.Reg = 26
	p.MapQ(mOut, qIdx, pipette.QueueIn)
	p.SetReg(rBatch, 0)
	p.Label("batch")
	p.MovI(rCnt, n/batches)
	p.Label("loop")
	p.ShlI(rIdx, rBatch, 9)
	p.Add(rIdx, rIdx, rCnt)
	p.MulI(rIdx, rIdx, 2654435761) // pseudo-random index, distinct per batch
	p.AndI(rIdx, rIdx, n-1)
	p.Mov(mOut, rIdx) // implicit enqueue
	p.SubI(rCnt, rCnt, 1)
	p.BneI(rCnt, 0, "loop")
	p.EnqC(qIdx, rBatch) // batch delimiter
	p.AddI(rBatch, rBatch, 1)
	p.BneI(rBatch, batches, "batch")
	p.EnqCI(qIdx, batches) // Done marker (batch id == batches)
	p.Halt()

	// Consumer: sum values; the handler stores each batch's sum.
	c := pipette.NewProgram("consumer")
	const rSum, rT pipette.Reg = 1, 15
	const mIn pipette.Reg = 27
	c.MapQ(mIn, qVal, pipette.QueueOut)
	c.OnDeqCV("flush")
	c.SetReg(rSum, 0)
	c.MovU(rT, results)
	c.Label("loop")
	c.Add(rSum, rSum, mIn) // implicit dequeue; traps on delimiters
	c.Jmp("loop")
	c.Label("flush")
	// RHCV holds the batch id the producer enqueued.
	c.BeqI(pipette.RHCV, batches, "done")
	c.ShlI(rT, pipette.RHCV, 3)
	c.AddI(rT, rT, int64(results))
	c.St8(rT, 0, rSum)
	c.MovI(rSum, 0)
	c.Jmp("loop")
	c.Label("done")
	c.Halt()

	core := sys.Cores[0]
	core.Load(0, p.MustLink())
	core.Load(1, c.MustLink())
	pipette.NewRA(core, pipette.RAConfig{
		Mode: pipette.RAIndirect, In: qIdx, Out: qVal, Base: table, ElemBytes: 8,
	})

	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d instructions in %d cycles (IPC %.2f)\n",
		r.Committed, r.Cycles, r.IPC())
	for b := 0; b < batches; b++ {
		fmt.Printf("batch %d sum = %d\n", b, sys.Mem.Read64(results+uint64(b)*8))
	}
	st := r.CoreStats[0]
	fmt.Printf("queue traffic: %d enqueues, %d dequeues, %d control-value traps\n",
		st.Enqueues, st.Dequeues, st.CVTraps)
}
