// SpMM: inner-product sparse matrix-matrix multiply (the Fig. 4/5 kernel).
// Compares the data-parallel implementation with the Pipette pipeline whose
// merge-intersect stage uses control values to delimit rows/columns and
// skip_to_ctrl to abandon hopeless segments early.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	// A wide-banded matrix times a sparse one maximizes early-termination
	// opportunities (the Fig. 5 scenario).
	a := pipette.BandedMatrix("banded", 300, 30, 1)
	bm := pipette.RandomMatrix("random", 300, 4, 2)
	fmt.Printf("A: %dx%d, %d nnz (%.1f/row); B: %d nnz (%.1f/row)\n\n",
		a.N, a.N, a.NNZ(), a.AvgNNZPerRow(), bm.NNZ(), bm.AvgNNZPerRow())

	run := func(name string, b pipette.Builder) pipette.Result {
		cfg := pipette.DefaultConfig()
		cfg.Cache = cfg.Cache.Scale(8)
		sys := pipette.NewSystem(cfg)
		r, err := pipette.Run(sys, b)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		st := r.CoreStats[0]
		fmt.Printf("%-14s cycles=%9d IPC=%.2f skips=%d discarded=%d enq-handler-traps=%d\n",
			name, r.Cycles, r.IPC(), st.SkipOps, st.SkipDiscard, st.EnqTraps)
		return r
	}

	dp := run("data-parallel", pipette.SpMMDataParallel(a, bm, 4))
	pip := run("pipette", pipette.SpMMPipette(a, bm, true))
	noRA := run("pipette-noRA", pipette.SpMMPipette(a, bm, false))

	fmt.Printf("\nPipette vs data-parallel: %.2fx; RAs contribute %.2fx\n",
		float64(dp.Cycles)/float64(pip.Cycles),
		float64(noRA.Cycles)/float64(pip.Cycles))
}
