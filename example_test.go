package pipette_test

import (
	"fmt"
	"log"

	"pipette"
)

// Running a paper benchmark: Pipette BFS on a road-network graph, validated
// against the reference implementation automatically.
func Example() {
	g := pipette.RoadGraph(24, 24, 42)
	sys := pipette.NewSystem(pipette.DefaultConfig())
	r, err := pipette.Run(sys, pipette.BFSPipette(g, 0, 4, true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Committed > 0, r.Cycles > 0)
	// Output: true true
}

// Building a custom two-stage pipeline with a control-value terminator: the
// producer streams values and a Done marker; the consumer's dequeue handler
// fires on the marker.
func ExampleNewProgram() {
	sys := pipette.NewSystem(pipette.DefaultConfig())
	res := sys.Mem.AllocWords(1)

	p := pipette.NewProgram("producer")
	p.MapQ(20, 0, pipette.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(20, 1) // writing a mapped register enqueues
	p.BneI(1, 100, "loop")
	p.EnqCI(0, 0) // control value: done
	p.Halt()

	c := pipette.NewProgram("consumer")
	c.MapQ(21, 0, pipette.QueueOut)
	c.OnDeqCV("done")
	c.MovI(1, 0)
	c.Label("loop")
	c.Add(1, 1, 21) // reading a mapped register dequeues
	c.Jmp("loop")
	c.Label("done")
	c.MovU(2, res)
	c.St8(2, 0, 1)
	c.Halt()

	sys.Cores[0].Load(0, p.MustLink())
	sys.Cores[0].Load(1, c.MustLink())
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Mem.Read64(res))
	// Output: 5050
}

// Assembling a kernel from text (the examples/asm-pipeline workflow).
func ExampleParseAsm() {
	prog, err := pipette.ParseAsm(`
.name demo
.set r1 6
loop:
  addi r2, r2, 7
  subi r1, r1, 1
  bnei r1, 0, loop
  halt
`)
	if err != nil {
		log.Fatal(err)
	}
	sys := pipette.NewSystem(pipette.DefaultConfig())
	sys.Cores[0].Load(0, prog)
	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Name, r.Committed)
	// Output: demo 19
}

// Regenerating one of the paper's tables.
func ExampleRunExperiment() {
	err := pipette.RunExperiment("table3", discard{})
	fmt.Println(err)
	// Output: <nil>
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
