// Package checkpoint defines the pipette.snapshot/v1 container: a small
// versioned binary envelope holding a JSON metadata header and an opaque,
// integrity-hashed machine-state payload. The payload encoding itself (gob
// over the component State structs) belongs to internal/sim; this package
// only frames, hashes and validates, so it has no simulator dependencies
// and tools can inspect snapshots without constructing a system.
//
// Layout:
//
//	8 bytes  magic "PIPSNAP1"
//	uvarint  metadata length, then that many bytes of JSON (Meta)
//	uvarint  payload length, then that many bytes of payload
//
// Meta.StateHash is the hex SHA-256 of the payload; Read recomputes and
// rejects mismatches, so torn or corrupted snapshot files fail loudly
// instead of restoring garbage.
package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Schema names the snapshot format. It participates in sweep cache keys so
// stale warmup snapshots can never be replayed across a format change.
const Schema = "pipette.snapshot/v1"

var magic = [8]byte{'P', 'I', 'P', 'S', 'N', 'A', 'P', '1'}

// maxSection bounds header and payload sizes read back from disk (a
// corrupted length prefix must not trigger a huge allocation).
const maxSection = 1 << 32

// Workload records how to rebuild the program side of a snapshot: the
// restore contract is that structural state (programs, units, connectors)
// is reconstructed by re-running the same deterministic builder, and these
// fields name that builder. Zero values mean "not recorded" (e.g. harness
// warmup snapshots, which are only ever restored by the harness itself).
type Workload struct {
	App        string `json:"app,omitempty"`
	Variant    string `json:"variant,omitempty"`
	Input      string `json:"input,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	CacheScale int    `json:"cache_scale,omitempty"`
	PRDIters   int    `json:"prd_iters,omitempty"`
}

// Meta is the snapshot header.
type Meta struct {
	Schema    string          `json:"schema"`
	Cycle     uint64          `json:"cycle"`
	StateHash string          `json:"state_hash"`
	Config    json.RawMessage `json:"config,omitempty"` // sim.Config as JSON
	Workload  Workload        `json:"workload,omitempty"`
}

// HashPayload returns the hex SHA-256 of a snapshot payload — the same
// value stored in Meta.StateHash and returned by sim.System.StateHash.
func HashPayload(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Write frames meta and payload into w. It fills meta.Schema and
// meta.StateHash (any caller-provided values are overwritten — the hash is
// not an input).
func Write(w io.Writer, meta Meta, payload []byte) error {
	meta.Schema = Schema
	meta.StateHash = HashPayload(payload)
	hdr, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding metadata: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, section := range [][]byte{hdr, payload} {
		n := binary.PutUvarint(lenBuf[:], uint64(len(section)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(section); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a snapshot container, verifying the magic, schema and
// payload integrity hash.
func Read(r io.Reader) (Meta, []byte, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return Meta{}, nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return Meta{}, nil, fmt.Errorf("checkpoint: bad magic %q (not a %s file)", m[:], Schema)
	}
	hdr, err := readSection(br, "metadata")
	if err != nil {
		return Meta{}, nil, err
	}
	var meta Meta
	if err := json.Unmarshal(hdr, &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("checkpoint: decoding metadata: %w", err)
	}
	if meta.Schema != Schema {
		return Meta{}, nil, fmt.Errorf("checkpoint: snapshot schema %q, this build reads %q", meta.Schema, Schema)
	}
	payload, err := readSection(br, "payload")
	if err != nil {
		return Meta{}, nil, err
	}
	if got := HashPayload(payload); got != meta.StateHash {
		return Meta{}, nil, fmt.Errorf("checkpoint: payload hash %s does not match recorded %s (corrupt snapshot)", got, meta.StateHash)
	}
	return meta, payload, nil
}

func readSection(br *bufio.Reader, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s length: %w", what, err)
	}
	if n > maxSection {
		return nil, fmt.Errorf("checkpoint: %s length %d exceeds limit", what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", what, err)
	}
	return buf, nil
}
