package checkpoint

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// DiffJSON marshals two values to JSON and walks them in parallel,
// returning sorted "path: a != b" lines for every differing leaf.
// pipette-diverge uses it both on debug dumps and on full decoded machine
// states. Long leaf values (memory chunks, opaque unit blobs) are
// truncated so one differing byte array cannot flood the report.
func DiffJSON(a, b any) ([]string, error) {
	ja, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: diff lhs: %w", err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: diff rhs: %w", err)
	}
	var va, vb any
	if err := json.Unmarshal(ja, &va); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(jb, &vb); err != nil {
		return nil, err
	}
	var out []string
	diffWalk("", va, vb, &out)
	sort.Strings(out)
	return out, nil
}

func diffWalk(path string, a, b any, out *[]string) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			leaf(path, a, b, out)
			return
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		for k := range keys {
			diffWalk(joinPath(path, k), av[k], bv[k], out)
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			leaf(path, a, b, out)
			return
		}
		n := len(av)
		if len(bv) > n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			var ea, eb any
			if i < len(av) {
				ea = av[i]
			}
			if i < len(bv) {
				eb = bv[i]
			}
			diffWalk(fmt.Sprintf("%s[%d]", path, i), ea, eb, out)
		}
	default:
		if reflect.DeepEqual(a, b) {
			return
		}
		// []byte fields marshal as base64; unit states are JSON inside
		// (core.SaveUnitState). When both sides decode, recurse so the
		// diff names the differing field instead of two opaque blobs.
		if sa, ok := a.(string); ok {
			if sb, ok := b.(string); ok {
				ea, oka := expandBlob(sa)
				eb, okb := expandBlob(sb)
				if oka && okb {
					diffWalk(path, ea, eb, out)
					return
				}
			}
		}
		leaf(path, a, b, out)
	}
}

// expandBlob decodes a base64 string holding a JSON document, as produced
// when a JSON-encoded []byte field is itself marshalled to JSON.
func expandBlob(s string) (any, bool) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(raw) == 0 || (raw[0] != '{' && raw[0] != '[') {
		return nil, false
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, false
	}
	return v, true
}

func leaf(path string, a, b any, out *[]string) {
	*out = append(*out, fmt.Sprintf("%s: %s != %s", path, render(a), render(b)))
}

// render formats a leaf value, truncating anything long (base64 byte
// arrays and similar blobs).
func render(v any) string {
	s := fmt.Sprintf("%v", v)
	if v == nil {
		s = "<absent>"
	}
	const max = 48
	if len(s) > max {
		return fmt.Sprintf("%s... (%d bytes)", s[:max], len(s))
	}
	return s
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}
