package checkpoint

import (
	"strings"
	"testing"
)

func TestDiffJSON(t *testing.T) {
	type inner struct {
		ReadyAt uint64
		Blob    []byte
	}
	type state struct {
		Cycle uint64
		Cores []inner
	}
	a := state{Cycle: 10, Cores: []inner{{ReadyAt: 5, Blob: []byte(`{"Outstanding":[7,9]}`)}}}
	b := state{Cycle: 10, Cores: []inner{{ReadyAt: 6, Blob: []byte(`{"Outstanding":[7,12]}`)}}}
	lines, err := DiffJSON(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"Cores[0].Blob.Outstanding[1]: 9 != 12",
		"Cores[0].ReadyAt: 5 != 6",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}

	same, err := DiffJSON(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Errorf("identical values diffed: %v", same)
	}
}

func TestDiffJSONShapeMismatch(t *testing.T) {
	a := map[string]any{"X": []int{1, 2}, "Gone": 1}
	b := map[string]any{"X": []int{1}, "New": true}
	lines, err := DiffJSON(a, b)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"X[1]: 2 != <absent>", "Gone: 1 != <absent>", "New: <absent> != true"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("diff %q missing %q", joined, frag)
		}
	}
}

func TestDiffJSONTruncatesLongLeaves(t *testing.T) {
	long := strings.Repeat("x", 400)
	lines, err := DiffJSON(map[string]string{"Blob": long}, map[string]string{"Blob": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("got %v", lines)
	}
	if len(lines[0]) > 160 || !strings.Contains(lines[0], "(400 bytes)") {
		t.Errorf("long leaf not truncated: %q", lines[0])
	}
}
