// Round-trip fidelity golden test: for every benchmark app, across the
// variant shapes (serial, pipette+RA, streaming with connectors, multi
// -iteration), save a snapshot mid-run, restore
// it into a freshly built system — as a separate process would — and run to
// completion. Result, run report and final StateHash must be identical to
// the uninterrupted run.
package checkpoint_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pipette/internal/bench"
	"pipette/internal/checkpoint"
	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

func testConfig(cores int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cfg.Cache.Scale(8)
	cfg.WatchdogCycles = 200_000
	return cfg
}

type rtCase struct {
	name  string
	cores int
	build func() bench.Builder // fresh builder per system, same inputs
}

func roundTripCases() []rtCase {
	g := graph.PowerLaw(200, 4, 42)
	ma := sparse.Random("a", 48, 4, 7)
	mb := sparse.Random("b", 48, 4, 8)
	return []rtCase{
		{"bfs-serial", 1, func() bench.Builder { return bench.BFSSerial(g, 0) }},
		{"bfs-pipette-ra", 1, func() bench.Builder { return bench.BFSPipette(g, 0, 4, true) }},
		{"cc-streaming", 4, func() bench.Builder { return bench.CCStreaming(g) }},
		{"prd-pipette", 1, func() bench.Builder { return bench.PRDPipette(g, 2, true) }},
		{"radii-data-parallel", 1, func() bench.Builder { return bench.RadiiDataParallel(g, 4) }},
		{"spmm-pipette", 1, func() bench.Builder { return bench.SpMMPipette(ma, mb, true) }},
		{"silo-pipette", 1, func() bench.Builder { return bench.SiloPipette(300, 60, true, 99) }},
	}
}

func mustHash(t *testing.T, s *sim.System) string {
	t.Helper()
	h, err := s.StateHash()
	if err != nil {
		t.Fatalf("StateHash: %v", err)
	}
	return h
}

func TestRoundTripFidelity(t *testing.T) {
	for _, tc := range roundTripCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref := sim.New(testConfig(tc.cores))
			refRes, err := bench.Run(ref, tc.build())
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			refHash := mustHash(t, ref)
			if refRes.Cycles < 10 {
				t.Fatalf("reference run too short (%d cycles) to checkpoint mid-run", refRes.Cycles)
			}

			// Interrupted run: save at the midpoint.
			half := refRes.Cycles / 2
			s2 := sim.New(testConfig(tc.cores))
			tc.build()(s2)
			if _, err := s2.RunUntil(half); err != nil {
				t.Fatalf("run to cycle %d: %v", half, err)
			}
			if s2.Done() {
				t.Fatalf("workload finished before midpoint cycle %d", half)
			}
			var snap bytes.Buffer
			if err := s2.Save(&snap, checkpoint.Workload{App: tc.name}); err != nil {
				t.Fatalf("Save: %v", err)
			}

			// Fresh process: rebuild the same workload, restore, finish.
			s3 := sim.New(testConfig(tc.cores))
			check := tc.build()(s3)
			if _, err := s3.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			res3, err := s3.Run()
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if err := check(); err != nil {
				t.Fatalf("resumed result check: %v", err)
			}
			if !reflect.DeepEqual(refRes, res3) {
				t.Errorf("Result differs between uninterrupted and resumed runs:\nref: %+v\ngot: %+v", refRes, res3)
			}
			refRep, _ := json.Marshal(refRes.Report())
			gotRep, _ := json.Marshal(res3.Report())
			if !bytes.Equal(refRep, gotRep) {
				t.Errorf("run report differs:\nref: %s\ngot: %s", refRep, gotRep)
			}
			if gotHash := mustHash(t, s3); gotHash != refHash {
				t.Errorf("final StateHash differs: ref %s, resumed %s", refHash, gotHash)
			}
		})
	}
}

// TestSaveRestoreIdentity: restoring a snapshot immediately reproduces the
// exact saved state (hash equality at the save point, not just at the end).
func TestSaveRestoreIdentity(t *testing.T) {
	tc := roundTripCases()[1] // bfs-pipette-ra: queues, RA unit state in flight
	s := sim.New(testConfig(tc.cores))
	tc.build()(s)
	if _, err := s.RunUntil(2000); err != nil {
		t.Fatalf("run: %v", err)
	}
	var snap bytes.Buffer
	if err := s.Save(&snap, checkpoint.Workload{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	savedHash := mustHash(t, s)

	s2 := sim.New(testConfig(tc.cores))
	tc.build()(s2)
	meta, err := s2.Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if meta.StateHash != savedHash {
		t.Errorf("meta.StateHash %s != StateHash() at save point %s", meta.StateHash, savedHash)
	}
	if got := mustHash(t, s2); got != savedHash {
		t.Errorf("restored StateHash %s != saved %s", got, savedHash)
	}
	if s2.Now() != s.Now() {
		t.Errorf("restored cycle %d != saved %d", s2.Now(), s.Now())
	}
}

// TestContainerIntegrity: corrupting any payload byte must be detected.
func TestContainerIntegrity(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("not really machine state, but hashed all the same")
	if err := checkpoint.Write(&buf, checkpoint.Meta{Cycle: 7}, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	meta, got, err := checkpoint.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if meta.Schema != checkpoint.Schema || meta.Cycle != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mangled container: %+v", meta)
	}
	// Flip one payload byte (the last byte of the file is payload).
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := checkpoint.Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("Read accepted corrupted payload")
	}
	// Truncations fail too.
	if _, _, err := checkpoint.Read(bytes.NewReader(bad[:len(bad)/2])); err == nil {
		t.Fatal("Read accepted truncated container")
	}
	// Wrong magic.
	if _, _, err := checkpoint.Read(bytes.NewReader([]byte("GARBAGE!"))); err == nil {
		t.Fatal("Read accepted bad magic")
	}
}

// TestStrictRestoreRejectsConfigMismatch: a snapshot must not restore into
// a differently configured system via the strict path.
func TestStrictRestoreRejectsConfigMismatch(t *testing.T) {
	tc := roundTripCases()[0]
	s := sim.New(testConfig(1))
	tc.build()(s)
	if _, err := s.RunUntil(500); err != nil {
		t.Fatalf("run: %v", err)
	}
	var snap bytes.Buffer
	if err := s.Save(&snap, checkpoint.Workload{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfg := testConfig(1)
	cfg.Cache.DRAMLat += 10 // timing-only change: strict must still reject
	s2 := sim.New(cfg)
	tc.build()(s2)
	if _, err := s2.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("strict Restore accepted a config mismatch")
	}
	// The loose path accepts timing-only differences.
	s3 := sim.New(cfg)
	tc.build()(s3)
	if _, err := s3.RestoreLoose(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("RestoreLoose rejected a timing-only difference: %v", err)
	}
	// But not shape differences.
	shape := testConfig(1)
	shape.Core.PhysRegs += 8
	s4 := sim.New(shape)
	tc.build()(s4)
	if _, err := s4.RestoreLoose(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("RestoreLoose accepted a shape difference")
	}
}
