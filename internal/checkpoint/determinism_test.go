// Determinism golden test: two independent processes given the same base
// seed must reach bit-identical final machine state. StateHash covers every
// serialized field (registers, queues, caches, memory, stats), so this is a
// much stronger check than comparing Results — it is the property the
// checkpoint subsystem, the sweep cache and pipette-diverge all rest on.
package checkpoint_test

import (
	"testing"

	"pipette/internal/bench"
	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

// detCase builds a workload from a base seed the way the harness does:
// inputs come from the seeded generators, silo from the derived YCSB seed.
type detCase struct {
	name  string
	cores int
	build func(seed int64) bench.Builder
}

func determinismCases() []detCase {
	return []detCase{
		{"bfs-pipette", 1, func(seed int64) bench.Builder {
			g := graph.Inputs(1, seed)[4].G // "Rd", the road network
			return bench.BFSPipette(g, 0, 4, true)
		}},
		{"cc-streaming", 4, func(seed int64) bench.Builder {
			g := graph.Inputs(1, seed)[0].G // "Co"
			return bench.CCStreaming(g)
		}},
		{"spmm-serial", 1, func(seed int64) bench.Builder {
			ins := sparse.Inputs(1, seed)
			return bench.SpMMSerial(ins[0].M, ins[0].M)
		}},
		{"silo-pipette", 1, func(seed int64) bench.Builder {
			return bench.SiloPipette(300, 60, true, seed+98)
		}},
	}
}

func TestSameSeedSameStateHash(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run determinism check")
	}
	for _, tc := range determinismCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() (*sim.System, string) {
				s := sim.New(testConfig(tc.cores))
				if _, err := bench.Run(s, tc.build(1)); err != nil {
					t.Fatalf("run: %v", err)
				}
				return s, mustHash(t, s)
			}
			_, h1 := run()
			_, h2 := run()
			if h1 != h2 {
				t.Errorf("same seed, different final StateHash:\n  run1 %s\n  run2 %s", h1, h2)
			}
		})
	}
}

// TestSeedReachesGenerators: a different base seed must actually change the
// generated inputs — guards against a seed parameter that is plumbed but
// ignored somewhere along the chain.
func TestSeedReachesGenerators(t *testing.T) {
	g1 := graph.Inputs(1, 1)[0].G
	g2 := graph.Inputs(1, 2)[0].G
	if g1.M() == g2.M() {
		// Edge counts can collide; compare adjacency of a few vertices too.
		same := true
		for v := 0; v < 10 && v < g1.N && v < g2.N; v++ {
			a, b := g1.Ngh(v), g2.Ngh(v)
			if len(a) != len(b) {
				same = false
				break
			}
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("graph.Inputs ignores the seed: seeds 1 and 2 generated identical graphs")
		}
	}
	m1 := sparse.Inputs(1, 1)[0].M
	m2 := sparse.Inputs(1, 2)[0].M
	if m1.NNZ() == m2.NNZ() {
		t.Error("sparse.Inputs likely ignores the seed: seeds 1 and 2 generated same-nnz matrices")
	}
}
