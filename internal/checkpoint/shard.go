// Shard snapshots: the in-memory, allocation-light companion to the durable
// pipette.snapshot/v1 container. The container (checkpoint.go) stays free of
// simulator dependencies; this file is an optional layer on top that DOES
// import internal/core, because its job is epoch rollback inside a running
// simulation — the speculative kernel saves every core at epoch start and,
// on a misspeculated epoch, restores them without ever serializing to a
// byte stream. Nothing here touches the on-disk format.
package checkpoint

import "pipette/internal/core"

// ShardSnapshots holds one reusable core.State per shard. Save refills the
// retained buffers (core.SaveStateInto), so steady-state epochs allocate
// nothing for snapshotting.
type ShardSnapshots struct {
	states []core.State
}

// NewShardSnapshots sizes the snapshot set for n cores.
func NewShardSnapshots(n int) *ShardSnapshots {
	return &ShardSnapshots{states: make([]core.State, n)}
}

// Save captures every core's dynamic state into the retained buffers.
func (s *ShardSnapshots) Save(cores []*core.Core) error {
	for i, c := range cores {
		if err := c.SaveStateInto(&s.states[i]); err != nil {
			return err
		}
	}
	return nil
}

// Restore rolls core i back to its last saved state.
func (s *ShardSnapshots) Restore(c *core.Core, i int) error {
	return c.RestoreState(s.states[i])
}

// State exposes snapshot i (diagnostics and tests).
func (s *ShardSnapshots) State(i int) *core.State { return &s.states[i] }
