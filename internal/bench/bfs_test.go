package bench

import (
	"testing"

	"pipette/internal/graph"
	"pipette/internal/sim"
)

func testGraph() *graph.Graph { return graph.Road(24, 24, 42) }

func runBench(t *testing.T, cores int, b Builder) sim.Result {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.WatchdogCycles = 500_000
	s := sim.New(cfg)
	r, err := Run(s, b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBFSSerial(t *testing.T) {
	r := runBench(t, 1, BFSSerial(testGraph(), 0))
	if r.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestBFSDataParallel(t *testing.T) {
	runBench(t, 1, BFSDataParallel(testGraph(), 0, 4))
}

func TestBFSDataParallelMulticore(t *testing.T) {
	runBench(t, 2, BFSDataParallel(testGraph(), 0, 8))
}

func TestBFSPipette4StageRA(t *testing.T) {
	runBench(t, 1, BFSPipette(testGraph(), 0, 4, true))
}

func TestBFSPipette4StageNoRA(t *testing.T) {
	runBench(t, 1, BFSPipette(testGraph(), 0, 4, false))
}

func TestBFSPipette3Stage(t *testing.T) {
	runBench(t, 1, BFSPipette(testGraph(), 0, 3, false))
}

func TestBFSPipette2Stage(t *testing.T) {
	runBench(t, 1, BFSPipette(testGraph(), 0, 2, false))
}

func TestBFSPipette2StageRA(t *testing.T) {
	runBench(t, 1, BFSPipette(testGraph(), 0, 2, true))
}

// The headline claim (Fig. 2): Pipette BFS beats both serial and 4-thread
// data-parallel BFS on the same core, with higher IPC than serial.
func TestBFSPipetteBeatsDataParallel(t *testing.T) {
	g := graph.Road(40, 40, 7)
	serial := runBench(t, 1, BFSSerial(g, 0))
	dp := runBench(t, 1, BFSDataParallel(g, 0, 4))
	pip := runBench(t, 1, BFSPipette(g, 0, 4, true))
	t.Logf("serial=%d dp=%d pipette=%d cycles; IPC %.2f / %.2f / %.2f",
		serial.Cycles, dp.Cycles, pip.Cycles, serial.IPC(), dp.IPC(), pip.IPC())
	if pip.Cycles >= dp.Cycles {
		t.Errorf("Pipette (%d cycles) not faster than data-parallel (%d)", pip.Cycles, dp.Cycles)
	}
	if pip.Cycles >= serial.Cycles {
		t.Errorf("Pipette (%d cycles) not faster than serial (%d)", pip.Cycles, serial.Cycles)
	}
}

// More stages decouple more (Fig. 15): 4-stage should beat 2-stage without
// RAs.
func TestBFSStageScaling(t *testing.T) {
	g := graph.Road(40, 40, 7)
	two := runBench(t, 1, BFSPipette(g, 0, 2, false))
	four := runBench(t, 1, BFSPipette(g, 0, 4, false))
	t.Logf("2t=%d 4t=%d cycles", two.Cycles, four.Cycles)
	if four.Cycles >= two.Cycles {
		t.Errorf("4-stage (%d) not faster than 2-stage (%d)", four.Cycles, two.Cycles)
	}
}

func TestBFSStreaming(t *testing.T) {
	runBench(t, 4, BFSStreaming(testGraph(), 0))
}

func TestBFSMulticore4(t *testing.T) {
	runBench(t, 4, BFSMulticore(testGraph(), 0, 4))
}

func TestBFSMulticore16(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 16
	cfg.Core.NumQueues = 36
	cfg.Core.PhysRegs = 280
	cfg.WatchdogCycles = 1_000_000
	s := sim.New(cfg)
	if _, err := Run(s, BFSMulticore(testGraph(), 0, 16)); err != nil {
		t.Fatal(err)
	}
}
