package bench

import (
	"fmt"

	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/ra"
	"pipette/internal/sim"
)

// BFSStreaming builds the streaming-multicore baseline of Fig. 2: the same
// Pipette pipeline, but with each stage on its own single-threaded core and
// queues joined by connectors. Stage placement:
//
//	core0: fringe walk + offsets RA + neighbors RA
//	core1: duplicate stage
//	core2: distances RA
//	core3: update stage
//
// Requires a 4-core system.
func BFSStreaming(g *graph.Graph, src int) Builder {
	return func(s *sim.System) CheckFn {
		if len(s.Cores) < 4 {
			panic("bfs streaming needs 4 cores")
		}
		l := layoutBFS(s.Mem, g, src)
		caps := map[uint8]int{qVtx: 16, qRange: 16, qNgh: 28, qDupA: 28, qDupB: 20, qData: 28, qFeed: 4}
		for i := 0; i < 4; i++ {
			s.Cores[i].SetQueueCaps(caps)
		}
		ra.New(s.Cores[0], ra.Config{Mode: ra.IndirectPair, In: qVtx, Out: qRange, Base: l.g.OffsetsAddr, IssuePerCycle: 2})
		ra.New(s.Cores[0], ra.Config{Mode: ra.Scan, In: qRange, Out: qNgh, Base: l.g.NeighborsAddr, IssuePerCycle: 2})
		ra.New(s.Cores[2], ra.Config{Mode: ra.Indirect, In: qDupA, Out: qData, Base: l.dist, IssuePerCycle: 2})

		s.Cores[0].Load(0, bfsHeadProg(l, true))
		s.Cores[1].Load(0, bfsDupProg(l))
		s.Cores[3].Load(0, bfsUpdateProg(l, true))

		s.Connect(0, qNgh, 1, qNgh)   // neighbor stream to the dup core
		s.Connect(1, qDupA, 2, qDupA) // dup -> distance RA core
		s.Connect(1, qDupB, 3, qDupB) // dup -> update core
		s.Connect(2, qData, 3, qData) // fetched distances -> update core
		s.Connect(3, qFeed, 0, qFeed) // level feedback -> head core
		return checkBFS(s, l, g)
	}
}

// Multicore Pipette BFS (Fig. 17): all stages replicated on every core,
// vertices owned in contiguous per-core blocks, neighbors routed to their
// owner's update stage over cross-core queues — no shared-memory
// synchronization on distances.

// Queue ids for the multicore layout (4 + 2C queues per core).
func mcQVtx() uint8        { return 0 }
func mcQRange() uint8      { return 1 }
func mcQNgh() uint8        { return 2 }
func mcQFeed() uint8       { return 3 }
func mcQOut(i int) uint8   { return uint8(4 + i) }
func mcQIn(c, i int) uint8 { return uint8(4 + c + i) }

// mcLayout extends the BFS layout with per-core fringes. Vertices are owned
// in contiguous blocks (owner = v >> ownerShift, clamped) rather than
// round-robin, so each core's distance lines are private — modulo ownership
// would false-share every line between all cores.
type mcLayout struct {
	bfsLayout
	curFringe  []uint64 // per-core fringe buffer A
	nextFringe []uint64 // per-core fringe buffer B
	cores      int
	ownerShift int
}

func (l *mcLayout) owner(v int) int {
	o := v >> l.ownerShift
	if o >= l.cores {
		o = l.cores - 1
	}
	return o
}

func layoutBFSMC(m *mem.Memory, g *graph.Graph, src, cores int) mcLayout {
	l := mcLayout{bfsLayout: layoutBFS(m, g, src), cores: cores}
	shift := 0
	for cores<<shift < g.N {
		shift++
	}
	l.ownerShift = shift
	for c := 0; c < cores; c++ {
		l.curFringe = append(l.curFringe, m.AllocWords(uint64(g.N)))
		l.nextFringe = append(l.nextFringe, m.AllocWords(uint64(g.N)))
	}
	// Seed the source into its owner's fringe.
	m.Write64(l.curFringe[l.owner(src)], uint64(src))
	return l
}

// BFSMulticore builds the Fig. 17 Pipette multicore BFS on C cores (C a
// power of two; the system must have at least C cores). For C > 4 the core
// configuration needs NumQueues >= 4+2C; the harness provides it.
func BFSMulticore(g *graph.Graph, src, cores int) Builder {
	return func(s *sim.System) CheckFn {
		if len(s.Cores) < cores {
			panic("bfs multicore: not enough cores")
		}
		if cores&(cores-1) != 0 {
			panic("bfs multicore: cores must be a power of two")
		}
		l := layoutBFSMC(s.Mem, g, src, cores)
		caps := map[uint8]int{mcQVtx(): 12, mcQRange(): 12, mcQNgh(): 20, mcQFeed(): 4}
		perRoute := 8
		if cores > 4 {
			perRoute = 3
		}
		for i := 0; i < cores; i++ {
			caps[mcQOut(i)] = perRoute
			caps[mcQIn(cores, i)] = perRoute
		}
		for c := 0; c < cores; c++ {
			s.Cores[c].SetQueueCaps(caps)
			ra.New(s.Cores[c], ra.Config{Mode: ra.IndirectPair, In: mcQVtx(), Out: mcQRange(), Base: l.g.OffsetsAddr, IssuePerCycle: 2})
			ra.New(s.Cores[c], ra.Config{Mode: ra.Scan, In: mcQRange(), Out: mcQNgh(), Base: l.g.NeighborsAddr, IssuePerCycle: 2})
			s.Cores[c].Load(0, bfsMCHeadProg(l, c))
			s.Cores[c].Load(1, bfsMCRouteProg(l, c))
			s.Cores[c].Load(2, bfsMCUpdateProg(l, c))
		}
		for src := 0; src < cores; src++ {
			for dst := 0; dst < cores; dst++ {
				s.Connect(src, mcQOut(dst), dst, mcQIn(cores, src))
			}
		}
		return checkBFS(s, l.bfsLayout, g)
	}
}

// bfsMCHeadProg walks core c's own fringe slice and drives level control.
// Feedback carries (globalTotal, localCount).
func bfsMCHeadProg(l mcLayout, c int) *isa.Program {
	const (
		rCur isa.Reg = 4
		rCnt isa.Reg = 6
		rI   isa.Reg = 9
		rT   isa.Reg = 15
		rG   isa.Reg = 18
	)
	a := isa.NewAssembler(fmt.Sprintf("bfs-mc-head-%d", c))
	a.MapQ(mq0, mcQVtx(), isa.QueueIn)
	a.MapQ(mq3, mcQFeed(), isa.QueueOut)
	a.SetReg(rCur, l.curFringe[c])
	cnt := uint64(0)
	if l.owner(l.src) == c {
		cnt = 1
	}
	a.SetReg(rCnt, cnt)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(mq0, rT, 0)
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.EnqCI(mcQVtx(), cvEOL)
	a.Mov(rG, mq3)   // global next-fringe total
	a.Mov(rCnt, mq3) // this core's next count
	a.BeqI(rG, 0, "done")
	a.MovU(rT, l.curFringe[c]^l.nextFringe[c])
	a.Xor(rCur, rCur, rT)
	a.Jmp("level")
	a.Label("done")
	a.EnqCI(mcQVtx(), cvDone)
	a.Halt()
	return a.MustLink()
}

// bfsMCRouteProg routes each neighbor to its owner core's queue using a
// Jr-based jump table (two instructions per destination block).
func bfsMCRouteProg(l mcLayout, c int) *isa.Program {
	// Output queue registers are r1..rC; scratch lives above r16 so the
	// 16-core layout does not collide.
	const (
		rN   isa.Reg = 17
		rO   isa.Reg = 18
		rT   isa.Reg = 19
		rB   isa.Reg = 20
		rCVi isa.Reg = 21
	)
	outReg := func(i int) isa.Reg { return isa.Reg(1 + i) }

	a := isa.NewAssembler(fmt.Sprintf("bfs-mc-route-%d", c))
	a.MapQ(mq0, mcQNgh(), isa.QueueOut)
	for i := 0; i < l.cores; i++ {
		a.MapQ(outReg(i), mcQOut(i), isa.QueueIn)
	}
	a.OnDeqCV("cv")
	a.LabelAddr(rB, "table")

	a.Label("loop")
	a.Mov(rN, mq0) // neighbor (CV traps here)
	// Block ownership: owner = min(ngh >> shift, C-1).
	a.ShrI(rO, rN, int64(l.ownerShift))
	a.MovI(rT, int64(l.cores-1))
	a.Min(rO, rO, rT)
	a.ShlI(rT, rO, 1) // 2 instructions per table block
	a.Add(rT, rT, rB)
	a.Jr(rT)
	a.Label("table")
	for i := 0; i < l.cores; i++ {
		a.Mov(outReg(i), rN)
		a.Jmp("loop")
	}
	a.Label("cv")
	a.Mov(rCVi, isa.RHCV)
	for i := 0; i < l.cores; i++ {
		a.EnqC(mcQOut(i), rCVi) // broadcast the delimiter to every owner
	}
	a.BeqI(rCVi, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsMCUpdateProg merges the C incoming neighbor streams with qpoll, updates
// owned distances without atomics, and coordinates levels through a global
// barrier (arrive/release/global cells shared with the other update threads).
func bfsMCUpdateProg(l mcLayout, c int) *isa.Program {
	// Input queue registers are r1..rC; everything else sits above r16.
	// "Unreached" is tested as d+1 == 0 to save a constant register.
	const (
		rN     isa.Reg = 17
		rD     isa.Reg = 18
		rT     isa.Reg = 19
		rDist  isa.Reg = 20
		rNext  isa.Reg = 21
		rNCnt  isa.Reg = 22
		rLvl   isa.Reg = 23
		rOne   isa.Reg = 24
		rBar   isa.Reg = 25 // completed barriers
		rT2    isa.Reg = 26
		rEol   isa.Reg = 27
		rCells isa.Reg = 28
	)
	inReg := func(i int) isa.Reg { return isa.Reg(1 + i) }

	a := isa.NewAssembler(fmt.Sprintf("bfs-mc-update-%d", c))
	for i := 0; i < l.cores; i++ {
		a.MapQ(inReg(i), mcQIn(l.cores, i), isa.QueueOut)
	}
	a.MapQ(mq3, mcQFeed(), isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rDist, l.dist)
	a.SetReg(rNext, l.nextFringe[c])
	a.SetReg(rNCnt, 0)
	a.SetReg(rLvl, 1)
	a.SetReg(rCells, l.cells)
	a.SetReg(rOne, 1)
	a.SetReg(rEol, 0)
	a.SetReg(rBar, 0)

	a.Label("merge")
	for i := 0; i < l.cores; i++ {
		blk := fmt.Sprintf("s%d", i)
		a.QPoll(rT, mcQIn(l.cores, i))
		a.BeqI(rT, 0, blk)
		a.Mov(rN, inReg(i)) // may trap on a CV
		a.Jmp("have")
		a.Label(blk)
	}
	a.Jmp("merge") // nothing available; poll again

	a.Label("have")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rDist)
	a.Ld8(rD, rT, 0)
	a.AddI(rD, rD, 1) // Unreached is all-ones: reached iff d+1 != 0
	a.BneI(rD, 0, "merge")
	a.St8(rT, 0, rLvl) // sole owner: no atomics needed
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("merge")

	a.Label("cv")
	a.AddI(rEol, rEol, 1)
	a.BneI(rEol, int64(l.cores), "merge") // wait for all senders' delimiters
	a.BeqI(isa.RHCV, cvDone, "done")
	// Level end: contribute to the global count and barrier.
	a.MovI(rEol, 0)
	a.AddI(rT, rCells, cellGlobal)
	a.FetchAdd(rD, rT, rNCnt)
	a.AddI(rT, rCells, cellArrive)
	a.FetchAdd(rD, rT, rOne)
	a.AddI(rBar, rBar, 1)
	a.MovI(rT2, int64(l.cores))
	a.Mul(rT2, rT2, rBar)
	a.AddI(rD, rD, 1)
	a.Bne(rD, rT2, "wait")
	// Last arriver: publish and reset the global count.
	a.Ld8(rT, rCells, cellGlobal)
	a.St8(rCells, cellCurCnt, rT) // reuse cellCurCnt as the published total
	a.St8(rCells, cellGlobal, isa.R0)
	a.AddI(rT2, rCells, cellRelease)
	a.FetchAdd(rD, rT2, rOne)
	a.Label("wait")
	a.Ld8(rT, rCells, cellRelease)
	a.Bltu(rT, rBar, "wait")
	a.Ld8(rT, rCells, cellCurCnt) // global total
	a.Mov(mq3, rT)
	a.Mov(mq3, rNCnt) // this core's next count
	a.MovI(rNCnt, 0)
	a.AddI(rLvl, rLvl, 1)
	a.MovU(rT, l.curFringe[c]^l.nextFringe[c])
	a.Xor(rNext, rNext, rT)
	a.Jmp("merge")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}
