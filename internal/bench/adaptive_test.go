package bench

import (
	"testing"

	"pipette/internal/sparse"
)

func TestSpMMAdaptiveChoosesDPForSmallSparse(t *testing.T) {
	a := sparse.Random("small", 60, 4, 1)
	_, choice := SpMMAdaptive(a, a, 1<<20)
	if choice != VDataParallel {
		t.Fatalf("small sparse input chose %s", choice)
	}
}

func TestSpMMAdaptiveChoosesPipetteForLargeOrDense(t *testing.T) {
	dense := sparse.Banded("dense", 100, 20, 2)
	if _, choice := SpMMAdaptive(dense, dense, 1<<20); choice != VPipette {
		t.Fatalf("dense input chose %s", choice)
	}
	big := sparse.Random("big", 500, 6, 3)
	if _, choice := SpMMAdaptive(big, big, 1<<14); choice != VPipette {
		t.Fatalf("big input with a small cache chose %s", choice)
	}
}

func TestSpMMAdaptiveRuns(t *testing.T) {
	a := sparse.Random("t", 50, 4, 4)
	b, _ := SpMMAdaptive(a, a, 1<<20)
	runBench(t, 1, b)
}
