package bench

import (
	"testing"

	"pipette/internal/graph"
)

func ccGraph() *graph.Graph { return graph.Collaboration(600, 5) }

func TestCCSerial(t *testing.T) {
	runBench(t, 1, CCSerial(ccGraph()))
}

func TestCCDataParallel(t *testing.T) {
	runBench(t, 1, CCDataParallel(ccGraph(), 4))
}

func TestCCPipetteRA(t *testing.T) {
	runBench(t, 1, CCPipette(ccGraph(), true))
}

func TestCCPipetteNoRA(t *testing.T) {
	runBench(t, 1, CCPipette(ccGraph(), false))
}

func TestCCStreaming(t *testing.T) {
	runBench(t, 4, CCStreaming(ccGraph()))
}

func TestCCDisconnectedComponents(t *testing.T) {
	// Two components exercise non-trivial label propagation.
	g := graph.FromEdges("two", 8, [][2]int{
		{1, 2}, {2, 1}, {2, 3}, {3, 2}, {0, 1}, {1, 0},
		{4, 5}, {5, 4}, {6, 7}, {7, 6}, {5, 6}, {6, 5},
	})
	runBench(t, 1, CCPipette(g, true))
}
