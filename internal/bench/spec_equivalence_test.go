package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/sim"
)

// specRun is what the speculative epoch kernel must leave bit-identical to
// the per-cycle barrier kernel: final cycle, full Result, canonical state
// hash, and the byte-exact telemetry sample series. Tracing is deliberately
// absent — speculation only engages with no tracer attached (it falls back
// to the barrier kernel otherwise; TestSpecTracerFallback pins that).
type specRun struct {
	now    uint64
	result sim.Result
	hash   string
	csv    []byte
	sys    *sim.System
}

func runSpecCell(t *testing.T, app, variant, input string, speculate bool, epoch uint64, workers int, ff bool) specRun {
	t.Helper()
	b, cores, err := Lookup(app, variant, input, 2, 1)
	if err != nil {
		t.Fatalf("Lookup(%s/%s/%s): %v", app, variant, input, err)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	s.SetFastForward(ff)
	s.SetWorkers(workers)
	s.SetSpeculate(speculate)
	s.SetEpoch(epoch)
	sm := s.EnableSampling(256)
	r, err := Run(s, b)
	if err != nil {
		t.Fatalf("%s/%s/%s spec=%v workers=%d ff=%v: %v", app, variant, input, speculate, workers, ff, err)
	}
	hash, err := s.StateHash()
	if err != nil {
		t.Fatalf("StateHash: %v", err)
	}
	var csv bytes.Buffer
	if err := sm.WriteCSV(&csv, core.StallNames()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return specRun{now: s.Now(), result: r, hash: hash, csv: csv.Bytes(), sys: s}
}

// sameSpecRun asserts bit-identity of every observable in a specRun.
func sameSpecRun(t *testing.T, labelA, labelB string, a, b specRun) {
	t.Helper()
	if a.now != b.now {
		t.Errorf("final cycle differs: %s=%d %s=%d", labelA, a.now, labelB, b.now)
	}
	if !reflect.DeepEqual(a.result, b.result) {
		t.Errorf("results differ:\n  %s: %+v\n  %s: %+v", labelA, a.result, labelB, b.result)
	}
	if a.hash != b.hash {
		t.Errorf("state hash differs: %s=%s %s=%s", labelA, a.hash, labelB, b.hash)
	}
	if !bytes.Equal(a.csv, b.csv) {
		t.Errorf("telemetry series differ (%s=%d vs %s=%d bytes)", labelA, len(a.csv), labelB, len(b.csv))
	}
}

// TestSpeculativeEquivalence is the acceptance matrix for the speculative
// epoch kernel (docs/SPECULATION.md): on the 4-core streaming variant of
// every app, a barrier reference run (speculation off, workers=1,
// fast-forward on) must be bit-identical — cycles, Result, StateHash,
// telemetry CSV bytes — to every speculative cell across workers {1,4} ×
// fast-forward {on,off}, plus a short-epoch cell that stresses the
// adaptive controller's floor. Each speculative cell must also conserve
// its epoch accounting and actually commit epochs (a silently-fallen-back
// run would pass equivalence vacuously). CI runs this matrix under -race
// (the speculate job).
func TestSpeculativeEquivalence(t *testing.T) {
	cases := []struct{ app, input string }{
		{"bfs", "Rd"},
		{"cc", "Co"},
		{"prd", "Rd"},
		{"radii", "Co"},
		{"spmm", "Am"},
		{"silo", "ycsbc"},
	}
	alts := []struct {
		name    string
		epoch   uint64
		workers int
		ff      bool
	}{
		{"spec-w1-ff", 64, 1, true},
		{"spec-w4-ff", 64, 4, true},
		{"spec-w1-noff", 64, 1, false},
		{"spec-w4-noff", 64, 4, false},
		{"spec-w1-ff-epoch8", 8, 1, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/streaming", tc.app), func(t *testing.T) {
			t.Parallel()
			ref := runSpecCell(t, tc.app, VStreaming, tc.input, false, 0, 1, true)
			for _, alt := range alts {
				got := runSpecCell(t, tc.app, VStreaming, tc.input, true, alt.epoch, alt.workers, alt.ff)
				sameSpecRun(t, "barrier", alt.name, ref, got)
				st := got.sys.SpecStats()
				if err := st.Conserved(); err != nil {
					t.Errorf("%s: %v", alt.name, err)
				}
				if st.Commits == 0 {
					t.Errorf("%s: speculative kernel never committed an epoch (stats %+v)", alt.name, st)
				}
			}
		})
	}
}

// TestSpecCheckpointEquivalence drives the segmented RunUntil loop with
// speculation on versus off, comparing the canonical state hash at every
// segment boundary: the speculative kernel must land a segment bound on
// exactly the barrier kernel's state (epochs are capped at the bound), and
// its replicas must resync correctly across segment re-entry.
func TestSpecCheckpointEquivalence(t *testing.T) {
	build := func(spec bool) *sim.System {
		b, cores, err := Lookup("bfs", VStreaming, "Rd", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetSpeculate(spec)
		b(s)
		return s
	}
	off, on := build(false), build(true)
	const seg = 5000
	for i := 0; i < 200 && !(off.Done() && on.Done()); i++ {
		target := uint64((i + 1) * seg)
		if _, err := off.RunUntil(target); err != nil {
			t.Fatalf("barrier segment %d: %v", i, err)
		}
		if _, err := on.RunUntil(target); err != nil {
			t.Fatalf("spec segment %d: %v", i, err)
		}
		if off.Now() != on.Now() {
			t.Fatalf("segment %d: cycle barrier=%d spec=%d", i, off.Now(), on.Now())
		}
		ho, err := off.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		hs, err := on.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if ho != hs {
			t.Fatalf("segment %d (cycle %d): state diverged", i, off.Now())
		}
	}
	if !off.Done() || !on.Done() {
		t.Fatalf("workload did not finish within segments (barrier=%v spec=%v)", off.Done(), on.Done())
	}
	if err := on.SpecStats().Conserved(); err != nil {
		t.Fatal(err)
	}
}

// TestSpecTracerFallback pins the silent-fallback contract: with a tracer
// attached, -speculate runs the per-cycle barrier kernel (epoch produce
// cannot stage per-cycle event streams), so the traced run must match a
// plain traced run event for event — and record zero epochs.
func TestSpecTracerFallback(t *testing.T) {
	run := func(spec bool) (ffRun, *sim.System) {
		b, cores, err := Lookup("bfs", VStreaming, "Rd", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetSpeculate(spec)
		tr := s.EnableTracing(1 << 16)
		r, err := Run(s, b)
		if err != nil {
			t.Fatal(err)
		}
		hash, err := s.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		return ffRun{now: s.Now(), result: r, hash: hash,
			events: tr.Events(), emitted: tr.Total()}, s
	}
	ref, _ := run(false)
	got, s := run(true)
	sameRun(t, "plain", "spec+tracer", ref, got)
	if st := s.SpecStats(); st.Epochs != 0 {
		t.Errorf("traced run speculated anyway: %+v", st)
	}
}
