package bench

import (
	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/ra"
	"pipette/internal/sim"
)

// Mapped-register conventions for pipeline stages: queue endpoints live in
// r26..r29 so they never collide with scratch registers.
const (
	mq0 isa.Reg = 26
	mq1 isa.Reg = 27
	mq2 isa.Reg = 28
	mq3 isa.Reg = 29
)

// BFSPipette builds the Pipette BFS pipeline on one 4-thread core.
// stages selects the decoupling depth (2, 3 or 4, Fig. 15); useRA offloads
// producer loads to reference accelerators. The paper's default BFS
// ("Pipette") is stages=4, useRA=true.
func BFSPipette(g *graph.Graph, src, stages int, useRA bool) Builder {
	return bfsPipette(g, src, stages, useRA, 1.0)
}

// BFSPipetteScaled is BFSPipette (4 stages, RAs) with queue capacities
// scaled by qscale, used by the Fig. 14 PRF sweep: larger PRFs allow deeper
// queues and thus more decoupling.
func BFSPipetteScaled(g *graph.Graph, src int, qscale float64) Builder {
	return bfsPipette(g, src, 4, true, qscale)
}

func bfsPipette(g *graph.Graph, src, stages int, useRA bool, qscale float64) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutBFS(s.Mem, g, src)
		c := s.Cores[0]
		// Size queues like the paper (up to 32 entries), spending the QRM
		// budget on the latency-critical streams: deep queues buy MLP on
		// the indirection chain, shallow ones suffice for control.
		caps := map[uint8]int{
			qVtx: 16, qRange: 16, qNgh: 28, qDupA: 28, qDupB: 20, qData: 28, qFeed: 4,
		}
		if qscale != 1.0 {
			for k, v := range caps {
				n := int(float64(v) * qscale)
				if n < 2 {
					n = 2
				}
				caps[k] = n
			}
		}
		c.SetQueueCaps(caps)
		switch {
		case useRA && stages >= 4:
			// T0 fringe walk -> RA0(offsets pair) -> RA1(neighbors scan)
			// -> T1 dup -> {RA2(distances), T2 update}.
			ra.New(c, ra.Config{Mode: ra.IndirectPair, In: qVtx, Out: qRange, Base: l.g.OffsetsAddr, IssuePerCycle: 2})
			ra.New(c, ra.Config{Mode: ra.Scan, In: qRange, Out: qNgh, Base: l.g.NeighborsAddr, IssuePerCycle: 2})
			ra.New(c, ra.Config{Mode: ra.Indirect, In: qDupA, Out: qData, Base: l.dist, IssuePerCycle: 2})
			c.Load(0, bfsHeadProg(l, true))
			c.Load(1, bfsDupProg(l))
			c.Load(2, bfsUpdateProg(l, true))
		case useRA: // 2t+RA: the Fig. 15 pitfall configuration
			ra.New(c, ra.Config{Mode: ra.IndirectPair, In: qVtx, Out: qRange, Base: l.g.OffsetsAddr, IssuePerCycle: 2})
			ra.New(c, ra.Config{Mode: ra.Scan, In: qRange, Out: qNgh, Base: l.g.NeighborsAddr, IssuePerCycle: 2})
			ra.New(c, ra.Config{Mode: ra.Indirect, In: qDupA, Out: qData, Base: l.dist, IssuePerCycle: 2})
			c.Load(0, bfsHeadProg(l, true))
			c.Load(1, bfsCoupledUpdateProg(l))
		case stages >= 4:
			c.Load(0, bfsHeadProg(l, false))
			c.Load(1, bfsEnumProg(l, true))
			c.Load(2, bfsFetchProg(l))
			c.Load(3, bfsUpdateProg(l, true))
		case stages == 3:
			c.Load(0, bfsHeadProg(l, false))
			c.Load(1, bfsEnumProg(l, false))
			c.Load(2, bfsFetchUpdateProg(l))
		default: // 2 stages
			c.Load(0, bfsHeadEnumProg(l))
			c.Load(1, bfsFetchUpdateProg(l))
		}
		return checkBFS(s, l, g)
	}
}

// bfsHeadProg is the "process current fringe" stage. With useRA it enqueues
// vertex ids into qVtx (an IndirectPair RA fetches offsets); without, it
// loads offsets itself and enqueues (start,end) pairs into qRange. It owns
// level control: end-of-level CV, feedback dequeue, termination CV.
func bfsHeadProg(l bfsLayout, useRA bool) *isa.Program {
	const (
		rOff isa.Reg = 1
		rCur isa.Reg = 4
		rCnt isa.Reg = 6
		rI   isa.Reg = 9
		rT   isa.Reg = 15
	)
	outQ := qRange
	if useRA {
		outQ = qVtx
	}
	a := isa.NewAssembler("bfs-head")
	a.MapQ(mq0, outQ, isa.QueueIn)
	a.MapQ(mq3, qFeed, isa.QueueOut)
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rCnt, 1)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	if useRA {
		a.Ld8(mq0, rT, 0) // enqueue v straight from the fringe load
	} else {
		a.Ld8(rT, rT, 0) // v
		a.ShlI(rT, rT, 3)
		a.Add(rT, rT, rOff)
		a.Ld8(mq0, rT, 0) // enqueue start
		a.Ld8(mq0, rT, 8) // enqueue end
	}
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.EnqCI(outQ, cvEOL)
	a.Mov(rCnt, mq3) // blocks until the update stage reports the next level
	a.BeqI(rCnt, 0, "done")
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rCur, rCur, rT) // swap fringe buffers
	a.Jmp("level")
	a.Label("done")
	a.EnqCI(outQ, cvDone)
	a.Halt()
	return a.MustLink()
}

// bfsHeadEnumProg merges the head and enumerate stages (2-stage pipeline):
// fringe walk + offsets + neighbor loads, enqueueing neighbors into qNgh.
func bfsHeadEnumProg(l bfsLayout) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rCur   isa.Reg = 4
		rCnt   isa.Reg = 6
		rI     isa.Reg = 9
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rT     isa.Reg = 15
	)
	a := isa.NewAssembler("bfs-head-enum")
	a.MapQ(mq0, qNgh, isa.QueueIn)
	a.MapQ(mq3, qFeed, isa.QueueOut)
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rCnt, 1)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(rT, rT, 0)
	a.ShlI(rT, rT, 3)
	a.Add(rT, rT, rOff)
	a.Ld8(rStart, rT, 0)
	a.Ld8(rEnd, rT, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(mq0, rT, 0) // enqueue neighbor
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.EnqCI(qNgh, cvEOL)
	a.Mov(rCnt, mq3)
	a.BeqI(rCnt, 0, "done")
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rCur, rCur, rT)
	a.Jmp("level")
	a.Label("done")
	a.EnqCI(qNgh, cvDone)
	a.Halt()
	return a.MustLink()
}

// bfsEnumProg is the "enumerate neighbors" stage: (start,end) pairs in,
// neighbor ids out. With dup=true it feeds both the fetch stage (qDupA) and
// the update stage (qDupB); otherwise only qNgh.
func bfsEnumProg(l bfsLayout, dup bool) *isa.Program {
	const (
		rNgh   isa.Reg = 2
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rT     isa.Reg = 15
		rV     isa.Reg = 16
	)
	a := isa.NewAssembler("bfs-enum")
	a.MapQ(mq0, qRange, isa.QueueOut)
	if dup {
		a.MapQ(mq1, qDupA, isa.QueueIn)
		a.MapQ(mq2, qDupB, isa.QueueIn)
	} else {
		a.MapQ(mq1, qNgh, isa.QueueIn)
	}
	a.OnDeqCV("cv")
	a.SetReg(rNgh, l.g.NeighborsAddr)

	a.Label("loop")
	a.Mov(rStart, mq0)
	a.Mov(rEnd, mq0)
	a.Label("escan")
	a.Bgeu(rStart, rEnd, "loop")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	if dup {
		a.Ld8(rV, rT, 0)
		a.Mov(mq1, rV)
		a.Mov(mq2, rV)
	} else {
		a.Ld8(mq1, rT, 0)
	}
	a.AddI(rStart, rStart, 1)
	a.Jmp("escan")
	a.Label("cv")
	if dup {
		a.EnqC(qDupA, isa.RHCV)
		a.EnqC(qDupB, isa.RHCV)
	} else {
		a.EnqC(qNgh, isa.RHCV)
	}
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsDupProg is the duplication stage used when RAs implement the offsets
// and neighbor stages: it fans each neighbor id out to the distance RA
// (qDupA) and the update stage (qDupB).
func bfsDupProg(l bfsLayout) *isa.Program {
	const rV isa.Reg = 16
	a := isa.NewAssembler("bfs-dup")
	a.MapQ(mq0, qNgh, isa.QueueOut)
	a.MapQ(mq1, qDupA, isa.QueueIn)
	a.MapQ(mq2, qDupB, isa.QueueIn)
	a.OnDeqCV("cv")
	a.Label("loop")
	a.Mov(rV, mq0)
	a.Mov(mq1, rV)
	a.Mov(mq2, rV)
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(qDupA, isa.RHCV)
	a.EnqC(qDupB, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsFetchProg is the "fetch distances" stage of the 4-stage thread-only
// pipeline: neighbor ids in (qDupA), distance values out (qData).
func bfsFetchProg(l bfsLayout) *isa.Program {
	const (
		rDist isa.Reg = 3
		rT    isa.Reg = 15
	)
	a := isa.NewAssembler("bfs-fetch")
	a.MapQ(mq0, qDupA, isa.QueueOut)
	a.MapQ(mq1, qData, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rDist, l.dist)
	a.Label("loop")
	a.ShlI(rT, mq0, 3) // dequeue neighbor id
	a.Add(rT, rT, rDist)
	a.Ld8(mq1, rT, 0) // load enqueues the distance
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(qData, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsUpdateProg is the "update data" stage: consumes (neighbor, distance)
// pairs from qDupB and qData, re-checks stale distances (the Sec. III-C
// race), writes distances and the next fringe, and drives level feedback.
// recheck is true in decoupled configurations where the fetched distance can
// be stale.
func bfsUpdateProg(l bfsLayout, recheck bool) *isa.Program {
	const (
		rDist isa.Reg = 3
		rNext isa.Reg = 5
		rNCnt isa.Reg = 7
		rLvl  isa.Reg = 8
		rN    isa.Reg = 13
		rD    isa.Reg = 14
		rT    isa.Reg = 15
		rInf  isa.Reg = 16
		rT2   isa.Reg = 17
	)
	a := isa.NewAssembler("bfs-update")
	a.MapQ(mq0, qDupB, isa.QueueOut) // neighbor ids
	a.MapQ(mq1, qData, isa.QueueOut) // fetched distances
	a.MapQ(mq3, qFeed, isa.QueueIn)  // feedback to the head stage
	a.OnDeqCV("cv")
	a.SetReg(rDist, l.dist)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rLvl, 1)
	a.SetReg(rInf, graph.Unreached)

	a.Label("loop")
	a.Mov(rN, mq0) // neighbor (CV traps here)
	a.Mov(rD, mq1) // fetched distance
	a.Bne(rD, rInf, "loop")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rDist)
	if recheck {
		a.Ld8(rD, rT, 0) // fresh check; hits L1
		a.Bne(rD, rInf, "loop")
	}
	a.St8(rT, 0, rLvl)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("loop")

	a.Label("cv")
	a.SkipC(rT, qData) // consume the matching CV in the data queue
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Mov(mq3, rNCnt) // report next-level size to the head stage
	a.MovI(rNCnt, 0)
	a.AddI(rLvl, rLvl, 1)
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rNext, rNext, rT)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsFetchUpdateProg merges fetch and update (2- and 3-stage pipelines): it
// loads distances itself, so no staleness re-check is needed.
func bfsFetchUpdateProg(l bfsLayout) *isa.Program {
	const (
		rDist isa.Reg = 3
		rNext isa.Reg = 5
		rNCnt isa.Reg = 7
		rLvl  isa.Reg = 8
		rN    isa.Reg = 13
		rD    isa.Reg = 14
		rT    isa.Reg = 15
		rInf  isa.Reg = 16
		rT2   isa.Reg = 17
	)
	a := isa.NewAssembler("bfs-fetch-update")
	a.MapQ(mq0, qNgh, isa.QueueOut)
	a.MapQ(mq3, qFeed, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rDist, l.dist)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rLvl, 1)
	a.SetReg(rInf, graph.Unreached)

	a.Label("loop")
	a.Mov(rN, mq0)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rDist)
	a.Ld8(rD, rT, 0)
	a.Bne(rD, rInf, "loop")
	a.St8(rT, 0, rLvl)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("loop")

	a.Label("cv")
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Mov(mq3, rNCnt)
	a.MovI(rNCnt, 0)
	a.AddI(rLvl, rLvl, 1)
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rNext, rNext, rT)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// bfsCoupledUpdateProg is the Fig. 15 "2t+RA" pitfall stage: it feeds the
// distance RA and consumes its result inside the same loop iteration, so the
// RA's load latency is barely hidden, and the staleness re-check cost cannot
// be overlapped.
func bfsCoupledUpdateProg(l bfsLayout) *isa.Program {
	const (
		rDist isa.Reg = 3
		rNext isa.Reg = 5
		rNCnt isa.Reg = 7
		rLvl  isa.Reg = 8
		rN    isa.Reg = 13
		rD    isa.Reg = 14
		rT    isa.Reg = 15
		rInf  isa.Reg = 16
		rT2   isa.Reg = 17
	)
	a := isa.NewAssembler("bfs-coupled-update")
	a.MapQ(mq0, qNgh, isa.QueueOut)  // from the neighbors RA
	a.MapQ(mq1, qDupA, isa.QueueIn)  // to the distance RA
	a.MapQ(mq2, qData, isa.QueueOut) // from the distance RA
	a.MapQ(mq3, qFeed, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rDist, l.dist)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rLvl, 1)
	a.SetReg(rInf, graph.Unreached)

	a.Label("loop")
	a.Mov(rN, mq0) // neighbor from RA1
	a.Mov(mq1, rN) // ask RA2 for its distance
	a.Mov(rD, mq2) // ... and wait for it in the same iteration
	a.Bne(rD, rInf, "loop")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rDist)
	a.Ld8(rD, rT, 0) // stale-guard re-check
	a.Bne(rD, rInf, "loop")
	a.St8(rT, 0, rLvl)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("loop")

	a.Label("cv")
	a.EnqC(qDupA, isa.RHCV) // keep the RA stream aligned
	a.SkipC(rT, qData)      // consume the forwarded CV
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Mov(mq3, rNCnt)
	a.MovI(rNCnt, 0)
	a.AddI(rLvl, rLvl, 1)
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rNext, rNext, rT)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}
