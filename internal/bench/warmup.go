package bench

import (
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
)

// CacheWarmup returns a touch-kernel builder: every core runs a
// single-threaded loop that issues one load per 64-byte line across
// [mem.AllocBase, footprint). Nothing is written, so the snapshot's memory
// image stays empty (reads of untouched memory are canonically zero), but
// the sweep populates cache tags, prefetcher and DRAM state for the address
// range a subsequent workload builder will allocate its data into.
//
// The fork-after-warmup sweep (docs/SWEEP.md) runs this once per
// (app, input, cores) cell group, calls System.PrepareFork, snapshots, and
// restores the snapshot under each variant instead of starting cold.
func CacheWarmup(footprint uint64) Builder {
	return func(s *sim.System) CheckFn {
		for _, c := range s.Cores {
			c.Load(0, warmupProg(footprint))
		}
		return func() error { return nil }
	}
}

// warmupProg sweeps lines in descending address order: the caches keep the
// most-recently-touched lines, and the structures workloads allocate first
// (graph offsets, row pointers, index upper levels) are the hottest, so the
// sweep must end at the low addresses for the warm residue to be useful.
func warmupProg(footprint uint64) *isa.Program {
	const (
		rAddr isa.Reg = 1
		rBase isa.Reg = 2
		rT    isa.Reg = 3
	)
	lines := (footprint - min64(footprint, mem.AllocBase)) / 64
	a := isa.NewAssembler("cache-warmup")
	a.SetReg(rAddr, mem.AllocBase+lines*64)
	a.SetReg(rBase, mem.AllocBase)
	a.Label("loop")
	a.Bgeu(rBase, rAddr, "done") // base >= addr: range exhausted
	a.SubI(rAddr, rAddr, 64)
	a.Ld8(rT, rAddr, 0)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
