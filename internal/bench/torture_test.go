package bench

import (
	"math/rand"
	"testing"

	"pipette/internal/isa"
	"pipette/internal/sim"
)

// Randomized pipeline torture: build chains of 2-4 relay stages with random
// queue capacities and element counts, where each stage applies a known
// transform, and check the end-to-end result. Exercises queue backpressure,
// commit-gated dequeues and multi-thread scheduling under many shapes.
func TestPipelineTorture(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		stages := 2 + r.Intn(3)  // 2..4 threads
		n := 20 + r.Intn(180)    // elements
		addend := r.Int63n(1000) // per-stage transform
		caps := map[uint8]int{}
		for q := 0; q < stages-1; q++ {
			caps[uint8(q)] = 2 + r.Intn(14)
		}

		s := sim.New(sim.DefaultConfig())
		s.Cores[0].SetQueueCaps(caps)
		res := s.Mem.AllocWords(1)

		// Head: enqueue 1..n into q0.
		head := isa.NewAssembler("head")
		head.MapQ(20, 0, isa.QueueIn)
		head.MovI(1, 0)
		head.Label("loop")
		head.AddI(1, 1, 1)
		head.Mov(20, 1)
		head.BneI(1, int64(n), "loop")
		head.Halt()
		s.Cores[0].Load(0, head.MustLink())

		// Middle relays: out = in + addend.
		for st := 1; st < stages-1; st++ {
			a := isa.NewAssembler("relay")
			a.MapQ(20, uint8(st-1), isa.QueueOut)
			a.MapQ(21, uint8(st), isa.QueueIn)
			a.MovI(2, 0)
			a.Label("loop")
			a.AddI(21, 20, addend) // dequeue, add, enqueue in one instruction
			a.AddI(2, 2, 1)
			a.BneI(2, int64(n), "loop")
			a.Halt()
			s.Cores[0].Load(st, a.MustLink())
		}

		// Tail: sum everything.
		tail := isa.NewAssembler("tail")
		tail.MapQ(20, uint8(stages-2), isa.QueueOut)
		tail.MovI(1, 0)
		tail.MovI(2, 0)
		tail.Label("loop")
		tail.Add(1, 1, 20)
		tail.AddI(2, 2, 1)
		tail.BneI(2, int64(n), "loop")
		tail.MovU(3, res)
		tail.St8(3, 0, 1)
		tail.Halt()
		s.Cores[0].Load(stages-1, tail.MustLink())

		if _, err := s.Run(); err != nil {
			t.Fatalf("trial %d (stages=%d n=%d caps=%v): %v", trial, stages, n, caps, err)
		}
		want := uint64(n) * uint64(n+1) / 2
		want += uint64(stages-2) * uint64(addend) * uint64(n)
		if got := s.Mem.Read64(res); got != want {
			t.Fatalf("trial %d (stages=%d n=%d addend=%d): sum=%d want=%d",
				trial, stages, n, addend, got, want)
		}
	}
}

// Torture with control values: random batch boundaries must always reach the
// consumer in order and carry the right ids.
func TestControlValueTorture(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		batches := 2 + r.Intn(6)
		per := 1 + r.Intn(20)
		capQ := 2 + r.Intn(20)

		s := sim.New(sim.DefaultConfig())
		s.Cores[0].SetQueueCaps(map[uint8]int{0: capQ})
		sums := s.Mem.AllocWords(uint64(batches))

		p := isa.NewAssembler("prod")
		p.MapQ(20, 0, isa.QueueIn)
		p.MovI(1, 0) // batch
		p.Label("batch")
		p.MovI(2, 0)
		p.Label("elem")
		p.AddI(2, 2, 1)
		p.Mov(20, 2)
		p.BneI(2, int64(per), "elem")
		p.EnqC(0, 1) // delimiter carries the batch id
		p.AddI(1, 1, 1)
		p.BneI(1, int64(batches), "batch")
		p.EnqCI(0, int64(batches)) // terminator
		p.Halt()

		c := isa.NewAssembler("cons")
		c.MapQ(20, 0, isa.QueueOut)
		c.OnDeqCV("cv")
		c.MovU(5, sums)
		c.MovI(1, 0)
		c.Label("loop")
		c.Add(1, 1, 20)
		c.Jmp("loop")
		c.Label("cv")
		c.BeqI(isa.RHCV, int64(batches), "done")
		c.ShlI(6, isa.RHCV, 3)
		c.Add(6, 6, 5)
		c.St8(6, 0, 1) // sums[batch] = running sum
		c.MovI(1, 0)
		c.Jmp("loop")
		c.Label("done")
		c.Halt()

		s.Cores[0].Load(0, p.MustLink())
		s.Cores[0].Load(1, c.MustLink())
		if _, err := s.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := uint64(per) * uint64(per+1) / 2
		for b := 0; b < batches; b++ {
			if got := s.Mem.Read64(sums + uint64(b)*8); got != want {
				t.Fatalf("trial %d: batch %d sum=%d want=%d", trial, b, got, want)
			}
		}
	}
}
