package bench

import (
	"fmt"

	"pipette/internal/graph"
	"pipette/internal/sparse"
)

// Lookup resolves an (app, variant, input) triple — the naming used by the
// CLI tools and checkpoint workload metadata — to a builder and core count.
// Inputs are generated from the base seed exactly as the harness does, so a
// snapshot that records these five values can be rebuilt bit-identically by
// a later process (pipette-sim -resume, pipette-diverge).
func Lookup(app, variant, input string, prdIters int, seed int64) (Builder, int, error) {
	cores := 1
	if variant == VStreaming {
		cores = 4
	}
	var g *graph.Graph
	for _, in := range graph.Inputs(1, seed) {
		if in.Label == input {
			g = in.G
		}
	}
	var m *sparse.Matrix
	for _, in := range sparse.Inputs(1, seed) {
		if in.Label == input {
			m = in.M
		}
	}
	pick := func(serial, dp, pip, nora, str Builder) (Builder, int, error) {
		switch variant {
		case VSerial:
			return serial, cores, nil
		case VDataParallel:
			return dp, cores, nil
		case VPipette:
			return pip, cores, nil
		case VPipetteNoRA:
			return nora, cores, nil
		case VStreaming:
			return str, cores, nil
		}
		return nil, 0, fmt.Errorf("unknown variant %q", variant)
	}
	switch app {
	case "bfs":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(BFSSerial(g, 0), BFSDataParallel(g, 0, 4),
			BFSPipette(g, 0, 4, true), BFSPipette(g, 0, 4, false), BFSStreaming(g, 0))
	case "cc":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(CCSerial(g), CCDataParallel(g, 4),
			CCPipette(g, true), CCPipette(g, false), CCStreaming(g))
	case "prd":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(PRDSerial(g, prdIters), PRDDataParallel(g, prdIters, 4),
			PRDPipette(g, prdIters, true), PRDPipette(g, prdIters, false),
			PRDStreaming(g, prdIters))
	case "radii":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(RadiiSerial(g), RadiiDataParallel(g, 4),
			RadiiPipette(g, true), RadiiPipette(g, false), RadiiStreaming(g))
	case "spmm":
		if m == nil {
			return nil, 0, fmt.Errorf("unknown matrix %q", input)
		}
		return pick(SpMMSerial(m, m), SpMMDataParallel(m, m, 4),
			SpMMPipette(m, m, true), SpMMPipette(m, m, false), SpMMStreaming(m, m))
	case "silo":
		const k, q = 4000, 600
		ys := seed + 98 // derived YCSB generator seed (seed 1 -> historical 99)
		return pick(SiloSerial(k, q, ys), SiloDataParallel(k, q, 4, ys),
			SiloPipette(k, q, true, ys), SiloPipette(k, q, false, ys), SiloStreaming(k, q, ys))
	}
	return nil, 0, fmt.Errorf("unknown app %q", app)
}
