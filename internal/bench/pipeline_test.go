package bench

import (
	"testing"

	"pipette/internal/isa"
	"pipette/internal/sim"
)

// tinyStage builds a one-shot producer or consumer for placement tests.
func tinyProducer(q uint8, n int64) *isa.Program {
	a := isa.NewAssembler("prod")
	a.MapQ(20, q, isa.QueueIn)
	a.MovI(1, 0)
	a.Label("loop")
	a.AddI(1, 1, 1)
	a.Mov(20, 1)
	a.BneI(1, n, "loop")
	a.Halt()
	return a.MustLink()
}

func tinyConsumer(q uint8, n int64, res uint64) *isa.Program {
	a := isa.NewAssembler("cons")
	a.MapQ(20, q, isa.QueueOut)
	a.MovI(1, 0)
	a.MovI(2, 0)
	a.Label("loop")
	a.Add(1, 1, 20)
	a.AddI(2, 2, 1)
	a.BneI(2, n, "loop")
	a.MovU(3, res)
	a.St8(3, 0, 1)
	a.Halt()
	return a.MustLink()
}

// The endpoints derivation must identify producers and consumers from
// bindings, including through RA chains.
func TestPipeSpecEndpoints(t *testing.T) {
	p := pipeSpec{
		queues: map[uint8]int{0: 4, 1: 4, 2: 4},
		stages: []*isa.Program{tinyProducer(0, 1), tinyConsumer(2, 1, 0x20000)},
		ras:    raList(raInd(0, 1, 0), raInd(1, 2, 0)),
	}
	prod, cons := p.endpoints()
	if prod[0] != 0 {
		t.Fatalf("q0 producer = %v", prod[0])
	}
	if cons[2] != 1 {
		t.Fatalf("q2 consumer = %v", cons[2])
	}
	// RA-chained queues inherit the chain head's stage.
	if prod[1] != 0 || prod[2] != 0 {
		t.Fatalf("RA chain producers = %v", prod)
	}
}

// Single-core placement puts stages on successive hardware threads; the
// pipeline must run and produce the right sum.
func TestPipeSpecSingleCore(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	res := s.Mem.AllocWords(1)
	table := s.Mem.AllocWords(64)
	for i := uint64(0); i < 64; i++ {
		s.Mem.Write64(table+i*8, i*2)
	}
	p := pipeSpec{
		queues: map[uint8]int{0: 4, 1: 4},
		stages: []*isa.Program{tinyProducer(0, 32), tinyConsumer(1, 32, res)},
		ras:    raList(raInd(0, 1, table)),
	}
	p.placeSingleCore(s, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for i := uint64(1); i <= 32; i++ {
		want += i * 2
	}
	if got := s.Mem.Read64(res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// Streaming placement spans cores and must insert a connector for the
// cross-core queue automatically.
func TestPipeSpecStreamingInsertsConnectors(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	s := sim.New(cfg)
	res := s.Mem.AllocWords(1)
	p := pipeSpec{
		queues: map[uint8]int{0: 8},
		stages: []*isa.Program{tinyProducer(0, 50), tinyConsumer(0, 50, res)},
	}
	p.placeStreaming(s)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Read64(res); got != 50*51/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestPipeSpecStreamingNeedsCores(t *testing.T) {
	s := sim.New(sim.DefaultConfig()) // 1 core
	p := pipeSpec{
		queues: map[uint8]int{0: 8},
		stages: []*isa.Program{tinyProducer(0, 1), tinyConsumer(0, 1, 0x20000)},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for too few cores")
		}
	}()
	p.placeStreaming(s)
}

func TestPipeSpecValidate(t *testing.T) {
	p := pipeSpec{
		queues: map[uint8]int{0: 8}, // RA output queue 1 missing
		stages: []*isa.Program{tinyProducer(0, 1)},
		ras:    raList(raInd(0, 1, 0)),
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for missing queue capacity")
		}
	}()
	s := sim.New(sim.DefaultConfig())
	p.placeSingleCore(s, 0)
}
