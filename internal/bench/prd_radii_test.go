package bench

import (
	"testing"

	"pipette/internal/graph"
)

func prdGraph() *graph.Graph { return graph.PowerLaw(500, 4, 3) }

func TestPRDSerial(t *testing.T) {
	runBench(t, 1, PRDSerial(prdGraph(), 6))
}

func TestPRDDataParallel(t *testing.T) {
	runBench(t, 1, PRDDataParallel(prdGraph(), 6, 4))
}

func TestPRDPipetteRA(t *testing.T) {
	runBench(t, 1, PRDPipette(prdGraph(), 6, true))
}

func TestPRDPipetteNoRA(t *testing.T) {
	runBench(t, 1, PRDPipette(prdGraph(), 6, false))
}

func TestPRDStreaming(t *testing.T) {
	runBench(t, 4, PRDStreaming(prdGraph(), 6))
}

func radiiGraph() *graph.Graph { return graph.Uniform(500, 3, 9) }

func TestRadiiSerial(t *testing.T) {
	runBench(t, 1, RadiiSerial(radiiGraph()))
}

func TestRadiiDataParallel(t *testing.T) {
	runBench(t, 1, RadiiDataParallel(radiiGraph(), 4))
}

func TestRadiiPipetteRA(t *testing.T) {
	runBench(t, 1, RadiiPipette(radiiGraph(), true))
}

func TestRadiiPipetteNoRA(t *testing.T) {
	runBench(t, 1, RadiiPipette(radiiGraph(), false))
}

func TestRadiiStreaming(t *testing.T) {
	runBench(t, 4, RadiiStreaming(radiiGraph()))
}
