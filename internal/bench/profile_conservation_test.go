package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/profile"
	"pipette/internal/sim"
)

// profRun is everything the cycle-accounting subsystem must keep invariant
// across execution strategies: the per-core profile snapshots and the
// sampled slot-column CSV. Profile counters are pure functions of simulated
// state, so fast-forward and the worker pool must not change a single count.
type profRun struct {
	prof []profile.CoreSnapshot
	csv  []byte
}

func runProfiled(t *testing.T, app, variant, input string, ff bool, workers int) profRun {
	t.Helper()
	b, cores, err := Lookup(app, variant, input, 2, 1)
	if err != nil {
		t.Fatalf("Lookup(%s/%s/%s): %v", app, variant, input, err)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	s.SetFastForward(ff)
	s.SetWorkers(workers)
	s.EnableProfiling()
	sm := s.EnableSampling(256)
	r, err := Run(s, b)
	if err != nil {
		t.Fatalf("%s/%s/%s ff=%v workers=%d: %v", app, variant, input, ff, workers, err)
	}
	if len(r.Prof) != cores {
		t.Fatalf("%s/%s/%s: %d profile snapshots for %d cores", app, variant, input, len(r.Prof), cores)
	}
	for _, ps := range r.Prof {
		if ps.Cycles == 0 {
			t.Fatalf("%s/%s/%s core %d: no cycles profiled", app, variant, input, ps.Core)
		}
		if err := ps.Conserved(); err != nil {
			t.Errorf("%s/%s/%s ff=%v workers=%d: %v", app, variant, input, ff, workers, err)
		}
	}
	var csv bytes.Buffer
	if err := sm.WriteCSV(&csv, core.StallNames()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return profRun{prof: r.Prof, csv: csv.Bytes()}
}

// TestProfileConservation is the acceptance matrix for the cycle-accounting
// subsystem (ISSUE 6): for all six apps in the serial and pipette variants,
// under fast-forward on/off and 1/4 kernel workers, every core's issue-slot
// account must satisfy slot conservation (categories sum exactly to
// cycles x width), and all four execution-strategy cells must produce
// bit-identical profiles and sampled slot series.
func TestProfileConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cases := []struct{ app, input string }{
		{"bfs", "Co"},
		{"cc", "Co"},
		{"prd", "Co"},
		{"radii", "Co"},
		{"spmm", "Am"},
		{"silo", "ycsbc"},
	}
	for _, tc := range cases {
		for _, variant := range []string{VSerial, VPipette} {
			tc, variant := tc, variant
			t.Run(fmt.Sprintf("%s/%s", tc.app, variant), func(t *testing.T) {
				t.Parallel()
				base := runProfiled(t, tc.app, variant, tc.input, true, 1)
				for _, alt := range []struct {
					label   string
					ff      bool
					workers int
				}{
					{"noff", false, 1},
					{"ff+pool", true, 4},
					{"noff+pool", false, 4},
				} {
					got := runProfiled(t, tc.app, variant, tc.input, alt.ff, alt.workers)
					if !reflect.DeepEqual(base.prof, got.prof) {
						t.Errorf("%s: profile differs from ff=1 workers=1 baseline:\n  base: %+v\n  got:  %+v",
							alt.label, base.prof, got.prof)
					}
					if !bytes.Equal(base.csv, got.csv) {
						t.Errorf("%s: sampled slot series differs (%d vs %d bytes)",
							alt.label, len(base.csv), len(got.csv))
					}
				}
			})
		}
	}
}

// TestProfiledRunMatchesUnprofiled asserts enabling the profiler is
// observationally free: the Result (minus the profile snapshots themselves)
// and the final state hash are bit-identical with profiling on and off.
func TestProfiledRunMatchesUnprofiled(t *testing.T) {
	run := func(prof bool) (sim.Result, string) {
		b, cores, err := Lookup("bfs", VPipette, "Co", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		cfg.WatchdogCycles = 10_000_000
		s := sim.New(cfg)
		if prof {
			s.EnableProfiling()
		}
		r, err := Run(s, b)
		if err != nil {
			t.Fatal(err)
		}
		hash, err := s.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		return r, hash
	}
	rOff, hOff := run(false)
	rOn, hOn := run(true)
	if hOff != hOn {
		t.Errorf("state hash differs: off=%s on=%s", hOff, hOn)
	}
	rOn.Prof = nil
	if !reflect.DeepEqual(rOff, rOn) {
		t.Errorf("results differ once Prof is stripped:\n  off: %+v\n  on:  %+v", rOff, rOn)
	}
}
