package bench

import (
	"fmt"
	"math"

	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

// Inner-product SpMM (Figs. 4 and 5): for every (row i of A, column j of B)
// pair, merge-intersect the sparsity patterns and accumulate matching
// products. Control values delimit each row/column segment; skip_to_ctrl
// lets the merge stage discard the rest of a segment early, and (in the
// thread-streamed variant) fires the producer's enqueue control handler to
// abandon streaming — the exact Fig. 5 interplay.
//
// Stream entries pack (position << 32 | coordinate) so one queue carries
// both the merge key and the value index.

// Queue ids.
const (
	sqRowsIn uint8 = 0 // (start,end) ranges into the A scan RA
	sqRows   uint8 = 1 // packed A entries
	sqColsIn uint8 = 2 // (start,end) ranges into the B scan RA
	sqCols   uint8 = 3 // packed B entries
	sqPA     uint8 = 4 // matched A positions
	sqPB     uint8 = 5 // matched B positions
	sqVA     uint8 = 6 // fetched A values
	sqVB     uint8 = 7 // fetched B values
)

type spmmLayout struct {
	a, b    sparse.Layout
	packedA uint64 // pos<<32|col per A nonzero
	packedB uint64 // pos<<32|row per B nonzero
	nnzCell uint64
	sumCell uint64
	n       int
}

func layoutSpMM(m *mem.Memory, a, b *sparse.Matrix) spmmLayout {
	l := spmmLayout{
		a: a.WriteTo(m), b: b.WriteTo(m),
		packedA: m.AllocWords(uint64(maxi(a.NNZ(), 1))),
		packedB: m.AllocWords(uint64(maxi(b.NNZ(), 1))),
		nnzCell: m.AllocWords(1),
		sumCell: m.AllocWords(1),
		n:       a.N,
	}
	for p, c := range a.Cols {
		m.Write64(l.packedA+uint64(p)*8, uint64(p)<<32|c)
	}
	for p, r := range b.Rows {
		m.Write64(l.packedB+uint64(p)*8, uint64(p)<<32|r)
	}
	return l
}

func checkSpMM(s *sim.System, l spmmLayout, a, b *sparse.Matrix, relTol float64) CheckFn {
	return func() error {
		wantNNZ, wantSum := sparse.SpMMInner(a, b)
		gotNNZ := s.Mem.Read64(l.nnzCell)
		gotSum := isa.U2F(s.Mem.Read64(l.sumCell))
		if gotNNZ != uint64(wantNNZ) {
			return fmt.Errorf("spmm: nnz = %d, want %d", gotNNZ, wantNNZ)
		}
		if math.Abs(gotSum-wantSum) > relTol*math.Abs(wantSum)+1e-12 {
			return fmt.Errorf("spmm: sum = %g, want %g", gotSum, wantSum)
		}
		return nil
	}
}

// SpMMSerial builds the serial merge-intersect kernel.
func SpMMSerial(a, b *sparse.Matrix) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutSpMM(s.Mem, a, b)
		s.Cores[0].Load(0, spmmSerialProg(l, 0, 1, true))
		return checkSpMM(s, l, a, b, 1e-12)
	}
}

// SpMMDataParallel partitions rows of A across threads; each thread runs the
// serial kernel over its slice and atomically merges its counts.
func SpMMDataParallel(a, b *sparse.Matrix, nThreads int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutSpMM(s.Mem, a, b)
		for t := 0; t < nThreads; t++ {
			s.Cores[t/4].Load(t%4, spmmSerialProg(l, t, nThreads, false))
		}
		return checkSpMM(s, l, a, b, 1e-9)
	}
}

// spmmSerialProg computes dot products for rows [tid*n/T, (tid+1)*n/T). If
// exclusive, results are stored directly; otherwise merged with atomics.
func spmmSerialProg(l spmmLayout, tid, nThreads int, exclusive bool) *isa.Program {
	const (
		rRowP isa.Reg = 1
		rColP isa.Reg = 2
		rACol isa.Reg = 3
		rBRow isa.Reg = 4
		rAVal isa.Reg = 5
		rBVal isa.Reg = 6
		rI    isa.Reg = 7
		rJ    isa.Reg = 8
		rP    isa.Reg = 9
		rQ    isa.Reg = 10
		rRE   isa.Reg = 11
		rCE   isa.Reg = 12
		rCA   isa.Reg = 13
		rCB   isa.Reg = 14
		rT    isa.Reg = 15
		rAcc  isa.Reg = 16
		rHit  isa.Reg = 17
		rNNZ  isa.Reg = 18
		rSum  isa.Reg = 19
		rT2   isa.Reg = 20
		rHi   isa.Reg = 21
		rRS   isa.Reg = 22
	)
	a := isa.NewAssembler(fmt.Sprintf("spmm-%d", tid))
	a.SetReg(rRowP, l.a.RowPtrAddr)
	a.SetReg(rColP, l.b.ColPtrAddr)
	a.SetReg(rACol, l.a.ColsAddr)
	a.SetReg(rBRow, l.b.RowsAddr)
	a.SetReg(rAVal, l.a.ValsAddr)
	a.SetReg(rBVal, l.b.CValsAddr)
	a.SetReg(rNNZ, 0)
	a.SetReg(rSum, isa.F2U(0))
	lo := uint64(tid) * uint64(l.n) / uint64(nThreads)
	hi := uint64(tid+1) * uint64(l.n) / uint64(nThreads)
	a.SetReg(rI, lo)
	a.SetReg(rHi, hi)

	a.Label("rowloop")
	a.Bgeu(rI, rHi, "finish")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rRowP)
	a.Ld8(rRS, rT, 0)
	a.Ld8(rRE, rT, 8)
	a.MovI(rJ, 0)
	a.Label("colloop")
	a.BeqI(rJ, int64(l.n), "rowend")
	a.ShlI(rT, rJ, 3)
	a.Add(rT, rT, rColP)
	a.Ld8(rQ, rT, 0)
	a.Ld8(rCE, rT, 8)
	a.Mov(rP, rRS)
	a.MovU(rAcc, isa.F2U(0))
	a.MovI(rHit, 0)
	a.Label("merge")
	a.Bgeu(rP, rRE, "dotend")
	a.Bgeu(rQ, rCE, "dotend")
	a.ShlI(rT, rP, 3)
	a.Add(rT, rT, rACol)
	a.Ld8(rCA, rT, 0)
	a.ShlI(rT, rQ, 3)
	a.Add(rT, rT, rBRow)
	a.Ld8(rCB, rT, 0)
	a.Bltu(rCA, rCB, "advA")
	a.Bltu(rCB, rCA, "advB")
	// Match: acc += A.vals[p] * B.cvals[q].
	a.ShlI(rT, rP, 3)
	a.Add(rT, rT, rAVal)
	a.Ld8(rT, rT, 0)
	a.ShlI(rT2, rQ, 3)
	a.Add(rT2, rT2, rBVal)
	a.Ld8(rT2, rT2, 0)
	a.FMul(rT, rT, rT2)
	a.FAdd(rAcc, rAcc, rT)
	a.MovI(rHit, 1)
	a.AddI(rP, rP, 1)
	a.AddI(rQ, rQ, 1)
	a.Jmp("merge")
	a.Label("advA")
	a.AddI(rP, rP, 1)
	a.Jmp("merge")
	a.Label("advB")
	a.AddI(rQ, rQ, 1)
	a.Jmp("merge")
	a.Label("dotend")
	a.BeqI(rHit, 0, "colnext")
	a.AddI(rNNZ, rNNZ, 1)
	a.FAdd(rSum, rSum, rAcc)
	a.Label("colnext")
	a.AddI(rJ, rJ, 1)
	a.Jmp("colloop")
	a.Label("rowend")
	a.AddI(rI, rI, 1)
	a.Jmp("rowloop")

	a.Label("finish")
	if exclusive {
		a.MovU(rT, l.nnzCell)
		a.St8(rT, 0, rNNZ)
		a.MovU(rT, l.sumCell)
		a.St8(rT, 0, rSum)
	} else {
		a.MovU(rT, l.nnzCell)
		a.FetchAdd(rT2, rT, rNNZ)
		// Float merge via CAS loop.
		a.MovU(rT, l.sumCell)
		a.Label("mergeF")
		a.Ld8(rT2, rT, 0)
		a.FAdd(rAcc, rT2, rSum)
		a.Cas(rHit, rT, rT2, rAcc)
		a.Bne(rHit, rT2, "mergeF")
	}
	a.Halt()
	return a.MustLink()
}

// spmmStreamProg streams the non-zeros of rows (of A) or columns (of B),
// one segment per (i,j) pair in lexicographic order. With useRA it only
// enqueues (start,end) ranges into a scan RA over the packed array and
// emits CVs between segments; without, it streams the packed entries itself
// and honors enqueue-handler aborts (Fig. 5).
func spmmStreamProg(name string, ptrAddr, packedAddr uint64, n int, isRows bool, useRA bool) *isa.Program {
	const (
		rPtr isa.Reg = 1
		rPk  isa.Reg = 2
		rI   isa.Reg = 7
		rJ   isa.Reg = 8
		rP   isa.Reg = 9
		rE   isa.Reg = 10
		rT   isa.Reg = 15
		rSeg isa.Reg = 16 // index whose range is streamed (i for rows, j for cols)
	)
	outQ := sqRows
	inQ := sqRowsIn
	if !isRows {
		outQ = sqCols
		inQ = sqColsIn
	}
	dataQ := inQ // where ranges or data go
	if !useRA {
		dataQ = outQ
	}
	a := isa.NewAssembler(name)
	a.MapQ(mq0, dataQ, isa.QueueIn)
	if !useRA {
		a.OnEnqCV("abort")
	}
	a.SetReg(rPtr, ptrAddr)
	a.SetReg(rPk, packedAddr)
	a.SetReg(rI, 0)

	a.Label("iloop")
	a.BeqI(rI, int64(n), "alldone")
	a.MovI(rJ, 0)
	a.Label("jloop")
	a.BeqI(rJ, int64(n), "iend")
	if isRows {
		a.Mov(rSeg, rI)
	} else {
		a.Mov(rSeg, rJ)
	}
	a.ShlI(rT, rSeg, 3)
	a.Add(rT, rT, rPtr)
	a.Ld8(rP, rT, 0)
	a.Ld8(rE, rT, 8)
	if useRA {
		a.Mov(mq0, rP)
		a.Mov(mq0, rE)
	} else {
		a.Label("stream")
		a.Bgeu(rP, rE, "segend")
		a.ShlI(rT, rP, 3)
		a.Add(rT, rT, rPk)
		a.Ld8(mq0, rT, 0) // enqueue packed entry (may trap to "abort")
		a.AddI(rP, rP, 1)
		a.Jmp("stream")
		a.Label("segend")
	}
	a.EnqCI(dataQ, cvEOL) // segment delimiter (forwarded by the scan RA)
	a.Label("segnext")
	a.AddI(rJ, rJ, 1)
	a.Jmp("jloop")
	a.Label("iend")
	a.AddI(rI, rI, 1)
	a.Jmp("iloop")
	a.Label("alldone")
	a.EnqCI(dataQ, cvDone)
	a.Halt()
	if !useRA {
		// Enqueue control handler: the consumer skipped this segment;
		// emit its delimiter and move on (Fig. 5).
		a.Label("abort")
		a.EnqCI(dataQ, cvEOL)
		a.Jmp("segnext")
	}
	return a.MustLink()
}

// spmmMergeProg is the merge-intersect stage: consumes packed A and B
// entries, advances the smaller coordinate, and emits matched positions.
// A segment delimiter on either stream skips the other stream to its
// delimiter and closes the dot product.
func spmmMergeProg() *isa.Program {
	const (
		rA  isa.Reg = 11
		rB  isa.Reg = 12
		rCA isa.Reg = 13
		rCB isa.Reg = 14
		rT  isa.Reg = 15
	)
	a := isa.NewAssembler("spmm-merge")
	a.MapQ(mq0, sqRows, isa.QueueOut)
	a.MapQ(mq1, sqCols, isa.QueueOut)
	a.MapQ(mq2, sqPA, isa.QueueIn)
	a.MapQ(mq3, sqPB, isa.QueueIn)
	a.OnDeqCV("cv")

	a.Label("start")
	a.Mov(rA, mq0) // traps at segment end
	a.Mov(rB, mq1)
	a.Label("step")
	a.AndI(rCA, rA, 0xFFFFFFFF)
	a.AndI(rCB, rB, 0xFFFFFFFF)
	a.Bltu(rCA, rCB, "advA")
	a.Bltu(rCB, rCA, "advB")
	a.ShrI(rT, rA, 32)
	a.Mov(mq2, rT) // matched A position
	a.ShrI(rT, rB, 32)
	a.Mov(mq3, rT) // matched B position
	a.Mov(rA, mq0)
	a.Mov(rB, mq1)
	a.Jmp("step")
	a.Label("advA")
	a.Mov(rA, mq0)
	a.Jmp("step")
	a.Label("advB")
	a.Mov(rB, mq1)
	a.Jmp("step")

	a.Label("cv")
	// One stream ended its segment; discard the rest of the other
	// (skip_to_ctrl — in the thread-streamed variant this can fire the
	// producer's enqueue handler, Fig. 5).
	a.BeqI(isa.RHQ, int64(sqRows), "skipB")
	a.SkipC(rT, sqRows)
	a.Jmp("closed")
	a.Label("skipB")
	a.SkipC(rT, sqCols)
	a.Label("closed")
	a.EnqC(sqPA, isa.RHCV) // close the dot product downstream
	a.EnqC(sqPB, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("start")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// spmmAccProg fetches matched values (via RAs or its own loads) and
// accumulates dot products, counting non-empty results and the checksum.
func spmmAccProg(l spmmLayout, useRA bool) *isa.Program {
	const (
		rVA  isa.Reg = 11
		rVB  isa.Reg = 12
		rAcc isa.Reg = 13
		rHit isa.Reg = 14
		rT   isa.Reg = 15
		rNNZ isa.Reg = 16
		rSum isa.Reg = 17
		rAV  isa.Reg = 18
		rBV  isa.Reg = 19
		rT2  isa.Reg = 20
	)
	a := isa.NewAssembler("spmm-acc")
	if useRA {
		a.MapQ(mq0, sqVA, isa.QueueOut)
		a.MapQ(mq1, sqVB, isa.QueueOut)
	} else {
		a.MapQ(mq0, sqPA, isa.QueueOut)
		a.MapQ(mq1, sqPB, isa.QueueOut)
		a.SetReg(rAV, l.a.ValsAddr)
		a.SetReg(rBV, l.b.CValsAddr)
	}
	a.OnDeqCV("cv")
	a.SetReg(rNNZ, 0)
	a.SetReg(rSum, isa.F2U(0))
	a.SetReg(rAcc, isa.F2U(0))
	a.SetReg(rHit, 0)

	a.Label("loop")
	if useRA {
		a.Mov(rVA, mq0) // fetched A value
		a.Mov(rVB, mq1)
	} else {
		a.ShlI(rT, mq0, 3)
		a.Add(rT, rT, rAV)
		a.Ld8(rVA, rT, 0)
		a.ShlI(rT, mq1, 3)
		a.Add(rT, rT, rBV)
		a.Ld8(rVB, rT, 0)
	}
	a.FMul(rT, rVA, rVB)
	a.FAdd(rAcc, rAcc, rT)
	a.MovI(rHit, 1)
	a.Jmp("loop")

	a.Label("cv")
	q2 := sqVB
	if !useRA {
		q2 = sqPB
	}
	a.SkipC(rT, q2)
	a.BeqI(rHit, 0, "empty")
	a.AddI(rNNZ, rNNZ, 1)
	a.FAdd(rSum, rSum, rAcc)
	a.Label("empty")
	a.MovU(rAcc, isa.F2U(0))
	a.MovI(rHit, 0)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.MovU(rT, l.nnzCell)
	a.St8(rT, 0, rNNZ)
	a.MovU(rT, l.sumCell)
	a.St8(rT, 0, rSum)
	a.Halt()
	return a.MustLink()
}

func spmmPipeline(s *sim.System, ma, mb *sparse.Matrix, useRA bool) (pipeSpec, spmmLayout) {
	l := layoutSpMM(s.Mem, ma, mb)
	p := pipeSpec{}
	rows := spmmStreamProg("spmm-rows", l.a.RowPtrAddr, l.packedA, l.n, true, useRA)
	cols := spmmStreamProg("spmm-cols", l.b.ColPtrAddr, l.packedB, l.n, false, useRA)
	merge := spmmMergeProg()
	acc := spmmAccProg(l, useRA)
	p.stages = []*isa.Program{rows, cols, merge, acc}
	if useRA {
		p.queues = map[uint8]int{
			sqRowsIn: 8, sqRows: 24, sqColsIn: 8, sqCols: 24,
			sqPA: 16, sqPB: 16, sqVA: 16, sqVB: 16,
		}
		p.ras = raList(
			raScan(sqRowsIn, sqRows, l.packedA),
			raScan(sqColsIn, sqCols, l.packedB),
			raInd(sqPA, sqVA, l.a.ValsAddr),
			raInd(sqPB, sqVB, l.b.CValsAddr),
		)
	} else {
		p.queues = map[uint8]int{sqRows: 28, sqCols: 28, sqPA: 20, sqPB: 20}
	}
	return p, l
}

// SpMMPipette builds the Fig. 4 pipeline on one core.
func SpMMPipette(ma, mb *sparse.Matrix, useRA bool) Builder {
	return func(s *sim.System) CheckFn {
		p, l := spmmPipeline(s, ma, mb, useRA)
		p.placeSingleCore(s, 0)
		return checkSpMM(s, l, ma, mb, 1e-12)
	}
}

// SpMMStreaming places each stage on its own core.
func SpMMStreaming(ma, mb *sparse.Matrix) Builder {
	return func(s *sim.System) CheckFn {
		p, l := spmmPipeline(s, ma, mb, true)
		p.placeStreaming(s)
		return checkSpMM(s, l, ma, mb, 1e-12)
	}
}

// SpMMAdaptive implements the adaptive scheme the paper sketches in Sec.
// VI-D: on inputs where control values would dominate (few non-zeros per
// row/column) and the working set fits on chip, data parallelism wins
// slightly, so the adaptive version picks the data-parallel kernel there and
// the Pipette pipeline everywhere else. It returns the builder and the name
// of the chosen variant.
func SpMMAdaptive(a, b *sparse.Matrix, cacheBytes int) (Builder, string) {
	// Footprint of the structures the merge streams touch.
	footprint := 8 * (2*(a.N+1) + 3*a.NNZ() + 3*b.NNZ())
	avg := (a.AvgNNZPerRow() + b.AvgNNZPerRow()) / 2
	if avg < 10 && footprint <= cacheBytes {
		return SpMMDataParallel(a, b, 4), VDataParallel
	}
	return SpMMPipette(a, b, true), VPipette
}
