package bench

import (
	"fmt"

	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
)

// Radii estimation (Ligra-style, Sec. V-B): up to 64 simultaneous BFS waves
// tracked as bit masks. Per edge: add = visited[v] &^ visited[ngh]; if any
// new bits, they are OR-ed into next[ngh], radii[ngh] is set to the round,
// and ngh joins the next fringe (deduplicated by round-tagged flags). At end
// of round, visited[u] = next[u] for fringe vertices.

const (
	radiiSeed  = 1234
	radiiWaves = 8 // simultaneous BFS waves (<=64); kept small to bound simulation time
)

type radiiLayout struct {
	g       graph.Layout
	visited uint64
	next    uint64
	radii   uint64
	flags   uint64
	fringeA uint64
	fringeB uint64
	cells   uint64
	n       int
	cnt0    int
}

func layoutRadii(m *mem.Memory, g *graph.Graph) radiiLayout {
	visited, fringe := graph.RadiiSetup(g, radiiSeed, radiiWaves)
	l := radiiLayout{
		g:       g.WriteTo(m),
		visited: m.AllocWords(uint64(g.N)),
		next:    m.AllocWords(uint64(g.N)),
		radii:   m.AllocWords(uint64(g.N)),
		flags:   m.AllocWords(uint64(g.N)),
		fringeA: m.AllocWords(uint64(g.N)),
		fringeB: m.AllocWords(uint64(g.N)),
		cells:   m.AllocWords(cellsWords),
		n:       g.N,
		cnt0:    len(fringe),
	}
	m.WriteWords(l.visited, visited)
	m.WriteWords(l.next, visited)
	for i, v := range fringe {
		m.Write64(l.fringeA+uint64(i)*8, uint64(v))
	}
	m.Write64(l.cells+cellCurCnt, uint64(len(fringe)))
	m.Write64(l.cells+cellCurPtr, l.fringeA)
	m.Write64(l.cells+cellNextPtr, l.fringeB)
	m.Write64(l.cells+cellCurDist, 1)
	return l
}

func checkRadii(s *sim.System, l radiiLayout, g *graph.Graph) CheckFn {
	return func() error {
		want := graph.Radii(g, radiiSeed, radiiWaves)
		for v := 0; v < g.N; v++ {
			if got := s.Mem.Read64(l.radii + uint64(v)*8); got != want[v] {
				return fmt.Errorf("radii: radii[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
}

// RadiiSerial builds the serial kernel.
func RadiiSerial(g *graph.Graph) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutRadii(s.Mem, g)
		s.Cores[0].Load(0, radiiSerialProg(l))
		return checkRadii(s, l, g)
	}
}

func radiiSerialProg(l radiiLayout) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rVis   isa.Reg = 3
		rCur   isa.Reg = 4
		rNext  isa.Reg = 5
		rCnt   isa.Reg = 6
		rNCnt  isa.Reg = 7
		rRnd   isa.Reg = 8
		rI     isa.Reg = 9
		rV     isa.Reg = 10
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rN     isa.Reg = 13
		rVu    isa.Reg = 14
		rT     isa.Reg = 15
		rVv    isa.Reg = 16
		rT2    isa.Reg = 17
		rFlg   isa.Reg = 18
		rF     isa.Reg = 19
		rNxt   isa.Reg = 20
		rAdd   isa.Reg = 21
		rRad   isa.Reg = 22
		rU     isa.Reg = 23
	)
	a := isa.NewAssembler("radii-serial")
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rVis, l.visited)
	a.SetReg(rNxt, l.next)
	a.SetReg(rRad, l.radii)
	a.SetReg(rFlg, l.flags)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rCnt, uint64(l.cnt0))
	a.SetReg(rNCnt, 0)
	a.SetReg(rRnd, 1)

	a.Label("round")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eor")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(rV, rT, 0)
	a.ShlI(rT, rV, 3)
	a.Add(rT2, rT, rVis)
	a.Ld8(rVv, rT2, 0) // visited[v]
	a.Add(rT, rT, rOff)
	a.Ld8(rStart, rT, 0)
	a.Ld8(rEnd, rT, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(rN, rT, 0)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rVis)
	a.Ld8(rVu, rT, 0) // visited[ngh]
	// add = vv &^ vu  == vv & ~vu == vv ^ (vv & vu)
	a.And(rAdd, rVv, rVu)
	a.Xor(rAdd, rVv, rAdd)
	a.BeqI(rAdd, 0, "skip")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rNxt)
	a.Ld8(rT2, rT, 0)
	a.Or(rT2, rT2, rAdd)
	a.St8(rT, 0, rT2) // next[ngh] |= add
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rRad)
	a.St8(rT, 0, rRnd) // radii[ngh] = round
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rFlg)
	a.Ld8(rF, rT, 0)
	a.Beq(rF, rRnd, "skip")
	a.St8(rT, 0, rRnd)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eor")
	// visited[u] = next[u] for fringe vertices.
	a.MovI(rI, 0)
	a.Label("copy")
	a.Bgeu(rI, rNCnt, "copyend")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rNext)
	a.Ld8(rU, rT, 0)
	a.ShlI(rT, rU, 3)
	a.Add(rT2, rT, rNxt)
	a.Ld8(rVu, rT2, 0)
	a.Add(rT, rT, rVis)
	a.St8(rT, 0, rVu)
	a.AddI(rI, rI, 1)
	a.Jmp("copy")
	a.Label("copyend")
	a.BeqI(rNCnt, 0, "done")
	a.Xor(rCur, rCur, rNext)
	a.Xor(rNext, rCur, rNext)
	a.Xor(rCur, rCur, rNext)
	a.Mov(rCnt, rNCnt)
	a.MovI(rNCnt, 0)
	a.AddI(rRnd, rRnd, 1)
	a.Jmp("round")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// RadiiDataParallel builds the 4-thread version: fetch-or on next masks,
// CAS-claimed push flags, partitioned visited-copy phase, two barriers per
// round.
func RadiiDataParallel(g *graph.Graph, nThreads int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutRadii(s.Mem, g)
		for t := 0; t < nThreads; t++ {
			s.Cores[t/4].Load(t%4, radiiDPProg(l, t, nThreads))
		}
		return checkRadii(s, l, g)
	}
}

func radiiDPProg(l radiiLayout, tid, nThreads int) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rVis   isa.Reg = 3
		rCells isa.Reg = 4
		rFlg   isa.Reg = 5
		rTid   isa.Reg = 6
		rT     isa.Reg = 7
		rBar   isa.Reg = 8
		rCnt   isa.Reg = 9
		rCur   isa.Reg = 10
		rRnd   isa.Reg = 11
		rLo    isa.Reg = 12
		rHi    isa.Reg = 13
		rI     isa.Reg = 14
		rV     isa.Reg = 15
		rStart isa.Reg = 16
		rEnd   isa.Reg = 17
		rN     isa.Reg = 18
		rAddr  isa.Reg = 19
		rOld   isa.Reg = 20
		rIdx   isa.Reg = 21
		rNext  isa.Reg = 22
		rTmp   isa.Reg = 23
		rOne   isa.Reg = 24
		rVv    isa.Reg = 25
		rVu    isa.Reg = 26
		rAdd   isa.Reg = 27
		rNxt   isa.Reg = 28
	)
	a := isa.NewAssembler(fmt.Sprintf("radii-dp-%d", tid))
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rVis, l.visited)
	a.SetReg(rNxt, l.next)
	a.SetReg(rFlg, l.flags)
	a.SetReg(rCells, l.cells)
	a.SetReg(rTid, uint64(tid))
	a.SetReg(rOne, 1)
	a.SetReg(rBar, 0)

	barrier := func(tag string, lastWork func()) {
		a.AddI(rTmp, rCells, cellArrive)
		a.FetchAdd(rOld, rTmp, rOne)
		a.AddI(rBar, rBar, 1)
		a.MovI(rTmp, int64(nThreads))
		a.Mul(rTmp, rTmp, rBar)
		a.AddI(rOld, rOld, 1)
		a.Bne(rOld, rTmp, tag+"wait")
		if lastWork != nil {
			lastWork()
		}
		a.AddI(rTmp, rCells, cellRelease)
		a.FetchAdd(rOld, rTmp, rOne)
		a.Label(tag + "wait")
		a.Ld8(rTmp, rCells, cellRelease)
		a.Bltu(rTmp, rBar, tag+"wait")
	}

	a.Label("round")
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.Ld8(rCur, rCells, cellCurPtr)
	a.Ld8(rRnd, rCells, cellCurDist)
	a.Mul(rLo, rTid, rCnt)
	a.MovI(rT, int64(nThreads))
	a.Div(rLo, rLo, rT)
	a.AddI(rHi, rTid, 1)
	a.Mul(rHi, rHi, rCnt)
	a.Div(rHi, rHi, rT)
	a.Mov(rI, rLo)
	a.Label("vloop")
	a.Bgeu(rI, rHi, "scatterdone")
	a.ShlI(rAddr, rI, 3)
	a.Add(rAddr, rAddr, rCur)
	a.Ld8(rV, rAddr, 0)
	a.ShlI(rAddr, rV, 3)
	a.Add(rTmp, rAddr, rVis)
	a.Ld8(rVv, rTmp, 0)
	a.Add(rAddr, rAddr, rOff)
	a.Ld8(rStart, rAddr, 0)
	a.Ld8(rEnd, rAddr, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rAddr, rStart, 3)
	a.Add(rAddr, rAddr, rNgh)
	a.Ld8(rN, rAddr, 0)
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rVis)
	a.Ld8(rVu, rAddr, 0)
	a.And(rAdd, rVv, rVu)
	a.Xor(rAdd, rVv, rAdd)
	a.BeqI(rAdd, 0, "skip")
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rNxt)
	a.FetchOr(rOld, rAddr, rAdd)
	a.ShlI(rAddr, rN, 3)
	a.MovU(rTmp, l.radii)
	a.Add(rAddr, rAddr, rTmp)
	a.St8(rAddr, 0, rRnd)
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rFlg)
	a.Label("claim")
	a.Ld8(rTmp, rAddr, 0)
	a.Beq(rTmp, rRnd, "skip")
	a.Cas(rOld, rAddr, rTmp, rRnd)
	a.Bne(rOld, rTmp, "claim")
	a.AddI(rTmp, rCells, cellNextCnt)
	a.FetchAdd(rIdx, rTmp, rOne)
	a.Ld8(rNext, rCells, cellNextPtr)
	a.ShlI(rTmp, rIdx, 3)
	a.Add(rTmp, rTmp, rNext)
	a.St8(rTmp, 0, rN)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("scatterdone")

	barrier("b1", nil)

	// Copy phase over this thread's slice of the next fringe.
	a.Ld8(rCnt, rCells, cellNextCnt)
	a.Ld8(rNext, rCells, cellNextPtr)
	a.Mul(rLo, rTid, rCnt)
	a.MovI(rT, int64(nThreads))
	a.Div(rLo, rLo, rT)
	a.AddI(rHi, rTid, 1)
	a.Mul(rHi, rHi, rCnt)
	a.Div(rHi, rHi, rT)
	a.Mov(rI, rLo)
	a.Label("copy")
	a.Bgeu(rI, rHi, "copydone")
	a.ShlI(rAddr, rI, 3)
	a.Add(rAddr, rAddr, rNext)
	a.Ld8(rV, rAddr, 0)
	a.ShlI(rAddr, rV, 3)
	a.Add(rTmp, rAddr, rNxt)
	a.Ld8(rVu, rTmp, 0)
	a.Add(rAddr, rAddr, rVis)
	a.St8(rAddr, 0, rVu)
	a.AddI(rI, rI, 1)
	a.Jmp("copy")
	a.Label("copydone")

	barrier("b2", func() {
		a.Ld8(rTmp, rCells, cellCurPtr)
		a.Ld8(rOld, rCells, cellNextPtr)
		a.St8(rCells, cellCurPtr, rOld)
		a.St8(rCells, cellNextPtr, rTmp)
		a.Ld8(rTmp, rCells, cellNextCnt)
		a.St8(rCells, cellCurCnt, rTmp)
		a.St8(rCells, cellNextCnt, isa.R0)
		a.Ld8(rTmp, rCells, cellCurDist)
		a.AddI(rTmp, rTmp, 1)
		a.St8(rCells, cellCurDist, rTmp)
	})

	a.Ld8(rCnt, rCells, cellCurCnt)
	a.BneI(rCnt, 0, "round")
	a.Halt()
	return a.MustLink()
}

// radiiUpdateProg is the Pipette update stage. visited[] is read-only
// during a round, so the RA-fetched visited[ngh] is used directly (no
// staleness); next/radii/flags are written only by this stage.
func radiiUpdateProg(l radiiLayout) *isa.Program {
	const (
		rNxt  isa.Reg = 3
		rNext isa.Reg = 5
		rNCnt isa.Reg = 7
		rRnd  isa.Reg = 8
		rN    isa.Reg = 13
		rVu   isa.Reg = 14
		rT    isa.Reg = 15
		rVv   isa.Reg = 16
		rT2   isa.Reg = 17
		rFlg  isa.Reg = 18
		rF    isa.Reg = 19
		rAdd  isa.Reg = 20
		rRad  isa.Reg = 21
		rVis  isa.Reg = 22
		rU    isa.Reg = 23
		rI    isa.Reg = 24
	)
	a := isa.NewAssembler("radii-update")
	a.MapQ(mq0, fqDupB, isa.QueueOut) // ngh
	a.MapQ(mq1, fqData, isa.QueueOut) // visited[ngh]
	a.MapQ(mq2, fqRep, isa.QueueOut)  // visited[v]
	a.MapQ(mq3, fqFeed, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rNxt, l.next)
	a.SetReg(rVis, l.visited)
	a.SetReg(rRad, l.radii)
	a.SetReg(rFlg, l.flags)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rRnd, 1)

	a.Label("loop")
	a.Mov(rN, mq0)
	a.Mov(rVu, mq1)
	a.Mov(rVv, mq2)
	a.And(rAdd, rVv, rVu)
	a.Xor(rAdd, rVv, rAdd)
	a.BeqI(rAdd, 0, "loop")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rNxt)
	a.Ld8(rT2, rT, 0)
	a.Or(rT2, rT2, rAdd)
	a.St8(rT, 0, rT2)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rRad)
	a.St8(rT, 0, rRnd)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rFlg)
	a.Ld8(rF, rT, 0)
	a.Beq(rF, rRnd, "loop")
	a.St8(rT, 0, rRnd)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("loop")

	a.Label("cv")
	a.SkipC(rT, fqData)
	a.SkipC(rT, fqRep)
	a.BeqI(isa.RHCV, cvDone, "done")
	// Copy visited = next over the new fringe.
	a.MovI(rI, 0)
	a.Label("copy")
	a.Bgeu(rI, rNCnt, "copyend")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rNext)
	a.Ld8(rU, rT, 0)
	a.ShlI(rT, rU, 3)
	a.Add(rT2, rT, rNxt)
	a.Ld8(rVu, rT2, 0)
	a.Add(rT, rT, rVis)
	a.St8(rT, 0, rVu)
	a.AddI(rI, rI, 1)
	a.Jmp("copy")
	a.Label("copyend")
	a.Mov(mq3, rNCnt)
	a.MovI(rNCnt, 0)
	a.AddI(rRnd, rRnd, 1)
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rNext, rNext, rT)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

func radiiPipeline(s *sim.System, g *graph.Graph, useRA bool) (pipeSpec, radiiLayout) {
	l := layoutRadii(s.Mem, g)
	p := pipeSpec{queues: fringeQueueCaps()}
	head := fringeHeadProg("radii-head", l.fringeA, l.fringeB, uint64(l.cnt0),
		l.g.OffsetsAddr, l.visited, useRA, 0)
	expand := fringeExpandProg("radii-expand", l.g.NeighborsAddr, nil, useRA)
	update := radiiUpdateProg(l)
	if useRA {
		p.stages = []*isa.Program{head, expand, fringeDupProg("radii-dup"), update}
		p.ras = raList(
			raPair(fqV0, fqRange, l.g.OffsetsAddr),
			raInd(fqV1, fqVal, l.visited),
			raScan(fqScan, fqNgh, l.g.NeighborsAddr),
			raInd(fqDupA, fqData, l.visited),
		)
	} else {
		p.stages = []*isa.Program{head, expand, fringeFetchProg("radii-fetch", l.visited), update}
	}
	return p, l
}

// RadiiPipette builds Pipette Radii on one core.
func RadiiPipette(g *graph.Graph, useRA bool) Builder {
	return func(s *sim.System) CheckFn {
		p, l := radiiPipeline(s, g, useRA)
		p.placeSingleCore(s, 0)
		return checkRadii(s, l, g)
	}
}

// RadiiStreaming places each stage on its own core.
func RadiiStreaming(g *graph.Graph) Builder {
	return func(s *sim.System) CheckFn {
		p, l := radiiPipeline(s, g, true)
		p.placeStreaming(s)
		return checkRadii(s, l, g)
	}
}
