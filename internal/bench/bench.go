// Package bench contains the six applications of the paper's evaluation
// (Sec. V-B) — BFS, Connected Components, PageRank-Delta, Radii, SpMM and
// Silo — each as ISA program builders in serial, data-parallel, and Pipette
// variants (the latter with and without reference accelerators), plus the
// streaming and multicore BFS placements of Figs. 2 and 17.
//
// Every builder lays its data out in the system's simulated memory, loads
// the programs, and returns a check function that validates the simulated
// results against the reference implementations in internal/graph,
// internal/sparse and internal/btree.
package bench

import (
	"fmt"

	"pipette/internal/sim"
)

// CheckFn validates a finished run's memory against a reference result.
type CheckFn func() error

// Variant names used across the harness.
const (
	VSerial       = "serial"
	VDataParallel = "data-parallel"
	VPipette      = "pipette"      // with RAs (the paper's default)
	VPipetteNoRA  = "pipette-nora" // RAs disabled (Fig. 16)
	VStreaming    = "streaming"    // one stage per single-threaded core
)

// Builder constructs a workload inside a prepared system.
type Builder func(s *sim.System) CheckFn

// Run builds w inside s, runs to completion, validates, and returns the
// result.
func Run(s *sim.System, w Builder) (sim.Result, error) {
	check := w(s)
	r, err := s.Run()
	if err != nil {
		return r, err
	}
	if err := check(); err != nil {
		return r, fmt.Errorf("result check failed: %w", err)
	}
	return r, nil
}

// Queue ids used by the pipelined kernels. Pipelines use a small, fixed
// naming scheme so RA wiring stays readable.
const (
	qVtx   uint8 = 0 // vertices into the offsets stage/RA
	qRange uint8 = 1 // (start,end) pairs
	qNgh   uint8 = 2 // neighbor stream
	qDupA  uint8 = 3 // neighbor copy toward the data-fetch stage/RA
	qDupB  uint8 = 4 // neighbor copy toward the update stage
	qData  uint8 = 5 // fetched data values
	qFeed  uint8 = 6 // end-of-level feedback to the head stage
	qAux   uint8 = 7 // app-specific second data stream
)

// Control-value meanings for the fringe pipelines: EOL delimits a level,
// Done tears the pipeline down.
const (
	cvDone = 0
	cvEOL  = 1
)

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
