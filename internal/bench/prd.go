package bench

import (
	"fmt"
	"math"

	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
)

// PageRank-Delta (Ligra-style, Sec. V-B): each iteration scatters
// damping*delta[v]/deg(v) from fringe vertices to their neighbors' accum
// slots, then a dense pass converts accumulators into new deltas, updates
// ranks, and builds the next fringe from vertices whose delta exceeds eps.

const (
	prdDamping = 0.85
	prdEps     = 1e-7
)

type prdLayout struct {
	g       graph.Layout
	delta   uint64
	accum   uint64
	rank    uint64
	fringeA uint64
	fringeB uint64
	cells   uint64
	n       int
	iters   int
}

func layoutPRD(m *mem.Memory, g *graph.Graph, iters int) prdLayout {
	l := prdLayout{
		g:       g.WriteTo(m),
		delta:   m.AllocWords(uint64(g.N)),
		accum:   m.AllocWords(uint64(g.N)),
		rank:    m.AllocWords(uint64(g.N)),
		fringeA: m.AllocWords(uint64(g.N)),
		fringeB: m.AllocWords(uint64(g.N)),
		cells:   m.AllocWords(cellsWords),
		n:       g.N,
		iters:   iters,
	}
	base := (1 - prdDamping) / float64(g.N)
	for v := 0; v < g.N; v++ {
		m.Write64(l.delta+uint64(v)*8, isa.F2U(base))
		m.Write64(l.rank+uint64(v)*8, isa.F2U(base))
		m.Write64(l.fringeA+uint64(v)*8, uint64(v))
	}
	m.Write64(l.cells+cellCurCnt, uint64(g.N))
	m.Write64(l.cells+cellCurPtr, l.fringeA)
	m.Write64(l.cells+cellNextPtr, l.fringeB)
	return l
}

func checkPRD(s *sim.System, l prdLayout, g *graph.Graph, relTol float64) CheckFn {
	return func() error {
		want := graph.PageRankDelta(g, l.iters, prdEps)
		for v := 0; v < g.N; v++ {
			got := isa.U2F(s.Mem.Read64(l.rank + uint64(v)*8))
			if math.Abs(got-want[v]) > relTol*math.Abs(want[v])+1e-12 {
				return fmt.Errorf("prd: rank[%d] = %g, want %g", v, got, want[v])
			}
		}
		return nil
	}
}

// PRDSerial builds the serial kernel.
func PRDSerial(g *graph.Graph, iters int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutPRD(s.Mem, g, iters)
		s.Cores[0].Load(0, prdSerialProg(l))
		return checkPRD(s, l, g, 1e-12)
	}
}

// prdDensePass emits the shared dense phase over [lo,hi): delta=accum,
// accum=0, and push u with rank update when delta > eps. Registers rLo/rHi
// bound the range; rNext/rNCnt receive pushes (nextCnt via nextCntTo hook:
// direct register or fetch-add cell). Used by serial and Pipette (full
// range) code.
func prdDensePass(a *isa.Assembler, l prdLayout, rLo, rHi, rU, rT, rAcc, rEps, rT2, rNext, rNCnt isa.Reg) {
	a.Mov(rU, rLo)
	a.Label("dense")
	a.Bgeu(rU, rHi, "denseend")
	a.ShlI(rT, rU, 3)
	a.MovU(rT2, l.accum)
	a.Add(rT, rT, rT2)
	a.Ld8(rAcc, rT, 0)
	a.St8(rT, 0, isa.R0) // accum = 0
	a.ShlI(rT, rU, 3)
	a.MovU(rT2, l.delta)
	a.Add(rT, rT, rT2)
	a.St8(rT, 0, rAcc) // delta = accum
	a.FLt(rT2, rEps, rAcc)
	a.BeqI(rT2, 0, "densenext") // delta <= eps
	a.ShlI(rT, rU, 3)
	a.MovU(rT2, l.rank)
	a.Add(rT, rT, rT2)
	a.Ld8(rT2, rT, 0)
	a.FAdd(rT2, rT2, rAcc)
	a.St8(rT, 0, rT2) // rank += delta
	a.ShlI(rT, rNCnt, 3)
	a.Add(rT, rT, rNext)
	a.St8(rT, 0, rU)
	a.AddI(rNCnt, rNCnt, 1)
	a.Label("densenext")
	a.AddI(rU, rU, 1)
	a.Jmp("dense")
	a.Label("denseend")
}

func prdSerialProg(l prdLayout) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rDel   isa.Reg = 3
		rCur   isa.Reg = 4
		rNext  isa.Reg = 5
		rCnt   isa.Reg = 6
		rNCnt  isa.Reg = 7
		rIter  isa.Reg = 8
		rI     isa.Reg = 9
		rV     isa.Reg = 10
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rN     isa.Reg = 13
		rShare isa.Reg = 14
		rT     isa.Reg = 15
		rAcc   isa.Reg = 16
		rT2    isa.Reg = 17
		rDmp   isa.Reg = 18
		rEps   isa.Reg = 19
		rU     isa.Reg = 20
		rABase isa.Reg = 21
		rHi    isa.Reg = 22
	)
	a := isa.NewAssembler("prd-serial")
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rDel, l.delta)
	a.SetReg(rABase, l.accum)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rCnt, uint64(l.n))
	a.SetReg(rNCnt, 0)
	a.SetReg(rIter, 0)
	a.SetReg(rDmp, isa.F2U(prdDamping))
	a.SetReg(rEps, isa.F2U(prdEps))

	a.Label("iter")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "scatterend")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(rV, rT, 0)
	a.ShlI(rT, rV, 3)
	a.Add(rT2, rT, rDel)
	a.Ld8(rShare, rT2, 0) // delta[v]
	a.Add(rT, rT, rOff)
	a.Ld8(rStart, rT, 0)
	a.Ld8(rEnd, rT, 8)
	a.Bgeu(rStart, rEnd, "vend") // zero degree
	// share = damping*delta/deg
	a.FMul(rShare, rShare, rDmp)
	a.Sub(rT2, rEnd, rStart)
	a.IToF(rT2, rT2)
	a.FDiv(rShare, rShare, rT2)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(rN, rT, 0)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rABase)
	a.Ld8(rAcc, rT, 0)
	a.FAdd(rAcc, rAcc, rShare)
	a.St8(rT, 0, rAcc)
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("scatterend")
	a.MovI(rT, 0)
	a.MovU(rHi, uint64(l.n))
	prdDensePass(a, l, isa.R0, rHi, rU, rT, rAcc, rEps, rT2, rNext, rNCnt)
	a.AddI(rIter, rIter, 1)
	a.BeqI(rNCnt, 0, "done")
	a.BeqI(rIter, int64(l.iters), "done")
	a.Xor(rCur, rCur, rNext)
	a.Xor(rNext, rCur, rNext)
	a.Xor(rCur, rCur, rNext)
	a.Mov(rCnt, rNCnt)
	a.MovI(rNCnt, 0)
	a.Jmp("iter")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// PRDDataParallel builds the 4-thread version: CAS-loop float accumulation
// in the scatter phase, partitioned dense phase, two barriers per iteration.
func PRDDataParallel(g *graph.Graph, iters, nThreads int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutPRD(s.Mem, g, iters)
		for t := 0; t < nThreads; t++ {
			s.Cores[t/4].Load(t%4, prdDPProg(l, t, nThreads))
		}
		// Parallel float accumulation reorders additions.
		return checkPRD(s, l, g, 1e-9)
	}
}

func prdDPProg(l prdLayout, tid, nThreads int) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rDel   isa.Reg = 3
		rCells isa.Reg = 4
		rABase isa.Reg = 5
		rTid   isa.Reg = 6
		rT     isa.Reg = 7
		rBar   isa.Reg = 8
		rCnt   isa.Reg = 9
		rCur   isa.Reg = 10
		rLo    isa.Reg = 11
		rHi    isa.Reg = 12
		rI     isa.Reg = 13
		rV     isa.Reg = 14
		rStart isa.Reg = 15
		rEnd   isa.Reg = 16
		rN     isa.Reg = 17
		rShare isa.Reg = 18
		rAddr  isa.Reg = 19
		rOld   isa.Reg = 20
		rNew   isa.Reg = 21
		rTmp   isa.Reg = 22
		rOne   isa.Reg = 23
		rDmp   isa.Reg = 24
		rEps   isa.Reg = 25
		rIter  isa.Reg = 26
		rNxt   isa.Reg = 27
		rU     isa.Reg = 28
	)
	a := isa.NewAssembler(fmt.Sprintf("prd-dp-%d", tid))
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rDel, l.delta)
	a.SetReg(rABase, l.accum)
	a.SetReg(rCells, l.cells)
	a.SetReg(rTid, uint64(tid))
	a.SetReg(rOne, 1)
	a.SetReg(rBar, 0)
	a.SetReg(rIter, 0)
	a.SetReg(rDmp, isa.F2U(prdDamping))
	a.SetReg(rEps, isa.F2U(prdEps))

	barrier := func(tag string, lastWork func()) {
		a.AddI(rTmp, rCells, cellArrive)
		a.FetchAdd(rOld, rTmp, rOne)
		a.AddI(rBar, rBar, 1)
		a.MovI(rTmp, int64(nThreads))
		a.Mul(rTmp, rTmp, rBar)
		a.AddI(rOld, rOld, 1)
		a.Bne(rOld, rTmp, tag+"wait")
		if lastWork != nil {
			lastWork()
		}
		a.AddI(rTmp, rCells, cellRelease)
		a.FetchAdd(rOld, rTmp, rOne)
		a.Label(tag + "wait")
		a.Ld8(rTmp, rCells, cellRelease)
		a.Bltu(rTmp, rBar, tag+"wait")
	}

	a.Label("iter")
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.Ld8(rCur, rCells, cellCurPtr)
	a.Mul(rLo, rTid, rCnt)
	a.MovI(rT, int64(nThreads))
	a.Div(rLo, rLo, rT)
	a.AddI(rHi, rTid, 1)
	a.Mul(rHi, rHi, rCnt)
	a.Div(rHi, rHi, rT)
	a.Mov(rI, rLo)
	a.Label("vloop")
	a.Bgeu(rI, rHi, "scatterdone")
	a.ShlI(rAddr, rI, 3)
	a.Add(rAddr, rAddr, rCur)
	a.Ld8(rV, rAddr, 0)
	a.ShlI(rAddr, rV, 3)
	a.Add(rTmp, rAddr, rDel)
	a.Ld8(rShare, rTmp, 0)
	a.Add(rAddr, rAddr, rOff)
	a.Ld8(rStart, rAddr, 0)
	a.Ld8(rEnd, rAddr, 8)
	a.Bgeu(rStart, rEnd, "vend")
	a.FMul(rShare, rShare, rDmp)
	a.Sub(rTmp, rEnd, rStart)
	a.IToF(rTmp, rTmp)
	a.FDiv(rShare, rShare, rTmp)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rAddr, rStart, 3)
	a.Add(rAddr, rAddr, rNgh)
	a.Ld8(rN, rAddr, 0)
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rABase)
	a.Label("retry")
	a.Ld8(rOld, rAddr, 0)
	a.FAdd(rNew, rOld, rShare)
	a.Cas(rTmp, rAddr, rOld, rNew)
	a.Bne(rTmp, rOld, "retry")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("scatterdone")

	barrier("b1", nil) // all accumulation visible before the dense pass

	// Dense pass over this thread's static vertex slice.
	lo := uint64(tid) * uint64(l.n) / uint64(nThreads)
	hi := uint64(tid+1) * uint64(l.n) / uint64(nThreads)
	a.MovU(rU, lo)
	a.MovU(rHi, hi)
	a.Label("dense")
	a.Bgeu(rU, rHi, "densedone")
	a.ShlI(rAddr, rU, 3)
	a.Add(rAddr, rAddr, rABase)
	a.Ld8(rOld, rAddr, 0) // accum
	a.St8(rAddr, 0, isa.R0)
	a.ShlI(rAddr, rU, 3)
	a.Add(rAddr, rAddr, rDel)
	a.St8(rAddr, 0, rOld)
	a.FLt(rTmp, rEps, rOld)
	a.BeqI(rTmp, 0, "densenext")
	a.ShlI(rAddr, rU, 3)
	a.MovU(rTmp, l.rank)
	a.Add(rAddr, rAddr, rTmp)
	a.Ld8(rTmp, rAddr, 0)
	a.FAdd(rTmp, rTmp, rOld)
	a.St8(rAddr, 0, rTmp)
	a.AddI(rTmp, rCells, cellNextCnt)
	a.FetchAdd(rNew, rTmp, rOne)
	a.Ld8(rNxt, rCells, cellNextPtr)
	a.ShlI(rTmp, rNew, 3)
	a.Add(rTmp, rTmp, rNxt)
	a.St8(rTmp, 0, rU)
	a.Label("densenext")
	a.AddI(rU, rU, 1)
	a.Jmp("dense")
	a.Label("densedone")

	barrier("b2", func() {
		a.Ld8(rTmp, rCells, cellCurPtr)
		a.Ld8(rOld, rCells, cellNextPtr)
		a.St8(rCells, cellCurPtr, rOld)
		a.St8(rCells, cellNextPtr, rTmp)
		a.Ld8(rTmp, rCells, cellNextCnt)
		a.St8(rCells, cellCurCnt, rTmp)
		a.St8(rCells, cellNextCnt, isa.R0)
	})

	a.AddI(rIter, rIter, 1)
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.BeqI(rCnt, 0, "done")
	a.BneI(rIter, int64(l.iters), "iter")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// prdUpdateProg is the Pipette update/accumulate stage. The fetched accum
// value only warms the cache line (decoupled fetches can be stale, Sec.
// III-C); the stage re-loads and accumulates locally, then runs the dense
// pass at end of iteration.
func prdUpdateProg(l prdLayout) *isa.Program {
	const (
		rABase isa.Reg = 3
		rNext  isa.Reg = 5
		rNCnt  isa.Reg = 7
		rN     isa.Reg = 13
		rShare isa.Reg = 14
		rT     isa.Reg = 15
		rAcc   isa.Reg = 16
		rT2    isa.Reg = 17
		rEps   isa.Reg = 18
		rU     isa.Reg = 20
		rHi    isa.Reg = 21
	)
	a := isa.NewAssembler("prd-update")
	a.MapQ(mq0, fqDupB, isa.QueueOut) // neighbor ids
	a.MapQ(mq1, fqData, isa.QueueOut) // fetched accum (warmth only)
	a.MapQ(mq2, fqRep, isa.QueueOut)  // replicated share
	a.MapQ(mq3, fqFeed, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rABase, l.accum)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rEps, isa.F2U(prdEps))

	a.Label("loop")
	a.Mov(rN, mq0)
	a.Mov(rT2, mq1) // discard: the RA load warmed the line
	a.Mov(rShare, mq2)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rABase)
	a.Ld8(rAcc, rT, 0) // fresh value, L1 hit
	a.FAdd(rAcc, rAcc, rShare)
	a.St8(rT, 0, rAcc)
	a.Jmp("loop")

	a.Label("cv")
	a.SkipC(rT, fqData)
	a.SkipC(rT, fqRep)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.MovU(rHi, uint64(l.n))
	prdDensePass(a, l, isa.R0, rHi, rU, rT, rAcc, rEps, rT2, rNext, rNCnt)
	a.Mov(mq3, rNCnt)
	a.MovI(rNCnt, 0)
	a.MovU(rT, l.fringeA^l.fringeB)
	a.Xor(rNext, rNext, rT)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

func prdPipeline(s *sim.System, g *graph.Graph, iters int, useRA bool) (pipeSpec, prdLayout) {
	l := layoutPRD(s.Mem, g, iters)
	p := pipeSpec{queues: fringeQueueCaps()}
	// The expand hook turns delta[v] into share = damping*delta/deg.
	hook := func(a *isa.Assembler, rVal, rStart, rEnd, rS1, rS2 isa.Reg) {
		a.Bgeu(rStart, rEnd, "zdeg") // avoid 0/0 for isolated vertices
		a.MovU(rS1, isa.F2U(prdDamping))
		a.FMul(rVal, rVal, rS1)
		a.Sub(rS1, rEnd, rStart)
		a.IToF(rS1, rS1)
		a.FDiv(rVal, rVal, rS1)
		a.Label("zdeg")
	}
	head := fringeHeadProg("prd-head", l.fringeA, l.fringeB, uint64(l.n),
		l.g.OffsetsAddr, l.delta, useRA, int64(iters))
	expand := fringeExpandProg("prd-expand", l.g.NeighborsAddr, hook, useRA)
	update := prdUpdateProg(l)
	if useRA {
		p.stages = []*isa.Program{head, expand, fringeDupProg("prd-dup"), update}
		p.ras = raList(
			raPair(fqV0, fqRange, l.g.OffsetsAddr),
			raInd(fqV1, fqVal, l.delta),
			raScan(fqScan, fqNgh, l.g.NeighborsAddr),
			raInd(fqDupA, fqData, l.accum),
		)
	} else {
		p.stages = []*isa.Program{head, expand, fringeFetchProg("prd-fetch", l.accum), update}
	}
	return p, l
}

// PRDPipette builds Pipette PageRank-Delta on one core.
func PRDPipette(g *graph.Graph, iters int, useRA bool) Builder {
	return func(s *sim.System) CheckFn {
		p, l := prdPipeline(s, g, iters, useRA)
		p.placeSingleCore(s, 0)
		return checkPRD(s, l, g, 1e-12)
	}
}

// PRDStreaming places each stage on its own core.
func PRDStreaming(g *graph.Graph, iters int) Builder {
	return func(s *sim.System) CheckFn {
		p, l := prdPipeline(s, g, iters, true)
		p.placeStreaming(s)
		return checkPRD(s, l, g, 1e-12)
	}
}
