package bench

import (
	"testing"

	"pipette/internal/sparse"
)

func spmmMats() (*sparse.Matrix, *sparse.Matrix) {
	return sparse.Random("a", 60, 5, 31), sparse.Random("b", 60, 5, 32)
}

func TestSpMMSerial(t *testing.T) {
	a, b := spmmMats()
	runBench(t, 1, SpMMSerial(a, b))
}

func TestSpMMDataParallel(t *testing.T) {
	a, b := spmmMats()
	runBench(t, 1, SpMMDataParallel(a, b, 4))
}

func TestSpMMPipetteRA(t *testing.T) {
	a, b := spmmMats()
	runBench(t, 1, SpMMPipette(a, b, true))
}

func TestSpMMPipetteNoRA(t *testing.T) {
	a, b := spmmMats()
	runBench(t, 1, SpMMPipette(a, b, false))
}

func TestSpMMStreaming(t *testing.T) {
	a, b := spmmMats()
	runBench(t, 4, SpMMStreaming(a, b))
}

// skip_to_ctrl early termination (Fig. 5): long rows of A against short
// columns of B should fire the enqueue control handler in the no-RA variant.
func TestSpMMSkipFiresEnqHandler(t *testing.T) {
	a := sparse.Banded("wide", 40, 20, 33) // dense rows
	b := sparse.Random("thin", 40, 2, 34)  // sparse columns
	r := runBench(t, 1, SpMMPipette(a, b, false))
	found := false
	for _, cs := range r.CoreStats {
		if cs.EnqTraps > 0 {
			found = true
		}
	}
	if !found {
		t.Error("expected enqueue-handler traps from skip_to_ctrl (Fig. 5)")
	}
	if r.CoreStats[0].SkipOps == 0 {
		t.Error("expected skip_to_ctrl operations")
	}
}

func TestSiloSerial(t *testing.T) {
	runBench(t, 1, SiloSerial(800, 150, 99))
}

func TestSiloDataParallel(t *testing.T) {
	runBench(t, 1, SiloDataParallel(800, 150, 4, 99))
}

func TestSiloPipetteRA(t *testing.T) {
	runBench(t, 1, SiloPipette(800, 150, true, 99))
}

func TestSiloPipetteNoRA(t *testing.T) {
	runBench(t, 1, SiloPipette(800, 150, false, 99))
}

func TestSiloStreaming(t *testing.T) {
	runBench(t, 4, SiloStreaming(800, 150, 99))
}
