package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/sim"
)

// ffRun is everything quiescence fast-forward must leave bit-identical:
// the final absolute cycle, the full Result (cycle counts, CPI stacks,
// occupancy integrals, connector stats via StateHash), the canonical state
// hash, and the sampled telemetry series rendered to its on-disk form.
type ffRun struct {
	now    uint64
	result sim.Result
	hash   string
	csv    []byte
}

func runWithFF(t *testing.T, app, variant, input string, ff bool) ffRun {
	t.Helper()
	b, cores, err := Lookup(app, variant, input, 2, 1)
	if err != nil {
		t.Fatalf("Lookup(%s/%s/%s): %v", app, variant, input, err)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	s.SetFastForward(ff)
	sm := s.EnableSampling(256)
	r, err := Run(s, b)
	if err != nil {
		t.Fatalf("%s/%s/%s ff=%v: %v", app, variant, input, ff, err)
	}
	hash, err := s.StateHash()
	if err != nil {
		t.Fatalf("StateHash: %v", err)
	}
	var csv bytes.Buffer
	if err := sm.WriteCSV(&csv, core.StallNames()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return ffRun{now: s.Now(), result: r, hash: hash, csv: csv.Bytes()}
}

// TestFastForwardEquivalence is the acceptance matrix for quiescence
// fast-forward: for all six apps in both the baseline (serial) and pipette
// variants, a fast-forwarded run and a tick-every-cycle run must agree on
// the final cycle count, every statistic in the Result, the canonical
// StateHash of the finished machine, and the byte-exact telemetry sample
// series.
func TestFastForwardEquivalence(t *testing.T) {
	cases := []struct{ app, input string }{
		{"bfs", "Co"},
		{"cc", "Co"},
		{"prd", "Co"},
		{"radii", "Co"},
		{"spmm", "Am"},
		{"silo", "ycsbc"},
	}
	for _, tc := range cases {
		for _, variant := range []string{VSerial, VPipette} {
			tc, variant := tc, variant
			t.Run(fmt.Sprintf("%s/%s", tc.app, variant), func(t *testing.T) {
				t.Parallel()
				on := runWithFF(t, tc.app, variant, tc.input, true)
				off := runWithFF(t, tc.app, variant, tc.input, false)
				if on.now != off.now {
					t.Errorf("final cycle differs: ff=%d noff=%d", on.now, off.now)
				}
				if !reflect.DeepEqual(on.result, off.result) {
					t.Errorf("results differ:\n  ff:   %+v\n  noff: %+v", on.result, off.result)
				}
				if on.hash != off.hash {
					t.Errorf("state hash differs: ff=%s noff=%s", on.hash, off.hash)
				}
				if !bytes.Equal(on.csv, off.csv) {
					t.Errorf("telemetry series differ (%d vs %d bytes)", len(on.csv), len(off.csv))
				}
			})
		}
	}
}

// TestFastForwardCheckpointEquivalence runs the same workload through a
// segmented RunUntil loop (the -checkpoint-every pattern) with fast-forward
// on and off, comparing the machine state hash at every segment boundary.
// This pins the jump-capping behaviour: a jump must land exactly on the
// segment bound, never beyond it.
func TestFastForwardCheckpointEquivalence(t *testing.T) {
	build := func(ff bool) *sim.System {
		b, cores, err := Lookup("bfs", VPipette, "Co", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetFastForward(ff)
		b(s)
		return s
	}
	on, off := build(true), build(false)
	const seg = 5000
	for i := 0; i < 200 && !(on.Done() && off.Done()); i++ {
		target := uint64((i + 1) * seg)
		if _, err := on.RunUntil(target); err != nil {
			t.Fatalf("ff segment %d: %v", i, err)
		}
		if _, err := off.RunUntil(target); err != nil {
			t.Fatalf("noff segment %d: %v", i, err)
		}
		if on.Now() != off.Now() {
			t.Fatalf("segment %d: cycle ff=%d noff=%d", i, on.Now(), off.Now())
		}
		ho, err := on.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		hf, err := off.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if ho != hf {
			t.Fatalf("segment %d (cycle %d): state diverged", i, on.Now())
		}
	}
	if !on.Done() || !off.Done() {
		t.Fatalf("workload did not finish within segments (ff=%v noff=%v)", on.Done(), off.Done())
	}
}
