package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// ffRun is everything an execution-strategy knob (quiescence fast-forward,
// the -sim-workers pool, the pre-decoded micro-op frontend) must leave
// bit-identical: the final absolute cycle, the full Result (cycle counts,
// CPI stacks, occupancy integrals, connector stats via StateHash), the
// canonical state hash, the sampled telemetry series rendered to its
// on-disk form, and the traced event stream (every event, in order, plus
// the all-time emission count).
type ffRun struct {
	now     uint64
	result  sim.Result
	hash    string
	csv     []byte
	events  []telemetry.Event
	emitted uint64
}

func runCell(t *testing.T, app, variant, input string, ff bool, workers int, predecode bool) ffRun {
	t.Helper()
	b, cores, err := Lookup(app, variant, input, 2, 1)
	if err != nil {
		t.Fatalf("Lookup(%s/%s/%s): %v", app, variant, input, err)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	s.SetFastForward(ff)
	s.SetWorkers(workers)
	s.SetPredecode(predecode)
	tr := s.EnableTracing(1 << 16)
	sm := s.EnableSampling(256)
	r, err := Run(s, b)
	if err != nil {
		t.Fatalf("%s/%s/%s ff=%v workers=%d: %v", app, variant, input, ff, workers, err)
	}
	hash, err := s.StateHash()
	if err != nil {
		t.Fatalf("StateHash: %v", err)
	}
	var csv bytes.Buffer
	if err := sm.WriteCSV(&csv, core.StallNames()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return ffRun{
		now: s.Now(), result: r, hash: hash, csv: csv.Bytes(),
		events: tr.Events(), emitted: tr.Total(),
	}
}

func runWithFF(t *testing.T, app, variant, input string, ff bool) ffRun {
	t.Helper()
	return runCell(t, app, variant, input, ff, 1, true)
}

// sameRun asserts two runs of the same workload are bit-identical in every
// observable: cycle count, Result, state hash, telemetry CSV bytes, and the
// traced event stream.
func sameRun(t *testing.T, labelA, labelB string, a, b ffRun) {
	t.Helper()
	if a.now != b.now {
		t.Errorf("final cycle differs: %s=%d %s=%d", labelA, a.now, labelB, b.now)
	}
	if !reflect.DeepEqual(a.result, b.result) {
		t.Errorf("results differ:\n  %s: %+v\n  %s: %+v", labelA, a.result, labelB, b.result)
	}
	if a.hash != b.hash {
		t.Errorf("state hash differs: %s=%s %s=%s", labelA, a.hash, labelB, b.hash)
	}
	if !bytes.Equal(a.csv, b.csv) {
		t.Errorf("telemetry series differ (%s=%d vs %s=%d bytes)", labelA, len(a.csv), labelB, len(b.csv))
	}
	if a.emitted != b.emitted {
		t.Errorf("event counts differ: %s=%d %s=%d", labelA, a.emitted, labelB, b.emitted)
	}
	if !reflect.DeepEqual(a.events, b.events) {
		n := len(a.events)
		if len(b.events) < n {
			n = len(b.events)
		}
		for i := 0; i < n; i++ {
			if a.events[i] != b.events[i] {
				t.Errorf("event streams diverge at index %d: %s=%+v %s=%+v", i, labelA, a.events[i], labelB, b.events[i])
				return
			}
		}
		t.Errorf("event streams differ in length: %s=%d %s=%d", labelA, len(a.events), labelB, len(b.events))
	}
}

// TestFastForwardEquivalence is the acceptance matrix for quiescence
// fast-forward and the pre-decoded frontend: for all six apps in both the
// baseline (serial) and pipette variants, the reference run (fast-forward
// on, predecode on) must agree with a tick-every-cycle run and with a
// raw-Inst-path run on the final cycle count, every statistic in the
// Result, the canonical StateHash of the finished machine, and the
// byte-exact telemetry sample series.
func TestFastForwardEquivalence(t *testing.T) {
	cases := []struct{ app, input string }{
		{"bfs", "Co"},
		{"cc", "Co"},
		{"prd", "Co"},
		{"radii", "Co"},
		{"spmm", "Am"},
		{"silo", "ycsbc"},
	}
	for _, tc := range cases {
		for _, variant := range []string{VSerial, VPipette} {
			tc, variant := tc, variant
			t.Run(fmt.Sprintf("%s/%s", tc.app, variant), func(t *testing.T) {
				t.Parallel()
				ref := runWithFF(t, tc.app, variant, tc.input, true)
				noff := runWithFF(t, tc.app, variant, tc.input, false)
				sameRun(t, "ff", "noff", ref, noff)
				nopd := runCell(t, tc.app, variant, tc.input, true, 1, false)
				sameRun(t, "predecode", "raw", ref, nopd)
			})
		}
	}
}

// TestParallelEquivalence is the acceptance matrix for the parallel tick
// kernel (docs/PARALLEL.md): on the 4-core streaming variant of every app,
// a reference run (workers=1, fast-forward on) must be bit-identical —
// cycles, Result, StateHash, telemetry CSV bytes, traced event stream — to
// every other (workers, fast-forward) cell of the cross. The workers axis
// exercises the spin-barrier pool; crossing it with fast-forward pins the
// per-shard NextEvent min-reduce. Two single-core cells ride along to pin
// that a worker-pool request on a 1-core system stays on the exact serial
// seed path. CI runs this matrix under -race (the parallel-kernel job).
func TestParallelEquivalence(t *testing.T) {
	cases := []struct{ app, input string }{
		{"bfs", "Rd"},
		{"cc", "Co"},
		{"prd", "Rd"},
		{"radii", "Co"},
		{"spmm", "Am"},
		{"silo", "ycsbc"},
	}
	alts := []struct {
		name      string
		ff        bool
		workers   int
		predecode bool
	}{
		{"workers4-ff", true, 4, true},
		{"workers1-noff", false, 1, true},
		{"workers4-noff", false, 4, true},
		{"workers4-ff-nopd", true, 4, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/streaming", tc.app), func(t *testing.T) {
			t.Parallel()
			ref := runCell(t, tc.app, VStreaming, tc.input, true, 1, true)
			for _, alt := range alts {
				got := runCell(t, tc.app, VStreaming, tc.input, alt.ff, alt.workers, alt.predecode)
				sameRun(t, "workers1-ff", alt.name, ref, got)
			}
		})
	}
	for _, tc := range []struct{ app, input string }{{"bfs", "Co"}, {"spmm", "Am"}} {
		tc := tc
		t.Run(fmt.Sprintf("%s/pipette-1core", tc.app), func(t *testing.T) {
			t.Parallel()
			ref := runCell(t, tc.app, VPipette, tc.input, true, 1, true)
			got := runCell(t, tc.app, VPipette, tc.input, true, 4, true)
			sameRun(t, "workers1", "workers4", ref, got)
		})
	}
}

// TestParallelCheckpointEquivalence drives the segmented RunUntil loop (the
// -checkpoint-every pattern) with workers=1 and workers=4, comparing the
// canonical machine state hash at every segment boundary: the worker pool
// is torn down and rebuilt across segments, and a segment bound must land
// the parallel kernel on exactly the serial kernel's state.
func TestParallelCheckpointEquivalence(t *testing.T) {
	build := func(workers int) *sim.System {
		b, cores, err := Lookup("bfs", VStreaming, "Rd", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetWorkers(workers)
		b(s)
		return s
	}
	w1, w4 := build(1), build(4)
	const seg = 5000
	for i := 0; i < 200 && !(w1.Done() && w4.Done()); i++ {
		target := uint64((i + 1) * seg)
		if _, err := w1.RunUntil(target); err != nil {
			t.Fatalf("workers=1 segment %d: %v", i, err)
		}
		if _, err := w4.RunUntil(target); err != nil {
			t.Fatalf("workers=4 segment %d: %v", i, err)
		}
		if w1.Now() != w4.Now() {
			t.Fatalf("segment %d: cycle workers1=%d workers4=%d", i, w1.Now(), w4.Now())
		}
		h1, err := w1.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		h4, err := w4.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h4 {
			t.Fatalf("segment %d (cycle %d): state diverged", i, w1.Now())
		}
	}
	if !w1.Done() || !w4.Done() {
		t.Fatalf("workload did not finish within segments (w1=%v w4=%v)", w1.Done(), w4.Done())
	}
}

// TestFastForwardCheckpointEquivalence runs the same workload through a
// segmented RunUntil loop (the -checkpoint-every pattern) with both speed
// knobs on (fast-forward + predecode) versus both off, comparing the
// machine state hash at every segment boundary. This pins the jump-capping
// behaviour — a jump must land exactly on the segment bound, never beyond
// it — and that the decoded-frontend cache is pure derived state that never
// leaks into a checkpoint hash.
func TestFastForwardCheckpointEquivalence(t *testing.T) {
	build := func(fast bool) *sim.System {
		b, cores, err := Lookup("bfs", VPipette, "Co", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetFastForward(fast)
		s.SetPredecode(fast)
		b(s)
		return s
	}
	on, off := build(true), build(false)
	const seg = 5000
	for i := 0; i < 200 && !(on.Done() && off.Done()); i++ {
		target := uint64((i + 1) * seg)
		if _, err := on.RunUntil(target); err != nil {
			t.Fatalf("ff segment %d: %v", i, err)
		}
		if _, err := off.RunUntil(target); err != nil {
			t.Fatalf("noff segment %d: %v", i, err)
		}
		if on.Now() != off.Now() {
			t.Fatalf("segment %d: cycle ff=%d noff=%d", i, on.Now(), off.Now())
		}
		ho, err := on.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		hf, err := off.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if ho != hf {
			t.Fatalf("segment %d (cycle %d): state diverged", i, on.Now())
		}
	}
	if !on.Done() || !off.Done() {
		t.Fatalf("workload did not finish within segments (ff=%v noff=%v)", on.Done(), off.Done())
	}
}
