package bench

import (
	"fmt"

	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
)

// Connected components via repeated breadth-first searches (Sec. V-B: "CC
// uses multiple invocations of BFS to discover graph connectivity"): sweep
// vertices in order; every still-unlabeled vertex seeds a BFS that labels
// its whole component with the seed's id. The per-component searches reuse
// the BFS pipeline structure, including its end-of-level feedback.
//
// Converged labels equal the minimum vertex id of each component (seeds are
// visited in ascending order), which is what the reference graph.CC checks.

type ccLayout struct {
	g       graph.Layout
	labels  uint64 // component id per vertex; Unreached until labeled
	fringeA uint64
	fringeB uint64
	cells   uint64
	n       int
}

func layoutCC(m *mem.Memory, g *graph.Graph) ccLayout {
	l := ccLayout{
		g:       g.WriteTo(m),
		labels:  m.AllocWords(uint64(g.N)),
		fringeA: m.AllocWords(uint64(g.N)),
		fringeB: m.AllocWords(uint64(g.N)),
		cells:   m.AllocWords(cellsWords),
		n:       g.N,
	}
	for v := 0; v < g.N; v++ {
		m.Write64(l.labels+uint64(v)*8, graph.Unreached)
	}
	m.Write64(l.cells+cellCurPtr, l.fringeA)
	m.Write64(l.cells+cellNextPtr, l.fringeB)
	return l
}

func checkCC(s *sim.System, l ccLayout, g *graph.Graph) CheckFn {
	return func() error {
		want := graph.CC(g)
		for v := 0; v < g.N; v++ {
			if got := s.Mem.Read64(l.labels + uint64(v)*8); got != want[v] {
				return fmt.Errorf("cc: label[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
}

// CCSerial builds the serial BFS-sweep kernel.
func CCSerial(g *graph.Graph) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutCC(s.Mem, g)
		s.Cores[0].Load(0, ccSerialProg(l))
		return checkCC(s, l, g)
	}
}

func ccSerialProg(l ccLayout) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rLab   isa.Reg = 3
		rCur   isa.Reg = 4
		rNext  isa.Reg = 5
		rCnt   isa.Reg = 6
		rNCnt  isa.Reg = 7
		rComp  isa.Reg = 8 // current component id (the seed)
		rI     isa.Reg = 9
		rV     isa.Reg = 10
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rN     isa.Reg = 13
		rLu    isa.Reg = 14
		rT     isa.Reg = 15
		rInf   isa.Reg = 16
		rT2    isa.Reg = 17
		rSeed  isa.Reg = 18 // vertex sweep cursor
	)
	a := isa.NewAssembler("cc-serial")
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rLab, l.labels)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rInf, graph.Unreached)
	a.SetReg(rSeed, 0)

	// Seed sweep: find the next unlabeled vertex.
	a.Label("sweep")
	a.BeqI(rSeed, int64(l.n), "alldone")
	a.ShlI(rT, rSeed, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(rLu, rT, 0)
	a.Beq(rLu, rInf, "newcomp")
	a.AddI(rSeed, rSeed, 1)
	a.Jmp("sweep")
	a.Label("newcomp")
	a.Mov(rComp, rSeed)
	a.St8(rT, 0, rComp) // label[seed] = seed
	a.St8(rCur, 0, rSeed)
	a.MovI(rCnt, 1)
	a.MovI(rNCnt, 0)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(rV, rT, 0)
	a.ShlI(rT, rV, 3)
	a.Add(rT, rT, rOff)
	a.Ld8(rStart, rT, 0)
	a.Ld8(rEnd, rT, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(rN, rT, 0)
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(rLu, rT, 0)
	a.Bne(rLu, rInf, "skip")
	a.St8(rT, 0, rComp)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.BeqI(rNCnt, 0, "compdone")
	a.Xor(rCur, rCur, rNext)
	a.Xor(rNext, rCur, rNext)
	a.Xor(rCur, rCur, rNext)
	a.Mov(rCnt, rNCnt)
	a.MovI(rNCnt, 0)
	a.Jmp("level")
	a.Label("compdone")
	a.AddI(rSeed, rSeed, 1)
	a.Jmp("sweep")
	a.Label("alldone")
	a.Halt()
	return a.MustLink()
}

// CCDataParallel builds the data-parallel version: the vertex sweep is
// serialized (components must be seeded in ascending order for minimum
// labels), but each component's BFS runs level-parallel across threads with
// CAS-claimed labels and a shared barrier — the Ligra-style parallel
// pattern.
func CCDataParallel(g *graph.Graph, nThreads int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutCC(s.Mem, g)
		for t := 0; t < nThreads; t++ {
			s.Cores[t/4].Load(t%4, ccDPProg(l, t, nThreads))
		}
		return checkCC(s, l, g)
	}
}

func ccDPProg(l ccLayout, tid, nThreads int) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rLab   isa.Reg = 3
		rCells isa.Reg = 4
		rInf   isa.Reg = 5
		rTid   isa.Reg = 6
		rT     isa.Reg = 7
		rBar   isa.Reg = 8
		rCnt   isa.Reg = 9
		rCur   isa.Reg = 10
		rComp  isa.Reg = 11
		rLo    isa.Reg = 12
		rHi    isa.Reg = 13
		rI     isa.Reg = 14
		rV     isa.Reg = 15
		rStart isa.Reg = 16
		rEnd   isa.Reg = 17
		rN     isa.Reg = 18
		rAddr  isa.Reg = 19
		rOld   isa.Reg = 20
		rIdx   isa.Reg = 21
		rNext  isa.Reg = 22
		rTmp   isa.Reg = 23
		rOne   isa.Reg = 24
		rSeed  isa.Reg = 25
	)
	a := isa.NewAssembler(fmt.Sprintf("cc-dp-%d", tid))
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rLab, l.labels)
	a.SetReg(rCells, l.cells)
	a.SetReg(rInf, graph.Unreached)
	a.SetReg(rTid, uint64(tid))
	a.SetReg(rOne, 1)
	a.SetReg(rBar, 0)
	a.SetReg(rSeed, 0)

	barrier := func(tag string, lastWork func()) {
		a.AddI(rTmp, rCells, cellArrive)
		a.FetchAdd(rOld, rTmp, rOne)
		a.AddI(rBar, rBar, 1)
		a.MovI(rTmp, int64(nThreads))
		a.Mul(rTmp, rTmp, rBar)
		a.AddI(rOld, rOld, 1)
		a.Bne(rOld, rTmp, tag+"wait")
		if lastWork != nil {
			lastWork()
		}
		a.AddI(rTmp, rCells, cellRelease)
		a.FetchAdd(rOld, rTmp, rOne)
		a.Label(tag + "wait")
		a.Ld8(rTmp, rCells, cellRelease)
		a.Bltu(rTmp, rBar, tag+"wait")
	}

	// Thread 0 owns the seed sweep; all threads join each component's BFS.
	a.Label("sweep")
	if tid == 0 {
		a.Label("scan")
		a.BeqI(rSeed, int64(l.n), "announce")
		a.ShlI(rT, rSeed, 3)
		a.Add(rT, rT, rLab)
		a.Ld8(rOld, rT, 0)
		a.Beq(rOld, rInf, "announce")
		a.AddI(rSeed, rSeed, 1)
		a.Jmp("scan")
		a.Label("announce")
		// Publish the next seed (or n to terminate), set up the fringe.
		a.St8(rCells, cellCurDist, rSeed)
		a.BeqI(rSeed, int64(l.n), "announced")
		a.ShlI(rT, rSeed, 3)
		a.Add(rT, rT, rLab)
		a.St8(rT, 0, rSeed) // label[seed] = seed
		a.Ld8(rT, rCells, cellCurPtr)
		a.St8(rT, 0, rSeed)
		a.MovI(rTmp, 1)
		a.St8(rCells, cellCurCnt, rTmp)
		a.St8(rCells, cellNextCnt, isa.R0)
		a.Label("announced")
	}
	barrier("b0", nil)
	a.Ld8(rComp, rCells, cellCurDist) // the seed id doubles as component id
	a.BeqI(rComp, int64(l.n), "alldone")

	a.Label("level")
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.Ld8(rCur, rCells, cellCurPtr)
	a.Mul(rLo, rTid, rCnt)
	a.MovI(rT, int64(nThreads))
	a.Div(rLo, rLo, rT)
	a.AddI(rHi, rTid, 1)
	a.Mul(rHi, rHi, rCnt)
	a.Div(rHi, rHi, rT)
	a.Mov(rI, rLo)
	a.Label("vloop")
	a.Bgeu(rI, rHi, "arrive")
	a.ShlI(rAddr, rI, 3)
	a.Add(rAddr, rAddr, rCur)
	a.Ld8(rV, rAddr, 0)
	a.ShlI(rAddr, rV, 3)
	a.Add(rAddr, rAddr, rOff)
	a.Ld8(rStart, rAddr, 0)
	a.Ld8(rEnd, rAddr, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rAddr, rStart, 3)
	a.Add(rAddr, rAddr, rNgh)
	a.Ld8(rN, rAddr, 0)
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rLab)
	a.Ld8(rOld, rAddr, 0)
	a.Bne(rOld, rInf, "skip")
	a.Cas(rOld, rAddr, rInf, rComp)
	a.Bne(rOld, rInf, "skip")
	a.AddI(rTmp, rCells, cellNextCnt)
	a.FetchAdd(rIdx, rTmp, rOne)
	a.Ld8(rNext, rCells, cellNextPtr)
	a.ShlI(rTmp, rIdx, 3)
	a.Add(rTmp, rTmp, rNext)
	a.St8(rTmp, 0, rN)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")

	a.Label("arrive")
	barrier("b1", func() {
		a.Ld8(rTmp, rCells, cellCurPtr)
		a.Ld8(rOld, rCells, cellNextPtr)
		a.St8(rCells, cellCurPtr, rOld)
		a.St8(rCells, cellNextPtr, rTmp)
		a.Ld8(rTmp, rCells, cellNextCnt)
		a.St8(rCells, cellCurCnt, rTmp)
		a.St8(rCells, cellNextCnt, isa.R0)
	})
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.BneI(rCnt, 0, "level")
	if tid == 0 {
		a.AddI(rSeed, rSeed, 1)
	}
	a.Jmp("sweep")
	a.Label("alldone")
	a.Halt()
	return a.MustLink()
}

// The CC Pipette pipeline is the BFS pipeline with a component id instead
// of a distance: head (seed sweep + fringe walk) -> offsets RA -> neighbors
// RA -> dup -> {labels RA, update}. The stages below adapt the BFS programs
// to the sweep-and-label structure.

// ccHeadProg walks the current fringe like the BFS head, and additionally
// owns the seed sweep: when a component finishes (feedback count 0), it
// scans for the next unlabeled vertex and starts a new search there.
func ccHeadProg(l ccLayout, useRA bool) *isa.Program {
	const (
		rOff  isa.Reg = 1
		rLab  isa.Reg = 3
		rCur  isa.Reg = 4
		rCnt  isa.Reg = 6
		rI    isa.Reg = 9
		rT    isa.Reg = 15
		rInf  isa.Reg = 16
		rSeed isa.Reg = 17
		rLu   isa.Reg = 18
		rFlip isa.Reg = 19
	)
	outQ := qVtx
	if !useRA {
		outQ = qRange
	}
	a := isa.NewAssembler("cc-head")
	a.MapQ(mq0, outQ, isa.QueueIn)
	a.MapQ(mq3, qFeed, isa.QueueOut)
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rLab, l.labels)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rInf, graph.Unreached)
	a.SetReg(rSeed, 0)
	a.SetReg(rFlip, l.fringeA^l.fringeB)

	a.Label("sweep")
	a.BeqI(rSeed, int64(l.n), "alldone")
	a.ShlI(rT, rSeed, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(rLu, rT, 0)
	a.Beq(rLu, rInf, "newcomp")
	a.AddI(rSeed, rSeed, 1)
	a.Jmp("sweep")
	a.Label("newcomp")
	// Announce the new component to the update stage with a control value
	// carrying the seed, then walk its one-vertex fringe. The update stage
	// labels the seed itself (single-writer discipline on labels).
	a.EnqCI(outQ, cvEOL) // value 1 = new-component delimiter follows protocol below
	a.St8(rCur, 0, rSeed)
	a.MovI(rCnt, 1)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	if useRA {
		a.Ld8(mq0, rT, 0)
	} else {
		a.Ld8(rT, rT, 0)
		a.ShlI(rT, rT, 3)
		a.Add(rT, rT, rOff)
		a.Ld8(mq0, rT, 0)
		a.Ld8(mq0, rT, 8)
	}
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.EnqCI(outQ, cvEOL)
	a.Mov(rCnt, mq3) // next-level size from the update stage
	a.BeqI(rCnt, 0, "compdone")
	a.Xor(rCur, rCur, rFlip)
	a.Jmp("level")
	a.Label("compdone")
	a.AddI(rSeed, rSeed, 1)
	a.Jmp("sweep")
	a.Label("alldone")
	a.EnqCI(outQ, cvDone)
	a.Halt()
	return a.MustLink()
}

// ccUpdateProg is the BFS update stage writing component ids: unlabeled
// neighbors get the current component and join the next fringe. The head
// announces each new component with an extra delimiter before the seed's
// fringe; the handler tracks the seed sweep in lockstep (rSeed advances on
// every component-done just as in the head).
func ccUpdateProg(l ccLayout) *isa.Program {
	const (
		rLab  isa.Reg = 3
		rNext isa.Reg = 5
		rNCnt isa.Reg = 7
		rComp isa.Reg = 8
		rN    isa.Reg = 13
		rD    isa.Reg = 14
		rT    isa.Reg = 15
		rInf  isa.Reg = 16
		rT2   isa.Reg = 17
		rSeed isa.Reg = 18
		rLvl0 isa.Reg = 19 // 1 while expecting the new-component delimiter
		rFlip isa.Reg = 20
	)
	a := isa.NewAssembler("cc-update")
	a.MapQ(mq0, qDupB, isa.QueueOut)
	a.MapQ(mq1, qData, isa.QueueOut)
	a.MapQ(mq3, qFeed, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rLab, l.labels)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rNCnt, 0)
	a.SetReg(rInf, graph.Unreached)
	a.SetReg(rSeed, 0)
	a.SetReg(rLvl0, 1) // the first CV announces component 0's seed
	a.SetReg(rFlip, l.fringeA^l.fringeB)

	a.Label("loop")
	a.Mov(rN, mq0) // neighbor (CV traps here)
	a.Mov(rD, mq1) // fetched label[ngh] (possibly stale)
	a.Bne(rD, rInf, "loop")
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(rD, rT, 0) // fresh re-check
	a.Bne(rD, rInf, "loop")
	a.St8(rT, 0, rComp)
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN)
	a.AddI(rNCnt, rNCnt, 1)
	a.Jmp("loop")

	a.Label("cv")
	a.SkipC(rT, qData)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.BeqI(rLvl0, 1, "newcomp")
	// End of a level: report the next-level size. Flip the fringe buffer
	// only when the search continues (the head flips under the same
	// condition, keeping the two threads on opposite buffers).
	a.Mov(mq3, rNCnt)
	a.BeqI(rNCnt, 0, "complast")
	a.MovI(rNCnt, 0)
	a.Xor(rNext, rNext, rFlip)
	a.Jmp("loop")
	a.Label("complast")
	a.MovI(rLvl0, 1) // the next delimiter announces a new component
	a.Jmp("loop")
	a.Label("newcomp")
	// Advance the seed cursor exactly like the head: find the next
	// unlabeled vertex and label it as its own component.
	a.Label("scan")
	a.ShlI(rT, rSeed, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(rD, rT, 0)
	a.Beq(rD, rInf, "claim")
	a.AddI(rSeed, rSeed, 1)
	a.Jmp("scan")
	a.Label("claim")
	a.Mov(rComp, rSeed)
	a.St8(rT, 0, rComp)
	a.MovI(rLvl0, 0)
	a.MovI(rNCnt, 0)
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

func ccPipeline(s *sim.System, g *graph.Graph, useRA bool) (pipeSpec, ccLayout) {
	l := layoutCC(s.Mem, g)
	p := pipeSpec{queues: map[uint8]int{
		qVtx: 16, qRange: 16, qNgh: 28, qDupA: 28, qDupB: 20, qData: 28, qFeed: 4,
	}}
	head := ccHeadProg(l, useRA)
	update := ccUpdateProg(l)
	if useRA {
		p.stages = []*isa.Program{head, bfsDupProgQ(), update}
		p.ras = raList(
			raPair(qVtx, qRange, l.g.OffsetsAddr),
			raScan(qRange, qNgh, l.g.NeighborsAddr),
			raInd(qDupA, qData, l.labels),
		)
	} else {
		p.stages = []*isa.Program{head, ccEnumProg(l), ccFetchProg(l), update}
	}
	return p, l
}

// bfsDupProgQ is the BFS duplication stage on the bfs queue ids (shared by
// the CC pipeline, which uses the same topology).
func bfsDupProgQ() *isa.Program {
	const rV isa.Reg = 16
	a := isa.NewAssembler("cc-dup")
	a.MapQ(mq0, qNgh, isa.QueueOut)
	a.MapQ(mq1, qDupA, isa.QueueIn)
	a.MapQ(mq2, qDupB, isa.QueueIn)
	a.OnDeqCV("cv")
	a.Label("loop")
	a.Mov(rV, mq0)
	a.Mov(mq1, rV)
	a.Mov(mq2, rV)
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(qDupA, isa.RHCV)
	a.EnqC(qDupB, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// ccEnumProg is the thread version of the enumerate stage for the no-RA CC
// pipeline: (start,end) in, neighbors fanned out to fetch and update.
func ccEnumProg(l ccLayout) *isa.Program {
	const (
		rNgh   isa.Reg = 2
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rT     isa.Reg = 15
		rV     isa.Reg = 16
	)
	a := isa.NewAssembler("cc-enum")
	a.MapQ(mq0, qRange, isa.QueueOut)
	a.MapQ(mq1, qDupA, isa.QueueIn)
	a.MapQ(mq2, qDupB, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.Label("loop")
	a.Mov(rStart, mq0)
	a.Mov(rEnd, mq0)
	a.Label("escan")
	a.Bgeu(rStart, rEnd, "loop")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(rV, rT, 0)
	a.Mov(mq1, rV)
	a.Mov(mq2, rV)
	a.AddI(rStart, rStart, 1)
	a.Jmp("escan")
	a.Label("cv")
	a.EnqC(qDupA, isa.RHCV)
	a.EnqC(qDupB, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// ccFetchProg fetches label[ngh] for the no-RA pipeline.
func ccFetchProg(l ccLayout) *isa.Program {
	const (
		rLab isa.Reg = 3
		rT   isa.Reg = 15
	)
	a := isa.NewAssembler("cc-fetch")
	a.MapQ(mq0, qDupA, isa.QueueOut)
	a.MapQ(mq1, qData, isa.QueueIn)
	a.OnDeqCV("cv")
	a.SetReg(rLab, l.labels)
	a.Label("loop")
	a.ShlI(rT, mq0, 3)
	a.Add(rT, rT, rLab)
	a.Ld8(mq1, rT, 0)
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(qData, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// CCPipette builds Pipette CC on a single core.
func CCPipette(g *graph.Graph, useRA bool) Builder {
	return func(s *sim.System) CheckFn {
		p, l := ccPipeline(s, g, useRA)
		p.placeSingleCore(s, 0)
		return checkCC(s, l, g)
	}
}

// CCStreaming places each CC stage on its own core.
func CCStreaming(g *graph.Graph) Builder {
	return func(s *sim.System) CheckFn {
		p, l := ccPipeline(s, g, true)
		p.placeStreaming(s)
		return checkCC(s, l, g)
	}
}
