package bench

import (
	"fmt"

	"pipette/internal/btree"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
	"pipette/internal/ycsb"
)

// Silo (Sec. V-B, Fig. 8): YCSB-C read-only lookups against a B+tree index.
// The Pipette version pipelines multiple tree traversals: a generator thread
// streams queries to lookup threads; each lookup thread keeps several
// traversals in flight by splitting each tree level into a request phase
// (ask the node-scan RA for the node's words, recycle the query into its own
// bounded queue) and a consume phase (dequeue the node words, pick the
// child or finish). The recycle queue is the bounded feedback cycle of
// Fig. 8 — at most one re-enqueue per dequeued element.
//
// Queries are packed as (qid << 32 | key); results land in results[qid].

// Queue id layout: lookup thread t owns a block of 4 queues.
func slQNew(t int) uint8  { return uint8(4 * t) }
func slQRec(t int) uint8  { return uint8(4*t + 1) }
func slQRng(t int) uint8  { return uint8(4*t + 2) } // word ranges into the scan RA
func slQNode(t int) uint8 { return uint8(4*t + 3) } // node words from the scan RA

const (
	siloLookups   = 3
	siloMaxPend   = 6
	siloNodeWords = 1 + 2*btree.Fanout // header + keys + children
)

type siloLayout struct {
	tree    *btree.Tree
	queries uint64 // packed qid<<32|key
	results uint64
	nq      int
	keys    []uint64
	vals    map[uint64]uint64
}

func layoutSilo(m *mem.Memory, nKeys, nQueries int, seed int64) siloLayout {
	keys := make([]uint64, nKeys)
	vals := make([]uint64, nKeys)
	for i := range keys {
		keys[i] = uint64(i)*7 + 3 // sparse keyspace so misses are possible
		vals[i] = uint64(i)*13 + 1
	}
	tree := btree.Build(m, keys, vals)
	gen := ycsb.NewGenerator(uint64(nKeys), seed)
	l := siloLayout{
		tree:    tree,
		queries: m.AllocWords(uint64(nQueries)),
		results: m.AllocWords(uint64(nQueries)),
		nq:      nQueries,
		vals:    map[uint64]uint64{},
	}
	for i := range keys {
		l.vals[keys[i]] = vals[i]
	}
	for q := 0; q < nQueries; q++ {
		key := keys[gen.Next()]
		if q%5 == 4 {
			key++ // an absent key (keyspace is 7i+3): exercises the miss path
		}
		l.keys = append(l.keys, key)
		m.Write64(l.queries+uint64(q)*8, uint64(q)<<32|key)
	}
	return l
}

func checkSilo(s *sim.System, l siloLayout) CheckFn {
	return func() error {
		for q := 0; q < l.nq; q++ {
			want := l.vals[l.keys[q]]
			if got := s.Mem.Read64(l.results + uint64(q)*8); got != want {
				return fmt.Errorf("silo: result[%d] = %d, want %d (key %d)", q, got, want, l.keys[q])
			}
		}
		return nil
	}
}

// SiloSerial runs all queries on one thread. seed drives the YCSB query
// generator (99 is the historical default; the harness derives it from the
// run's base seed).
func SiloSerial(nKeys, nQueries int, seed int64) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutSilo(s.Mem, nKeys, nQueries, seed)
		s.Cores[0].Load(0, siloWalkProg(l, 0, 1, nil))
		return checkSilo(s, l)
	}
}

// SiloDataParallel partitions queries statically across nThreads threads.
func SiloDataParallel(nKeys, nQueries, nThreads int, seed int64) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutSilo(s.Mem, nKeys, nQueries, seed)
		for t := 0; t < nThreads; t++ {
			s.Cores[t/4].Load(t%4, siloWalkProg(l, t, nThreads, nil))
		}
		return checkSilo(s, l)
	}
}

// emitWalk writes the synchronous traversal for the query in rPk, storing
// the result. Labels are prefixed so the body can be emitted per call site.
func emitWalk(a *isa.Assembler, l siloLayout, pfx string, next string) {
	const (
		rKey  isa.Reg = 5
		rQid  isa.Reg = 6
		rNode isa.Reg = 7
		rHdr  isa.Reg = 8
		rNK   isa.Reg = 9
		rLeaf isa.Reg = 10
		rI    isa.Reg = 11
		rKi   isa.Reg = 12
		rRB   isa.Reg = 4
		rT    isa.Reg = 15
		rSlot isa.Reg = 16
		rPk   isa.Reg = 17
	)
	lbl := func(s string) string { return pfx + s }
	a.AndI(rKey, rPk, 0xFFFFFFFF)
	a.ShrI(rQid, rPk, 32)
	a.MovU(rNode, l.tree.Root)
	a.Label(lbl("walk"))
	a.Ld8(rHdr, rNode, 0)
	a.AndI(rNK, rHdr, 0xFFFFFFFF)
	a.ShrI(rLeaf, rHdr, 32)
	a.MovI(rSlot, 0)
	a.MovI(rI, 0)
	a.Label(lbl("scan"))
	a.Bgeu(rI, rNK, lbl("scandone"))
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rNode)
	a.Ld8(rKi, rT, 8) // keys start at word 1
	a.Bltu(rKey, rKi, lbl("scandone"))
	a.AddI(rSlot, rSlot, 1)
	a.AddI(rI, rI, 1)
	a.Jmp(lbl("scan"))
	a.Label(lbl("scandone"))
	a.BneI(rLeaf, 0, lbl("leaf"))
	a.BneI(rSlot, 0, lbl("haveslot"))
	a.MovI(rSlot, 1)
	a.Label(lbl("haveslot"))
	a.AddI(rT, rSlot, btree.Fanout) // children start at word 1+Fanout
	a.ShlI(rT, rT, 3)
	a.Add(rT, rT, rNode)
	a.Ld8(rNode, rT, 0)
	a.Jmp(lbl("walk"))
	a.Label(lbl("leaf"))
	a.BeqI(rSlot, 0, lbl("miss"))
	a.ShlI(rT, rSlot, 3)
	a.Add(rT, rT, rNode)
	a.Ld8(rKi, rT, 0) // keys[slot-1] is word slot
	a.Bne(rKi, rKey, lbl("miss"))
	a.AddI(rT, rSlot, btree.Fanout)
	a.ShlI(rT, rT, 3)
	a.Add(rT, rT, rNode)
	a.Ld8(rT, rT, 0) // value
	a.Jmp(lbl("store"))
	a.Label(lbl("miss"))
	a.MovI(rT, 0)
	a.Label(lbl("store"))
	a.ShlI(rKi, rQid, 3)
	a.Add(rKi, rKi, rRB)
	a.St8(rKi, 0, rT)
	a.Jmp(next)
}

// rWalkPk is the register emitWalk expects the packed query in.
const rWalkPk isa.Reg = 17

// rWalkRB is the register emitWalk expects the results base in.
const rWalkRB isa.Reg = 4

// siloWalkProg walks queries [tid*nq/T, (tid+1)*nq/T) synchronously. If
// newQ is non-nil the queries come from a queue instead (Pipette no-RA
// lookup stage): it dequeues packed queries until the Done CV.
func siloWalkProg(l siloLayout, tid, nThreads int, newQ *uint8) *isa.Program {
	const (
		rQ  isa.Reg = 1
		rHi isa.Reg = 2
		rQB isa.Reg = 3
		rT  isa.Reg = 15
	)
	name := fmt.Sprintf("silo-walk-%d", tid)
	a := isa.NewAssembler(name)
	a.SetReg(rWalkRB, l.results)
	if newQ != nil {
		a.MapQ(mq0, *newQ, isa.QueueOut)
		a.OnDeqCV("fin")
		a.Label("qloop")
		a.Mov(rWalkPk, mq0) // traps on Done
		emitWalk(a, l, "w", "qloop")
		a.Label("fin")
		a.Halt()
		return a.MustLink()
	}
	a.SetReg(rQB, l.queries)
	lo := uint64(tid) * uint64(l.nq) / uint64(nThreads)
	hi := uint64(tid+1) * uint64(l.nq) / uint64(nThreads)
	a.SetReg(rQ, lo)
	a.SetReg(rHi, hi)
	a.Label("qloop")
	a.Bgeu(rQ, rHi, "fin")
	a.ShlI(rT, rQ, 3)
	a.Add(rT, rT, rQB)
	a.Ld8(rWalkPk, rT, 0)
	a.AddI(rQ, rQ, 1)
	emitWalk(a, l, "w", "qloop")
	a.Label("fin")
	a.Halt()
	return a.MustLink()
}

// siloGenProg streams queries round-robin to the lookup threads and
// terminates each with a Done CV.
func siloGenProg(l siloLayout, nLookups int) *isa.Program {
	const (
		rQ  isa.Reg = 1
		rN  isa.Reg = 2
		rQB isa.Reg = 3
		rT  isa.Reg = 15
	)
	a := isa.NewAssembler("silo-gen")
	for t := 0; t < nLookups; t++ {
		a.MapQ(isa.Reg(20+t), slQNew(t), isa.QueueIn)
	}
	a.SetReg(rQB, l.queries)
	a.SetReg(rQ, 0)
	a.SetReg(rN, uint64(l.nq))
	a.Label("loop")
	a.Bgeu(rQ, rN, "done")
	for t := 0; t < nLookups; t++ {
		skip := fmt.Sprintf("s%d", t)
		a.Bgeu(rQ, rN, skip)
		a.ShlI(rT, rQ, 3)
		a.Add(rT, rT, rQB)
		a.Ld8(isa.Reg(20+t), rT, 0)
		a.AddI(rQ, rQ, 1)
		a.Label(skip)
	}
	a.Jmp("loop")
	a.Label("done")
	for t := 0; t < nLookups; t++ {
		a.EnqCI(slQNew(t), cvDone)
	}
	a.Halt()
	return a.MustLink()
}

// siloLookupRAProg is the pipelined lookup stage with a node-scan RA: each
// tree level is a request phase (ask the RA for the node's header and keys,
// recycle the query and node address through the thread's own bounded
// queue) and a consume phase (dequeue the node words, FIFO-aligned with the
// recycle queue, and pick the child or finish). The child pointer itself is
// loaded by the thread — the RA's fetch has just warmed the line — so up to
// siloMaxPend traversals overlap their node fetches.
func siloLookupRAProg(l siloLayout, t int) *isa.Program {
	const (
		rRB   isa.Reg = 4
		rKey  isa.Reg = 5
		rQid  isa.Reg = 6
		rNode isa.Reg = 7
		rHdr  isa.Reg = 8
		rLeaf isa.Reg = 10
		rKi   isa.Reg = 12
		rT    isa.Reg = 15
		rSlot isa.Reg = 16
		rPk   isa.Reg = 17
		rPend isa.Reg = 18
		rDone isa.Reg = 19
		rKL   isa.Reg = 21 // last key <= key (leaf hit test)
	)
	const (
		mNode isa.Reg = 23 // node words in
		mRng  isa.Reg = 24 // ranges out
		mRecI isa.Reg = 25 // recycle enqueue
		mNew  isa.Reg = 26 // new queries in
		mRecO isa.Reg = 27 // recycle dequeue
	)
	a := isa.NewAssembler(fmt.Sprintf("silo-lookup-ra-%d", t))
	a.MapQ(mNew, slQNew(t), isa.QueueOut)
	a.MapQ(mRecO, slQRec(t), isa.QueueOut)
	a.MapQ(mRecI, slQRec(t), isa.QueueIn)
	a.MapQ(mRng, slQRng(t), isa.QueueIn)
	a.MapQ(mNode, slQNode(t), isa.QueueOut)
	a.OnDeqCV("gendone")
	a.SetReg(rRB, l.results)
	a.SetReg(rPend, 0)
	a.SetReg(rDone, 0)

	a.Label("sched")
	a.BneI(rDone, 0, "drain")
	a.BltuI(rPend, siloMaxPend, "take")
	a.Jmp("consume")
	a.Label("drain")
	a.BneI(rPend, 0, "consume")
	a.Halt()

	a.Label("take")
	a.Mov(rPk, mNew) // traps to "gendone" on the generator's Done CV
	a.MovU(rNode, l.tree.Root)
	a.AddI(rPend, rPend, 1)
	a.Jmp("request")

	// Request phase: ask the RA for the node's header+keys words and park
	// (query, node) in the recycle queue.
	a.Label("request")
	a.ShrI(rT, rNode, 3)
	a.Mov(mRng, rT)
	a.AddI(rT, rT, 1+btree.Fanout)
	a.Mov(mRng, rT)
	a.Mov(mRecI, rPk)
	a.Mov(mRecI, rNode)
	a.Jmp("sched")

	// Consume phase: the oldest pending traversal's node words are next in
	// the node queue (same FIFO order as the recycle queue).
	a.Label("consume")
	a.Mov(rPk, mRecO)
	a.Mov(rNode, mRecO)
	a.AndI(rKey, rPk, 0xFFFFFFFF)
	a.Mov(rHdr, mNode)
	a.ShrI(rLeaf, rHdr, 32)
	a.MovI(rSlot, 0)
	a.MovI(rKL, 0)
	// Unused key slots are padded with +inf, so no nkeys check is needed.
	for i := 0; i < btree.Fanout; i++ {
		ski := fmt.Sprintf("k%d", i)
		a.Mov(rKi, mNode)
		a.Bltu(rKey, rKi, ski)
		a.AddI(rSlot, rSlot, 1)
		a.Mov(rKL, rKi)
		a.Label(ski)
	}
	// Child/value word: children[max(slot-1,0)] at word 1+Fanout+slot-1 ==
	// word Fanout+slot (or children[0] when slot==0). The RA just pulled
	// the node's first lines into L1, so this load is cheap.
	a.BneI(rSlot, 0, "haveslot")
	a.MovI(rSlot, 1)
	a.MovU(rKL, ^uint64(0)) // slot was 0: no key (including 0) can match below
	a.Label("haveslot")
	a.AddI(rT, rSlot, btree.Fanout)
	a.ShlI(rT, rT, 3)
	a.Add(rT, rT, rNode)
	a.Ld8(rT, rT, 0)
	a.BneI(rLeaf, 0, "leaf")
	a.Mov(rNode, rT)
	a.Jmp("request")

	a.Label("leaf")
	a.Beq(rKL, rKey, "store")
	a.MovI(rT, 0) // miss
	a.Label("store")
	a.ShrI(rQid, rPk, 32)
	a.ShlI(rKi, rQid, 3)
	a.Add(rKi, rKi, rRB)
	a.St8(rKi, 0, rT)
	a.SubI(rPend, rPend, 1)
	a.Jmp("sched")

	a.Label("gendone")
	a.MovI(rDone, 1)
	a.Jmp("sched")
	return a.MustLink()
}

// siloPipeline assembles the generator plus siloLookups lookup stages.
func siloPipeline(s *sim.System, nKeys, nQueries int, useRA bool, seed int64) (pipeSpec, siloLayout) {
	l := layoutSilo(s.Mem, nKeys, nQueries, seed)
	p := pipeSpec{queues: map[uint8]int{}}
	p.stages = append(p.stages, siloGenProg(l, siloLookups))
	for t := 0; t < siloLookups; t++ {
		p.queues[slQNew(t)] = 6
		if useRA {
			p.queues[slQRec(t)] = 2 * siloMaxPend
			p.queues[slQRng(t)] = 2 * siloMaxPend
			p.queues[slQNode(t)] = 2 * (1 + btree.Fanout)
			p.stages = append(p.stages, siloLookupRAProg(l, t))
			p.ras = append(p.ras, raScan(slQRng(t), slQNode(t), 0))
		} else {
			q := slQNew(t)
			p.stages = append(p.stages, siloWalkProg(l, 100+t, 1, &q))
		}
	}
	return p, l
}

// SiloPipette builds the Fig. 8 pipeline on one core (generator + 3 lookup
// threads).
func SiloPipette(nKeys, nQueries int, useRA bool, seed int64) Builder {
	return func(s *sim.System) CheckFn {
		p, l := siloPipeline(s, nKeys, nQueries, useRA, seed)
		p.placeSingleCore(s, 0)
		return checkSilo(s, l)
	}
}

// SiloStreaming places the generator and each lookup stage on its own core.
func SiloStreaming(nKeys, nQueries int, seed int64) Builder {
	return func(s *sim.System) CheckFn {
		p, l := siloPipeline(s, nKeys, nQueries, true, seed)
		p.placeStreaming(s)
		return checkSilo(s, l)
	}
}
