package bench

import (
	"testing"

	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

// BFS on a graph with unreachable vertices: they must stay Unreached in
// every variant.
func TestBFSDisconnected(t *testing.T) {
	// Component {0,1,2} plus isolated island {3,4}.
	g := graph.FromEdges("disc", 5, [][2]int{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {3, 4}, {4, 3},
	})
	for name, b := range map[string]Builder{
		"serial":  BFSSerial(g, 0),
		"dp":      BFSDataParallel(g, 0, 4),
		"pipette": BFSPipette(g, 0, 4, true),
	} {
		t.Run(name, func(t *testing.T) { runBench(t, 1, b) })
	}
}

// BFS from a vertex with no outgoing edges: a single-level search.
func TestBFSDeadEndSource(t *testing.T) {
	g := graph.FromEdges("deadend", 3, [][2]int{{1, 2}, {2, 1}})
	runBench(t, 1, BFSPipette(g, 0, 4, true)) // vertex 0 has no edges
}

// Data-parallel variants across two cores exercise cross-core coherence on
// the shared barrier and fringe cells.
func TestCrossCoreDataParallel(t *testing.T) {
	g := graph.Collaboration(300, 8)
	t.Run("cc", func(t *testing.T) { runBench(t, 2, CCDataParallel(g, 8)) })
	t.Run("radii", func(t *testing.T) { runBench(t, 2, RadiiDataParallel(g, 8)) })
	t.Run("prd", func(t *testing.T) { runBench(t, 2, PRDDataParallel(g, 3, 8)) })
}

// SpMM with rows/columns that are entirely empty.
func TestSpMMEmptyRows(t *testing.T) {
	// A diagonal-ish matrix with several all-zero rows.
	a := sparse.Random("gappy", 40, 1, 9)
	runBench(t, 1, SpMMPipette(a, a, true))
	runBench(t, 1, SpMMPipette(a, a, false))
}

// PRD with isolated (zero-degree) vertices must not divide by zero or
// corrupt ranks.
func TestPRDIsolatedVertices(t *testing.T) {
	g := graph.FromEdges("iso", 6, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}})
	runBench(t, 1, PRDSerial(g, 3))
	runBench(t, 1, PRDPipette(g, 3, true))
}

// Fig. 10's lower-instruction claim: Pipette CC commits far fewer
// instructions than the data-parallel version on low-diameter graphs (no
// barrier spinning, no atomics). On high-diameter graphs decoupled label
// fetches are staler than serial in-round reads, costing extra convergence
// rounds — a scheduling artifact recorded in EXPERIMENTS.md — so the
// invariant is asserted where the algorithmic schedules match.
func TestPipetteInstructionEconomy(t *testing.T) {
	g := graph.PowerLaw(1500, 5, 3)
	dp := runBench(t, 1, CCDataParallel(g, 4))
	pip := runBench(t, 1, CCPipette(g, true))
	if pip.Committed >= dp.Committed {
		t.Errorf("Pipette CC executed more instructions than data-parallel: %d vs %d",
			pip.Committed, dp.Committed)
	}
}

// Determinism: the same workload on the same config gives bit-identical
// cycle counts (the simulator is single-threaded and seed-free).
func TestSimulationDeterminism(t *testing.T) {
	g := graph.PowerLaw(400, 4, 5)
	r1 := runBench(t, 1, BFSPipette(g, 0, 4, true))
	r2 := runBench(t, 1, BFSPipette(g, 0, 4, true))
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.Committed, r2.Cycles, r2.Committed)
	}
}

// Queue-capacity floor: scaled-down queues still complete correctly.
func TestBFSPipetteScaledTiny(t *testing.T) {
	g := graph.Road(20, 20, 2)
	runBench(t, 1, BFSPipetteScaled(g, 0, 0.2))
}

// The multicore routing layout must work when the source vertex is owned by
// a non-zero core.
func TestBFSMulticoreNonZeroOwner(t *testing.T) {
	g := graph.Road(24, 24, 42)
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.WatchdogCycles = 1_000_000
	s := sim.New(cfg)
	if _, err := Run(s, BFSMulticore(g, 3, 4)); err != nil { // owner = core 3
		t.Fatal(err)
	}
}
