package bench

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/sim"
)

// TestSpecConvergenceUnderAborts pins the abort/rerun path at fine grain:
// bfs/streaming's frontier handoffs produce real cross-shard conflicts
// (the run must record aborts, or this test is vacuous), and the
// speculative run must re-converge to the barrier kernel's exact state at
// every 250-cycle segment boundary — each boundary lands inside a
// different commit/abort/rerun interleaving, so a rollback that leaked
// even one scratch field would surface as a hash divergence within a few
// segments of the first abort.
func TestSpecConvergenceUnderAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("fine-grained segment sweep")
	}
	build := func(spec bool) *sim.System {
		b, cores, err := Lookup("bfs", VStreaming, "Rd", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		cfg.Cache = cache.DefaultConfig().Scale(8)
		s := sim.New(cfg)
		s.SetSpeculate(spec)
		b(s)
		return s
	}
	off, on := build(false), build(true)
	const seg = 250
	for i := 0; i < 4000 && !(off.Done() && on.Done()); i++ {
		target := uint64((i + 1) * seg)
		if _, err := off.RunUntil(target); err != nil {
			t.Fatalf("barrier segment %d: %v", i, err)
		}
		if _, err := on.RunUntil(target); err != nil {
			t.Fatalf("spec segment %d: %v (stats %+v)", i, err, on.SpecStats())
		}
		if off.Now() != on.Now() {
			t.Fatalf("segment %d: cycle barrier=%d spec=%d (stats %+v)", i, off.Now(), on.Now(), on.SpecStats())
		}
		ho, err := off.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		hs, err := on.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if ho != hs {
			diff, derr := sim.DiffStates(off, on)
			if derr == nil {
				if len(diff) > 4000 {
					diff = diff[:4000]
				}
				t.Logf("diff:\n%s", diff)
			}
			t.Fatalf("segment %d (cycle %d): state diverged (stats %+v)", i, off.Now(), on.SpecStats())
		}
	}
	if !off.Done() || !on.Done() {
		t.Fatalf("workload did not finish (barrier=%v spec=%v)", off.Done(), on.Done())
	}
	st := on.SpecStats()
	if err := st.Conserved(); err != nil {
		t.Fatal(err)
	}
	if st.Aborts == 0 {
		t.Fatalf("run recorded no aborts — the convergence test exercised nothing (stats %+v)", st)
	}
	if st.Commits == 0 {
		t.Fatalf("run recorded no commits (stats %+v)", st)
	}
}
