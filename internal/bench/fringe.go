package bench

import (
	"pipette/internal/isa"
)

// Shared stage builders for the fringe-structured graph kernels (CC, PRD,
// Radii). Their pipelines all look like BFS's (Sec. V-B: "the pipelines for
// these algorithms resemble the pipeline for BFS"), but carry a per-vertex
// value (source label / share / visit mask) alongside the neighbor stream:
//
//	head: v -> {offsets RA, value RA}        (qFA, qFB)
//	expand: (start,end)+value -> scan RA input (qScanIn) + per-edge value (qRep)
//	dup: ngh -> {data RA input, update stage} (qDupX, qDupY)
//	update: app-specific
//
// Queue ids for this family.
const (
	fqV0    uint8 = 0  // v -> offsets RA
	fqV1    uint8 = 1  // v -> per-vertex-value RA (or thread loads)
	fqRange uint8 = 2  // (start,end)
	fqVal   uint8 = 3  // per-vertex value
	fqScan  uint8 = 4  // (start,end) into the neighbors scan RA
	fqNgh   uint8 = 5  // neighbor stream
	fqDupA  uint8 = 6  // ngh -> per-neighbor-data RA
	fqDupB  uint8 = 7  // ngh -> update stage
	fqData  uint8 = 8  // fetched per-neighbor data
	fqRep   uint8 = 9  // per-edge replicated vertex value
	fqFeed  uint8 = 10 // feedback to head
)

// fringeQueueCaps is the QRM budget split for this family (sums to 120 of
// the 148 mappable registers; deep queues on the indirection chain).
func fringeQueueCaps() map[uint8]int {
	return map[uint8]int{
		fqV0: 8, fqV1: 8, fqRange: 8, fqVal: 8, fqScan: 8,
		fqNgh: 16, fqDupA: 16, fqDupB: 12, fqData: 16, fqRep: 16, fqFeed: 4,
	}
}

// fringeHeadProg walks the current fringe and feeds vertex ids to the two
// head RAs (offsets and per-vertex value). It owns level control. When
// useRA is false it instead loads offsets and the per-vertex value itself
// (valBase) and enqueues into fqRange/fqVal directly.
//
// maxRounds caps the number of levels (0 = unlimited); PRD uses it.
func fringeHeadProg(name string, fringeA, fringeB uint64, cnt0 uint64,
	offsetsBase, valBase uint64, useRA bool, maxRounds int64) *isa.Program {
	const (
		rCur isa.Reg = 4
		rCnt isa.Reg = 6
		rI   isa.Reg = 9
		rT   isa.Reg = 15
		rV   isa.Reg = 16
		rRnd isa.Reg = 17
		rOff isa.Reg = 18
		rVB  isa.Reg = 19
	)
	qa, qb := fqV0, fqV1
	if !useRA {
		qa, qb = fqRange, fqVal
	}
	a := isa.NewAssembler(name)
	a.MapQ(mq0, qa, isa.QueueIn)
	a.MapQ(mq1, qb, isa.QueueIn)
	a.MapQ(mq3, fqFeed, isa.QueueOut)
	a.SetReg(rCur, fringeA)
	a.SetReg(rCnt, cnt0)
	a.SetReg(rRnd, 0)
	a.SetReg(rOff, offsetsBase)
	a.SetReg(rVB, valBase)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	if useRA {
		a.Ld8(rV, rT, 0)
		a.Mov(mq0, rV) // to the offsets RA
		a.Mov(mq1, rV) // to the value RA
	} else {
		a.Ld8(rV, rT, 0)
		a.ShlI(rT, rV, 3)
		a.Add(rT, rT, rOff)
		a.Ld8(mq0, rT, 0) // enqueue start
		a.Ld8(mq0, rT, 8) // enqueue end
		a.ShlI(rT, rV, 3)
		a.Add(rT, rT, rVB)
		a.Ld8(mq1, rT, 0) // enqueue the per-vertex value
	}
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.EnqCI(qa, cvEOL)
	a.EnqCI(qb, cvEOL)
	a.AddI(rRnd, rRnd, 1)
	a.Mov(rCnt, mq3)
	a.BeqI(rCnt, 0, "done")
	if maxRounds > 0 {
		a.BeqI(rRnd, maxRounds, "done")
	}
	a.MovU(rT, fringeA^fringeB)
	a.Xor(rCur, rCur, rT)
	a.Jmp("level")
	a.Label("done")
	a.EnqCI(qa, cvDone)
	a.EnqCI(qb, cvDone)
	a.Halt()
	return a.MustLink()
}

// expandHook lets apps transform the per-vertex value before replication:
// it receives (value reg, start reg, end reg, scratch regs) and must leave
// the replicated value in rVal.
type expandHook func(a *isa.Assembler, rVal, rStart, rEnd, rS1, rS2 isa.Reg)

// fringeExpandProg consumes (start,end) pairs and the per-vertex value,
// feeds the neighbors scan RA, and replicates the (possibly transformed)
// value once per edge. When useRA is false it loads neighbors itself and
// fans them out to fqDupA/fqDupB directly (no dup stage needed).
func fringeExpandProg(name string, neighborsBase uint64, hook expandHook, useRA bool) *isa.Program {
	const (
		rS   isa.Reg = 11
		rE   isa.Reg = 12
		rVal isa.Reg = 13
		rT   isa.Reg = 15
		rT2  isa.Reg = 17
		rNB  isa.Reg = 18
		rN   isa.Reg = 19
	)
	a := isa.NewAssembler(name)
	a.MapQ(mq0, fqRange, isa.QueueOut)
	a.MapQ(mq1, fqVal, isa.QueueOut)
	a.MapQ(mq2, fqRep, isa.QueueIn)
	if useRA {
		a.MapQ(mq3, fqScan, isa.QueueIn)
	} else {
		a.MapQ(mq3, fqDupA, isa.QueueIn)
		a.MapQ(25, fqDupB, isa.QueueIn)
		a.SetReg(rNB, neighborsBase)
	}
	a.OnDeqCV("cv")

	a.Label("loop")
	a.Mov(rS, mq0)
	a.Mov(rE, mq0)
	a.Mov(rVal, mq1)
	if hook != nil {
		hook(a, rVal, rS, rE, rT, rT2)
	}
	if useRA {
		a.Mov(mq3, rS)
		a.Mov(mq3, rE)
	}
	a.Label("rep")
	a.Bgeu(rS, rE, "loop")
	if !useRA {
		a.ShlI(rT, rS, 3)
		a.Add(rT, rT, rNB)
		a.Ld8(rN, rT, 0)
		a.Mov(mq3, rN)
		a.Mov(25, rN)
	}
	a.Mov(mq2, rVal)
	a.AddI(rS, rS, 1)
	a.Jmp("rep")

	a.Label("cv")
	a.SkipC(rT, fqVal) // consume the matching CV on the value queue
	if useRA {
		a.EnqC(fqScan, isa.RHCV)
	} else {
		a.EnqC(fqDupA, isa.RHCV)
		a.EnqC(fqDupB, isa.RHCV)
	}
	a.EnqC(fqRep, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// fringeDupProg fans the neighbor stream out to the data RA and the update
// stage (used only in the RA configuration).
func fringeDupProg(name string) *isa.Program {
	const rV isa.Reg = 16
	a := isa.NewAssembler(name)
	a.MapQ(mq0, fqNgh, isa.QueueOut)
	a.MapQ(mq1, fqDupA, isa.QueueIn)
	a.MapQ(mq2, fqDupB, isa.QueueIn)
	a.OnDeqCV("cv")
	a.Label("loop")
	a.Mov(rV, mq0)
	a.Mov(mq1, rV)
	a.Mov(mq2, rV)
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(fqDupA, isa.RHCV)
	a.EnqC(fqDupB, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// fringeFetchProg is the thread version of the per-neighbor data fetch (the
// no-RA configuration): ids in on fqDupA, data[id] out on fqData. The
// expand stage already fans ids out to fqDupB, so this stage only converts
// ids to values.
func fringeFetchProg(name string, dataBase uint64) *isa.Program {
	const rT isa.Reg = 15
	a := isa.NewAssembler(name)
	a.MapQ(mq0, fqDupA, isa.QueueOut)
	a.MapQ(mq1, fqData, isa.QueueIn)
	a.OnDeqCV("cv")
	const rB isa.Reg = 18
	a.SetReg(rB, dataBase)
	a.Label("loop")
	a.ShlI(rT, mq0, 3)
	a.Add(rT, rT, rB)
	a.Ld8(mq1, rT, 0)
	a.Jmp("loop")
	a.Label("cv")
	a.EnqC(fqData, isa.RHCV)
	a.BeqI(isa.RHCV, cvDone, "done")
	a.Jmp("loop")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}
