package bench

import (
	"fmt"
	"sort"

	"pipette/internal/isa"
	"pipette/internal/ra"
	"pipette/internal/sim"
)

// pipeSpec declares a Pipette pipeline abstractly — stage programs, RA
// configurations and queue capacities — so the same kernel can be placed on
// one SMT core (time-multiplexed stages, the Pipette configuration) or
// spread one stage per core (the streaming-multicore baseline), with
// connectors inserted automatically for queues that cross cores.
type pipeSpec struct {
	queues map[uint8]int // queue id -> capacity
	stages []*isa.Program
	ras    []ra.Config
}

// queueProducerConsumer derives, for every queue, which stage or RA
// produces and consumes it, from program bindings and RA configs.
func (p *pipeSpec) endpoints() (prod, cons map[uint8]int) {
	// Values are stage indexes; RAs are folded into the stage they are
	// chained from (see placeRA).
	prod = map[uint8]int{}
	cons = map[uint8]int{}
	for si, prog := range p.stages {
		for _, b := range prog.Bindings {
			if b.Dir == isa.QueueIn {
				prod[b.Q] = si
			} else {
				cons[b.Q] = si
			}
		}
	}
	// Resolve RA chains: an RA lives with the producer of its input.
	for resolved := true; resolved; {
		resolved = false
		for _, rc := range p.ras {
			if ps, ok := prod[rc.In]; ok {
				if _, done := prod[rc.Out]; !done {
					prod[rc.Out] = ps
					resolved = true
				}
				if _, done := cons[rc.In]; !done {
					cons[rc.In] = ps
					resolved = true
				}
			}
		}
	}
	return prod, cons
}

// place loads the pipeline onto the system. coreOf maps stage index to core;
// within a core, stages occupy successive hardware threads. Queues whose
// producer and consumer stages land on different cores get connectors.
func (p *pipeSpec) place(s *sim.System, coreOf func(stage int) int) {
	prod, cons := p.endpoints()

	coreFor := func(stage int, ok bool) int {
		if !ok {
			return coreOf(0)
		}
		return coreOf(stage)
	}

	usedCores := map[int]bool{}
	for si := range p.stages {
		usedCores[coreOf(si)] = true
	}
	for c := range usedCores {
		s.Cores[c].SetQueueCaps(p.queues)
	}
	// Also configure cores that host only RAs.
	for _, rc := range p.ras {
		ps, ok := prod[rc.In]
		c := coreFor(ps, ok)
		if !usedCores[c] {
			s.Cores[c].SetQueueCaps(p.queues)
			usedCores[c] = true
		}
	}

	hw := map[int]int{} // next free hardware thread per core
	for si, prog := range p.stages {
		c := coreOf(si)
		s.Cores[c].Load(hw[c], prog)
		hw[c]++
	}
	for _, rc := range p.ras {
		ps, ok := prod[rc.In]
		ra.New(s.Cores[coreFor(ps, ok)], rc)
	}
	// Sorted queue order: connector creation order is machine state
	// (Tick order, per-connector stats), so it must not depend on map
	// iteration — snapshot StateHash equality relies on this.
	qids := make([]int, 0, len(p.queues))
	for q := range p.queues {
		qids = append(qids, int(q))
	}
	sort.Ints(qids)
	for _, qi := range qids {
		q := uint8(qi)
		ps, pok := prod[q]
		cs, cok := cons[q]
		if !pok || !cok {
			continue
		}
		pc, cc := coreOf(ps), coreOf(cs)
		if pc != cc {
			s.Connect(pc, q, cc, q)
		}
	}
	if err := p.validate(); err != nil {
		panic(err)
	}
}

// placeSingleCore puts every stage on core (the Pipette configuration).
func (p *pipeSpec) placeSingleCore(s *sim.System, core int) {
	p.place(s, func(int) int { return core })
}

// placeStreaming puts stage i on core i (the streaming-multicore baseline).
func (p *pipeSpec) placeStreaming(s *sim.System) {
	if len(s.Cores) < len(p.stages) {
		panic(fmt.Sprintf("streaming placement needs %d cores", len(p.stages)))
	}
	p.place(s, func(stage int) int { return stage })
}

func (p *pipeSpec) validate() error {
	if len(p.stages) == 0 {
		return fmt.Errorf("pipeline has no stages")
	}
	for _, rc := range p.ras {
		if _, ok := p.queues[rc.In]; !ok {
			return fmt.Errorf("RA input queue %d has no capacity entry", rc.In)
		}
		if _, ok := p.queues[rc.Out]; !ok {
			return fmt.Errorf("RA output queue %d has no capacity entry", rc.Out)
		}
	}
	return nil
}

// Short RA constructors for pipeline specs.
func raList(cs ...ra.Config) []ra.Config { return cs }

func raPair(in, out uint8, base uint64) ra.Config {
	return ra.Config{Mode: ra.IndirectPair, In: in, Out: out, Base: base, IssuePerCycle: 2}
}

func raInd(in, out uint8, base uint64) ra.Config {
	return ra.Config{Mode: ra.Indirect, In: in, Out: out, Base: base, IssuePerCycle: 2}
}

func raScan(in, out uint8, base uint64) ra.Config {
	return ra.Config{Mode: ra.Scan, In: in, Out: out, Base: base, IssuePerCycle: 2}
}
