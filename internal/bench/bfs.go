package bench

import (
	"fmt"

	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/sim"
)

// bfsLayout is the shared memory image for all BFS variants.
type bfsLayout struct {
	g       graph.Layout
	dist    uint64 // N words, Unreached-initialized except dist[src]=0
	fringeA uint64 // N words; fringeA[0]=src
	fringeB uint64 // N words
	cells   uint64 // shared coordination cells (data-parallel variants)
	n       int
	src     int
}

// Coordination cell offsets (bytes from l.cells).
const (
	cellNextCnt = 0
	cellArrive  = 8
	cellRelease = 16
	cellCurCnt  = 24
	cellCurPtr  = 32
	cellNextPtr = 40
	cellCurDist = 48
	cellGlobal  = 56 // multicore Pipette: global next-fringe count
	cellsWords  = 16
)

func layoutBFS(m *mem.Memory, g *graph.Graph, src int) bfsLayout {
	l := bfsLayout{
		g:       g.WriteTo(m),
		dist:    m.AllocWords(uint64(g.N)),
		fringeA: m.AllocWords(uint64(g.N)),
		fringeB: m.AllocWords(uint64(g.N)),
		cells:   m.AllocWords(cellsWords),
		n:       g.N,
		src:     src,
	}
	for v := 0; v < g.N; v++ {
		m.Write64(l.dist+uint64(v)*8, graph.Unreached)
	}
	m.Write64(l.dist+uint64(src)*8, 0)
	m.Write64(l.fringeA, uint64(src))
	m.Write64(l.cells+cellCurCnt, 1)
	m.Write64(l.cells+cellCurPtr, l.fringeA)
	m.Write64(l.cells+cellNextPtr, l.fringeB)
	m.Write64(l.cells+cellCurDist, 1)
	return l
}

// checkBFS compares simulated distances with the reference.
func checkBFS(s *sim.System, l bfsLayout, g *graph.Graph) CheckFn {
	return func() error {
		want := graph.BFS(g, l.src)
		for v := 0; v < g.N; v++ {
			got := s.Mem.Read64(l.dist + uint64(v)*8)
			if got != want[v] {
				return fmt.Errorf("bfs: dist[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
}

// BFSSerial builds the serial PBFS-style kernel of Fig. 1(a) on core 0,
// thread 0.
func BFSSerial(g *graph.Graph, src int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutBFS(s.Mem, g, src)
		s.Cores[0].Load(0, bfsSerialProg(l))
		return checkBFS(s, l, g)
	}
}

func bfsSerialProg(l bfsLayout) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rDist  isa.Reg = 3
		rCur   isa.Reg = 4
		rNext  isa.Reg = 5
		rCnt   isa.Reg = 6
		rNCnt  isa.Reg = 7
		rLvl   isa.Reg = 8
		rI     isa.Reg = 9
		rV     isa.Reg = 10
		rStart isa.Reg = 11
		rEnd   isa.Reg = 12
		rN     isa.Reg = 13
		rD     isa.Reg = 14
		rT     isa.Reg = 15
		rInf   isa.Reg = 16
		rT2    isa.Reg = 17
	)
	a := isa.NewAssembler("bfs-serial")
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rDist, l.dist)
	a.SetReg(rCur, l.fringeA)
	a.SetReg(rNext, l.fringeB)
	a.SetReg(rCnt, 1)
	a.SetReg(rNCnt, 0)
	a.SetReg(rLvl, 1)
	a.SetReg(rInf, graph.Unreached)

	a.Label("level")
	a.MovI(rI, 0)
	a.Label("vloop")
	a.Bgeu(rI, rCnt, "eol")
	a.ShlI(rT, rI, 3)
	a.Add(rT, rT, rCur)
	a.Ld8(rV, rT, 0) // v = cur[i]
	a.ShlI(rT, rV, 3)
	a.Add(rT, rT, rOff)
	a.Ld8(rStart, rT, 0)
	a.Ld8(rEnd, rT, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rT, rStart, 3)
	a.Add(rT, rT, rNgh)
	a.Ld8(rN, rT, 0) // ngh
	a.ShlI(rT, rN, 3)
	a.Add(rT, rT, rDist)
	a.Ld8(rD, rT, 0) // d = dist[ngh]
	a.Bne(rD, rInf, "skip")
	a.St8(rT, 0, rLvl) // dist[ngh] = curDist
	a.ShlI(rT2, rNCnt, 3)
	a.Add(rT2, rT2, rNext)
	a.St8(rT2, 0, rN) // next[nextCnt] = ngh
	a.AddI(rNCnt, rNCnt, 1)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")
	a.Label("eol")
	a.BeqI(rNCnt, 0, "done")
	a.Xor(rCur, rCur, rNext) // swap fringes
	a.Xor(rNext, rCur, rNext)
	a.Xor(rCur, rCur, rNext)
	a.Mov(rCnt, rNCnt)
	a.MovI(rNCnt, 0)
	a.AddI(rLvl, rLvl, 1)
	a.Jmp("level")
	a.Label("done")
	a.Halt()
	return a.MustLink()
}

// BFSDataParallel builds the level-synchronous data-parallel kernel on
// nThreads hardware threads spread across the system's cores (4 per core):
// static fringe partitioning, CAS on distances, fetch-add next-fringe
// allocation, and a sense-free monotonic barrier.
func BFSDataParallel(g *graph.Graph, src, nThreads int) Builder {
	return func(s *sim.System) CheckFn {
		l := layoutBFS(s.Mem, g, src)
		for t := 0; t < nThreads; t++ {
			core := t / 4
			hw := t % 4
			s.Cores[core].Load(hw, bfsDPProg(l, t, nThreads))
		}
		return checkBFS(s, l, g)
	}
}

func bfsDPProg(l bfsLayout, tid, nThreads int) *isa.Program {
	const (
		rOff   isa.Reg = 1
		rNgh   isa.Reg = 2
		rDist  isa.Reg = 3
		rCells isa.Reg = 4
		rInf   isa.Reg = 5
		rTid   isa.Reg = 6
		rT     isa.Reg = 7 // thread count
		rLvl   isa.Reg = 8 // completed barriers
		rCnt   isa.Reg = 9
		rCur   isa.Reg = 10
		rDst   isa.Reg = 11 // current distance
		rLo    isa.Reg = 12
		rHi    isa.Reg = 13
		rI     isa.Reg = 14
		rV     isa.Reg = 15
		rStart isa.Reg = 16
		rEnd   isa.Reg = 17
		rN     isa.Reg = 18
		rAddr  isa.Reg = 19
		rOld   isa.Reg = 20
		rIdx   isa.Reg = 21
		rNext  isa.Reg = 22
		rTmp   isa.Reg = 23
		rOne   isa.Reg = 24
		rTmp2  isa.Reg = 25
	)
	a := isa.NewAssembler(fmt.Sprintf("bfs-dp-%d", tid))
	a.SetReg(rOff, l.g.OffsetsAddr)
	a.SetReg(rNgh, l.g.NeighborsAddr)
	a.SetReg(rDist, l.dist)
	a.SetReg(rCells, l.cells)
	a.SetReg(rInf, graph.Unreached)
	a.SetReg(rTid, uint64(tid))
	a.SetReg(rT, uint64(nThreads))
	a.SetReg(rLvl, 0)
	a.SetReg(rOne, 1)

	a.Label("level")
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.Ld8(rCur, rCells, cellCurPtr)
	a.Ld8(rDst, rCells, cellCurDist)
	// lo = tid*cnt/T ; hi = (tid+1)*cnt/T
	a.Mul(rLo, rTid, rCnt)
	a.Div(rLo, rLo, rT)
	a.AddI(rHi, rTid, 1)
	a.Mul(rHi, rHi, rCnt)
	a.Div(rHi, rHi, rT)
	a.Mov(rI, rLo)
	a.Label("vloop")
	a.Bgeu(rI, rHi, "arrive")
	a.ShlI(rAddr, rI, 3)
	a.Add(rAddr, rAddr, rCur)
	a.Ld8(rV, rAddr, 0)
	a.ShlI(rAddr, rV, 3)
	a.Add(rAddr, rAddr, rOff)
	a.Ld8(rStart, rAddr, 0)
	a.Ld8(rEnd, rAddr, 8)
	a.Label("eloop")
	a.Bgeu(rStart, rEnd, "vend")
	a.ShlI(rAddr, rStart, 3)
	a.Add(rAddr, rAddr, rNgh)
	a.Ld8(rN, rAddr, 0)
	// Claim via CAS(dist[ngh], Unreached -> curDist).
	a.ShlI(rAddr, rN, 3)
	a.Add(rAddr, rAddr, rDist)
	a.Ld8(rOld, rAddr, 0) // cheap pre-check avoids most CAS traffic
	a.Bne(rOld, rInf, "skip")
	a.Cas(rOld, rAddr, rInf, rDst)
	a.Bne(rOld, rInf, "skip")
	a.AddI(rTmp, rCells, cellNextCnt)
	a.FetchAdd(rIdx, rTmp, rOne)
	a.Ld8(rNext, rCells, cellNextPtr)
	a.ShlI(rTmp, rIdx, 3)
	a.Add(rTmp, rTmp, rNext)
	a.St8(rTmp, 0, rN)
	a.Label("skip")
	a.AddI(rStart, rStart, 1)
	a.Jmp("eloop")
	a.Label("vend")
	a.AddI(rI, rI, 1)
	a.Jmp("vloop")

	a.Label("arrive")
	a.AddI(rTmp, rCells, cellArrive)
	a.FetchAdd(rOld, rTmp, rOne)
	a.AddI(rLvl, rLvl, 1)
	a.Mul(rTmp, rT, rLvl)
	a.AddI(rOld, rOld, 1)
	a.Bne(rOld, rTmp, "wait") // not the last arriver
	// Last thread: swap fringe pointers, publish counts, bump distance.
	a.Ld8(rTmp, rCells, cellCurPtr)
	a.Ld8(rOld, rCells, cellNextPtr)
	a.St8(rCells, cellCurPtr, rOld)
	a.St8(rCells, cellNextPtr, rTmp)
	a.Ld8(rTmp, rCells, cellNextCnt)
	a.St8(rCells, cellCurCnt, rTmp)
	a.St8(rCells, cellNextCnt, isa.R0)
	a.Ld8(rTmp, rCells, cellCurDist)
	a.AddI(rTmp, rTmp, 1)
	a.St8(rCells, cellCurDist, rTmp)
	a.AddI(rTmp2, rCells, cellRelease)
	a.FetchAdd(rOld, rTmp2, rOne)
	a.Label("wait")
	a.Ld8(rTmp, rCells, cellRelease)
	a.Bltu(rTmp, rLvl, "wait")
	a.Ld8(rCnt, rCells, cellCurCnt)
	a.BneI(rCnt, 0, "level")
	a.Halt()
	return a.MustLink()
}
