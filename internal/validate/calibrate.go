// Auto-calibration: grid-search the model-parameter overrides on
// harness.Config to minimize the weighted correlation error against the
// reference table, Accel-Sim style. Every grid point is a full
// evaluation of the (filtered) matrix through the ordinary sweep engine,
// so points cache in the sweep disk cache and re-runs are cheap; the
// fitted report carries a sensitivity section saying which parameter
// moves which figure.
package validate

import (
	"fmt"
	"io"
	"sort"

	"pipette/internal/harness"
)

// maxGridPoints caps the cartesian search so a typo'd grid cannot queue
// thousands of matrix evaluations.
const maxGridPoints = 200

// param is one calibratable model knob.
type param struct {
	apply func(*harness.Config, float64)
	desc  string
}

// Params maps CLI names to the harness.Config override they drive. All
// are latencies in core cycles.
var Params = map[string]param{
	"dram": {func(c *harness.Config, v float64) { c.DRAMLat = uint64(v) }, "DRAM row-access latency (cache.Config.DRAMLat)"},
	"l2":   {func(c *harness.Config, v float64) { c.L2Lat = uint64(v) }, "L2 hit latency (cache.Config.L2Lat)"},
	"l3":   {func(c *harness.Config, v float64) { c.L3Lat = uint64(v) }, "L3 hit latency (cache.Config.L3Lat)"},
	"noc":  {func(c *harness.Config, v float64) { c.NoCLat = uint64(v) }, "cross-core queue hop latency (sim.Config.NoCLatency)"},
	"trap": {func(c *harness.Config, v float64) { c.TrapPenalty = uint64(v) }, "CV/enqueue-handler redirect cost (core.Config.TrapPenalty)"},
}

// ParamNames lists the calibratable knobs in sorted order.
func ParamNames() []string {
	return sortedFigureKeys(Params)
}

// ApplyParam sets one named override on cfg. Values must be positive
// integers (0 means "simulator default" in the override encoding, so it
// cannot be a grid value).
func ApplyParam(cfg *harness.Config, name string, v float64) error {
	p, ok := Params[name]
	if !ok {
		return fmt.Errorf("validate: unknown parameter %q (have %v)", name, ParamNames())
	}
	if v < 1 || v != float64(uint64(v)) {
		return fmt.Errorf("validate: parameter %s=%v: want a positive integer latency", name, v)
	}
	p.apply(cfg, v)
	return nil
}

// gridPoint is one cartesian assignment, indexed per grid dimension.
type gridPoint struct {
	idx  []int // per-dimension value index
	vals map[string]float64
	rep  *Report
}

// Calibrate grid-searches the given parameters against ref, starting
// from base (whose own score becomes the baseline error). It returns the
// best point's correlation report with the Calibration section attached.
// progress, when non-nil, receives one line per evaluated point.
func Calibrate(base harness.Config, opts harness.SweepOptions, ref *Reference, grid []GridSpec, progress io.Writer) (*Report, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("validate: empty calibration grid")
	}
	points := 1
	for _, g := range grid {
		if len(g.Values) == 0 {
			return nil, fmt.Errorf("validate: grid for %q has no values", g.Param)
		}
		if _, ok := Params[g.Param]; !ok {
			return nil, fmt.Errorf("validate: unknown parameter %q (have %v)", g.Param, ParamNames())
		}
		points *= len(g.Values)
	}
	if points > maxGridPoints {
		return nil, fmt.Errorf("validate: grid spans %d points, max %d", points, maxGridPoints)
	}

	baseRep, err := scoreConfig(base, opts, ref)
	if err != nil {
		return nil, fmt.Errorf("validate: scoring the uncalibrated config: %w", err)
	}

	// Enumerate the cartesian grid in deterministic odometer order.
	all := make([]*gridPoint, 0, points)
	idx := make([]int, len(grid))
	for {
		pt := &gridPoint{idx: append([]int(nil), idx...), vals: map[string]float64{}}
		for d, g := range grid {
			pt.vals[g.Param] = g.Values[idx[d]]
		}
		all = append(all, pt)
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(grid[d].Values) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}

	best := -1
	for i, pt := range all {
		cfg := base
		for p, v := range pt.vals {
			if err := ApplyParam(&cfg, p, v); err != nil {
				return nil, err
			}
		}
		rep, err := scoreConfig(cfg, opts, ref)
		if err != nil {
			return nil, fmt.Errorf("validate: grid point %v: %w", pt.vals, err)
		}
		pt.rep = rep
		if progress != nil {
			fmt.Fprintf(progress, "calibrate: [%d/%d] %s -> error %.4f\n",
				i+1, len(all), formatPoint(grid, pt), rep.WeightedError)
		}
		if best < 0 || rep.WeightedError < all[best].rep.WeightedError {
			best = i
		}
	}

	bp := all[best]
	rep := bp.rep
	cal := &Calibration{
		Grid:          grid,
		Points:        len(all),
		BaselineError: baseRep.WeightedError,
		Best:          bp.vals,
		BestError:     rep.WeightedError,
	}

	// Sensitivity: central finite differences along each dimension with
	// the other parameters held at the fitted point. Every needed
	// neighbor is already in the cartesian grid.
	at := func(ix []int) *gridPoint {
		for _, pt := range all {
			match := true
			for d := range ix {
				if pt.idx[d] != ix[d] {
					match = false
					break
				}
			}
			if match {
				return pt
			}
		}
		return nil
	}
	for d, g := range grid {
		if len(g.Values) < 2 {
			continue
		}
		lo, hi := bp.idx[d], bp.idx[d]
		if lo > 0 {
			lo--
		}
		if hi < len(g.Values)-1 {
			hi++
		}
		ixLo, ixHi := append([]int(nil), bp.idx...), append([]int(nil), bp.idx...)
		ixLo[d], ixHi[d] = lo, hi
		pLo, pHi := at(ixLo), at(ixHi)
		dv := g.Values[hi] - g.Values[lo]
		if pLo == nil || pHi == nil || dv == 0 {
			continue
		}
		s := Sensitivity{
			Param:     g.Param,
			Value:     g.Values[bp.idx[d]],
			Step:      dv,
			DError:    (pHi.rep.WeightedError - pLo.rep.WeightedError) / dv,
			PerFigure: map[string]float64{},
		}
		feLo, feHi := pLo.rep.FigureErrors(), pHi.rep.FigureErrors()
		for _, fig := range sortedFigureKeys(feHi) {
			s.PerFigure[fig] = (feHi[fig] - feLo[fig]) / dv
		}
		cal.Sensitivity = append(cal.Sensitivity, s)
	}
	sort.Slice(cal.Sensitivity, func(i, j int) bool {
		return cal.Sensitivity[i].Param < cal.Sensitivity[j].Param
	})
	rep.Calibration = cal
	return rep, nil
}

// scoreConfig evaluates the matrix under cfg and scores it against ref.
func scoreConfig(cfg harness.Config, opts harness.SweepOptions, ref *Reference) (*Report, error) {
	e, err := harness.EvaluateWith(cfg, opts)
	if err != nil {
		return nil, err
	}
	return Score(e, ref)
}

// formatPoint renders one grid assignment in grid order.
func formatPoint(grid []GridSpec, pt *gridPoint) string {
	s := ""
	for d, g := range grid {
		if d > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", g.Param, g.Values[pt.idx[d]])
	}
	return s
}
