// The pipette.correlation/v1 report schema: per-figure correlation
// scores with pass/fail bands, the scalar weighted error, and (for
// calibration runs) the fitted parameters and their sensitivities.
// pipette-validate checks these documents the same way it checks run
// reports; ValidateCorrelation is the shared entry point.
package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Schema identifies correlation-report documents.
const Schema = "pipette.correlation/v1"

// RowDelta is one scored row: reference vs measured and the row's error
// under the figure's metric (rel err or distance; Ref/Got are zero for
// pure-distance rows).
type RowDelta struct {
	Row string  `json:"row"`
	Ref float64 `json:"ref,omitempty"`
	Got float64 `json:"got,omitempty"`
	Err float64 `json:"err"`
}

// FigureScore is one figure×metric entry: the metric value against its
// tolerance threshold, whether it passed, and the entry's normalized
// contribution to the calibration objective.
type FigureScore struct {
	Figure    string     `json:"figure"`
	Metric    string     `json:"metric"`
	Value     float64    `json:"value"`
	Threshold float64    `json:"threshold"`
	Pass      bool       `json:"pass"`
	Error     float64    `json:"error"`
	Rows      []RowDelta `json:"rows,omitempty"`
}

// GridSpec is one calibrated parameter's search values.
type GridSpec struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Sensitivity reports how the objective moves per unit of one parameter
// around the fitted point: central finite differences of the weighted
// error and of each figure's unweighted error term.
type Sensitivity struct {
	Param     string             `json:"param"`
	Value     float64            `json:"value"` // fitted value
	Step      float64            `json:"step"`  // differencing interval (hi - lo)
	DError    float64            `json:"d_error"`
	PerFigure map[string]float64 `json:"per_figure"`
}

// Calibration is the grid-search section of a calibrated report.
type Calibration struct {
	Grid          []GridSpec         `json:"grid"`
	Points        int                `json:"points"`
	BaselineError float64            `json:"baseline_error"` // objective of the uncalibrated config
	Best          map[string]float64 `json:"best"`
	BestError     float64            `json:"best_error"`
	Sensitivity   []Sensitivity      `json:"sensitivity"`
}

// Report is the pipette.correlation/v1 document.
type Report struct {
	Schema        string        `json:"schema"`
	Label         string        `json:"label,omitempty"`
	Scale         string        `json:"scale"`
	Apps          []string      `json:"apps"`
	Figures       []FigureScore `json:"figures"`
	WeightedError float64       `json:"weighted_error"`
	Pass          bool          `json:"pass"`
	Calibration   *Calibration  `json:"calibration,omitempty"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// validate checks the report's internal consistency: known metrics,
// pass flags that agree with value-vs-threshold, a Pass that is the
// conjunction of entry passes, and a well-formed calibration section.
func (r *Report) validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("unsupported correlation schema version %q (supported: %s)", r.Schema, Schema)
	}
	if r.Scale == "" {
		return fmt.Errorf("report lacks a scale")
	}
	if len(r.Apps) == 0 {
		return fmt.Errorf("report covers no apps")
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("report has no figure scores")
	}
	if math.IsNaN(r.WeightedError) || math.IsInf(r.WeightedError, 0) || r.WeightedError < 0 {
		return fmt.Errorf("weighted_error = %v", r.WeightedError)
	}
	allPass := true
	for i, f := range r.Figures {
		if f.Figure == "" {
			return fmt.Errorf("figures[%d] lacks a figure name", i)
		}
		if math.IsNaN(f.Value) || math.IsInf(f.Value, 0) {
			return fmt.Errorf("figures[%d] (%s/%s): value = %v", i, f.Figure, f.Metric, f.Value)
		}
		if f.Error < 0 || math.IsNaN(f.Error) || math.IsInf(f.Error, 0) {
			return fmt.Errorf("figures[%d] (%s/%s): error = %v", i, f.Figure, f.Metric, f.Error)
		}
		var wantPass bool
		switch f.Metric {
		case MetricTau:
			wantPass = f.Value >= f.Threshold
		case MetricRelErr, MetricDist:
			wantPass = f.Value <= f.Threshold
		default:
			return fmt.Errorf("figures[%d] (%s): unknown metric %q", i, f.Figure, f.Metric)
		}
		if f.Pass != wantPass {
			return fmt.Errorf("figures[%d] (%s/%s): pass=%v contradicts value %v vs threshold %v",
				i, f.Figure, f.Metric, f.Pass, f.Value, f.Threshold)
		}
		if !f.Pass {
			allPass = false
		}
		for j, row := range f.Rows {
			if row.Err < 0 || math.IsNaN(row.Err) {
				return fmt.Errorf("figures[%d] (%s/%s) rows[%d]: err = %v", i, f.Figure, f.Metric, j, row.Err)
			}
		}
	}
	if r.Pass != allPass {
		return fmt.Errorf("pass=%v contradicts figure passes", r.Pass)
	}
	return r.Calibration.validate()
}

func (c *Calibration) validate() error {
	if c == nil {
		return nil
	}
	if len(c.Grid) == 0 {
		return fmt.Errorf("calibration has no grid")
	}
	gridVals := map[string][]float64{}
	want := 1
	for _, g := range c.Grid {
		if g.Param == "" || len(g.Values) == 0 {
			return fmt.Errorf("calibration grid entry %q has no values", g.Param)
		}
		gridVals[g.Param] = g.Values
		want *= len(g.Values)
	}
	if c.Points != want {
		return fmt.Errorf("calibration evaluated %d points, grid implies %d", c.Points, want)
	}
	if len(c.Best) != len(c.Grid) {
		return fmt.Errorf("calibration best has %d params, grid %d", len(c.Best), len(c.Grid))
	}
	for p, v := range c.Best {
		vals, ok := gridVals[p]
		if !ok {
			return fmt.Errorf("calibration best param %q not in grid", p)
		}
		found := false
		for _, gv := range vals {
			if gv == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("calibration best %s=%v not among grid values %v", p, v, vals)
		}
	}
	if c.BestError < 0 || math.IsNaN(c.BestError) || c.BaselineError < 0 || math.IsNaN(c.BaselineError) {
		return fmt.Errorf("calibration errors (best %v, baseline %v) invalid", c.BestError, c.BaselineError)
	}
	for i, s := range c.Sensitivity {
		if _, ok := gridVals[s.Param]; !ok {
			return fmt.Errorf("sensitivity[%d] param %q not in grid", i, s.Param)
		}
		if s.Step <= 0 {
			return fmt.Errorf("sensitivity[%d] (%s): step = %v", i, s.Param, s.Step)
		}
		if math.IsNaN(s.DError) || math.IsInf(s.DError, 0) {
			return fmt.Errorf("sensitivity[%d] (%s): d_error = %v", i, s.Param, s.DError)
		}
		if len(s.PerFigure) == 0 {
			return fmt.Errorf("sensitivity[%d] (%s): no per-figure deltas", i, s.Param)
		}
	}
	return nil
}

// ValidateCorrelation parses and checks one pipette.correlation/v1
// document (unknown fields rejected). cmd/pipette-validate and the
// golden-file test gate on it.
func ValidateCorrelation(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("validate: bad correlation report: %w", err)
	}
	if err := r.validate(); err != nil {
		return nil, fmt.Errorf("validate: invalid correlation report: %w", err)
	}
	return &r, nil
}
