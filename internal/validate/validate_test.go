package validate

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"pipette/internal/harness"
)

// tinyBFS is the cheapest real matrix: tiny scale, bfs only. Results are
// memoized per Config, so tests sharing a config pay for one sweep.
func tinyBFS(t *testing.T) harness.Config {
	t.Helper()
	if testing.Short() {
		t.Skip("simulated matrix run; skipped in -short")
	}
	cfg := harness.Tiny()
	cfg.AppFilter = "bfs"
	return cfg
}

func evalOrDie(t *testing.T, cfg harness.Config) *harness.Eval {
	t.Helper()
	e, err := harness.EvaluateWith(cfg, harness.SweepOptions{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return e
}

// TestReferenceRoundTrip builds a reference from a real matrix, writes it,
// reads it back, and checks the self-score is a clean zero-error pass (the
// determinism contract: unchanged model == exact reproduction).
func TestReferenceRoundTrip(t *testing.T) {
	cfg := tinyBFS(t)
	e := evalOrDie(t, cfg)
	ref, err := BuildReference(e, "tiny")
	if err != nil {
		t.Fatalf("BuildReference: %v", err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("built reference invalid: %v", err)
	}
	if len(ref.Fig2) == 0 {
		t.Fatalf("bfs reference lacks fig2 rows")
	}
	for _, row := range ref.Fig2 {
		if row.Variant == "serial" && row.PaperIPC == 0 {
			t.Errorf("fig2 serial row lost paper provenance: %+v", row)
		}
	}

	var buf bytes.Buffer
	if err := ref.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadReference(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadReference: %v", err)
	}

	rep, err := Score(e, back)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if !rep.Pass {
		t.Errorf("self-score failed: %+v", rep.Figures)
	}
	if rep.WeightedError != 0 {
		t.Errorf("self-score weighted error = %v, want 0", rep.WeightedError)
	}
	var out bytes.Buffer
	if err := rep.WriteJSON(&out); err != nil {
		t.Fatalf("report WriteJSON: %v", err)
	}
	if _, err := ValidateCorrelation(bytes.NewReader(out.Bytes())); err != nil {
		t.Errorf("self-score report fails its own validator: %v", err)
	}
}

func TestReferenceRejectsUnknownField(t *testing.T) {
	_, err := ReadReference(strings.NewReader(`{"schema":"pipette.reference/v1","scale":"tiny","apps":["bfs"],"bogus":1}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestReferenceFilterApps(t *testing.T) {
	ref := &Reference{
		Schema: ReferenceSchema, Scale: "tiny",
		Apps: []string{"bfs", "cc"},
		Fig2: []Fig2Row{{Variant: "serial", Speedup: 1, IPC: 0.4}},
		Fig9: []Fig9Row{{App: "bfs", Pipette: 1.6, Streaming: 1.2}, {App: "cc", Pipette: 1.7, Streaming: 1.1}},
		Fig10: []Fig10Row{
			{App: "bfs", IPC: map[string]float64{"serial": 0.4}},
			{App: "cc", IPC: map[string]float64{"serial": 0.5}},
		},
		Fig11: []Fig11Row{{App: "cc", Variant: "serial", Issue: 0.5, Backend: 0.5}},
		Fig12: []Fig12Row{{App: "cc", Variant: "serial", Core: 0.5, Static: 0.5}},
		Fig13: []Fig13Row{{App: "bfs", Input: "Rd", Pipette: 1.6}, {App: "cc", Input: "Rd", Pipette: 1.7}},
		Tol:   DefaultTolerances(),
	}
	f, err := ref.FilterApps([]string{"cc"})
	if err != nil {
		t.Fatalf("FilterApps: %v", err)
	}
	if len(f.Apps) != 1 || f.Apps[0] != "cc" {
		t.Errorf("apps = %v", f.Apps)
	}
	if len(f.Fig2) != 0 {
		t.Errorf("fig2 kept without bfs: %v", f.Fig2)
	}
	if len(f.Fig9) != 1 || f.Fig9[0].App != "cc" {
		t.Errorf("fig9 = %v", f.Fig9)
	}
	if len(f.Fig13) != 1 || f.Fig13[0].App != "cc" {
		t.Errorf("fig13 = %v", f.Fig13)
	}
	if _, err := ref.FilterApps([]string{"silo"}); err == nil {
		t.Errorf("filtering to an uncovered app succeeded")
	}
	// The original is untouched.
	if len(ref.Fig9) != 2 {
		t.Errorf("FilterApps mutated the source table")
	}
}

// TestMisModeledConfigTripsCorrelation is the acceptance gate: a
// deliberately mis-modeled simulator (doubled DRAM latency) must fail the
// correlation check against a reference built from the true model.
func TestMisModeledConfigTripsCorrelation(t *testing.T) {
	cfg := tinyBFS(t)
	ref, err := BuildReference(evalOrDie(t, cfg), "tiny")
	if err != nil {
		t.Fatalf("BuildReference: %v", err)
	}

	bad := cfg
	bad.DRAMLat = 360 // double the 180-cycle default
	rep, err := Score(evalOrDie(t, bad), ref)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if rep.Pass {
		t.Fatalf("doubled DRAM latency passed correlation: %+v", rep.Figures)
	}
	if rep.WeightedError <= 0 {
		t.Errorf("weighted error = %v, want > 0", rep.WeightedError)
	}
	tripped := map[string]bool{}
	for _, f := range rep.Figures {
		if !f.Pass {
			tripped[f.Figure] = true
		}
	}
	if len(tripped) == 0 {
		t.Errorf("no figure tripped")
	}
	t.Logf("mis-model tripped figures: %v (weighted error %.4f)", tripped, rep.WeightedError)
}

// TestCalibrationRecoversPerturbedParam perturbs DRAM latency, then
// grid-searches it back: the fitted value must match the reference's true
// value and the sensitivity report must survive schema validation.
func TestCalibrationRecoversPerturbedParam(t *testing.T) {
	cfg := tinyBFS(t)
	ref, err := BuildReference(evalOrDie(t, cfg), "tiny")
	if err != nil {
		t.Fatalf("BuildReference: %v", err)
	}

	base := cfg
	base.DRAMLat = 360 // mis-modeled starting point
	grid := []GridSpec{{Param: "dram", Values: []float64{90, 180, 360}}}
	rep, err := Calibrate(base, harness.SweepOptions{}, ref, grid, nil)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	cal := rep.Calibration
	if cal == nil {
		t.Fatalf("calibrated report lacks a calibration section")
	}
	if got := cal.Best["dram"]; got != 180 {
		t.Errorf("fitted dram = %v, want 180 (the model default)", got)
	}
	if cal.BestError != 0 {
		t.Errorf("best error = %v, want 0 (grid contains the true model)", cal.BestError)
	}
	if cal.BaselineError <= cal.BestError {
		t.Errorf("baseline error %v not worse than fitted %v", cal.BaselineError, cal.BestError)
	}
	if !rep.Pass {
		t.Errorf("fitted model fails correlation: %+v", rep.Figures)
	}
	if len(cal.Sensitivity) != 1 {
		t.Fatalf("sensitivity entries = %v, want 1", cal.Sensitivity)
	}
	s := cal.Sensitivity[0]
	if s.Param != "dram" || s.Value != 180 || s.Step != 270 {
		t.Errorf("sensitivity = %+v", s)
	}
	// The slope's sign depends on which side of the optimum hurts more;
	// only finiteness and non-degeneracy are guaranteed.
	if s.DError == 0 || math.IsInf(s.DError, 0) || math.IsNaN(s.DError) {
		t.Errorf("d_error = %v, want finite nonzero", s.DError)
	}
	if len(s.PerFigure) == 0 {
		t.Errorf("sensitivity has no per-figure deltas")
	}

	var out bytes.Buffer
	if err := rep.WriteJSON(&out); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ValidateCorrelation(bytes.NewReader(out.Bytes())); err != nil {
		t.Errorf("calibrated report fails schema validation: %v", err)
	}
}

func TestCalibrateRejectsBadGrids(t *testing.T) {
	ref := &Reference{Schema: ReferenceSchema, Scale: "tiny", Apps: []string{"bfs"}}
	if _, err := Calibrate(harness.Tiny(), harness.SweepOptions{}, ref, nil, nil); err == nil {
		t.Errorf("empty grid accepted")
	}
	if _, err := Calibrate(harness.Tiny(), harness.SweepOptions{}, ref, []GridSpec{{Param: "warp", Values: []float64{1}}}, nil); err == nil {
		t.Errorf("unknown parameter accepted")
	}
	big := make([]float64, 300)
	for i := range big {
		big[i] = float64(i + 1)
	}
	if _, err := Calibrate(harness.Tiny(), harness.SweepOptions{}, ref, []GridSpec{{Param: "dram", Values: big}}, nil); err == nil {
		t.Errorf("oversized grid accepted")
	}
}

func TestApplyParam(t *testing.T) {
	var cfg harness.Config
	if err := ApplyParam(&cfg, "dram", 240); err != nil {
		t.Fatalf("ApplyParam: %v", err)
	}
	if cfg.DRAMLat != 240 {
		t.Errorf("DRAMLat = %v", cfg.DRAMLat)
	}
	if err := ApplyParam(&cfg, "dram", 0); err == nil {
		t.Errorf("zero latency accepted")
	}
	if err := ApplyParam(&cfg, "dram", 1.5); err == nil {
		t.Errorf("fractional latency accepted")
	}
	if err := ApplyParam(&cfg, "warp", 1); err == nil {
		t.Errorf("unknown parameter accepted")
	}
}

// TestCorrelationGolden pins the pipette.correlation/v1 wire format: the
// committed golden document must keep validating, and version or field
// drift must be rejected.
func TestCorrelationGolden(t *testing.T) {
	raw, err := os.ReadFile("testdata/correlation_golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	rep, err := ValidateCorrelation(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden report rejected: %v", err)
	}
	if !rep.Pass || rep.Scale != "tiny" || rep.Calibration == nil {
		t.Errorf("golden parsed oddly: pass=%v scale=%q cal=%v", rep.Pass, rep.Scale, rep.Calibration)
	}

	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unmarshal golden: %v", err)
	}
	mutate := func(f func(map[string]any)) []byte {
		var clone map[string]any
		b, _ := json.Marshal(doc)
		json.Unmarshal(b, &clone)
		f(clone)
		out, _ := json.Marshal(clone)
		return out
	}

	bad := mutate(func(m map[string]any) { m["schema"] = "pipette.correlation/v99" })
	if _, err := ValidateCorrelation(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "v99") {
		t.Errorf("unknown schema version accepted: %v", err)
	}
	bad = mutate(func(m map[string]any) { m["surprise"] = true })
	if _, err := ValidateCorrelation(bytes.NewReader(bad)); err == nil {
		t.Errorf("unknown field accepted")
	}
	bad = mutate(func(m map[string]any) { m["pass"] = false })
	if _, err := ValidateCorrelation(bytes.NewReader(bad)); err == nil {
		t.Errorf("pass/figures contradiction accepted")
	}
	bad = mutate(func(m map[string]any) {
		cal := m["calibration"].(map[string]any)
		cal["points"] = 7.0
	})
	if _, err := ValidateCorrelation(bytes.NewReader(bad)); err == nil {
		t.Errorf("inconsistent calibration point count accepted")
	}
	bad = mutate(func(m map[string]any) {
		cal := m["calibration"].(map[string]any)
		cal["best"] = map[string]any{"dram": 123.0}
	})
	if _, err := ValidateCorrelation(bytes.NewReader(bad)); err == nil {
		t.Errorf("off-grid best value accepted")
	}
}

// TestScoreAppMismatch: scoring a run against a reference covering
// different apps must error loudly, not silently skip rows.
func TestScoreAppMismatch(t *testing.T) {
	meas := &Reference{Schema: ReferenceSchema, Scale: "tiny", Apps: []string{"bfs"}}
	ref := &Reference{Schema: ReferenceSchema, Scale: "tiny", Apps: []string{"bfs", "cc"}}
	if _, err := scoreRows(meas, ref); err == nil || !strings.Contains(err.Error(), "filter") {
		t.Fatalf("app mismatch not flagged: %v", err)
	}
}
