// Extraction of reference-table rows from an evaluated matrix. These
// mirror the figure drivers in internal/harness/figures.go — the same
// gmeans over the same cells — so a correlation score measures the model,
// not a difference in aggregation.
package validate

import (
	"fmt"

	"pipette/internal/bench"
	"pipette/internal/harness"
	"pipette/internal/stats"
)

// variants is the scored variant set, in report order.
var variants = []string{
	bench.VSerial, bench.VDataParallel, bench.VPipette, bench.VPipetteNoRA, bench.VStreaming,
}

// paperFig2 is EXPERIMENTS.md's Fig. 2 paper column (speedup over serial
// and IPC where the paper states one), stamped into generated references
// as provenance.
var paperFig2 = map[string]Fig2Row{
	bench.VSerial:       {PaperSpeedup: 1.0, PaperIPC: 0.43},
	bench.VDataParallel: {PaperSpeedup: 1.3},
	bench.VPipette:      {PaperSpeedup: 4.9},
}

// BuildReference computes every reference row from an evaluated matrix
// and stamps the default tolerance bands. scale names the harness
// configuration the matrix ran at ("tiny", "default").
func BuildReference(e *harness.Eval, scale string) (*Reference, error) {
	r := &Reference{
		Schema: ReferenceSchema,
		Scale:  scale,
		Seed:   e.Cfg.Seed,
		Apps:   e.Apps,
		Notes:  "Model output at the stated scale; paper_* columns transcribed from EXPERIMENTS.md. Regenerate with pipette-calibrate -write-ref (docs/VALIDATION.md).",
		Tol:    DefaultTolerances(),
	}
	cell := func(app, variant, input string) (harness.Cell, error) {
		c, ok := e.Cells[harness.Key{App: app, Variant: variant, Input: input}]
		if !ok {
			return harness.Cell{}, fmt.Errorf("validate: matrix lacks cell %s/%s/%s", app, variant, input)
		}
		return c, nil
	}

	// Fig. 2: BFS on the road graph, speedup over serial + IPC.
	for _, app := range e.Apps {
		if app != "bfs" {
			continue
		}
		serial, err := cell("bfs", bench.VSerial, "Rd")
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			c, err := cell("bfs", v, "Rd")
			if err != nil {
				return nil, err
			}
			row := Fig2Row{
				Variant: v,
				Speedup: stats.Speedup(serial.R.Cycles, c.R.Cycles),
				IPC:     c.R.IPC(),
			}
			if p, ok := paperFig2[v]; ok {
				row.PaperSpeedup, row.PaperIPC = p.PaperSpeedup, p.PaperIPC
			}
			r.Fig2 = append(r.Fig2, row)
		}
	}

	// speedupOverDP mirrors harness.Fig9: gmean across inputs of the
	// variant's speedup over the data-parallel baseline.
	speedupOverDP := func(app, v string) (float64, error) {
		var xs []float64
		for _, in := range e.Inputs[app] {
			dp, err := cell(app, bench.VDataParallel, in)
			if err != nil {
				return 0, err
			}
			c, err := cell(app, v, in)
			if err != nil {
				return 0, err
			}
			xs = append(xs, stats.Speedup(dp.R.Cycles, c.R.Cycles))
		}
		return stats.Gmean(xs)
	}

	for _, app := range e.Apps {
		pip, err := speedupOverDP(app, bench.VPipette)
		if err != nil {
			return nil, err
		}
		str, err := speedupOverDP(app, bench.VStreaming)
		if err != nil {
			return nil, err
		}
		r.Fig9 = append(r.Fig9, Fig9Row{App: app, Pipette: pip, Streaming: str})

		// Fig. 10: per-core IPC by variant, gmean across inputs.
		ipc := Fig10Row{App: app, IPC: map[string]float64{}}
		for _, v := range variants {
			var xs []float64
			for _, in := range e.Inputs[app] {
				c, err := cell(app, v, in)
				if err != nil {
					return nil, err
				}
				xs = append(xs, c.R.IPC()/float64(c.Cores))
			}
			g, err := stats.Gmean(xs)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", app, v, err)
			}
			ipc.IPC[v] = g
		}
		r.Fig10 = append(r.Fig10, ipc)

		// Fig. 11: CPI-stack fractions summed across inputs and cores.
		for _, v := range variants {
			var issue, backend, queue, front, total float64
			for _, in := range e.Inputs[app] {
				c, err := cell(app, v, in)
				if err != nil {
					return nil, err
				}
				for _, cs := range c.R.CoreStats {
					issue += float64(cs.CPI.Issue)
					backend += float64(cs.CPI.Backend)
					queue += float64(cs.CPI.Queue)
					front += float64(cs.CPI.Front)
					total += float64(cs.CPI.Total())
				}
			}
			if total == 0 {
				return nil, fmt.Errorf("fig11 %s/%s: zero total cycles", app, v)
			}
			r.Fig11 = append(r.Fig11, Fig11Row{
				App: app, Variant: v,
				Issue: issue / total, Backend: backend / total,
				Queue: queue / total, Front: front / total,
			})
		}

		// Fig. 12: energy components normalized by dp's total.
		var dpTotal float64
		for _, in := range e.Inputs[app] {
			c, err := cell(app, bench.VDataParallel, in)
			if err != nil {
				return nil, err
			}
			dpTotal += c.Energy.Total()
		}
		if dpTotal == 0 {
			return nil, fmt.Errorf("fig12 %s: zero data-parallel energy", app)
		}
		for _, v := range variants {
			var core, cch, dram, static float64
			for _, in := range e.Inputs[app] {
				c, err := cell(app, v, in)
				if err != nil {
					return nil, err
				}
				core += c.Energy.CoreDyn
				cch += c.Energy.CacheDyn
				dram += c.Energy.DRAMDyn
				static += c.Energy.Static
			}
			r.Fig12 = append(r.Fig12, Fig12Row{
				App: app, Variant: v,
				Core: core / dpTotal, Cache: cch / dpTotal,
				DRAM: dram / dpTotal, Static: static / dpTotal,
			})
		}

		// Fig. 13: per-input Pipette speedup over data-parallel.
		for _, in := range e.Inputs[app] {
			dp, err := cell(app, bench.VDataParallel, in)
			if err != nil {
				return nil, err
			}
			c, err := cell(app, bench.VPipette, in)
			if err != nil {
				return nil, err
			}
			r.Fig13 = append(r.Fig13, Fig13Row{
				App: app, Input: in,
				Pipette: stats.Speedup(dp.R.Cycles, c.R.Cycles),
			})
		}
	}
	return r, nil
}
