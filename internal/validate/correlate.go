// Scoring: compare an extracted row set against the reference and roll
// the per-figure metrics into a correlation report.
package validate

import (
	"fmt"
	"math"

	"pipette/internal/harness"
	"pipette/internal/stats"
)

// Metric names used by FigureScore entries.
const (
	MetricTau    = "kendall_tau" // ordering agreement, pass when value >= threshold
	MetricRelErr = "max_rel_err" // relative-error band, pass when value <= threshold
	MetricDist   = "max_dist"    // composition distance, pass when value <= threshold
)

// scorer accumulates figure scores and the weighted objective.
type scorer struct {
	figures []FigureScore
	tol     map[string]Tolerance
}

// add records one figure entry. value is the reported metric, errContrib
// its normalized contribution to the calibration objective.
func (s *scorer) add(fig, metric string, value, threshold float64, pass bool, errContrib float64, rows []RowDelta) {
	s.figures = append(s.figures, FigureScore{
		Figure: fig, Metric: metric, Value: value, Threshold: threshold,
		Pass: pass, Error: errContrib, Rows: rows,
	})
}

// tauEntry scores ordering agreement between ref and got (already
// paired). Fewer than two rows leave tau undefined: the entry is skipped
// (an app-subset run can legitimately have one fig9 row).
func (s *scorer) tauEntry(fig string, ref, got []float64) error {
	tol := s.tol[fig]
	if tol.TauMin == 0 || len(ref) < 2 {
		return nil
	}
	tau, err := stats.KendallTau(ref, got)
	if err != nil {
		return fmt.Errorf("%s: %w", fig, err)
	}
	s.add(fig, MetricTau, tau, tol.TauMin, tau >= tol.TauMin, (1-tau)/2, nil)
	return nil
}

// bandEntry scores a relative-error or distance band over per-row
// errors: the reported value is the worst row, the objective contribution
// the mean.
func (s *scorer) bandEntry(fig, metric string, threshold float64, rows []RowDelta) {
	if threshold == 0 || len(rows) == 0 {
		return
	}
	worst, sum := 0.0, 0.0
	for _, r := range rows {
		worst = math.Max(worst, r.Err)
		sum += r.Err
	}
	s.add(fig, metric, worst, threshold, worst <= threshold, sum/float64(len(rows)), rows)
}

// Score compares the matrix against the reference table and returns the
// correlation report. The reference must already be filtered to the apps
// the matrix covers (FilterApps); a reference row without a matching
// measured row is an error, not a failed figure — it means the run and
// the table disagree about what exists.
func Score(e *harness.Eval, ref *Reference) (*Report, error) {
	meas, err := BuildReference(e, ref.Scale)
	if err != nil {
		return nil, err
	}
	return scoreRows(meas, ref)
}

// scoreRows scores one extracted row set against the reference.
func scoreRows(meas, ref *Reference) (*Report, error) {
	if len(meas.Apps) != len(ref.Apps) {
		return nil, fmt.Errorf("validate: run covers apps %v, reference %v (filter the reference first)",
			meas.Apps, ref.Apps)
	}
	for i, a := range ref.Apps {
		if meas.Apps[i] != a {
			return nil, fmt.Errorf("validate: run covers apps %v, reference %v", meas.Apps, ref.Apps)
		}
	}
	s := &scorer{tol: ref.Tol}

	// Fig. 2 — relative-error band on speedups and IPC.
	if len(ref.Fig2) > 0 {
		got := map[string]Fig2Row{}
		for _, row := range meas.Fig2 {
			got[row.Variant] = row
		}
		var rows []RowDelta
		for _, row := range ref.Fig2 {
			g, ok := got[row.Variant]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig2 row %q", row.Variant)
			}
			rows = append(rows,
				RowDelta{Row: "bfs/" + row.Variant + "/speedup", Ref: row.Speedup, Got: g.Speedup, Err: stats.RelErr(row.Speedup, g.Speedup)},
				RowDelta{Row: "bfs/" + row.Variant + "/ipc", Ref: row.IPC, Got: g.IPC, Err: stats.RelErr(row.IPC, g.IPC)})
		}
		s.bandEntry("fig2", MetricRelErr, s.tol["fig2"].RelErrMax, rows)
	}

	// Fig. 9 — tau on the per-app Pipette ordering + rel-err band on both
	// speedup columns.
	{
		got := map[string]Fig9Row{}
		for _, row := range meas.Fig9 {
			got[row.App] = row
		}
		var refPip, gotPip []float64
		var rows []RowDelta
		for _, row := range ref.Fig9 {
			g, ok := got[row.App]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig9 row %q", row.App)
			}
			refPip = append(refPip, row.Pipette)
			gotPip = append(gotPip, g.Pipette)
			rows = append(rows,
				RowDelta{Row: row.App + "/pipette", Ref: row.Pipette, Got: g.Pipette, Err: stats.RelErr(row.Pipette, g.Pipette)},
				RowDelta{Row: row.App + "/streaming", Ref: row.Streaming, Got: g.Streaming, Err: stats.RelErr(row.Streaming, g.Streaming)})
		}
		if err := s.tauEntry("fig9", refPip, gotPip); err != nil {
			return nil, err
		}
		s.bandEntry("fig9", MetricRelErr, s.tol["fig9"].RelErrMax, rows)
	}

	// Fig. 10 — rel-err band on per-core IPC by variant.
	{
		got := map[string]Fig10Row{}
		for _, row := range meas.Fig10 {
			got[row.App] = row
		}
		var rows []RowDelta
		for _, row := range ref.Fig10 {
			g, ok := got[row.App]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig10 row %q", row.App)
			}
			for _, v := range sortedFigureKeys(row.IPC) {
				gv, ok := g.IPC[v]
				if !ok {
					return nil, fmt.Errorf("validate: run lacks fig10 %s/%s", row.App, v)
				}
				rows = append(rows, RowDelta{
					Row: row.App + "/" + v, Ref: row.IPC[v], Got: gv, Err: stats.RelErr(row.IPC[v], gv),
				})
			}
		}
		s.bandEntry("fig10", MetricRelErr, s.tol["fig10"].RelErrMax, rows)
	}

	// Fig. 11 — CPI-stack composition distance per app×variant.
	{
		type key struct{ app, variant string }
		got := map[key]Fig11Row{}
		for _, row := range meas.Fig11 {
			got[key{row.App, row.Variant}] = row
		}
		var rows []RowDelta
		for _, row := range ref.Fig11 {
			g, ok := got[key{row.App, row.Variant}]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig11 row %s/%s", row.App, row.Variant)
			}
			d, err := stats.TVDist(
				[]float64{row.Issue, row.Backend, row.Queue, row.Front},
				[]float64{g.Issue, g.Backend, g.Queue, g.Front})
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%s: %w", row.App, row.Variant, err)
			}
			rows = append(rows, RowDelta{Row: row.App + "/" + row.Variant, Err: d})
		}
		s.bandEntry("fig11", MetricDist, s.tol["fig11"].DistMax, rows)
	}

	// Fig. 12 — rel-err band on energy totals + composition distance on
	// the core/cache/DRAM/static split.
	{
		type key struct{ app, variant string }
		got := map[key]Fig12Row{}
		for _, row := range meas.Fig12 {
			got[key{row.App, row.Variant}] = row
		}
		var totals, splits []RowDelta
		for _, row := range ref.Fig12 {
			g, ok := got[key{row.App, row.Variant}]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig12 row %s/%s", row.App, row.Variant)
			}
			name := row.App + "/" + row.Variant
			refTotal := row.Core + row.Cache + row.DRAM + row.Static
			gotTotal := g.Core + g.Cache + g.DRAM + g.Static
			totals = append(totals, RowDelta{Row: name, Ref: refTotal, Got: gotTotal, Err: stats.RelErr(refTotal, gotTotal)})
			d, err := stats.TVDist(
				[]float64{row.Core, row.Cache, row.DRAM, row.Static},
				[]float64{g.Core, g.Cache, g.DRAM, g.Static})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s/%s: %w", row.App, row.Variant, err)
			}
			splits = append(splits, RowDelta{Row: name, Err: d})
		}
		s.bandEntry("fig12", MetricRelErr, s.tol["fig12"].RelErrMax, totals)
		s.bandEntry("fig12", MetricDist, s.tol["fig12"].DistMax, splits)
	}

	// Fig. 13 — tau + rel-err band on per-input Pipette speedups.
	{
		type key struct{ app, input string }
		got := map[key]Fig13Row{}
		for _, row := range meas.Fig13 {
			got[key{row.App, row.Input}] = row
		}
		var refSp, gotSp []float64
		var rows []RowDelta
		for _, row := range ref.Fig13 {
			g, ok := got[key{row.App, row.Input}]
			if !ok {
				return nil, fmt.Errorf("validate: run lacks fig13 row %s/%s", row.App, row.Input)
			}
			refSp = append(refSp, row.Pipette)
			gotSp = append(gotSp, g.Pipette)
			rows = append(rows, RowDelta{
				Row: row.App + "/" + row.Input, Ref: row.Pipette, Got: g.Pipette, Err: stats.RelErr(row.Pipette, g.Pipette),
			})
		}
		if err := s.tauEntry("fig13", refSp, gotSp); err != nil {
			return nil, err
		}
		s.bandEntry("fig13", MetricRelErr, s.tol["fig13"].RelErrMax, rows)
	}

	if len(s.figures) == 0 {
		return nil, fmt.Errorf("validate: no figure produced a score (empty reference?)")
	}

	// Roll up: the weighted objective sums each figure's mean entry error
	// scaled by its tolerance weight; the report passes iff every entry
	// passes.
	rep := &Report{
		Schema:  Schema,
		Scale:   ref.Scale,
		Apps:    ref.Apps,
		Figures: s.figures,
		Pass:    true,
	}
	perFig := map[string][]float64{}
	for _, f := range s.figures {
		if !f.Pass {
			rep.Pass = false
		}
		perFig[f.Figure] = append(perFig[f.Figure], f.Error)
	}
	for _, fig := range sortedFigureKeys(perFig) {
		sum := 0.0
		for _, e := range perFig[fig] {
			sum += e
		}
		rep.WeightedError += ref.Tol[fig].Weight * sum / float64(len(perFig[fig]))
	}
	return rep, nil
}

// FigureErrors returns each figure's mean entry error (the per-figure
// terms of the weighted objective, unweighted). Calibration uses these
// for the sensitivity report.
func (r *Report) FigureErrors() map[string]float64 {
	perFig := map[string][]float64{}
	for _, f := range r.Figures {
		perFig[f.Figure] = append(perFig[f.Figure], f.Error)
	}
	out := map[string]float64{}
	for fig, errs := range perFig {
		sum := 0.0
		for _, e := range errs {
			sum += e
		}
		out[fig] = sum / float64(len(errs))
	}
	return out
}
