// Package validate is the model-fidelity correlation harness: it scores a
// run of the evaluation matrix against a committed reference table
// (build/baselines/paper_reference.json, the EXPERIMENTS.md
// paper-vs-measured numbers in machine-readable form) and rolls the
// per-figure metrics — speedup-ordering agreement via Kendall's tau
// (Figs. 9/13), relative-error bands (Fig. 10 IPC, Fig. 12 energy
// totals), and CPI-stack/energy-split composition distance (Figs. 11/12)
// — into a pipette.correlation/v1 report with pass/fail tolerance bands.
// A grid-search calibration mode (cmd/pipette-calibrate) reuses the sweep
// engine to fit cache/DRAM/queue-latency parameters against the same
// objective and reports parameter sensitivities. See docs/VALIDATION.md.
package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReferenceSchema identifies the committed reference-table document.
const ReferenceSchema = "pipette.reference/v1"

// Tolerance is one figure's pass band and its weight in the scalar
// calibration objective. Zero-valued bounds are unused by that figure's
// metrics (e.g. tau has no meaning for Fig. 10).
type Tolerance struct {
	TauMin    float64 `json:"tau_min,omitempty"`     // ordering agreement floor
	RelErrMax float64 `json:"rel_err_max,omitempty"` // relative-error ceiling
	DistMax   float64 `json:"dist_max,omitempty"`    // composition-distance ceiling
	Weight    float64 `json:"weight"`                // weight in the calibration objective
}

// Fig2Row is the headline BFS/road-graph comparison: speedup over serial
// and whole-run IPC for one variant. Paper* columns are the paper's
// numbers where EXPERIMENTS.md transcribes one (0 = not given); they are
// provenance, not scored — the scored reference is the committed model
// output at this table's scale.
type Fig2Row struct {
	Variant      string  `json:"variant"`
	Speedup      float64 `json:"speedup"`
	IPC          float64 `json:"ipc"`
	PaperSpeedup float64 `json:"paper_speedup,omitempty"`
	PaperIPC     float64 `json:"paper_ipc,omitempty"`
}

// Fig9Row is one app's gmean-across-inputs speedup over the data-parallel
// baseline (the Fig. 9 ordering Kendall's tau is computed on).
type Fig9Row struct {
	App       string  `json:"app"`
	Pipette   float64 `json:"pipette"`
	Streaming float64 `json:"streaming"`
}

// Fig10Row is one app's per-core IPC by variant (gmean across inputs).
type Fig10Row struct {
	App string             `json:"app"`
	IPC map[string]float64 `json:"ipc"`
}

// Fig11Row is one app×variant CPI-stack composition (fractions of total
// cycles; sums to ~1).
type Fig11Row struct {
	App     string  `json:"app"`
	Variant string  `json:"variant"`
	Issue   float64 `json:"issue"`
	Backend float64 `json:"backend"`
	Queue   float64 `json:"queue"`
	Front   float64 `json:"front"`
}

// Fig12Row is one app×variant energy decomposition, each component
// normalized by the app's data-parallel total.
type Fig12Row struct {
	App     string  `json:"app"`
	Variant string  `json:"variant"`
	Core    float64 `json:"core"`
	Cache   float64 `json:"cache"`
	DRAM    float64 `json:"dram"`
	Static  float64 `json:"static"`
}

// Fig13Row is one app×input Pipette speedup over data-parallel (the
// per-input ordering rows).
type Fig13Row struct {
	App     string  `json:"app"`
	Input   string  `json:"input"`
	Pipette float64 `json:"pipette"`
}

// Reference is the committed table a correlation run is scored against.
// Rows hold the expected model output at the stated Scale; regenerate
// with pipette-calibrate -write-ref after an intentional model change
// (the re-baselining workflow in docs/VALIDATION.md).
type Reference struct {
	Schema string   `json:"schema"`
	Scale  string   `json:"scale"` // harness config the rows were measured at ("tiny"/"default")
	Seed   int64    `json:"seed"`
	Apps   []string `json:"apps"`
	Notes  string   `json:"notes,omitempty"`

	Fig2  []Fig2Row  `json:"fig2,omitempty"`
	Fig9  []Fig9Row  `json:"fig9"`
	Fig10 []Fig10Row `json:"fig10"`
	Fig11 []Fig11Row `json:"fig11"`
	Fig12 []Fig12Row `json:"fig12"`
	Fig13 []Fig13Row `json:"fig13"`

	Tol map[string]Tolerance `json:"tolerances"`
}

// DefaultTolerances returns the pass bands the generator stamps into new
// reference tables. Simulation is deterministic, so an unchanged model
// scores zero error on every metric; the bands define how much a model
// change may move each figure before CI calls it drift.
func DefaultTolerances() map[string]Tolerance {
	return map[string]Tolerance{
		"fig2":  {RelErrMax: 0.10, Weight: 1},
		"fig9":  {TauMin: 0.75, RelErrMax: 0.15, Weight: 2},
		"fig10": {RelErrMax: 0.10, Weight: 1},
		"fig11": {DistMax: 0.05, Weight: 1.5},
		"fig12": {RelErrMax: 0.10, DistMax: 0.05, Weight: 1},
		"fig13": {TauMin: 0.60, RelErrMax: 0.20, Weight: 1},
	}
}

// figureNames lists the scored figures in report order.
var figureNames = []string{"fig2", "fig9", "fig10", "fig11", "fig12", "fig13"}

// Validate checks the table's internal consistency: schema, coverage
// (every app contributes to every applicable figure), and a usable
// tolerance entry per figure.
func (r *Reference) Validate() error {
	if r.Schema != ReferenceSchema {
		return fmt.Errorf("reference schema %q, want %q", r.Schema, ReferenceSchema)
	}
	if r.Scale == "" {
		return fmt.Errorf("reference lacks a scale")
	}
	if len(r.Apps) == 0 {
		return fmt.Errorf("reference covers no apps")
	}
	apps := map[string]bool{}
	for _, a := range r.Apps {
		apps[a] = true
	}
	rowApp := func(fig, app string) error {
		if !apps[app] {
			return fmt.Errorf("%s row for app %q not in apps %v", fig, app, r.Apps)
		}
		return nil
	}
	seen9 := map[string]bool{}
	for _, row := range r.Fig9 {
		if err := rowApp("fig9", row.App); err != nil {
			return err
		}
		seen9[row.App] = true
	}
	for _, row := range r.Fig10 {
		if err := rowApp("fig10", row.App); err != nil {
			return err
		}
		if len(row.IPC) == 0 {
			return fmt.Errorf("fig10 row %q has no variants", row.App)
		}
	}
	for _, row := range r.Fig11 {
		if err := rowApp("fig11", row.App); err != nil {
			return err
		}
	}
	for _, row := range r.Fig12 {
		if err := rowApp("fig12", row.App); err != nil {
			return err
		}
	}
	for _, row := range r.Fig13 {
		if err := rowApp("fig13", row.App); err != nil {
			return err
		}
	}
	for _, a := range r.Apps {
		if !seen9[a] {
			return fmt.Errorf("app %q has no fig9 row", a)
		}
	}
	for _, fig := range figureNames {
		tol, ok := r.Tol[fig]
		if fig == "fig2" && len(r.Fig2) == 0 {
			continue // fig2 only exists when bfs is covered
		}
		if !ok {
			return fmt.Errorf("no tolerance entry for %s", fig)
		}
		if tol.Weight < 0 {
			return fmt.Errorf("%s weight %v < 0", fig, tol.Weight)
		}
		if tol.TauMin == 0 && tol.RelErrMax == 0 && tol.DistMax == 0 {
			return fmt.Errorf("%s tolerance has no usable bound", fig)
		}
	}
	return nil
}

// FilterApps returns a copy of the table restricted to the given apps
// (report order preserved), so a fast app-subset correlation check — the
// benchguard stage runs one — scores only the rows it simulated. Unknown
// apps in keep are an error; an empty keep returns the table unchanged.
func (r *Reference) FilterApps(keep []string) (*Reference, error) {
	if len(keep) == 0 {
		return r, nil
	}
	want := map[string]bool{}
	for _, a := range keep {
		want[a] = true
	}
	covered := map[string]bool{}
	for _, a := range r.Apps {
		covered[a] = true
	}
	for _, a := range keep {
		if !covered[a] {
			return nil, fmt.Errorf("reference does not cover app %q (have %v)", a, r.Apps)
		}
	}
	f := *r
	f.Apps = nil
	for _, a := range r.Apps {
		if want[a] {
			f.Apps = append(f.Apps, a)
		}
	}
	f.Fig2, f.Fig9, f.Fig10, f.Fig11, f.Fig12, f.Fig13 = nil, nil, nil, nil, nil, nil
	if want["bfs"] {
		f.Fig2 = r.Fig2
	}
	for _, row := range r.Fig9 {
		if want[row.App] {
			f.Fig9 = append(f.Fig9, row)
		}
	}
	for _, row := range r.Fig10 {
		if want[row.App] {
			f.Fig10 = append(f.Fig10, row)
		}
	}
	for _, row := range r.Fig11 {
		if want[row.App] {
			f.Fig11 = append(f.Fig11, row)
		}
	}
	for _, row := range r.Fig12 {
		if want[row.App] {
			f.Fig12 = append(f.Fig12, row)
		}
	}
	for _, row := range r.Fig13 {
		if want[row.App] {
			f.Fig13 = append(f.Fig13, row)
		}
	}
	return &f, nil
}

// ReadReference parses and validates a reference table.
func ReadReference(rd io.Reader) (*Reference, error) {
	var r Reference
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("validate: bad reference table: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("validate: invalid reference table: %w", err)
	}
	return &r, nil
}

// LoadReference reads the reference table at path.
func LoadReference(path string) (*Reference, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadReference(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteJSON renders the table as indented JSON with a sorted, stable
// field layout (maps encode with sorted keys), so regenerated tables
// diff cleanly.
func (r *Reference) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ReferenceSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// sortedFigureKeys returns m's keys in sorted order (deterministic
// iteration for report assembly).
func sortedFigureKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
