// Chrome trace-event / Perfetto export: the tracer's events become instant
// (or duration) events and the sampler's series become counter tracks, so a
// whole multi-core run can be opened in ui.perfetto.dev or
// chrome://tracing. Format reference: the Trace Event Format doc ("JSON
// Object Format" flavor, traceEvents array).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace-event record. ts is in microseconds by
// convention; we map 1 simulated cycle -> 1 us so cycle numbers read
// directly in the UI timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTid flattens a (core, unit) pair into a stable tid: hardware
// threads keep small ids, special units get a high band per kind.
func chromeTid(unit int16) int {
	if unit >= 0 {
		return int(unit)
	}
	return 100 - int(unit) // qrm=101, ra=102, connector=103, cache=104
}

// eventArgs renders kind-specific payloads with meaningful names.
func eventArgs(e Event) map[string]any {
	switch e.Kind {
	case EvEnqueue, EvDequeue:
		return map[string]any{"queue": e.A, "value": e.B}
	case EvCVTrap:
		return map[string]any{"queue": e.A, "cv": e.B}
	case EvEnqTrap:
		return map[string]any{"queue": e.A}
	case EvSkip:
		return map[string]any{"queue": e.A, "skipped": e.B}
	case EvRedirect:
		cause := "mispredict"
		if e.A == 1 {
			cause = "trap"
		}
		return map[string]any{"cause": cause, "resume": e.B}
	case EvRALoad:
		return map[string]any{"addr": e.A, "done": e.B}
	case EvRACV:
		return map[string]any{"queue": e.A, "cv": e.B}
	case EvConnSend:
		return map[string]any{"dst_core": e.A >> 8, "dst_queue": e.A & 0xff, "value": e.B}
	case EvCacheMiss:
		lvl := [...]string{"L1", "L2", "L3", "DRAM"}
		name := "?"
		if e.A < uint64(len(lvl)) {
			name = lvl[e.A]
		}
		return map[string]any{"level": name, "done": e.B}
	}
	return nil
}

// WriteChromeTrace renders the tracer's events (and, when sm is non-nil,
// the sampler's occupancy/IPC series as counter tracks) as a Chrome
// trace-event JSON document. Either argument may be nil.
func WriteChromeTrace(w io.Writer, tr *Tracer, sm *Sampler) error {
	t := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	named := map[[2]int]bool{}
	nameTrack := func(core int, unit int16) {
		tid := chromeTid(unit)
		key := [2]int{core, tid}
		if named[key] {
			return
		}
		named[key] = true
		label := UnitName(unit)
		if unit >= 0 {
			label = fmt.Sprintf("thread %d", unit)
		}
		t.TraceEvents = append(t.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: core, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("core %d", core)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: core, Tid: tid,
				Args: map[string]any{"name": label}})
	}

	if tr != nil {
		for _, e := range tr.Events() {
			nameTrack(int(e.Core), e.Unit)
			ce := chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				S:    "t",
				Ts:   e.Cycle,
				Pid:  int(e.Core),
				Tid:  chromeTid(e.Unit),
				Cat:  UnitName(e.Unit),
				Args: eventArgs(e),
			}
			// Events that know their completion cycle render as duration
			// slices so latency is visible on the timeline.
			if (e.Kind == EvRALoad || e.Kind == EvCacheMiss) && e.B > e.Cycle {
				d := e.B - e.Cycle
				ce.Ph, ce.S, ce.Dur = "X", "", &d
			}
			t.TraceEvents = append(t.TraceEvents, ce)
		}
	}

	if sm != nil {
		// prevSlots holds the previous sample's cumulative slot counters per
		// core, so the CPI-stack counter track shows per-interval rates.
		prevSlots := map[int][]uint64{}
		for _, s := range sm.Samples() {
			t.TraceEvents = append(t.TraceEvents, chromeEvent{
				Name: "committed", Ph: "C", Ts: s.Cycle, Pid: 0, Tid: 0,
				Args: map[string]any{"instructions": s.Committed},
			})
			for ci, c := range s.Cores {
				occ := map[string]any{}
				for qi, o := range c.QueueOcc {
					occ[fmt.Sprintf("q%d", qi)] = o
				}
				t.TraceEvents = append(t.TraceEvents,
					chromeEvent{Name: "queue occupancy", Ph: "C", Ts: s.Cycle, Pid: ci, Tid: 0, Args: occ},
					chromeEvent{Name: "qrm mapped regs", Ph: "C", Ts: s.Cycle, Pid: ci, Tid: 0,
						Args: map[string]any{"regs": c.MappedRegs}})
				if len(c.Slots) > 0 {
					stack := map[string]any{}
					prev := prevSlots[ci]
					for si, n := range c.Slots {
						if si < len(prev) {
							n -= prev[si]
						}
						stack[slotName(sm.SlotNames, si)] = n
					}
					prevSlots[ci] = c.Slots
					t.TraceEvents = append(t.TraceEvents,
						chromeEvent{Name: "cpi stack", Ph: "C", Ts: s.Cycle, Pid: ci, Tid: 0, Args: stack})
				}
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ValidateChromeTrace parses a trace document and performs basic sanity
// checks: it must decode, hold at least one non-metadata event, and every
// event needs a name and phase. It returns the number of non-metadata
// events and the set of categories seen (component types).
func ValidateChromeTrace(r io.Reader) (events int, cats map[string]int, err error) {
	var t chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return 0, nil, fmt.Errorf("telemetry: bad chrome trace: %w", err)
	}
	cats = map[string]int{}
	for _, e := range t.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return 0, nil, fmt.Errorf("telemetry: trace event missing name/ph: %+v", e)
		}
		if e.Ph == "M" {
			continue
		}
		events++
		if e.Cat != "" {
			cats[e.Cat]++
		}
	}
	if events == 0 {
		return 0, nil, fmt.Errorf("telemetry: trace holds no events")
	}
	return events, cats, nil
}
