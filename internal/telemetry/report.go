// The canonical machine-readable run report. One schema is shared by
// cmd/pipette-sim (-json), cmd/pipette-bench (-report-out) and the
// experiment harness, so benchmark trajectories and EXPERIMENTS.md tables
// derive from the same data.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Schema identifiers embedded in emitted documents. v2 adds the optional
// cycle-accounting sections (cpi_stacks, queue_hist); v1 documents remain
// valid and are still accepted by the validators.
const (
	ReportSchemaV1 = "pipette.report/v1"
	ReportSchema   = "pipette.report/v2"
	RunSetSchema   = "pipette.runset/v1"
)

// CPIReport is the Fig. 11 cycle breakdown as fractions of total cycles.
type CPIReport struct {
	Issue   float64 `json:"issue"`
	Backend float64 `json:"backend"`
	Queue   float64 `json:"queue"`
	Front   float64 `json:"front"`
}

// CoreReport is one core's end-of-run counters.
type CoreReport struct {
	Committed      uint64    `json:"committed"`
	Uops           uint64    `json:"uops"`
	IPC            float64   `json:"ipc"`
	Branches       uint64    `json:"branches"`
	Mispredicts    uint64    `json:"mispredicts"`
	CVTraps        uint64    `json:"cv_traps"`
	EnqTraps       uint64    `json:"enq_traps"`
	SkipOps        uint64    `json:"skip_ops"`
	SkipDiscard    uint64    `json:"skip_discard"`
	Enqueues       uint64    `json:"enqueues"`
	Dequeues       uint64    `json:"dequeues"`
	RegReads       uint64    `json:"reg_reads"`
	RegWrites      uint64    `json:"reg_writes"`
	CPI            CPIReport `json:"cpi_stack"`
	MeanMappedRegs float64   `json:"mean_mapped_regs"`
	PeakMappedRegs uint64    `json:"peak_mapped_regs"`
	PerThread      []uint64  `json:"per_thread_committed"`
}

// CacheReport is the hierarchy's end-of-run counters plus MPKI (DRAM
// accesses per kilo-instruction).
type CacheReport struct {
	L1Hits        uint64  `json:"l1_hits"`
	L2Hits        uint64  `json:"l2_hits"`
	L3Hits        uint64  `json:"l3_hits"`
	DRAMAccesses  uint64  `json:"dram_accesses"`
	Prefetches    uint64  `json:"prefetches"`
	Writebacks    uint64  `json:"writebacks"`
	Invalidations uint64  `json:"invalidations"`
	MPKI          float64 `json:"mpki"`
}

// EnergyReport is the Fig. 12 energy decomposition in picojoules.
type EnergyReport struct {
	CoreDyn  float64 `json:"core_dyn"`
	CacheDyn float64 `json:"cache_dyn"`
	DRAMDyn  float64 `json:"dram_dyn"`
	Static   float64 `json:"static"`
	Total    float64 `json:"total"`
}

// CPIStackReport is one core's exhaustive issue-slot attribution (v2,
// Top-Down style): Slots maps category name to slot count, and the counts
// must sum exactly to Cycles × Width (the conservation invariant the
// validator enforces).
type CPIStackReport struct {
	Core   int               `json:"core"`
	Width  int               `json:"width"`
	Cycles uint64            `json:"cycles"`
	Slots  map[string]uint64 `json:"slots"`
}

// QueueHistReport is one queue's cycle-weighted occupancy histogram (v2).
// Counts[o] is the number of cycles the queue held exactly o entries;
// the counts sum to the owning core's profiled cycles.
type QueueHistReport struct {
	Core      int      `json:"core"`
	Queue     int      `json:"queue"`
	HighWater int      `json:"high_water"`
	Counts    []uint64 `json:"counts"`
}

// ThreadStallHist is one thread's sampled stall-reason distribution.
type ThreadStallHist struct {
	Core   int               `json:"core"`
	Thread int               `json:"thread"`
	Ticks  map[string]uint64 `json:"ticks"` // reason name -> sample ticks
}

// TelemetryReport summarizes what the tracer and sampler captured.
type TelemetryReport struct {
	Events         uint64            `json:"events"`
	DroppedEvents  uint64            `json:"dropped_events"`
	Samples        int               `json:"samples"`
	SampleInterval uint64            `json:"sample_interval"`
	StallHist      []ThreadStallHist `json:"stall_hist,omitempty"`
}

// SpecReport is the speculative-epoch accounting section (-speculate runs
// only): how the run's cycles were produced. It mirrors profile.SpecStats;
// the validator enforces the same conservation invariants, so a report
// whose epochs leaked or double-counted cycles is rejected.
type SpecReport struct {
	Epochs          uint64 `json:"epochs"`
	Commits         uint64 `json:"commits"`
	Aborts          uint64 `json:"aborts"`
	CommittedCycles uint64 `json:"committed_cycles"`
	AbortedCycles   uint64 `json:"aborted_cycles"`
	RerunCycles     uint64 `json:"rerun_cycles"`
	BarrierCycles   uint64 `json:"barrier_cycles"`
	FFCycles        uint64 `json:"ff_cycles"`
	TotalCycles     uint64 `json:"total_cycles"`
}

// validate checks the speculation section's conservation invariants.
func (s *SpecReport) validate() error {
	if s == nil {
		return nil
	}
	if s.Commits+s.Aborts != s.Epochs {
		return fmt.Errorf("speculation: commits %d + aborts %d != epochs %d",
			s.Commits, s.Aborts, s.Epochs)
	}
	if got := s.CommittedCycles + s.RerunCycles + s.BarrierCycles + s.FFCycles; got != s.TotalCycles {
		return fmt.Errorf("speculation: committed %d + rerun %d + barrier %d + ff %d = %d cycles, want total %d",
			s.CommittedCycles, s.RerunCycles, s.BarrierCycles, s.FFCycles, got, s.TotalCycles)
	}
	return nil
}

// Report is the canonical run report.
type Report struct {
	Schema    string           `json:"schema"`
	App       string           `json:"app,omitempty"`
	Variant   string           `json:"variant,omitempty"`
	Input     string           `json:"input,omitempty"`
	Seed      int64            `json:"seed,omitempty"` // base RNG seed the inputs were generated from
	Cores     int              `json:"cores"`
	Cycles    uint64           `json:"cycles"`
	Committed uint64           `json:"committed"`
	IPC       float64          `json:"ipc"`
	CoreStats []CoreReport     `json:"core_stats"`
	Cache     CacheReport      `json:"cache"`
	Energy    *EnergyReport    `json:"energy,omitempty"`
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
	Error     string           `json:"error,omitempty"`

	// Cycle-accounting sections (schema v2, profiling runs only).
	CPIStacks []CPIStackReport  `json:"cpi_stacks,omitempty"`
	QueueHist []QueueHistReport `json:"queue_hist,omitempty"`

	// Speculative-epoch accounting (schema v2, -speculate runs only).
	// Speculation never changes simulated results — this records how the
	// run executed, like WallSeconds, not what it computed.
	Speculation *SpecReport `json:"speculation,omitempty"`

	// Sweep-execution provenance: how long the cell's simulation took and
	// whether it was replayed from the sweep result cache. Neither field
	// affects (or is derived from) the simulated result.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	FromCache   bool    `json:"from_cache,omitempty"`
}

// SweepFailure records one evaluation cell that failed, keyed by its
// identity so a partial sweep stays diagnosable.
type SweepFailure struct {
	App     string `json:"app"`
	Variant string `json:"variant"`
	Input   string `json:"input"`
	Error   string `json:"error"`
}

// SweepReport describes how a run set was produced by the parallel sweep
// engine: worker count, shard assignment, cache effectiveness, total wall
// time, and any isolated per-cell failures.
type SweepReport struct {
	Jobs        int     `json:"jobs"`
	Shard       int     `json:"shard"`
	Shards      int     `json:"shards"`
	Cells       int     `json:"cells"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	SimCycles   uint64  `json:"sim_cycles,omitempty"` // ROI cycles simulated for computed cells
	WallSeconds float64 `json:"wall_seconds"`

	// Fork-after-warmup accounting (zero when the sweep ran cold): how many
	// warm-cache snapshots were simulated, how many cells reused one, and
	// the total simulated warmup-prefix cycles. Comparing sim_cycles +
	// warmup_cycles against a cold sweep's sim_cycles shows the saving.
	WarmupSnapshots int    `json:"warmup_snapshots,omitempty"`
	WarmupReuses    int    `json:"warmup_reuses,omitempty"`
	WarmupCycles    uint64 `json:"warmup_cycles,omitempty"`

	Failures []SweepFailure `json:"failures,omitempty"`
}

// validate checks the sweep section's internal consistency.
func (s *SweepReport) validate() error {
	if s == nil {
		return nil
	}
	if s.Jobs < 1 {
		return fmt.Errorf("sweep jobs = %d", s.Jobs)
	}
	if s.Shards < 1 || s.Shard < 0 || s.Shard >= s.Shards {
		return fmt.Errorf("sweep shard %d/%d out of range", s.Shard, s.Shards)
	}
	if s.CacheHits < 0 || s.CacheMisses < 0 || s.Cells < 0 {
		return fmt.Errorf("sweep counts negative (cells %d, hits %d, misses %d)",
			s.Cells, s.CacheHits, s.CacheMisses)
	}
	// Fail-fast sweeps may skip cells, so completed + failed can fall
	// short of the shard's cell count but never exceed it.
	if done := s.CacheHits + s.CacheMisses + len(s.Failures); done > s.Cells {
		return fmt.Errorf("sweep completed %d cells of %d", done, s.Cells)
	}
	if s.WallSeconds < 0 {
		return fmt.Errorf("sweep wall_seconds = %f", s.WallSeconds)
	}
	if s.WarmupSnapshots < 0 || s.WarmupReuses < 0 {
		return fmt.Errorf("sweep warmup counts negative (%d snapshots, %d reuses)",
			s.WarmupSnapshots, s.WarmupReuses)
	}
	return nil
}

// RunSet is a collection of reports (one per benchmark cell), the shape
// pipette-bench emits.
type RunSet struct {
	Schema string       `json:"schema"`
	Label  string       `json:"label,omitempty"` // e.g. experiment names
	Runs   []Report     `json:"runs"`
	Sweep  *SweepReport `json:"sweep,omitempty"` // how the sweep executed
}

// TelemetrySummary builds the telemetry section from a tracer and/or
// sampler (either may be nil). stallNames maps core.StallReason values to
// histogram keys.
func TelemetrySummary(tr *Tracer, sm *Sampler, stallNames []string) *TelemetryReport {
	if tr == nil && sm == nil {
		return nil
	}
	t := &TelemetryReport{}
	if tr != nil {
		t.Events = tr.Total()
		t.DroppedEvents = tr.Dropped()
	}
	if sm != nil {
		t.Samples = len(sm.Samples())
		t.SampleInterval = sm.Interval
		for ci, threads := range sm.StallHist() {
			for ti, reasons := range threads {
				h := ThreadStallHist{Core: ci, Thread: ti, Ticks: map[string]uint64{}}
				for r, n := range reasons {
					if n > 0 {
						h.Ticks[stallName(stallNames, uint8(r))] = n
					}
				}
				t.StallHist = append(t.StallHist, h)
			}
		}
	}
	return t
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteJSON renders the run set as indented JSON.
func (rs RunSet) WriteJSON(w io.Writer) error {
	if rs.Schema == "" {
		rs.Schema = RunSetSchema
	}
	if rs.Runs == nil {
		rs.Runs = []Report{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rs)
}

// validate applies the semantic checks shared by single reports and run
// sets.
func (r Report) validate() error {
	switch r.Schema {
	case ReportSchema:
	case ReportSchemaV1:
		if len(r.CPIStacks) > 0 || len(r.QueueHist) > 0 || r.Speculation != nil {
			return fmt.Errorf("schema %q carries v2 cycle-accounting sections (need %q)",
				r.Schema, ReportSchema)
		}
	default:
		return fmt.Errorf("unsupported report schema version %q (supported: %q, %q)",
			r.Schema, ReportSchemaV1, ReportSchema)
	}
	if r.Cores <= 0 {
		return fmt.Errorf("cores = %d", r.Cores)
	}
	if len(r.CoreStats) != r.Cores {
		return fmt.Errorf("core_stats has %d entries for %d cores", len(r.CoreStats), r.Cores)
	}
	if r.Error == "" {
		if r.Cycles == 0 {
			return fmt.Errorf("successful run with cycles = 0")
		}
		if r.Committed == 0 {
			return fmt.Errorf("successful run with committed = 0")
		}
	}
	var sum uint64
	for i, c := range r.CoreStats {
		sum += c.Committed
		st := c.CPI
		if f := st.Issue + st.Backend + st.Queue + st.Front; f < 0 || f > 1.0001 {
			return fmt.Errorf("core %d: CPI-stack fractions sum to %f", i, f)
		}
	}
	if sum != r.Committed {
		return fmt.Errorf("per-core committed sums to %d, report says %d", sum, r.Committed)
	}
	if r.IPC < 0 {
		return fmt.Errorf("ipc = %f", r.IPC)
	}
	if r.WallSeconds < 0 {
		return fmt.Errorf("wall_seconds = %f", r.WallSeconds)
	}
	cycles := map[int]uint64{} // profiled cycles per core, for queue_hist
	for i, st := range r.CPIStacks {
		if st.Core < 0 || st.Core >= r.Cores {
			return fmt.Errorf("cpi_stacks[%d]: core %d out of range", i, st.Core)
		}
		if st.Width <= 0 {
			return fmt.Errorf("cpi_stacks[%d]: width = %d", i, st.Width)
		}
		var slots uint64
		for _, n := range st.Slots {
			slots += n
		}
		// The conservation invariant: every issue slot of every profiled
		// cycle is attributed to exactly one category.
		if want := st.Cycles * uint64(st.Width); slots != want {
			return fmt.Errorf("cpi_stacks[%d] (core %d): slots sum to %d, want cycles×width = %d",
				i, st.Core, slots, want)
		}
		cycles[st.Core] = st.Cycles
	}
	for i, qh := range r.QueueHist {
		if qh.Core < 0 || qh.Core >= r.Cores {
			return fmt.Errorf("queue_hist[%d]: core %d out of range", i, qh.Core)
		}
		var n uint64
		for _, c := range qh.Counts {
			n += c
		}
		// Histograms only ever accompany a slot account for the same core,
		// and must cover exactly its profiled cycles.
		want, ok := cycles[qh.Core]
		if !ok {
			return fmt.Errorf("queue_hist[%d]: core %d has no cpi_stacks entry", i, qh.Core)
		}
		if n != want {
			return fmt.Errorf("queue_hist[%d] (core %d q%d): counts sum to %d, want %d cycles",
				i, qh.Core, qh.Queue, n, want)
		}
		if hw := len(qh.Counts) - 1; qh.HighWater != hw {
			return fmt.Errorf("queue_hist[%d] (core %d q%d): high_water %d, counts imply %d",
				i, qh.Core, qh.Queue, qh.HighWater, hw)
		}
	}
	if err := r.Speculation.validate(); err != nil {
		return err
	}
	return nil
}

// ValidateReport parses and checks one report document: known schema,
// structurally well-formed (unknown fields rejected), and internally
// consistent. CI's smoke run gates on it.
func ValidateReport(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("telemetry: bad report: %w", err)
	}
	if err := r.validate(); err != nil {
		return r, fmt.Errorf("telemetry: invalid report: %w", err)
	}
	return r, nil
}

// ValidateRunSet parses and checks a run-set document.
func ValidateRunSet(rd io.Reader) (RunSet, error) {
	var rs RunSet
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rs); err != nil {
		return rs, fmt.Errorf("telemetry: bad run set: %w", err)
	}
	if rs.Schema != RunSetSchema {
		return rs, fmt.Errorf("telemetry: run-set schema %q, want %q", rs.Schema, RunSetSchema)
	}
	if err := rs.Sweep.validate(); err != nil {
		return rs, fmt.Errorf("telemetry: invalid run set: %w", err)
	}
	for i, r := range rs.Runs {
		if err := r.validate(); err != nil {
			return rs, fmt.Errorf("telemetry: invalid run %d (%s/%s/%s): %w", i, r.App, r.Variant, r.Input, err)
		}
	}
	return rs, nil
}
