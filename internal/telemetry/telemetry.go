// Package telemetry is the observability substrate of the simulator: a
// zero-cost-when-disabled event tracer (exported as Chrome trace-event JSON
// so whole runs open in ui.perfetto.dev), a cycle-sampling metrics collector
// with CSV/JSON sinks, and the canonical machine-readable run report emitted
// by cmd/pipette-sim, cmd/pipette-bench and the experiment harness.
//
// The package is a dependency leaf: it imports nothing from the simulator so
// that every modeled component (core, queue, ra, connector, cache, sim) can
// hold a concrete *Tracer pointer and emit events through direct,
// interface-free calls guarded by a nil check. With no tracer attached the
// hot paths pay only that nil check (see BenchmarkTelemetryOverhead).
package telemetry

// Kind classifies one traced pipeline event.
type Kind uint8

// Event kinds. A and B are kind-specific payloads (documented per kind).
const (
	EvNone      Kind = iota
	EvEnqueue        // queue enqueue: A=queue id, B=value
	EvDequeue        // queue dequeue: A=queue id, B=value
	EvCVTrap         // control-value dequeue trap: A=queue id, B=CV value
	EvEnqTrap        // enqueue-handler trap: A=queue id
	EvSkip           // skip_to_ctrl consumed a CV: A=queue id, B=data entries skipped
	EvRedirect       // frontend redirect: A=0 mispredict / 1 trap, B=resume cycle
	EvRALoad         // RA indirect load issued: A=address, B=completion cycle
	EvRACV           // RA forwarded a control value: A=output queue id, B=value
	EvConnSend       // connector hop: A=dst core<<8|dst queue, B=value
	EvCacheMiss      // L1 miss: A=level that served it (1=L2,2=L3,3=DRAM), B=completion cycle
	numKinds
)

// String names the event kind (also the Chrome trace event name).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

var kindNames = [...]string{
	"none", "enqueue", "dequeue", "cv-trap", "enq-trap", "skip",
	"redirect", "ra-load", "ra-cv", "conn-send", "cache-miss",
}

// Units identify the non-thread hardware that emits events; hardware thread
// events use the thread id (>= 0) directly.
const (
	UnitQueue     = -1 // QRM-level queue activity
	UnitRA        = -2 // reference accelerator
	UnitConnector = -3 // cross-core connector
	UnitCache     = -4 // cache port
)

// UnitName renders a unit id for reports and trace metadata.
func UnitName(u int16) string {
	switch u {
	case UnitQueue:
		return "qrm"
	case UnitRA:
		return "ra"
	case UnitConnector:
		return "connector"
	case UnitCache:
		return "cache"
	}
	return "thread"
}

// Event is one fixed-size trace record.
type Event struct {
	Cycle uint64
	A, B  uint64
	Kind  Kind
	Core  int16
	Unit  int16 // hardware thread id, or a Unit* constant
}

// Tracer records events into a fixed-capacity ring buffer. It is written by
// the single simulation goroutine; Emit never allocates and the buffer wraps
// (oldest events are dropped) so arbitrarily long runs stay bounded.
//
// Cycle is the tracer's clock: the simulation loop (sim.Run, or Core.Cycle
// for cores driven standalone) stores the current cycle there once per
// cycle, so emitters do not need to thread `now` through every call site.
type Tracer struct {
	Cycle uint64 // current cycle, maintained by the simulation loop

	buf  []Event
	mask uint64
	n    uint64 // total events ever emitted

	// stage, when non-nil, receives every emitted event instead of the ring
	// (see NewStaged): the deferred execution mode gives each core a staged
	// tracer whose sink appends into the core's private per-cycle operation
	// log, so parallel produce phases never touch the shared ring. direct is
	// the shared ring behind it; Passthrough(true) routes emissions there
	// (used during the sequential commit phase, e.g. connector ticks).
	stage       func(Event)
	direct      *Tracer
	passthrough bool
}

// DefaultTraceCap is the default ring capacity (events).
const DefaultTraceCap = 1 << 18

// NewTracer builds a tracer whose ring holds at least capacity events
// (rounded up to a power of two; <= 0 selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Tracer{buf: make([]Event, c), mask: uint64(c - 1)}
}

// NewStaged builds a tracer that forwards every emission to sink instead of
// recording it, stamped with the staged tracer's own Cycle. direct is the
// shared tracer the staged events are eventually replayed into; while
// Passthrough(true) is set, emissions bypass the sink and go straight to it
// (both tracers' Cycle fields are kept equal by the simulation loop during
// a commit phase, so the stamp is identical either way).
func NewStaged(direct *Tracer, sink func(Event)) *Tracer {
	return &Tracer{stage: sink, direct: direct}
}

// Passthrough routes a staged tracer's emissions directly to the shared
// tracer (true) or back through its staging sink (false). No-op on an
// ordinary (ring) tracer.
func (t *Tracer) Passthrough(on bool) { t.passthrough = on }

// Emit records one event at the tracer's current cycle.
func (t *Tracer) Emit(kind Kind, core, unit int16, a, b uint64) {
	e := Event{Cycle: t.Cycle, A: a, B: b, Kind: kind, Core: core, Unit: unit}
	if t.stage != nil {
		if t.passthrough {
			t.direct.Replay(e)
			return
		}
		t.stage(e)
		return
	}
	t.buf[t.n&t.mask] = e
	t.n++
}

// Replay records an already-stamped event (a staged event being merged into
// the shared ring during a commit phase) without restamping its cycle.
func (t *Tracer) Replay(e Event) {
	t.buf[t.n&t.mask] = e
	t.n++
}

// Len returns the number of events currently held (<= ring capacity).
func (t *Tracer) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 { return t.n }

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t.n < uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first. The slice is freshly
// allocated; call once at end of run.
func (t *Tracer) Events() []Event {
	n := uint64(t.Len())
	out := make([]Event, n)
	start := t.n - n
	for i := uint64(0); i < n; i++ {
		out[i] = t.buf[(start+i)&t.mask]
	}
	return out
}
