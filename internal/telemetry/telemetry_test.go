package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a small deterministic tracer + sampler covering every
// event kind and two samples.
func fixture() (*Tracer, *Sampler) {
	tr := NewTracer(64)
	tr.Cycle = 10
	tr.Emit(EvEnqueue, 0, UnitQueue, 2, 77)
	tr.Emit(EvDequeue, 0, UnitQueue, 2, 77)
	tr.Cycle = 12
	tr.Emit(EvCVTrap, 0, UnitQueue, 2, 0xFFFF)
	tr.Emit(EvEnqTrap, 0, UnitQueue, 3, 0)
	tr.Emit(EvSkip, 0, UnitQueue, 2, 5)
	tr.Cycle = 20
	tr.Emit(EvRedirect, 0, 1, 0, 24)
	tr.Emit(EvRALoad, 0, UnitRA, 0x1000, 46) // duration event: 26 cycles
	tr.Emit(EvRACV, 0, UnitRA, 4, 0xFFFF)
	tr.Cycle = 21
	tr.Emit(EvConnSend, 0, UnitConnector, 1<<8|5, 99)
	tr.Emit(EvCacheMiss, 1, UnitCache, 3, 260) // DRAM, done at 260

	sm := NewSampler(16)
	sm.Append(Sample{
		Cycle: 16, Committed: 10,
		Cores: []CoreSample{{
			Committed: 10, MappedRegs: 4, IQLen: 2,
			QueueOcc: []int{3, 0}, Stall: []uint8{0, 2}, ROBUsed: []int{8, 1},
		}},
		Cache: CacheSample{L1Hits: 5, DRAM: 1},
	})
	sm.Append(Sample{
		Cycle: 32, Committed: 42,
		Cores: []CoreSample{{
			Committed: 42, MappedRegs: 6, IQLen: 0,
			QueueOcc: []int{1, 2}, Stall: []uint8{2, 0}, ROBUsed: []int{0, 3},
		}},
		Cache: CacheSample{L1Hits: 20, L2Hits: 3, DRAM: 2},
	})
	return tr, sm
}

var testStallNames = []string{"none", "halted", "queue-empty"}

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3) // rounds up to 4
	for i := 0; i < 10; i++ {
		tr.Cycle = uint64(i)
		tr.Emit(EvEnqueue, 0, UnitQueue, uint64(i), 0)
	}
	if tr.Total() != 10 || tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d", tr.Total(), tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.A != want || e.Cycle != want {
			t.Errorf("event %d: A=%d cycle=%d, want %d (oldest-first)", i, e.A, e.Cycle, want)
		}
	}
}

func TestKindAndUnitNames(t *testing.T) {
	if int(numKinds) != len(kindNames) {
		t.Fatalf("numKinds=%d, kindNames has %d", numKinds, len(kindNames))
	}
	if EvCacheMiss.String() != "cache-miss" || Kind(200).String() != "?" {
		t.Fatal("Kind.String broken")
	}
	for u, want := range map[int16]string{
		UnitQueue: "qrm", UnitRA: "ra", UnitConnector: "connector",
		UnitCache: "cache", 0: "thread", 3: "thread",
	} {
		if got := UnitName(u); got != want {
			t.Errorf("UnitName(%d) = %q, want %q", u, got, want)
		}
	}
}

func TestStallHist(t *testing.T) {
	_, sm := fixture()
	h := sm.StallHist()
	if len(h) != 1 || len(h[0]) != 2 {
		t.Fatalf("hist shape %v", h)
	}
	// Thread 0 saw reasons {0, 2}; thread 1 saw {2, 0}.
	if h[0][0][0] != 1 || h[0][0][2] != 1 || h[0][1][0] != 1 || h[0][1][2] != 1 {
		t.Fatalf("hist counts %v", h)
	}
}

func TestMetricsCSVGolden(t *testing.T) {
	_, sm := fixture()
	var b bytes.Buffer
	if err := sm.WriteCSV(&b, testStallNames); err != nil {
		t.Fatal(err)
	}
	golden(t, "metrics.csv", b.Bytes())
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	_, sm := fixture()
	var b bytes.Buffer
	if err := sm.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "metrics.json", b.Bytes())

	interval, samples, err := ReadMetricsJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if interval != 16 || len(samples) != 2 {
		t.Fatalf("interval=%d samples=%d", interval, len(samples))
	}
	if samples[1].Cores[0].QueueOcc[1] != 2 || samples[1].Cache.L2Hits != 3 {
		t.Fatalf("round-trip lost data: %+v", samples[1])
	}
	// Unknown fields are rejected.
	if _, _, err := ReadMetricsJSON(strings.NewReader(
		`{"schema":"pipette.metrics/v1","interval":1,"samples":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Wrong schema is rejected.
	if _, _, err := ReadMetricsJSON(strings.NewReader(
		`{"schema":"pipette.metrics/v999","interval":1,"samples":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr, sm := fixture()
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr, sm); err != nil {
		t.Fatal(err)
	}
	golden(t, "trace.json", b.Bytes())

	n, cats, err := ValidateChromeTrace(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 10 instant/duration events + 2 samples * (1 committed + 2 core counters).
	if n != 16 {
		t.Fatalf("got %d events", n)
	}
	for _, c := range []string{"qrm", "ra", "connector", "cache", "thread"} {
		if cats[c] == 0 {
			t.Errorf("category %q missing from %v", c, cats)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":  `{`,
		"no events": `{"traceEvents":[]}`,
		"bad event": `{"traceEvents":[{"ph":"i"}]}`,
	} {
		if _, _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// goodReport is a minimal internally-consistent report.
func goodReport() Report {
	return Report{
		Schema: ReportSchema, App: "bfs", Variant: "pipette", Input: "Rd",
		Cores: 1, Cycles: 100, Committed: 50, IPC: 0.5,
		CoreStats: []CoreReport{{Committed: 50, IPC: 0.5,
			CPI: CPIReport{Issue: 0.5, Backend: 0.3, Queue: 0.1, Front: 0.1}}},
	}
}

func TestReportRoundTrip(t *testing.T) {
	tr, sm := fixture()
	r := goodReport()
	r.Telemetry = TelemetrySummary(tr, sm, testStallNames)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "report.json", b.Bytes())

	got, err := ValidateReport(&b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Telemetry == nil || got.Telemetry.Events != 10 || len(got.Telemetry.StallHist) != 2 {
		t.Fatalf("telemetry section lost: %+v", got.Telemetry)
	}
}

func TestValidateReportRejects(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":  func(r *Report) { r.Schema = "bogus" },
		"zero cores":    func(r *Report) { r.Cores = 0 },
		"core mismatch": func(r *Report) { r.Cores = 2 },
		"zero cycles":   func(r *Report) { r.Cycles = 0 },
		"commit sum":    func(r *Report) { r.CoreStats[0].Committed = 1 },
		"cpi fractions": func(r *Report) { r.CoreStats[0].CPI.Issue = 2 },
		"negative ipc":  func(r *Report) { r.IPC = -1 },
		"negative wall": func(r *Report) { r.WallSeconds = -0.5 },
	}
	for name, mutate := range cases {
		r := goodReport()
		mutate(&r)
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateReport(&b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A failed run may legitimately have zero cycles.
	r := goodReport()
	r.Cycles, r.Committed, r.CoreStats[0].Committed = 0, 0, 0
	r.Error = "sim: deadlock"
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateReport(&b); err != nil {
		t.Errorf("failed-run report rejected: %v", err)
	}
	// Unknown fields are rejected.
	if _, err := ValidateReport(strings.NewReader(`{"schema":"pipette.report/v1","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// goodV2Report is a goodReport carrying internally-consistent
// cycle-accounting sections: slots sum to cycles x width and the queue
// histogram accounts for exactly the profiled cycles.
func goodV2Report() Report {
	r := goodReport()
	r.CPIStacks = []CPIStackReport{{
		Core: 0, Width: 4, Cycles: 100,
		Slots: map[string]uint64{"retired": 50, "backend": 250, "queue-empty": 100},
	}}
	r.QueueHist = []QueueHistReport{{
		Core: 0, Queue: 0, HighWater: 2, Counts: []uint64{60, 30, 10},
	}}
	return r
}

// TestReportSchemaVersions covers the v1/v2 version policy: both known
// versions validate, v1 may not carry v2 sections, and unknown versions in
// the family are rejected with an error naming the supported ones.
func TestReportSchemaVersions(t *testing.T) {
	roundTrip := func(r Report) error {
		t.Helper()
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		_, err := ValidateReport(&b)
		return err
	}

	v1 := goodReport()
	v1.Schema = ReportSchemaV1
	if err := roundTrip(v1); err != nil {
		t.Errorf("v1 report rejected: %v", err)
	}
	if err := roundTrip(goodV2Report()); err != nil {
		t.Errorf("v2 report rejected: %v", err)
	}

	down := goodV2Report()
	down.Schema = ReportSchemaV1
	if err := roundTrip(down); err == nil {
		t.Error("v1 schema carrying cpi_stacks accepted")
	}

	future := goodReport()
	future.Schema = "pipette.report/v3"
	err := roundTrip(future)
	if err == nil {
		t.Fatal("unknown schema version accepted")
	}
	for _, want := range []string{"pipette.report/v3", ReportSchemaV1, ReportSchema} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version error %q does not name %q", err, want)
		}
	}
}

// TestReportConservationValidation covers the v2 semantic checks: the slot
// account must conserve (sum to cycles x width), and queue histograms must
// account for exactly the owning core's profiled cycles with a matching
// high-water mark.
func TestReportConservationValidation(t *testing.T) {
	cases := map[string]func(*Report){
		"slot leak":           func(r *Report) { r.CPIStacks[0].Slots["backend"]++ },
		"slot loss":           func(r *Report) { r.CPIStacks[0].Slots["retired"] = 1 },
		"stack core range":    func(r *Report) { r.CPIStacks[0].Core = 5 },
		"hist core range":     func(r *Report) { r.QueueHist[0].Core = 5 },
		"hist undercount":     func(r *Report) { r.QueueHist[0].Counts[0] = 1 },
		"high-water mismatch": func(r *Report) { r.QueueHist[0].HighWater = 1 },
		"hist without stack":  func(r *Report) { r.CPIStacks = nil },
	}
	for name, mutate := range cases {
		r := goodV2Report()
		mutate(&r)
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateReport(&b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSetRoundTrip(t *testing.T) {
	rs := RunSet{Schema: RunSetSchema, Label: "all", Runs: []Report{goodReport(), goodReport()}}
	var b bytes.Buffer
	if err := rs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunSet(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Label != "all" {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	// A bad member report fails the whole set.
	rs.Runs[1].Committed = 999
	b.Reset()
	if err := rs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunSet(&b); err == nil {
		t.Fatal("inconsistent member accepted")
	}
}

func TestRunSetSweepSection(t *testing.T) {
	run := goodReport()
	run.WallSeconds, run.FromCache = 0.25, true
	rs := RunSet{Schema: RunSetSchema, Runs: []Report{run},
		Sweep: &SweepReport{Jobs: 4, Shard: 1, Shards: 2, Cells: 3, CacheHits: 1, CacheMisses: 1,
			WallSeconds: 1.5,
			Failures:    []SweepFailure{{App: "bfs", Variant: "pipette", Input: "Rd", Error: "boom"}}}}
	var b bytes.Buffer
	if err := rs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunSet(&b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep == nil || got.Sweep.Jobs != 4 || len(got.Sweep.Failures) != 1 ||
		!got.Runs[0].FromCache || got.Runs[0].WallSeconds != 0.25 {
		t.Fatalf("sweep section lost: %+v", got)
	}

	bad := map[string]func(*SweepReport){
		"zero jobs":     func(s *SweepReport) { s.Jobs = 0 },
		"shard range":   func(s *SweepReport) { s.Shard = 2 },
		"zero shards":   func(s *SweepReport) { s.Shards = 0 },
		"overcount":     func(s *SweepReport) { s.Cells = 1 },
		"negative wall": func(s *SweepReport) { s.WallSeconds = -1 },
		"negative hits": func(s *SweepReport) { s.CacheHits = -1; s.Cells = 99 },
	}
	for name, mutate := range bad {
		rs := RunSet{Schema: RunSetSchema, Runs: []Report{goodReport()},
			Sweep: &SweepReport{Jobs: 4, Shard: 1, Shards: 2, Cells: 3, CacheHits: 1, CacheMisses: 1, WallSeconds: 1}}
		mutate(rs.Sweep)
		var b bytes.Buffer
		if err := rs.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateRunSet(&b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFormatSnapshot(t *testing.T) {
	_, sm := fixture()
	last, ok := sm.Last()
	if !ok {
		t.Fatal("no samples")
	}
	s := FormatSnapshot(last, testStallNames)
	for _, want := range []string{"@32", "committed=42", "q0=1 q1=2", "t0 stall=queue-empty", "t1 stall=none rob=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Out-of-range reasons fall back to a numeric name.
	s = FormatSnapshot(Sample{Cores: []CoreSample{{Stall: []uint8{9}}}}, testStallNames)
	if !strings.Contains(s, "stall=stall9") {
		t.Errorf("missing fallback name in:\n%s", s)
	}
}
