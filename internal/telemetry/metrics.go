// Sampling metrics collector: the simulation loop appends one Sample every
// Interval cycles; sinks render the series as CSV or JSON. Samples carry
// cumulative counters so sinks can derive both instantaneous occupancies and
// per-interval rates (interval IPC, MPKI).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CoreSample is one core's state at a sample point.
type CoreSample struct {
	Committed  uint64  `json:"committed"`   // cumulative instructions committed
	MappedRegs int     `json:"mapped_regs"` // physical registers held by the QRM
	IQLen      int     `json:"iq_len"`      // issue-queue entries in flight
	QueueOcc   []int   `json:"queue_occ"`   // per-queue live entries
	Stall      []uint8 `json:"stall"`       // per-thread StallReason (instantaneous)
	ROBUsed    []int   `json:"rob_used"`    // per-thread ROB entries

	// Slots is the cumulative issue-slot breakdown by cycle-accounting
	// category (indices follow profile.Category). Present only when
	// profiling is enabled alongside sampling.
	Slots []uint64 `json:"slots,omitempty"`
}

// CacheSample is the hierarchy's cumulative counters at a sample point.
type CacheSample struct {
	L1Hits     uint64 `json:"l1_hits"`
	L2Hits     uint64 `json:"l2_hits"`
	L3Hits     uint64 `json:"l3_hits"`
	DRAM       uint64 `json:"dram"`
	Prefetches uint64 `json:"prefetches"`
}

// Sample is one point of the run's time series.
type Sample struct {
	Cycle     uint64       `json:"cycle"`
	Committed uint64       `json:"committed"` // cumulative, all cores
	Cores     []CoreSample `json:"cores"`
	Cache     CacheSample  `json:"cache"`
}

// Sampler accumulates the time series plus a per-thread stall-reason
// histogram (each sample tick increments the bucket of the thread's current
// stall reason, approximating the time distribution at Interval resolution).
type Sampler struct {
	Interval uint64 // cycles between samples

	// SlotNames labels CoreSample.Slots indices for the CSV/JSON sinks
	// (pass profile.CategoryNames()). Empty when profiling is off.
	SlotNames []string

	// OnAppend, when non-nil, observes every sample as it is recorded.
	// It is called synchronously from the simulation loop, so it must be
	// cheap and must not block; live sinks (the pipette-server job
	// streams) hand the sample off to their own goroutine. The Sample and
	// its slices are freshly built per append and safe to retain.
	OnAppend func(Sample)

	samples []Sample
	// hist[core][thread][reason] counts sample ticks.
	hist [][][]uint64
}

// DefaultSampleInterval is the default sampling period in cycles.
const DefaultSampleInterval = 1024

// NewSampler builds a sampler with the given period (<= 0 selects
// DefaultSampleInterval).
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{Interval: interval}
}

// Append records one sample and updates the stall histogram.
func (s *Sampler) Append(sm Sample) {
	if s.OnAppend != nil {
		s.OnAppend(sm)
	}
	s.samples = append(s.samples, sm)
	for ci, c := range sm.Cores {
		for ci >= len(s.hist) {
			s.hist = append(s.hist, nil)
		}
		for ti, r := range c.Stall {
			for ti >= len(s.hist[ci]) {
				s.hist[ci] = append(s.hist[ci], nil)
			}
			for int(r) >= len(s.hist[ci][ti]) {
				s.hist[ci][ti] = append(s.hist[ci][ti], 0)
			}
			s.hist[ci][ti][r]++
		}
	}
}

// Samples returns the recorded series.
func (s *Sampler) Samples() []Sample { return s.samples }

// Last returns the most recent sample.
func (s *Sampler) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// StallHist returns [core][thread][reason] counts of sample ticks.
func (s *Sampler) StallHist() [][][]uint64 { return s.hist }

// stallName renders reason r using names (indices follow core.StallReason).
func stallName(names []string, r uint8) string {
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("stall%d", r)
}

// slotName renders slot index si using names (indices follow
// profile.Category).
func slotName(names []string, si int) string {
	if si < len(names) {
		return names[si]
	}
	return fmt.Sprintf("cat%d", si)
}

// WriteCSV renders the series as CSV: one row per sample with whole-system
// columns (interval IPC, MPKI = DRAM accesses per kilo-instruction in the
// interval) followed by per-core occupancy, per-queue occupancy and
// per-thread stall-reason columns. stallNames maps core.StallReason values
// to column values (pass core.StallNames()).
func (s *Sampler) WriteCSV(w io.Writer, stallNames []string) error {
	var b strings.Builder
	cols := []string{"cycle", "committed", "ipc", "mpki",
		"l1_hits", "l2_hits", "l3_hits", "dram", "prefetches"}
	if len(s.samples) > 0 {
		for ci, c := range s.samples[0].Cores {
			cols = append(cols,
				fmt.Sprintf("c%d_committed", ci),
				fmt.Sprintf("c%d_mapped_regs", ci),
				fmt.Sprintf("c%d_iq", ci))
			for qi := range c.QueueOcc {
				cols = append(cols, fmt.Sprintf("c%d_q%d_occ", ci, qi))
			}
			for ti := range c.Stall {
				cols = append(cols,
					fmt.Sprintf("c%d_t%d_stall", ci, ti),
					fmt.Sprintf("c%d_t%d_rob", ci, ti))
			}
			for si := range c.Slots {
				cols = append(cols, fmt.Sprintf("c%d_slot_%s", ci, slotName(s.SlotNames, si)))
			}
		}
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')

	var prev Sample
	for i, sm := range s.samples {
		dCycle := sm.Cycle - prev.Cycle
		dCommit := sm.Committed - prev.Committed
		dDRAM := sm.Cache.DRAM - prev.Cache.DRAM
		ipc, mpki := 0.0, 0.0
		if dCycle > 0 {
			ipc = float64(dCommit) / float64(dCycle)
		}
		if dCommit > 0 {
			mpki = 1000 * float64(dDRAM) / float64(dCommit)
		}
		fmt.Fprintf(&b, "%d,%d,%.4f,%.3f,%d,%d,%d,%d,%d",
			sm.Cycle, sm.Committed, ipc, mpki,
			sm.Cache.L1Hits, sm.Cache.L2Hits, sm.Cache.L3Hits,
			sm.Cache.DRAM, sm.Cache.Prefetches)
		for _, c := range sm.Cores {
			fmt.Fprintf(&b, ",%d,%d,%d", c.Committed, c.MappedRegs, c.IQLen)
			for _, occ := range c.QueueOcc {
				fmt.Fprintf(&b, ",%d", occ)
			}
			for ti, r := range c.Stall {
				rob := 0
				if ti < len(c.ROBUsed) {
					rob = c.ROBUsed[ti]
				}
				fmt.Fprintf(&b, ",%s,%d", stallName(stallNames, r), rob)
			}
			for _, n := range c.Slots {
				fmt.Fprintf(&b, ",%d", n)
			}
		}
		b.WriteByte('\n')
		prev = s.samples[i]
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// metricsJSON is the JSON sink envelope.
type metricsJSON struct {
	Schema    string   `json:"schema"`
	Interval  uint64   `json:"interval"`
	SlotNames []string `json:"slot_names,omitempty"`
	Samples   []Sample `json:"samples"`
}

// MetricsSchema identifies the JSON metrics envelope.
const MetricsSchema = "pipette.metrics/v1"

// WriteJSON renders the series as a JSON document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	samples := s.samples
	if samples == nil {
		samples = []Sample{}
	}
	return enc.Encode(metricsJSON{Schema: MetricsSchema, Interval: s.Interval, SlotNames: s.SlotNames, Samples: samples})
}

// ReadMetricsJSON parses a document written by WriteJSON (round-trip tests
// and external tooling).
func ReadMetricsJSON(r io.Reader) (interval uint64, samples []Sample, err error) {
	var m metricsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return 0, nil, err
	}
	if m.Schema != MetricsSchema {
		return 0, nil, fmt.Errorf("telemetry: metrics schema %q, want %q", m.Schema, MetricsSchema)
	}
	return m.Interval, m.Samples, nil
}

// FormatSnapshot renders one sample for human consumption (deadlock
// reports): per-core committed counts, queue occupancies and per-thread
// stall reasons.
func FormatSnapshot(sm Sample, stallNames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry snapshot @%d: committed=%d\n", sm.Cycle, sm.Committed)
	for ci, c := range sm.Cores {
		fmt.Fprintf(&b, "  core %d: committed=%d mapped-regs=%d iq=%d\n", ci, c.Committed, c.MappedRegs, c.IQLen)
		occ := ""
		for qi, o := range c.QueueOcc {
			if o > 0 {
				occ += fmt.Sprintf(" q%d=%d", qi, o)
			}
		}
		if occ != "" {
			fmt.Fprintf(&b, "    queue-occ:%s\n", occ)
		}
		for ti, r := range c.Stall {
			rob := 0
			if ti < len(c.ROBUsed) {
				rob = c.ROBUsed[ti]
			}
			fmt.Fprintf(&b, "    t%d stall=%s rob=%d\n", ti, stallName(stallNames, r), rob)
		}
	}
	return b.String()
}
