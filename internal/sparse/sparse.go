// Package sparse provides sparse matrices in CSR/CSC form, synthetic
// generators shaped like the paper's Table VI inputs, a reference
// inner-product SpMM, and layout into simulated memory.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"pipette/internal/isa"
	"pipette/internal/mem"
)

// Matrix is a square sparse matrix. CSR and CSC views are both materialized
// because inner-product SpMM streams rows of A against columns of B.
type Matrix struct {
	Name string
	N    int

	// CSR
	RowPtr []uint64 // N+1
	Cols   []uint64
	Vals   []float64

	// CSC
	ColPtr []uint64 // N+1
	Rows   []uint64
	CVals  []float64
}

// NNZ returns the number of stored non-zeros.
func (m *Matrix) NNZ() int { return len(m.Cols) }

// AvgNNZPerRow returns the Table VI metric.
func (m *Matrix) AvgNNZPerRow() float64 { return float64(m.NNZ()) / float64(m.N) }

type triplet struct {
	r, c int
	v    float64
}

func fromTriplets(name string, n int, ts []triplet) *Matrix {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].r != ts[j].r {
			return ts[i].r < ts[j].r
		}
		return ts[i].c < ts[j].c
	})
	// Deduplicate (last wins).
	w := 0
	for i := 0; i < len(ts); i++ {
		if w > 0 && ts[w-1].r == ts[i].r && ts[w-1].c == ts[i].c {
			ts[w-1] = ts[i]
			continue
		}
		ts[w] = ts[i]
		w++
	}
	ts = ts[:w]

	m := &Matrix{Name: name, N: n, RowPtr: make([]uint64, n+1), ColPtr: make([]uint64, n+1)}
	for _, t := range ts {
		m.Cols = append(m.Cols, uint64(t.c))
		m.Vals = append(m.Vals, t.v)
		m.RowPtr[t.r+1]++
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	// CSC.
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].c != ts[j].c {
			return ts[i].c < ts[j].c
		}
		return ts[i].r < ts[j].r
	})
	for _, t := range ts {
		m.Rows = append(m.Rows, uint64(t.r))
		m.CVals = append(m.CVals, t.v)
		m.ColPtr[t.c+1]++
	}
	for i := 0; i < n; i++ {
		m.ColPtr[i+1] += m.ColPtr[i]
	}
	return m
}

// Random generates an n×n matrix with ~avgNNZ non-zeros per row, uniformly
// placed. Values are small positive reals.
func Random(name string, n, avgNNZ int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	var ts []triplet
	for i := 0; i < n; i++ {
		k := avgNNZ/2 + r.Intn(avgNNZ+1)
		for e := 0; e < k; e++ {
			ts = append(ts, triplet{i, r.Intn(n), 0.5 + r.Float64()})
		}
	}
	return fromTriplets(name, n, ts)
}

// Banded generates a structural-mechanics-style matrix: dense bands around
// the diagonal (pct5/rma10 class, high nnz/row).
func Banded(name string, n, band int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	var ts []triplet
	for i := 0; i < n; i++ {
		for d := -band; d <= band; d++ {
			j := i + d
			if j < 0 || j >= n || r.Intn(3) == 0 {
				continue
			}
			ts = append(ts, triplet{i, j, 0.5 + r.Float64()})
		}
	}
	return fromTriplets(name, n, ts)
}

// Input couples a Fig. 13(e)-style label with a generated matrix.
type Input struct {
	Label string
	M     *Matrix
}

// Inputs generates the six Table VI-shaped matrices (labels follow the
// domain classes; avg nnz/row ascends as in the table). seed is the run's
// base seed: input i is generated from seed+20+i, so the default seed of 1
// reproduces the historical per-input seeds 21..26 exactly.
func Inputs(size int, seed int64) []Input {
	if size <= 0 {
		size = 1
	}
	s := size
	b := seed + 20
	return []Input{
		{"Am", Random("amazon-class", 420*s, 8, b)},
		{"Co", Random("condmat-class", 400*s, 8, b+1)},
		{"Cg", Random("cage-class", 360*s, 16, b+2)},
		{"Cs", Random("cubes-class", 340*s, 16, b+3)},
		{"Rm", Banded("rma10-class", 200*s, 20, b+4)},
		{"Pc", Banded("pct20-class", 210*s, 24, b+5)},
	}
}

// Layout is the simulated-memory image of a matrix. Column indices and
// values are stored as 8-byte words (float64 bit patterns for values).
type Layout struct {
	RowPtrAddr, ColsAddr, ValsAddr  uint64 // CSR
	ColPtrAddr, RowsAddr, CValsAddr uint64 // CSC
}

// WriteTo lays the matrix out in simulated memory.
func (m *Matrix) WriteTo(mm *mem.Memory) Layout {
	l := Layout{
		RowPtrAddr: mm.AllocWords(uint64(m.N + 1)),
		ColsAddr:   mm.AllocWords(uint64(maxi(m.NNZ(), 1))),
		ValsAddr:   mm.AllocWords(uint64(maxi(m.NNZ(), 1))),
		ColPtrAddr: mm.AllocWords(uint64(m.N + 1)),
		RowsAddr:   mm.AllocWords(uint64(maxi(m.NNZ(), 1))),
		CValsAddr:  mm.AllocWords(uint64(maxi(m.NNZ(), 1))),
	}
	mm.WriteWords(l.RowPtrAddr, m.RowPtr)
	mm.WriteWords(l.ColsAddr, m.Cols)
	mm.WriteWords(l.ColPtrAddr, m.ColPtr)
	mm.WriteWords(l.RowsAddr, m.Rows)
	for i, v := range m.Vals {
		mm.Write64(l.ValsAddr+uint64(i)*8, isa.F2U(v))
	}
	for i, v := range m.CVals {
		mm.Write64(l.CValsAddr+uint64(i)*8, isa.F2U(v))
	}
	return l
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SpMMInner computes C = A·B by inner products (the paper's Fig. 4 kernel):
// for each row i of A and column j of B, intersect their sparsity patterns
// and accumulate. It returns the total number of non-zero dot products and
// the sum of all result values (the checksums the simulated kernel is
// validated against).
func SpMMInner(a, b *Matrix) (nnz int, sum float64) {
	if a.N != b.N {
		panic(fmt.Sprintf("sparse: dimension mismatch %d vs %d", a.N, b.N))
	}
	for i := 0; i < a.N; i++ {
		rs, re := a.RowPtr[i], a.RowPtr[i+1]
		for j := 0; j < b.N; j++ {
			cs, ce := b.ColPtr[j], b.ColPtr[j+1]
			acc, hit := 0.0, false
			p, q := rs, cs
			for p < re && q < ce {
				switch {
				case a.Cols[p] < b.Rows[q]:
					p++
				case a.Cols[p] > b.Rows[q]:
					q++
				default:
					acc += a.Vals[p] * b.CVals[q]
					hit = true
					p++
					q++
				}
			}
			if hit {
				nnz++
				sum += acc
			}
		}
	}
	return nnz, sum
}
