package sparse

import (
	"math"
	"testing"

	"pipette/internal/isa"
	"pipette/internal/mem"
)

func TestCSRCSCConsistent(t *testing.T) {
	m := Random("t", 50, 5, 1)
	if int(m.RowPtr[m.N]) != m.NNZ() || int(m.ColPtr[m.N]) != m.NNZ() {
		t.Fatalf("ptr tails: %d %d vs %d", m.RowPtr[m.N], m.ColPtr[m.N], m.NNZ())
	}
	// Rebuild a dense map from both views and compare.
	csr := map[[2]uint64]float64{}
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			csr[[2]uint64{uint64(i), m.Cols[p]}] = m.Vals[p]
		}
	}
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			k := [2]uint64{m.Rows[p], uint64(j)}
			v, ok := csr[k]
			if !ok || v != m.CVals[p] {
				t.Fatalf("CSC entry %v missing/mismatched in CSR", k)
			}
			delete(csr, k)
		}
	}
	if len(csr) != 0 {
		t.Fatalf("%d CSR entries missing from CSC", len(csr))
	}
}

func TestRowsSorted(t *testing.T) {
	m := Banded("t", 80, 10, 2)
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.Cols[p-1] >= m.Cols[p] {
				t.Fatalf("row %d not strictly sorted", i)
			}
		}
	}
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j] + 1; p < m.ColPtr[j+1]; p++ {
			if m.Rows[p-1] >= m.Rows[p] {
				t.Fatalf("col %d not strictly sorted", j)
			}
		}
	}
}

// SpMMInner against a brute-force dense reference.
func TestSpMMInnerVsDense(t *testing.T) {
	a := Random("a", 30, 4, 3)
	b := Random("b", 30, 4, 4)
	nnz, sum := SpMMInner(a, b)

	dense := func(m *Matrix) [][]float64 {
		d := make([][]float64, m.N)
		for i := range d {
			d[i] = make([]float64, m.N)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				d[i][m.Cols[p]] = m.Vals[p]
			}
		}
		return d
	}
	da, db := dense(a), dense(b)
	wantNNZ, wantSum := 0, 0.0
	for i := 0; i < a.N; i++ {
		for j := 0; j < b.N; j++ {
			acc, hit := 0.0, false
			for k := 0; k < a.N; k++ {
				if da[i][k] != 0 && db[k][j] != 0 {
					acc += da[i][k] * db[k][j]
					hit = true
				}
			}
			if hit {
				wantNNZ++
				wantSum += acc
			}
		}
	}
	if nnz != wantNNZ {
		t.Fatalf("nnz = %d, want %d", nnz, wantNNZ)
	}
	if math.Abs(sum-wantSum) > 1e-9*math.Abs(wantSum) {
		t.Fatalf("sum = %f, want %f", sum, wantSum)
	}
}

func TestInputsShapes(t *testing.T) {
	ins := Inputs(1, 1)
	if len(ins) != 6 {
		t.Fatalf("want 6 inputs, got %d", len(ins))
	}
	prev := 0.0
	for i, in := range ins {
		avg := in.M.AvgNNZPerRow()
		if avg <= 1 {
			t.Fatalf("%s: degenerate nnz/row %f", in.Label, avg)
		}
		// Table VI orders inputs by ascending nnz/row class; allow slack
		// within the two class groups.
		if i >= 4 && avg < 2*prev {
			// banded inputs must be clearly denser than random ones
		}
		prev = avg
	}
	if ins[4].M.AvgNNZPerRow() < 2*ins[0].M.AvgNNZPerRow() {
		t.Fatal("banded inputs should be much denser than random ones")
	}
}

func TestWriteToMemoryFloats(t *testing.T) {
	mm := mem.New()
	m := Random("t", 20, 3, 5)
	l := m.WriteTo(mm)
	for i, v := range m.Vals {
		if got := isa.U2F(mm.Read64(l.ValsAddr + uint64(i)*8)); got != v {
			t.Fatalf("vals[%d] = %v, want %v", i, got, v)
		}
	}
	for i, r := range m.Rows {
		if mm.Read64(l.RowsAddr+uint64(i)*8) != r {
			t.Fatalf("rows[%d] mismatch", i)
		}
	}
}
