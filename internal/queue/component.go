// Clocked-component face of the QRM (sim.Component). The QRM is passive
// storage: queues mutate only through their owners' actions (thread
// renames and commits, RA emissions, connector forwards), every entry's
// timing lives in per-entry ReadyAt/SpecAt stamps that consumers compare
// against the clock, and occupancy statistics are accounted by the host
// core. The QRM is driven through its host core rather than registered
// with the system directly — builders may replace a core's QRM
// (SetQueueCaps) after construction, and the core always consults the
// current one.
package queue

// Tick is a no-op: queue state advances only through owner actions.
func (m *QRM) Tick(now uint64) {}

// NextEvent reports no self-scheduled work, ever (sim.NoEvent): entry
// ready-time stamps are scheduled by the consumers that wait on them.
func (m *QRM) NextEvent(now uint64) uint64 { return ^uint64(0) }

// FastForward is a no-op: the host core accounts queue occupancy.
func (m *QRM) FastForward(from, to uint64) {}
