package queue

import "fmt"

// State is the serializable dynamic state of one queue: the monotonic
// pointers plus every live ring slot. Live means [CommHead, SpecTail) — the
// bound-but-uncommitted dequeues (whose Phys indices CommitDeq still needs)
// followed by the entries a future dequeue can bind. Slots outside that
// window are recycled garbage and are deliberately excluded so that two
// semantically identical queues serialize to identical bytes no matter what
// history produced them.
type State struct {
	ID  int
	Cap int

	SpecHead uint64
	SpecTail uint64
	CommHead uint64

	SkipPending bool

	Live []Entry // entries CommHead..SpecTail-1, in sequence order
}

// SaveState captures the queue's dynamic state.
func (q *Queue) SaveState() State {
	st := State{
		ID: q.ID, Cap: q.Cap,
		SpecHead: q.SpecHead, SpecTail: q.SpecTail, CommHead: q.CommHead,
		SkipPending: q.SkipPending,
	}
	for s := q.CommHead; s < q.SpecTail; s++ {
		st.Live = append(st.Live, *q.at(s))
	}
	return st
}

// RestoreState overwrites the queue's dynamic state from st. The queue must
// have been built with the same id and capacity (the snapshot does not
// resize hardware). Recycled slots are zeroed so restored state is
// canonical.
func (q *Queue) RestoreState(st State) error {
	if st.ID != q.ID || st.Cap != q.Cap {
		return fmt.Errorf("queue %d (cap %d): snapshot is for queue %d (cap %d)", q.ID, q.Cap, st.ID, st.Cap)
	}
	if n := st.SpecTail - st.CommHead; int(n) != len(st.Live) {
		return fmt.Errorf("queue %d: snapshot has %d live entries for window %d", q.ID, len(st.Live), n)
	}
	if st.SpecTail-st.CommHead > uint64(q.Cap) {
		return fmt.Errorf("queue %d: snapshot occupancy %d exceeds cap %d", q.ID, st.SpecTail-st.CommHead, q.Cap)
	}
	if st.CommHead > st.SpecHead || st.SpecHead > st.SpecTail {
		return fmt.Errorf("queue %d: snapshot pointers violate CommHead<=SpecHead<=SpecTail", q.ID)
	}
	for i := range q.ring {
		q.ring[i] = Entry{}
	}
	q.SpecHead, q.SpecTail, q.CommHead = st.SpecHead, st.SpecTail, st.CommHead
	q.SkipPending = st.SkipPending
	for i, e := range st.Live {
		seq := st.CommHead + uint64(i)
		if e.Seq != seq {
			return fmt.Errorf("queue %d: live entry %d has seq %d, want %d", q.ID, i, e.Seq, seq)
		}
		*q.at(seq) = e
	}
	return nil
}

// SaveStateInto is SaveState with buffer reuse: the Live slice backing
// array is retained across calls. Used by the speculative kernel's
// per-epoch shard snapshots, which save every queue once per epoch.
func (q *Queue) SaveStateInto(st *State) {
	st.ID, st.Cap = q.ID, q.Cap
	st.SpecHead, st.SpecTail, st.CommHead = q.SpecHead, q.SpecTail, q.CommHead
	st.SkipPending = q.SkipPending
	st.Live = st.Live[:0]
	for s := q.CommHead; s < q.SpecTail; s++ {
		st.Live = append(st.Live, *q.at(s))
	}
}

// CopyInto overwrites dst — a queue built with the same capacity — with a
// behavioral replica of q: ring contents, pointers, and skip state. The
// speculative kernel clones connector-remote queues this way at epoch
// start. dst's tracer attachment is left alone (replicas trace nothing).
func (q *Queue) CopyInto(dst *Queue) {
	if dst.Cap != q.Cap {
		panic(fmt.Sprintf("queue %d: CopyInto replica with cap %d != %d", q.ID, dst.Cap, q.Cap))
	}
	dst.ID = q.ID
	copy(dst.ring, q.ring)
	dst.SpecHead, dst.SpecTail, dst.CommHead = q.SpecHead, q.SpecTail, q.CommHead
	dst.SkipPending = q.SkipPending
}

// EntryAt returns the ring entry holding sequence number seq, which must be
// live (its slot not yet recycled). Restore paths use it to re-link in-flight
// µops to the queue entries they bound.
func (q *Queue) EntryAt(seq uint64) (*Entry, error) {
	if seq < q.CommHead || seq >= q.SpecTail {
		return nil, fmt.Errorf("queue %d: seq %d outside live window [%d,%d)", q.ID, seq, q.CommHead, q.SpecTail)
	}
	e := q.at(seq)
	if e.Seq != seq {
		return nil, fmt.Errorf("queue %d: slot for seq %d holds seq %d", q.ID, seq, e.Seq)
	}
	return e, nil
}
