package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := NewQueue(0, 4)
	for i := 0; i < 4; i++ {
		seq := q.Enq(uint64(i*10), false, i)
		q.MarkReady(seq, uint64(i))
	}
	if q.CanEnq() {
		t.Fatal("queue should be full")
	}
	for i := 0; i < 4; i++ {
		e := q.Deq()
		if e.Val != uint64(i*10) || e.Phys != i {
			t.Fatalf("deq %d = %+v", i, e)
		}
	}
	if q.CanDeq() {
		t.Fatal("queue should be spec-empty")
	}
	// Slots free only at dequeue commit.
	if q.CanEnq() {
		t.Fatal("slots must stay occupied until CommitDeq")
	}
	for i := 0; i < 4; i++ {
		if phys := q.CommitDeq(); phys != i {
			t.Fatalf("freed phys = %d, want %d", phys, i)
		}
	}
	if !q.CanEnq() {
		t.Fatal("queue should have space after commits")
	}
}

func TestReadiness(t *testing.T) {
	q := NewQueue(0, 4)
	seq := q.Enq(7, false, 3)
	if q.Head().ReadyAt != NotReady {
		t.Fatal("entry ready before MarkReady")
	}
	q.MarkReady(seq, 42)
	if q.Head().ReadyAt != 42 {
		t.Fatal("ReadyAt not recorded")
	}
}

func TestWrapAround(t *testing.T) {
	q := NewQueue(0, 2)
	for round := 0; round < 10; round++ {
		s := q.Enq(uint64(round), false, round)
		q.MarkReady(s, 0)
		e := q.Deq()
		if e.Val != uint64(round) {
			t.Fatalf("round %d: val %d", round, e.Val)
		}
		q.CommitDeq()
	}
	if q.SpecHead != 10 || q.CommHead != 10 || q.SpecTail != 10 {
		t.Fatalf("pointers: %d %d %d", q.SpecHead, q.CommHead, q.SpecTail)
	}
}

func TestControlBitAndSkipScan(t *testing.T) {
	q := NewQueue(0, 8)
	q.Enq(1, false, 0)
	q.Enq(2, false, 1)
	q.Enq(99, true, 2) // control value
	q.Enq(3, false, 3)
	n, cv, ok := q.SkipScan()
	if !ok || n != 2 || cv.Val != 99 {
		t.Fatalf("SkipScan = %d %v %v", n, cv, ok)
	}
	q.SkipConsume(n)
	// Next visible entry is the post-CV data value.
	if e := q.Head(); e.Val != 3 {
		t.Fatalf("after skip, head = %+v", e)
	}
	// The three consumed slots commit in order.
	for i := 0; i < 3; i++ {
		if phys := q.CommitDeq(); phys != i {
			t.Fatalf("freed %d, want %d", phys, i)
		}
	}
}

func TestSkipScanNoCV(t *testing.T) {
	q := NewQueue(0, 8)
	q.Enq(1, false, 0)
	if _, _, ok := q.SkipScan(); ok {
		t.Fatal("found CV in data-only queue")
	}
	q.SkipPending = true
	// Enqueuing a control value clears the pending skip.
	q.Enq(5, true, 1)
	if q.SkipPending {
		t.Fatal("SkipPending not cleared by control enqueue")
	}
}

func TestEnqFullPanics(t *testing.T) {
	q := NewQueue(0, 1)
	q.Enq(1, false, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	q.Enq(2, false, 1)
}

func TestDeqEmptyPanics(t *testing.T) {
	q := NewQueue(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	q.Deq()
}

func TestQRMMappedRegisters(t *testing.T) {
	m := NewQRM(4, 8)
	if m.TotalEntries != 32 {
		t.Fatalf("TotalEntries = %d", m.TotalEntries)
	}
	m.Q(0).Enq(1, false, 0)
	m.Q(2).Enq(2, false, 1)
	m.Q(2).Enq(3, false, 2)
	if got := m.MappedRegisters(); got != 3 {
		t.Fatalf("MappedRegisters = %d", got)
	}
	m.Q(2).Deq()
	if got := m.MappedRegisters(); got != 3 {
		t.Fatalf("dequeue must not unmap until commit: %d", got)
	}
	m.Q(2).CommitDeq()
	if got := m.MappedRegisters(); got != 2 {
		t.Fatalf("after commit: %d", got)
	}
}

func TestQRMSized(t *testing.T) {
	m := NewQRMSized([]int{4, 8, 16})
	if m.TotalEntries != 28 || m.Q(1).Cap != 8 {
		t.Fatalf("sized QRM wrong: %d", m.TotalEntries)
	}
}

// Table III: the paper reports 1844 bits for the QRM and 2356 bits total
// (295 bytes) for 16 queues, 148 mappable registers, a 212-entry PRF and 4
// threads.
func TestTable3Cost(t *testing.T) {
	c := ComputeCost(DefaultCostConfig())
	if c.QRMEntryBits != 148*9 {
		t.Errorf("entry bits = %d, want %d", c.QRMEntryBits, 148*9)
	}
	if c.QRMPointerBits != 16*4*8 {
		t.Errorf("pointer bits = %d, want %d", c.QRMPointerBits, 512)
	}
	if c.QRMBits() != 1844 {
		t.Errorf("QRM bits = %d, want 1844 (Table III)", c.QRMBits())
	}
	if c.HandlerPCBits != 512 {
		t.Errorf("handler bits = %d, want 512", c.HandlerPCBits)
	}
	if c.TotalBits() != 2356 {
		t.Errorf("total = %d, want 2356 (Table III)", c.TotalBits())
	}
	if c.TotalBytes() != 295 {
		t.Errorf("total bytes = %d, want 295", c.TotalBytes())
	}
}

// Property: occupancy never exceeds capacity, and pointers stay ordered, for
// any interleaving of enqueues and dequeue-commits.
func TestPointerInvariants(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewQueue(0, 4)
		for _, enq := range ops {
			if enq {
				if q.CanEnq() {
					q.MarkReady(q.Enq(0, false, 0), 0)
				}
			} else {
				if q.CanDeq() {
					q.Deq()
				}
				if q.PendingDeq() > 0 {
					q.CommitDeq()
				}
			}
			if q.Occupancy() > q.Cap || q.Occupancy() < 0 {
				return false
			}
			if q.CommHead > q.SpecHead || q.SpecHead > q.SpecTail {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Queue contents are architectural state: a save/restore round trip across
// a simulated context switch preserves FIFO order and control bits.
func TestSaveRestore(t *testing.T) {
	q := NewQueue(0, 8)
	vals := []struct {
		v    uint64
		ctrl bool
	}{{1, false}, {2, true}, {3, false}}
	for i, x := range vals {
		q.MarkReady(q.Enq(x.v, x.ctrl, i), 0)
	}
	state, phys := q.Save()
	if len(state) != 3 || len(phys) != 3 {
		t.Fatalf("saved %d entries, %d regs", len(state), len(phys))
	}
	if q.Occupancy() != 0 {
		t.Fatal("queue not drained by Save")
	}
	q2 := NewQueue(0, 8)
	next := 100
	if err := q2.Restore(state, func() (int, bool) { next++; return next, true }); err != nil {
		t.Fatal(err)
	}
	for _, want := range vals {
		e := q2.Deq()
		if e.Val != want.v || e.Ctrl != want.ctrl {
			t.Fatalf("restored %+v, want %+v", e, want)
		}
		q2.CommitDeq()
	}
}

func TestSaveWithPendingDeqPanics(t *testing.T) {
	q := NewQueue(0, 4)
	q.MarkReady(q.Enq(1, false, 0), 0)
	q.Deq() // bound but not committed
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	q.Save()
}

func TestRestoreOverflow(t *testing.T) {
	q := NewQueue(0, 2)
	state := []SavedEntry{{1, false}, {2, false}, {3, false}}
	n := 0
	err := q.Restore(state, func() (int, bool) { n++; return n, true })
	if err == nil {
		t.Fatal("want overflow error")
	}
}

func TestMarkReadyIfLiveOnRecycledSlot(t *testing.T) {
	q := NewQueue(0, 1)
	seq := q.Enq(1, false, 0)
	q.MarkSpecReady(seq, 0)
	q.Deq()
	q.CommitDeq()              // slot freed before producer "commit"
	q.MarkReadyIfLive(seq, 5)  // must not panic
	seq2 := q.Enq(2, false, 1) // slot recycled
	q.MarkReadyIfLive(seq, 9)  // stale mark: ignored
	if q.Head().ReadyAt != NotReady {
		t.Fatal("stale MarkReadyIfLive corrupted the recycled entry")
	}
	q.MarkReady(seq2, 3)
	if q.Head().ReadyAt != 3 {
		t.Fatal("fresh MarkReady failed")
	}
}
