package queue

import "math/bits"

// CostConfig describes a Pipette hardware configuration for the Table III
// storage-cost model.
type CostConfig struct {
	NumQueues    int // physical queues per core
	TotalEntries int // QRM entries == max mappable physical registers
	PhysRegs     int // physical register file size (for index width)
	Threads      int // SMT threads per core
	PCBits       int // handler PC width
}

// DefaultCostConfig is the paper's configuration (Sec. IV-D): 16 queues, 148
// mappable registers, 212-entry PRF, 4 threads, 64-bit PCs.
func DefaultCostConfig() CostConfig {
	return CostConfig{NumQueues: 16, TotalEntries: 148, PhysRegs: 212, Threads: 4, PCBits: 64}
}

// Cost is the storage breakdown of Table III, in bits.
type Cost struct {
	QRMEntryBits   int // entries × (phys index + control bit)
	QRMPointerBits int // queues × 4 pointers × entry-index width
	HandlerPCBits  int // threads × 2 handlers × PC width
}

// QRMBits returns the QRM total (paper: 1844 bits).
func (c Cost) QRMBits() int { return c.QRMEntryBits + c.QRMPointerBits }

// TotalBits returns all Pipette storage (paper: 2356 bits).
func (c Cost) TotalBits() int { return c.QRMBits() + c.HandlerPCBits }

// TotalBytes rounds TotalBits up to bytes.
func (c Cost) TotalBytes() int { return (c.TotalBits() + 7) / 8 }

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// ComputeCost reproduces the Table III arithmetic: each QRM entry stores a
// physical-register index plus a control bit; each queue keeps speculative
// and committed head and tail pointers; each thread keeps two handler PCs.
func ComputeCost(cfg CostConfig) Cost {
	physIdx := log2ceil(cfg.PhysRegs)
	entryIdx := log2ceil(cfg.TotalEntries)
	return Cost{
		QRMEntryBits:   cfg.TotalEntries * (physIdx + 1),
		QRMPointerBits: cfg.NumQueues * 4 * entryIdx,
		HandlerPCBits:  cfg.Threads * 2 * cfg.PCBits,
	}
}
