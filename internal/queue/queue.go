// Package queue implements the Queue Register Map (QRM) of Sec. IV-A: the
// per-core structure that embeds FIFO queues in the physical register file.
// Each queue is a ring of entries holding a physical-register index plus a
// control bit, managed with speculative and committed head/tail pointers.
//
// The simulator is execution-driven with functional execution at rename
// (DESIGN.md §4), so entries also carry the enqueued value and the cycle at
// which the value becomes consumable (the producer's commit, an RA
// completion, or a connector delivery) — that is how "enqueued values cannot
// be dequeued until they are non-speculative" is enforced in the timing
// model.
package queue

import (
	"fmt"

	"pipette/internal/telemetry"
)

// NotReady marks an entry whose producer has not committed yet.
const NotReady = ^uint64(0)

// Entry is one queue slot.
type Entry struct {
	Val     uint64
	Ctrl    bool
	Phys    int    // physical register index backing this slot
	ReadyAt uint64 // cycle the value becomes non-speculative; NotReady until then
	SpecAt  uint64 // cycle the (possibly speculative) value exists; NotReady until then
	Seq     uint64 // monotonic position in the queue
}

// Queue is one architecturally visible FIFO. Pointers are monotonic
// sequence numbers; ring index is seq % Cap.
//
// Invariant: CommHead <= SpecHead <= SpecTail and SpecTail-CommHead <= Cap.
// (CommTail is implied by per-entry ReadyAt, which producers set in FIFO
// order.)
type Queue struct {
	ID  int
	Cap int

	ring []Entry
	mask uint64 // Cap-1 when Cap is a power of two (>1); at() then avoids the modulo

	SpecHead uint64 // next entry a dequeue will bind
	SpecTail uint64 // next slot an enqueue will fill
	CommHead uint64 // next entry whose dequeue will commit (frees the slot)

	// SkipPending is set while a skip_to_ctrl is blocked waiting for a
	// control value; the producer's next data enqueue must trap to its
	// enqueue control handler (Sec. III-B).
	SkipPending bool

	// trace, when non-nil, receives an event for every enqueue and
	// dequeue regardless of who performs it (thread, RA, or connector).
	// The nil check is the only cost on the disabled path.
	trace     *telemetry.Tracer
	traceCore int16
}

// DrainOne discards the head entry of the queue, freeing its slot
// immediately, and returns the physical register to release. It requires
// that no bound dequeues are pending (so commit order is preserved) and
// that the entry's value is already committed by the producer. A blocked
// skip_to_ctrl uses this to guarantee the producer's control value can
// always enter a full queue (deadlock freedom; see DESIGN.md).
func (q *Queue) DrainOne() (phys int, ok bool) {
	if q.PendingDeq() != 0 || !q.CanDeq() || q.Head().Ctrl || q.Head().ReadyAt == NotReady {
		return 0, false
	}
	q.Deq()
	return q.CommitDeq(), true
}

// NewQueue returns an empty queue with the given capacity.
func NewQueue(id, capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue %d: capacity %d", id, capacity))
	}
	q := &Queue{ID: id, Cap: capacity, ring: make([]Entry, capacity)}
	if capacity&(capacity-1) == 0 {
		q.mask = uint64(capacity) - 1 // cap 1 leaves mask 0: the modulo path is already index 0
	}
	return q
}

func (q *Queue) at(seq uint64) *Entry {
	if q.mask != 0 {
		return &q.ring[seq&q.mask]
	}
	return &q.ring[seq%uint64(q.Cap)]
}

// CanEnq reports whether the ring has a free slot (paper: enqueues to a full
// queue block; the slot frees when the consumer's dequeue commits).
func (q *Queue) CanEnq() bool { return q.SpecTail-q.CommHead < uint64(q.Cap) }

// Enq fills the next slot speculatively and returns its sequence number.
// The value is not consumable until MarkReady is called.
func (q *Queue) Enq(val uint64, ctrl bool, phys int) uint64 {
	if !q.CanEnq() {
		panic(fmt.Sprintf("queue %d: enqueue to full queue", q.ID))
	}
	seq := q.SpecTail
	*q.at(seq) = Entry{Val: val, Ctrl: ctrl, Phys: phys, ReadyAt: NotReady, SpecAt: NotReady, Seq: seq}
	q.SpecTail++
	if ctrl {
		q.SkipPending = false
	}
	if q.trace != nil {
		q.trace.Emit(telemetry.EvEnqueue, q.traceCore, telemetry.UnitQueue, uint64(q.ID), val)
	}
	return seq
}

// MarkReady records that entry seq's value is non-speculatively consumable
// from cycle c (producer committed / RA load completed / connector
// delivered). SpecAt is set too if the value was never marked speculative.
func (q *Queue) MarkReady(seq uint64, c uint64) {
	e := q.at(seq)
	if e.Seq != seq {
		panic(fmt.Sprintf("queue %d: MarkReady(%d) on recycled slot (seq %d)", q.ID, seq, e.Seq))
	}
	e.ReadyAt = c
	if e.SpecAt == NotReady {
		e.SpecAt = c
	}
}

// MarkReadyIfLive is MarkReady for the speculative-dequeue variant: when
// consumers may run ahead of producer commits, the slot can already have
// been consumed, committed, and recycled by the time the producer commits —
// in that case there is nothing left to mark.
func (q *Queue) MarkReadyIfLive(seq uint64, c uint64) {
	if seq < q.CommHead {
		return // consumed and freed before the producer committed
	}
	q.MarkReady(seq, c)
}

// MarkSpecReady records that entry seq's value exists speculatively from
// cycle c (the producer renamed the enqueue but has not committed it). Used
// by the speculative-dequeue variant of Sec. IV-A.
func (q *Queue) MarkSpecReady(seq uint64, c uint64) {
	e := q.at(seq)
	if e.Seq != seq {
		panic(fmt.Sprintf("queue %d: MarkSpecReady(%d) on recycled slot (seq %d)", q.ID, seq, e.Seq))
	}
	e.SpecAt = c
}

// CanDeq reports whether a (speculative) entry exists to bind.
func (q *Queue) CanDeq() bool { return q.SpecHead < q.SpecTail }

// Head returns the entry a dequeue or peek would bind. Call only when
// CanDeq.
func (q *Queue) Head() *Entry {
	if !q.CanDeq() {
		panic(fmt.Sprintf("queue %d: head of empty queue", q.ID))
	}
	return q.at(q.SpecHead)
}

// Deq binds and consumes the head entry speculatively (rename-time).
func (q *Queue) Deq() *Entry {
	e := q.Head()
	q.SpecHead++
	if q.trace != nil {
		q.trace.Emit(telemetry.EvDequeue, q.traceCore, telemetry.UnitQueue, uint64(q.ID), e.Val)
	}
	return e
}

// CommitDeq retires the oldest bound dequeue, freeing its slot, and returns
// the physical register to give back to the freelist.
func (q *Queue) CommitDeq() int {
	if q.CommHead >= q.SpecHead {
		panic(fmt.Sprintf("queue %d: CommitDeq with no bound dequeue", q.ID))
	}
	phys := q.at(q.CommHead).Phys
	q.CommHead++
	return phys
}

// SkipScan searches [SpecHead, SpecTail) for a control entry. It returns the
// number of data entries preceding it and the entry itself, or ok=false if
// the queue holds no control value.
func (q *Queue) SkipScan() (nData int, cv *Entry, ok bool) {
	for s := q.SpecHead; s < q.SpecTail; s++ {
		if e := q.at(s); e.Ctrl {
			return int(s - q.SpecHead), e, true
		}
	}
	return 0, nil, false
}

// SkipConsume consumes nData data entries plus the control entry after them
// (the effect of a successful skip_to_ctrl at rename).
func (q *Queue) SkipConsume(nData int) {
	q.SpecHead += uint64(nData) + 1
	if q.SpecHead > q.SpecTail {
		panic(fmt.Sprintf("queue %d: SkipConsume(%d) past tail", q.ID, nData))
	}
}

// Occupancy returns the number of live slots (speculative tail to committed
// head), i.e. the capacity in use.
func (q *Queue) Occupancy() int { return int(q.SpecTail - q.CommHead) }

// PendingDeq returns how many bound-but-uncommitted dequeues exist.
func (q *Queue) PendingDeq() int { return int(q.SpecHead - q.CommHead) }

// QRM is the per-core queue register map.
type QRM struct {
	Queues []*Queue
	// TotalEntries is the sum of capacities — the number of physical
	// registers the QRM may map (148 in the paper's configuration).
	TotalEntries int
}

// NewQRM configures numQueues queues of capPer entries each.
func NewQRM(numQueues, capPer int) *QRM {
	m := &QRM{}
	for i := 0; i < numQueues; i++ {
		m.Queues = append(m.Queues, NewQueue(i, capPer))
	}
	m.TotalEntries = numQueues * capPer
	return m
}

// NewQRMSized configures queues with explicit per-queue capacities (the
// OS-configurable chunking of Fig. 7).
func NewQRMSized(caps []int) *QRM {
	m := &QRM{}
	for i, c := range caps {
		m.Queues = append(m.Queues, NewQueue(i, c))
		m.TotalEntries += c
	}
	return m
}

// Q returns queue id, panicking on out-of-range ids (program bug).
func (m *QRM) Q(id uint8) *Queue {
	if int(id) >= len(m.Queues) {
		panic(fmt.Sprintf("qrm: queue %d not configured (have %d)", id, len(m.Queues)))
	}
	return m.Queues[id]
}

// SetTracer attaches (or detaches, with nil) an event tracer to every
// queue; coreID tags the emitted events with the owning core.
func (m *QRM) SetTracer(tr *telemetry.Tracer, coreID int) {
	for _, q := range m.Queues {
		q.trace = tr
		q.traceCore = int16(coreID)
	}
}

// MappedRegisters returns how many physical registers the QRM currently
// holds (live entries across all queues).
func (m *QRM) MappedRegisters() int {
	n := 0
	for _, q := range m.Queues {
		n += q.Occupancy()
	}
	return n
}

// OccupancySum is MappedRegisters with a per-queue callback: it reports
// each queue's occupancy to report while summing. The cycle-accounting
// profiler uses it to fold its per-queue occupancy histograms into the
// same walk that computes the mapped-register integral, so profiled runs
// add no second pass over the queues. MappedRegisters stays separate so
// the unprofiled hot path keeps its tight loop.
func (m *QRM) OccupancySum(report func(qi, occ int)) int {
	n := 0
	for qi, q := range m.Queues {
		occ := q.Occupancy()
		n += occ
		report(qi, occ)
	}
	return n
}

// SavedEntry is one architectural queue value, as drained for a context
// switch (Sec. III-C: queues are architectural state the OS saves and
// restores with normal Pipette instructions).
type SavedEntry struct {
	Val  uint64
	Ctrl bool
}

// Save drains the committed architectural contents of the queue. It
// requires a quiesced queue: no bound-but-uncommitted dequeues and no
// speculative enqueues (the OS deschedules the producer and consumer
// first). The freed physical registers are returned for the caller to
// release.
func (q *Queue) Save() (state []SavedEntry, phys []int) {
	if q.PendingDeq() != 0 {
		panic(fmt.Sprintf("queue %d: Save with bound dequeues in flight", q.ID))
	}
	for q.CanDeq() {
		e := q.Head()
		if e.ReadyAt == NotReady {
			panic(fmt.Sprintf("queue %d: Save with speculative entries", q.ID))
		}
		state = append(state, SavedEntry{Val: e.Val, Ctrl: e.Ctrl})
		q.Deq()
		phys = append(phys, q.CommitDeq())
	}
	return state, phys
}

// Restore refills a drained queue from saved state. allocPhys supplies one
// physical register per entry (from the destination core's freelist); values
// are immediately committed, as after an OS refill.
func (q *Queue) Restore(state []SavedEntry, allocPhys func() (int, bool)) error {
	for _, se := range state {
		if !q.CanEnq() {
			return fmt.Errorf("queue %d: restore overflow (cap %d)", q.ID, q.Cap)
		}
		p, ok := allocPhys()
		if !ok {
			return fmt.Errorf("queue %d: out of physical registers during restore", q.ID)
		}
		seq := q.Enq(se.Val, se.Ctrl, p)
		q.MarkReady(seq, 0)
	}
	return nil
}
