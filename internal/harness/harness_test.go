package harness

import (
	"strings"
	"testing"
)

func tinySilo() Config {
	c := Tiny()
	c.AppFilter = "silo"
	return c
}

func TestTables(t *testing.T) {
	for _, name := range []string{"table2", "table3", "table4", "table5", "table6"} {
		var sb strings.Builder
		if err := Run(name, &sb, Default(), SweepOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "==") {
			t.Fatalf("%s produced no table:\n%s", name, sb.String())
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	var sb strings.Builder
	if err := Table3(&sb, Default(), SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1844", "2356", "295"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table III missing %s:\n%s", want, sb.String())
		}
	}
}

func TestEvaluateSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, err := EvaluateWith(tinySilo(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Apps) != 1 || e.Apps[0] != "silo" {
		t.Fatalf("apps = %v", e.Apps)
	}
	for _, v := range variants {
		c, ok := e.get("silo", v, "ycsbc")
		if !ok {
			t.Fatalf("missing silo/%s", v)
		}
		if c.R.Cycles == 0 || c.R.Committed == 0 {
			t.Fatalf("silo/%s: empty result", v)
		}
	}
	// Cached: second call must return the identical object.
	e2, err := EvaluateWith(tinySilo(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e {
		t.Fatal("evaluation matrix not cached")
	}
}

func TestFigReportsOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinySilo()
	for _, name := range []string{"fig9", "fig10", "fig11", "fig12", "fig13", "fig16"} {
		var sb strings.Builder
		if err := Run(name, &sb, cfg, SweepOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "silo") {
			t.Fatalf("%s missing silo row:\n%s", name, sb.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("fig99", nil, Default(), SweepOptions{}); err == nil {
		t.Fatal("want error")
	}
}

func TestNamesComplete(t *testing.T) {
	ns := Names()
	if len(ns) != 16 {
		t.Fatalf("have %d experiments: %v", len(ns), ns)
	}
}
