package harness

import (
	"runtime"
	"testing"
)

// sweepBenchConfig is a small but non-trivial slice of the matrix (silo's
// five variants) so the benchmark measures engine + simulator throughput,
// not input generation.
func sweepBenchConfig() Config {
	cfg := Tiny()
	cfg.AppFilter = "silo"
	return cfg
}

// BenchmarkSweepThroughput measures a full (uncached) sweep at the
// default worker count. CI's regression guard compares its ns/op against
// build/baselines/bench_thresholds.txt.
func BenchmarkSweepThroughput(b *testing.B) {
	cfg := sweepBenchConfig()
	for i := 0; i < b.N; i++ {
		e, err := Sweep(cfg, SweepOptions{Jobs: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Sweep.Failures) > 0 {
			b.Fatalf("failures: %+v", e.Sweep.Failures)
		}
	}
}

// BenchmarkSweepThroughputSerial is the -jobs 1 reference point; the gap
// between the two is the worker pool's speedup on this machine.
func BenchmarkSweepThroughputSerial(b *testing.B) {
	cfg := sweepBenchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(cfg, SweepOptions{Jobs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
