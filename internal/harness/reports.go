package harness

import (
	"io"

	"pipette/internal/telemetry"
)

// Reports runs (or reuses) the full evaluation matrix and converts every
// cell into the canonical run-report schema, in deterministic
// app/input/variant order. pipette-bench's -report-out and the BENCH_*
// trajectory tooling consume this, so figures and machine-readable output
// derive from the same runs.
func Reports(cfg Config) ([]telemetry.Report, error) {
	e, err := Evaluate(cfg)
	if err != nil {
		return nil, err
	}
	var out []telemetry.Report
	for _, app := range e.Apps {
		for _, in := range e.Inputs[app] {
			for _, v := range variants {
				cell, ok := e.get(app, v, in)
				if !ok {
					continue
				}
				rep := cell.R.Report()
				rep.App, rep.Variant, rep.Input = app, v, in
				rep.Energy = cell.Energy.Report()
				out = append(out, rep)
			}
		}
	}
	return out, nil
}

// WriteRunSet emits the evaluation matrix as a pipette.runset/v1 JSON
// document.
func WriteRunSet(w io.Writer, cfg Config, label string) error {
	runs, err := Reports(cfg)
	if err != nil {
		return err
	}
	return telemetry.RunSet{Schema: telemetry.RunSetSchema, Label: label, Runs: runs}.WriteJSON(w)
}
