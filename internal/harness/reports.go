package harness

import (
	"io"

	"pipette/internal/telemetry"
)

// Reports converts every cell of the matrix into the canonical run-report
// schema, in deterministic app/input/variant order. Sharded matrices
// simply omit the cells they never ran.
func (e *Eval) Reports() []telemetry.Report {
	var out []telemetry.Report
	for _, app := range e.Apps {
		for _, in := range e.Inputs[app] {
			for _, v := range variants {
				cell, ok := e.get(app, v, in)
				if !ok {
					continue
				}
				rep := cell.R.Report()
				rep.App, rep.Variant, rep.Input = app, v, in
				rep.Seed = e.Cfg.Seed
				rep.Energy = cell.Energy.Report()
				rep.WallSeconds = cell.WallSeconds
				rep.FromCache = cell.FromCache
				out = append(out, rep)
			}
		}
	}
	return out
}

// Reports runs (or reuses) the full evaluation matrix and converts every
// cell into the canonical run-report schema. pipette-bench's -report-out
// and the BENCH_* trajectory tooling consume this, so figures and
// machine-readable output derive from the same runs.
func Reports(cfg Config, opts SweepOptions) ([]telemetry.Report, error) {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return nil, err
	}
	return e.Reports(), nil
}

// WriteRunSet emits the matrix as a pipette.runset/v1 JSON document,
// including the sweep-execution section (jobs, shard, cache hits,
// per-cell wall times ride on the individual runs).
func (e *Eval) WriteRunSet(w io.Writer, label string) error {
	rs := telemetry.RunSet{
		Schema: telemetry.RunSetSchema,
		Label:  label,
		Runs:   e.Reports(),
		Sweep:  e.Sweep.Report(),
	}
	return rs.WriteJSON(w)
}

// WriteRunSet emits the full evaluation matrix as a pipette.runset/v1
// JSON document.
func WriteRunSet(w io.Writer, cfg Config, opts SweepOptions, label string) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	return e.WriteRunSet(w, label)
}
