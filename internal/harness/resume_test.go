package harness

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestSweepCrashResumeStdout simulates a sweep process dying mid-run (one
// cell fails after its neighbours already persisted to the shared disk
// cache) and a restart against the same cache dir. The resumed run must
// recompute only the lost cell, and the figure stdout it produces must be
// byte-identical to an uninterrupted run's.
func TestSweepCrashResumeStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinySilo()
	cfg.SiloQueries += 5 // a matrix no other test memoizes

	render := func(opts SweepOptions) (string, error) {
		var sb strings.Builder
		for _, fig := range []func(io.Writer, Config, SweepOptions) error{Fig9, Fig10} {
			if err := fig(&sb, cfg, opts); err != nil {
				return "", err
			}
		}
		return sb.String(), nil
	}
	// A restarted process has an empty Evaluate memo; drop this config's
	// entry to model that.
	forget := func() {
		memoMu.Lock()
		delete(memo, cfg)
		memoMu.Unlock()
	}

	// "Process 1": one cell dies mid-sweep. The other cells land in the
	// shared disk cache before the figure pipeline aborts.
	dir := t.TempDir()
	opts := SweepOptions{Jobs: 2, CacheDir: dir}
	bad := Key{App: "silo", Variant: "pipette", Input: "ycsbc"}
	sweepTestHook = func(k Key) error {
		if k == bad {
			return errors.New("injected crash")
		}
		return nil
	}
	if _, err := render(opts); err == nil {
		sweepTestHook = nil
		t.Fatal("crashed sweep still rendered figures")
	}
	sweepTestHook = nil

	// "Process 2": restart against the same cache dir. Only the lost cell
	// recomputes; everything else replays from disk.
	forget()
	resumed, err := EvaluateWith(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Sweep.CacheHits != len(resumed.Cells)-1 || resumed.Sweep.CacheMisses != 1 {
		t.Fatalf("resume stats: %+v, want %d hits + 1 miss",
			resumed.Sweep, len(resumed.Cells)-1)
	}
	gotResumed, err := render(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference: fresh memo, fresh cache, different worker
	// count — stdout must still match byte for byte.
	forget()
	gotClean, err := render(SweepOptions{Jobs: 1, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if gotResumed != gotClean {
		t.Errorf("resumed figure stdout differs from uninterrupted run\nresumed:\n%s\nclean:\n%s",
			gotResumed, gotClean)
	}
}
