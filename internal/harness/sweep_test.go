package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepDeterminism is the engine's core contract: any worker count
// produces the identical keyed result matrix.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinySilo()
	e1, err := Sweep(cfg, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	e8, err := Sweep(cfg, SweepOptions{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.Cells) != len(variants) {
		t.Fatalf("have %d cells, want %d", len(e1.Cells), len(variants))
	}
	if !e1.SameResults(e8) {
		t.Fatal("-jobs 1 and -jobs 8 produced different matrices")
	}
	if e8.Sweep.CacheMisses != len(e8.Cells) || e8.Sweep.CacheHits != 0 {
		t.Fatalf("uncached sweep stats: %+v", e8.Sweep)
	}
}

// TestSweepFailureIsolation injects a failure into exactly one cell and
// checks the rest of the sweep completes, with the failure reported by
// identity.
func TestSweepFailureIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	bad := Key{App: "silo", Variant: "pipette", Input: "ycsbc"}
	sweepTestHook = func(k Key) error {
		if k == bad {
			return errors.New("injected cell failure")
		}
		return nil
	}
	defer func() { sweepTestHook = nil }()

	// A config no other test evaluates, so Evaluate below cannot hit a
	// previously memoized (successful) matrix.
	cfg := tinySilo()
	cfg.SiloQueries += 3

	e, err := Sweep(cfg, SweepOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sweep.Failures) != 1 || e.Sweep.Failures[0].Key != bad {
		t.Fatalf("failures = %+v", e.Sweep.Failures)
	}
	if !strings.Contains(e.Sweep.Failures[0].String(), "silo/pipette/ycsbc") {
		t.Fatalf("failure not identified by cell: %s", e.Sweep.Failures[0])
	}
	if len(e.Cells) != len(variants)-1 {
		t.Fatalf("have %d cells, want %d", len(e.Cells), len(variants)-1)
	}
	if _, ok := e.Cells[bad]; ok {
		t.Fatal("failed cell present in matrix")
	}
	// The figure path must refuse a partial matrix.
	if _, err := EvaluateWith(cfg, SweepOptions{}); err == nil || !strings.Contains(err.Error(), "silo/pipette/ycsbc") {
		t.Fatalf("Evaluate error = %v, want the failed cell's identity", err)
	}
}

// TestSweepFailFast stops dispatching after the first failure under a
// single worker, so later cells never run.
func TestSweepFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	first := true
	sweepTestHook = func(Key) error {
		if first {
			first = false
			return errors.New("boom")
		}
		return nil
	}
	defer func() { sweepTestHook = nil }()

	e, err := Sweep(tinySilo(), SweepOptions{Jobs: 1, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sweep.Failures) != 1 {
		t.Fatalf("failures = %+v", e.Sweep.Failures)
	}
	if len(e.Cells) != 0 {
		t.Fatalf("fail-fast still ran %d cells", len(e.Cells))
	}
}

// TestShardPartition checks, over the full Default matrix enumeration,
// that shards are disjoint and their union is complete, for several shard
// counts — without simulating anything.
func TestShardPartition(t *testing.T) {
	specs, _, _ := Default().cellSpecs()
	if len(specs) == 0 {
		t.Fatal("no cells enumerated")
	}
	for _, m := range []int{1, 2, 3, 7} {
		seen := map[Key]int{}
		for shard := 0; shard < m; shard++ {
			for _, sp := range specs {
				if sp.idx%m == shard {
					seen[sp.key]++
				}
			}
		}
		if len(seen) != len(specs) {
			t.Fatalf("m=%d: union has %d cells, want %d", m, len(seen), len(specs))
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("m=%d: cell %v assigned to %d shards", m, k, n)
			}
		}
	}
}

// TestShardSweep runs both halves of a 2-way shard and checks they cover
// the matrix without overlap, matching an unsharded sweep.
func TestShardSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinySilo()
	full, err := Sweep(cfg, SweepOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	merged := &Eval{Cells: map[Key]Cell{}}
	for shard := 0; shard < 2; shard++ {
		e, err := Sweep(cfg, SweepOptions{Jobs: 2, Shard: shard, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for k, c := range e.Cells {
			if _, dup := merged.Cells[k]; dup {
				t.Fatalf("cell %v ran in both shards", k)
			}
			merged.Cells[k] = c
		}
	}
	if !full.SameResults(merged) {
		t.Fatal("merged shards differ from the unsharded sweep")
	}
}

// TestSweepBadShard rejects out-of-range shard specs.
func TestSweepBadShard(t *testing.T) {
	if _, err := Sweep(tinySilo(), SweepOptions{Shard: 2, Shards: 2}); err == nil {
		t.Fatal("want error for shard 2/2")
	}
}

// TestSweepCache exercises the disk cache: cold run misses, warm run hits
// with identical results, config change invalidates.
func TestSweepCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	cfg := tinySilo()

	cold, err := Sweep(cfg, SweepOptions{Jobs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Sweep.CacheMisses != len(cold.Cells) || cold.Sweep.CacheHits != 0 {
		t.Fatalf("cold stats: %+v", cold.Sweep)
	}

	warm, err := Sweep(cfg, SweepOptions{Jobs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Sweep.CacheHits != len(warm.Cells) || warm.Sweep.CacheMisses != 0 {
		t.Fatalf("warm stats: %+v", warm.Sweep)
	}
	if !cold.SameResults(warm) {
		t.Fatal("cache replay changed the matrix")
	}
	for k, c := range warm.Cells {
		if !c.FromCache {
			t.Fatalf("cell %v not marked FromCache on a warm sweep", k)
		}
	}

	// A result-affecting config change must miss every entry.
	changed := cfg
	changed.SiloQueries += 7
	inv, err := Sweep(changed, SweepOptions{Jobs: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Sweep.CacheHits != 0 || inv.Sweep.CacheMisses != len(inv.Cells) {
		t.Fatalf("config change did not invalidate: %+v", inv.Sweep)
	}
	if cold.SameResults(inv) {
		t.Fatal("changed config produced an identical matrix")
	}
}

// TestSweepCacheCorruptEntry treats unreadable entries as misses.
func TestSweepCacheCorruptEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	cfg := tinySilo()
	if _, err := Sweep(cfg, SweepOptions{Jobs: 1, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir: %v entries, err %v", len(ents), err)
	}
	for _, ent := range ents {
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e, err := Sweep(cfg, SweepOptions{Jobs: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if e.Sweep.CacheHits != 0 || e.Sweep.CacheMisses != len(e.Cells) {
		t.Fatalf("corrupt entries served as hits: %+v", e.Sweep)
	}
}

// TestCellHashSensitivity: the hash must react to every result-affecting
// knob and ignore cell-selection-only ones.
func TestCellHashSensitivity(t *testing.T) {
	k := Key{App: "silo", Variant: "pipette", Input: "ycsbc"}
	base := Tiny()
	h := base.cellHash(k, 1, false)
	mutations := map[string]Config{}
	for name, mut := range map[string]func(*Config){
		"CacheScale":  func(c *Config) { c.CacheScale++ },
		"Watchdog":    func(c *Config) { c.Watchdog++ },
		"GraphScale":  func(c *Config) { c.GraphScale++ },
		"MatrixScale": func(c *Config) { c.MatrixScale++ },
		"PRDIters":    func(c *Config) { c.PRDIters++ },
		"SiloKeys":    func(c *Config) { c.SiloKeys++ },
		"SiloQueries": func(c *Config) { c.SiloQueries++ },
		"Seed":        func(c *Config) { c.Seed++ },
	} {
		c := base
		mut(&c)
		mutations[name] = c
	}
	for name, c := range mutations {
		if c.cellHash(k, 1, false) == h {
			t.Errorf("%s change did not change the cell hash", name)
		}
	}
	if base.cellHash(k, 4, false) == h {
		t.Error("core-count change did not change the cell hash")
	}
	if base.cellHash(Key{App: "silo", Variant: "serial", Input: "ycsbc"}, 1, false) == h {
		t.Error("variant change did not change the cell hash")
	}
	filtered := base
	filtered.AppFilter = "silo"
	if filtered.cellHash(k, 1, false) != h {
		t.Error("AppFilter changed the cell hash (it only selects cells)")
	}
	if base.cellHash(k, 1, true) == h {
		t.Error("warmup mode did not change the cell hash")
	}
}

// TestSweepRunSet: a sharded sweep's run set must carry the sweep section
// and validate against the schema.
func TestSweepRunSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, err := Sweep(tinySilo(), SweepOptions{Jobs: 2, Shard: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.WriteRunSet(&sb, "shard-smoke"); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	for _, want := range []string{`"sweep"`, `"shard": 1`, `"shards": 2`, `"wall_seconds"`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("run set missing %s:\n%s", want, doc)
		}
	}
}

// TestSweepProgress: the progress stream reports one line per cell.
func TestSweepProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var sb strings.Builder
	e, err := Sweep(tinySilo(), SweepOptions{Jobs: 2, Progress: &sb})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != len(e.Cells) {
		t.Fatalf("progress printed %d lines for %d cells:\n%s", lines, len(e.Cells), sb.String())
	}
	if !strings.Contains(sb.String(), fmt.Sprintf("/%d] silo/", len(e.Cells))) {
		t.Fatalf("progress lines malformed:\n%s", sb.String())
	}
}
