package harness

import (
	"io"

	"pipette/internal/bench"
	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/stats"
)

// roadInput returns the road-network graph (the input Fig. 2 uses).
func roadInput(cfg Config) *graph.Graph {
	ins := graph.Inputs(cfg.GraphScale, cfg.Seed)
	return ins[len(ins)-1].G // "Rd"
}

// Fig2 reproduces Fig. 2: BFS performance and IPC for serial, data-parallel
// and Pipette on one 4-thread SMT core, plus a 4-core streaming multicore.
func Fig2(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	serial, _ := e.get("bfs", bench.VSerial, "Rd")
	t := stats.Table{
		Title:  "Fig. 2 — BFS on the road graph (speedup over serial, whole-run IPC)",
		Header: []string{"variant", "cores", "cycles", "speedup", "IPC"},
	}
	for _, v := range variants {
		c, ok := e.get("bfs", v, "Rd")
		if !ok {
			continue
		}
		t.AddRow(v, c.Cores, c.R.Cycles, stats.Speedup(serial.R.Cycles, c.R.Cycles), c.R.IPC())
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// gmean wraps stats.Gmean for inline table assembly: the first failure is
// captured in *err (later calls keep it) and 0 is returned, so callers
// check once after building all rows.
func gmean(xs []float64, err *error) float64 {
	v, e := stats.Gmean(xs)
	if e != nil && *err == nil {
		*err = e
	}
	return v
}

// speedupOverDP returns gmean-across-inputs speedup of variant v over the
// data-parallel baseline for app.
func (e *Eval) speedupOverDP(app, v string, err *error) float64 {
	var xs []float64
	for _, in := range e.Inputs[app] {
		dp, _ := e.get(app, bench.VDataParallel, in)
		c, ok := e.get(app, v, in)
		if !ok {
			continue
		}
		xs = append(xs, stats.Speedup(dp.R.Cycles, c.R.Cycles))
	}
	return gmean(xs, err)
}

// Fig9 reproduces Fig. 9: performance relative to data-parallel (gmean
// across inputs), and performance per core.
func Fig9(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 9 — speedup over data-parallel (gmean across inputs) | per-core",
		Header: []string{"app", "serial", "dp", "pipette", "streaming", "stream/core"},
	}
	var pipAll, strAll []float64
	var gerr error
	for _, app := range e.Apps {
		sp := func(v string) float64 { return e.speedupOverDP(app, v, &gerr) }
		pip, str := sp(bench.VPipette), sp(bench.VStreaming)
		pipAll = append(pipAll, pip)
		strAll = append(strAll, str)
		t.AddRow(app, sp(bench.VSerial), 1.0, pip, str, str/4)
	}
	strGm := gmean(strAll, &gerr)
	t.AddRow("gmean", "", "", gmean(pipAll, &gerr), strGm, strGm/4)
	if gerr != nil {
		return gerr
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig10 reproduces Fig. 10: instructions executed relative to data-parallel
// (lower is better) and IPC (higher is better).
func Fig10(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 10 — instructions relative to data-parallel | IPC",
		Header: []string{"app", "ser instr", "pip instr", "str instr", "ser IPC", "dp IPC", "pip IPC", "str IPC"},
	}
	var gerr error
	for _, app := range e.Apps {
		rel := func(v string) float64 {
			var xs []float64
			for _, in := range e.Inputs[app] {
				dp, _ := e.get(app, bench.VDataParallel, in)
				c, _ := e.get(app, v, in)
				xs = append(xs, float64(c.R.Committed)/float64(dp.R.Committed))
			}
			return gmean(xs, &gerr)
		}
		ipc := func(v string) float64 {
			var xs []float64
			for _, in := range e.Inputs[app] {
				c, _ := e.get(app, v, in)
				xs = append(xs, c.R.IPC()/float64(c.Cores))
			}
			return gmean(xs, &gerr)
		}
		t.AddRow(app, rel(bench.VSerial), rel(bench.VPipette), rel(bench.VStreaming),
			ipc(bench.VSerial), ipc(bench.VDataParallel), ipc(bench.VPipette), ipc(bench.VStreaming))
	}
	if gerr != nil {
		return gerr
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig11 reproduces Fig. 11: CPI stacks (fraction of core cycles spent
// issuing, on backend stalls, on queue stalls, and on frontend/other).
func Fig11(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 11 — CPI stacks (fraction of cycles: issue/backend/queue/front)",
		Header: []string{"app", "variant", "issue", "backend", "queue", "front"},
	}
	for _, app := range e.Apps {
		for _, v := range variants {
			var issue, backend, queuec, front, total float64
			for _, in := range e.Inputs[app] {
				c, ok := e.get(app, v, in)
				if !ok {
					continue
				}
				for _, cs := range c.R.CoreStats {
					issue += float64(cs.CPI.Issue)
					backend += float64(cs.CPI.Backend)
					queuec += float64(cs.CPI.Queue)
					front += float64(cs.CPI.Front)
					total += float64(cs.CPI.Total())
				}
			}
			if total == 0 {
				continue
			}
			t.AddRow(app, v, issue/total, backend/total, queuec/total, front/total)
		}
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig12 reproduces Fig. 12: energy relative to data-parallel, broken into
// core-dynamic, cache, DRAM and static.
func Fig12(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 12 — energy relative to data-parallel (core dyn | cache | DRAM | static | total)",
		Header: []string{"app", "variant", "core", "cache", "dram", "static", "total"},
	}
	for _, app := range e.Apps {
		// Normalize by dp's total energy, summed across inputs.
		var dpTotal float64
		for _, in := range e.Inputs[app] {
			c, _ := e.get(app, bench.VDataParallel, in)
			dpTotal += c.Energy.Total()
		}
		for _, v := range variants {
			var core, cch, dram, static float64
			for _, in := range e.Inputs[app] {
				c, ok := e.get(app, v, in)
				if !ok {
					continue
				}
				core += c.Energy.CoreDyn
				cch += c.Energy.CacheDyn
				dram += c.Energy.DRAMDyn
				static += c.Energy.Static
			}
			t.AddRow(app, v, core/dpTotal, cch/dpTotal, dram/dpTotal, static/dpTotal,
				(core+cch+dram+static)/dpTotal)
		}
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig13 reproduces Fig. 13: per-input speedups over data-parallel for every
// application.
func Fig13(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 13 — per-input speedup over data-parallel",
		Header: []string{"app", "input", "serial", "pipette", "streaming"},
	}
	for _, app := range e.Apps {
		for _, in := range e.Inputs[app] {
			dp, _ := e.get(app, bench.VDataParallel, in)
			sp := func(v string) float64 {
				c, _ := e.get(app, v, in)
				return stats.Speedup(dp.R.Cycles, c.R.Cycles)
			}
			t.AddRow(app, in, sp(bench.VSerial), sp(bench.VPipette), sp(bench.VStreaming))
		}
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig14 reproduces Fig. 14: sensitivity to physical register file size
// (180-308 entries); Pipette queue capacities scale proportionally.
func Fig14(w io.Writer, cfg Config, _ SweepOptions) error {
	g := roadInput(cfg)
	t := stats.Table{
		Title:  "Fig. 14 — PRF sensitivity, BFS road graph (speedup over serial @212)",
		Header: []string{"PRF", "dp", "pipette"},
	}
	base := func(prf int, b bench.Builder) (sim.Result, error) {
		sc := cfg.simConfig(1)
		sc.Core.PhysRegs = prf
		return bench.Run(cfg.newSystemFrom(sc), b)
	}
	ref, err := base(212, bench.BFSSerial(g, 0))
	if err != nil {
		return err
	}
	for _, prf := range []int{180, 212, 244, 276, 308} {
		qscale := float64(prf) / 212
		dp, err := base(prf, bench.BFSDataParallel(g, 0, 4))
		if err != nil {
			return err
		}
		pip, err := base(prf, bench.BFSPipetteScaled(g, 0, qscale))
		if err != nil {
			return err
		}
		t.AddRow(prf, stats.Speedup(ref.Cycles, dp.Cycles), stats.Speedup(ref.Cycles, pip.Cycles))
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig15 reproduces Fig. 15: effect of the number of stages (2/3/4) and of
// RAs on BFS decoupling.
func Fig15(w io.Writer, cfg Config, _ SweepOptions) error {
	g := roadInput(cfg)
	run := func(b bench.Builder) (sim.Result, error) {
		s := cfg.newSystem(1)
		return bench.Run(s, b)
	}
	serial, err := run(bench.BFSSerial(g, 0))
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 15 — BFS stage-count and RA sensitivity (speedup over serial)",
		Header: []string{"config", "cycles", "speedup"},
	}
	cases := []struct {
		name   string
		stages int
		ra     bool
	}{
		{"2t", 2, false}, {"3t", 3, false}, {"4t", 4, false},
		{"2t+RA", 2, true}, {"4t+RA", 4, true},
	}
	for _, c := range cases {
		r, err := run(bench.BFSPipette(g, 0, c.stages, c.ra))
		if err != nil {
			return err
		}
		t.AddRow(c.name, r.Cycles, stats.Speedup(serial.Cycles, r.Cycles))
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig16 reproduces Fig. 16: Pipette performance without and with reference
// accelerators (gmean across inputs, normalized to no-RA).
func Fig16(w io.Writer, cfg Config, opts SweepOptions) error {
	e, err := EvaluateWith(cfg, opts)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Fig. 16 — RA speedup (pipette vs pipette without RAs)",
		Header: []string{"app", "speedup from RAs"},
	}
	var all []float64
	var gerr error
	for _, app := range e.Apps {
		var xs []float64
		for _, in := range e.Inputs[app] {
			nora, _ := e.get(app, bench.VPipetteNoRA, in)
			ra, _ := e.get(app, bench.VPipette, in)
			xs = append(xs, stats.Speedup(nora.R.Cycles, ra.R.Cycles))
		}
		gm := gmean(xs, &gerr)
		all = append(all, gm)
		t.AddRow(app, gm)
	}
	t.AddRow("gmean", gmean(all, &gerr))
	if gerr != nil {
		return gerr
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig17 reproduces Fig. 17: multicore BFS — serial, 4-core data-parallel
// (16 threads), streaming, and the replicated-stage Pipette multicore with
// cross-core neighbor routing — across all five graphs, plus a 16-core
// scaling point on the road graph.
func Fig17(w io.Writer, cfg Config, _ SweepOptions) error {
	run := func(cores int, prf, nq int, b bench.Builder) (sim.Result, error) {
		sc := cfg.simConfig(cores)
		if prf > 0 {
			sc.Core.PhysRegs = prf
		}
		if nq > 0 {
			sc.Core.NumQueues = nq
		}
		return bench.Run(cfg.newSystemFrom(sc), b)
	}
	t := stats.Table{
		Title:  "Fig. 17 — multicore BFS (speedup over 1-core serial)",
		Header: []string{"graph", "dp 4c/16t", "streaming 4c", "pipette-mc 4c/12t"},
	}
	var dps, strs, mcs []float64
	for _, in := range graph.Inputs(cfg.GraphScale, cfg.Seed) {
		g := in.G
		serial, err := run(1, 0, 0, bench.BFSSerial(g, 0))
		if err != nil {
			return err
		}
		dp, err := run(4, 0, 0, bench.BFSDataParallel(g, 0, 16))
		if err != nil {
			return err
		}
		str, err := run(4, 0, 0, bench.BFSStreaming(g, 0))
		if err != nil {
			return err
		}
		mc, err := run(4, 0, 0, bench.BFSMulticore(g, 0, 4))
		if err != nil {
			return err
		}
		sp := func(r sim.Result) float64 { return stats.Speedup(serial.Cycles, r.Cycles) }
		dps, strs, mcs = append(dps, sp(dp)), append(strs, sp(str)), append(mcs, sp(mc))
		t.AddRow(in.Label, sp(dp), sp(str), sp(mc))
	}
	var gerr error
	t.AddRow("gmean", gmean(dps, &gerr), gmean(strs, &gerr), gmean(mcs, &gerr))
	if gerr != nil {
		return gerr
	}
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	// 16-core scaling on the road graph (2C cross-core queues per core need
	// a larger queue file and PRF; DESIGN.md).
	g := roadInput(cfg)
	serial, err := run(1, 0, 0, bench.BFSSerial(g, 0))
	if err != nil {
		return err
	}
	t2 := stats.Table{
		Title:  "Fig. 17 (cont.) — 16-core scaling, road graph",
		Header: []string{"config", "cores", "threads", "speedup"},
	}
	if dp16, err := run(16, 0, 0, bench.BFSDataParallel(g, 0, 64)); err == nil {
		t2.AddRow("data-parallel-16c", 16, 64, stats.Speedup(serial.Cycles, dp16.Cycles))
	} else {
		return err
	}
	if mc16, err := run(16, 280, 36, bench.BFSMulticore(g, 0, 16)); err == nil {
		t2.AddRow("pipette-multicore-16c", 16, 48, stats.Speedup(serial.Cycles, mc16.Cycles))
	} else {
		return err
	}
	_, err = io.WriteString(w, t2.String())
	return err
}
