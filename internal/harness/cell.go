// Single-cell access to the evaluation matrix. The sweep engine always
// runs the whole (sharded) matrix; pipette-server schedules one cell at a
// time, with per-call options, and content-addresses results by the same
// cell hash the sweep disk cache uses — so a server job, a CLI sweep and a
// direct test run sharing a cache dir all substitute for one another.
package harness

import (
	"fmt"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// cellObserver forwards one cell's telemetry samples to a live sink.
type cellObserver struct {
	key      Key
	onSample func(Key, telemetry.Sample)
	interval uint64
}

// attach enables sampling on s and wires the forwarding hook. Safe on a
// nil receiver (sampling off).
func (o *cellObserver) attach(s *sim.System) {
	if o == nil {
		return
	}
	sm := s.EnableSampling(o.interval)
	sm.OnAppend = func(smp telemetry.Sample) { o.onSample(o.key, smp) }
}

// Matrix enumerates cfg's evaluation matrix in canonical order and
// reports each cell's core count. Enumeration builds the deterministic
// input generators, so callers validating many requests against one
// Config should memoize the result rather than re-enumerate per request.
func (cfg Config) Matrix() ([]Key, map[Key]int) {
	specs, _, _ := cfg.cellSpecs()
	keys := make([]Key, 0, len(specs))
	cores := make(map[Key]int, len(specs))
	for _, sp := range specs {
		_, c := sp.build(sp.key.Variant)
		keys = append(keys, sp.key)
		cores[sp.key] = c
	}
	return keys, cores
}

// HashCell returns the content address of key's result under cfg: the
// same SHA-256 the sweep disk cache files results under. cores is the
// cell's core count (from Matrix); warmup selects the warm-fork flavor of
// the cell, which caches separately from the cold run.
func (cfg Config) HashCell(key Key, cores int, warmup bool) string {
	return cfg.cellHash(key, cores, warmup)
}

// RunCell executes exactly one cell of cfg's evaluation matrix under
// opts. Only the execution knobs that apply to a single cell are honored
// (CacheDir, Warmup, OnSample/SampleInterval); Jobs and sharding are
// matrix-level concerns and are ignored. It reports whether the result
// was served from the disk cache. Options arrive per call — there is no
// process-global state — so concurrent callers with different options
// cannot cross-contaminate.
func RunCell(cfg Config, key Key, opts SweepOptions) (Cell, bool, error) {
	specs, _, _ := cfg.cellSpecs()
	for _, sp := range specs {
		if sp.key == key {
			dc := newDiskCache(opts.CacheDir)
			var ws *warmupSet
			if opts.Warmup {
				ws = newWarmupSet(cfg, opts.CacheDir)
			}
			return cfg.runCell(sp, opts, dc, ws)
		}
	}
	return Cell{}, false, fmt.Errorf("harness: no cell %s/%s/%s in the evaluation matrix",
		key.App, key.Variant, key.Input)
}

// LoadCachedCell probes the on-disk sweep cache at dir for the cell
// content-addressed by hash. Corrupt or version-skewed entries are
// misses, exactly as in the sweep path.
func LoadCachedCell(dir, hash string) (Cell, bool) {
	return newDiskCache(dir).load(hash)
}
