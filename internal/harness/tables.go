package harness

import (
	"fmt"
	"io"

	"pipette/internal/graph"
	"pipette/internal/queue"
	"pipette/internal/sim"
	"pipette/internal/sparse"
	"pipette/internal/stats"
)

// Table2 prints the Pipette instruction set (Table II).
func Table2(w io.Writer, _ Config, _ SweepOptions) error {
	t := stats.Table{
		Title:  "Table II — the Pipette ISA",
		Header: []string{"operation", "form", "semantics"},
	}
	t.AddRow("enqueue", "write to an input-mapped register", "implicit enqueue of the written value")
	t.AddRow("dequeue", "read of an output-mapped register", "implicit dequeue; blocks on empty; control values trap to the dequeue handler")
	t.AddRow("peek", "peek rd, q", "read the head of q without dequeuing")
	t.AddRow("enq_ctrl", "enqc q, rs", "enqueue rs with the control bit set")
	t.AddRow("skip_to_ctrl", "skipc rd, q", "discard data until the next control value; blocks and arms the producer's enqueue handler if none")
	t.AddRow("qpoll", "qpoll rd, q", "non-blocking occupancy check (extension; see DESIGN.md §4.6)")
	t.AddRow("map/unmap", "privileged", "bind an architectural register to a queue endpoint")
	t.AddRow("set handlers", "privileged", "register per-thread enqueue/dequeue control handler PCs")
	_, err := io.WriteString(w, t.String())
	return err
}

// Table3 prints the storage-cost model (Table III), which matches the
// paper's 1844-bit QRM / 2356-bit total exactly.
func Table3(w io.Writer, _ Config, _ SweepOptions) error {
	c := queue.ComputeCost(queue.DefaultCostConfig())
	t := stats.Table{
		Title:  "Table III — Pipette storage costs",
		Header: []string{"structure", "bits"},
	}
	t.AddRow("QRM entries (148 x (8b phys idx + ctrl bit))", c.QRMEntryBits)
	t.AddRow("QRM pointers (16 queues x 4 x 8b)", c.QRMPointerBits)
	t.AddRow("QRM total", c.QRMBits())
	t.AddRow("handler PCs (4 threads x 2 x 64b)", c.HandlerPCBits)
	t.AddRow("total", c.TotalBits())
	t.AddRow("total bytes", c.TotalBytes())
	_, err := io.WriteString(w, t.String())
	return err
}

// Table4 prints the simulated system configuration (Table IV).
func Table4(w io.Writer, cfg Config, _ SweepOptions) error {
	sc := sim.DefaultConfig()
	cc := sc.Core
	hc := sc.Cache.Scale(cfg.CacheScale)
	t := stats.Table{
		Title:  "Table IV — simulated system",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("threads/core", cc.Threads)
	t.AddRow("issue width", cc.IssueWidth)
	t.AddRow("ROB (per thread)", cc.ROBPerThread)
	t.AddRow("issue queue", cc.IQSize)
	t.AddRow("LQ/SQ per thread", fmt.Sprintf("%d/%d", cc.LQPerThread, cc.SQPerThread))
	t.AddRow("physical registers", cc.PhysRegs)
	t.AddRow("queues x default cap", fmt.Sprintf("%d x %d", cc.NumQueues, cc.DefaultQueueCap))
	t.AddRow("mispredict penalty", cc.MispredictPenalty)
	t.AddRow("CV trap penalty", cc.TrapPenalty)
	t.AddRow("L1D", fmt.Sprintf("%d sets x %d ways x %dB, %d cyc", hc.L1Sets, hc.L1Ways, hc.LineBytes, hc.L1Lat))
	t.AddRow("L2", fmt.Sprintf("%d sets x %d ways, %d cyc", hc.L2Sets, hc.L2Ways, hc.L2Lat))
	t.AddRow("L3 (shared)", fmt.Sprintf("%d sets x %d ways, %d cyc", hc.L3Sets, hc.L3Ways, hc.L3Lat))
	t.AddRow("DRAM", fmt.Sprintf("%d cyc + %d cyc/line", hc.DRAMLat, hc.DRAMCyclesPerLine))
	t.AddRow("MSHRs/core", hc.MSHRs)
	t.AddRow("NoC hop", sc.NoCLatency)
	t.AddRow("cache scale (vs Table IV)", fmt.Sprintf("1/%d (inputs scaled to match; DESIGN.md §1)", cfg.CacheScale))
	_, err := io.WriteString(w, t.String())
	return err
}

// Table5 lists the generated graph inputs (Table V shapes).
func Table5(w io.Writer, cfg Config, _ SweepOptions) error {
	t := stats.Table{
		Title:  "Table V — input graphs (synthetic, Table V-shaped)",
		Header: []string{"label", "class", "vertices", "edges", "avg degree"},
	}
	for _, in := range graph.Inputs(cfg.GraphScale, cfg.Seed) {
		t.AddRow(in.Label, in.Full, in.G.N, in.G.M(), float64(in.G.M())/float64(in.G.N))
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// Table6 lists the generated sparse-matrix inputs (Table VI shapes).
func Table6(w io.Writer, cfg Config, _ SweepOptions) error {
	t := stats.Table{
		Title:  "Table VI — input matrices (synthetic, Table VI-shaped)",
		Header: []string{"label", "class", "n", "nnz", "avg nnz/row"},
	}
	for _, in := range sparse.Inputs(cfg.MatrixScale, cfg.Seed) {
		t.AddRow(in.Label, in.M.Name, in.M.N, in.M.NNZ(), in.M.AvgNNZPerRow())
	}
	_, err := io.WriteString(w, t.String())
	return err
}
