package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func warmupTestConfig() Config {
	cfg := Tiny()
	cfg.AppFilter = "silo"
	return cfg
}

// TestWarmupSweepDeterministic: the fork-after-warmup path must keep the
// sweep's determinism contract — identical results at any worker count and
// across shard splits.
func TestWarmupSweepDeterministic(t *testing.T) {
	cfg := warmupTestConfig()
	seq, err := Sweep(cfg, SweepOptions{Jobs: 1, Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(cfg, SweepOptions{Jobs: 4, Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.SameResults(par) {
		t.Error("warmup sweep results differ between jobs=1 and jobs=4")
	}
	merged := &Eval{Cells: map[Key]Cell{}}
	for shard := 0; shard < 2; shard++ {
		e, err := Sweep(cfg, SweepOptions{Jobs: 2, Warmup: true, Shard: shard, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for k, c := range e.Cells {
			merged.Cells[k] = c
		}
	}
	if !seq.SameResults(merged) {
		t.Error("warmup sweep results differ between full and merged 2-shard runs")
	}
}

// TestWarmupReducesTotalCycles: the point of forking from a warm snapshot —
// total simulated cycles (shared warmup prefixes + per-cell ROI) must come
// in under the cold sweep's total. The simulator is deterministic, so this
// compares two exact numbers, not a noisy benchmark.
func TestWarmupReducesTotalCycles(t *testing.T) {
	cfg := warmupTestConfig()
	cold, err := Sweep(cfg, SweepOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep(cfg, SweepOptions{Jobs: 2, Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Sweep.Warmup.Built == 0 || warm.Sweep.Warmup.Reused == 0 {
		t.Fatalf("warmup sweep built %d snapshots, reused %d — expected sharing across variants",
			warm.Sweep.Warmup.Built, warm.Sweep.Warmup.Reused)
	}
	warmTotal := warm.Sweep.SimCycles + warm.Sweep.Warmup.Cycles
	if warmTotal >= cold.Sweep.SimCycles {
		t.Errorf("fork-after-warmup did not reduce total simulated cycles: warm %d (roi %d + warmup %d) >= cold %d",
			warmTotal, warm.Sweep.SimCycles, warm.Sweep.Warmup.Cycles, cold.Sweep.SimCycles)
	}
	if cold.SameResults(warm) {
		t.Error("warm and cold sweeps produced identical cells — warmup evidently had no effect")
	}
}

// TestWarmupSnapshotDiskReuse: warm snapshots persist beside the result
// cache; a later sweep that recomputes cells must reuse them from disk and
// still produce identical results.
func TestWarmupSnapshotDiskReuse(t *testing.T) {
	cfg := warmupTestConfig()
	dir := t.TempDir()
	first, err := Sweep(cfg, SweepOptions{Jobs: 2, Warmup: true, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sweep.Warmup.Built == 0 {
		t.Fatal("first sweep built no warmup snapshots")
	}
	// Drop the cell results but keep the warm-*.snap files.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "warm-") {
			snaps++
			continue
		}
		if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if snaps == 0 {
		t.Fatal("no warm-*.snap files were persisted")
	}
	second, err := Sweep(cfg, SweepOptions{Jobs: 2, Warmup: true, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Sweep.CacheHits != 0 {
		t.Fatalf("expected all cells to recompute, got %d cache hits", second.Sweep.CacheHits)
	}
	if second.Sweep.Warmup.Built != 0 {
		t.Errorf("second sweep rebuilt %d warmup snapshots despite the disk cache", second.Sweep.Warmup.Built)
	}
	if !first.SameResults(second) {
		t.Error("results differ between freshly built and disk-restored warmup snapshots")
	}
}
