// Package harness regenerates every table and figure of the paper's
// evaluation (Sec. VI). Experiments run on scaled-down synthetic inputs with
// proportionally scaled caches (see DESIGN.md §1); EXPERIMENTS.md records
// paper-vs-measured numbers for each.
package harness

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/energy"
	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

// Config scopes experiment sizes.
type Config struct {
	GraphScale  int // scales Table V-shaped inputs
	MatrixScale int // scales Table VI-shaped inputs
	CacheScale  int // divides cache capacities to preserve the paper's regime
	PRDIters    int
	SiloKeys    int
	SiloQueries int
	Seed        int64 // base RNG seed for all synthetic inputs (default 1)
	Watchdog    uint64
	AppFilter   string // comma-separated app subset ("" = all six)

	// NoFastForward disables quiescence fast-forward on every system the
	// harness builds (the -no-fastforward escape hatch). Results are
	// bit-identical either way — the equivalence tests assert it — so the
	// sweep disk cache deliberately ignores this knob; it only changes
	// wall-clock. It does key the in-process memo (Config is the map key),
	// so on/off sweeps in one process really both run.
	NoFastForward bool

	// SimWorkers sets the per-system produce-phase goroutine count (the
	// -sim-workers flag; 0/1 = single-goroutine kernel). Like
	// NoFastForward it is an execution strategy, not a configuration:
	// results are bit-identical at any setting — the parallel equivalence
	// matrix asserts it — so the sweep disk cache ignores this knob too.
	SimWorkers int

	// NoPredecode disables the pre-decoded micro-op frontend and renames
	// from raw Insts (the -no-predecode escape hatch). A third execution
	// strategy: bit-identical results either way, ignored by the sweep
	// disk cache, keyed by the in-process memo.
	NoPredecode bool

	// Speculate enables the speculative epoch kernel (-speculate) and
	// SpecEpoch bounds its epoch length (-epoch; 0 = sim.DefaultSpecEpoch).
	// A fourth execution strategy (docs/SPECULATION.md): validation-by-
	// replay makes results bit-identical with speculation on or off, so the
	// sweep disk cache ignores both knobs; the in-process memo keys them.
	Speculate bool
	SpecEpoch uint64

	// Model-parameter overrides, the calibration knobs internal/validate
	// grid-searches (0 = keep the simulator default). They flow through
	// simConfig into every system the harness builds and therefore into
	// the sweep cell hash, so calibration points cache independently.
	DRAMLat     uint64 // cache.Config.DRAMLat
	L2Lat       uint64 // cache.Config.L2Lat
	L3Lat       uint64 // cache.Config.L3Lat
	NoCLat      uint64 // sim.Config.NoCLatency (cross-core queue hop)
	TrapPenalty uint64 // core.Config.TrapPenalty (CV/enqueue-handler redirect)
}

// Default is the evaluation-scale configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		GraphScale:  1,
		MatrixScale: 1,
		CacheScale:  8,
		PRDIters:    4,
		SiloKeys:    20000,
		SiloQueries: 600,
		Seed:        1,
		Watchdog:    5_000_000,
	}
}

// Tiny returns a fast configuration for tests.
func Tiny() Config {
	c := Default()
	c.GraphScale = 1 // generators already produce small graphs; tests subset apps
	c.SiloKeys = 800
	c.SiloQueries = 120
	return c
}

// Variant names, in report order.
var variants = []string{
	bench.VSerial, bench.VDataParallel, bench.VPipette, bench.VPipetteNoRA, bench.VStreaming,
}

// Key identifies one run of the evaluation matrix.
type Key struct {
	App, Variant, Input string
}

// Cell is one completed run. WallSeconds and FromCache describe how the
// cell was obtained, not what it computed: every simulated field is
// deterministic, so equality checks between sweeps must ignore them (see
// Eval.SameResults).
type Cell struct {
	R      sim.Result
	Energy energy.Breakdown
	Cores  int

	WallSeconds float64 `json:"wall_seconds,omitempty"` // simulation wall-clock
	FromCache   bool    `json:"-"`                      // satisfied from the disk cache
}

// Eval is the evaluation matrix shared by Figs. 9-13 and 16. Sweep holds
// the execution stats of the sweep that produced it (nil only for
// hand-built matrices in tests).
type Eval struct {
	Cfg    Config
	Cells  map[Key]Cell
	Apps   []string
	Inputs map[string][]string // app -> input labels
	Sweep  *SweepStats
}

// SameResults reports whether two matrices hold identical simulated
// results for identical cell sets, ignoring provenance (wall time, cache
// hits). This is the determinism contract: any -jobs / cache setting must
// produce SameResults matrices.
func (e *Eval) SameResults(o *Eval) bool {
	if len(e.Cells) != len(o.Cells) {
		return false
	}
	for k, c := range e.Cells {
		oc, ok := o.Cells[k]
		if !ok {
			return false
		}
		c.WallSeconds, oc.WallSeconds = 0, 0
		c.FromCache, oc.FromCache = false, false
		if !reflect.DeepEqual(c, oc) {
			return false
		}
	}
	return true
}

func (e *Eval) get(app, variant, input string) (Cell, bool) {
	c, ok := e.Cells[Key{app, variant, input}]
	return c, ok
}

// appRun describes how to build one (variant, input) run.
type appRun struct {
	input string
	build func(variant string) (bench.Builder, int) // returns builder + cores
}

// simConfig is the exact system configuration a cell runs under; the
// sweep cache hashes it, so every knob that reaches the simulator must
// flow through here.
func (cfg Config) simConfig(cores int) sim.Config {
	sc := sim.DefaultConfig()
	sc.Cores = cores
	sc.Cache = cache.DefaultConfig().Scale(cfg.CacheScale)
	sc.WatchdogCycles = cfg.Watchdog
	if cfg.DRAMLat > 0 {
		sc.Cache.DRAMLat = cfg.DRAMLat
	}
	if cfg.L2Lat > 0 {
		sc.Cache.L2Lat = cfg.L2Lat
	}
	if cfg.L3Lat > 0 {
		sc.Cache.L3Lat = cfg.L3Lat
	}
	if cfg.NoCLat > 0 {
		sc.NoCLatency = cfg.NoCLat
	}
	if cfg.TrapPenalty > 0 {
		sc.Core.TrapPenalty = cfg.TrapPenalty
	}
	return sc
}

func (cfg Config) newSystem(cores int) *sim.System {
	return cfg.newSystemFrom(cfg.simConfig(cores))
}

// newSystemFrom builds a system from an already-customized sim.Config
// (figure drivers tweak PhysRegs/NumQueues on top of simConfig) with the
// Config's execution-strategy knobs applied.
func (cfg Config) newSystemFrom(sc sim.Config) *sim.System {
	s := sim.New(sc)
	s.SetFastForward(!cfg.NoFastForward)
	s.SetPredecode(!cfg.NoPredecode)
	if cfg.SimWorkers > 1 {
		s.SetWorkers(cfg.SimWorkers)
	}
	s.SetSpeculate(cfg.Speculate)
	s.SetEpoch(cfg.SpecEpoch)
	return s
}

// runOne executes a single run and charges energy. label names the cell on
// the live introspection endpoint when one is attached (SetProfServer).
// obs, when non-nil, attaches a telemetry sampler and streams every sample
// as it lands; sampling is observational, so the returned Cell is
// bit-identical either way.
func (cfg Config) runOne(b bench.Builder, cores int, label string, obs *cellObserver) (Cell, error) {
	s := cfg.newSystem(cores)
	obs.attach(s)
	psrv := profSrv.Load()
	if psrv != nil {
		s.EnableProfiling()
		s.EnableKernelProf()
	}
	r, err := bench.Run(s, b)
	if psrv != nil {
		psrv.Update(s.ProfSnapshot(label))
		// Profiling was driven by the endpoint, not the Config: strip the
		// snapshots so the cell stays byte-identical to an unprofiled run
		// (the sweep disk cache and SameResults both depend on that).
		r.Prof = nil
	}
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		R:      r,
		Energy: energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles),
		Cores:  cores,
	}, nil
}

// graphApps builds the per-app run lists for the four graph kernels.
func (cfg Config) graphApps() map[string][]appRun {
	apps := map[string][]appRun{}
	for _, in := range graph.Inputs(cfg.GraphScale, cfg.Seed) {
		g := in.G
		label := in.Label
		apps["bfs"] = append(apps["bfs"], appRun{label, func(v string) (bench.Builder, int) {
			switch v {
			case bench.VSerial:
				return bench.BFSSerial(g, 0), 1
			case bench.VDataParallel:
				return bench.BFSDataParallel(g, 0, 4), 1
			case bench.VPipette:
				return bench.BFSPipette(g, 0, 4, true), 1
			case bench.VPipetteNoRA:
				return bench.BFSPipette(g, 0, 4, false), 1
			default:
				return bench.BFSStreaming(g, 0), 4
			}
		}})
		apps["cc"] = append(apps["cc"], appRun{label, func(v string) (bench.Builder, int) {
			switch v {
			case bench.VSerial:
				return bench.CCSerial(g), 1
			case bench.VDataParallel:
				return bench.CCDataParallel(g, 4), 1
			case bench.VPipette:
				return bench.CCPipette(g, true), 1
			case bench.VPipetteNoRA:
				return bench.CCPipette(g, false), 1
			default:
				return bench.CCStreaming(g), 4
			}
		}})
		apps["prd"] = append(apps["prd"], appRun{label, func(v string) (bench.Builder, int) {
			it := cfg.PRDIters
			switch v {
			case bench.VSerial:
				return bench.PRDSerial(g, it), 1
			case bench.VDataParallel:
				return bench.PRDDataParallel(g, it, 4), 1
			case bench.VPipette:
				return bench.PRDPipette(g, it, true), 1
			case bench.VPipetteNoRA:
				return bench.PRDPipette(g, it, false), 1
			default:
				return bench.PRDStreaming(g, it), 4
			}
		}})
		apps["radii"] = append(apps["radii"], appRun{label, func(v string) (bench.Builder, int) {
			switch v {
			case bench.VSerial:
				return bench.RadiiSerial(g), 1
			case bench.VDataParallel:
				return bench.RadiiDataParallel(g, 4), 1
			case bench.VPipette:
				return bench.RadiiPipette(g, true), 1
			case bench.VPipetteNoRA:
				return bench.RadiiPipette(g, false), 1
			default:
				return bench.RadiiStreaming(g), 4
			}
		}})
	}
	return apps
}

func (cfg Config) spmmApp() []appRun {
	var runs []appRun
	for _, in := range sparse.Inputs(cfg.MatrixScale, cfg.Seed) {
		m := in.M
		runs = append(runs, appRun{in.Label, func(v string) (bench.Builder, int) {
			switch v {
			case bench.VSerial:
				return bench.SpMMSerial(m, m), 1
			case bench.VDataParallel:
				return bench.SpMMDataParallel(m, m, 4), 1
			case bench.VPipette:
				return bench.SpMMPipette(m, m, true), 1
			case bench.VPipetteNoRA:
				return bench.SpMMPipette(m, m, false), 1
			default:
				return bench.SpMMStreaming(m, m), 4
			}
		}})
	}
	return runs
}

func (cfg Config) siloApp() []appRun {
	// The YCSB generator seed derives from the base seed so that the default
	// Seed of 1 reproduces the historical generator seed of 99 exactly.
	k, q, ys := cfg.SiloKeys, cfg.SiloQueries, cfg.Seed+98
	return []appRun{{"ycsbc", func(v string) (bench.Builder, int) {
		switch v {
		case bench.VSerial:
			return bench.SiloSerial(k, q, ys), 1
		case bench.VDataParallel:
			return bench.SiloDataParallel(k, q, 4, ys), 1
		case bench.VPipette:
			return bench.SiloPipette(k, q, true, ys), 1
		case bench.VPipetteNoRA:
			return bench.SiloPipette(k, q, false, ys), 1
		default:
			return bench.SiloStreaming(k, q, ys), 4
		}
	}}}
}

func (cfg Config) allApps() (map[string][]appRun, []string) {
	apps := cfg.graphApps()
	apps["spmm"] = cfg.spmmApp()
	apps["silo"] = cfg.siloApp()
	order := []string{"bfs", "cc", "prd", "radii", "spmm", "silo"}
	if cfg.AppFilter != "" {
		keep := map[string]bool{}
		for _, a := range strings.Split(cfg.AppFilter, ",") {
			keep[strings.TrimSpace(a)] = true
		}
		var filtered []string
		for _, a := range order {
			if keep[a] {
				filtered = append(filtered, a)
			}
		}
		order = filtered
	}
	return apps, order
}

// experiments maps experiment names to runners. Every runner takes the
// sweep options per call (nothing reads the deprecated process-global).
var experiments = map[string]func(io.Writer, Config, SweepOptions) error{
	"fig2":    Fig2,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"fig12":   Fig12,
	"fig13":   Fig13,
	"fig14":   Fig14,
	"fig15":   Fig15,
	"fig16":   Fig16,
	"fig17":   Fig17,
	"profile": ProfileExp,
	"table2":  Table2,
	"table3":  Table3,
	"table4":  Table4,
	"table5":  Table5,
	"table6":  Table6,
}

// Names lists all experiment names in order.
func Names() []string {
	var ns []string
	for n := range experiments {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Run executes the named experiment under opts, writing its report to w.
func Run(name string, w io.Writer, cfg Config, opts SweepOptions) error {
	f, ok := experiments[name]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
	}
	return f(w, cfg, opts)
}
