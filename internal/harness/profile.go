// Cycle-accounting observability hooks: the live-introspection server
// attachment for pipette-bench (-http) and the "profile" experiment, a
// figure-style CPI-stack table built from the deterministic issue-slot
// account (see docs/PROFILING.md).
package harness

import (
	"fmt"
	"io"
	"sync/atomic"

	"pipette/internal/bench"
	"pipette/internal/profile"
	"pipette/internal/stats"
)

// profSrv holds the live introspection server pipette-bench attaches with
// SetProfServer; sweep workers read it lock-free.
var profSrv atomic.Pointer[profile.Server]

// SetProfServer attaches (or detaches, with nil) a live introspection
// server: every subsequently computed sweep cell runs with profiling and
// kernel timing enabled and pushes a labeled snapshot as it completes, so
// /top follows the sweep live. The profiled counters are stripped from the
// stored cells, so cached results and figure output remain byte-identical
// with or without a server attached.
func SetProfServer(p *profile.Server) { profSrv.Store(p) }

// ProfileExp renders the cycle-accounting CPI stacks: each app's first
// (canonical-order) input is re-run under the serial and pipette variants
// with profiling enabled, and every core's issue slots are shown as
// percentage shares per category. The runs bypass the sweep cache — the
// slot account is exactly what the cache does not store — and every
// snapshot is conservation-checked before rendering. Output is
// deterministic: the counters are pure functions of simulated state.
func ProfileExp(w io.Writer, cfg Config, _ SweepOptions) error {
	apps, order := cfg.allApps()
	t := stats.Table{
		Title:  "Profile — issue-slot attribution (% of cycles × width), first input per app",
		Header: append([]string{"app", "variant", "core"}, profile.CategoryNames()...),
	}
	for _, app := range order {
		runs := apps[app]
		if len(runs) == 0 {
			continue
		}
		run := runs[0]
		for _, v := range []string{bench.VSerial, bench.VPipette} {
			b, cores := run.build(v)
			s := cfg.newSystem(cores)
			s.EnableProfiling()
			r, err := bench.Run(s, b)
			if err != nil {
				return fmt.Errorf("profile %s/%s/%s: %w", app, v, run.input, err)
			}
			for _, ps := range r.Prof {
				if err := ps.Conserved(); err != nil {
					return fmt.Errorf("profile %s/%s/%s: %w", app, v, run.input, err)
				}
				tot := float64(ps.Cycles) * float64(ps.Width)
				if tot == 0 {
					continue
				}
				row := []any{app, v, ps.Core}
				for _, n := range ps.Slots {
					row = append(row, fmt.Sprintf("%.1f", 100*float64(n)/tot))
				}
				t.AddRow(row...)
			}
		}
	}
	_, err := io.WriteString(w, t.String())
	return err
}
