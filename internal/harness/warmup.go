// Fork-after-warmup support for the sweep engine. With
// SweepOptions.Warmup, each cell group sharing an (app, input, cores,
// footprint) identity simulates one cache-warmup prefix (bench.CacheWarmup
// over the cell's memory footprint), quiesces it with System.PrepareFork,
// and snapshots the warm machine. Every variant in the group then restores
// that snapshot into a fresh system and runs its own builder on top, so the
// warm-cache prefix is simulated once instead of once per variant — and the
// region-of-interest Result starts from identical warm state for all of
// them. Snapshots are memoized per sweep and cached on disk beside the
// result cache; both layers key on the checkpoint schema version.
package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pipette/internal/bench"
	"pipette/internal/checkpoint"
	"pipette/internal/energy"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// warmupIdentity is the canonical hash input for one warmup snapshot. The
// footprint is derived deterministically from the cell's builder, so
// variants that lay out identical data share one snapshot.
type warmupIdentity struct {
	Version        string
	SnapshotSchema string
	App, Input     string
	Cores          int
	Footprint      uint64
	Sim            sim.Config
	Seed           int64
}

func (cfg Config) warmupHash(k Key, cores int, footprint uint64) string {
	h := sha256.New()
	_ = json.NewEncoder(h).Encode(warmupIdentity{
		Version:        sweepCacheVersion,
		SnapshotSchema: checkpoint.Schema,
		App:            k.App,
		Input:          k.Input,
		Cores:          cores,
		Footprint:      footprint,
		Sim:            cfg.simConfig(cores),
		Seed:           cfg.Seed,
	})
	return hex.EncodeToString(h.Sum(nil))
}

// WarmupStats counts what the warmup layer did during one sweep.
type WarmupStats struct {
	Built  int64  // snapshots simulated this sweep
	Reused int64  // get() calls satisfied by the memo or disk cache
	Cycles uint64 // simulated warmup-prefix cycles (built snapshots only)
}

// warmupSet builds warmup snapshots at most once per identity within a
// sweep and persists them under dir ("" keeps them in memory only).
type warmupSet struct {
	cfg Config
	dir string

	mu sync.Mutex
	m  map[string]*warmupEntry

	built  atomic.Int64
	reused atomic.Int64
	cycles atomic.Uint64
}

type warmupEntry struct {
	once sync.Once
	snap []byte
	err  error
}

func newWarmupSet(cfg Config, dir string) *warmupSet {
	return &warmupSet{cfg: cfg, dir: dir, m: map[string]*warmupEntry{}}
}

// Stats returns the accumulated counters.
func (ws *warmupSet) Stats() WarmupStats {
	if ws == nil {
		return WarmupStats{}
	}
	return WarmupStats{Built: ws.built.Load(), Reused: ws.reused.Load(), Cycles: ws.cycles.Load()}
}

func (ws *warmupSet) path(hash string) string {
	return filepath.Join(ws.dir, "warm-"+hash+".snap")
}

// get returns the warmup snapshot for the identity, building it on first
// use. Concurrent callers for the same identity block on one build.
func (ws *warmupSet) get(k Key, cores int, footprint uint64) ([]byte, error) {
	hash := ws.cfg.warmupHash(k, cores, footprint)
	ws.mu.Lock()
	ent, ok := ws.m[hash]
	if !ok {
		ent = &warmupEntry{}
		ws.m[hash] = ent
	}
	ws.mu.Unlock()
	first := false
	ent.once.Do(func() {
		first = true
		ent.snap, ent.err = ws.load(hash)
		if ent.err == nil && ent.snap != nil {
			ws.reused.Add(1)
			return
		}
		ent.snap, ent.err = ws.build(k, cores, footprint)
		if ent.err == nil {
			ws.store(hash, ent.snap)
		}
	})
	if !first && ent.err == nil {
		ws.reused.Add(1)
	}
	return ent.snap, ent.err
}

// build simulates the warmup prefix to completion, quiesces, snapshots.
func (ws *warmupSet) build(k Key, cores int, footprint uint64) ([]byte, error) {
	s := ws.cfg.newSystem(cores)
	r, err := bench.Run(s, bench.CacheWarmup(footprint))
	if err != nil {
		return nil, fmt.Errorf("warmup %s/%s: %w", k.App, k.Input, err)
	}
	if err := s.PrepareFork(); err != nil {
		return nil, fmt.Errorf("warmup %s/%s: %w", k.App, k.Input, err)
	}
	var buf bytes.Buffer
	err = s.Save(&buf, checkpoint.Workload{App: k.App, Input: k.Input, Seed: ws.cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("warmup %s/%s: %w", k.App, k.Input, err)
	}
	ws.built.Add(1)
	ws.cycles.Add(r.Cycles)
	return buf.Bytes(), nil
}

// load probes the disk cache; any malformed or schema-skewed file is a
// miss (nil, nil), never an error — the snapshot is simply rebuilt.
func (ws *warmupSet) load(hash string) ([]byte, error) {
	if ws.dir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(ws.path(hash))
	if err != nil {
		return nil, nil
	}
	if _, _, err := checkpoint.Read(bytes.NewReader(data)); err != nil {
		return nil, nil
	}
	return data, nil
}

// store persists a snapshot best-effort (temp file + rename, like the
// result cache, so concurrent shards — and concurrent processes, hence
// the pid in the temp name — never see torn files).
func (ws *warmupSet) store(hash string, snap []byte) {
	if ws.dir == "" {
		return
	}
	if err := os.MkdirAll(ws.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(ws.dir, fmt.Sprintf("warm-%s.%d.tmp*", hash, os.Getpid()))
	if err != nil {
		return
	}
	if _, err := tmp.Write(snap); err == nil && tmp.Close() == nil {
		if os.Rename(tmp.Name(), ws.path(hash)) == nil {
			return
		}
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
}

// runWarm executes one cell through the fork path: measure the cell's
// memory footprint with a functional (unsimulated) scratch build, obtain
// the group's warmup snapshot, restore it into a fresh system, then run
// the variant's builder on the warm machine. Result.Cycles covers only the
// post-fork region of interest.
func (cfg Config) runWarm(sp cellSpec, ws *warmupSet, obs *cellObserver) (Cell, error) {
	b, cores := sp.build(sp.key.Variant)
	scratch := cfg.newSystem(cores)
	sp.mustBuild(scratch)
	footprint := scratch.Mem.Brk()

	snap, err := ws.get(sp.key, cores, footprint)
	if err != nil {
		return Cell{}, err
	}
	s := cfg.newSystem(cores)
	if _, err := s.Restore(bytes.NewReader(snap)); err != nil {
		return Cell{}, fmt.Errorf("warmup restore: %w", err)
	}
	obs.attach(s)
	r, err := bench.Run(s, b)
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		R:      r,
		Energy: energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles),
		Cores:  cores,
	}, nil
}

// mustBuild runs the cell's builder for layout only (footprint probing).
func (sp cellSpec) mustBuild(s *sim.System) {
	b, _ := sp.build(sp.key.Variant)
	b(s)
}

// Report converts warmup stats into the run-set telemetry schema fields.
func (w WarmupStats) report(r *telemetry.SweepReport) {
	r.WarmupSnapshots = int(w.Built)
	r.WarmupReuses = int(w.Reused)
	r.WarmupCycles = w.Cycles
}
