// The parallel sweep engine: enumerates the full (app, variant, input)
// evaluation matrix up front, dispatches cells to a bounded worker pool,
// and reassembles results keyed by cell identity so the produced Eval is
// bit-identical at any worker count. Each cell builds its own sim.System
// and the input generators are deterministic, so cells are independent;
// the engine adds per-cell failure isolation, i/m sharding for CI, live
// progress, per-cell wall-clock timing, and a content-hashed on-disk
// result cache (see docs/SWEEP.md).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pipette/internal/bench"
	"pipette/internal/telemetry"
)

// SweepOptions controls how the evaluation matrix is executed. The zero
// value runs every cell with GOMAXPROCS workers, no disk cache, no
// progress output, and full-sweep failure isolation.
type SweepOptions struct {
	Jobs     int       // worker-pool size; <= 0 selects GOMAXPROCS
	FailFast bool      // stop dispatching new cells after the first failure
	Shard    int       // this shard's index in [0, Shards)
	Shards   int       // total shards; <= 1 runs the whole matrix
	CacheDir string    // on-disk result cache directory; "" disables
	Warmup   bool      // fork each cell from a shared warm-cache snapshot
	Progress io.Writer // live per-cell completion lines; nil disables

	// OnSample, when non-nil, attaches a telemetry sampler to every
	// computed (non-cached) cell and forwards each sample as it lands,
	// tagged with the cell's Key. It is called from simulation goroutines
	// and must be safe for concurrent use. Sampling is observational: the
	// cell's simulated result is bit-identical with or without it, so the
	// disk cache ignores this knob. Cache hits produce no samples.
	OnSample func(Key, telemetry.Sample)

	// SampleInterval is the OnSample cycle period; 0 selects the
	// telemetry default.
	SampleInterval uint64
}

// CellFailure reports one failed cell with its identity, so a bad cell
// does not abort the rest of the sweep.
type CellFailure struct {
	Key Key
	Err error
}

func (f CellFailure) String() string {
	return fmt.Sprintf("%s/%s/%s: %v", f.Key.App, f.Key.Variant, f.Key.Input, f.Err)
}

// SweepStats summarizes one sweep execution. Unlike Eval.Cells it is not
// deterministic (wall times vary run to run).
type SweepStats struct {
	Jobs, Shard, Shards    int
	Cells                  int // cells assigned to this shard
	CacheHits, CacheMisses int
	SimCycles              uint64 // cycles simulated for computed cells (ROI only)
	Warmup                 WarmupStats
	Failures               []CellFailure
	Wall                   time.Duration
}

// Report converts the stats into the run-set telemetry schema.
func (st *SweepStats) Report() *telemetry.SweepReport {
	if st == nil {
		return nil
	}
	r := &telemetry.SweepReport{
		Jobs: st.Jobs, Shard: st.Shard, Shards: st.Shards, Cells: st.Cells,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		SimCycles:   st.SimCycles,
		WallSeconds: st.Wall.Seconds(),
	}
	st.Warmup.report(r)
	for _, f := range st.Failures {
		r.Failures = append(r.Failures, telemetry.SweepFailure{
			App: f.Key.App, Variant: f.Key.Variant, Input: f.Key.Input, Error: f.Err.Error(),
		})
	}
	return r
}

// cellSpec is one enumerated cell. idx is the cell's position in the
// canonical enumeration order (app report order, then input, then
// variant); sharding partitions on it so the split is stable for a given
// Config no matter how many shards run.
type cellSpec struct {
	idx   int
	key   Key
	build func(variant string) (bench.Builder, int)
}

// cellSpecs enumerates the matrix in canonical order alongside the app
// order and per-app input labels.
func (cfg Config) cellSpecs() ([]cellSpec, []string, map[string][]string) {
	apps, order := cfg.allApps()
	var specs []cellSpec
	inputs := map[string][]string{}
	for _, app := range order {
		for _, run := range apps[app] {
			inputs[app] = append(inputs[app], run.input)
			for _, v := range variants {
				specs = append(specs, cellSpec{
					idx:   len(specs),
					key:   Key{App: app, Variant: v, Input: run.input},
					build: run.build,
				})
			}
		}
	}
	return specs, order, inputs
}

// sweepTestHook, when non-nil, can veto a cell before it runs. Tests use
// it to inject per-cell failures deterministically.
var sweepTestHook func(Key) error

// Sweep executes the evaluation matrix (or one shard of it) under opts
// and returns the keyed result matrix. Cell failures do not abort the
// sweep (unless opts.FailFast): they are collected in Eval.Sweep.Failures
// sorted in canonical cell order. The returned error is reserved for
// sweep-level problems (bad shard spec).
func Sweep(cfg Config, opts SweepOptions) (*Eval, error) {
	start := time.Now()
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards <= 1 {
		shards = 1
	}
	if opts.Shard < 0 || opts.Shard >= shards {
		return nil, fmt.Errorf("harness: shard %d/%d out of range", opts.Shard, shards)
	}

	specs, order, inputs := cfg.cellSpecs()
	var mine []cellSpec
	for _, sp := range specs {
		if sp.idx%shards == opts.Shard {
			mine = append(mine, sp)
		}
	}

	e := &Eval{Cfg: cfg, Cells: make(map[Key]Cell, len(mine)), Apps: order, Inputs: inputs}
	st := &SweepStats{Jobs: jobs, Shard: opts.Shard, Shards: shards, Cells: len(mine)}
	e.Sweep = st
	dc := newDiskCache(opts.CacheDir)
	var ws *warmupSet
	if opts.Warmup {
		ws = newWarmupSet(cfg, opts.CacheDir)
	}
	failIdx := map[Key]int{}

	var (
		mu   sync.Mutex // guards e.Cells, st, failIdx, Progress writes
		wg   sync.WaitGroup
		stop atomic.Bool
		done atomic.Int64
		work = make(chan cellSpec)
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range work {
				if stop.Load() {
					continue
				}
				cell, hit, err := cfg.runCell(sp, opts, dc, ws)
				n := done.Add(1)
				mu.Lock()
				if err != nil {
					failIdx[sp.key] = sp.idx
					st.Failures = append(st.Failures, CellFailure{Key: sp.key, Err: err})
					if opts.FailFast {
						stop.Store(true)
					}
				} else {
					e.Cells[sp.key] = cell
					if hit {
						st.CacheHits++
					} else {
						st.CacheMisses++
						st.SimCycles += cell.R.Cycles
					}
				}
				if opts.Progress != nil {
					suffix := ""
					switch {
					case err != nil:
						suffix = fmt.Sprintf("  FAILED: %v", err)
					case hit:
						suffix = "  (cached)"
					}
					fmt.Fprintf(opts.Progress, "[%d/%d] %s/%s/%s  %.2fs%s\n",
						n, len(mine), sp.key.App, sp.key.Variant, sp.key.Input,
						cell.WallSeconds, suffix)
				}
				mu.Unlock()
			}
		}()
	}
	for _, sp := range mine {
		work <- sp
	}
	close(work)
	wg.Wait()

	// Failures were appended in completion order; re-sort into canonical
	// cell order so reports are deterministic.
	sort.Slice(st.Failures, func(i, j int) bool {
		return failIdx[st.Failures[i].Key] < failIdx[st.Failures[j].Key]
	})
	st.Warmup = ws.Stats()
	st.Wall = time.Since(start)
	return e, nil
}

// runCell executes one cell: disk-cache probe, simulate on miss (cold, or
// forked from the group's warmup snapshot when ws is non-nil), store. All
// execution knobs arrive through opts, per call — nothing here reads
// process-global state, so concurrent sweeps (or server jobs) with
// different options cannot cross-contaminate.
func (cfg Config) runCell(sp cellSpec, opts SweepOptions, dc *diskCache, ws *warmupSet) (Cell, bool, error) {
	if sweepTestHook != nil {
		if err := sweepTestHook(sp.key); err != nil {
			return Cell{}, false, err
		}
	}
	b, cores := sp.build(sp.key.Variant)
	hash := cfg.cellHash(sp.key, cores, ws != nil)
	if cell, ok := dc.load(hash); ok {
		cell.FromCache = true
		return cell, true, nil
	}
	start := time.Now()
	var (
		cell Cell
		err  error
	)
	obs := opts.observer(sp.key)
	if ws != nil {
		cell, err = cfg.runWarm(sp, ws, obs)
	} else {
		cell, err = cfg.runOne(b, cores, sp.key.App+"/"+sp.key.Variant+"/"+sp.key.Input, obs)
	}
	if err != nil {
		return Cell{}, false, err
	}
	cell.WallSeconds = time.Since(start).Seconds()
	dc.store(hash, cell)
	return cell, false, nil
}

// observer converts the per-call sampling options into a cellObserver for
// key (nil when sampling is off).
func (opts SweepOptions) observer(key Key) *cellObserver {
	if opts.OnSample == nil {
		return nil
	}
	return &cellObserver{key: key, onSample: opts.OnSample, interval: opts.SampleInterval}
}

// memoEntry computes one Config's matrix exactly once; distinct Configs
// evaluate concurrently (the old package-global evalMu serialized every
// caller for the whole sweep).
type memoEntry struct {
	once sync.Once
	e    *Eval
	err  error
}

var (
	memoMu sync.Mutex // guards the map only, never held across a sweep
	memo   = map[Config]*memoEntry{}

	defaultOpts atomic.Pointer[SweepOptions]
)

// SetSweepOptions sets the process-wide options Evaluate (and therefore
// every figure/table driver) uses. Shard settings are ignored there: the
// figure path always needs the full matrix.
//
// Deprecated: this is a process-global; concurrent callers that need
// different options race on it. Pass options per call instead — Run and
// the figure/table drivers, EvaluateWith (full matrix) and RunCell (one
// cell) all accept them. No in-repo caller uses this anymore.
func SetSweepOptions(o SweepOptions) { defaultOpts.Store(&o) }

// Evaluate runs (or returns the memoized) full evaluation matrix under
// the process-wide options installed by SetSweepOptions.
//
// Deprecated: it pairs with the process-global SetSweepOptions and shares
// its race. All in-repo callers pass options per call via EvaluateWith;
// this shim remains only for external users of the old surface.
func Evaluate(cfg Config) (*Eval, error) {
	opts := SweepOptions{}
	if o := defaultOpts.Load(); o != nil {
		opts = *o
	}
	return EvaluateWith(cfg, opts)
}

// EvaluateWith runs (or returns the memoized) full evaluation matrix
// under opts, passed per call. Any failed cell turns into an error here —
// figures and tables need every cell. The memo is keyed on cfg alone:
// results are bit-identical under any options (that is the sweep
// determinism contract), so the first caller's opts drive the execution
// and later callers share its matrix.
func EvaluateWith(cfg Config, opts SweepOptions) (*Eval, error) {
	memoMu.Lock()
	ent, ok := memo[cfg]
	if !ok {
		ent = &memoEntry{}
		memo[cfg] = ent
	}
	memoMu.Unlock()
	ent.once.Do(func() {
		opts.Shard, opts.Shards = 0, 1
		ent.e, ent.err = Sweep(cfg, opts)
		if ent.err == nil && len(ent.e.Sweep.Failures) > 0 {
			fs := ent.e.Sweep.Failures
			ent.err = fmt.Errorf("%d cell(s) failed, first: %s", len(fs), fs[0])
		}
	})
	if ent.err != nil {
		// Don't memoize failures: a later call may run under different
		// sweep options (e.g. a repaired cache dir).
		memoMu.Lock()
		if memo[cfg] == ent {
			delete(memo, cfg)
		}
		memoMu.Unlock()
		return nil, ent.err
	}
	return ent.e, nil
}
