// The sweep engine's content-hashed on-disk result cache. A cell's key is
// the SHA-256 of everything that determines its result: the schema
// version, the cell identity, the exact sim.Config the cell runs under,
// and the builder-relevant Config knobs. Simulation is deterministic, so
// a hit can be substituted for a run without changing any figure or
// table. Bump sweepCacheVersion whenever simulator or builder semantics
// change in a result-affecting way.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pipette/internal/checkpoint"
	"pipette/internal/sim"
)

// sweepCacheVersion names the cached-cell schema. It participates in
// every cell hash, so bumping it invalidates the whole cache.
// v2: multi-core systems moved to the deferred produce/commit kernel
// (atomics and cross-core stores land at cycle boundaries), which shifts
// multi-core cycle counts relative to v1.
const sweepCacheVersion = "pipette.sweepcell/v2"

// cellIdentity is the canonical hash input for one cell. Only fields that
// can change the cell's simulated result belong here — AppFilter, for
// example, selects which cells exist but never alters one, so it is
// deliberately absent.
type cellIdentity struct {
	Version string
	// SnapshotSchema ties cached cells to the checkpoint serialization
	// format: warmup-forked cells replay machine state through a snapshot,
	// so a schema bump must invalidate them (and plain cells alongside —
	// the two must stay comparable).
	SnapshotSchema string
	Key            Key
	Cores          int
	Sim            sim.Config
	// Builder-parameter knobs from Config (input generators are seeded
	// deterministically from these).
	GraphScale, MatrixScale int
	PRDIters                int
	SiloKeys, SiloQueries   int
	Seed                    int64
	// Warmup-forked cells start from warm caches, so their results differ
	// from cold runs and must never be served for them (or vice versa).
	Warmup bool
}

// cellHash returns the hex SHA-256 of the cell's identity. JSON encoding
// of a fixed struct (no maps) is deterministic.
func (cfg Config) cellHash(k Key, cores int, warmup bool) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encoding a struct of value fields to a hash never fails.
	_ = enc.Encode(cellIdentity{
		Version:        sweepCacheVersion,
		SnapshotSchema: checkpoint.Schema,
		Key:            k,
		Cores:          cores,
		Sim:            cfg.simConfig(cores),
		GraphScale:     cfg.GraphScale,
		MatrixScale:    cfg.MatrixScale,
		PRDIters:       cfg.PRDIters,
		SiloKeys:       cfg.SiloKeys,
		SiloQueries:    cfg.SiloQueries,
		Seed:           cfg.Seed,
		Warmup:         warmup,
	})
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the stored document.
type cacheEntry struct {
	Schema string `json:"schema"`
	Cell   Cell   `json:"cell"`
}

// diskCache stores one JSON file per cell hash. All methods are safe for
// concurrent use (distinct cells touch distinct files; identical cells
// write identical content via an atomic rename). A nil receiver disables
// caching, so callers need no nil checks at every site.
type diskCache struct {
	dir string
}

func newDiskCache(dir string) *diskCache {
	if dir == "" {
		return nil
	}
	return &diskCache{dir: dir}
}

func (dc *diskCache) path(hash string) string {
	return filepath.Join(dc.dir, hash+".json")
}

// load returns the cached cell for hash, if present and well-formed.
// Corrupt or version-skewed entries are treated as misses.
func (dc *diskCache) load(hash string) (Cell, bool) {
	if dc == nil {
		return Cell{}, false
	}
	data, err := os.ReadFile(dc.path(hash))
	if err != nil {
		return Cell{}, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Schema != sweepCacheVersion {
		return Cell{}, false
	}
	return ent.Cell, true
}

// store writes the cell under hash, best-effort: a cache write failure
// must never fail the sweep. The temp-file + rename keeps concurrent
// shard runs sharing a directory from ever observing a torn entry. The
// temp name embeds the writer's pid on top of CreateTemp's per-call
// random suffix, so concurrent server workers and an overlapping CLI
// sweep pointed at one directory can never collide on an in-flight write
// even across processes.
func (dc *diskCache) store(hash string, cell Cell) {
	if dc == nil {
		return
	}
	cell.FromCache = false // stored entries are always "computed"
	data, err := json.Marshal(cacheEntry{Schema: sweepCacheVersion, Cell: cell})
	if err != nil {
		return
	}
	if err := os.MkdirAll(dc.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dc.dir, fmt.Sprintf("%s.%d.tmp*", hash, os.Getpid()))
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), dc.path(hash)); err != nil {
		os.Remove(tmp.Name())
	}
}
