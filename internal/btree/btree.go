// Package btree implements the high-radix B+tree index that dominates Silo's
// YCSB-C lookups (Sec. V-B, Fig. 8). The tree is laid out directly in
// simulated memory so that both the reference Go implementation and the
// simulated ISA kernels traverse the same bytes.
//
// Node layout (all 8-byte words):
//
//	word 0:            nkeys | (isLeaf << 32)
//	words 1..F:        keys
//	words F+1..2F:     children (internal) or values (leaf)
package btree

import (
	"sort"

	"pipette/internal/mem"
)

// Fanout is the number of keys per node. 8 keys × 8 B = 64 B of keys — one
// cache line, plus the header and child lines, matching the "cache-friendly
// high-radix" trees in Silo.
const Fanout = 8

// NodeWords is the allocation size of one node in 8-byte words.
const NodeWords = 2 + 2*Fanout

// Tree is a B+tree image in simulated memory.
type Tree struct {
	Root   uint64 // node address
	Height int    // levels, 1 = root is a leaf
	mem    *mem.Memory
	nodes  int
}

// Build constructs a tree over sorted unique keys with values[i] attached to
// keys[i], bulk-loading bottom-up so leaves are packed.
func Build(m *mem.Memory, keys, values []uint64) *Tree {
	if len(keys) != len(values) {
		panic("btree: keys/values length mismatch")
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		panic("btree: keys not sorted")
	}
	t := &Tree{mem: m}

	type nodeRef struct {
		addr   uint64
		minKey uint64
	}

	alloc := func(isLeaf bool, ks, vs []uint64) nodeRef {
		addr := m.AllocWords(NodeWords)
		hdr := uint64(len(ks))
		if isLeaf {
			hdr |= 1 << 32
		}
		m.Write64(addr, hdr)
		for i, k := range ks {
			m.Write64(addr+uint64(1+i)*8, k)
		}
		// Pad unused key slots with +inf so branch-free scans that ignore
		// nkeys never count them.
		for i := len(ks); i < Fanout; i++ {
			m.Write64(addr+uint64(1+i)*8, ^uint64(0))
		}
		for i, v := range vs {
			m.Write64(addr+uint64(1+Fanout+i)*8, v)
		}
		t.nodes++
		return nodeRef{addr, ks[0]}
	}

	// Leaves.
	var level []nodeRef
	for i := 0; i < len(keys); i += Fanout {
		j := i + Fanout
		if j > len(keys) {
			j = len(keys)
		}
		level = append(level, alloc(true, keys[i:j], values[i:j]))
	}
	if len(level) == 0 {
		level = append(level, alloc(true, []uint64{0}, []uint64{0}))
	}
	t.Height = 1
	// Internal levels.
	for len(level) > 1 {
		var up []nodeRef
		for i := 0; i < len(level); i += Fanout {
			j := i + Fanout
			if j > len(level) {
				j = len(level)
			}
			ks := make([]uint64, 0, j-i)
			vs := make([]uint64, 0, j-i)
			for _, ch := range level[i:j] {
				ks = append(ks, ch.minKey)
				vs = append(vs, ch.addr)
			}
			up = append(up, alloc(false, ks, vs))
		}
		level = up
		t.Height++
	}
	t.Root = level[0].addr
	return t
}

// Nodes returns how many nodes the tree allocated.
func (t *Tree) Nodes() int { return t.nodes }

// Lookup is the reference traversal: returns the value for key and whether
// it was found. The simulated kernels implement exactly this walk.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	addr := t.Root
	for {
		hdr := t.mem.Read64(addr)
		nkeys := int(hdr & 0xFFFFFFFF)
		isLeaf := hdr>>32 != 0
		// Find rightmost slot with keys[slot] <= key (slots are sorted).
		slot := -1
		for i := 0; i < nkeys; i++ {
			if t.mem.Read64(addr+uint64(1+i)*8) <= key {
				slot = i
			} else {
				break
			}
		}
		if isLeaf {
			if slot >= 0 && t.mem.Read64(addr+uint64(1+slot)*8) == key {
				return t.mem.Read64(addr + uint64(1+Fanout+slot)*8), true
			}
			return 0, false
		}
		if slot < 0 {
			slot = 0
		}
		addr = t.mem.Read64(addr + uint64(1+Fanout+slot)*8)
	}
}
