package btree

import (
	"testing"
	"testing/quick"

	"pipette/internal/mem"
)

func buildSeq(t *testing.T, n int) (*Tree, *mem.Memory) {
	t.Helper()
	m := mem.New()
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 3) // sparse keyspace to test misses
		vals[i] = uint64(i*3) + 1000
	}
	return Build(m, keys, vals), m
}

func TestLookupAllPresent(t *testing.T) {
	tr, _ := buildSeq(t, 500)
	for i := 0; i < 500; i++ {
		k := uint64(i * 3)
		v, ok := tr.Lookup(k)
		if !ok || v != k+1000 {
			t.Fatalf("lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	tr, _ := buildSeq(t, 500)
	for _, k := range []uint64{1, 2, 4, 100000} {
		if _, ok := tr.Lookup(k); ok {
			t.Fatalf("lookup(%d) should miss", k)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	small, _ := buildSeq(t, 5)
	if small.Height != 1 {
		t.Fatalf("5 keys: height %d", small.Height)
	}
	big, _ := buildSeq(t, 4000)
	if big.Height < 3 || big.Height > 6 {
		t.Fatalf("4000 keys: height %d", big.Height)
	}
	if big.Nodes() < 500 {
		t.Fatalf("4000 keys: nodes %d", big.Nodes())
	}
}

func TestSingleKey(t *testing.T) {
	m := mem.New()
	tr := Build(m, []uint64{42}, []uint64{7})
	if v, ok := tr.Lookup(42); !ok || v != 7 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if _, ok := tr.Lookup(41); ok {
		t.Fatal("41 should miss")
	}
}

// Property: every inserted key resolves to its value, for random key sets.
func TestLookupProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		seen := map[uint64]bool{}
		var keys []uint64
		for _, r := range raw {
			k := uint64(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return true
		}
		// Build requires sorted keys.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		vals := make([]uint64, len(keys))
		for i, k := range keys {
			vals[i] = k ^ 0xDEAD
		}
		tr := Build(mem.New(), keys, vals)
		for i, k := range keys {
			v, ok := tr.Lookup(k)
			if !ok || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnsortedKeysPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Build(mem.New(), []uint64{5, 3}, []uint64{1, 2})
}
