// Speculative-epoch support: the per-cycle flush against a prediction
// replica, and reusable-buffer state snapshots for epoch rollback.
//
// In the speculative kernel (internal/sim/speculate.go) a core runs a whole
// epoch of cycles without touching shared state: functional memory goes
// through its View in epoch mode, and the per-cycle operation log replays
// against a *replica* cache port (FlushSpec) instead of the real one. Every
// replica access is also logged with its predicted completion; validation
// later replays the same sequence into the real hierarchy in canonical
// order and compares — so a stale replica can only cost an epoch abort,
// never a wrong result. Rollback restores the core from an epoch-start
// snapshot taken with SaveStateInto, the buffer-reusing twin of SaveState.
package core

import (
	"fmt"

	"pipette/internal/cache"
	"pipette/internal/mem"
	"pipette/internal/queue"
)

// FastCheckpointableUnit is a CheckpointableUnit with an allocation-light
// binary snapshot path. AppendUnitState appends the state to buf and
// returns it; the bytes must be accepted by RestoreUnitState (units
// distinguish the binary form from the JSON form by a leading magic byte
// that can never start a JSON document).
type FastCheckpointableUnit interface {
	CheckpointableUnit
	AppendUnitState(buf []byte) ([]byte, error)
}

// Spec access kinds (SpecAccess.Kind).
const (
	SpecLoad  uint8 = iota // patches doneAt/regReady: validation compares done+lvl
	SpecStore              // completion unconsumed: replayed for state, not compared
	SpecUnit               // patches an RA buffer: validation compares done
)

// SpecAccess is one deferred cache access performed against a prediction
// replica during an epoch, logged for the validation replay.
type SpecAccess struct {
	Off  uint32 // 1-based cycle offset within the epoch
	Kind uint8
	Atom bool
	Lvl  uint8
	Addr uint64
	Done uint64 // predicted completion, before AtomicExtraLat
}

// FlushSpec is FlushPending against a replica port: it replays the cycle's
// operation log in intra-tick order, patching completion times with the
// replica's predictions, appends every access to log, and drains the view's
// write buffer into the epoch overlay (EndCycle) instead of shared memory.
// Speculation runs only with no tracer attached, so the log can never hold
// staged telemetry events.
func (c *Core) FlushSpec(now uint64, port *cache.Port, off uint32, log *[]SpecAccess) {
	for i := 0; i < len(c.pend); i++ {
		op := &c.pend[i]
		switch op.kind {
		case pendLoad:
			u := op.u
			done, lvl := port.Access(now, op.addr, u.isAtom)
			*log = append(*log, SpecAccess{Off: off, Kind: SpecLoad, Atom: u.isAtom, Lvl: uint8(lvl), Addr: op.addr, Done: done})
			if u.isAtom {
				done += c.cfg.AtomicExtraLat
			}
			u.doneAt = done
			if u.dst >= 0 {
				c.regReady[u.dst] = done
			}
			if c.prof != nil {
				u.profLvl = uint8(lvl) + 1
				c.prof.LoadIssued(int(lvl))
			}
		case pendStore:
			done, lvl := port.Access(now, op.addr, true)
			*log = append(*log, SpecAccess{Off: off, Kind: SpecStore, Atom: true, Lvl: uint8(lvl), Addr: op.addr, Done: done})
		case pendUnit:
			done, lvl := port.Access(now, op.addr, false)
			*log = append(*log, SpecAccess{Off: off, Kind: SpecUnit, Lvl: uint8(lvl), Addr: op.addr, Done: done})
			op.fix.PatchAccess(op.fixIdx, done)
		}
	}
	c.pend = c.pend[:0]
	c.view.EndCycle()
}

// ReplaySpec performs one logged access against the core's real port (the
// validation replay). It returns the true completion and level; the caller
// compares them against the prediction for consumed kinds.
func (c *Core) ReplaySpec(now uint64, a *SpecAccess) (done uint64, lvl uint8) {
	write := a.Kind == SpecStore || a.Atom
	d, l := c.port.Access(now, a.Addr, write)
	return d, uint8(l)
}

// View returns the core's memory view (nil until EnableDeferred). The
// speculative kernel drives its epoch mode directly.
func (c *Core) View() *mem.View { return c.view }

// SaveStateInto is SaveState with buffer reuse: every slice in st is
// truncated and refilled rather than reallocated, and units that implement
// FastCheckpointableUnit append binary state into the retained per-unit
// buffers. The speculative kernel snapshots every core once per epoch with
// it; RestoreState accepts the result unchanged.
func (c *Core) SaveStateInto(st *State) error {
	st.ID = c.id
	st.Now = c.now
	st.SeqNo = c.seqNo
	st.Freelist = append(st.Freelist[:0], c.freelist...)
	st.RegReady = append(st.RegReady[:0], c.regReady...)
	st.Bpred = append(st.Bpred[:0], c.bpred.table...)
	perThread := append(st.Stats.PerThread[:0], c.stats.PerThread...)
	st.Stats = c.stats
	st.Stats.PerThread = perThread
	st.Threads = st.Threads[:0]
	for _, t := range c.threads {
		ts := ThreadState{
			Active: t.active, PC: t.pc, Regs: t.regs, RMap: t.rmap,
			Halted: t.halted, Done: t.done,
			Inflight: t.inflight, ROBUsed: t.robUsed, LQUsed: t.lqUsed, SQUsed: t.sqUsed,
			BlockedUntil: t.blockedUntil, Stall: uint8(t.stall), Hist: t.hist,
		}
		if t.blockedOn != nil {
			ts.BlockedOnSeq = t.blockedOn.seqNo
		}
		st.Threads = append(st.Threads, ts)
	}
	if cap(st.ROB) < len(c.rob) {
		st.ROB = make([][]UopState, len(c.rob))
	}
	st.ROB = st.ROB[:len(c.rob)]
	for tid, rob := range c.rob {
		st.ROB[tid] = st.ROB[tid][:0]
		for _, u := range rob {
			st.ROB[tid] = append(st.ROB[tid], saveUop(u))
		}
	}
	st.IQ = st.IQ[:0]
	for _, u := range c.iq {
		st.IQ = append(st.IQ, u.seqNo)
	}
	if cap(st.Queues) < len(c.qrm.Queues) {
		st.Queues = make([]queue.State, len(c.qrm.Queues))
	}
	st.Queues = st.Queues[:len(c.qrm.Queues)]
	for i, q := range c.qrm.Queues {
		q.SaveStateInto(&st.Queues[i])
	}
	if cap(st.Units) < len(c.units) {
		st.Units = make([][]byte, len(c.units))
	}
	st.Units = st.Units[:len(c.units)]
	for i, unit := range c.units {
		if fu, ok := unit.(FastCheckpointableUnit); ok {
			b, err := fu.AppendUnitState(st.Units[i][:0])
			if err != nil {
				return err
			}
			st.Units[i] = b
			continue
		}
		cu, ok := unit.(CheckpointableUnit)
		if !ok {
			return fmt.Errorf("core %d: unit %d (%T) is not checkpointable", c.id, i, unit)
		}
		b, err := cu.SaveUnitState()
		if err != nil {
			return fmt.Errorf("core %d: unit %d: %w", c.id, i, err)
		}
		st.Units[i] = b
	}
	return nil
}
