// Clocked-component face of the core (sim.Component): Tick advances one
// edge, NextEvent bounds when the next tick could matter, FastForward
// credits skipped cycles. The contract that makes quiescence fast-forward
// bit-exact (docs/ARCHITECTURE.md):
//
//   - Every code path that mutates machine state during a tick stamps
//     c.busyAt = c.now (commit retires, issues, renames, trap redirects,
//     skip-pending transitions, skip drains). A core that just acted always
//     answers NextEvent = now+1, so the system never skips the cycle after
//     an action — the cheap, always-correct fallback.
//   - In a post-tick idle state the only things that can re-activate the
//     core without another component acting first are timers: an issued µop
//     completing (ROB heads and frontend-blocking branches), a waiting µop's
//     sources becoming ready, a thread's frontend redirect expiring, or an
//     attached unit's completion. NextEvent returns the earliest of these.
//   - Everything else (queue space/data, free registers, control values)
//     appears only through some component's busy tick, which blocks
//     fast-forward for that cycle by the busyAt rule above.
package core

import "pipette/internal/queue"

// noEvent mirrors sim.NoEvent ("no self-scheduled future work"); the
// packages cannot share the constant without an import cycle. Its value
// deliberately equals queue.NotReady: an entry that is not ready carries no
// timer.
const noEvent = ^uint64(0)

// Tick advances the core one clock edge to cycle now: commit, issue,
// rename, attached units, then CPI/occupancy accounting.
func (c *Core) Tick(now uint64) {
	c.now = now
	c.stats.Cycles++
	if c.trace != nil {
		c.trace.Cycle = c.now // tracer clock; emitters don't thread `now`
	}
	c.commit()
	issued := c.issue()
	if issued > 0 {
		c.busyAt = c.now
	}
	c.rename()
	for _, u := range c.units {
		u.Tick(c.now)
	}
	c.classify(issued)
	var occ uint64
	if c.prof == nil {
		occ = uint64(c.qrm.MappedRegisters())
	} else {
		// Fold the per-queue histogram update into the same walk that
		// computes the mapped-register integral.
		occ = uint64(c.qrm.OccupancySum(func(qi, o int) {
			c.prof.QueueOcc(qi, o, 1)
		}))
		c.profTick(issued)
	}
	c.stats.QueueOccupancySum += occ
	if occ > c.stats.QueueOccupancyMax {
		c.stats.QueueOccupancyMax = occ
	}
}

// Cycle keeps the historical single-step entry point: advance one cycle on
// the core's own counter. Tests and tools drive lone cores with it; the
// system drives Tick on its authoritative clock.
func (c *Core) Cycle() { c.Tick(c.now + 1) }

// NextEvent returns the earliest cycle > now at which ticking the core
// could change machine state, assuming every other component stays idle
// (the kernel only skips cycles when all components agree). NoEvent means
// only external input — an enqueue, a connector delivery — can re-activate
// the core.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.busyAt >= now {
		return now + 1
	}
	next := uint64(noEvent)
	// Commit timing: the in-order head of each thread's ROB retires when it
	// resolves. Non-head µops are gated by their head, so only heads carry
	// commit timers.
	for _, rob := range c.rob {
		if len(rob) == 0 {
			continue
		}
		if u := rob[0]; u.state == uopIssued {
			if u.doneAt <= now {
				return now + 1 // commit due; should not outlive an idle tick — be safe
			}
			if u.doneAt < next {
				next = u.doneAt
			}
		}
	}
	// Wakeup timing: a waiting µop becomes issuable when its last source
	// arrives. Sources still pending a producer action carry no timer — the
	// producer's tick is busy and blocks fast-forward by itself.
	for _, u := range c.iq {
		if u.state != uopWaiting {
			continue
		}
		w := c.wakeAt(u)
		if w == noEvent {
			continue
		}
		if w <= now {
			return now + 1 // ready but unissued (ports/width); keep ticking
		}
		if w < next {
			next = w
		}
	}
	for _, t := range c.threads {
		if !t.active {
			continue
		}
		// A frontend blocked on an unresolved branch unblocks when the
		// branch completes; after that, blockedUntil is the redirect timer.
		if b := t.blockedOn; b != nil {
			if b.state == uopIssued {
				if b.doneAt <= now {
					return now + 1
				}
				if b.doneAt < next {
					next = b.doneAt
				}
			}
			continue
		}
		if t.halted {
			continue
		}
		if t.blockedUntil > now && t.blockedUntil < next {
			next = t.blockedUntil
		}
	}
	for _, u := range c.units {
		if e := u.NextEvent(now); e < next {
			if e <= now {
				return now + 1
			}
			next = e
		}
	}
	return next
}

// wakeAt returns the cycle all of u's sources are ready, or noEvent when
// some source has no scheduled ready time yet (its producer must act first).
func (c *Core) wakeAt(u *uop) uint64 {
	var w uint64
	for i := 0; i < u.nsrc; i++ {
		if r := u.src[i]; r >= 0 {
			t := c.regReady[r]
			if t == queue.NotReady {
				return noEvent
			}
			if t > w {
				w = t
			}
		}
	}
	for i := 0; i < u.nqsrc; i++ {
		at := u.qsrc[i].e.ReadyAt
		if c.cfg.SpeculativeDequeue {
			at = u.qsrc[i].e.SpecAt
		}
		if at == queue.NotReady {
			return noEvent
		}
		if at > w {
			w = at
		}
	}
	return w
}

// FastForward credits the per-cycle statistics the ticks for cycles
// (from, to] would have accumulated. By the NextEvent contract those ticks
// are state no-ops, so the cycle counter, the (constant) idle CPI bucket,
// and the (constant) occupancy integral are the only effects.
func (c *Core) FastForward(from, to uint64) {
	d := to - from
	c.stats.Cycles += d
	if b := c.idleBucket(); b != nil {
		*b += d
	}
	var occ uint64
	if c.prof == nil {
		occ = uint64(c.qrm.MappedRegisters())
	} else {
		occ = uint64(c.qrm.OccupancySum(func(qi, o int) {
			c.prof.QueueOcc(qi, o, d)
		}))
		c.profSpan(d)
	}
	c.stats.QueueOccupancySum += occ * d
	c.now = to
	for _, u := range c.units {
		u.FastForward(from, to)
	}
}

// classify attributes this cycle to a CPI-stack bucket (Fig. 11).
func (c *Core) classify(issued int) {
	if issued > 0 {
		c.stats.CPI.Issue++
		return
	}
	if b := c.idleBucket(); b != nil {
		*b++
	}
}

// idleBucket selects the CPI bucket for a cycle with no issues, or nil for
// a core with no active threads. The choice is a pure function of the
// frozen machine state (thread stall reasons and IQ occupancy), which is
// what lets FastForward apply it once for a whole skipped span.
func (c *Core) idleBucket() *uint64 {
	anyActive := false
	anyBackend, anyQueue, anyFront := false, false, false
	for _, t := range c.threads {
		if !t.active || t.done {
			continue
		}
		anyActive = true
		switch t.stall {
		case StallQueueEmpty, StallQueueFull, StallSkipWait:
			anyQueue = true
		case StallRedirect:
			anyFront = true
		default:
			anyBackend = true
		}
	}
	if !anyActive {
		return nil
	}
	// µops in flight waiting on memory dominate: backend.
	if len(c.iq) > 0 || anyBackend {
		return &c.stats.CPI.Backend
	}
	if anyQueue {
		return &c.stats.CPI.Queue
	}
	if anyFront {
		return &c.stats.CPI.Front
	}
	return &c.stats.CPI.Backend
}

// LastCommitAt returns the cycle of the most recent architectural commit on
// this core (scratch bookkeeping, not serialized: the system re-primes its
// watchdog on restore). The hoisted watchdog uses it to recover the exact
// progress cycle without scanning every cycle.
func (c *Core) LastCommitAt() uint64 { return c.lastCommitAt }

// ClampCommitScratch caps the commit-progress scratch at the core's current
// cycle. A speculative-epoch rollback undoes commits the scratch already
// recorded; leaving a future stamp would make the watchdog's progress cycle
// run ahead of the clock.
func (c *Core) ClampCommitScratch() {
	if c.lastCommitAt > c.now {
		c.lastCommitAt = c.now
	}
}
