// Checkpoint support: the core's dynamic state as plain serializable data.
//
// The snapshot contract (docs/CHECKPOINT.md) is that *structural* state —
// loaded programs, queue capacities, attached units, bindings — is
// reconstructed by re-running the same workload builder on an identically
// configured system before RestoreState is called. The snapshot itself holds
// only *dynamic* state. Pointer-linked structures are encoded as indices:
// in-flight µops name their instruction by (thread, pc), queue entries by
// (queue id, sequence number), and other µops by global age (seqNo).
package core

import (
	"fmt"

	"pipette/internal/isa"
	"pipette/internal/queue"
)

// CheckpointableUnit is a Unit whose dynamic state can be captured. Units
// are serialized opaquely, in AddUnit order; the restore contract requires
// the builder to attach the same units in the same order.
type CheckpointableUnit interface {
	Unit
	SaveUnitState() ([]byte, error)
	RestoreUnitState([]byte) error
}

// QRefState names one bound queue entry: queue id and entry sequence
// number. Q is -1 for unused slots.
type QRefState struct {
	Q   int32
	Seq uint64
}

// UopState is one in-flight µop with every pointer replaced by an index.
type UopState struct {
	Thread  int
	Op      isa.Op
	PC      int
	HasInst bool // false for synthetic (trap-injected) µops
	SeqNo   uint64
	Src     [3]int32
	NSrc    int
	QSrc    [2]QRefState
	NQSrc   int
	Dst     int32
	OldDst  int32
	EnqQ    int32 // queue id, -1 none
	EnqSeq  uint64
	DeqQ    int32 // queue id, -1 none
	DeqN    int
	IsLoad  bool
	IsStore bool
	IsAtom  bool
	Addr    uint64
	Mispred bool
	Synth   bool
	IsHalt  bool
	State   uint8
	DoneAt  uint64
}

// ThreadState is one hardware thread's dynamic state. The program itself is
// structural (reloaded by the builder); Active records whether one was
// loaded so restore can cross-check.
type ThreadState struct {
	Active       bool
	PC           int
	Regs         [isa.NumArchRegs]uint64
	RMap         [isa.NumArchRegs]int32
	Halted       bool
	Done         bool
	Inflight     int
	ROBUsed      int
	LQUsed       int
	SQUsed       int
	BlockedUntil uint64
	BlockedOnSeq uint64 // seqNo of the unresolved branch; 0 = none (seqNos start at 1)
	Stall        uint8
	Hist         uint64
}

// State is the complete dynamic state of one core.
type State struct {
	ID       int
	Now      uint64
	SeqNo    uint64
	Freelist []int32
	RegReady []uint64
	Threads  []ThreadState
	ROB      [][]UopState // per thread, oldest first
	IQ       []uint64     // seqNos of unissued µops, age order (subset of ROB)
	Queues   []queue.State
	Bpred    []uint8
	Stats    Stats
	Units    [][]byte // opaque per-unit state, AddUnit order
}

func qid(q *queue.Queue) int32 {
	if q == nil {
		return -1
	}
	return int32(q.ID)
}

func saveUop(u *uop) UopState {
	us := UopState{
		Thread: u.thread, Op: u.op, PC: u.pc, HasInst: u.inst != nil,
		SeqNo: u.seqNo, Src: u.src, NSrc: u.nsrc, NQSrc: u.nqsrc,
		Dst: u.dst, OldDst: u.oldDst,
		EnqQ: qid(u.enqQ), EnqSeq: u.enqSeq, DeqQ: qid(u.deqQ), DeqN: u.deqN,
		IsLoad: u.isLoad, IsStore: u.isStore, IsAtom: u.isAtom, Addr: u.addr,
		Mispred: u.mispred, Synth: u.synth, IsHalt: u.isHalt,
		State: uint8(u.state), DoneAt: u.doneAt,
	}
	for i := range us.QSrc {
		us.QSrc[i].Q = -1
	}
	for i := 0; i < u.nqsrc; i++ {
		us.QSrc[i] = QRefState{Q: int32(u.qsrc[i].q.ID), Seq: u.qsrc[i].e.Seq}
	}
	return us
}

// SaveState captures the core's dynamic state.
func (c *Core) SaveState() (State, error) {
	st := State{
		ID:       c.id,
		Now:      c.now,
		SeqNo:    c.seqNo,
		Freelist: append([]int32(nil), c.freelist...),
		RegReady: append([]uint64(nil), c.regReady...),
		Bpred:    append([]uint8(nil), c.bpred.table...),
		Stats:    c.stats,
	}
	st.Stats.PerThread = append([]uint64(nil), c.stats.PerThread...)
	for _, t := range c.threads {
		ts := ThreadState{
			Active: t.active, PC: t.pc, Regs: t.regs, RMap: t.rmap,
			Halted: t.halted, Done: t.done,
			Inflight: t.inflight, ROBUsed: t.robUsed, LQUsed: t.lqUsed, SQUsed: t.sqUsed,
			BlockedUntil: t.blockedUntil, Stall: uint8(t.stall), Hist: t.hist,
		}
		if t.blockedOn != nil {
			ts.BlockedOnSeq = t.blockedOn.seqNo
		}
		st.Threads = append(st.Threads, ts)
	}
	st.ROB = make([][]UopState, len(c.rob))
	for tid, rob := range c.rob {
		for _, u := range rob {
			st.ROB[tid] = append(st.ROB[tid], saveUop(u))
		}
	}
	for _, u := range c.iq {
		st.IQ = append(st.IQ, u.seqNo)
	}
	for _, q := range c.qrm.Queues {
		st.Queues = append(st.Queues, q.SaveState())
	}
	for i, unit := range c.units {
		cu, ok := unit.(CheckpointableUnit)
		if !ok {
			return State{}, fmt.Errorf("core %d: unit %d (%T) is not checkpointable", c.id, i, unit)
		}
		b, err := cu.SaveUnitState()
		if err != nil {
			return State{}, fmt.Errorf("core %d: unit %d: %w", c.id, i, err)
		}
		st.Units = append(st.Units, b)
	}
	return st, nil
}

// restoreUop rebuilds one in-flight µop. Queue state must already be
// restored (EntryAt resolves bound entries) and the thread's program loaded.
func (c *Core) restoreUop(us UopState) (*uop, error) {
	if us.Thread < 0 || us.Thread >= len(c.threads) {
		return nil, fmt.Errorf("µop %d: bad thread %d", us.SeqNo, us.Thread)
	}
	u := &uop{
		thread: us.Thread, op: us.Op, pc: us.PC,
		seqNo: us.SeqNo, src: us.Src, nsrc: us.NSrc, nqsrc: us.NQSrc,
		dst: us.Dst, oldDst: us.OldDst,
		enqSeq: us.EnqSeq, deqN: us.DeqN,
		isLoad: us.IsLoad, isStore: us.IsStore, isAtom: us.IsAtom, addr: us.Addr,
		mispred: us.Mispred, synth: us.Synth, isHalt: us.IsHalt,
		state: uopState(us.State), doneAt: us.DoneAt,
	}
	if us.HasInst {
		prog := c.threads[us.Thread].prog
		if prog == nil || us.PC < 0 || us.PC >= len(prog.Code) {
			return nil, fmt.Errorf("µop %d: pc %d not in thread %d's program", us.SeqNo, us.PC, us.Thread)
		}
		u.inst = &prog.Code[us.PC]
	}
	if us.EnqQ >= 0 {
		u.enqQ = c.qrm.Q(uint8(us.EnqQ))
	}
	if us.DeqQ >= 0 {
		u.deqQ = c.qrm.Q(uint8(us.DeqQ))
	}
	for i := 0; i < us.NQSrc; i++ {
		qr := us.QSrc[i]
		if qr.Q < 0 {
			return nil, fmt.Errorf("µop %d: qsrc %d unset", us.SeqNo, i)
		}
		q := c.qrm.Q(uint8(qr.Q))
		e, err := q.EntryAt(qr.Seq)
		if err != nil {
			return nil, fmt.Errorf("µop %d: %w", us.SeqNo, err)
		}
		u.qsrc[i] = qref{q, e}
	}
	return u, nil
}

// RestoreState overwrites the core's dynamic state from st. The core must
// be identically configured with the same programs loaded (and the same
// units attached) as when the state was saved.
func (c *Core) RestoreState(st State) error {
	if st.ID != c.id {
		return fmt.Errorf("core %d: snapshot is for core %d", c.id, st.ID)
	}
	if len(st.Threads) != len(c.threads) || len(st.ROB) != len(c.threads) {
		return fmt.Errorf("core %d: snapshot has %d threads, core has %d", c.id, len(st.Threads), len(c.threads))
	}
	if len(st.RegReady) != len(c.regReady) {
		return fmt.Errorf("core %d: snapshot has %d phys regs, core has %d", c.id, len(st.RegReady), len(c.regReady))
	}
	if len(st.Queues) != len(c.qrm.Queues) {
		return fmt.Errorf("core %d: snapshot has %d queues, core has %d", c.id, len(st.Queues), len(c.qrm.Queues))
	}
	if len(st.Bpred) != len(c.bpred.table) {
		return fmt.Errorf("core %d: snapshot bpred table size %d, core has %d", c.id, len(st.Bpred), len(c.bpred.table))
	}
	if len(st.Units) != len(c.units) {
		return fmt.Errorf("core %d: snapshot has %d units, core has %d", c.id, len(st.Units), len(c.units))
	}
	if len(st.Stats.PerThread) != len(c.threads) {
		return fmt.Errorf("core %d: snapshot per-thread stats for %d threads, core has %d", c.id, len(st.Stats.PerThread), len(c.threads))
	}
	for i, q := range c.qrm.Queues {
		if err := q.RestoreState(st.Queues[i]); err != nil {
			return fmt.Errorf("core %d: %w", c.id, err)
		}
	}
	c.now = st.Now
	c.seqNo = st.SeqNo
	c.freelist = append(c.freelist[:0], st.Freelist...)
	copy(c.regReady, st.RegReady)
	copy(c.bpred.table, st.Bpred)
	c.stats = st.Stats
	c.stats.PerThread = append([]uint64(nil), st.Stats.PerThread...)

	bySeq := map[uint64]*uop{}
	for tid := range c.rob {
		c.rob[tid] = c.rob[tid][:0]
		for _, us := range st.ROB[tid] {
			if us.Thread != tid {
				return fmt.Errorf("core %d: µop %d in thread %d's ROB claims thread %d", c.id, us.SeqNo, tid, us.Thread)
			}
			u, err := c.restoreUop(us)
			if err != nil {
				return fmt.Errorf("core %d: %w", c.id, err)
			}
			c.rob[tid] = append(c.rob[tid], u)
			bySeq[u.seqNo] = u
		}
	}
	c.iq = c.iq[:0]
	for _, seq := range st.IQ {
		u, ok := bySeq[seq]
		if !ok {
			return fmt.Errorf("core %d: IQ references µop %d not in any ROB", c.id, seq)
		}
		c.iq = append(c.iq, u)
	}
	for i, ts := range st.Threads {
		t := c.threads[i]
		if ts.Active && t.prog == nil {
			return fmt.Errorf("core %d: snapshot thread %d is active but no program is loaded (builder must run before restore)", c.id, i)
		}
		t.active = ts.Active
		t.pc = ts.PC
		t.regs = ts.Regs
		t.rmap = ts.RMap
		t.halted, t.done = ts.Halted, ts.Done
		t.inflight, t.robUsed, t.lqUsed, t.sqUsed = ts.Inflight, ts.ROBUsed, ts.LQUsed, ts.SQUsed
		t.blockedUntil = ts.BlockedUntil
		t.stall = StallReason(ts.Stall)
		t.hist = ts.Hist
		t.blockedOn = nil
		if ts.BlockedOnSeq != 0 {
			u, ok := bySeq[ts.BlockedOnSeq]
			if !ok {
				return fmt.Errorf("core %d: thread %d blocked on µop %d not in any ROB", c.id, i, ts.BlockedOnSeq)
			}
			t.blockedOn = u
		}
		// The decoded stream is derived state: snapshots never carry it
		// (predecode on/off must hash identically), so re-derive it from
		// the reloaded program via the block cache.
		if c.predecode && t.prog != nil && t.dec == nil {
			t.dec = c.decodedFor(t.prog)
		}
	}
	for i, unit := range c.units {
		cu, ok := unit.(CheckpointableUnit)
		if !ok {
			return fmt.Errorf("core %d: unit %d (%T) is not checkpointable", c.id, i, unit)
		}
		if err := cu.RestoreUnitState(st.Units[i]); err != nil {
			return fmt.Errorf("core %d: unit %d: %w", c.id, i, err)
		}
	}
	if c.prof != nil {
		// Restored in-flight µops carry no profiling marks (profLvl is not
		// serialized), so the outstanding-by-level account restarts empty.
		c.prof.ResetOutstanding()
	}
	return nil
}

// ResetThreads returns the core to its post-New idle state while keeping
// cycle count, branch predictor, caches (external) and queue-free physical
// registers warm. Registers still mapped by thread rename maps go back to
// the freelist; queue-held registers stay where they are. Fork-after-warmup
// calls this on a quiesced core before building a variant's workload on it.
func (c *Core) ResetThreads() {
	for _, t := range c.threads {
		for _, p := range t.rmap {
			if p >= 0 {
				c.FreePhys(p)
			}
		}
		*t = thread{id: t.id}
		for r := range t.rmap {
			t.rmap[r] = -1
		}
	}
	for tid := range c.rob {
		c.rob[tid] = c.rob[tid][:0]
	}
	c.iq = c.iq[:0]
	// No thread references a program anymore; drop the decoded blocks so
	// the next Load cannot rename from a stale cache entry.
	c.flushDecodeCache()
}

// ResetStats zeroes the core's counters (the per-thread slice keeps its
// length). Fork-after-warmup calls this at the ROI boundary.
func (c *Core) ResetStats() {
	n := len(c.stats.PerThread)
	c.stats = Stats{PerThread: make([]uint64, n)}
}
