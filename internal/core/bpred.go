package core

// bpred is a gshare direction predictor. Targets are always available at
// rename in this model (the functional frontend computes them), so only
// direction mispredictions cost cycles; indirect jumps (Jr) model a
// return-address stack and are treated as predicted.
type bpred struct {
	table []uint8 // 2-bit counters
	mask  uint64
}

func newBpred(bits int) *bpred {
	return &bpred{table: make([]uint8, 1<<bits), mask: (1 << bits) - 1}
}

func (b *bpred) index(pc int, hist uint64) uint64 {
	return (uint64(pc) ^ hist) & b.mask
}

// predict returns the predicted direction for the branch at pc.
func (b *bpred) predict(pc int, hist uint64) bool {
	return b.table[b.index(pc, hist)] >= 2
}

// update trains the counter with the actual direction.
func (b *bpred) update(pc int, hist uint64, taken bool) {
	i := b.index(pc, hist)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}
