package core

import "testing"

func TestBpredLearnsBias(t *testing.T) {
	b := newBpred(10)
	for i := 0; i < 8; i++ {
		b.update(100, 0, true)
	}
	if !b.predict(100, 0) {
		t.Fatal("did not learn an always-taken branch")
	}
	for i := 0; i < 8; i++ {
		b.update(100, 0, false)
	}
	if b.predict(100, 0) {
		t.Fatal("did not unlearn")
	}
}

func TestBpredHysteresis(t *testing.T) {
	b := newBpred(10)
	b.update(5, 0, true)
	b.update(5, 0, true)
	b.update(5, 0, true) // saturated at 3
	b.update(5, 0, false)
	if !b.predict(5, 0) {
		t.Fatal("one not-taken flipped a saturated counter")
	}
}

func TestBpredHistoryDisambiguates(t *testing.T) {
	b := newBpred(10)
	// Same PC, alternating outcome correlated with 1-bit history.
	for i := 0; i < 50; i++ {
		b.update(7, 0, true)
		b.update(7, 1, false)
	}
	if !b.predict(7, 0) || b.predict(7, 1) {
		t.Fatal("history not separating contexts")
	}
}

func TestBpredCountersStayInRange(t *testing.T) {
	b := newBpred(4)
	for i := 0; i < 100; i++ {
		b.update(i, uint64(i), i%3 == 0)
	}
	for _, c := range b.table {
		if c > 3 {
			t.Fatalf("counter out of range: %d", c)
		}
	}
}
