// The pre-decoded micro-op frontend: rename consuming isa.DecodedOp
// streams instead of raw isa.Inst values (see docs/FRONTEND.md).
//
// Each core keeps a basic-block cache mapping loaded programs to their
// pre-decoded form (isa.Predecode). The decoded stream is derived state:
// it is rebuilt on Load, flushed when a program is unloaded, and never
// serialized — checkpoints re-derive it, which is what keeps state hashes
// bit-identical with predecode on or off (the hard invariant the
// equivalence matrix enforces).
//
// renameDecodedOne mirrors renameOne phase for phase; every check, stat,
// trap and stall is taken in the same order so the two paths are
// bit-identical. The decoded path additionally dispatches fused pairs
// (isa.FuseKind) in one step: the leader is inlined on a pre-checked fast
// path and the dependent op follows immediately, its timing chained onto
// the leader's fresh rename mapping exactly as two single renames would.
package core

import (
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// DecodeCacheStats counts per-core decode-cache traffic. Host-side
// bookkeeping only: never serialized, and identical results are produced
// whatever the hit pattern.
type DecodeCacheStats struct {
	Hits      uint64 // Load found the program already decoded
	Misses    uint64 // Load (or restore) ran the predecoder
	Evictions uint64 // decoded programs dropped because no thread runs them
}

// DecodeCache returns the core's decode-cache counters.
func (c *Core) DecodeCache() DecodeCacheStats { return c.dcstats }

// PredecodeEnabled reports whether the core renames from the pre-decoded
// micro-op stream (true unless SetPredecode(false) selected the raw path).
func (c *Core) PredecodeEnabled() bool { return c.predecode }

// SetPredecode selects between the pre-decoded micro-op frontend (default)
// and the raw-Inst interpreter path (-no-predecode). Safe to call before
// or after programs are loaded; results are bit-identical either way.
func (c *Core) SetPredecode(on bool) {
	c.predecode = on
	for _, t := range c.threads {
		if !on {
			t.dec = nil
			continue
		}
		if t.prog != nil {
			t.dec = c.decodedFor(t.prog)
		}
	}
	if !on {
		c.flushDecodeCache()
	}
}

// decodedFor returns the cached decoded form of p, running the predecoder
// on a miss.
func (c *Core) decodedFor(p *isa.Program) *isa.DecodedProgram {
	if d, ok := c.dcache[p]; ok {
		c.dcstats.Hits++
		return d
	}
	if c.dcache == nil {
		c.dcache = make(map[*isa.Program]*isa.DecodedProgram)
	}
	d := isa.Predecode(p)
	c.dcache[p] = d
	c.dcstats.Misses++
	return d
}

// evictStaleDecodes drops cached decodes for programs no thread currently
// runs. Load calls this after installing a new program so a reloaded core
// cannot rename from a stale block (and so long-lived cores do not pin
// every program they ever ran).
func (c *Core) evictStaleDecodes() {
	for p := range c.dcache {
		live := false
		for _, t := range c.threads {
			if t.prog == p {
				live = true
				break
			}
		}
		if !live {
			delete(c.dcache, p)
			c.dcstats.Evictions++
		}
	}
}

// flushDecodeCache empties the block cache (ResetThreads, SetPredecode
// off).
func (c *Core) flushDecodeCache() {
	for p := range c.dcache {
		delete(c.dcache, p)
		c.dcstats.Evictions++
	}
}

// renameDecodedStep renames the next micro-op(s) of t from its decoded
// stream: a fused pair in one dispatch when the stream marks one and the
// budget allows it, a single micro-op otherwise.
func (c *Core) renameDecodedStep(t *thread, budget int) (int, bool) {
	d := &t.dec.Ops[t.pc]
	if d.Fuse != isa.FuseNone && budget >= 2 {
		return c.renameFusedPair(t, d)
	}
	return c.renameDecodedOne(t, d)
}

// regVal reads architectural register r (R0 is hardwired zero).
func regVal(t *thread, r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	return t.regs[r]
}

// renameFusedPair renames the fused pair led by d1 in one dispatch step.
// The combined resource pre-check makes the second slot stall-free; on any
// shortfall it falls back to renaming the leader alone, so the outer loop
// re-attempts the second slot and records exactly the stall the unfused
// path would.
func (c *Core) renameFusedPair(t *thread, d1 *isa.DecodedOp) (int, bool) {
	d2 := &t.dec.Ops[t.pc+1]
	if t.robUsed+2 > c.cfg.ROBPerThread || len(c.iq)+2 > c.cfg.IQSize ||
		(d2.IsLoad && t.lqUsed >= c.cfg.LQPerThread) ||
		(d2.IsStore && t.sqUsed >= c.cfg.SQPerThread) {
		return c.renameDecodedOne(t, d1)
	}
	need := 0
	if d1.Writes {
		need++
	}
	if d2.Writes && !d2.EnqDst {
		need++
	}
	if len(c.freelist) < need {
		return c.renameDecodedOne(t, d1)
	}

	// Slot 1: plain single-result op (classifyFusion guarantees no queue
	// effects, no memory, no control flow), pre-checked above — inline.
	u := c.allocUop(t.id, d1.Op)
	u.pc = t.pc
	u.inst = d1.Inst
	u.lat = c.latab[d1.Cls]
	for i := 0; i < int(d1.NTiming); i++ {
		if r := t.rmap[d1.TimingRegs[i]]; r >= 0 && u.nsrc < len(u.src) {
			u.src[u.nsrc] = r
			u.nsrc++
		}
	}
	a := regVal(t, d1.Ra)
	b := uint64(d1.Imm)
	if !d1.UseImm {
		b = regVal(t, d1.Rb)
	}
	result := isa.EvalALU(d1.Op, a, b)
	if d1.Writes {
		phys, _ := c.AllocPhys()
		u.dst = phys
		u.oldDst = t.rmap[d1.Dst]
		t.rmap[d1.Dst] = phys
		c.regReady[phys] = queue.NotReady
		t.regs[d1.Dst] = result
	}
	t.pc++
	t.inflight++
	t.robUsed++
	c.rob[t.id] = append(c.rob[t.id], u)
	c.iq = append(c.iq, u)

	// Slot 2: full decoded rename; its sources chain onto slot 1's fresh
	// mapping exactly as two back-to-back single renames would.
	n2, ok := c.renameDecodedOne(t, d2)
	if !ok {
		return 1, true // defensive; unreachable under the pre-check
	}
	return 1 + n2, true
}

// execAtomic performs the functional read-modify-write of an atomic
// micro-op, mirroring renameOne's ClassAtomic arm: deferred mode buffers
// the RMW into the cycle's commit phase (returning 0 — the architectural
// result is patched into the register file there) and fences the thread;
// direct mode executes immediately and returns the old value.
func (c *Core) execAtomic(t *thread, u *uop, d *isa.DecodedOp, b, cv uint64, enq bool) uint64 {
	if c.deferred {
		c.checkAtomicDst(enq, t.prog.Name, t.pc)
		var aop mem.AtomicOp
		switch d.Op {
		case isa.OpCas:
			aop = mem.OpCas
		case isa.OpFetchAdd:
			aop = mem.OpFetchAdd
		case isa.OpFetchMin:
			aop = mem.OpFetchMin
		case isa.OpFetchOr:
			aop = mem.OpFetchOr
		}
		var res *uint64
		if d.Writes {
			res = &t.regs[d.Dst]
		}
		c.view.Atomic(aop, u.addr, b, cv, res)
		t.atomFence = true
		return 0
	}
	old := c.mem.Read(u.addr, 8)
	switch d.Op {
	case isa.OpCas:
		if old == b {
			c.mem.Write(u.addr, 8, cv)
		}
	case isa.OpFetchAdd:
		c.mem.Write(u.addr, 8, old+b)
	case isa.OpFetchMin:
		if b < old {
			c.mem.Write(u.addr, 8, b)
		}
	case isa.OpFetchOr:
		c.mem.Write(u.addr, 8, old|b)
	}
	return old
}

// renameDecodedOne is renameOne on the pre-decoded stream: identical
// phases, checks, stats and stalls, with every per-instruction derivation
// (operand sets, class, queue effects) read from the DecodedOp instead of
// re-derived. Any behavioral divergence from renameOne is a bug — the
// equivalence matrix compares the two paths bit for bit.
func (c *Core) renameDecodedOne(t *thread, d *isa.DecodedOp) (int, bool) {
	if d.Kind == isa.KindBadQueue {
		panic(d.BadMsg)
	}

	// ---- Phase 1: check everything without mutating state. ----

	if t.robUsed >= c.cfg.ROBPerThread {
		t.stall = StallROB
		return 0, false
	}
	if len(c.iq) >= c.cfg.IQSize {
		t.stall = StallIQ
		return 0, false
	}
	if d.IsLoad && t.lqUsed >= c.cfg.LQPerThread {
		t.stall = StallLSQ
		return 0, false
	}
	if d.IsStore && t.sqUsed >= c.cfg.SQPerThread {
		t.stall = StallLSQ
		return 0, false
	}

	// Dequeue sources (pre-resolved against the program's bindings), in
	// read order; the first control value wins the trap, like the raw path.
	trapQ := (*queue.Queue)(nil)
	var deqQs [3]*queue.Queue
	for i := 0; i < int(d.NDeq); i++ {
		q := t.outQ[d.DeqRegs[i]]
		if !q.CanDeq() {
			t.stall = StallQueueEmpty
			return 0, false
		}
		if q.Head().Ctrl && trapQ == nil {
			trapQ = q
		}
		deqQs[i] = q
	}
	var peekQ *queue.Queue
	if d.Kind == isa.KindPeek {
		peekQ = c.qrm.Q(d.Q)
		if !peekQ.CanDeq() {
			t.stall = StallQueueEmpty
			return 0, false
		}
		if peekQ.Head().Ctrl {
			trapQ = peekQ
		}
	}
	if trapQ != nil {
		return c.trapDeqCV(t, trapQ)
	}

	// skip_to_ctrl: needs a control value somewhere in the queue.
	var skipN int
	var skipCV *queue.Entry
	if d.Kind == isa.KindSkipC {
		q := c.qrm.Q(d.Q)
		n, cv, ok := q.SkipScan()
		if !ok {
			if !q.SkipPending {
				q.SkipPending = true // producer's next data enqueue traps
				c.busyAt = c.now
			}
			for {
				phys, drained := q.DrainOne()
				if !drained {
					break
				}
				c.FreePhys(int32(phys))
				c.stats.SkipDiscard++
				c.busyAt = c.now
			}
			t.stall = StallSkipWait
			return 0, false
		}
		skipN, skipCV = n, cv
	}

	// Destination: enqueue (write to in-mapped reg) or ordinary rename.
	var enqQ *queue.Queue
	if d.EnqDst {
		enqQ = t.inQ[d.Dst]
	}
	if d.Kind == isa.KindEnqC {
		enqQ = c.qrm.Q(d.Q)
	}
	if enqQ != nil {
		if enqQ.SkipPending && d.Kind != isa.KindEnqC {
			return c.trapEnq(t)
		}
		if !enqQ.CanEnq() {
			t.stall = StallQueueFull
			return 0, false
		}
	}
	needPhys := 0
	if enqQ != nil {
		needPhys++
	}
	if d.Writes && !d.EnqDst {
		needPhys++
	}
	if len(c.freelist) < needPhys {
		t.stall = StallPRF
		return 0, false
	}

	// ---- Phase 2: functional execution. ----

	u := c.allocUop(t.id, d.Op)
	u.pc = t.pc
	u.inst = d.Inst
	u.lat = c.latab[d.Cls]

	var deqVals [3]uint64
	for i := 0; i < int(d.NDeq); i++ {
		q := deqQs[i]
		e := q.Deq()
		deqVals[i] = e.Val
		if u.nqsrc < len(u.qsrc) {
			u.qsrc[u.nqsrc] = qref{q, e}
			u.nqsrc++
		}
		u.deqQ = q
		u.deqN++
		c.stats.Dequeues++
	}
	for i := 0; i < int(d.NTiming); i++ {
		if r := t.rmap[d.TimingRegs[i]]; r >= 0 && u.nsrc < len(u.src) {
			u.src[u.nsrc] = r
			u.nsrc++
		}
	}
	srcVal := func(r isa.Reg, di uint8) uint64 {
		if di != 0 {
			return deqVals[di-1]
		}
		if r == isa.R0 {
			return 0
		}
		return t.regs[r]
	}
	a := srcVal(d.Ra, d.RaDeq)
	b := uint64(d.Imm)
	if !d.UseImm {
		b = srcVal(d.Rb, d.RbDeq)
	}

	var result uint64
	nextPC := t.pc + 1
	switch d.Kind {
	case isa.KindALU:
		result = isa.EvalALU(d.Op, a, b)
	case isa.KindLoad:
		u.isLoad = true
		u.addr = a + uint64(d.Imm)
		result = c.MemRead(u.addr, int(d.MemBytes))
	case isa.KindStore:
		u.isStore = true
		u.addr = a + uint64(d.Imm)
		c.memWrite(u.addr, int(d.MemBytes), b)
	case isa.KindAtomic:
		u.isLoad, u.isStore, u.isAtom = true, true, true
		u.addr = a
		result = c.execAtomic(t, u, d, b, srcVal(d.Rc, d.RcDeq), enqQ != nil)
	case isa.KindCondBranch:
		taken := isa.EvalBranch(d.Op, a, b)
		if taken {
			nextPC = d.Target
		}
		c.stats.Branches++
		pred := c.bpred.predict(t.pc, t.hist)
		c.bpred.update(t.pc, t.hist, taken)
		t.hist = t.hist<<1 | b2u(taken)
		if pred != taken {
			u.mispred = true
			c.stats.Mispredicts++
		}
	case isa.KindJump:
		if d.Op == isa.OpJr {
			nextPC = int(a)
		} else {
			nextPC = d.Target
		}
		c.stats.Branches++
	case isa.KindPeek:
		e := peekQ.Head()
		result = e.Val
		u.qsrc[0] = qref{peekQ, e}
		u.nqsrc = 1
	case isa.KindEnqC:
		result = a
		if d.UseImm {
			result = b
		}
	case isa.KindSkipC:
		q := c.qrm.Q(d.Q)
		result = skipCV.Val
		u.qsrc[0] = qref{q, skipCV}
		u.nqsrc = 1
		u.deqQ = q
		u.deqN = skipN + 1
		q.SkipConsume(skipN)
		c.stats.SkipOps++
		c.stats.SkipDiscard += uint64(skipN)
		if c.trace != nil {
			c.trace.Emit(telemetry.EvSkip, int16(c.id), int16(t.id), uint64(q.ID), uint64(skipN))
		}
	case isa.KindQPoll:
		q := c.qrm.Q(d.Q)
		result = q.SpecTail - q.SpecHead
	case isa.KindHalt:
		t.halted = true
		u.isHalt = true
	}

	// ---- Phase 3: destination allocation / enqueue. ----

	if enqQ != nil {
		phys, _ := c.AllocPhys()
		u.enqQ = enqQ
		u.enqSeq = enqQ.Enq(result, d.Kind == isa.KindEnqC, int(phys))
		enqQ.MarkSpecReady(u.enqSeq, c.now+1)
		c.stats.Enqueues++
	} else if d.Writes {
		phys, _ := c.AllocPhys()
		u.dst = phys
		u.oldDst = t.rmap[d.Dst]
		t.rmap[d.Dst] = phys
		c.regReady[phys] = queue.NotReady
		t.regs[d.Dst] = result
	}

	// ---- Phase 4: dispatch. ----

	t.pc = nextPC
	t.inflight++
	t.robUsed++
	if u.isLoad {
		t.lqUsed++
	}
	if u.isStore {
		t.sqUsed++
	}
	c.rob[t.id] = append(c.rob[t.id], u)
	c.iq = append(c.iq, u)
	if u.mispred {
		t.blockedOn = u
		t.redirectTrap = false
	}
	return 1, true
}
