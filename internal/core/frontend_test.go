package core

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/isa"
	"pipette/internal/mem"
)

// sumProg computes sum(1..n) into res, with fusible addi/bne pairs.
func sumProg(name string, n int64, res uint64) *isa.Program {
	a := isa.NewAssembler(name)
	a.MovI(1, 0)
	a.MovI(2, n)
	a.Label("loop")
	a.Add(1, 1, 2)
	a.SubI(2, 2, 1)
	a.BneI(2, 0, "loop")
	a.MovU(3, res)
	a.St8(3, 0, 1)
	a.Halt()
	return a.MustLink()
}

// TestPredecodeOnOffEquivalence runs the same workload on the decoded and
// raw-Inst paths and requires identical cycles, stats and memory.
func TestPredecodeOnOffEquivalence(t *testing.T) {
	runSide := func(predecode bool) (Stats, uint64) {
		c, m := newTestCore(t)
		c.SetPredecode(predecode)
		res := m.AllocWords(1)
		c.Load(0, sumProg("eq", 500, res))
		run(t, c, 100000)
		return c.Stats(), m.Read64(res)
	}
	on, vOn := runSide(true)
	off, vOff := runSide(false)
	if vOn != vOff || vOn != 125250 {
		t.Fatalf("results: predecode=%d raw=%d, want 125250", vOn, vOff)
	}
	if on.Cycles != off.Cycles || on.Committed != off.Committed ||
		on.Uops != off.Uops || on.Mispredicts != off.Mispredicts ||
		on.CPI != off.CPI {
		t.Fatalf("stats diverge:\n  predecode: %+v\n  raw:       %+v", on, off)
	}
}

// TestPredecodeUsesFusedPairs checks the decoded path actually engages:
// the loaded program decodes with fused pairs and the cache records the
// decode.
func TestPredecodeUsesFusedPairs(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	c.Load(0, sumProg("fuse", 100, res))
	tr := c.threads[0]
	if tr.dec == nil {
		t.Fatal("thread has no decoded program with predecode on")
	}
	if tr.dec.NFused == 0 {
		t.Fatal("sum loop decoded with no fused pairs")
	}
	if st := c.DecodeCache(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cache stats after first load: %+v", st)
	}
	run(t, c, 100000)
	if got := m.Read64(res); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

// TestDecodeCacheInvalidationOnReload loads a new program onto a warm core:
// the stale decoded blocks must be evicted and the new program must run
// from its own decode (reload-after-run).
func TestDecodeCacheInvalidationOnReload(t *testing.T) {
	c, m := newTestCore(t)
	resA, resB := m.AllocWords(1), m.AllocWords(1)
	progA := sumProg("A", 100, resA)
	progB := sumProg("B", 200, resB)

	c.Load(0, progA)
	decA := c.threads[0].dec
	run(t, c, 100000)
	if got := m.Read64(resA); got != 5050 {
		t.Fatalf("A: sum = %d, want 5050", got)
	}

	// Reload with a different program on the same warm core.
	c.Load(0, progB)
	st := c.DecodeCache()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d after reload, want 1 (stale A dropped)", st.Evictions)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (A and B each decoded once)", st.Misses)
	}
	if c.threads[0].dec == decA || c.threads[0].dec == nil || c.threads[0].dec.Prog != progB {
		t.Fatal("thread still renames from A's stale decode after loading B")
	}
	if _, stale := c.dcache[progA]; stale {
		t.Fatal("A's blocks still cached after no thread runs it")
	}
	run(t, c, 100000)
	if got := m.Read64(resB); got != 20100 {
		t.Fatalf("B: sum = %d, want 20100", got)
	}

	// Reloading the same program hits the cache.
	c.Load(0, progB)
	if st := c.DecodeCache(); st.Hits != 1 {
		t.Fatalf("hits = %d after same-program reload, want 1", st.Hits)
	}
}

// TestResetThreadsFlushesDecodeCache: fork-after-warmup resets threads;
// nothing references the programs anymore, so the block cache must empty.
func TestResetThreadsFlushesDecodeCache(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	c.Load(0, sumProg("rt", 50, res))
	run(t, c, 100000)
	c.ResetThreads()
	if len(c.dcache) != 0 {
		t.Fatalf("%d decoded programs cached after ResetThreads, want 0", len(c.dcache))
	}
	if c.threads[0].dec != nil {
		t.Fatal("reset thread still holds a decoded program")
	}
}

// TestDecodeCacheWarmCheckpointRoundTrip checkpoints a core mid-run with a
// warm block cache, restores into a fresh core, and requires the restored
// side to finish identically — with its decoded stream re-derived (the
// cache itself is never serialized).
func TestDecodeCacheWarmCheckpointRoundTrip(t *testing.T) {
	build := func(m *mem.Memory, res uint64) *Core {
		c := newCoreOn(m)
		c.Load(0, sumProg("ckpt", 300, res))
		return c
	}
	m1 := mem.New()
	res := m1.AllocWords(1)
	c1 := build(m1, res)
	for i := 0; i < 200; i++ { // warm: mid-loop, in-flight µops, hot cache
		c1.Cycle()
	}
	if c1.Done() {
		t.Fatal("test needs a mid-run checkpoint; program already finished")
	}
	st, err := c1.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh core over a copy of functional memory.
	m2 := mem.New()
	res2 := m2.AllocWords(1)
	if res2 != res {
		t.Fatalf("memory layout diverged: %d vs %d", res2, res)
	}
	c2 := build(m2, res2)
	if c2.DecodeCache().Misses != 1 || c2.threads[0].dec == nil {
		t.Fatal("fresh core did not warm its block cache on Load")
	}
	if err := c2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if c2.threads[0].dec == nil {
		t.Fatal("restored thread lost its decoded stream")
	}

	// Both sides run to completion and must agree exactly.
	run(t, c1, 100000)
	run(t, c2, 100000)
	if m1.Read64(res) != m2.Read64(res2) || m1.Read64(res) != 45150 {
		t.Fatalf("results diverge: %d vs %d, want 45150", m1.Read64(res), m2.Read64(res2))
	}
	s1, s2 := c1.Stats(), c2.Stats()
	if s1.Cycles != s2.Cycles || s1.Committed != s2.Committed || s1.Uops != s2.Uops {
		t.Fatalf("stats diverge:\n  original: %+v\n  restored: %+v", s1, s2)
	}
}

// newCoreOn builds a default core over m (helper for checkpoint tests that
// need two memories).
func newCoreOn(m *mem.Memory) *Core {
	h := cache.New(cache.DefaultConfig(), 1)
	return New(0, DefaultConfig(), m, h.Port(0))
}
