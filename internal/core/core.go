// Package core implements the cycle-level timing model of a 4-thread SMT
// out-of-order core with the Pipette extensions (Secs. III and IV of the
// paper): register-mapped queues held in the physical register file,
// control-value traps to user-level handlers, skip_to_ctrl, and hooks for
// reference accelerators and cross-core connectors.
//
// The model is execution-driven with functional execution at rename: each
// thread's architectural state advances in program order as instructions are
// renamed, while the backend (issue queue, ROB, load/store queues, memory
// hierarchy) computes timing only. Branch mispredictions and control-value
// traps stall the frontend for the resolution latency instead of fetching
// wrong-path instructions (see DESIGN.md §4).
package core

import (
	"fmt"

	"pipette/internal/cache"
	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/profile"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// Config sizes one core (Table IV, Skylake-like, scaled to 4 SMT threads).
type Config struct {
	Threads      int // hardware thread contexts
	FetchWidth   int // frontend width (instructions renamed per cycle)
	IssueWidth   int // µops issued per cycle
	CommitWidth  int // µops committed per cycle
	ROBPerThread int // reorder-buffer partition per thread
	IQSize       int // issue-queue entries (shared)
	LQPerThread  int // load-queue entries per thread
	SQPerThread  int // store-queue entries per thread
	PhysRegs     int // physical register file entries

	NumQueues       int // Pipette queues per core
	DefaultQueueCap int // entries per queue unless overridden

	MispredictPenalty uint64 // frontend refill after a mispredicted branch resolves
	TrapPenalty       uint64 // redirect cost of a control-value / enqueue-handler trap

	IntMulLat, IntDivLat uint64
	FPLat, FPDivLat      uint64
	AtomicExtraLat       uint64

	LoadPorts, StorePorts int

	BPredBits int // gshare history/table width

	// SpeculativeDequeue enables the more aggressive variant of Sec. IV-A
	// in which dequeues may consume still-speculative enqueued values
	// (values that exist in the QRM but whose enqueue has not committed).
	// The paper found it "barely improved performance (about 1%)"; the
	// default is the simple committed-values-only design.
	SpeculativeDequeue bool

	// Priority selects the SMT fetch/rename policy. The paper uses ICOUNT
	// and leaves producer-prioritizing policies to future work; both are
	// implemented here (see the ablation benchmarks).
	Priority PriorityPolicy
}

// PriorityPolicy selects how rename bandwidth is shared between threads.
type PriorityPolicy uint8

// SMT thread-priority policies.
const (
	PriorityICOUNT     PriorityPolicy = iota // fewest in-flight µops first (default)
	PriorityProducers                        // static: lower thread ids (pipeline producers) first
	PriorityRoundRobin                       // rotate the lead thread every cycle
)

// DefaultConfig returns the paper's core configuration: 6-wide OOO, 224-entry
// ROB (56/thread), 212-entry PRF, 16 queues.
func DefaultConfig() Config {
	return Config{
		Threads:      4,
		FetchWidth:   6,
		IssueWidth:   6,
		CommitWidth:  6,
		ROBPerThread: 56,
		IQSize:       96,
		LQPerThread:  18,
		SQPerThread:  14,
		PhysRegs:     212,

		NumQueues:       16,
		DefaultQueueCap: 16,

		MispredictPenalty: 14,
		TrapPenalty:       16,

		IntMulLat: 3, IntDivLat: 20,
		FPLat: 4, FPDivLat: 14,
		AtomicExtraLat: 8,

		LoadPorts: 2, StorePorts: 1,

		BPredBits: 12,
	}
}

// StallReason classifies why a thread could not rename this cycle.
type StallReason uint8

// Rename stall reasons, grouped for the CPI stack (Fig. 11): queue-ish
// reasons map to "queue stalls", resource reasons to "backend", redirects to
// "frontend/other".
const (
	StallNone StallReason = iota
	StallHalted
	StallQueueEmpty
	StallQueueFull
	StallSkipWait // skip_to_ctrl waiting for a control value
	StallPRF
	StallROB
	StallIQ
	StallLSQ
	StallRedirect // mispredict resolution or trap redirect
	numStallReasons
)

var stallNames = [numStallReasons]string{
	"none", "halted", "queue-empty", "queue-full", "skip-wait",
	"prf", "rob", "iq", "lsq", "redirect",
}

// String names the stall reason.
func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return fmt.Sprintf("stall%d", uint8(s))
}

// StallNames returns the reason names indexed by StallReason value, for
// telemetry sinks.
func StallNames() []string { return stallNames[:] }

// CPIStack accumulates the cycle breakdown of Fig. 11.
type CPIStack struct {
	Issue   uint64 // cycles with at least one µop issued
	Backend uint64 // stalled on memory/ROB/IQ/PRF
	Queue   uint64 // all active threads blocked on queue conditions
	Front   uint64 // frontend redirects and other stalls
}

// Total returns the sum of all cycle categories.
func (s CPIStack) Total() uint64 { return s.Issue + s.Backend + s.Queue + s.Front }

// Stats aggregates per-core counters.
type Stats struct {
	Cycles      uint64
	Committed   uint64 // instructions committed (architectural)
	Uops        uint64 // µops issued
	Branches    uint64
	Mispredicts uint64
	CVTraps     uint64 // dequeue-handler redirects
	EnqTraps    uint64 // enqueue-handler redirects
	SkipOps     uint64
	SkipDiscard uint64 // data values discarded by skip_to_ctrl
	Enqueues    uint64
	Dequeues    uint64
	RegReads    uint64
	RegWrites   uint64
	CPI         CPIStack
	PerThread   []uint64 // committed per thread

	// QueueOccupancySum accumulates, per cycle, the number of live QRM
	// entries (physical registers held by queues); divide by Cycles for
	// the mean mapped-register count (the Sec. IV-D utilization argument).
	QueueOccupancySum uint64
	// QueueOccupancyMax is the peak number of mapped registers.
	QueueOccupancyMax uint64
}

// MeanMappedRegs returns the average number of physical registers the QRM
// held over the run.
func (s Stats) MeanMappedRegs() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.QueueOccupancySum) / float64(s.Cycles)
}

type qref struct {
	q *queue.Queue
	e *queue.Entry
}

type uopState uint8

const (
	uopWaiting uopState = iota
	uopIssued
	uopDone
)

type uop struct {
	thread  int
	op      isa.Op
	pc      int       // fetch PC (tracing)
	inst    *isa.Inst // nil for synthetic µops
	seqNo   uint64    // global age
	src     [3]int32
	nsrc    int
	qsrc    [2]qref // queue entries whose readiness gates issue
	nqsrc   int
	dst     int32 // allocated phys reg, -1 none
	oldDst  int32 // previous mapping to free at commit, -1 none
	enqQ    *queue.Queue
	enqSeq  uint64
	deqQ    *queue.Queue // queue whose entries this uop consumed
	deqN    int          // how many entries (skip_to_ctrl consumes several)
	isLoad  bool
	isStore bool
	isAtom  bool
	addr    uint64
	mispred bool
	synth   bool // hardware-injected (CV trap delivery); not an architectural instruction
	isHalt  bool
	state   uopState
	doneAt  uint64

	// lat is the execution latency the decoded frontend precomputed at
	// rename (0 = derive from the op class at issue; the raw path and
	// restored µops do). Derived, never serialized — both derivations
	// agree, so hashes are identical either way.
	lat uint64

	// profLvl marks an in-flight load for the cycle-accounting profiler:
	// cache level + 1 (0 = unmarked), set at issue and cleared at retire so
	// the outstanding-by-level counters stay balanced. Never serialized —
	// restored µops are simply unmarked (see RestoreState).
	profLvl uint8
}

type thread struct {
	id     int
	prog   *isa.Program
	pc     int
	regs   [isa.NumArchRegs]uint64 // functional state, advanced at rename
	rmap   [isa.NumArchRegs]int32  // arch -> phys; -1 means "never renamed"
	active bool
	halted bool // halt renamed; no more fetch
	done   bool // halt committed

	inflight int // renamed, not committed (ICOUNT)
	robUsed  int
	lqUsed   int
	sqUsed   int

	blockedUntil uint64 // frontend resumes at this cycle
	blockedOn    *uop   // unresolved mispredicted branch
	stall        StallReason

	// redirectTrap distinguishes, while stall == StallRedirect, a trap
	// redirect (CV/enqueue handler: the profiler's "trap" category) from a
	// mispredict wait ("frontend"). Set only where the redirect is created,
	// so it is frozen over quiescent spans like stall itself. Scratch: not
	// serialized; meaningless outside StallRedirect.
	redirectTrap bool

	// atomFence stops this thread's rename for the rest of the cycle after
	// an atomic in deferred mode: the fetched value is only patched into the
	// register file at the cycle's commit phase, so nothing later in the
	// thread may consume it this cycle. Scratch: set and cleared within one
	// rename pass, never serialized.
	atomFence bool

	hist uint64 // branch history for gshare

	// dec is the pre-decoded form of prog from the core's block cache, or
	// nil when the raw-Inst path is selected (-no-predecode). Derived
	// state: rebuilt on Load/SetPredecode/restore, never serialized, so
	// state hashes are identical with predecode on or off.
	dec *isa.DecodedProgram

	// Queue-register bindings, resolved from prog.Bindings at load.
	inQ  [isa.NumArchRegs]*queue.Queue // writes enqueue here
	outQ [isa.NumArchRegs]*queue.Queue // reads dequeue from here
}

// Unit is extra hardware ticked by the core each cycle (reference
// accelerators; connectors are ticked by the system since they span cores).
// Units follow the clocked-component contract of the host core (see
// component.go): NextEvent bounds the unit's next possible action under the
// frozen-machine assumption, and FastForward is told about skipped spans so
// internal cycle bookkeeping (e.g. completion buffers) stays exact.
type Unit interface {
	Tick(now uint64)
	Drained() bool
	NextEvent(now uint64) uint64
	FastForward(from, to uint64)
}

// Core is one simulated core.
type Core struct {
	id      int
	cfg     Config
	mem     *mem.Memory
	port    *cache.Port
	qrm     *queue.QRM
	threads []*thread

	freelist []int32
	regReady []uint64 // phys -> cycle value is ready

	iq       []*uop
	rob      [][]*uop // per-thread FIFO
	uopPool  []*uop
	orderBuf []*thread
	seqNo    uint64
	now      uint64
	stats    Stats
	units    []Unit
	bpred    *bpred

	// Pre-decoded micro-op frontend (frontend.go): predecode selects the
	// decoded rename path (default on), dcache is the per-core basic-block
	// cache of decoded programs, latab the per-class execution latencies
	// precomputed from cfg so issue skips the class switch. All host-side
	// derived state: never serialized.
	predecode bool
	dcache    map[*isa.Program]*isa.DecodedProgram
	dcstats   DecodeCacheStats
	latab     [isa.NumClasses]uint64

	// busyAt is the last cycle any tick path mutated machine state; while
	// busyAt == now the core reports NextEvent = now+1 so quiescence
	// fast-forward never skips the cycle after an action. lastCommitAt is
	// the last cycle an architectural instruction committed (the hoisted
	// deadlock watchdog reads it). Both are scratch: not serialized, and
	// safe to lose across restore because the first stepped cycle
	// re-establishes them before anyone consults them.
	busyAt       uint64
	lastCommitAt uint64

	// Deferred (produce/commit) execution mode for multi-core systems; see
	// deferred.go. view is the core's write-buffered face of shared memory,
	// pend the per-cycle operation log, stage the staged tracer wrapping
	// `trace`. All scratch within a cycle: empty at every cycle boundary, so
	// none of it is serialized.
	deferred bool
	view     *mem.View
	pend     []pendOp
	stage    *telemetry.Tracer

	// trace, when non-nil, receives pipeline events (traps, redirects;
	// queue activity is emitted by the QRM itself). Attach with
	// AttachTracer; hot paths only pay the nil check when disabled.
	trace *telemetry.Tracer

	// prof, when non-nil, receives the cycle-accounting slot attribution
	// (see profile.go). Same nil-guarded zero-cost pattern as trace; never
	// serialized, so profiling cannot perturb state hashes.
	prof *profile.CoreProf

	// TraceFn, when set, is called for every committed architectural
	// instruction with (cycle, thread, pc, disassembly). Used by
	// pipette-sim -trace and tests; nil in normal runs.
	TraceFn func(cycle uint64, thread, pc int, text string)

	// LoadHook, when set, observes every program loaded onto this core
	// (cmd/pipette-dis uses it to dump kernels without running them).
	LoadHook func(tid int, p *isa.Program)
}

// New builds a core wired to a memory port. Queue capacities default to
// cfg.DefaultQueueCap; override with SetQueueCaps before loading programs.
func New(id int, cfg Config, m *mem.Memory, port *cache.Port) *Core {
	c := &Core{
		id:        id,
		cfg:       cfg,
		mem:       m,
		port:      port,
		qrm:       queue.NewQRM(cfg.NumQueues, cfg.DefaultQueueCap),
		bpred:     newBpred(cfg.BPredBits),
		predecode: true,
		dcache:    make(map[*isa.Program]*isa.DecodedProgram),
	}
	for cl := range c.latab {
		c.latab[cl] = 1
	}
	c.latab[isa.ClassMul] = cfg.IntMulLat
	c.latab[isa.ClassDiv] = cfg.IntDivLat
	c.latab[isa.ClassFPAdd] = cfg.FPLat
	c.latab[isa.ClassFPMul] = cfg.FPLat
	c.latab[isa.ClassFPDiv] = cfg.FPDivLat
	for i := 0; i < cfg.PhysRegs; i++ {
		c.freelist = append(c.freelist, int32(i))
	}
	c.regReady = make([]uint64, cfg.PhysRegs)
	c.threads = make([]*thread, cfg.Threads)
	c.rob = make([][]*uop, cfg.Threads)
	for i := range c.threads {
		c.threads[i] = &thread{id: i}
		for r := range c.threads[i].rmap {
			c.threads[i].rmap[r] = -1
		}
	}
	c.stats.PerThread = make([]uint64, cfg.Threads)
	return c
}

// SetQueueCaps reconfigures per-queue capacities (the OS chunking of Fig. 7).
// Must be called before any program runs.
func (c *Core) SetQueueCaps(caps map[uint8]int) {
	sizes := make([]int, c.cfg.NumQueues)
	for i := range sizes {
		sizes[i] = c.cfg.DefaultQueueCap
	}
	for q, n := range caps {
		sizes[q] = n
	}
	c.qrm = queue.NewQRMSized(sizes)
	if c.trace != nil {
		c.qrm.SetTracer(c.trace, c.id)
	}
}

// AttachTracer wires an event tracer into the core and its QRM (workload
// builders may later replace the QRM via SetQueueCaps; the tracer follows).
func (c *Core) AttachTracer(tr *telemetry.Tracer) {
	c.trace = tr
	c.qrm.SetTracer(tr, c.id)
}

// Tracer returns the attached tracer (nil when tracing is disabled); RAs
// and connectors emit their events through it.
func (c *Core) Tracer() *telemetry.Tracer { return c.trace }

// ID returns the core's index in the system.
func (c *Core) ID() int { return c.id }

// Sample captures the core's instantaneous occupancy state for the
// telemetry time series.
func (c *Core) Sample() telemetry.CoreSample {
	cs := telemetry.CoreSample{
		Committed:  c.stats.Committed,
		MappedRegs: c.qrm.MappedRegisters(),
		IQLen:      len(c.iq),
		QueueOcc:   make([]int, len(c.qrm.Queues)),
		Stall:      make([]uint8, len(c.threads)),
		ROBUsed:    make([]int, len(c.threads)),
	}
	for i, q := range c.qrm.Queues {
		cs.QueueOcc[i] = q.Occupancy()
	}
	for i, t := range c.threads {
		cs.Stall[i] = uint8(t.stall)
		cs.ROBUsed[i] = t.robUsed
	}
	if c.prof != nil {
		cs.Slots = append([]uint64(nil), c.prof.Slots[:]...)
	}
	return cs
}

// Load installs a program on hardware thread tid.
func (c *Core) Load(tid int, p *isa.Program) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if c.LoadHook != nil {
		c.LoadHook(tid, p)
	}
	t := c.threads[tid]
	t.prog = p
	t.active = true
	t.halted, t.done = false, false
	t.pc = 0
	for r, v := range p.InitRegs {
		t.regs[r] = v
	}
	for _, b := range p.Bindings {
		if b.Dir == isa.QueueIn {
			t.inQ[b.Reg] = c.qrm.Q(b.Q)
		} else {
			t.outQ[b.Reg] = c.qrm.Q(b.Q)
		}
	}
	t.dec = nil
	if c.predecode {
		t.dec = c.decodedFor(p)
	}
	// A reload must not leave the block cache pinning programs no thread
	// runs anymore (frontend.go).
	c.evictStaleDecodes()
}

// AddUnit attaches a hardware unit (e.g. an RA) ticked every cycle.
func (c *Core) AddUnit(u Unit) { c.units = append(c.units, u) }

// QRM exposes the core's queue register map (for RAs and connectors).
func (c *Core) QRM() *queue.QRM { return c.qrm }

// MemPort exposes the core's cache port.
func (c *Core) MemPort() *cache.Port { return c.port }

// Mem exposes functional memory.
func (c *Core) Mem() *mem.Memory { return c.mem }

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// AllocPhys takes a register from the freelist (for RAs and connectors,
// which "manipulate the QRM like ordinary threads").
func (c *Core) AllocPhys() (int32, bool) {
	if len(c.freelist) == 0 {
		return -1, false
	}
	r := c.freelist[len(c.freelist)-1]
	c.freelist = c.freelist[:len(c.freelist)-1]
	return r, true
}

// FreePhys returns a register to the freelist.
func (c *Core) FreePhys(r int32) {
	if r >= 0 {
		c.freelist = append(c.freelist, r)
	}
}

// Done reports whether all loaded threads have committed their halt and all
// attached units have drained.
func (c *Core) Done() bool {
	for _, t := range c.threads {
		if t.active && !t.done {
			return false
		}
	}
	for _, u := range c.units {
		if !u.Drained() {
			return false
		}
	}
	return true
}

// Committed returns total committed instructions.
func (c *Core) Committed() uint64 { return c.stats.Committed }

// String summarizes the core state for logs.
func (c *Core) String() string {
	return fmt.Sprintf("core%d cyc=%d commit=%d", c.id, c.now, c.stats.Committed)
}

// DebugState renders per-thread and per-queue state for deadlock reports.
// See DebugSnapshot for the structured form.
func (c *Core) DebugState() string { return c.DebugSnapshot().String() }
