// Deferred execution mode: the produce/commit phase split that makes
// multi-core systems safe to tick in parallel (docs/PARALLEL.md).
//
// In a multi-core system a core's tick touches state shared with other
// shards in exactly three ways: timing accesses through the shared cache
// hierarchy (Port.Access mutates LRU/MSHR/prefetcher/DRAM state), functional
// loads/stores/atomics against the shared memory, and telemetry emission
// into the shared ring. With deferral enabled the core instead
//
//   - appends every Port.Access it would have made to a private per-cycle
//     operation log (pend), in intra-tick order, leaving NotReady
//     placeholders in doneAt/regReady/queue ReadyAt slots. Nothing in the
//     remainder of the cycle compares those values against anything but
//     `now` (they only need to read as "in the future"), so placeholders
//     are observationally identical to the real completion times until the
//     commit phase patches them in.
//   - routes functional memory through a mem.View: reads see the frozen
//     start-of-cycle image overlaid with the core's own buffered writes;
//     writes and atomics are buffered. An atomic fences its thread for the
//     rest of the rename cycle so nothing can consume the not-yet-fetched
//     result; the fetched value is patched into the thread's register file
//     when the buffer flushes.
//   - emits telemetry through a staged tracer whose sink appends the event
//     into the same operation log, preserving the exact interleaving of
//     events and accesses within the tick.
//
// The system then calls FlushPending once per core, in canonical core
// order, during the sequential commit phase: the log replays — real cache
// accesses happen, placeholders are patched, staged events merge into the
// shared ring — in exactly the order the serial kernel would have produced,
// and the view's write buffer flushes to shared memory. Because replay
// order equals canonical tick order, a deferred run is bit-identical
// whether the produce phases ran on one goroutine or many.
package core

import (
	"fmt"

	"pipette/internal/mem"
	"pipette/internal/telemetry"
)

// AccessPatcher receives the completion time of a deferred cache access
// (core units — RAs — implement it to patch their completion buffers and
// output-queue ready times during the commit phase).
type AccessPatcher interface {
	PatchAccess(idx int, done uint64)
}

type pendKind uint8

const (
	pendEvent pendKind = iota // staged telemetry event
	pendLoad                  // issued load/atomic: patch u.doneAt and regReady
	pendStore                 // commit-time store write-back (result unused)
	pendUnit                  // unit (RA) access: patch via AccessPatcher
)

type pendOp struct {
	kind   pendKind
	addr   uint64
	u      *uop // pendLoad
	fix    AccessPatcher
	fixIdx int             // pendUnit
	ev     telemetry.Event // pendEvent
}

// EnableDeferred switches the core into deferred (produce/commit) mode.
// Idempotent; the system enables it on every core of a multi-core machine
// at the top of each run segment. If a tracer is attached, emission is
// redirected through a staged tracer whose events land in the operation
// log (re-wrapping if the tracer was replaced since the last segment).
func (c *Core) EnableDeferred() {
	c.deferred = true
	if c.view == nil {
		c.view = mem.NewView(c.mem)
	}
	if c.pend == nil {
		c.pend = make([]pendOp, 0, 256)
	}
	if c.trace != nil && c.trace != c.stage {
		c.stage = telemetry.NewStaged(c.trace, func(e telemetry.Event) {
			c.pend = append(c.pend, pendOp{kind: pendEvent, ev: e})
		})
		c.AttachTracer(c.stage)
	}
}

// Deferred reports whether the core runs in deferred mode.
func (c *Core) Deferred() bool { return c.deferred }

// MemRead performs a functional memory read through the core's current
// memory face: the shared memory directly in single-core mode, the
// frozen-image view in deferred mode. Core units (RAs) must read through
// this instead of Mem().Read.
func (c *Core) MemRead(addr uint64, n int) uint64 {
	if c.deferred {
		return c.view.Read(addr, n)
	}
	return c.mem.Read(addr, n)
}

func (c *Core) memWrite(addr uint64, n int, v uint64) {
	if c.deferred {
		c.view.Write(addr, n, v)
		return
	}
	c.mem.Write(addr, n, v)
}

// DeferAccess appends a unit's cache access to the operation log; at the
// commit phase the real Port.Access runs and fix.PatchAccess(idx, done)
// delivers the completion time.
func (c *Core) DeferAccess(addr uint64, fix AccessPatcher, idx int) {
	c.pend = append(c.pend, pendOp{kind: pendUnit, addr: addr, fix: fix, fixIdx: idx})
}

// LastStagedIndex returns the log index of the most recently staged
// telemetry event, so a unit deferring an access can patch the event's
// payload (e.g. the completion cycle) once it is known.
func (c *Core) LastStagedIndex() int { return len(c.pend) - 1 }

// PatchStagedEventB rewrites the B payload of a staged event before it is
// replayed into the shared ring.
func (c *Core) PatchStagedEventB(idx int, b uint64) { c.pend[idx].ev.B = b }

// StagePassthrough routes the core's staged tracer directly to the shared
// ring (the system sets it during the sequential part of the commit phase —
// connector ticks — where emission order is already canonical).
func (c *Core) StagePassthrough(on bool) {
	if c.stage != nil {
		c.stage.Passthrough(on)
	}
}

// FlushPending replays the core's operation log in intra-tick order —
// performing the deferred cache accesses and patching their completion
// times, merging staged telemetry into tr — then flushes the core's memory
// write buffer. The system calls it once per core, in canonical core order,
// after all produce phases of the cycle have finished; everything it does
// lands exactly where the serial kernel would have put it.
func (c *Core) FlushPending(now uint64, tr *telemetry.Tracer) {
	for i := 0; i < len(c.pend); i++ {
		op := &c.pend[i]
		switch op.kind {
		case pendEvent:
			if tr != nil {
				tr.Replay(op.ev)
			}
		case pendLoad:
			u := op.u
			done, lvl := c.port.Access(now, op.addr, u.isAtom)
			if u.isAtom {
				done += c.cfg.AtomicExtraLat
			}
			u.doneAt = done
			if u.dst >= 0 {
				c.regReady[u.dst] = done
			}
			if c.prof != nil {
				// Deferred mode learns the cache level at the commit phase;
				// the commit phase is part of the same cycle, so the
				// outstanding-by-level account stays cycle-exact.
				u.profLvl = uint8(lvl) + 1
				c.prof.LoadIssued(int(lvl))
			}
		case pendStore:
			c.port.Access(now, op.addr, true)
		case pendUnit:
			done, _ := c.port.Access(now, op.addr, false)
			op.fix.PatchAccess(op.fixIdx, done)
		}
	}
	c.pend = c.pend[:0]
	c.view.Flush()
}

func (c *Core) checkAtomicDst(enqQ bool, prog string, pc int) {
	if enqQ {
		panic(fmt.Sprintf("%s pc=%d: atomic result enqueued to a queue register; unsupported in multi-core (deferred) mode", prog, pc))
	}
}
