// Cycle-accounting hooks: when a profile.CoreProf is attached the core
// attributes every issue slot of every cycle to one category (profTick /
// profSpan), tracks outstanding loads by cache level for the backend split,
// and folds per-queue occupancy histograms into the mapped-register walk.
// Everything here is a pure function of frozen machine state, so quiescence
// fast-forward can credit a whole span in one step and profiled runs stay
// bit-identical across worker counts and fast-forward settings. Disabled
// runs pay exactly one nil check per cycle (the PR 1 telemetry pattern).
package core

import "pipette/internal/profile"

// SetProf attaches a cycle-accounting profiler. Attach before the first
// cycle: counters cover only cycles ticked while attached, and conservation
// is checked against the profiler's own cycle count.
func (c *Core) SetProf(p *profile.CoreProf) { c.prof = p }

// Prof returns the attached profiler (nil when profiling is disabled);
// core units (RAs) record their occupancy through it.
func (c *Core) Prof() *profile.CoreProf { return c.prof }

// slotCategory picks the one stall category for this cycle's unissued
// slots. Precedence mirrors idleBucket (backend dominates, then queue
// conditions, then redirects) with two refinements: backend splits by the
// deepest cache level an outstanding load waits on, and redirects split
// into trap vs. frontend via the thread's redirectTrap mark. Pure function
// of frozen state — the fast-forward contract.
func (c *Core) slotCategory() profile.Category {
	anyActive := false
	var qe, qf, trap, front, backend bool
	for _, t := range c.threads {
		if !t.active || t.done || t.halted {
			continue
		}
		anyActive = true
		switch t.stall {
		case StallQueueEmpty:
			qe = true
		case StallQueueFull:
			qf = true
		case StallSkipWait:
			trap = true
		case StallRedirect:
			if t.redirectTrap {
				trap = true
			} else {
				front = true
			}
		default:
			backend = true
		}
	}
	if !anyActive && len(c.iq) == 0 {
		return profile.CatIdle
	}
	if len(c.iq) > 0 || backend {
		if lvl := c.prof.MemLevel(); lvl >= 0 {
			return profile.MemCategory(lvl)
		}
		return profile.CatBackend
	}
	if qf {
		return profile.CatQueueFull
	}
	if qe {
		return profile.CatQueueEmpty
	}
	if trap {
		return profile.CatTrap
	}
	if front {
		return profile.CatFrontend
	}
	return profile.CatBackend
}

// threadCategory classifies one hardware thread's cycle for the per-stage
// stack: what this thread, individually, spent the cycle on.
func threadCategory(t *thread) profile.Category {
	if t.halted {
		return profile.CatIdle
	}
	switch t.stall {
	case StallNone:
		return profile.CatRetired
	case StallQueueEmpty:
		return profile.CatQueueEmpty
	case StallQueueFull:
		return profile.CatQueueFull
	case StallSkipWait:
		return profile.CatTrap
	case StallRedirect:
		if t.redirectTrap {
			return profile.CatTrap
		}
		return profile.CatFrontend
	default:
		return profile.CatBackend
	}
}

// profTick attributes one ticked cycle: the issue-slot account plus each
// loaded thread's per-stage category. Queue occupancies are folded into
// the mapped-register walk in Tick itself.
func (c *Core) profTick(issued int) {
	c.prof.Tick(c.slotCategory(), issued)
	for _, t := range c.threads {
		if !t.active || t.done {
			continue
		}
		c.prof.ThreadCycles(t.id, threadCategory(t), 1)
	}
}

// profSpan credits a fast-forwarded quiescent span of d cycles: no µop
// issues inside a quiescent span, so the whole span carries the frozen
// cycle's category.
func (c *Core) profSpan(d uint64) {
	c.prof.Span(c.slotCategory(), d)
	for _, t := range c.threads {
		if !t.active || t.done {
			continue
		}
		c.prof.ThreadCycles(t.id, threadCategory(t), d)
	}
}
