package core

import (
	"fmt"
	"strings"

	"pipette/internal/cache"
)

// ThreadDebug is one hardware thread's state in a debug dump.
type ThreadDebug struct {
	ID       int    `json:"id"`
	Program  string `json:"program"`
	PC       int    `json:"pc"`
	Stall    string `json:"stall"`
	Halted   bool   `json:"halted"`
	Done     bool   `json:"done"`
	Inflight int    `json:"inflight"`
	ROBUsed  int    `json:"rob_used"`
}

// QueueDebug is one Pipette queue's state in a debug dump.
type QueueDebug struct {
	ID          int    `json:"id"`
	Cap         int    `json:"cap"`
	Occupancy   int    `json:"occupancy"`
	PendingDeq  int    `json:"pending_deq"`
	SkipPending bool   `json:"skip_pending"`
	SpecHead    uint64 `json:"spec_head"`
	SpecTail    uint64 `json:"spec_tail"`
	CommHead    uint64 `json:"comm_head"`
}

// CoreDebug is one core's state in a debug dump: active threads, non-empty
// queues, and backend occupancy. Produced by DebugSnapshot; rendered by
// String for deadlock reports and diffed field-by-field by pipette-diverge.
type CoreDebug struct {
	ID        int           `json:"id"`
	Cycle     uint64        `json:"cycle"`
	Committed uint64        `json:"committed"`
	Threads   []ThreadDebug `json:"threads"`
	Queues    []QueueDebug  `json:"queues"`
	Freelist  int           `json:"freelist"`
	IQLen     int           `json:"iq_len"`

	// OutLoads counts issued-but-unretired loads by the cache level they
	// wait on ("L2", "DRAM", ...). Populated only on profiling runs.
	OutLoads map[string]uint64 `json:"out_loads,omitempty"`
}

// DebugSnapshot captures per-thread and per-queue state for deadlock
// reports and divergence dumps. Inactive threads and empty queues are
// omitted, matching what the rendered report shows.
func (c *Core) DebugSnapshot() CoreDebug {
	d := CoreDebug{
		ID:        c.id,
		Cycle:     c.now,
		Committed: c.stats.Committed,
		Freelist:  len(c.freelist),
		IQLen:     len(c.iq),
	}
	for _, t := range c.threads {
		if !t.active {
			continue
		}
		name := ""
		if t.prog != nil {
			name = t.prog.Name
		}
		d.Threads = append(d.Threads, ThreadDebug{
			ID: t.id, Program: name, PC: t.pc, Stall: t.stall.String(),
			Halted: t.halted, Done: t.done, Inflight: t.inflight, ROBUsed: t.robUsed,
		})
	}
	for _, q := range c.qrm.Queues {
		if q.Occupancy() == 0 && !q.SkipPending {
			continue
		}
		d.Queues = append(d.Queues, QueueDebug{
			ID: q.ID, Cap: q.Cap, Occupancy: q.Occupancy(), PendingDeq: q.PendingDeq(),
			SkipPending: q.SkipPending, SpecHead: q.SpecHead, SpecTail: q.SpecTail, CommHead: q.CommHead,
		})
	}
	if c.prof != nil {
		for lvl, n := range c.prof.Outstanding() {
			if n > 0 {
				if d.OutLoads == nil {
					d.OutLoads = map[string]uint64{}
				}
				d.OutLoads[cache.Level(lvl).String()] = n
			}
		}
	}
	return d
}

// String renders the dump in the traditional deadlock-report layout.
func (d CoreDebug) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d @%d:\n", d.ID, d.Cycle)
	for _, t := range d.Threads {
		fmt.Fprintf(&b, "  t%d %-20s pc=%-4d stall=%v halted=%v done=%v inflight=%d rob=%d\n",
			t.ID, t.Program, t.PC, t.Stall, t.Halted, t.Done, t.Inflight, t.ROBUsed)
	}
	for _, q := range d.Queues {
		fmt.Fprintf(&b, "  q%d cap=%d occ=%d pendDeq=%d skipPending=%v\n",
			q.ID, q.Cap, q.Occupancy, q.PendingDeq, q.SkipPending)
	}
	fmt.Fprintf(&b, "  freelist=%d iq=%d\n", d.Freelist, d.IQLen)
	return b.String()
}
