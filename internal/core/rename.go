package core

import (
	"fmt"

	"pipette/internal/isa"
	"pipette/internal/mem"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// rename is the in-order frontend: it picks threads by ICOUNT, renames up to
// FetchWidth instructions, executes them functionally, allocates backend
// resources, and performs the Pipette rename-stage work of Sec. IV-A
// (queue-entry binding, control-value traps, skip_to_ctrl, enqueue-handler
// interlocks).
func (c *Core) rename() {
	order := c.orderBuf[:0]
	for _, t := range c.threads {
		if t.active && !t.halted {
			t.stall = StallNone
			order = append(order, t)
		}
	}
	c.orderBuf = order
	switch c.cfg.Priority {
	case PriorityICOUNT:
		// Fewest in-flight µops first (stable insertion sort; the thread
		// count is tiny and this runs every cycle).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j].inflight < order[j-1].inflight; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	case PriorityProducers:
		// Threads are loaded in pipeline order, so static id order favors
		// producers (the policy the paper leaves to future work).
	case PriorityRoundRobin:
		if len(order) > 1 {
			r := int(c.now) % len(order)
			order = append(order[r:], order[:r]...)
		}
	}

	budget := c.cfg.FetchWidth
	for _, t := range order {
		for budget > 0 && !t.halted {
			if t.blockedOn != nil {
				if !t.blockedOn.resolved(c.now) {
					t.stall = StallRedirect
					break
				}
				t.blockedUntil = t.blockedOn.doneAt + c.cfg.MispredictPenalty
				t.blockedOn = nil
				t.redirectTrap = false
				c.busyAt = c.now
				if c.trace != nil {
					c.trace.Emit(telemetry.EvRedirect, int16(c.id), int16(t.id), 0, t.blockedUntil)
				}
			}
			if c.now < t.blockedUntil {
				t.stall = StallRedirect
				break
			}
			var n int
			var ok bool
			if t.dec != nil {
				n, ok = c.renameDecodedStep(t, budget)
			} else {
				n, ok = c.renameOne(t)
			}
			if !ok {
				break
			}
			c.busyAt = c.now
			budget -= n
			if t.atomFence {
				t.atomFence = false
				break
			}
		}
	}
}

// renameOne renames (and functionally executes) the instruction at t.pc.
// It returns the number of frontend slots consumed and whether it made
// progress; on failure t.stall records the reason and no state changes.
func (c *Core) renameOne(t *thread) (int, bool) {
	in := &t.prog.Code[t.pc]

	// ---- Phase 1: check everything without mutating state. ----

	if t.robUsed >= c.cfg.ROBPerThread {
		t.stall = StallROB
		return 0, false
	}
	if len(c.iq) >= c.cfg.IQSize {
		t.stall = StallIQ
		return 0, false
	}
	if in.Op.IsLoad() && t.lqUsed >= c.cfg.LQPerThread {
		t.stall = StallLSQ
		return 0, false
	}
	if in.Op.IsStore() && t.sqUsed >= c.cfg.SQPerThread {
		t.stall = StallLSQ
		return 0, false
	}

	// Dequeue sources: every read of an out-mapped register binds the head
	// entry of its queue. Collect them, checking emptiness and CV traps.
	var readBuf [3]isa.Reg
	reads := readBuf[:in.ReadsInto(&readBuf)]
	type deqSrc struct {
		reg isa.Reg
		q   *queue.Queue
	}
	var deqBuf [3]deqSrc
	nDeq := 0
	for _, r := range reads {
		if q := t.outQ[r]; q != nil {
			for i := 0; i < nDeq; i++ {
				if deqBuf[i].reg == r {
					panic(fmt.Sprintf("%s pc=%d: queue register r%d read twice in one instruction", t.prog.Name, t.pc, r))
				}
			}
			deqBuf[nDeq] = deqSrc{r, q}
			nDeq++
		} else if t.inQ[r] != nil {
			panic(fmt.Sprintf("%s pc=%d: reads input-mapped register r%d", t.prog.Name, t.pc, r))
		}
	}
	deqs := deqBuf[:nDeq]
	// Peek also inspects the head of its queue.
	isPeek := in.Op == isa.OpPeek
	var peekQ *queue.Queue
	if isPeek {
		peekQ = c.qrm.Q(in.Q)
	}

	// CV trap? The first bound entry (or peeked head) that is a control
	// value redirects to the dequeue control handler.
	trapQ := (*queue.Queue)(nil)
	for _, d := range deqs {
		if !d.q.CanDeq() {
			t.stall = StallQueueEmpty
			return 0, false
		}
		if d.q.Head().Ctrl && trapQ == nil {
			trapQ = d.q
		}
	}
	if isPeek {
		if !peekQ.CanDeq() {
			t.stall = StallQueueEmpty
			return 0, false
		}
		if peekQ.Head().Ctrl {
			trapQ = peekQ
		}
	}
	if trapQ != nil {
		return c.trapDeqCV(t, trapQ)
	}

	// skip_to_ctrl: needs a control value somewhere in the queue.
	var skipN int
	var skipCV *queue.Entry
	if in.Op == isa.OpSkipC {
		q := c.qrm.Q(in.Q)
		n, cv, ok := q.SkipScan()
		if !ok {
			if !q.SkipPending {
				q.SkipPending = true // producer's next data enqueue traps
				c.busyAt = c.now
			}
			// Discard committed data while blocked so the producer's
			// control value can always enter a full queue (the data
			// would be discarded anyway).
			for {
				phys, drained := q.DrainOne()
				if !drained {
					break
				}
				c.FreePhys(int32(phys))
				c.stats.SkipDiscard++
				c.busyAt = c.now
			}
			t.stall = StallSkipWait
			return 0, false
		}
		skipN, skipCV = n, cv
	}

	// Destination: enqueue (write to in-mapped reg) or ordinary rename.
	dstReg, writes := in.WritesReg()
	var enqQ *queue.Queue
	if writes {
		if q := t.inQ[dstReg]; q != nil {
			enqQ = q
		} else if t.outQ[dstReg] != nil {
			panic(fmt.Sprintf("%s pc=%d: writes output-mapped register r%d", t.prog.Name, t.pc, dstReg))
		}
	}
	if in.Op == isa.OpEnqC {
		enqQ = c.qrm.Q(in.Q)
	}
	if enqQ != nil {
		if enqQ.SkipPending && in.Op != isa.OpEnqC {
			// Data enqueue while the consumer skips: enqueue-handler trap.
			return c.trapEnq(t)
		}
		if !enqQ.CanEnq() {
			t.stall = StallQueueFull
			return 0, false
		}
	}
	needPhys := 0
	if enqQ != nil {
		needPhys++
	}
	if writes && enqQ == nil && in.Op != isa.OpEnqC {
		needPhys++
	}
	if len(c.freelist) < needPhys {
		t.stall = StallPRF
		return 0, false
	}

	// ---- Phase 2: functional execution. ----

	u := c.allocUop(t.id, in.Op)
	u.pc = t.pc
	u.inst = in

	// Bind dequeues in read order and resolve source values.
	var valRegs [3]isa.Reg
	var valVals [3]uint64
	nVals := 0
	for _, d := range deqs {
		e := d.q.Deq()
		valRegs[nVals], valVals[nVals] = d.reg, e.Val
		nVals++
		if u.nqsrc < len(u.qsrc) {
			u.qsrc[u.nqsrc] = qref{d.q, e}
			u.nqsrc++
		}
		u.deqQ = d.q
		u.deqN++
		c.stats.Dequeues++
	}
	srcVal := func(r isa.Reg) uint64 {
		for i := 0; i < nVals; i++ {
			if valRegs[i] == r {
				return valVals[i]
			}
		}
		if r == isa.R0 {
			return 0
		}
		return t.regs[r]
	}
	// Timing sources: unmapped arch regs read their current physical
	// mapping; -1 (never written) is always ready.
	for _, r := range reads {
		if t.outQ[r] == nil && t.rmap[r] >= 0 && u.nsrc < len(u.src) {
			u.src[u.nsrc] = t.rmap[r]
			u.nsrc++
		}
	}

	a := srcVal(in.Ra)
	b := srcVal(in.Rb)
	if in.UseImm {
		b = uint64(in.Imm)
	}

	var result uint64
	nextPC := t.pc + 1
	switch in.Op.Class() {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		result = isa.EvalALU(in.Op, a, b)
	case isa.ClassLoad:
		u.isLoad = true
		u.addr = a + uint64(in.Imm)
		result = c.MemRead(u.addr, in.Op.MemBytes())
	case isa.ClassStore:
		u.isStore = true
		u.addr = a + uint64(in.Imm)
		c.memWrite(u.addr, in.Op.MemBytes(), b)
	case isa.ClassAtomic:
		u.isLoad, u.isStore, u.isAtom = true, true, true
		u.addr = a
		if c.deferred {
			// The read-modify-write is buffered and executes at the cycle's
			// commit phase in canonical core order; the fetched value is
			// patched into t.regs[dstReg] then, and the thread is fenced for
			// the rest of the cycle so nothing consumes it early.
			c.checkAtomicDst(enqQ != nil, t.prog.Name, t.pc)
			var aop mem.AtomicOp
			switch in.Op {
			case isa.OpCas:
				aop = mem.OpCas
			case isa.OpFetchAdd:
				aop = mem.OpFetchAdd
			case isa.OpFetchMin:
				aop = mem.OpFetchMin
			case isa.OpFetchOr:
				aop = mem.OpFetchOr
			}
			var res *uint64
			if writes {
				res = &t.regs[dstReg]
			}
			c.view.Atomic(aop, u.addr, b, srcVal(in.Rc), res)
			t.atomFence = true
		} else {
			old := c.mem.Read(u.addr, 8)
			result = old
			switch in.Op {
			case isa.OpCas:
				if old == b {
					c.mem.Write(u.addr, 8, srcVal(in.Rc))
				}
			case isa.OpFetchAdd:
				c.mem.Write(u.addr, 8, old+b)
			case isa.OpFetchMin:
				if b < old {
					c.mem.Write(u.addr, 8, b)
				}
			case isa.OpFetchOr:
				c.mem.Write(u.addr, 8, old|b)
			}
		}
	case isa.ClassBranch:
		taken := isa.EvalBranch(in.Op, a, b)
		target := in.Target
		if in.Op == isa.OpJr {
			target = int(a)
		}
		if taken {
			nextPC = target
		}
		c.stats.Branches++
		if in.Op != isa.OpJmp && in.Op != isa.OpJr {
			pred := c.bpred.predict(t.pc, t.hist)
			c.bpred.update(t.pc, t.hist, taken)
			t.hist = t.hist<<1 | b2u(taken)
			if pred != taken {
				u.mispred = true
				c.stats.Mispredicts++
			}
		}
	case isa.ClassQueue:
		switch in.Op {
		case isa.OpPeek:
			e := peekQ.Head()
			result = e.Val
			u.qsrc[0] = qref{peekQ, e}
			u.nqsrc = 1
		case isa.OpEnqC:
			result = a
			if in.UseImm {
				result = b
			}
		case isa.OpSkipC:
			q := c.qrm.Q(in.Q)
			result = skipCV.Val
			u.qsrc[0] = qref{q, skipCV}
			u.nqsrc = 1
			u.deqQ = q
			u.deqN = skipN + 1
			q.SkipConsume(skipN)
			c.stats.SkipOps++
			c.stats.SkipDiscard += uint64(skipN)
			if c.trace != nil {
				c.trace.Emit(telemetry.EvSkip, int16(c.id), int16(t.id), uint64(q.ID), uint64(skipN))
			}
		case isa.OpQPoll:
			q := c.qrm.Q(in.Q)
			result = q.SpecTail - q.SpecHead
		}
	case isa.ClassHalt:
		t.halted = true
		u.isHalt = true
	}

	// ---- Phase 3: destination allocation / enqueue. ----

	if enqQ != nil {
		phys, _ := c.AllocPhys()
		val := result
		ctrl := in.Op == isa.OpEnqC
		u.enqQ = enqQ
		u.enqSeq = enqQ.Enq(val, ctrl, int(phys))
		// The value exists speculatively from now on; consumable either
		// immediately (SpeculativeDequeue) or at the producer's commit.
		enqQ.MarkSpecReady(u.enqSeq, c.now+1)
		c.stats.Enqueues++
	} else if writes {
		phys, _ := c.AllocPhys()
		u.dst = phys
		u.oldDst = t.rmap[dstReg]
		t.rmap[dstReg] = phys
		c.regReady[phys] = queue.NotReady
		t.regs[dstReg] = result
	}

	// ---- Phase 4: dispatch. ----

	t.pc = nextPC
	t.inflight++
	t.robUsed++
	if u.isLoad {
		t.lqUsed++
	}
	if u.isStore {
		t.sqUsed++
	}
	c.rob[t.id] = append(c.rob[t.id], u)
	c.iq = append(c.iq, u)
	if u.mispred {
		t.blockedOn = u
		t.redirectTrap = false
	}
	return 1, true
}

// trapDeqCV consumes the control value at the head of q and redirects t to
// its dequeue control handler, modeling the exception-style redirect of
// Sec. IV-A. Two synthetic µops deliver the CV and queue id into RHCV/RHQ.
func (c *Core) trapDeqCV(t *thread, q *queue.Queue) (int, bool) {
	if t.prog.DeqHandler < 0 {
		panic(fmt.Sprintf("%s: control value dequeued with no dequeue handler (queue %d)", t.prog.Name, q.ID))
	}
	if t.robUsed+2 > c.cfg.ROBPerThread || len(c.iq)+2 > c.cfg.IQSize {
		t.stall = StallROB
		return 0, false
	}
	if len(c.freelist) < 2 {
		t.stall = StallPRF
		return 0, false
	}
	e := q.Deq()
	c.stats.Dequeues++
	c.stats.CVTraps++
	if c.trace != nil {
		c.trace.Emit(telemetry.EvCVTrap, int16(c.id), int16(t.id), uint64(q.ID), e.Val)
	}

	// µop 1: RHCV <- CV value (waits for the entry to be committed).
	p1, _ := c.AllocPhys()
	u1 := c.allocUop(t.id, isa.OpAdd)
	u1.dst, u1.oldDst, u1.synth = p1, t.rmap[isa.RHCV], true
	u1.qsrc[0] = qref{q, e}
	u1.nqsrc = 1
	u1.deqQ = q
	u1.deqN = 1
	t.rmap[isa.RHCV] = p1
	c.regReady[p1] = queue.NotReady
	t.regs[isa.RHCV] = e.Val

	// µop 2: RHQ <- queue id.
	p2, _ := c.AllocPhys()
	u2 := c.allocUop(t.id, isa.OpAdd)
	u2.dst, u2.oldDst, u2.synth = p2, t.rmap[isa.RHQ], true
	t.rmap[isa.RHQ] = p2
	c.regReady[p2] = queue.NotReady
	t.regs[isa.RHQ] = uint64(q.ID)

	for _, u := range []*uop{u1, u2} {
		t.inflight++
		t.robUsed++
		c.rob[t.id] = append(c.rob[t.id], u)
		c.iq = append(c.iq, u)
	}
	t.pc = t.prog.DeqHandler
	t.blockedUntil = c.now + c.cfg.TrapPenalty
	t.stall = StallRedirect
	t.redirectTrap = true
	return 2, true
}

// trapEnq redirects t to its enqueue control handler because the consumer of
// the queue it tried to enqueue into is blocked in skip_to_ctrl.
func (c *Core) trapEnq(t *thread) (int, bool) {
	if t.prog.EnqHandler < 0 {
		panic(fmt.Sprintf("%s: enqueue trap with no enqueue handler", t.prog.Name))
	}
	c.stats.EnqTraps++
	if c.trace != nil {
		c.trace.Emit(telemetry.EvEnqTrap, int16(c.id), int16(t.id), 0, 0)
	}
	t.pc = t.prog.EnqHandler
	t.blockedUntil = c.now + c.cfg.TrapPenalty
	t.stall = StallRedirect
	t.redirectTrap = true
	return 1, true
}

func (c *Core) nextSeq() uint64 {
	c.seqNo++
	return c.seqNo
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
