package core

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/isa"
	"pipette/internal/mem"
)

// newTestCore builds a 1-core system around fresh memory.
func newTestCore(t *testing.T) (*Core, *mem.Memory) {
	t.Helper()
	m := mem.New()
	h := cache.New(cache.DefaultConfig(), 1)
	return New(0, DefaultConfig(), m, h.Port(0)), m
}

// run cycles the core until done, failing the test on watchdog timeout.
func run(t *testing.T, c *Core, maxCycles uint64) {
	t.Helper()
	lastCommit, lastAt := uint64(0), uint64(0)
	for !c.Done() {
		c.Cycle()
		if c.stats.Committed != lastCommit {
			lastCommit, lastAt = c.stats.Committed, c.now
		}
		if c.now-lastAt > 100000 {
			t.Fatalf("deadlock: no commit since cycle %d (committed %d)", lastAt, lastCommit)
		}
		if c.now > maxCycles {
			t.Fatalf("timeout after %d cycles (committed %d)", c.now, c.stats.Committed)
		}
	}
}

func TestSerialALULoop(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	a := isa.NewAssembler("sum")
	a.MovI(1, 0)   // sum
	a.MovI(2, 100) // counter
	a.Label("loop")
	a.Add(1, 1, 2)
	a.SubI(2, 2, 1)
	a.BneI(2, 0, "loop")
	a.MovU(3, res)
	a.St8(3, 0, 1)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	if got := m.Read64(res); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	if c.stats.Committed < 300 {
		t.Fatalf("committed = %d", c.stats.Committed)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c, m := newTestCore(t)
	src := m.AllocWords(8)
	dst := m.AllocWords(8)
	for i := uint64(0); i < 8; i++ {
		m.Write64(src+i*8, i*i)
	}
	a := isa.NewAssembler("copy")
	a.MovU(1, src)
	a.MovU(2, dst)
	a.MovI(3, 8)
	a.Label("loop")
	a.Ld8(4, 1, 0)
	a.St8(2, 0, 4)
	a.AddI(1, 1, 8)
	a.AddI(2, 2, 8)
	a.SubI(3, 3, 1)
	a.BneI(3, 0, "loop")
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	for i := uint64(0); i < 8; i++ {
		if got := m.Read64(dst + i*8); got != i*i {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i*i)
		}
	}
}

// Two threads exchange values over a queue: thread 0 enqueues 1..N, thread 1
// sums dequeues and stores the total.
func TestProducerConsumerQueue(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	const N = 500

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(10, 1) // enqueue i
	p.BneI(1, N, "loop")
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 0, isa.QueueOut)
	q.MovI(1, 0) // sum
	q.MovI(2, 0) // count
	q.Label("loop")
	q.Add(1, 1, 10) // dequeue and add
	q.AddI(2, 2, 1)
	q.BneI(2, N, "loop")
	q.MovU(3, res)
	q.St8(3, 0, 1)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 1000000)
	want := uint64(N * (N + 1) / 2)
	if got := m.Read64(res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if c.stats.Enqueues < N || c.stats.Dequeues < N {
		t.Fatalf("queue traffic: enq=%d deq=%d", c.stats.Enqueues, c.stats.Dequeues)
	}
}

// A control value redirects the consumer to its dequeue handler, which
// receives the CV in RHCV and the queue id in RHQ.
func TestControlValueTrap(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(2)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 3, isa.QueueIn)
	p.MovI(1, 7)
	p.Mov(10, 1)   // data 7
	p.EnqCI(3, 99) // control value 99
	p.MovI(1, 5)
	p.Mov(10, 1) // data 5 after CV
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 3, isa.QueueOut)
	q.OnDeqCV("handler")
	q.MovU(5, res)
	q.MovI(1, 0)
	q.Label("loop")
	q.Add(1, 1, 10) // dequeues: first 7, then traps on CV, then 5
	q.Jmp("loop")
	q.Label("handler")
	// Store CV and queue id, then consume remaining data value and halt.
	q.St8(5, 0, isa.RHCV)
	q.St8(5, 8, isa.RHQ)
	q.Add(1, 1, 10) // dequeue the 5
	q.MovU(6, res+16)
	q.St8(6, 0, 1)
	q.Halt()

	// res+16 holds final sum.
	_ = m.AllocWords(1)

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 1000000)
	if got := m.Read64(res); got != 99 {
		t.Fatalf("RHCV = %d, want 99", got)
	}
	if got := m.Read64(res + 8); got != 3 {
		t.Fatalf("RHQ = %d, want 3", got)
	}
	if got := m.Read64(res + 16); got != 12 {
		t.Fatalf("sum = %d, want 12", got)
	}
	if c.stats.CVTraps != 1 {
		t.Fatalf("CV traps = %d, want 1", c.stats.CVTraps)
	}
}

// skip_to_ctrl discards buffered data; when no CV is present, the producer's
// next enqueue traps to its enqueue handler, which enqueues a CV.
func TestSkipToCtrlWithEnqHandler(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)

	// Producer enqueues data forever until its enqueue handler fires, then
	// enqueues CV 42 and halts.
	p := isa.NewAssembler("prod")
	p.MapQ(10, 1, isa.QueueIn)
	p.OnEnqCV("eh")
	p.MovI(1, 1)
	p.Label("loop")
	p.Mov(10, 1)
	p.Jmp("loop")
	p.Label("eh")
	p.EnqCI(1, 42)
	p.Halt()

	// Consumer dequeues 3 values, then skips to the next CV.
	q := isa.NewAssembler("cons")
	q.MapQ(10, 1, isa.QueueOut)
	q.MovI(1, 0)
	q.Add(1, 1, 10)
	q.Add(1, 1, 10)
	q.Add(1, 1, 10)
	q.SkipC(2, 1) // r2 <- 42
	q.MovU(3, res)
	q.St8(3, 0, 2)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 1000000)
	if got := m.Read64(res); got != 42 {
		t.Fatalf("skipc result = %d, want 42", got)
	}
	if c.stats.EnqTraps != 1 {
		t.Fatalf("enqueue traps = %d, want 1", c.stats.EnqTraps)
	}
	if c.stats.SkipOps != 1 {
		t.Fatalf("skip ops = %d", c.stats.SkipOps)
	}
}

// Peek reads the head without consuming it.
func TestPeek(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(2)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 77)
	p.Mov(10, 1)
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 0, isa.QueueOut)
	q.Peek(1, 0) // 77, not consumed
	q.Mov(2, 10) // dequeue 77
	q.MovU(3, res)
	q.St8(3, 0, 1)
	q.St8(3, 8, 2)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 1000000)
	if m.Read64(res) != 77 || m.Read64(res+8) != 77 {
		t.Fatalf("peek/deq = %d/%d", m.Read64(res), m.Read64(res+8))
	}
}

// Queue backpressure: a fast producer into a slow consumer must block on the
// full queue rather than overrun it; all values still arrive in order.
func TestQueueBackpressure(t *testing.T) {
	c, m := newTestCore(t)
	c.SetQueueCaps(map[uint8]int{0: 4})
	res := m.AllocWords(1)
	const N = 200

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(10, 1)
	p.BneI(1, N, "loop")
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 0, isa.QueueOut)
	buf := m.AllocWords(1)
	q.MovI(1, 0)
	q.MovI(4, 0)
	q.MovU(5, buf)
	q.Label("loop")
	q.Mov(2, 10)
	// Slow the consumer: dependent load chain per element.
	q.St8(5, 0, 2)
	q.Ld8(6, 5, 0)
	q.Add(1, 1, 6)
	q.AddI(4, 4, 1)
	q.BneI(4, N, "loop")
	q.MovU(3, res)
	q.St8(3, 0, 1)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 2000000)
	want := uint64(N * (N + 1) / 2)
	if got := m.Read64(res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// Atomics: four data-parallel threads increment a shared counter.
func TestAtomicFetchAdd(t *testing.T) {
	c, m := newTestCore(t)
	ctr := m.AllocWords(1)
	const perThread = 50
	for tid := 0; tid < 4; tid++ {
		a := isa.NewAssembler("adder")
		a.MovU(1, ctr)
		a.MovI(2, perThread)
		a.MovI(4, 1)
		a.Label("loop")
		a.FetchAdd(3, 1, 4)
		a.SubI(2, 2, 1)
		a.BneI(2, 0, "loop")
		a.Halt()
		c.Load(tid, a.MustLink())
	}
	run(t, c, 1000000)
	if got := m.Read64(ctr); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

// CAS loop: threads contend to set a flag exactly once each.
func TestCasLoop(t *testing.T) {
	c, m := newTestCore(t)
	cell := m.AllocWords(1)
	res := m.AllocWords(1)
	a := isa.NewAssembler("cas")
	a.MovU(1, cell)
	a.MovI(2, 0)   // expected
	a.MovI(3, 123) // new value
	a.Cas(4, 1, 2, 3)
	a.MovU(5, res)
	a.St8(5, 0, 4) // old value observed (0)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	if m.Read64(cell) != 123 {
		t.Fatalf("cell = %d", m.Read64(cell))
	}
	if m.Read64(res) != 0 {
		t.Fatalf("old = %d", m.Read64(res))
	}
}

// Branch mispredictions on data-dependent branches must show up in stats.
func TestBranchMispredictCounted(t *testing.T) {
	c, m := newTestCore(t)
	// Pseudo-random branch pattern via xorshift.
	arr := m.AllocWords(1)
	a := isa.NewAssembler("br")
	a.MovI(1, 88172645463325252) // xorshift state
	a.MovI(2, 400)               // iterations
	a.MovI(3, 0)                 // taken count
	a.MovU(6, arr)
	a.Label("loop")
	a.ShlI(4, 1, 13)
	a.Xor(1, 1, 4)
	a.ShrI(4, 1, 7)
	a.Xor(1, 1, 4)
	a.ShlI(4, 1, 17)
	a.Xor(1, 1, 4)
	a.AndI(5, 1, 1)
	a.BeqI(5, 0, "skip")
	a.AddI(3, 3, 1)
	a.Label("skip")
	a.SubI(2, 2, 1)
	a.BneI(2, 0, "loop")
	a.St8(6, 0, 3)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 1000000)
	if c.stats.Mispredicts < 50 {
		t.Fatalf("mispredicts = %d, want many on random branches", c.stats.Mispredicts)
	}
	if c.stats.Branches == 0 || c.stats.Mispredicts >= c.stats.Branches {
		t.Fatalf("branches=%d mispredicts=%d", c.stats.Branches, c.stats.Mispredicts)
	}
}

// The CPI stack must account for every cycle.
func TestCPIStackComplete(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	a := isa.NewAssembler("t")
	a.MovI(1, 1000)
	a.Label("loop")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "loop")
	a.MovU(2, res)
	a.St8(2, 0, 1)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	s := c.Stats()
	if s.CPI.Total() > s.Cycles {
		t.Fatalf("CPI stack %d > cycles %d", s.CPI.Total(), s.Cycles)
	}
	if s.CPI.Issue == 0 {
		t.Fatal("no issue cycles recorded")
	}
}

// SMT: two independent memory-bound threads on one core should beat one
// thread running both workloads back to back (latency hiding).
func TestSMTHidesLatency(t *testing.T) {
	mkChase := func(m *mem.Memory, n int, seed uint64) *isa.Program {
		// Pointer chase over a shuffled ring.
		ring := m.AllocWords(uint64(n))
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		s := seed
		for i := n - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < n; i++ {
			m.Write64(ring+uint64(perm[i])*8, ring+uint64(perm[(i+1)%n])*8)
		}
		a := isa.NewAssembler("chase")
		a.MovU(1, ring+uint64(perm[0])*8)
		a.MovI(2, int64(n))
		a.Label("loop")
		a.Ld8(1, 1, 0)
		a.SubI(2, 2, 1)
		a.BneI(2, 0, "loop")
		a.Halt()
		return a.MustLink()
	}

	const n = 3000
	// One thread.
	m1 := mem.New()
	h1 := cache.New(cache.DefaultConfig(), 1)
	c1 := New(0, DefaultConfig(), m1, h1.Port(0))
	c1.Load(0, mkChase(m1, n, 1))
	run(t, c1, 50_000_000)
	oneThread := c1.Stats().Cycles

	// Four threads, four chases.
	m4 := mem.New()
	h4 := cache.New(cache.DefaultConfig(), 1)
	c4 := New(0, DefaultConfig(), m4, h4.Port(0))
	for tid := 0; tid < 4; tid++ {
		c4.Load(tid, mkChase(m4, n, uint64(tid+1)))
	}
	run(t, c4, 50_000_000)
	fourThreads := c4.Stats().Cycles

	// 4x the work should take well under 4x the time.
	if fourThreads >= 3*oneThread {
		t.Fatalf("SMT not hiding latency: 1T=%d cycles, 4T(4x work)=%d", oneThread, fourThreads)
	}
}

// PRF pressure: shrinking the PRF must not deadlock, only slow things down.
func TestSmallPRF(t *testing.T) {
	m := mem.New()
	h := cache.New(cache.DefaultConfig(), 1)
	cfg := DefaultConfig()
	cfg.PhysRegs = 48
	cfg.DefaultQueueCap = 4
	c := New(0, cfg, m, h.Port(0))
	res := m.AllocWords(1)
	a := isa.NewAssembler("t")
	a.MovI(1, 500)
	a.MovI(2, 0)
	a.Label("loop")
	a.Add(2, 2, 1)
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "loop")
	a.MovU(3, res)
	a.St8(3, 0, 2)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 10_000_000)
	if got := m.Read64(res); got != 500*501/2 {
		t.Fatalf("sum = %d", got)
	}
}

// The speculative-dequeue variant (Sec. IV-A) must produce identical results
// and, per the paper, roughly similar performance.
func TestSpeculativeDequeueVariant(t *testing.T) {
	build := func(spec bool) (*Core, *mem.Memory, uint64) {
		m := mem.New()
		h := cache.New(cache.DefaultConfig(), 1)
		cfg := DefaultConfig()
		cfg.SpeculativeDequeue = spec
		c := New(0, cfg, m, h.Port(0))
		res := m.AllocWords(1)
		const N = 400

		p := isa.NewAssembler("prod")
		p.MapQ(10, 0, isa.QueueIn)
		p.MovI(1, 0)
		p.Label("loop")
		p.AddI(1, 1, 1)
		p.Mov(10, 1)
		p.BneI(1, N, "loop")
		p.Halt()

		q := isa.NewAssembler("cons")
		q.MapQ(10, 0, isa.QueueOut)
		q.MovI(1, 0)
		q.MovI(2, 0)
		q.Label("loop")
		q.Add(1, 1, 10)
		q.AddI(2, 2, 1)
		q.BneI(2, N, "loop")
		q.MovU(3, res)
		q.St8(3, 0, 1)
		q.Halt()

		c.Load(0, p.MustLink())
		c.Load(1, q.MustLink())
		return c, m, res
	}
	c1, m1, r1 := build(false)
	run(t, c1, 1_000_000)
	c2, m2, r2 := build(true)
	run(t, c2, 1_000_000)
	if m1.Read64(r1) != m2.Read64(r2) {
		t.Fatalf("results differ: %d vs %d", m1.Read64(r1), m2.Read64(r2))
	}
	// Speculative consumption can only help or match.
	if c2.Stats().Cycles > c1.Stats().Cycles+c1.Stats().Cycles/10 {
		t.Fatalf("speculative variant much slower: %d vs %d", c2.Stats().Cycles, c1.Stats().Cycles)
	}
	t.Logf("committed-only=%d cycles, speculative=%d cycles", c1.Stats().Cycles, c2.Stats().Cycles)
}

// All SMT priority policies must preserve correctness.
func TestPriorityPolicies(t *testing.T) {
	for _, pol := range []PriorityPolicy{PriorityICOUNT, PriorityProducers, PriorityRoundRobin} {
		m := mem.New()
		h := cache.New(cache.DefaultConfig(), 1)
		cfg := DefaultConfig()
		cfg.Priority = pol
		c := New(0, cfg, m, h.Port(0))
		ctr := m.AllocWords(1)
		for tid := 0; tid < 4; tid++ {
			a := isa.NewAssembler("adder")
			a.MovU(1, ctr)
			a.MovI(2, 30)
			a.MovI(4, 1)
			a.Label("loop")
			a.FetchAdd(3, 1, 4)
			a.SubI(2, 2, 1)
			a.BneI(2, 0, "loop")
			a.Halt()
			c.Load(tid, a.MustLink())
		}
		run(t, c, 1_000_000)
		if got := m.Read64(ctr); got != 120 {
			t.Fatalf("policy %d: counter = %d", pol, got)
		}
	}
}

// The commit trace hook must see every architectural instruction, in
// per-thread program order, and no synthetic µops.
func TestCommitTrace(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)
	a := isa.NewAssembler("traced")
	a.MovI(1, 3)
	a.Label("loop")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "loop")
	a.MovU(2, res)
	a.St8(2, 0, 1)
	a.Halt()
	c.Load(0, a.MustLink())
	var pcs []int
	var lastCycle uint64
	c.TraceFn = func(cycle uint64, thread, pc int, text string) {
		if cycle < lastCycle {
			t.Fatalf("trace cycles not monotone: %d after %d", cycle, lastCycle)
		}
		lastCycle = cycle
		if thread != 0 {
			t.Fatalf("unexpected thread %d", thread)
		}
		if text == "" {
			t.Fatal("empty disassembly")
		}
		pcs = append(pcs, pc)
	}
	run(t, c, 100000)
	want := []int{0, 1, 2, 1, 2, 1, 2, 3, 4, 5}
	if len(pcs) != len(want) {
		t.Fatalf("traced %d instructions, want %d: %v", len(pcs), len(want), pcs)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("trace[%d] = pc %d, want %d (%v)", i, pcs[i], want[i], pcs)
		}
	}
}
