package core

import (
	"testing"

	"pipette/internal/isa"
)

// Floating point flows through rename, issue and commit with the right
// latencies and results.
func TestFloatPipeline(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(2)
	a := isa.NewAssembler("fp")
	a.MovU(1, isa.F2U(1.5))
	a.MovU(2, isa.F2U(2.0))
	a.FMul(3, 1, 2) // 3.0
	a.FAdd(3, 3, 1) // 4.5
	a.FDiv(4, 3, 2) // 2.25
	a.FSub(4, 4, 1) // 0.75
	a.MovU(5, res)
	a.St8(5, 0, 3)
	a.St8(5, 8, 4)
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	if got := isa.U2F(m.Read64(res)); got != 4.5 {
		t.Fatalf("fp chain = %v", got)
	}
	if got := isa.U2F(m.Read64(res + 8)); got != 0.75 {
		t.Fatalf("fp chain 2 = %v", got)
	}
}

// Jump tables through Jr: computed dispatch must follow the right block.
func TestJumpTable(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(4)
	a := isa.NewAssembler("jt")
	a.MovU(9, res)
	a.MovI(1, 0) // selector
	a.Label("loop")
	a.LabelAddr(2, "table")
	a.ShlI(3, 1, 1) // 2 instructions per block
	a.Add(2, 2, 3)
	a.Jr(2)
	a.Label("table")
	for i := 0; i < 4; i++ {
		a.MovI(4, int64(100+i))
		a.Jmp("store")
	}
	a.Label("store")
	a.ShlI(5, 1, 3)
	a.Add(5, 5, 9)
	a.St8(5, 0, 4)
	a.AddI(1, 1, 1)
	a.BneI(1, 4, "loop")
	a.Halt()
	c.Load(0, a.MustLink())
	run(t, c, 100000)
	for i := uint64(0); i < 4; i++ {
		if got := m.Read64(res + i*8); got != 100+i {
			t.Fatalf("table[%d] = %d", i, got)
		}
	}
}

// QPoll returns the speculative occupancy without blocking or consuming.
func TestQPoll(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(2)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 2, isa.QueueIn)
	p.MovI(1, 5)
	p.Mov(10, 1)
	p.Mov(10, 1)
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 2, isa.QueueOut)
	q.MovU(3, res)
	// Wait for both values to arrive, then poll.
	q.Label("wait")
	q.QPoll(1, 2)
	q.BneI(1, 2, "wait")
	q.St8(3, 0, 1) // occupancy 2
	q.Mov(2, 10)   // consume one
	q.QPoll(1, 2)
	q.St8(3, 8, 1) // occupancy 1
	q.Mov(2, 10)   // drain
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 1000000)
	if m.Read64(res) != 2 || m.Read64(res+8) != 1 {
		t.Fatalf("qpoll = %d, %d", m.Read64(res), m.Read64(res+8))
	}
}

// A thread hammering loads must be throttled by its load queue, not
// deadlock, and another thread's ALU work must keep committing.
func TestLSQPressure(t *testing.T) {
	c, m := newTestCore(t)
	arr := m.AllocWords(4096)
	res := m.AllocWords(1)

	lo := isa.NewAssembler("loads")
	lo.MovU(1, arr)
	lo.MovI(2, 2048)
	lo.Label("loop")
	lo.Ld8(3, 1, 0)
	lo.Ld8(4, 1, 8)
	lo.Ld8(5, 1, 16)
	lo.AddI(1, 1, 24)
	lo.SubI(2, 2, 3)
	lo.Bge(2, 0, "loop")
	lo.Halt()

	alu := isa.NewAssembler("alu")
	alu.MovI(1, 3000)
	alu.MovI(2, 0)
	alu.Label("loop")
	alu.Add(2, 2, 1)
	alu.SubI(1, 1, 1)
	alu.BneI(1, 0, "loop")
	alu.MovU(3, res)
	alu.St8(3, 0, 2)
	alu.Halt()

	c.Load(0, lo.MustLink())
	c.Load(1, alu.MustLink())
	run(t, c, 5_000_000)
	if got := m.Read64(res); got != 3000*3001/2 {
		t.Fatalf("alu sum = %d", got)
	}
}

// Peek on a control value traps like a dequeue would.
func TestPeekTrapsOnCV(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.EnqCI(0, 31)
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 0, isa.QueueOut)
	q.OnDeqCV("h")
	q.Peek(1, 0) // CV at head: trap
	q.Halt()
	q.Label("h")
	q.MovU(2, res)
	q.St8(2, 0, isa.RHCV)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 100000)
	if got := m.Read64(res); got != 31 {
		t.Fatalf("peek trap CV = %d", got)
	}
	if c.stats.CVTraps != 1 {
		t.Fatalf("traps = %d", c.stats.CVTraps)
	}
}

// Narrow loads and stores (1/2/4 bytes) zero-extend and write correctly.
func TestNarrowMemoryOps(t *testing.T) {
	c, m := newTestCore(t)
	buf := m.AllocWords(2)
	m.Write64(buf, 0x1122334455667788)
	res := m.AllocWords(3)
	b := isa.NewAssembler("narrow")
	b.MovU(1, buf)
	b.MovU(2, res)
	b.Ld4(3, 1, 0) // 0x55667788
	b.St8(2, 0, 3)
	b.Ld4(4, 1, 4) // 0x11223344
	b.St8(2, 8, 4)
	b.MovI(5, 0xAB)
	b.St4(1, 8, 5)
	b.Ld8(6, 1, 8)
	b.St8(2, 16, 6)
	b.Halt()
	c.Load(0, b.MustLink())
	run(t, c, 100000)
	if m.Read64(res) != 0x55667788 {
		t.Fatalf("ld4 low = %#x", m.Read64(res))
	}
	if m.Read64(res+8) != 0x11223344 {
		t.Fatalf("ld4 high = %#x", m.Read64(res+8))
	}
	if m.Read64(res+16) != 0xAB {
		t.Fatalf("st4 = %#x", m.Read64(res+16))
	}
}

// ROB partitioning: a thread stalled on a full queue must not consume the
// whole core — an independent thread finishes promptly.
func TestBlockedThreadDoesNotStarveOthers(t *testing.T) {
	c, m := newTestCore(t)
	res := m.AllocWords(1)

	// Blocked forever on an empty queue (no producer). The watchdog in
	// run() only fires on *no* commits, so the worker's commits keep the
	// run alive until it halts; then we stop manually.
	blocked := isa.NewAssembler("blocked")
	blocked.MapQ(10, 0, isa.QueueOut)
	blocked.Mov(1, 10)
	blocked.Halt()

	work := isa.NewAssembler("work")
	work.MovI(1, 1000)
	work.MovI(2, 0)
	work.Label("loop")
	work.Add(2, 2, 1)
	work.SubI(1, 1, 1)
	work.BneI(1, 0, "loop")
	work.MovU(3, res)
	work.St8(3, 0, 2)
	work.Halt()

	c.Load(0, blocked.MustLink())
	c.Load(1, work.MustLink())
	for i := 0; i < 200000 && m.Read64(res) == 0; i++ {
		c.Cycle()
	}
	if got := m.Read64(res); got != 1000*1001/2 {
		t.Fatalf("worker did not finish alongside a blocked thread: %d", got)
	}
}

// Queue occupancy statistics: a decoupled producer/consumer pair must show
// nonzero mean mapped registers, bounded by the configured capacities.
func TestQueueOccupancyStats(t *testing.T) {
	c, m := newTestCore(t)
	c.SetQueueCaps(map[uint8]int{0: 8})
	res := m.AllocWords(1)
	const N = 300

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(10, 1)
	p.BneI(1, N, "loop")
	p.Halt()

	q := isa.NewAssembler("cons")
	q.MapQ(10, 0, isa.QueueOut)
	buf := m.AllocWords(1)
	q.MovI(1, 0)
	q.MovI(2, 0)
	q.MovU(5, buf)
	q.Label("loop")
	q.Mov(3, 10)
	q.St8(5, 0, 3) // slow consumer: store+load per element
	q.Ld8(3, 5, 0)
	q.Add(1, 1, 3)
	q.AddI(2, 2, 1)
	q.BneI(2, N, "loop")
	q.MovU(3, res)
	q.St8(3, 0, 1)
	q.Halt()

	c.Load(0, p.MustLink())
	c.Load(1, q.MustLink())
	run(t, c, 2_000_000)
	s := c.Stats()
	if s.MeanMappedRegs() <= 0 {
		t.Fatal("no queue occupancy recorded")
	}
	if s.QueueOccupancyMax > 8 {
		t.Fatalf("occupancy %d exceeded capacity 8", s.QueueOccupancyMax)
	}
	t.Logf("mean mapped regs %.2f, peak %d", s.MeanMappedRegs(), s.QueueOccupancyMax)
}
