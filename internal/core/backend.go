package core

import (
	"pipette/internal/isa"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// resolved reports whether the µop has finished executing by cycle now.
func (u *uop) resolved(now uint64) bool {
	return u.state == uopIssued && u.doneAt <= now
}

// ready reports whether all register and queue-entry sources are available.
func (c *Core) ready(u *uop, now uint64) bool {
	for i := 0; i < u.nsrc; i++ {
		if r := u.src[i]; r >= 0 && c.regReady[r] > now {
			return false
		}
	}
	for i := 0; i < u.nqsrc; i++ {
		at := u.qsrc[i].e.ReadyAt
		if c.cfg.SpeculativeDequeue {
			at = u.qsrc[i].e.SpecAt
		}
		if at > now {
			return false
		}
	}
	return true
}

// issue wakes up and selects up to IssueWidth ready µops, oldest first
// (c.iq is age-ordered by construction), respecting load/store ports.
func (c *Core) issue() int {
	issued, loads, stores := 0, 0, 0
	w := 0
	for r := 0; r < len(c.iq); r++ {
		u := c.iq[r]
		keep := func() { c.iq[w] = u; w++ }
		if issued >= c.cfg.IssueWidth || !c.ready(u, c.now) {
			keep()
			continue
		}
		if u.isLoad && loads >= c.cfg.LoadPorts {
			keep()
			continue
		}
		if u.isStore && !u.isLoad && stores >= c.cfg.StorePorts {
			keep()
			continue
		}
		switch {
		case u.isLoad: // includes atomics
			loads++
			if c.deferred {
				// The access replays at the commit phase, which patches
				// doneAt and regReady; until then the NotReady placeholder
				// reads as "in the future", which is all this cycle's
				// remaining comparisons need.
				c.pend = append(c.pend, pendOp{kind: pendLoad, addr: u.addr, u: u})
				u.doneAt = queue.NotReady
			} else {
				done, lvl := c.port.Access(c.now, u.addr, u.isAtom)
				if u.isAtom {
					done += c.cfg.AtomicExtraLat
				}
				u.doneAt = done
				if c.prof != nil {
					u.profLvl = uint8(lvl) + 1
					c.prof.LoadIssued(int(lvl))
				}
			}
		case u.isStore:
			stores++
			u.doneAt = c.now + 1 // leaves the SQ; memory written back at commit
		default:
			// The decoded frontend stamps u.lat from the per-class table at
			// rename; raw-path and restored µops (lat 0) derive it here. The
			// two agree by construction (latab mirrors this switch).
			lat := u.lat
			if lat == 0 {
				switch u.op.Class() {
				case isa.ClassMul:
					lat = c.cfg.IntMulLat
				case isa.ClassDiv:
					lat = c.cfg.IntDivLat
				case isa.ClassFPAdd, isa.ClassFPMul:
					lat = c.cfg.FPLat
				case isa.ClassFPDiv:
					lat = c.cfg.FPDivLat
				default:
					lat = 1
				}
			}
			u.doneAt = c.now + lat
		}
		u.state = uopIssued
		if u.dst >= 0 {
			c.regReady[u.dst] = u.doneAt
		}
		issued++
		c.stats.Uops++
		c.stats.RegReads += uint64(u.nsrc)
		if u.dst >= 0 {
			c.stats.RegWrites++
		}
	}
	c.iq = c.iq[:w]
	return issued
}

// commit retires µops in order per thread, up to CommitWidth in total,
// starting from a rotating thread to share commit bandwidth fairly.
func (c *Core) commit() {
	budget := c.cfg.CommitWidth
	n := len(c.threads)
	start := int(c.now) % n
	for k := 0; k < n && budget > 0; k++ {
		tid := (start + k) % n
		t := c.threads[tid]
		rob := c.rob[tid]
		ret := 0 // retired this cycle; compacted off the front below
		for budget > 0 && ret < len(rob) {
			u := rob[ret]
			if !u.resolved(c.now) {
				break
			}
			c.busyAt = c.now // retiring mutates state; blocks fast-forward this cycle
			if u.isStore && !u.isAtom {
				// Write-back; commit does not wait for it (result unused).
				if c.deferred {
					c.pend = append(c.pend, pendOp{kind: pendStore, addr: u.addr})
				} else {
					c.port.Access(c.now, u.addr, true)
				}
			}
			if u.oldDst >= 0 {
				c.FreePhys(u.oldDst)
			}
			if u.enqQ != nil {
				if c.cfg.SpeculativeDequeue {
					u.enqQ.MarkReadyIfLive(u.enqSeq, c.now+1)
				} else {
					u.enqQ.MarkReady(u.enqSeq, c.now+1)
				}
			}
			if u.deqQ != nil {
				for i := 0; i < u.deqN; i++ {
					c.FreePhys(int32(u.deqQ.CommitDeq()))
				}
			}
			if u.isHalt {
				t.done = true
			}
			if !u.synth {
				c.stats.Committed++
				c.lastCommitAt = c.now
				c.stats.PerThread[tid]++
				if c.TraceFn != nil && u.inst != nil {
					c.TraceFn(c.now, tid, u.pc, u.inst.String())
				}
			}
			t.inflight--
			t.robUsed--
			if u.isLoad {
				t.lqUsed--
			}
			if u.isStore {
				t.sqUsed--
			}
			if u.profLvl != 0 {
				if c.prof != nil {
					c.prof.LoadRetired(int(u.profLvl) - 1)
				}
				u.profLvl = 0
			}
			ret++
			budget--
			// Recycle the µop. A mispredicted branch may still be the
			// thread's frontend block: resolve it here first.
			if t.blockedOn == u {
				t.blockedUntil = u.doneAt + c.cfg.MispredictPenalty
				t.blockedOn = nil
				t.redirectTrap = false
				if c.trace != nil {
					c.trace.Emit(telemetry.EvRedirect, int16(c.id), int16(tid), 0, t.blockedUntil)
				}
			}
			c.uopPool = append(c.uopPool, u)
		}
		if ret > 0 {
			// Compact in place instead of re-slicing off the front: rob[1:]
			// loses capacity on every retire and forces a steady trickle of
			// reallocations in rename's append; the copy moves at most
			// ROBPerThread pointers and keeps the hot path allocation-free.
			c.rob[tid] = rob[:copy(rob, rob[ret:])]
		}
	}
}

// allocUop takes a µop from the recycling pool (or allocates), reset to the
// default waiting state with no destinations.
func (c *Core) allocUop(tid int, op isa.Op) *uop {
	var u *uop
	if n := len(c.uopPool); n > 0 {
		u = c.uopPool[n-1]
		c.uopPool = c.uopPool[:n-1]
		*u = uop{}
	} else {
		u = &uop{}
	}
	u.thread = tid
	u.op = op
	u.seqNo = c.nextSeq()
	u.dst, u.oldDst = -1, -1
	return u
}
