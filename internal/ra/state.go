package ra

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"pipette/internal/core"
)

var _ core.FastCheckpointableUnit = (*RA)(nil)

// unitState is the RA's dynamic state, serialized opaquely through
// core.CheckpointableUnit. Configuration (mode, queues, base address) is
// structural: the workload builder re-attaches an identically configured RA
// before restore.
type unitState struct {
	Outstanding []uint64
	HavePending bool
	PendingVal  uint64
	ScanActive  bool
	ScanCur     uint64
	ScanEnd     uint64
	Stats       Stats
}

// SaveUnitState implements core.CheckpointableUnit.
func (r *RA) SaveUnitState() ([]byte, error) {
	return json.Marshal(unitState{
		Outstanding: r.outstanding,
		HavePending: r.havePending,
		PendingVal:  r.pendingVal,
		ScanActive:  r.scanActive,
		ScanCur:     r.scanCur,
		ScanEnd:     r.scanEnd,
		Stats:       r.Stats,
	})
}

// binMagic starts the binary snapshot form. It can never begin a JSON
// document, so RestoreUnitState distinguishes the two encodings by the
// first byte.
const binMagic = 0xFA

// AppendUnitState implements core.FastCheckpointableUnit: an
// allocation-light binary encoding used by per-epoch shard snapshots in
// the speculative kernel (the JSON form stays the durable checkpoint
// encoding, so committed snapshot hashes are unaffected).
func (r *RA) AppendUnitState(buf []byte) ([]byte, error) {
	buf = append(buf, binMagic)
	var u64 [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	putBool := func(v bool) {
		if v {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	put(uint64(len(r.outstanding)))
	for _, t := range r.outstanding {
		put(t)
	}
	putBool(r.havePending)
	put(r.pendingVal)
	putBool(r.scanActive)
	put(r.scanCur)
	put(r.scanEnd)
	put(r.Stats.Loads)
	put(r.Stats.CVForwarded)
	put(r.Stats.InputsTaken)
	return buf, nil
}

func (r *RA) restoreBinary(b []byte) error {
	b = b[1:] // magic
	get := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("ra: truncated binary snapshot")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	getBool := func() (bool, error) {
		if len(b) < 1 {
			return false, fmt.Errorf("ra: truncated binary snapshot")
		}
		v := b[0] != 0
		b = b[1:]
		return v, nil
	}
	n, err := get()
	if err != nil {
		return err
	}
	if uint64(len(b)) < n*8 {
		return fmt.Errorf("ra: truncated binary snapshot")
	}
	r.outstanding = r.outstanding[:0]
	r.minOut = ^uint64(0)
	for i := uint64(0); i < n; i++ {
		t, _ := get()
		r.outstanding = append(r.outstanding, t)
		if t < r.minOut {
			r.minOut = t
		}
	}
	if r.havePending, err = getBool(); err != nil {
		return err
	}
	if r.pendingVal, err = get(); err != nil {
		return err
	}
	if r.scanActive, err = getBool(); err != nil {
		return err
	}
	if r.scanCur, err = get(); err != nil {
		return err
	}
	if r.scanEnd, err = get(); err != nil {
		return err
	}
	if r.Stats.Loads, err = get(); err != nil {
		return err
	}
	if r.Stats.CVForwarded, err = get(); err != nil {
		return err
	}
	if r.Stats.InputsTaken, err = get(); err != nil {
		return err
	}
	return nil
}

// RestoreUnitState implements core.CheckpointableUnit. It accepts both the
// JSON checkpoint form and the binary epoch-snapshot form.
func (r *RA) RestoreUnitState(b []byte) error {
	if len(b) > 0 && b[0] == binMagic {
		return r.restoreBinary(b)
	}
	var st unitState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	r.outstanding = append(r.outstanding[:0], st.Outstanding...)
	r.minOut = ^uint64(0)
	for _, t := range r.outstanding {
		if t < r.minOut {
			r.minOut = t
		}
	}
	r.havePending = st.HavePending
	r.pendingVal = st.PendingVal
	r.scanActive = st.ScanActive
	r.scanCur = st.ScanCur
	r.scanEnd = st.ScanEnd
	r.Stats = st.Stats
	return nil
}
