package ra

import "encoding/json"

// unitState is the RA's dynamic state, serialized opaquely through
// core.CheckpointableUnit. Configuration (mode, queues, base address) is
// structural: the workload builder re-attaches an identically configured RA
// before restore.
type unitState struct {
	Outstanding []uint64
	HavePending bool
	PendingVal  uint64
	ScanActive  bool
	ScanCur     uint64
	ScanEnd     uint64
	Stats       Stats
}

// SaveUnitState implements core.CheckpointableUnit.
func (r *RA) SaveUnitState() ([]byte, error) {
	return json.Marshal(unitState{
		Outstanding: r.outstanding,
		HavePending: r.havePending,
		PendingVal:  r.pendingVal,
		ScanActive:  r.scanActive,
		ScanCur:     r.scanCur,
		ScanEnd:     r.scanEnd,
		Stats:       r.Stats,
	})
}

// RestoreUnitState implements core.CheckpointableUnit.
func (r *RA) RestoreUnitState(b []byte) error {
	var st unitState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	r.outstanding = append(r.outstanding[:0], st.Outstanding...)
	r.minOut = ^uint64(0)
	for _, t := range r.outstanding {
		if t < r.minOut {
			r.minOut = t
		}
	}
	r.havePending = st.HavePending
	r.pendingVal = st.PendingVal
	r.scanActive = st.ScanActive
	r.scanCur = st.ScanCur
	r.scanEnd = st.ScanEnd
	r.Stats = st.Stats
	return nil
}
