package ra

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/mem"
	"pipette/internal/queue"
)

// newHost builds a bare core whose queues the RA can be driven against
// directly (no threads).
func newHost(t *testing.T) (*core.Core, *mem.Memory) {
	t.Helper()
	m := mem.New()
	h := cache.New(cache.DefaultConfig(), 1)
	return core.New(0, core.DefaultConfig(), m, h.Port(0)), m
}

// feed enqueues a committed value into queue q of core c.
func feed(t *testing.T, c *core.Core, q *queue.Queue, val uint64, ctrl bool) {
	t.Helper()
	phys, ok := c.AllocPhys()
	if !ok {
		t.Fatal("no phys reg")
	}
	seq := q.Enq(val, ctrl, int(phys))
	q.MarkReady(seq, 0)
}

func drain(c *core.Core, q *queue.Queue, now uint64) []queue.Entry {
	var out []queue.Entry
	for q.CanDeq() && q.Head().ReadyAt <= now {
		e := *q.Deq()
		c.FreePhys(int32(q.CommitDeq()))
		out = append(out, e)
	}
	return out
}

func TestIndirectUnit(t *testing.T) {
	c, m := newHost(t)
	table := m.AllocWords(8)
	for i := uint64(0); i < 8; i++ {
		m.Write64(table+i*8, 100+i)
	}
	r := New(c, Config{Mode: Indirect, In: 0, Out: 1, Base: table, ElemBytes: 8})
	in, out := c.QRM().Q(0), c.QRM().Q(1)
	feed(t, c, in, 3, false)
	feed(t, c, in, 5, false)
	for now := uint64(1); now < 2000; now++ {
		r.Tick(now)
	}
	got := drain(c, out, 3000)
	if len(got) != 2 || got[0].Val != 103 || got[1].Val != 105 {
		t.Fatalf("got %+v", got)
	}
	if !r.Drained() {
		t.Fatal("RA should be drained")
	}
}

func TestScanEmptyRange(t *testing.T) {
	c, m := newHost(t)
	table := m.AllocWords(8)
	r := New(c, Config{Mode: Scan, In: 0, Out: 1, Base: table, ElemBytes: 8})
	in, out := c.QRM().Q(0), c.QRM().Q(1)
	feed(t, c, in, 4, false) // start
	feed(t, c, in, 4, false) // end == start: empty
	feed(t, c, in, 9, true)  // CV after the empty range
	for now := uint64(1); now < 2000; now++ {
		r.Tick(now)
	}
	got := drain(c, out, 3000)
	if len(got) != 1 || !got[0].Ctrl || got[0].Val != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestCompletionBufferBoundsMLP(t *testing.T) {
	c, m := newHost(t)
	table := m.AllocWords(256)
	r := New(c, Config{Mode: Indirect, In: 0, Out: 1, Base: table, ElemBytes: 8,
		CompletionBuffer: 2, IssuePerCycle: 4})
	in := c.QRM().Q(0)
	for i := uint64(0); i < 8; i++ {
		feed(t, c, in, i*64, false) // distinct lines -> long misses
	}
	r.Tick(1)
	if got := r.Stats.Loads; got > 2 {
		t.Fatalf("issued %d loads in one tick with a 2-entry completion buffer", got)
	}
}

func TestOutputCapacityThrottles(t *testing.T) {
	c, m := newHost(t)
	c.SetQueueCaps(map[uint8]int{1: 2})
	table := m.AllocWords(64)
	r := New(c, Config{Mode: Indirect, In: 0, Out: 1, Base: table, ElemBytes: 8, IssuePerCycle: 4})
	in := c.QRM().Q(0)
	for i := uint64(0); i < 6; i++ {
		feed(t, c, in, i, false)
	}
	for now := uint64(1); now < 1000; now++ {
		r.Tick(now)
	}
	if out := c.QRM().Q(1); out.Occupancy() != 2 {
		t.Fatalf("output occupancy %d, want 2 (capacity)", out.Occupancy())
	}
	if r.Drained() {
		t.Fatal("RA cannot be drained with input pending")
	}
}

func TestCVSplittingScanPairPanics(t *testing.T) {
	c, m := newHost(t)
	table := m.AllocWords(8)
	r := New(c, Config{Mode: Scan, In: 0, Out: 1, Base: table, ElemBytes: 8})
	in := c.QRM().Q(0)
	feed(t, c, in, 0, false) // start of a pair...
	feed(t, c, in, 7, true)  // ...interrupted by a CV: program bug
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	for now := uint64(1); now < 10; now++ {
		r.Tick(now)
	}
}

func TestElemBytes4(t *testing.T) {
	c, m := newHost(t)
	base := m.Alloc(64, 64)
	m.Write32(base+4*3, 0xABCD)
	r := New(c, Config{Mode: Indirect, In: 0, Out: 1, Base: base, ElemBytes: 4})
	in, out := c.QRM().Q(0), c.QRM().Q(1)
	feed(t, c, in, 3, false)
	for now := uint64(1); now < 2000; now++ {
		r.Tick(now)
	}
	got := drain(c, out, 3000)
	if len(got) != 1 || got[0].Val != 0xABCD {
		t.Fatalf("got %+v", got)
	}
}
