// Package ra implements reference accelerators (Sec. IV-B): small
// configurable units that stream indices from an input queue, perform
// indirect loads against a configured array, and enqueue results to an
// output queue. RAs consume only committed entries (they run
// non-speculatively), use the core's cache port for loads, allocate queue
// storage from the core's physical register freelist "like ordinary
// threads", and bound their outstanding loads with a completion buffer.
//
// Control values are forwarded from input to output in FIFO order so that
// delimiters (e.g. BFS end-of-level) flow through accelerated stages
// (DESIGN.md §4.5).
package ra

import (
	"fmt"

	"pipette/internal/core"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// Mode selects the access pattern.
type Mode uint8

// RA access modes. Indirect fetches A[i] per input index i. IndirectPair
// fetches A[i] and A[i+1] (the offsets pattern in BFS: start and end).
// Scan consumes input pairs (start, end) and fetches A[start:end].
const (
	Indirect Mode = iota
	IndirectPair
	Scan
)

// String names the access mode.
func (m Mode) String() string {
	switch m {
	case Indirect:
		return "indirect"
	case IndirectPair:
		return "indirect-pair"
	case Scan:
		return "scan"
	}
	return "?"
}

// Config programs one RA (set once before the program runs, Sec. IV-B).
type Config struct {
	Mode      Mode
	In, Out   uint8  // queue ids on the host core
	Base      uint64 // array base address A
	ElemBytes int    // element size S (4 or 8)

	CompletionBuffer int // outstanding loads (32 in the paper's RTL)
	IssuePerCycle    int // loads started per cycle
}

// Stats counts RA activity.
type Stats struct {
	Loads       uint64
	CVForwarded uint64
	InputsTaken uint64
}

// RA is one reference accelerator attached to a core.
type RA struct {
	c   *core.Core
	cfg Config
	in  *queue.Queue
	out *queue.Queue

	outstanding []uint64 // completion times of in-flight loads

	// fix records this cycle's deferred loads (deferred execution mode): the
	// outstanding slot, output-queue sequence and staged-event index each
	// completion time must be patched into when the access replays at the
	// commit phase (PatchAccess). Scratch: cleared at every tick, empty at
	// cycle boundaries, never serialized.
	fix []raFix

	havePending bool // scan: holding a start value awaiting its end
	pendingVal  uint64

	scanActive bool
	scanCur    uint64
	scanEnd    uint64

	// activeAt is the last cycle this RA mutated any state (emitted a load,
	// forwarded a CV, consumed an input, advanced or finished a scan, or
	// retired completion-buffer entries). While activeAt == now the RA
	// reports NextEvent = now+1, so quiescence fast-forward never skips the
	// cycle after an action. Scratch: not serialized; the first stepped
	// cycle after a restore re-establishes it.
	activeAt uint64

	// minOut caches the smallest completion time in outstanding (noEvent
	// when empty or all entries are NotReady placeholders). Derived state,
	// never serialized: pruneOutstanding and NextEvent early-out on it
	// instead of scanning the completion buffer every tick.
	minOut uint64

	Stats Stats
}

// New attaches an RA to c and registers it to be ticked every core cycle.
func New(c *core.Core, cfg Config) *RA {
	if cfg.CompletionBuffer == 0 {
		cfg.CompletionBuffer = 32
	}
	if cfg.IssuePerCycle == 0 {
		cfg.IssuePerCycle = 1
	}
	if cfg.ElemBytes == 0 {
		cfg.ElemBytes = 8
	}
	r := &RA{c: c, cfg: cfg, in: c.QRM().Q(cfg.In), out: c.QRM().Q(cfg.Out), minOut: noEvent}
	c.AddUnit(r)
	return r
}

// Drained reports that the RA holds no buffered or in-flight work and its
// input queue is empty.
func (r *RA) Drained() bool {
	return len(r.outstanding) == 0 && !r.scanActive && !r.havePending && !r.in.CanDeq()
}

func (r *RA) pruneOutstanding(now uint64) {
	if r.minOut > now {
		return // nothing completes this cycle; buffer unchanged
	}
	w := 0
	min := uint64(noEvent)
	for _, t := range r.outstanding {
		if t > now {
			r.outstanding[w] = t
			w++
			if t < min {
				min = t
			}
		}
	}
	r.minOut = min
	if w != len(r.outstanding) {
		r.outstanding = r.outstanding[:w]
		r.activeAt = now // freed completion slots; may emit again next cycle
	}
}

// emit issues one load of element idx and enqueues the result; returns false
// if output space, registers, or completion-buffer slots are unavailable.
func (r *RA) emit(now uint64, idx uint64) bool {
	if !r.out.CanEnq() || len(r.outstanding) >= r.cfg.CompletionBuffer {
		return false
	}
	phys, ok := r.c.AllocPhys()
	if !ok {
		return false
	}
	addr := r.cfg.Base + idx*uint64(r.cfg.ElemBytes)
	val := r.c.MemRead(addr, r.cfg.ElemBytes)
	if r.c.Deferred() {
		// The cache access replays at the commit phase; until then the
		// completion-buffer slot and the output entry hold NotReady
		// placeholders (correctly counted against capacity, and unreadable
		// before the patch lands). The EvRALoad event is staged now to keep
		// its position in the stream and its completion-cycle payload is
		// patched in alongside.
		f := raFix{out: len(r.outstanding), staged: -1}
		r.outstanding = append(r.outstanding, queue.NotReady)
		r.c.DeferAccess(addr, r, len(r.fix))
		f.seq = r.out.Enq(val, false, int(phys))
		if tr := r.c.Tracer(); tr != nil {
			tr.Emit(telemetry.EvRALoad, int16(r.c.ID()), telemetry.UnitRA, addr, 0)
			f.staged = r.c.LastStagedIndex()
		}
		r.fix = append(r.fix, f)
		r.activeAt = now
		r.Stats.Loads++
		return true
	}
	done, _ := r.c.MemPort().Access(now, addr, false)
	seq := r.out.Enq(val, false, int(phys))
	r.out.MarkReady(seq, done)
	r.outstanding = append(r.outstanding, done)
	if done < r.minOut {
		r.minOut = done
	}
	r.activeAt = now
	r.Stats.Loads++
	if tr := r.c.Tracer(); tr != nil {
		tr.Emit(telemetry.EvRALoad, int16(r.c.ID()), telemetry.UnitRA, addr, done)
	}
	return true
}

// raFix is one deferred load awaiting its completion time.
type raFix struct {
	out    int    // index into r.outstanding
	seq    uint64 // output-queue entry to MarkReady
	staged int    // staged EvRALoad event whose B payload gets the time; -1 none
}

// PatchAccess delivers the completion time of a deferred load during the
// commit phase (core.AccessPatcher).
func (r *RA) PatchAccess(i int, done uint64) {
	f := r.fix[i]
	r.outstanding[f.out] = done
	if done < r.minOut {
		r.minOut = done
	}
	r.out.MarkReady(f.seq, done)
	if f.staged >= 0 {
		r.c.PatchStagedEventB(f.staged, done)
	}
}

// forwardCV moves a control value from input to output unchanged.
func (r *RA) forwardCV(now uint64, v uint64) bool {
	if !r.out.CanEnq() {
		return false
	}
	phys, ok := r.c.AllocPhys()
	if !ok {
		return false
	}
	seq := r.out.Enq(v, true, int(phys))
	r.out.MarkReady(seq, now+1)
	r.activeAt = now
	r.Stats.CVForwarded++
	if tr := r.c.Tracer(); tr != nil {
		tr.Emit(telemetry.EvRACV, int16(r.c.ID()), telemetry.UnitRA, uint64(r.cfg.Out), v)
	}
	return true
}

// takeInput consumes the committed head entry of the input queue, freeing
// its register immediately (the RA is its own non-speculative consumer).
func (r *RA) takeInput() queue.Entry {
	e := *r.in.Deq()
	r.c.FreePhys(int32(r.in.CommitDeq()))
	r.Stats.InputsTaken++
	return e
}

// inputReady reports whether a committed entry is available.
func (r *RA) inputReady(now uint64) bool {
	return r.in.CanDeq() && r.in.Head().ReadyAt <= now
}

// Tick advances the RA one cycle.
func (r *RA) Tick(now uint64) {
	r.fix = r.fix[:0] // last cycle's deferred loads were patched at its commit
	r.pruneOutstanding(now)
	if p := r.c.Prof(); p != nil {
		// Completion-buffer occupancy after retiring finished loads, before
		// this cycle's emits — the same point FastForward credits, so the
		// integral is identical ticked or fast-forwarded.
		p.RAOcc(len(r.outstanding), 1)
	}
	for budget := r.cfg.IssuePerCycle; budget > 0; budget-- {
		if r.scanActive {
			if r.scanCur >= r.scanEnd {
				r.scanActive = false
				r.activeAt = now
				continue
			}
			if !r.emit(now, r.scanCur) {
				return
			}
			r.scanCur++
			continue
		}
		if !r.inputReady(now) {
			return
		}
		head := r.in.Head()
		if head.Ctrl {
			if r.havePending {
				panic(fmt.Sprintf("ra: control value splits a scan pair (queue %d)", r.cfg.In))
			}
			if !r.forwardCV(now, head.Val) {
				return
			}
			r.takeInput()
			continue
		}
		switch r.cfg.Mode {
		case Indirect:
			if !r.emit(now, head.Val) {
				return
			}
			r.takeInput()
		case IndirectPair:
			// Needs room for two results.
			if r.out.Occupancy()+2 > r.out.Cap || len(r.outstanding)+2 > r.cfg.CompletionBuffer {
				return
			}
			idx := head.Val
			if !r.emit(now, idx) {
				return
			}
			if !r.emit(now, idx+1) {
				// First emit succeeded; capacity was pre-checked, so
				// only register exhaustion lands here. Retry next
				// cycle would double-fetch; treat as fatal sizing bug.
				panic("ra: register starvation mid-pair; increase PRF or shrink queues")
			}
			r.takeInput()
		case Scan:
			if !r.havePending {
				r.pendingVal = head.Val
				r.havePending = true
				r.takeInput()
				r.activeAt = now
				continue
			}
			start, end := r.pendingVal, head.Val
			r.havePending = false
			r.takeInput()
			r.scanActive, r.scanCur, r.scanEnd = true, start, end
			r.activeAt = now
		}
	}
}

// NextEvent returns the earliest cycle > now at which ticking the RA could
// change state, assuming no other component acts first (the clocked-
// component contract; see internal/sim/component.go). Self-scheduled events
// are the completion-buffer retirements and the input head's ready time;
// everything else that could unblock the RA — output-queue space, free
// registers, a producer's commit — arrives via another component's busy
// tick, which blocks fast-forward by itself.
func (r *RA) NextEvent(now uint64) uint64 {
	if r.activeAt >= now {
		return now + 1
	}
	if r.minOut <= now {
		return now + 1 // retirement due; prune runs on the next tick
	}
	next := r.minOut // noEvent when the buffer is empty or all-placeholder
	if !r.scanActive && r.in.CanDeq() {
		if at := r.in.Head().ReadyAt; at != queue.NotReady && at > now {
			if at < next {
				next = at
			}
		}
	}
	return next
}

// noEvent mirrors sim.NoEvent; the packages cannot share the constant
// without an import cycle.
const noEvent = ^uint64(0)

// FastForward replicates the per-tick completion-buffer pruning the skipped
// cycles (from, to] would have performed. Because NextEvent reports every
// outstanding completion time, a fast-forwarded run still ticks at each
// retirement cycle, so this is normally a no-op kept for exactness: the
// serialized outstanding list must match a cycle-by-cycle run at any
// checkpoint boundary.
func (r *RA) FastForward(from, to uint64) {
	r.pruneOutstanding(to)
	if p := r.c.Prof(); p != nil {
		// No outstanding load completes inside a quiescent span (NextEvent
		// reports completion times), so the occupancy is frozen across it.
		p.RAOcc(len(r.outstanding), to-from)
	}
}
