// Package profile implements the cycle-accounting observability subsystem:
// top-down attribution of every issue slot on every core to an exhaustive
// category set, per-thread cycle accounting, queue-occupancy histograms
// with high-water marks, and host-side timing of the parallel tick kernel's
// produce/commit/fast-forward phases (docs/PROFILING.md).
//
// The guest-side counters (CoreProf) are deterministic: they depend only on
// simulated machine state, never on host timing, so profiled runs stay
// bit-identical across worker counts and fast-forward settings. The hard
// invariant is slot conservation — a core's categories sum exactly to
// cycles × issue width (CoreSnapshot.Conserved). The host-side KernelProf
// is wall-clock and therefore excluded from results and reports; it is
// exposed only through the live introspection endpoint (server.go).
package profile

import (
	"fmt"
	"time"
)

// Category is one destination for an issue slot. Every simulated cycle
// contributes exactly `issue width` slots: the slots that issued a µop go
// to CatRetired and the rest go to a single stall category chosen from the
// frozen machine state — a pure function of state, which is what lets
// quiescence fast-forward credit a whole skipped span in one step.
type Category uint8

// Slot categories, in CPI-stack display order.
const (
	// CatRetired counts slots that issued a µop this cycle.
	CatRetired Category = iota
	// CatFrontend: an active thread is waiting out a branch-mispredict
	// redirect (fetch refill) and the backend has nothing in flight.
	CatFrontend
	// CatTrap: a control-value/enqueue-handler trap redirect or a
	// skip_to_ctrl wait — the Pipette exception-style costs of Sec. IV-A.
	CatTrap
	// CatBackend: execution or resource stalls (ROB/IQ/PRF/LSQ, busy
	// functional units) with no outstanding load beyond the L1.
	CatBackend
	// CatBackendL2/L3/DRAM split backend stalls by the deepest cache level
	// an outstanding load is waiting on (via the existing miss plumbing).
	CatBackendL2
	CatBackendL3
	CatBackendDRAM
	// CatQueueFull: all stalled threads are blocked enqueueing into full
	// Pipette queues (backpressure).
	CatQueueFull
	// CatQueueEmpty: all stalled threads are blocked dequeueing from empty
	// Pipette queues (starvation).
	CatQueueEmpty
	// CatIdle: no runnable thread and an empty backend — halted/drained
	// phases, including fast-forwarded quiescent spans.
	CatIdle

	// NumCategories bounds the category set.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"retired", "frontend", "trap", "backend",
	"backend-l2", "backend-l3", "backend-dram",
	"queue-full", "queue-empty", "idle",
}

// String names the category.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("cat%d", uint8(c))
}

// CategoryNames returns the category names indexed by Category value, for
// telemetry sinks (CSV slot columns, Chrome counter tracks, report keys).
func CategoryNames() []string { return categoryNames[:] }

// numMemLevels mirrors the cache hierarchy depth (L1, L2, L3, DRAM).
const numMemLevels = 4

// MemCategory maps a cache level index (0=L1 .. 3=DRAM, following
// cache.Level) to the backend category for a load outstanding at that
// level. L1 hits are short enough to fold into plain backend.
func MemCategory(lvl int) Category {
	switch lvl {
	case 1:
		return CatBackendL2
	case 2:
		return CatBackendL3
	case 3:
		return CatBackendDRAM
	}
	return CatBackend
}

// queueProf is one queue's occupancy histogram.
type queueProf struct {
	counts    []uint64 // counts[occ] = cycles spent at that occupancy
	highWater int
}

// CoreProf accumulates one core's deterministic cycle accounting. The core
// holds it through a nil-guarded pointer (disabled runs pay one nil check
// per cycle) and it is never serialized into checkpoints or core.Stats, so
// enabling profiling cannot perturb state hashes or cached results.
type CoreProf struct {
	width int

	// Cycles counts every cycle attributed (ticked or fast-forwarded) since
	// the profiler was attached; conservation is checked against it rather
	// than core.Stats.Cycles so ROI resets cannot skew the invariant.
	Cycles uint64
	// Slots is the issue-slot account: Slots sums to Cycles * width.
	Slots [NumCategories]uint64

	// thread[tid][cat] counts cycles each hardware thread spent in each
	// category (the per-stage CPI stack).
	thread [][NumCategories]uint64

	// queues holds per-queue occupancy histograms; grown on first sight of
	// a queue index so reconfigured QRMs (SetQueueCaps) stay covered.
	queues []queueProf

	// out counts issued-but-unretired loads by cache level; the slot
	// classifier picks the deepest non-empty level. Frozen over quiescent
	// spans (loads issue and retire only on busy ticks).
	out [numMemLevels]uint64

	// RA completion-buffer occupancy: integral over cycles and peak.
	RAOccSum uint64
	RAPeak   int
}

// NewCoreProf builds a profiler for a core with the given issue width and
// hardware thread count.
func NewCoreProf(width, threads int) *CoreProf {
	if width < 1 {
		width = 1
	}
	return &CoreProf{width: width, thread: make([][NumCategories]uint64, threads)}
}

// Width returns the issue width the slot account is normalized to.
func (p *CoreProf) Width() int { return p.width }

// Tick attributes one ticked cycle: issued slots retire, the remaining
// width-issued slots go to cat.
func (p *CoreProf) Tick(cat Category, issued int) {
	p.Cycles++
	if issued > p.width {
		issued = p.width // defensive: conservation over partial attribution
	}
	p.Slots[CatRetired] += uint64(issued)
	p.Slots[cat] += uint64(p.width - issued)
}

// Span credits a quiescent fast-forwarded span of d cycles to cat. No µop
// issues inside a quiescent span, so every slot goes to the one category.
func (p *CoreProf) Span(cat Category, d uint64) {
	p.Cycles += d
	p.Slots[cat] += uint64(p.width) * d
}

// ThreadCycles credits d cycles of category cat to hardware thread tid.
func (p *CoreProf) ThreadCycles(tid int, cat Category, d uint64) {
	if tid < len(p.thread) {
		p.thread[tid][cat] += d
	}
}

// QueueOcc credits d cycles at occupancy occ to queue qi's histogram.
func (p *CoreProf) QueueOcc(qi, occ int, d uint64) {
	for qi >= len(p.queues) {
		p.queues = append(p.queues, queueProf{})
	}
	q := &p.queues[qi]
	for occ >= len(q.counts) {
		q.counts = append(q.counts, 0)
	}
	q.counts[occ] += d
	if occ > q.highWater {
		q.highWater = occ
	}
}

// LoadIssued records a load entering flight at cache level lvl.
func (p *CoreProf) LoadIssued(lvl int) {
	if lvl >= 0 && lvl < numMemLevels {
		p.out[lvl]++
	}
}

// LoadRetired records a load at cache level lvl leaving flight.
func (p *CoreProf) LoadRetired(lvl int) {
	if lvl >= 0 && lvl < numMemLevels && p.out[lvl] > 0 {
		p.out[lvl]--
	}
}

// MemLevel returns the deepest cache level (>= L2) with an outstanding
// load, or -1 when nothing beyond the L1 is in flight.
func (p *CoreProf) MemLevel() int {
	for lvl := numMemLevels - 1; lvl >= 1; lvl-- {
		if p.out[lvl] > 0 {
			return lvl
		}
	}
	return -1
}

// ResetOutstanding clears the outstanding-load counters; checkpoint restore
// calls it because restored in-flight µops carry no profiling marks.
func (p *CoreProf) ResetOutstanding() { p.out = [numMemLevels]uint64{} }

// Outstanding returns the in-flight load counts by cache level (debug
// dumps; index follows cache.Level).
func (p *CoreProf) Outstanding() []uint64 { return append([]uint64(nil), p.out[:]...) }

// RAOcc credits d cycles at completion-buffer occupancy n.
func (p *CoreProf) RAOcc(n int, d uint64) {
	p.RAOccSum += uint64(n) * d
	if n > p.RAPeak {
		p.RAPeak = n
	}
}

// CopyInto deep-copies the profiler state into dst, reusing dst's backing
// slices. The speculative kernel snapshots each core's profiler at epoch
// start and restores it on rollback (profiling is deterministic guest
// state, so a rolled-back epoch must also roll its slot account back).
func (p *CoreProf) CopyInto(dst *CoreProf) {
	dst.width = p.width
	dst.Cycles = p.Cycles
	dst.Slots = p.Slots
	dst.thread = append(dst.thread[:0], p.thread...)
	if cap(dst.queues) < len(p.queues) {
		grown := make([]queueProf, len(p.queues))
		for i := range dst.queues {
			grown[i].counts = dst.queues[i].counts
		}
		dst.queues = grown
	}
	dst.queues = dst.queues[:len(p.queues)]
	for i := range p.queues {
		dst.queues[i].counts = append(dst.queues[i].counts[:0], p.queues[i].counts...)
		dst.queues[i].highWater = p.queues[i].highWater
	}
	dst.out = p.out
	dst.RAOccSum = p.RAOccSum
	dst.RAPeak = p.RAPeak
}

// SpecStats is the speculative kernel's deterministic epoch accounting: a
// pure function of simulated state (never of host timing), so it is safe
// to surface in reports. Cycle conservation is the auditable invariant:
// CommittedCycles + RerunCycles + BarrierCycles + FFCycles must equal
// every cycle the run advanced while speculation was active.
type SpecStats struct {
	Epochs          uint64 `json:"epochs"`
	Commits         uint64 `json:"commits"`
	Aborts          uint64 `json:"aborts"`
	CommittedCycles uint64 `json:"committed_cycles"`
	AbortedCycles   uint64 `json:"aborted_cycles"` // speculated then discarded (not advanced)
	RerunCycles     uint64 `json:"rerun_cycles"`   // re-executed by the barrier kernel after aborts
	BarrierCycles   uint64 `json:"barrier_cycles"` // barrier-stepped outside reruns (cooldown, capped epochs)
	FFCycles        uint64 `json:"ff_cycles"`      // fast-forwarded between epochs
	TotalCycles     uint64 `json:"total_cycles"`   // every cycle advanced while speculating
}

// Conserved checks the cycle-conservation invariant.
func (s SpecStats) Conserved() error {
	if sum := s.CommittedCycles + s.RerunCycles + s.BarrierCycles + s.FFCycles; sum != s.TotalCycles {
		return fmt.Errorf("profile: speculation cycles %d (committed) + %d (rerun) + %d (barrier) + %d (ff) = %d, want total %d",
			s.CommittedCycles, s.RerunCycles, s.BarrierCycles, s.FFCycles, sum, s.TotalCycles)
	}
	if s.Commits+s.Aborts != s.Epochs {
		return fmt.Errorf("profile: speculation commits %d + aborts %d != epochs %d", s.Commits, s.Aborts, s.Epochs)
	}
	return nil
}

// QueueSnapshot is one queue's occupancy histogram at snapshot time.
type QueueSnapshot struct {
	Queue     int      `json:"queue"`
	HighWater int      `json:"high_water"`
	Counts    []uint64 `json:"counts"` // counts[occ] = cycles at that occupancy
}

// CoreSnapshot is the exported, deep-copied state of one core's profiler.
type CoreSnapshot struct {
	Core     int             `json:"core"`
	Width    int             `json:"width"`
	Cycles   uint64          `json:"cycles"`
	Slots    []uint64        `json:"slots"`             // indexed by Category
	Threads  [][]uint64      `json:"threads,omitempty"` // [thread][category] cycles
	Queues   []QueueSnapshot `json:"queues,omitempty"`
	RAOccSum uint64          `json:"ra_occ_sum,omitempty"`
	RAPeak   int             `json:"ra_peak,omitempty"`
}

// Snapshot deep-copies the profiler state for core index `core`.
func (p *CoreProf) Snapshot(core int) CoreSnapshot {
	s := CoreSnapshot{
		Core:     core,
		Width:    p.width,
		Cycles:   p.Cycles,
		Slots:    append([]uint64(nil), p.Slots[:]...),
		RAOccSum: p.RAOccSum,
		RAPeak:   p.RAPeak,
	}
	for _, th := range p.thread {
		s.Threads = append(s.Threads, append([]uint64(nil), th[:]...))
	}
	for qi := range p.queues {
		q := &p.queues[qi]
		s.Queues = append(s.Queues, QueueSnapshot{
			Queue:     qi,
			HighWater: q.highWater,
			Counts:    append([]uint64(nil), q.counts...),
		})
	}
	return s
}

// Conserved checks the slot-conservation invariant: the categories must sum
// exactly to cycles × issue width, and every queue histogram must account
// for exactly the profiled cycles.
func (s CoreSnapshot) Conserved() error {
	var sum uint64
	for _, n := range s.Slots {
		sum += n
	}
	if want := s.Cycles * uint64(s.Width); sum != want {
		return fmt.Errorf("profile: core %d slots sum to %d, want cycles(%d) x width(%d) = %d",
			s.Core, sum, s.Cycles, s.Width, want)
	}
	for _, q := range s.Queues {
		var qsum uint64
		hi := 0
		for occ, n := range q.Counts {
			qsum += n
			if n > 0 && occ > hi {
				hi = occ
			}
		}
		if qsum != s.Cycles {
			return fmt.Errorf("profile: core %d queue %d histogram sums to %d cycles, want %d",
				s.Core, q.Queue, qsum, s.Cycles)
		}
		if hi != q.HighWater {
			return fmt.Errorf("profile: core %d queue %d high-water %d, histogram says %d",
				s.Core, q.Queue, q.HighWater, hi)
		}
	}
	return nil
}

// KernelProf accumulates host-side wall-clock timing of the simulation
// kernel: the produce and sequential-commit phases of every ticked cycle,
// the fast-forward probes/jumps, and — on pooled runs — per-worker busy
// time so barrier wait (the sequential-commit ceiling) becomes measurable.
// Host timing is nondeterministic by nature, so none of this ever reaches
// Result, reports, or checkpoints.
type KernelProf struct {
	Workers int

	TickedCycles uint64 // cycles advanced by ticking
	FFCycles     uint64 // cycles advanced by fast-forward credit
	FFJumps      uint64 // fast-forward jumps taken

	ProduceNS uint64 // wall ns in produce phases (core ticks)
	CommitNS  uint64 // wall ns in sequential commit phases
	FFNS      uint64 // wall ns in fast-forward probes + credits

	// Pool accounting, accumulated across run segments by Harvest: the
	// driver's wall time inside pool phases and each worker's busy time
	// within them. wait(w) = PoolNS - WorkerBusyNS[w].
	PoolNS       uint64
	WorkerBusyNS []uint64

	// Speculative-kernel wall timing (zero unless -speculate): epoch
	// produce (all shards, wall not CPU) and the sequential validate +
	// commit pipeline. The deterministic epoch counters live in SpecStats,
	// maintained by the simulator, and are snapshotted alongside.
	SpecProduceNS  uint64
	SpecValidateNS uint64
}

// NewKernelProf builds an empty kernel profiler.
func NewKernelProf() *KernelProf { return &KernelProf{} }

// Produce adds one ticked cycle's produce-phase wall time.
func (k *KernelProf) Produce(d time.Duration) {
	k.ProduceNS += uint64(d)
	k.TickedCycles++
}

// Commit adds one ticked cycle's sequential-commit wall time.
func (k *KernelProf) Commit(d time.Duration) { k.CommitNS += uint64(d) }

// FF adds one fast-forward attempt's wall time and the cycles it credited
// (0 when the probe found no quiescent span).
func (k *KernelProf) FF(d time.Duration, cycles uint64) {
	k.FFNS += uint64(d)
	if cycles > 0 {
		k.FFJumps++
		k.FFCycles += cycles
	}
}

// Harvest folds one run segment's pool accounting in: the driver's wall
// time inside pool phases and each worker's busy nanoseconds.
func (k *KernelProf) Harvest(busy []uint64, poolNS uint64) {
	k.PoolNS += poolNS
	for len(k.WorkerBusyNS) < len(busy) {
		k.WorkerBusyNS = append(k.WorkerBusyNS, 0)
	}
	for w, b := range busy {
		k.WorkerBusyNS[w] += b
	}
}

// KernelSnapshot is the exported kernel-profile state.
type KernelSnapshot struct {
	Workers       int      `json:"workers"`
	TickedCycles  uint64   `json:"ticked_cycles"`
	FFCycles      uint64   `json:"ff_cycles"`
	FFJumps       uint64   `json:"ff_jumps"`
	ProduceNS     uint64   `json:"produce_ns"`
	CommitNS      uint64   `json:"commit_ns"`
	FFNS          uint64   `json:"ff_ns"`
	PoolNS        uint64   `json:"pool_ns,omitempty"`
	WorkerBusyNS  []uint64 `json:"worker_busy_ns,omitempty"`
	BarrierWaitNS []uint64 `json:"barrier_wait_ns,omitempty"`

	SpecProduceNS  uint64 `json:"spec_produce_ns,omitempty"`
	SpecValidateNS uint64 `json:"spec_validate_ns,omitempty"`
}

// Snapshot copies the kernel profile, deriving per-worker barrier wait.
func (k *KernelProf) Snapshot() KernelSnapshot {
	s := KernelSnapshot{
		Workers:        k.Workers,
		TickedCycles:   k.TickedCycles,
		FFCycles:       k.FFCycles,
		FFJumps:        k.FFJumps,
		ProduceNS:      k.ProduceNS,
		CommitNS:       k.CommitNS,
		FFNS:           k.FFNS,
		PoolNS:         k.PoolNS,
		WorkerBusyNS:   append([]uint64(nil), k.WorkerBusyNS...),
		SpecProduceNS:  k.SpecProduceNS,
		SpecValidateNS: k.SpecValidateNS,
	}
	for _, b := range k.WorkerBusyNS {
		wait := uint64(0)
		if k.PoolNS > b {
			wait = k.PoolNS - b
		}
		s.BarrierWaitNS = append(s.BarrierWaitNS, wait)
	}
	return s
}

// ConnSnapshot is one connector's counters, labeled with its wiring.
type ConnSnapshot struct {
	SrcCore     int    `json:"src_core"`
	SrcQueue    uint8  `json:"src_queue"`
	DstCore     int    `json:"dst_core"`
	DstQueue    uint8  `json:"dst_queue"`
	Sent        uint64 `json:"sent"`
	CVsSent     uint64 `json:"cvs_sent"`
	CreditStall uint64 `json:"credit_stall"`
}

// Snapshot is the full introspection snapshot the -http endpoint serves:
// guest-side CPI stacks and queue histograms plus the host-side kernel
// profile, taken at a RunUntil segment boundary (never mid-cycle).
type Snapshot struct {
	Label      string          `json:"label,omitempty"` // e.g. app/variant/input
	Cycle      uint64          `json:"cycle"`
	Done       bool            `json:"done"`
	Cores      []CoreSnapshot  `json:"cores,omitempty"`
	Kernel     *KernelSnapshot `json:"kernel,omitempty"`
	Connectors []ConnSnapshot  `json:"connectors,omitempty"`
	Spec       *SpecStats      `json:"speculation,omitempty"`
}
