// The live introspection endpoint behind pipette-sim/pipette-bench -http.
// The server never reads live simulation counters: the driver pushes a
// complete Snapshot at RunUntil segment boundaries (the simulation is
// paused there), so handlers only ever see immutable, mutex-guarded copies
// and the simulation hot path carries no synchronization.
package profile

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// current points at the most recently started server so the process-global
// expvar registration (which cannot be undone) always reflects it.
var current struct {
	mu  sync.Mutex
	srv *Server
}

var publishOnce sync.Once

// Server serves the introspection endpoint:
//
//	/debug/vars    expvar-style JSON (the snapshot under "pipette", plus
//	               the standard cmdline/memstats vars)
//	/top           plain-text CPI-stack and kernel-phase view
//	/debug/pprof/  the standard net/http/pprof handlers
type Server struct {
	mu        sync.Mutex
	snap      Snapshot
	updatedAt time.Time

	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves the endpoint
// in a background goroutine until Close. The bound address is available
// from Addr, so ":0" picks a free port.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("profile: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	current.mu.Lock()
	current.srv = s
	current.mu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("pipette", expvar.Func(func() any {
			current.mu.Lock()
			srv := current.srv
			current.mu.Unlock()
			if srv == nil {
				return nil
			}
			snap, _ := srv.Current()
			return snap
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleTop)
	mux.HandleFunc("/top", s.handleTop)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound listen address ("host:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Update replaces the served snapshot. Callers push it only while the
// simulation is paused (between RunUntil segments or after a cell), so the
// snapshot contents are never concurrently mutated.
func (s *Server) Update(snap Snapshot) {
	s.mu.Lock()
	s.snap = snap
	s.updatedAt = time.Now()
	s.mu.Unlock()
}

// Current returns the last pushed snapshot and when it was pushed.
func (s *Server) Current() (Snapshot, time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap, s.updatedAt
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/top" {
		http.NotFound(w, r)
		return
	}
	snap, at := s.Current()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, FormatTop(snap, at))
}

// bar renders an ASCII proportion bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// FormatTop renders the plain-text /top view: per-core CPI stacks sorted by
// share, queue high-water marks, RA occupancy, kernel phase times, and
// per-worker busy/wait split.
func FormatTop(snap Snapshot, at time.Time) string {
	var b strings.Builder
	state := "running"
	if snap.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "pipette introspection — cycle %d (%s)", snap.Cycle, state)
	if snap.Label != "" {
		fmt.Fprintf(&b, " — %s", snap.Label)
	}
	if !at.IsZero() {
		fmt.Fprintf(&b, " — updated %s ago", time.Since(at).Round(time.Millisecond))
	}
	b.WriteString("\n")
	if len(snap.Cores) == 0 {
		b.WriteString("no profile snapshot yet\n")
	}
	for _, c := range snap.Cores {
		total := float64(c.Cycles) * float64(c.Width)
		fmt.Fprintf(&b, "\ncore %d: %d cycles x width %d\n", c.Core, c.Cycles, c.Width)
		if total == 0 {
			continue
		}
		type row struct {
			name string
			n    uint64
		}
		var rows []row
		for ci, n := range c.Slots {
			if n > 0 {
				rows = append(rows, row{Category(ci).String(), n})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].name < rows[j].name
		})
		for _, r := range rows {
			f := float64(r.n) / total
			fmt.Fprintf(&b, "  %-13s %6.2f%%  %s\n", r.name, 100*f, bar(f, 30))
		}
		var hw []string
		for _, q := range c.Queues {
			if q.HighWater > 0 {
				hw = append(hw, fmt.Sprintf("q%d=%d", q.Queue, q.HighWater))
			}
		}
		if len(hw) > 0 {
			fmt.Fprintf(&b, "  queue high-water: %s\n", strings.Join(hw, " "))
		}
		if c.RAOccSum > 0 && c.Cycles > 0 {
			fmt.Fprintf(&b, "  ra occupancy: mean %.2f peak %d\n",
				float64(c.RAOccSum)/float64(c.Cycles), c.RAPeak)
		}
	}
	if len(snap.Connectors) > 0 {
		b.WriteString("\nconnectors:\n")
		for _, cn := range snap.Connectors {
			fmt.Fprintf(&b, "  core%d q%d -> core%d q%d: sent=%d cvs=%d credit-stall=%d\n",
				cn.SrcCore, cn.SrcQueue, cn.DstCore, cn.DstQueue,
				cn.Sent, cn.CVsSent, cn.CreditStall)
		}
	}
	if k := snap.Kernel; k != nil {
		fmt.Fprintf(&b, "\nkernel (workers=%d): ticked %d cycles, fast-forwarded %d in %d jumps\n",
			k.Workers, k.TickedCycles, k.FFCycles, k.FFJumps)
		tot := k.ProduceNS + k.CommitNS + k.FFNS
		if tot > 0 {
			fmt.Fprintf(&b, "  produce %5.1f%%  commit %5.1f%%  fast-forward %5.1f%%  (%.3fs total)\n",
				100*float64(k.ProduceNS)/float64(tot),
				100*float64(k.CommitNS)/float64(tot),
				100*float64(k.FFNS)/float64(tot),
				float64(tot)/1e9)
		}
		for w := range k.WorkerBusyNS {
			busy, wait := k.WorkerBusyNS[w], uint64(0)
			if w < len(k.BarrierWaitNS) {
				wait = k.BarrierWaitNS[w]
			}
			if busy+wait > 0 {
				fmt.Fprintf(&b, "  worker %d: busy %5.1f%%  barrier-wait %5.1f%%\n",
					w, 100*float64(busy)/float64(busy+wait), 100*float64(wait)/float64(busy+wait))
			}
		}
	}
	return b.String()
}
