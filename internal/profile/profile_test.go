package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTickSpanConservation(t *testing.T) {
	p := NewCoreProf(4, 2)
	if p.Width() != 4 {
		t.Fatalf("Width() = %d, want 4", p.Width())
	}
	p.Tick(CatBackend, 3)   // 3 retired, 1 backend
	p.Tick(CatQueueFull, 0) // 4 queue-full
	p.Tick(CatFrontend, 4)  // fully issued: all retired
	p.Span(CatIdle, 100)    // 400 idle slots
	p.Tick(CatTrap, 7)      // over-issue clamps to width
	s := p.Snapshot(0)
	if err := s.Conserved(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles != 104 {
		t.Fatalf("Cycles = %d, want 104", s.Cycles)
	}
	if got := s.Slots[CatRetired]; got != 3+4+4 {
		t.Fatalf("retired = %d, want 11", got)
	}
	if got := s.Slots[CatIdle]; got != 400 {
		t.Fatalf("idle = %d, want 400", got)
	}
	if got := s.Slots[CatQueueFull]; got != 4 {
		t.Fatalf("queue-full = %d, want 4", got)
	}
}

func TestConservedDetectsLeaks(t *testing.T) {
	p := NewCoreProf(2, 1)
	p.Tick(CatBackend, 1)
	s := p.Snapshot(0)
	s.Slots[CatBackend]++ // corrupt: one slot too many
	if err := s.Conserved(); err == nil {
		t.Fatal("Conserved accepted a slot leak")
	}
}

func TestConservedChecksQueueHistograms(t *testing.T) {
	p := NewCoreProf(1, 1)
	p.Tick(CatBackend, 0)
	p.Tick(CatBackend, 0)
	p.QueueOcc(0, 0, 1)
	p.QueueOcc(0, 3, 1)
	if err := p.Snapshot(0).Conserved(); err != nil {
		t.Fatal(err)
	}
	// A histogram that misses a cycle must fail.
	p.Tick(CatBackend, 0)
	if err := p.Snapshot(0).Conserved(); err == nil {
		t.Fatal("Conserved accepted an under-counted queue histogram")
	}
	p.QueueOcc(0, 1, 1)
	s := p.Snapshot(0)
	if err := s.Conserved(); err != nil {
		t.Fatal(err)
	}
	if s.Queues[0].HighWater != 3 {
		t.Fatalf("high water = %d, want 3", s.Queues[0].HighWater)
	}
	// A forged high-water mark must fail too.
	s.Queues[0].HighWater = 2
	if err := s.Conserved(); err == nil {
		t.Fatal("Conserved accepted a wrong high-water mark")
	}
}

func TestMemCategory(t *testing.T) {
	for _, tc := range []struct {
		lvl  int
		want Category
	}{
		{0, CatBackend}, {1, CatBackendL2}, {2, CatBackendL3},
		{3, CatBackendDRAM}, {-1, CatBackend}, {9, CatBackend},
	} {
		if got := MemCategory(tc.lvl); got != tc.want {
			t.Errorf("MemCategory(%d) = %s, want %s", tc.lvl, got, tc.want)
		}
	}
}

func TestOutstandingLoadTracking(t *testing.T) {
	p := NewCoreProf(1, 1)
	if p.MemLevel() != -1 {
		t.Fatalf("MemLevel on empty = %d, want -1", p.MemLevel())
	}
	p.LoadIssued(1)
	p.LoadIssued(3)
	if p.MemLevel() != 3 {
		t.Fatalf("MemLevel = %d, want 3 (deepest wins)", p.MemLevel())
	}
	p.LoadRetired(3)
	if p.MemLevel() != 1 {
		t.Fatalf("MemLevel = %d, want 1", p.MemLevel())
	}
	p.LoadRetired(1)
	p.LoadRetired(1) // underflow is clamped
	if p.MemLevel() != -1 {
		t.Fatalf("MemLevel = %d, want -1", p.MemLevel())
	}
	p.LoadIssued(2)
	p.ResetOutstanding()
	if got := p.Outstanding(); got[2] != 0 {
		t.Fatalf("Outstanding after reset = %v", got)
	}
}

func TestCategoryNames(t *testing.T) {
	ns := CategoryNames()
	if len(ns) != int(NumCategories) {
		t.Fatalf("%d names for %d categories", len(ns), NumCategories)
	}
	seen := map[string]bool{}
	for i, n := range ns {
		if n == "" || seen[n] {
			t.Fatalf("bad/duplicate name %q at %d", n, i)
		}
		seen[n] = true
		if Category(i).String() != n {
			t.Fatalf("Category(%d).String() = %q, want %q", i, Category(i).String(), n)
		}
	}
	if got := Category(200).String(); got != "cat200" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := NewCoreProf(2, 1)
	p.Tick(CatBackend, 1)
	p.QueueOcc(0, 1, 1)
	s := p.Snapshot(0)
	p.Tick(CatBackend, 0)
	p.QueueOcc(0, 2, 1)
	if s.Cycles != 1 || s.Slots[CatBackend] != 1 || len(s.Queues[0].Counts) != 2 {
		t.Fatalf("snapshot aliased live profiler state: %+v", s)
	}
}

func TestKernelProfSnapshot(t *testing.T) {
	k := NewKernelProf()
	k.Workers = 2
	k.Produce(3 * time.Microsecond)
	k.Produce(2 * time.Microsecond)
	k.Commit(time.Microsecond)
	k.FF(time.Microsecond, 500)
	k.FF(time.Microsecond, 0) // failed probe: time counted, no jump
	k.Harvest([]uint64{700, 300}, 1000)
	s := k.Snapshot()
	if s.TickedCycles != 2 || s.FFCycles != 500 || s.FFJumps != 1 {
		t.Fatalf("cycle account wrong: %+v", s)
	}
	if s.ProduceNS != 5000 || s.CommitNS != 1000 || s.FFNS != 2000 {
		t.Fatalf("phase times wrong: %+v", s)
	}
	// Barrier wait derives as pool wall minus worker busy, clamped at 0.
	if len(s.BarrierWaitNS) != 2 || s.BarrierWaitNS[0] != 300 || s.BarrierWaitNS[1] != 700 {
		t.Fatalf("barrier wait = %v, want [300 700]", s.BarrierWaitNS)
	}
	k.Harvest([]uint64{2000, 0}, 100) // busy > pool clamps to zero wait
	if s2 := k.Snapshot(); s2.BarrierWaitNS[0] != 0 {
		t.Fatalf("barrier wait not clamped: %v", s2.BarrierWaitNS)
	}
}

// testSnapshot builds a plausible snapshot for rendering/serving tests.
func testSnapshot() Snapshot {
	p := NewCoreProf(4, 4)
	p.Span(CatBackendDRAM, 10)
	p.Tick(CatQueueEmpty, 2)
	p.QueueOcc(0, 5, 11)
	p.RAOcc(3, 11)
	k := NewKernelProf()
	k.Workers = 1
	k.Produce(time.Millisecond)
	k.FF(time.Microsecond, 10)
	return Snapshot{
		Label:  "bfs/pipette/Rd",
		Cycle:  11,
		Cores:  []CoreSnapshot{p.Snapshot(0)},
		Kernel: func() *KernelSnapshot { s := k.Snapshot(); return &s }(),
		Connectors: []ConnSnapshot{
			{SrcCore: 0, SrcQueue: 1, DstCore: 1, DstQueue: 0, Sent: 42, CVsSent: 3, CreditStall: 7},
		},
	}
}

func TestFormatTop(t *testing.T) {
	out := FormatTop(testSnapshot(), time.Unix(0, 0))
	for _, want := range []string{
		"bfs/pipette/Rd", "retired", "backend-dram", "queue-empty",
		"q0", "kernel", "42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTop output missing %q:\n%s", want, out)
		}
	}
}

func TestServerServesTopAndVars(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Update(testSnapshot())

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if top := get("/top"); !strings.Contains(top, "bfs/pipette/Rd") {
		t.Fatalf("/top missing snapshot label:\n%s", top)
	}
	var vars struct {
		Pipette Snapshot `json:"pipette"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Pipette.Label != "bfs/pipette/Rd" || vars.Pipette.Cycle != 11 {
		t.Fatalf("expvar snapshot = %+v", vars.Pipette)
	}
	if err := vars.Pipette.Cores[0].Conserved(); err != nil {
		t.Fatalf("served snapshot not conserved: %v", err)
	}
	if pprof := get("/debug/pprof/cmdline"); pprof == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}

	snap, at := srv.Current()
	if snap.Label != "bfs/pipette/Rd" || at.IsZero() {
		t.Fatalf("Current() = %+v at %v", snap, at)
	}
}
