// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, speedups, and fixed-width table
// rendering for figure/table reproduction output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Gmean returns the geometric mean of xs (0 for empty input). A
// non-positive, NaN or infinite value indicates a broken measurement — a
// zero-cycle run or a division by zero upstream — and yields an error
// rather than a silently wrong mean.
func Gmean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("stats: gmean of non-finite value %v", x)
		}
		if x <= 0 {
			return 0, fmt.Errorf("stats: gmean of non-positive value %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// KendallTau returns Kendall's rank-correlation coefficient (tau-a)
// between paired samples x and y: the fraction of concordant minus
// discordant pairs over all pairs. +1 means identical ordering, -1 a
// fully reversed one; ties contribute zero to the numerator. The
// correlation harness uses it to compare speedup orderings against the
// reference table. Fewer than two pairs leave the ordering undefined, as
// do non-finite values; both are errors.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: tau of mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: tau needs >= 2 pairs, have %d", len(x))
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return 0, fmt.Errorf("stats: tau of non-finite pair (%v, %v)", x[i], y[i])
		}
	}
	var num, pairs int
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			pairs++
			dx, dy := x[i]-x[j], y[i]-y[j]
			switch p := dx * dy; {
			case p > 0:
				num++
			case p < 0:
				num--
			}
		}
	}
	return float64(num) / float64(pairs), nil
}

// RelErr returns |got-ref| / |ref|, the symmetric-band relative error the
// correlation tolerances are expressed in. A zero reference with a
// non-zero measurement is infinitely wrong; zero against zero is exact.
func RelErr(ref, got float64) float64 {
	if ref == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-ref) / math.Abs(ref)
}

// TVDist returns the total-variation distance between two composition
// vectors (e.g. CPI-stack fractions): half the L1 distance after
// normalizing each to sum to 1. 0 means identical compositions, 1 fully
// disjoint ones. Negative or non-finite components, mismatched lengths,
// and all-zero vectors are errors.
func TVDist(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: tvdist of mismatched lengths %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, fmt.Errorf("stats: tvdist of empty vectors")
	}
	sum := func(xs []float64) (float64, error) {
		s := 0.0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return 0, fmt.Errorf("stats: tvdist component %v", x)
			}
			s += x
		}
		if s == 0 {
			return 0, fmt.Errorf("stats: tvdist of all-zero vector")
		}
		return s, nil
	}
	sp, err := sum(p)
	if err != nil {
		return 0, err
	}
	sq, err := sum(q)
	if err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i]/sp - q[i]/sq)
	}
	return d / 2, nil
}

// Speedup returns base/x — how many times faster x is than base when both
// are durations (cycles).
func Speedup(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(cycles)
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, formatting non-strings with %v and floats
// with two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
