// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, speedups, and fixed-width table
// rendering for figure/table reproduction output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Gmean returns the geometric mean of xs (0 for empty input). A
// non-positive value indicates a broken measurement — a zero-cycle run or
// a negative speedup — and yields an error rather than a silently wrong
// mean.
func Gmean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: gmean of non-positive value %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Speedup returns base/x — how many times faster x is than base when both
// are durations (cycles).
func Speedup(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(cycles)
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, formatting non-strings with %v and floats
// with two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
