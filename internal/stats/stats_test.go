package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g, err := Gmean([]float64{2, 8}); err != nil || math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v, %v", g, err)
	}
	if g, err := Gmean([]float64{5}); err != nil || g != 5 {
		t.Fatalf("gmean(5) = %v, %v", g, err)
	}
	if g, err := Gmean(nil); err != nil || g != 0 {
		t.Fatalf("gmean(nil) = %v, %v", g, err)
	}
}

func TestGmeanErrorsOnNonPositive(t *testing.T) {
	for _, xs := range [][]float64{{1, 0}, {-2}, {3, 4, -1, 5}} {
		g, err := Gmean(xs)
		if err == nil {
			t.Errorf("Gmean(%v) = %v, want error", xs, g)
		}
		if g != 0 {
			t.Errorf("Gmean(%v) = %v with error, want 0", xs, g)
		}
	}
}

// Property: gmean lies between min and max.
func TestGmeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) + 1
			xs = append(xs, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := Gmean(xs)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 100); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("speedup div0 = %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 42)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "1.50", "longer-name", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

// Rows wider than the header must grow the table rather than truncate, and
// rows narrower than the widest row pad with empty cells.
func TestTableRaggedRows(t *testing.T) {
	tb := Table{Header: []string{"a"}}
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	s := tb.String()
	for _, want := range []string{"only", "x", "y", "z"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Every rendered line is padded to the same full width.
	for i, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("line %d width %d != header width %d:\n%s", i+1, len(l), len(lines[0]), s)
		}
	}
}

func TestTableEmptyHeader(t *testing.T) {
	tb := Table{}
	tb.AddRow("cell-1", "cell-2")
	s := tb.String()
	if !strings.Contains(s, "cell-1") || !strings.Contains(s, "cell-2") {
		t.Fatalf("cells missing:\n%s", s)
	}
	if strings.Contains(s, "==") {
		t.Fatalf("unexpected title banner:\n%s", s)
	}
}

// Columns align: each cell starts at the same rune offset on every line.
func TestTableWidthAlignment(t *testing.T) {
	tb := Table{Header: []string{"col", "c"}}
	tb.AddRow("tiny", "very-wide-cell")
	tb.AddRow("a-much-longer-cell", "x")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Column 1 is padded to the widest cell (18 chars) + 2 spaces.
	wantOff := len("a-much-longer-cell") + 2
	for _, pair := range []struct{ line, cell string }{
		{lines[0], "c"},
		{lines[2], "very-wide-cell"},
		{lines[3], "x"},
	} {
		if got := strings.Index(pair.line, pair.cell); got != wantOff {
			// "c" also prefixes "col"; find it at the offset explicitly.
			if pair.line[wantOff:wantOff+len(pair.cell)] != pair.cell {
				t.Errorf("cell %q at offset %d, want %d: %q", pair.cell, got, wantOff, pair.line)
			}
		}
	}
	for i, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("line %d width %d != %d:\n%s", i+1, len(l), len(lines[0]), s)
		}
	}
}
