package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := Gmean([]float64{5}); g != 5 {
		t.Fatalf("gmean(5) = %v", g)
	}
	if g := Gmean(nil); g != 0 {
		t.Fatalf("gmean(nil) = %v", g)
	}
}

func TestGmeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Gmean([]float64{1, 0})
}

// Property: gmean lies between min and max.
func TestGmeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) + 1
			xs = append(xs, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if len(xs) == 0 {
			return true
		}
		g := Gmean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 100); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("speedup div0 = %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 42)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "1.50", "longer-name", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}
