package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g, err := Gmean([]float64{2, 8}); err != nil || math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v, %v", g, err)
	}
	if g, err := Gmean([]float64{5}); err != nil || g != 5 {
		t.Fatalf("gmean(5) = %v, %v", g, err)
	}
	if g, err := Gmean(nil); err != nil || g != 0 {
		t.Fatalf("gmean(nil) = %v, %v", g, err)
	}
}

func TestGmeanErrorsOnNonPositive(t *testing.T) {
	for _, xs := range [][]float64{{1, 0}, {-2}, {3, 4, -1, 5}} {
		g, err := Gmean(xs)
		if err == nil {
			t.Errorf("Gmean(%v) = %v, want error", xs, g)
		}
		if g != 0 {
			t.Errorf("Gmean(%v) = %v with error, want 0", xs, g)
		}
	}
}

// Property: gmean lies between min and max.
func TestGmeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) + 1
			xs = append(xs, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := Gmean(xs)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Non-finite inputs must error out rather than poison the mean: NaN
// passes neither the <= 0 nor the log path without one.
func TestGmeanNonFinite(t *testing.T) {
	for _, xs := range [][]float64{
		{math.NaN()},
		{1, math.NaN(), 2},
		{math.Inf(1)},
		{2, math.Inf(-1)},
	} {
		g, err := Gmean(xs)
		if err == nil {
			t.Errorf("Gmean(%v) = %v, want error", xs, g)
		}
		if g != 0 {
			t.Errorf("Gmean(%v) = %v with error, want 0", xs, g)
		}
	}
}

func TestKendallTau(t *testing.T) {
	tau := func(x, y []float64) float64 {
		t.Helper()
		v, err := KendallTau(x, y)
		if err != nil {
			t.Fatalf("tau(%v, %v): %v", x, y, err)
		}
		return v
	}
	if v := tau([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); v != 1 {
		t.Errorf("identical ordering tau = %v, want 1", v)
	}
	if v := tau([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}); v != -1 {
		t.Errorf("reversed ordering tau = %v, want -1", v)
	}
	// One adjacent swap among 4: 5 concordant, 1 discordant of 6 pairs.
	if v := tau([]float64{1, 2, 3, 4}, []float64{2, 1, 3, 4}); math.Abs(v-4.0/6) > 1e-12 {
		t.Errorf("adjacent-swap tau = %v, want %v", v, 4.0/6)
	}
	// Ties drop pairs from the numerator but not the denominator.
	if v := tau([]float64{1, 1, 2}, []float64{1, 2, 3}); math.Abs(v-2.0/3) > 1e-12 {
		t.Errorf("tied tau = %v, want %v", v, 2.0/3)
	}
}

// A single element (or none) leaves the ordering undefined: error, never
// a silent 0 or 1.
func TestKendallTauDegenerate(t *testing.T) {
	cases := []struct{ x, y []float64 }{
		{[]float64{1}, []float64{2}},
		{nil, nil},
		{[]float64{1, 2}, []float64{3}},
		{[]float64{1, math.NaN()}, []float64{1, 2}},
		{[]float64{1, 2}, []float64{math.Inf(1), 2}},
	}
	for _, c := range cases {
		if v, err := KendallTau(c.x, c.y); err == nil {
			t.Errorf("KendallTau(%v, %v) = %v, want error", c.x, c.y, v)
		}
	}
}

func TestRelErr(t *testing.T) {
	if v := RelErr(2, 1); v != 0.5 {
		t.Errorf("RelErr(2,1) = %v", v)
	}
	if v := RelErr(-2, -3); v != 0.5 {
		t.Errorf("RelErr(-2,-3) = %v", v)
	}
	if v := RelErr(0, 0); v != 0 {
		t.Errorf("RelErr(0,0) = %v", v)
	}
	if v := RelErr(0, 1); !math.IsInf(v, 1) {
		t.Errorf("RelErr(0,1) = %v, want +Inf", v)
	}
}

func TestTVDist(t *testing.T) {
	if v, err := TVDist([]float64{1, 0}, []float64{1, 0}); err != nil || v != 0 {
		t.Errorf("identical TVDist = %v, %v", v, err)
	}
	if v, err := TVDist([]float64{1, 0}, []float64{0, 1}); err != nil || v != 1 {
		t.Errorf("disjoint TVDist = %v, %v", v, err)
	}
	// Scale-invariant: compositions are normalized before comparing.
	if v, err := TVDist([]float64{2, 2}, []float64{30, 10}); err != nil || math.Abs(v-0.25) > 1e-12 {
		t.Errorf("TVDist = %v, %v, want 0.25", v, err)
	}
	for _, c := range [][2][]float64{
		{{1, 2}, {1}},
		{{}, {}},
		{{0, 0}, {1, 0}},
		{{-1, 2}, {1, 0}},
		{{1, math.NaN()}, {1, 0}},
	} {
		if v, err := TVDist(c[0], c[1]); err == nil {
			t.Errorf("TVDist(%v, %v) = %v, want error", c[0], c[1], v)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 100); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("speedup div0 = %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 42)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "1.50", "longer-name", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

// Rows wider than the header must grow the table rather than truncate, and
// rows narrower than the widest row pad with empty cells.
func TestTableRaggedRows(t *testing.T) {
	tb := Table{Header: []string{"a"}}
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	s := tb.String()
	for _, want := range []string{"only", "x", "y", "z"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Every rendered line is padded to the same full width.
	for i, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("line %d width %d != header width %d:\n%s", i+1, len(l), len(lines[0]), s)
		}
	}
}

// A table with no rows (e.g. a correlation section whose apps were all
// filtered out) still renders its header and separator.
func TestTableNoRows(t *testing.T) {
	tb := Table{Title: "empty", Header: []string{"a", "b"}}
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 { // title, header, separator
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	for _, want := range []string{"== empty ==", "a", "b", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTableEmptyHeader(t *testing.T) {
	tb := Table{}
	tb.AddRow("cell-1", "cell-2")
	s := tb.String()
	if !strings.Contains(s, "cell-1") || !strings.Contains(s, "cell-2") {
		t.Fatalf("cells missing:\n%s", s)
	}
	if strings.Contains(s, "==") {
		t.Fatalf("unexpected title banner:\n%s", s)
	}
}

// Columns align: each cell starts at the same rune offset on every line.
func TestTableWidthAlignment(t *testing.T) {
	tb := Table{Header: []string{"col", "c"}}
	tb.AddRow("tiny", "very-wide-cell")
	tb.AddRow("a-much-longer-cell", "x")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Column 1 is padded to the widest cell (18 chars) + 2 spaces.
	wantOff := len("a-much-longer-cell") + 2
	for _, pair := range []struct{ line, cell string }{
		{lines[0], "c"},
		{lines[2], "very-wide-cell"},
		{lines[3], "x"},
	} {
		if got := strings.Index(pair.line, pair.cell); got != wantOff {
			// "c" also prefixes "col"; find it at the offset explicitly.
			if pair.line[wantOff:wantOff+len(pair.cell)] != pair.cell {
				t.Errorf("cell %q at offset %d, want %d: %q", pair.cell, got, wantOff, pair.line)
			}
		}
	}
	for i, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("line %d width %d != %d:\n%s", i+1, len(l), len(lines[0]), s)
		}
	}
}
