// Speculative-epoch support: paired endpoint prediction.
//
// Connector traffic on the benchmark systems is dense (up to ~1 send/cycle
// on the bottleneck hop), so the speculative kernel cannot wait for
// connector-quiet epochs — it predicts *through* the traffic. Each cycle of
// an epoch, a connector is stepped twice, once in each endpoint's shard:
//
//   - The producer shard (SpecSrcTick) uses the real source queue and core,
//     plus a SrcView replica of the consumer queue's occupancy and skip
//     state, and applies the producer-side effects of its predicted action
//     for real (dequeue, commit, FreePhys).
//   - The consumer shard (SpecDstTick) uses the real destination queue and
//     core, plus a replica clone of the source queue, and applies the
//     consumer-side effects for real (AllocPhys, enqueue, MarkReady).
//
// Both sides log their predicted action per cycle together with the true
// half of the gating state they own. Validation reconciles the two logs:
// an agreed action is provably the barrier kernel's action, because each
// side vouches for the half of the gate it holds for real — the producer
// for "head committed and dequeuable", the consumer for "slot and physical
// register available" — and a both-idle outcome while the true gates would
// forward is impossible (the producer would have classified it as a stall
// or forward). Skip propagation is the one decision where *both* halves
// are remote to someone, so validation recomputes its predicate from the
// logged true halves instead of trusting either side's replica. The first
// cycle where the logs disagree (or a side's applied skip decision differs
// from the recomputed truth) is the epoch's divergence point.
package connector

import "pipette/internal/queue"

// Spec action kinds (SpecAction.Kind).
const (
	SpecIdle      uint8 = iota // nothing to forward
	SpecForward                // dequeued/enqueued one value
	SpecStall                  // head ready but no receive slot (CreditStall)
	SpecAllocFail              // consumer side: no physical register (always aborts)
)

// SpecAction is one endpoint's predicted connector behavior for one cycle.
type SpecAction struct {
	Kind      uint8
	SkipProp  bool // this side applied a skip propagation
	Ctrl      bool
	SrcSkip   bool // producer side: real srcQ.SkipPending before the step
	ScanOk    bool // producer side: real srcQ has a CV pending
	DstSkip   bool // consumer side: real dstQ.SkipPending before the step
	SrcCanDeq bool // producer side: real srcQ.CanDeq after the step (done scan)
	Val       uint64
}

// SrcView is the producer shard's replica of the consumer queue: occupancy
// for credit flow and the skip-pending flag. Synced at epoch start.
type SrcView struct {
	occ  int
	cap  int
	skip bool
}

// SpecSupported reports whether the speculative kernel can predict this
// connector (single-value width, distinct endpoint cores).
func (c *Connector) SpecSupported() bool { return c.width == 1 && c.src.ID() != c.dst.ID() }

// SrcCore and DstCore return the endpoint core ids (shard assignment).
func (c *Connector) SrcCore() int { return c.src.ID() }

// DstCore returns the consumer core id.
func (c *Connector) DstCore() int { return c.dst.ID() }

// NewSrcQReplica builds an empty clone-target for the source queue.
func (c *Connector) NewSrcQReplica() *queue.Queue {
	return queue.NewQueue(c.srcQ.ID, c.srcQ.Cap)
}

// SyncSrcView primes the producer shard's consumer replica at epoch start.
func (c *Connector) SyncSrcView(v *SrcView) {
	v.occ = int(c.dstQ.SpecTail - c.dstQ.CommHead)
	v.cap = c.dstQ.Cap
	v.skip = c.dstQ.SkipPending
}

// SyncSrcReplica primes the consumer shard's source-queue replica.
func (c *Connector) SyncSrcReplica(rq *queue.Queue) { c.srcQ.CopyInto(rq) }

// SpecSrcTick steps the producer side for one epoch cycle: real source
// queue and core, replica view of the consumer.
func (c *Connector) SpecSrcTick(now uint64, v *SrcView, log *[]SpecAction) {
	a := SpecAction{SrcSkip: c.srcQ.SkipPending}
	if !a.SrcSkip {
		_, _, a.ScanOk = c.srcQ.SkipScan()
		if v.skip && !a.ScanOk {
			c.srcQ.SkipPending = true
			a.SkipProp = true
		}
	}
	switch {
	case !c.srcQ.CanDeq() || c.srcQ.Head().ReadyAt > now:
		// Idle: nothing committed to forward.
	case v.occ >= v.cap:
		a.Kind = SpecStall
	default:
		e := *c.srcQ.Deq()
		c.src.FreePhys(int32(c.srcQ.CommitDeq()))
		v.occ++
		a.Kind = SpecForward
		a.Val, a.Ctrl = e.Val, e.Ctrl
		if e.Ctrl {
			v.skip = false // mirror the consumer Enq clearing SkipPending
		}
	}
	a.SrcCanDeq = c.srcQ.CanDeq()
	*log = append(*log, a)
}

// SpecDstTick steps the consumer side for one epoch cycle: real
// destination queue and core, replica of the source queue.
func (c *Connector) SpecDstTick(now uint64, rq *queue.Queue, log *[]SpecAction) {
	a := SpecAction{DstSkip: c.dstQ.SkipPending}
	if a.DstSkip && !rq.SkipPending {
		if _, _, ok := rq.SkipScan(); !ok {
			rq.SkipPending = true
			a.SkipProp = true
		}
	}
	switch {
	case !rq.CanDeq() || rq.Head().ReadyAt > now:
	case !c.dstQ.CanEnq():
		a.Kind = SpecStall
	default:
		phys, ok := c.dst.AllocPhys()
		if !ok {
			a.Kind = SpecAllocFail
			break
		}
		e := *rq.Deq()
		rq.CommitDeq()
		seq := c.dstQ.Enq(e.Val, e.Ctrl, int(phys))
		c.dstQ.MarkReady(seq, now+c.latency)
		a.Kind = SpecForward
		a.Val, a.Ctrl = e.Val, e.Ctrl
	}
	*log = append(*log, a)
}

// SpecReconcile compares the paired logs for one cycle and reports whether
// they describe the same (hence true) connector action. An agreed forward
// or stall is the barrier kernel's behavior by the ownership argument in
// the package comment; the skip decision is re-derived from the logged
// true halves.
func SpecReconcile(s, d *SpecAction) bool {
	trueProp := d.DstSkip && !s.SrcSkip && !s.ScanOk
	if s.SkipProp != trueProp || d.SkipProp != trueProp {
		return false
	}
	if s.Kind != d.Kind {
		return false
	}
	if s.Kind == SpecForward && (s.Val != d.Val || s.Ctrl != d.Ctrl) {
		return false
	}
	return s.Kind != SpecAllocFail
}

// SpecCommit applies an epoch's agreed actions to the connector's
// observable accounting: traffic stats and the activity watermark
// consulted by NextEvent. start is the cycle before the epoch's first
// offset.
func (c *Connector) SpecCommit(start uint64, actions []SpecAction) {
	for i := range actions {
		a := &actions[i]
		switch a.Kind {
		case SpecForward:
			c.Stats.Sent++
			if a.Ctrl {
				c.Stats.CVsSent++
			}
		case SpecStall:
			c.Stats.CreditStall++
		}
		if a.Kind == SpecForward || a.SkipProp {
			c.activeAt = start + uint64(i) + 1
		}
	}
}
