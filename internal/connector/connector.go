// Package connector implements cross-core queues (Sec. IV-C): a simple FSM
// on the producer core that streams committed values from a local queue to a
// queue on a consumer core over the on-chip network, with credit-based flow
// control (the free slots of the receiving queue are the credits — a value
// is sent only when a receive slot is reserved, so the receiver's state is
// strictly bounded by its capacity).
//
// skip_to_ctrl interacts across cores by propagating the consumer queue's
// skip-pending flag back to the producer queue, so the producer's next data
// enqueue traps to its enqueue control handler exactly as in the
// single-core case.
package connector

import (
	"pipette/internal/core"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// Stats counts connector traffic.
type Stats struct {
	Sent        uint64
	CVsSent     uint64
	CreditStall uint64 // cycles blocked with data ready but no receive slot
}

// Connector streams srcQ on the producer core into dstQ on the consumer.
type Connector struct {
	src     *core.Core
	dst     *core.Core
	srcQ    *queue.Queue
	dstQ    *queue.Queue
	latency uint64 // on-chip network latency in cycles
	width   int    // values per cycle

	Stats Stats
}

// New wires a connector; latency is the NoC hop delay, width the values
// forwarded per cycle.
func New(src *core.Core, srcQ uint8, dst *core.Core, dstQ uint8, latency uint64, width int) *Connector {
	if width <= 0 {
		width = 1
	}
	return &Connector{
		src: src, dst: dst,
		srcQ: src.QRM().Q(srcQ), dstQ: dst.QRM().Q(dstQ),
		latency: latency, width: width,
	}
}

// Tick forwards up to width committed values this cycle.
func (c *Connector) Tick(now uint64) {
	// Propagate a blocked skip_to_ctrl on the consumer side back to the
	// producer queue, unless a CV is already on the way.
	if c.dstQ.SkipPending && !c.srcQ.SkipPending {
		if _, _, ok := c.srcQ.SkipScan(); !ok {
			c.srcQ.SkipPending = true
		}
	}
	for i := 0; i < c.width; i++ {
		if !c.srcQ.CanDeq() || c.srcQ.Head().ReadyAt > now {
			return
		}
		if !c.dstQ.CanEnq() {
			c.Stats.CreditStall++
			return
		}
		phys, ok := c.dst.AllocPhys()
		if !ok {
			return
		}
		e := *c.srcQ.Deq()
		c.src.FreePhys(int32(c.srcQ.CommitDeq()))
		seq := c.dstQ.Enq(e.Val, e.Ctrl, int(phys))
		c.dstQ.MarkReady(seq, now+c.latency)
		c.Stats.Sent++
		if e.Ctrl {
			c.Stats.CVsSent++
		}
		if tr := c.src.Tracer(); tr != nil {
			tr.Emit(telemetry.EvConnSend, int16(c.src.ID()), telemetry.UnitConnector,
				uint64(c.dst.ID())<<8|uint64(c.dstQ.ID), e.Val)
		}
	}
}

// Drained reports whether the connector has nothing left to forward.
// In-flight values already occupy receiver slots, so source emptiness is
// sufficient.
func (c *Connector) Drained() bool { return !c.srcQ.CanDeq() }
