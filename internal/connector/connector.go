// Package connector implements cross-core queues (Sec. IV-C): a simple FSM
// on the producer core that streams committed values from a local queue to a
// queue on a consumer core over the on-chip network, with credit-based flow
// control (the free slots of the receiving queue are the credits — a value
// is sent only when a receive slot is reserved, so the receiver's state is
// strictly bounded by its capacity).
//
// skip_to_ctrl interacts across cores by propagating the consumer queue's
// skip-pending flag back to the producer queue, so the producer's next data
// enqueue traps to its enqueue control handler exactly as in the
// single-core case.
package connector

import (
	"pipette/internal/core"
	"pipette/internal/queue"
	"pipette/internal/telemetry"
)

// Stats counts connector traffic.
type Stats struct {
	Sent        uint64
	CVsSent     uint64
	CreditStall uint64 // cycles blocked with data ready but no receive slot
}

// Connector streams srcQ on the producer core into dstQ on the consumer.
type Connector struct {
	src     *core.Core
	dst     *core.Core
	srcQ    *queue.Queue
	dstQ    *queue.Queue
	latency uint64 // on-chip network latency in cycles
	width   int    // values per cycle

	// activeAt is the last cycle the connector mutated any state (forwarded
	// a value or propagated a skip). While activeAt == now it reports
	// NextEvent = now+1, because its action may have unblocked a thread on
	// either core. Scratch: not serialized; re-established by the first
	// stepped cycle after a restore.
	activeAt uint64

	Stats Stats
}

// New wires a connector; latency is the NoC hop delay, width the values
// forwarded per cycle.
func New(src *core.Core, srcQ uint8, dst *core.Core, dstQ uint8, latency uint64, width int) *Connector {
	if width <= 0 {
		width = 1
	}
	return &Connector{
		src: src, dst: dst,
		srcQ: src.QRM().Q(srcQ), dstQ: dst.QRM().Q(dstQ),
		latency: latency, width: width,
	}
}

// Tick forwards up to width committed values this cycle.
func (c *Connector) Tick(now uint64) {
	// Propagate a blocked skip_to_ctrl on the consumer side back to the
	// producer queue, unless a CV is already on the way.
	if c.dstQ.SkipPending && !c.srcQ.SkipPending {
		if _, _, ok := c.srcQ.SkipScan(); !ok {
			c.srcQ.SkipPending = true
			c.activeAt = now
		}
	}
	for i := 0; i < c.width; i++ {
		if !c.srcQ.CanDeq() || c.srcQ.Head().ReadyAt > now {
			return
		}
		if !c.dstQ.CanEnq() {
			c.Stats.CreditStall++
			return
		}
		phys, ok := c.dst.AllocPhys()
		if !ok {
			return
		}
		e := *c.srcQ.Deq()
		c.src.FreePhys(int32(c.srcQ.CommitDeq()))
		seq := c.dstQ.Enq(e.Val, e.Ctrl, int(phys))
		c.dstQ.MarkReady(seq, now+c.latency)
		c.activeAt = now
		c.Stats.Sent++
		if e.Ctrl {
			c.Stats.CVsSent++
		}
		if tr := c.src.Tracer(); tr != nil {
			tr.Emit(telemetry.EvConnSend, int16(c.src.ID()), telemetry.UnitConnector,
				uint64(c.dst.ID())<<8|uint64(c.dstQ.ID), e.Val)
		}
	}
}

// Drained reports whether the connector has nothing left to forward.
// In-flight values already occupy receiver slots, so source emptiness is
// sufficient.
func (c *Connector) Drained() bool { return !c.srcQ.CanDeq() }

// Endpoints returns the wiring (producer core/queue, consumer core/queue)
// for observability labels — the introspection endpoint names connector
// rows with it.
func (c *Connector) Endpoints() (srcCore int, srcQ uint8, dstCore int, dstQ uint8) {
	return c.src.ID(), uint8(c.srcQ.ID), c.dst.ID(), uint8(c.dstQ.ID)
}

// noEvent mirrors sim.NoEvent; the packages cannot share the constant
// without an import cycle.
const noEvent = ^uint64(0)

// NextEvent returns the earliest cycle > now at which ticking the
// connector could change state, assuming no other component acts first
// (the clocked-component contract; see internal/sim/component.go). A
// forward performed this cycle reports now+1 unconditionally: it freed a
// producer slot and filled a consumer slot, and the affected cores must be
// ticked before any fast-forward. The only self-scheduled timer is the
// source head's ready time; empty source, uncommitted head and full
// destination are all cleared by other components' busy ticks.
func (c *Connector) NextEvent(now uint64) uint64 {
	if c.activeAt >= now {
		return now + 1
	}
	if c.dstQ.SkipPending && !c.srcQ.SkipPending {
		if _, _, ok := c.srcQ.SkipScan(); !ok {
			return now + 1 // skip propagation pending (defensive; Tick handles it)
		}
	}
	if !c.srcQ.CanDeq() {
		return noEvent
	}
	h := c.srcQ.Head()
	if h.ReadyAt == queue.NotReady {
		return noEvent // producer has not committed; its commit is a busy tick
	}
	if h.ReadyAt > now {
		return h.ReadyAt
	}
	if !c.dstQ.CanEnq() {
		return noEvent // credit returns with the consumer's dequeue commit
	}
	return now + 1 // head ready and a slot reserved; forwards next tick
}

// FastForward credits the credit-stall cycles the skipped ticks (from, to]
// would have counted. The blocking condition is constant across the span:
// NextEvent returns the head's ready time while it lies in the future, so a
// jump can only cross cycles where the head was already ready, and a full
// destination cannot drain while every component is quiescent.
func (c *Connector) FastForward(from, to uint64) {
	if !c.srcQ.CanDeq() {
		return
	}
	h := c.srcQ.Head()
	if h.ReadyAt != queue.NotReady && h.ReadyAt <= from && !c.dstQ.CanEnq() {
		c.Stats.CreditStall += to - from
	}
}
