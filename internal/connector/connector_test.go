package connector

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/mem"
)

func twoCores(t *testing.T) (*core.Core, *core.Core) {
	t.Helper()
	m := mem.New()
	h := cache.New(cache.DefaultConfig(), 2)
	return core.New(0, core.DefaultConfig(), m, h.Port(0)),
		core.New(1, core.DefaultConfig(), m, h.Port(1))
}

func feed(t *testing.T, c *core.Core, q uint8, val uint64, ctrl bool, ready uint64) {
	t.Helper()
	phys, ok := c.AllocPhys()
	if !ok {
		t.Fatal("no phys")
	}
	qq := c.QRM().Q(q)
	seq := qq.Enq(val, ctrl, int(phys))
	qq.MarkReady(seq, ready)
}

func TestForwardsInOrderWithLatency(t *testing.T) {
	a, b := twoCores(t)
	conn := New(a, 0, b, 2, 10, 1)
	feed(t, a, 0, 11, false, 0)
	feed(t, a, 0, 22, true, 0)
	conn.Tick(1)
	conn.Tick(2)
	dst := b.QRM().Q(2)
	if dst.Occupancy() != 2 {
		t.Fatalf("occupancy %d", dst.Occupancy())
	}
	e1 := dst.Deq()
	if e1.Val != 11 || e1.Ctrl || e1.ReadyAt != 11 {
		t.Fatalf("first = %+v", e1)
	}
	e2 := dst.Deq()
	if e2.Val != 22 || !e2.Ctrl || e2.ReadyAt != 12 {
		t.Fatalf("second = %+v (CV must pass through with latency)", e2)
	}
	if conn.Stats.Sent != 2 || conn.Stats.CVsSent != 1 {
		t.Fatalf("stats %+v", conn.Stats)
	}
}

func TestUncommittedValuesWait(t *testing.T) {
	a, b := twoCores(t)
	conn := New(a, 0, b, 2, 1, 1)
	feed(t, a, 0, 5, false, 100) // producer commits at cycle 100
	conn.Tick(50)
	if b.QRM().Q(2).Occupancy() != 0 {
		t.Fatal("forwarded a speculative value")
	}
	conn.Tick(101)
	if b.QRM().Q(2).Occupancy() != 1 {
		t.Fatal("committed value not forwarded")
	}
}

func TestCreditBackpressure(t *testing.T) {
	a, b := twoCores(t)
	b.SetQueueCaps(map[uint8]int{2: 1})
	conn := New(a, 0, b, 2, 1, 4)
	for i := uint64(0); i < 3; i++ {
		feed(t, a, 0, i, false, 0)
	}
	conn.Tick(1)
	if got := b.QRM().Q(2).Occupancy(); got != 1 {
		t.Fatalf("receiver holds %d, want 1 (credit limit)", got)
	}
	if conn.Stats.CreditStall == 0 {
		t.Fatal("no credit stall recorded")
	}
	if conn.Drained() {
		t.Fatal("source still has entries")
	}
}

func TestSkipPendingPropagates(t *testing.T) {
	a, b := twoCores(t)
	conn := New(a, 0, b, 2, 1, 1)
	b.QRM().Q(2).SkipPending = true
	conn.Tick(1)
	if !a.QRM().Q(0).SkipPending {
		t.Fatal("skip-pending not propagated to the producer queue")
	}
	// With a CV already buffered at the source, propagation must not arm
	// the producer trap (the CV is on its way).
	a2, b2 := twoCores(t)
	conn2 := New(a2, 0, b2, 2, 1, 1)
	feed(t, a2, 0, 9, true, 0)
	b2.QRM().Q(2).SkipPending = true
	conn2.Tick(1)
	if a2.QRM().Q(0).SkipPending {
		t.Fatal("skip-pending armed despite a buffered CV")
	}
}
