package connector

// State is the connector's serializable dynamic state. A connector buffers
// nothing itself — in-flight values already occupy receiver queue slots —
// so only the traffic counters need saving; wiring is structural and is
// re-created by the workload builder before restore.
type State struct {
	Stats Stats
}

// SaveState captures the connector's counters.
func (c *Connector) SaveState() State { return State{Stats: c.Stats} }

// RestoreState overwrites the connector's counters.
func (c *Connector) RestoreState(st State) { c.Stats = st.Stats }

// ResetStats zeroes the traffic counters (fork-after-warmup ROI boundary).
func (c *Connector) ResetStats() { c.Stats = Stats{} }
