package sim_test

import (
	"reflect"
	"testing"

	"pipette/internal/isa"
	"pipette/internal/sim"
)

// chaseSystem builds a single-core pointer-chase workload: a dependent load
// chain through a shuffled ring, so the thread repeatedly waits out memory
// latency with nothing else in flight. Those waits are provably quiescent
// spans — exactly what quiescence fast-forward jumps over — which makes the
// workload a good probe for sample emission inside fast-forwarded regions.
func chaseSystem() *sim.System {
	s := sim.New(sim.DefaultConfig())
	const n = 1 << 12
	arr := s.Mem.AllocWords(n)
	// Stride permutation (stride coprime to n) linking every word into one
	// ring whose successive elements are far apart.
	const stride = 517
	for i := uint64(0); i < n; i++ {
		s.Mem.Write64(arr+i*8, arr+((i*stride)%n)*8)
	}
	a := isa.NewAssembler("chase")
	a.MovU(1, arr)
	a.MovI(2, 3000) // chain length
	a.Label("loop")
	a.Ld8(1, 1, 0) // next = *cur: dependent, serializing
	a.SubI(2, 2, 1)
	a.BneI(2, 0, "loop")
	a.Halt()
	s.Cores[0].Load(0, a.MustLink())
	return s
}

// TestSamplerSegmentBoundariesUnderFastForward asserts the sampler's
// boundary contract: samples are emitted at exact interval multiples even
// when those cycles fall inside fast-forwarded quiescent spans, RunUntil
// segment ends do not emit, drop, or shift samples, and the full series is
// byte-identical whether the run is continuous or chopped into segments,
// fast-forwarded or ticked every cycle.
func TestSamplerSegmentBoundariesUnderFastForward(t *testing.T) {
	const interval = 64

	// Reference: one continuous fast-forwarded run.
	ref := chaseSystem()
	ref.EnableKernelProf()
	refSm := ref.EnableSampling(interval)
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	refSamples := refSm.Samples()
	if len(refSamples) < 5 {
		t.Fatalf("only %d samples; workload too short to test boundaries", len(refSamples))
	}
	for i, smp := range refSamples[:len(refSamples)-1] {
		if smp.Cycle%interval != 0 {
			t.Fatalf("sample %d at cycle %d, not a multiple of %d", i, smp.Cycle, interval)
		}
	}
	if last := refSamples[len(refSamples)-1]; last.Cycle != ref.Now() {
		t.Fatalf("final sample at %d, run finished at %d", last.Cycle, ref.Now())
	}
	// The probe is only meaningful if fast-forward actually engaged.
	if k := ref.ProfSnapshot("").Kernel; k.FFJumps == 0 || k.FFCycles == 0 {
		t.Fatalf("fast-forward never engaged (%+v); workload does not quiesce", k)
	}

	// The same workload chopped into segments whose bounds are coprime to
	// the sampling interval (every segment end lands mid-interval, many
	// inside quiescent spans), with fast-forward on and off.
	for _, ff := range []bool{true, false} {
		s := chaseSystem()
		s.SetFastForward(ff)
		sm := s.EnableSampling(interval)
		const segment = 97
		for !s.Done() {
			before := len(sm.Samples())
			if _, err := s.RunUntil(s.Now() + segment); err != nil {
				t.Fatal(err)
			}
			// A segment end mid-run must not emit a boundary sample: every
			// new sample lies on an interval multiple (or is the final
			// partial sample of a finished run).
			for _, smp := range sm.Samples()[before:] {
				if smp.Cycle%interval != 0 && !(s.Done() && smp.Cycle == s.Now()) {
					t.Fatalf("ff=%v: segment end injected a sample at cycle %d", ff, smp.Cycle)
				}
			}
		}
		if s.Now() != ref.Now() {
			t.Fatalf("ff=%v: segmented run finished at %d, continuous at %d", ff, s.Now(), ref.Now())
		}
		if !reflect.DeepEqual(refSamples, sm.Samples()) {
			t.Fatalf("ff=%v: segmented sample series differs from continuous run (%d vs %d samples)",
				ff, len(sm.Samples()), len(refSamples))
		}
	}
}
