package sim_test

import (
	"strings"
	"testing"

	"pipette/internal/sim"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	f()
}

func TestConnectRejectsDuplicateEndpoints(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 3
	s := sim.New(cfg)
	s.Connect(0, 1, 1, 2)

	mustPanic(t, "source queue already streamed", func() {
		s.Connect(0, 1, 2, 3) // queue 1 on core 0 already has a consumer
	})
	mustPanic(t, "destination queue already fed", func() {
		s.Connect(2, 4, 1, 2) // queue 2 on core 1 already has a producer
	})
	// Distinct endpoints on the same cores stay legal.
	s.Connect(0, 5, 1, 6)
}

func TestConnectRejectsOutOfRangeCore(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	s := sim.New(cfg)
	mustPanic(t, "core index out of range", func() { s.Connect(0, 1, 2, 2) })
	mustPanic(t, "core index out of range", func() { s.Connect(-1, 1, 1, 2) })
}

func TestRunReentryOnFinishedSystem(t *testing.T) {
	// A system with no loaded threads is trivially done: the first Run
	// returns immediately, the second must error instead of silently
	// re-scanning a drained machine.
	s := sim.New(sim.DefaultConfig())
	if _, err := s.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "re-entered") {
		t.Fatalf("second Run err = %v, want re-entry error", err)
	}
	// RunUntil stays valid for segmented loops even after Run finished.
	if _, err := s.RunUntil(10); err != nil {
		t.Fatalf("RunUntil after finished Run: %v", err)
	}
}

func TestSetWorkersClamps(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	s.SetWorkers(0)
	if got := s.Workers(); got != 1 {
		t.Fatalf("SetWorkers(0) -> Workers() = %d, want 1", got)
	}
	s.SetWorkers(-3)
	if got := s.Workers(); got != 1 {
		t.Fatalf("SetWorkers(-3) -> Workers() = %d, want 1", got)
	}
	s.SetWorkers(8)
	if got := s.Workers(); got != 8 {
		t.Fatalf("SetWorkers(8) -> Workers() = %d, want 8", got)
	}
}
