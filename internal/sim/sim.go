// Package sim assembles full systems: N Pipette cores sharing a memory
// hierarchy and functional memory, plus cross-core connectors. It provides
// the deterministic run loop (single goroutine, cycle-by-cycle) with a
// deadlock watchdog, and collects the statistics the experiment harness
// turns into the paper's figures.
package sim

import (
	"fmt"

	"pipette/internal/cache"
	"pipette/internal/connector"
	"pipette/internal/core"
	"pipette/internal/mem"
)

// Config describes a system.
type Config struct {
	Cores          int
	Core           core.Config
	Cache          cache.Config
	NoCLatency     uint64 // connector hop latency
	WatchdogCycles uint64 // fail if no instruction commits for this long
	MaxCycles      uint64 // hard simulation cap (0 = unlimited)
}

// DefaultConfig returns the paper's 1-core system (Table IV).
func DefaultConfig() Config {
	return Config{
		Cores:          1,
		Core:           core.DefaultConfig(),
		Cache:          cache.DefaultConfig(),
		NoCLatency:     12,
		WatchdogCycles: 2_000_000,
	}
}

// System is a runnable simulated machine.
type System struct {
	cfg   Config
	Mem   *mem.Memory
	Hier  *cache.Hierarchy
	Cores []*core.Core
	conns []*connector.Connector
}

// New builds the system; workloads then lay out data in s.Mem and load
// programs onto s.Cores before calling Run.
func New(cfg Config) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	s := &System{cfg: cfg, Mem: mem.New()}
	s.Hier = cache.New(cfg.Cache, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		s.Cores = append(s.Cores, core.New(i, cfg.Core, s.Mem, s.Hier.Port(i)))
	}
	return s
}

// Connect wires queue srcQ on core src to queue dstQ on core dst.
func (s *System) Connect(src int, srcQ uint8, dst int, dstQ uint8) *connector.Connector {
	c := connector.New(s.Cores[src], srcQ, s.Cores[dst], dstQ, s.cfg.NoCLatency, 1)
	s.conns = append(s.conns, c)
	return c
}

// Result summarizes a completed run.
type Result struct {
	Cycles     uint64
	Committed  uint64
	CoreStats  []core.Stats
	CacheStats cache.Stats
}

// IPC returns whole-system committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// CoreIPC returns core i's IPC.
func (r Result) CoreIPC(i int) float64 {
	s := r.CoreStats[i]
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

func (s *System) done() bool {
	for _, c := range s.Cores {
		if !c.Done() {
			return false
		}
	}
	for _, c := range s.conns {
		if !c.Drained() {
			return false
		}
	}
	return true
}

// Run simulates until all threads halt and all units drain. It returns an
// error on deadlock (watchdog) or when MaxCycles is exceeded.
func (s *System) Run() (Result, error) {
	var cycles, lastCommit, lastProgress uint64
	watchdog := s.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	for !s.done() {
		cycles++
		for _, c := range s.Cores {
			c.Cycle()
		}
		for _, c := range s.conns {
			c.Tick(cycles)
		}
		total := uint64(0)
		for _, c := range s.Cores {
			total += c.Committed()
		}
		if total != lastCommit {
			lastCommit, lastProgress = total, cycles
		}
		if cycles-lastProgress > watchdog {
			return s.result(cycles), fmt.Errorf("sim: deadlock — no commit since cycle %d (%d committed)", lastProgress, lastCommit)
		}
		if s.cfg.MaxCycles > 0 && cycles > s.cfg.MaxCycles {
			return s.result(cycles), fmt.Errorf("sim: exceeded MaxCycles=%d", s.cfg.MaxCycles)
		}
	}
	return s.result(cycles), nil
}

func (s *System) result(cycles uint64) Result {
	r := Result{Cycles: cycles, CacheStats: s.Hier.Stats}
	for _, c := range s.Cores {
		st := c.Stats()
		r.CoreStats = append(r.CoreStats, st)
		r.Committed += st.Committed
	}
	return r
}

// DebugState renders all cores' state (used in deadlock reports).
func (s *System) DebugState() string {
	out := ""
	for _, c := range s.Cores {
		out += c.DebugState()
	}
	return out
}
