// Package sim assembles full systems: N Pipette cores sharing a memory
// hierarchy and functional memory, plus cross-core connectors. It provides
// the deterministic run loop (single goroutine, cycle-by-cycle) with a
// deadlock watchdog, and collects the statistics the experiment harness
// turns into the paper's figures.
package sim

import (
	"fmt"

	"pipette/internal/cache"
	"pipette/internal/connector"
	"pipette/internal/core"
	"pipette/internal/mem"
	"pipette/internal/telemetry"
)

// Config describes a system.
type Config struct {
	Cores          int
	Core           core.Config
	Cache          cache.Config
	NoCLatency     uint64 // connector hop latency
	WatchdogCycles uint64 // fail if no instruction commits for this long
	MaxCycles      uint64 // hard simulation cap (0 = unlimited)
}

// DefaultConfig returns the paper's 1-core system (Table IV).
func DefaultConfig() Config {
	return Config{
		Cores:          1,
		Core:           core.DefaultConfig(),
		Cache:          cache.DefaultConfig(),
		NoCLatency:     12,
		WatchdogCycles: 2_000_000,
	}
}

// System is a runnable simulated machine.
type System struct {
	cfg   Config
	Mem   *mem.Memory
	Hier  *cache.Hierarchy
	Cores []*core.Core
	conns []*connector.Connector

	// now is the authoritative cycle counter; it persists across RunUntil
	// segments and through checkpoint save/restore. roiBase is the cycle at
	// the last stats reset: Result.Cycles covers [roiBase, now] so warmup
	// prefixes don't pollute region-of-interest results.
	now     uint64
	roiBase uint64

	// Watchdog scratch (not serialized; re-primed on restore/reset).
	lastCommit   uint64
	lastProgress uint64

	tracer  *telemetry.Tracer
	sampler *telemetry.Sampler
}

// EnableTracing attaches an event tracer to every component (cores, QRMs,
// cache hierarchy; RAs and connectors pick it up through their host cores)
// and returns it. bufCap sizes the ring buffer (<= 0 selects the default).
// Call before loading workloads so builder-created units see it.
func (s *System) EnableTracing(bufCap int) *telemetry.Tracer {
	s.tracer = telemetry.NewTracer(bufCap)
	for _, c := range s.Cores {
		c.AttachTracer(s.tracer)
	}
	s.Hier.SetTracer(s.tracer)
	return s.tracer
}

// EnableSampling attaches a metrics sampler with the given cycle interval
// (0 selects the default) and returns it. Run appends one sample every
// interval cycles.
func (s *System) EnableSampling(interval uint64) *telemetry.Sampler {
	s.sampler = telemetry.NewSampler(interval)
	return s.sampler
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (s *System) Tracer() *telemetry.Tracer { return s.tracer }

// Sampler returns the attached sampler (nil when sampling is disabled).
func (s *System) Sampler() *telemetry.Sampler { return s.sampler }

// sample appends one telemetry sample at the given cycle.
func (s *System) sample(cycle uint64) {
	sm := telemetry.Sample{Cycle: cycle}
	for _, c := range s.Cores {
		cs := c.Sample()
		sm.Committed += cs.Committed
		sm.Cores = append(sm.Cores, cs)
	}
	hs := s.Hier.Stats
	sm.Cache = telemetry.CacheSample{
		L1Hits: hs.L1Hits, L2Hits: hs.L2Hits, L3Hits: hs.L3Hits,
		DRAM: hs.DRAMAccesses, Prefetches: hs.Prefetches,
	}
	s.sampler.Append(sm)
}

// New builds the system; workloads then lay out data in s.Mem and load
// programs onto s.Cores before calling Run.
func New(cfg Config) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	s := &System{cfg: cfg, Mem: mem.New()}
	s.Hier = cache.New(cfg.Cache, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		s.Cores = append(s.Cores, core.New(i, cfg.Core, s.Mem, s.Hier.Port(i)))
	}
	return s
}

// Connect wires queue srcQ on core src to queue dstQ on core dst.
func (s *System) Connect(src int, srcQ uint8, dst int, dstQ uint8) *connector.Connector {
	c := connector.New(s.Cores[src], srcQ, s.Cores[dst], dstQ, s.cfg.NoCLatency, 1)
	s.conns = append(s.conns, c)
	return c
}

// Result summarizes a completed run.
type Result struct {
	Cycles     uint64
	Committed  uint64
	CoreStats  []core.Stats
	CacheStats cache.Stats
}

// IPC returns whole-system committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// CoreIPC returns core i's IPC.
func (r Result) CoreIPC(i int) float64 {
	s := r.CoreStats[i]
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Report converts the result into the canonical run-report schema. Callers
// fill in workload metadata (App/Variant/Input), energy and the telemetry
// summary before emitting it.
func (r Result) Report() telemetry.Report {
	rep := telemetry.Report{
		Schema:    telemetry.ReportSchema,
		Cores:     len(r.CoreStats),
		Cycles:    r.Cycles,
		Committed: r.Committed,
		IPC:       r.IPC(),
	}
	for i, cs := range r.CoreStats {
		tot := float64(cs.CPI.Total())
		if tot == 0 {
			tot = 1
		}
		rep.CoreStats = append(rep.CoreStats, telemetry.CoreReport{
			Committed:   cs.Committed,
			Uops:        cs.Uops,
			IPC:         r.CoreIPC(i),
			Branches:    cs.Branches,
			Mispredicts: cs.Mispredicts,
			CVTraps:     cs.CVTraps,
			EnqTraps:    cs.EnqTraps,
			SkipOps:     cs.SkipOps,
			SkipDiscard: cs.SkipDiscard,
			Enqueues:    cs.Enqueues,
			Dequeues:    cs.Dequeues,
			RegReads:    cs.RegReads,
			RegWrites:   cs.RegWrites,
			CPI: telemetry.CPIReport{
				Issue:   float64(cs.CPI.Issue) / tot,
				Backend: float64(cs.CPI.Backend) / tot,
				Queue:   float64(cs.CPI.Queue) / tot,
				Front:   float64(cs.CPI.Front) / tot,
			},
			MeanMappedRegs: cs.MeanMappedRegs(),
			PeakMappedRegs: cs.QueueOccupancyMax,
			PerThread:      cs.PerThread,
		})
	}
	c := r.CacheStats
	mpki := 0.0
	if r.Committed > 0 {
		mpki = 1000 * float64(c.DRAMAccesses) / float64(r.Committed)
	}
	rep.Cache = telemetry.CacheReport{
		L1Hits: c.L1Hits, L2Hits: c.L2Hits, L3Hits: c.L3Hits,
		DRAMAccesses: c.DRAMAccesses, Prefetches: c.Prefetches,
		Writebacks: c.Writebacks, Invalidations: c.Invalidations,
		MPKI: mpki,
	}
	return rep
}

func (s *System) done() bool {
	for _, c := range s.Cores {
		if !c.Done() {
			return false
		}
	}
	for _, c := range s.conns {
		if !c.Drained() {
			return false
		}
	}
	return true
}

// Now returns the current cycle (absolute: it includes any restored or
// warmup prefix, unlike Result.Cycles which covers the ROI only).
func (s *System) Now() uint64 { return s.now }

// Done reports whether all loaded threads have halted and all units and
// connectors have drained.
func (s *System) Done() bool { return s.done() }

// Run simulates until all threads halt and all units drain. It returns an
// error on deadlock (watchdog) or when MaxCycles is exceeded; the deadlock
// error carries the full DebugState, including the last telemetry snapshot
// (one is taken at the point of failure even when sampling is disabled).
func (s *System) Run() (Result, error) { return s.RunUntil(0) }

// step advances the machine one clock edge.
func (s *System) step(sampleEvery uint64) {
	s.now++
	for _, c := range s.Cores {
		c.Cycle()
	}
	for _, c := range s.conns {
		c.Tick(s.now)
	}
	if sampleEvery != 0 && s.now%sampleEvery == 0 {
		s.sample(s.now)
	}
}

// RunUntil simulates until the workload completes or the absolute cycle
// `until` is reached (0 = no bound), whichever comes first. Stopping at a
// cycle bound is not an error — checkpoint-every loops and divergence
// probes call it repeatedly; use Done to distinguish completion.
func (s *System) RunUntil(until uint64) (Result, error) {
	watchdog := s.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	var sampleEvery uint64
	if s.sampler != nil {
		sampleEvery = s.sampler.Interval
	}
	for !s.done() && (until == 0 || s.now < until) {
		s.step(sampleEvery)
		total := uint64(0)
		for _, c := range s.Cores {
			total += c.Committed()
		}
		if total != s.lastCommit {
			s.lastCommit, s.lastProgress = total, s.now
		}
		if s.now-s.lastProgress > watchdog {
			s.snapshotNow(s.now)
			return s.result(), fmt.Errorf("sim: deadlock — no commit since cycle %d (%d committed)\n%s", s.lastProgress, s.lastCommit, s.DebugState())
		}
		if s.cfg.MaxCycles > 0 && s.now-s.roiBase > s.cfg.MaxCycles {
			s.snapshotNow(s.now)
			return s.result(), fmt.Errorf("sim: exceeded MaxCycles=%d", s.cfg.MaxCycles)
		}
	}
	if s.done() && sampleEvery != 0 && s.now%sampleEvery != 0 {
		s.sample(s.now) // final partial-interval sample so the series covers the whole run
	}
	return s.result(), nil
}

// snapshotNow forces a telemetry sample at the point of failure so error
// reports include queue occupancies and stall reasons.
func (s *System) snapshotNow(cycles uint64) {
	if s.sampler == nil {
		s.sampler = telemetry.NewSampler(0)
	}
	s.sample(cycles)
}

func (s *System) result() Result {
	r := Result{Cycles: s.now - s.roiBase, CacheStats: s.Hier.Stats}
	for _, c := range s.Cores {
		st := c.Stats()
		r.CoreStats = append(r.CoreStats, st)
		r.Committed += st.Committed
	}
	return r
}
