// Package sim assembles full systems: N Pipette cores sharing a memory
// hierarchy and functional memory, plus cross-core connectors. It drives a
// registry of clocked components (see Component) on one authoritative
// clock, with quiescence fast-forward for memory-bound stall phases, a
// deadlock watchdog, and collects the statistics the experiment harness
// turns into the paper's figures.
package sim

import (
	"fmt"
	"time"

	"pipette/internal/cache"
	"pipette/internal/connector"
	"pipette/internal/core"
	"pipette/internal/mem"
	"pipette/internal/profile"
	"pipette/internal/telemetry"
)

// watchdogCheckInterval is how often (in cycles) RunUntil re-scans the
// cores' commit counters for the deadlock watchdog. Progress cycles are
// recovered exactly from Core.LastCommitAt, and the check is additionally
// forced at every cycle where an error could first fire, so the interval
// only bounds bookkeeping staleness — error semantics are identical to a
// per-cycle scan. A variable (not const) so the kernel benchmark can
// measure the cost of the historical per-cycle scan.
var watchdogCheckInterval uint64 = 1024

// Config describes a system.
type Config struct {
	Cores          int
	Core           core.Config
	Cache          cache.Config
	NoCLatency     uint64 // connector hop latency
	WatchdogCycles uint64 // fail if no instruction commits for this long
	MaxCycles      uint64 // hard simulation cap (0 = unlimited)
}

// DefaultConfig returns the paper's 1-core system (Table IV).
func DefaultConfig() Config {
	return Config{
		Cores:          1,
		Core:           core.DefaultConfig(),
		Cache:          cache.DefaultConfig(),
		NoCLatency:     12,
		WatchdogCycles: 2_000_000,
	}
}

// System is a runnable simulated machine.
type System struct {
	cfg   Config
	Mem   *mem.Memory
	Hier  *cache.Hierarchy
	Cores []*core.Core
	conns []*connector.Connector

	// comps is the clocked-component registry RunUntil drives; it is
	// rebuilt at the top of every run segment because builders may attach
	// connectors after construction. See component.go for the tick order.
	// seqComps is the commit-shard subset (memory, hierarchy, connectors)
	// the parallel kernel scans on the driver while the core shards
	// min-reduce their NextEvents on the pool.
	comps    []Component
	seqComps []Component

	// workers is the produce-phase goroutine count (SetWorkers); multi
	// records whether this segment runs the deferred produce/commit split
	// (any multi-core system does, at every worker count, so results never
	// depend on the worker count).
	workers int
	multi   bool

	// connKeys mirrors conns with the wiring endpoints so Connect can
	// reject duplicate registration (a queue streamed by two connectors
	// would be double-consumed — silent registry corruption).
	connKeys []connKey

	// ran guards Run against re-entry on a finished system.
	ran bool

	// now is the authoritative cycle counter; it persists across RunUntil
	// segments and through checkpoint save/restore. roiBase is the cycle at
	// the last stats reset: Result.Cycles covers [roiBase, now] so warmup
	// prefixes don't pollute region-of-interest results.
	now     uint64
	roiBase uint64

	// noFastForward disables quiescence fast-forward (the -no-fastforward
	// escape hatch); results are bit-identical either way, only wall-clock
	// differs.
	noFastForward bool

	// Speculative epoch kernel (SetSpeculate/SetEpoch): like fast-forward
	// and the worker count, an execution strategy — results are
	// bit-identical with it on or off. spec holds the lazily built kernel,
	// specStats the deterministic epoch accounting (see speculate.go).
	speculate bool
	specEpoch uint64
	spec      *specKernel
	specStats profile.SpecStats

	// Watchdog scratch (not serialized; re-primed on restore/reset).
	lastCommit   uint64
	lastProgress uint64

	tracer  *telemetry.Tracer
	sampler *telemetry.Sampler

	// profs holds the per-core cycle-accounting profilers (EnableProfiling);
	// deterministic and guest-side, so profiled runs stay bit-identical.
	// kprof is the host-side kernel timer (EnableKernelProf): wall-clock,
	// nondeterministic, and therefore never part of Result or reports.
	profs []*profile.CoreProf
	kprof *profile.KernelProf

	// failSampler holds the forced point-of-failure snapshot taken when an
	// error fires with sampling disabled, so deadlock reports still carry
	// queue occupancies without permanently attaching a sampler.
	failSampler *telemetry.Sampler
}

// EnableTracing attaches an event tracer to every component (cores, QRMs,
// cache hierarchy; RAs and connectors pick it up through their host cores)
// and returns it. bufCap sizes the ring buffer (<= 0 selects the default).
// Call before loading workloads so builder-created units see it.
func (s *System) EnableTracing(bufCap int) *telemetry.Tracer {
	s.tracer = telemetry.NewTracer(bufCap)
	for _, c := range s.Cores {
		c.AttachTracer(s.tracer)
	}
	s.Hier.SetTracer(s.tracer)
	return s.tracer
}

// EnableSampling attaches a metrics sampler with the given cycle interval
// (0 selects the default) and returns it. Run appends one sample every
// interval cycles.
func (s *System) EnableSampling(interval uint64) *telemetry.Sampler {
	s.sampler = telemetry.NewSampler(interval)
	if s.profs != nil {
		s.sampler.SlotNames = profile.CategoryNames()
	}
	return s.sampler
}

// EnableProfiling attaches a cycle-accounting profiler to every core: each
// cycle's issue slots are attributed to an exhaustive category set (CPI
// stacks), queue occupancies are folded into per-queue histograms, and RA
// completion-buffer occupancy is integrated. The counters are pure
// functions of simulated state, so profiled results are bit-identical
// across -sim-workers settings and with fast-forward on or off. Call
// before Run; calling twice resets the counters.
func (s *System) EnableProfiling() {
	s.profs = s.profs[:0]
	for _, c := range s.Cores {
		p := profile.NewCoreProf(s.cfg.Core.IssueWidth, s.cfg.Core.Threads)
		c.SetProf(p)
		s.profs = append(s.profs, p)
	}
	if s.sampler != nil {
		s.sampler.SlotNames = profile.CategoryNames()
	}
}

// EnableKernelProf attaches the host-side kernel timer: wall-clock spent in
// the produce, sequential-commit and fast-forward phases, plus per-worker
// busy/barrier-wait split on pooled runs. Host timing is nondeterministic,
// so it is exposed only through ProfSnapshot (the -http endpoint), never
// through Result or reports.
func (s *System) EnableKernelProf() { s.kprof = profile.NewKernelProf() }

// Profiling reports whether cycle-accounting profiling is enabled.
func (s *System) Profiling() bool { return len(s.profs) > 0 }

// ProfSnapshot assembles the full introspection snapshot: per-core CPI
// stacks and queue histograms, connector counters, and (when enabled) the
// kernel timing. Call it between RunUntil segments — never concurrently
// with one — so the counters are at a cycle boundary.
func (s *System) ProfSnapshot(label string) profile.Snapshot {
	snap := profile.Snapshot{Label: label, Cycle: s.now, Done: s.done()}
	for i, p := range s.profs {
		snap.Cores = append(snap.Cores, p.Snapshot(i))
	}
	for _, cn := range s.conns {
		sc, sq, dc, dq := cn.Endpoints()
		snap.Connectors = append(snap.Connectors, profile.ConnSnapshot{
			SrcCore: sc, SrcQueue: sq, DstCore: dc, DstQueue: dq,
			Sent: cn.Stats.Sent, CVsSent: cn.Stats.CVsSent, CreditStall: cn.Stats.CreditStall,
		})
	}
	if s.kprof != nil {
		ks := s.kprof.Snapshot()
		snap.Kernel = &ks
	}
	if s.speculate && s.specStats.TotalCycles > 0 {
		st := s.specStats
		snap.Spec = &st
	}
	return snap
}

// SetFastForward enables or disables quiescence fast-forward (enabled by
// default). Disabling forces the kernel to tick every cycle; final cycle
// counts, state hashes and telemetry are identical either way — the switch
// exists as an escape hatch and for the equivalence test matrix.
func (s *System) SetFastForward(enabled bool) { s.noFastForward = !enabled }

// SetPredecode selects, on every core, between the pre-decoded micro-op
// frontend (default) and the raw-Inst interpreter path. Like fast-forward
// it is an execution strategy, not a configuration: results are
// bit-identical either way, only wall-clock differs (-no-predecode is the
// bisection escape hatch; see docs/FRONTEND.md). Safe before or after
// workloads load.
func (s *System) SetPredecode(enabled bool) {
	for _, c := range s.Cores {
		c.SetPredecode(enabled)
	}
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (s *System) Tracer() *telemetry.Tracer { return s.tracer }

// Sampler returns the attached sampler (nil when sampling is disabled).
func (s *System) Sampler() *telemetry.Sampler { return s.sampler }

// sampleInto appends one telemetry sample at the given cycle to sm.
func (s *System) sampleInto(sm *telemetry.Sampler, cycle uint64) {
	smp := telemetry.Sample{Cycle: cycle}
	for _, c := range s.Cores {
		cs := c.Sample()
		smp.Committed += cs.Committed
		smp.Cores = append(smp.Cores, cs)
	}
	hs := s.Hier.Stats
	smp.Cache = telemetry.CacheSample{
		L1Hits: hs.L1Hits, L2Hits: hs.L2Hits, L3Hits: hs.L3Hits,
		DRAM: hs.DRAMAccesses, Prefetches: hs.Prefetches,
	}
	sm.Append(smp)
}

// sample appends one telemetry sample at the given cycle.
func (s *System) sample(cycle uint64) { s.sampleInto(s.sampler, cycle) }

// New builds the system; workloads then lay out data in s.Mem and load
// programs onto s.Cores before calling Run.
func New(cfg Config) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	s := &System{cfg: cfg, Mem: mem.New()}
	s.Hier = cache.New(cfg.Cache, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		s.Cores = append(s.Cores, core.New(i, cfg.Core, s.Mem, s.Hier.Port(i)))
	}
	return s
}

type connKey struct {
	src, dst   int
	srcQ, dstQ uint8
}

// Connect wires queue srcQ on core src to queue dstQ on core dst. It
// panics — with a message naming the wiring — on an out-of-range core index
// or on double registration of an endpoint: a source queue streamed by two
// connectors would be double-consumed and a destination queue fed by two
// would interleave nondeterministically, both silently corrupting the
// canonical component registry.
func (s *System) Connect(src int, srcQ uint8, dst int, dstQ uint8) *connector.Connector {
	if src < 0 || src >= len(s.Cores) || dst < 0 || dst >= len(s.Cores) {
		panic(fmt.Sprintf("sim: Connect(core%d q%d -> core%d q%d): core index out of range (system has %d cores)",
			src, srcQ, dst, dstQ, len(s.Cores)))
	}
	for _, k := range s.connKeys {
		if k.src == src && k.srcQ == srcQ {
			panic(fmt.Sprintf("sim: Connect(core%d q%d -> core%d q%d): source queue already streamed by a connector to core%d q%d",
				src, srcQ, dst, dstQ, k.dst, k.dstQ))
		}
		if k.dst == dst && k.dstQ == dstQ {
			panic(fmt.Sprintf("sim: Connect(core%d q%d -> core%d q%d): destination queue already fed by a connector from core%d q%d",
				src, srcQ, dst, dstQ, k.src, k.srcQ))
		}
	}
	c := connector.New(s.Cores[src], srcQ, s.Cores[dst], dstQ, s.cfg.NoCLatency, 1)
	s.conns = append(s.conns, c)
	s.connKeys = append(s.connKeys, connKey{src: src, dst: dst, srcQ: srcQ, dstQ: dstQ})
	return c
}

// Result summarizes a completed run.
type Result struct {
	Cycles     uint64
	Committed  uint64
	CoreStats  []core.Stats
	CacheStats cache.Stats

	// Prof carries the per-core cycle-accounting snapshots on profiling
	// runs (nil otherwise). Deterministic — host-side kernel timing is
	// deliberately excluded.
	Prof []profile.CoreSnapshot
}

// IPC returns whole-system committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// CoreIPC returns core i's IPC.
func (r Result) CoreIPC(i int) float64 {
	s := r.CoreStats[i]
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Report converts the result into the canonical run-report schema. Callers
// fill in workload metadata (App/Variant/Input), energy and the telemetry
// summary before emitting it.
func (r Result) Report() telemetry.Report {
	rep := telemetry.Report{
		Schema:    telemetry.ReportSchema,
		Cores:     len(r.CoreStats),
		Cycles:    r.Cycles,
		Committed: r.Committed,
		IPC:       r.IPC(),
	}
	for i, cs := range r.CoreStats {
		// A core that never classified a cycle (e.g. zero-commit cores on
		// an errored run) reports explicit zero fractions rather than
		// dividing by a fake total.
		var cpi telemetry.CPIReport
		if tot := float64(cs.CPI.Total()); tot > 0 {
			cpi = telemetry.CPIReport{
				Issue:   float64(cs.CPI.Issue) / tot,
				Backend: float64(cs.CPI.Backend) / tot,
				Queue:   float64(cs.CPI.Queue) / tot,
				Front:   float64(cs.CPI.Front) / tot,
			}
		}
		rep.CoreStats = append(rep.CoreStats, telemetry.CoreReport{
			Committed:      cs.Committed,
			Uops:           cs.Uops,
			IPC:            r.CoreIPC(i),
			Branches:       cs.Branches,
			Mispredicts:    cs.Mispredicts,
			CVTraps:        cs.CVTraps,
			EnqTraps:       cs.EnqTraps,
			SkipOps:        cs.SkipOps,
			SkipDiscard:    cs.SkipDiscard,
			Enqueues:       cs.Enqueues,
			Dequeues:       cs.Dequeues,
			RegReads:       cs.RegReads,
			RegWrites:      cs.RegWrites,
			CPI:            cpi,
			MeanMappedRegs: cs.MeanMappedRegs(),
			PeakMappedRegs: cs.QueueOccupancyMax,
			PerThread:      cs.PerThread,
		})
	}
	c := r.CacheStats
	mpki := 0.0
	if r.Committed > 0 {
		mpki = 1000 * float64(c.DRAMAccesses) / float64(r.Committed)
	}
	rep.Cache = telemetry.CacheReport{
		L1Hits: c.L1Hits, L2Hits: c.L2Hits, L3Hits: c.L3Hits,
		DRAMAccesses: c.DRAMAccesses, Prefetches: c.Prefetches,
		Writebacks: c.Writebacks, Invalidations: c.Invalidations,
		MPKI: mpki,
	}
	for _, ps := range r.Prof {
		slots := map[string]uint64{}
		for cat, n := range ps.Slots {
			if n > 0 {
				slots[profile.Category(cat).String()] = n
			}
		}
		rep.CPIStacks = append(rep.CPIStacks, telemetry.CPIStackReport{
			Core: ps.Core, Width: ps.Width, Cycles: ps.Cycles, Slots: slots,
		})
		for _, q := range ps.Queues {
			rep.QueueHist = append(rep.QueueHist, telemetry.QueueHistReport{
				Core: ps.Core, Queue: q.Queue, HighWater: q.HighWater,
				Counts: append([]uint64(nil), q.Counts...),
			})
		}
	}
	return rep
}

func (s *System) done() bool {
	for _, c := range s.Cores {
		if !c.Done() {
			return false
		}
	}
	for _, c := range s.conns {
		if !c.Drained() {
			return false
		}
	}
	return true
}

// Now returns the current cycle (absolute: it includes any restored or
// warmup prefix, unlike Result.Cycles which covers the ROI only).
func (s *System) Now() uint64 { return s.now }

// Done reports whether all loaded threads have halted and all units and
// connectors have drained.
func (s *System) Done() bool { return s.done() }

// Run simulates until all threads halt and all units drain. It returns an
// error on deadlock (watchdog) or when MaxCycles is exceeded; the deadlock
// error carries the full DebugState, including the last telemetry snapshot
// (one is taken at the point of failure even when sampling is disabled).
// Re-entering Run on a finished system is an error — the completed Result
// was already returned, and re-running would only re-scan a drained machine
// (use RunUntil, whose segmented re-entry is well-defined, for
// checkpoint-style loops).
func (s *System) Run() (Result, error) {
	if s.ran && s.done() {
		return s.result(), fmt.Errorf("sim: Run re-entered on a finished system (all threads halted, units drained); use RunUntil for segmented runs")
	}
	s.ran = true
	return s.RunUntil(0)
}

// step advances the machine one clock edge, ticking every component in
// registry order. Serial systems have no commit phase, so the whole tick
// loop counts as produce time in the kernel profile.
func (s *System) step(sampleEvery uint64) {
	s.now++
	if s.kprof != nil {
		t0 := time.Now()
		for _, c := range s.comps {
			c.Tick(s.now)
		}
		s.kprof.Produce(time.Since(t0))
	} else {
		for _, c := range s.comps {
			c.Tick(s.now)
		}
	}
	if sampleEvery != 0 && s.now%sampleEvery == 0 {
		s.sample(s.now)
	}
}

// fastForward jumps the clock over a provably quiescent span: when every
// component's next possible action lies at cycle t > now+1, the cycles
// (now, t-1] are state no-ops, so they are credited analytically
// (Component.FastForward) instead of ticked, and the telemetry samples that
// would have fallen inside the span are emitted at their exact cycle
// numbers with identical (frozen) contents. The jump never crosses `bound`
// — the run-segment limit or the next error-deadline cycle — so watchdog
// and MaxCycles errors fire at exactly the cycle a ticked run fires them.
func (s *System) fastForward(p *tickPool, bound, sampleEvery uint64) {
	t := s.nextEventWith(p, s.now)
	if t <= s.now+1 {
		return
	}
	target := t - 1
	if bound < target {
		target = bound
	}
	if target <= s.now {
		return
	}
	if sampleEvery == 0 {
		s.jump(target)
		return
	}
	// Jump piecewise, landing exactly on every in-span sample cycle, so
	// cumulative counters (the profiler's slot account, occupancy
	// integrals) are sampled at their per-cycle values — a ticked run and a
	// fast-forwarded run emit byte-identical sample series.
	from := s.now
	for m := from - from%sampleEvery + sampleEvery; m <= target; m += sampleEvery {
		s.jump(m)
		s.sample(m)
	}
	if s.now < target {
		s.jump(target)
	}
}

// jump credits the quiescent cycles (s.now, to] analytically and advances
// the clock. Every FastForward implementation is linear in the span (or a
// no-op), so consecutive jumps compose exactly: crediting (a,b] then (b,c]
// equals crediting (a,c] in one call — which is what makes the piecewise
// sampling split above bit-exact.
func (s *System) jump(to uint64) {
	from := s.now
	for _, c := range s.comps {
		c.FastForward(from, to)
	}
	s.now = to
}

// lastCommitCycle returns the cycle of the most recent architectural commit
// on any core (exact, maintained by the cores themselves), so the hoisted
// watchdog recovers the same progress cycle a per-cycle scan records.
func (s *System) lastCommitCycle() uint64 {
	var last uint64
	for _, c := range s.Cores {
		if at := c.LastCommitAt(); at > last {
			last = at
		}
	}
	return last
}

// errDeadline returns the earliest future cycle at which an error condition
// could first fire given the current progress bookkeeping: the watchdog
// fires at lastProgress+watchdog+1, MaxCycles at roiBase+MaxCycles+1.
func (s *System) errDeadline(watchdog uint64) uint64 {
	dl := s.lastProgress + watchdog + 1
	if s.cfg.MaxCycles > 0 {
		if mc := s.roiBase + s.cfg.MaxCycles + 1; mc < dl {
			dl = mc
		}
	}
	return dl
}

// checkLimits refreshes commit-progress bookkeeping and fires the watchdog
// or MaxCycles error when its deadline cycle is reached. Bookkeeping
// between deadlines is approximate-by-at-most-K cycles, but the recorded
// progress cycle (via lastCommitCycle) and the error cycle (the loop never
// crosses a deadline without checking) are exact, so error semantics are
// identical to the historical per-cycle scan.
func (s *System) checkLimits(watchdog uint64) error {
	total := uint64(0)
	for _, c := range s.Cores {
		total += c.Committed()
	}
	if total != s.lastCommit {
		s.lastCommit, s.lastProgress = total, s.lastCommitCycle()
	}
	if s.now-s.lastProgress > watchdog {
		s.snapshotNow(s.now)
		return fmt.Errorf("sim: deadlock — no commit since cycle %d (%d committed)\n%s", s.lastProgress, s.lastCommit, s.DebugState())
	}
	if s.cfg.MaxCycles > 0 && s.now-s.roiBase > s.cfg.MaxCycles {
		s.snapshotNow(s.now)
		return fmt.Errorf("sim: exceeded MaxCycles=%d", s.cfg.MaxCycles)
	}
	return nil
}

// RunUntil simulates until the workload completes or the absolute cycle
// `until` is reached (0 = no bound), whichever comes first. Stopping at a
// cycle bound is not an error — checkpoint-every loops and divergence
// probes call it repeatedly; use Done to distinguish completion.
func (s *System) RunUntil(until uint64) (Result, error) {
	s.comps = s.components()
	s.multi = len(s.Cores) > 1
	var pool *tickPool
	if s.multi {
		// Multi-core systems always run the deferred produce/commit split —
		// at every worker count — so the results can never depend on the
		// worker count; the pool is just an execution strategy for the
		// produce phase.
		for _, c := range s.Cores {
			c.EnableDeferred()
		}
		s.seqComps = append(s.seqComps[:0], Component(s.Mem), Component(s.Hier))
		for _, c := range s.conns {
			s.seqComps = append(s.seqComps, c)
		}
		if s.workers > 1 {
			pool = newTickPool(s.Cores, s.workers, s.kprof != nil)
			defer func() {
				pool.shutdown()
				if s.kprof != nil {
					s.kprof.Harvest(pool.busyNS(), pool.wallNS)
				}
			}()
		}
	}
	if s.kprof != nil {
		s.kprof.Workers = 1
		if pool != nil {
			s.kprof.Workers = pool.nw
		}
	}
	watchdog := s.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	var sampleEvery uint64
	if s.sampler != nil {
		sampleEvery = s.sampler.Interval
	}
	// The speculative epoch kernel engages only where it is provably
	// equivalent: multi-core (the deferred split is on), no tracer (epochs
	// cannot stage per-cycle event streams), every connector in the
	// supported shape, every unit checkpointable. Anything else silently
	// falls back to the per-cycle barrier kernel.
	var sk *specKernel
	if s.speculate && s.multi && s.tracer == nil {
		sk = s.specKernelFor()
	}
	nextCheck := s.now // prime bookkeeping on the first stepped cycle
	for !s.done() && (until == 0 || s.now < until) {
		if sk != nil {
			if err := s.specAdvance(sk, pool, until, watchdog, sampleEvery); err != nil {
				return s.result(), err
			}
		} else if s.multi {
			s.stepDeferred(pool, sampleEvery)
		} else {
			s.step(sampleEvery)
		}
		if s.now >= nextCheck {
			if err := s.checkLimits(watchdog); err != nil {
				return s.result(), err
			}
			nextCheck = s.now + watchdogCheckInterval
			if dl := s.errDeadline(watchdog); dl < nextCheck {
				nextCheck = dl
			}
		}
		if !s.noFastForward {
			// The jump may not cross the segment bound or the next cycle
			// an error could fire at; land exactly on it instead so the
			// forced check below reproduces per-cycle error semantics.
			bound := s.errDeadline(watchdog)
			if until != 0 && until < bound {
				bound = until
			}
			if s.now < bound {
				from := s.now
				if s.kprof != nil {
					t0 := time.Now()
					s.fastForward(pool, bound, sampleEvery)
					s.kprof.FF(time.Since(t0), s.now-from)
				} else {
					s.fastForward(pool, bound, sampleEvery)
				}
				if sk != nil {
					s.specStats.FFCycles += s.now - from
					s.specStats.TotalCycles += s.now - from
				}
			}
			if s.now >= nextCheck {
				if err := s.checkLimits(watchdog); err != nil {
					return s.result(), err
				}
				nextCheck = s.now + watchdogCheckInterval
				if dl := s.errDeadline(watchdog); dl < nextCheck {
					nextCheck = dl
				}
			}
		}
	}
	if s.done() && sampleEvery != 0 && s.now%sampleEvery != 0 {
		// Final partial-interval sample so the series covers the whole run.
		// Guarded on the last recorded cycle so a RunUntil call on an
		// already-finished system is a no-op instead of duplicating it.
		if last, ok := s.sampler.Last(); !ok || last.Cycle < s.now {
			s.sample(s.now)
		}
	}
	return s.result(), nil
}

// snapshotNow forces a telemetry sample at the point of failure so error
// reports include queue occupancies and stall reasons. When sampling is
// disabled it records the sample on a detached failure-only sampler rather
// than permanently attaching one — later RunUntil segments must not start
// sampling as a side effect of an earlier error.
func (s *System) snapshotNow(cycles uint64) {
	if s.sampler != nil {
		s.sample(cycles)
		return
	}
	s.failSampler = telemetry.NewSampler(0)
	s.sampleInto(s.failSampler, cycles)
}

func (s *System) result() Result {
	r := Result{Cycles: s.now - s.roiBase, CacheStats: s.Hier.Stats}
	for _, c := range s.Cores {
		st := c.Stats()
		r.CoreStats = append(r.CoreStats, st)
		r.Committed += st.Committed
	}
	for i, p := range s.profs {
		r.Prof = append(r.Prof, p.Snapshot(i))
	}
	return r
}
