package sim_test

import (
	"strings"
	"testing"

	"pipette/internal/core"
	"pipette/internal/energy"
	"pipette/internal/isa"
	"pipette/internal/ra"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Producer sends indices 0..N-1; an indirect RA fetches table[i]; consumer
// sums the fetched values.
func TestRAIndirect(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	const N = 300
	table := s.Mem.AllocWords(N)
	var want uint64
	for i := uint64(0); i < N; i++ {
		s.Mem.Write64(table+i*8, i*3+1)
		want += i*3 + 1
	}
	res := s.Mem.AllocWords(1)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.Mov(10, 1)
	p.AddI(1, 1, 1)
	p.BneI(1, N, "loop")
	p.Halt()

	c := isa.NewAssembler("cons")
	c.MapQ(10, 1, isa.QueueOut)
	c.MovI(1, 0)
	c.MovI(2, 0)
	c.Label("loop")
	c.Add(1, 1, 10)
	c.AddI(2, 2, 1)
	c.BneI(2, N, "loop")
	c.MovU(3, res)
	c.St8(3, 0, 1)
	c.Halt()

	unit := ra.New(s.Cores[0], ra.Config{Mode: ra.Indirect, In: 0, Out: 1, Base: table, ElemBytes: 8})
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[0].Load(1, c.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Read64(res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if unit.Stats.Loads != N {
		t.Fatalf("RA loads = %d, want %d", unit.Stats.Loads, N)
	}
}

// Scan RA: producer sends (start,end) pairs; RA emits table[start:end].
func TestRAScan(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	const N = 64
	table := s.Mem.AllocWords(N)
	for i := uint64(0); i < N; i++ {
		s.Mem.Write64(table+i*8, i)
	}
	res := s.Mem.AllocWords(1)

	// Ranges: [0,5), [5,5) empty, [5,20), [20,64)  => sum 0..63.
	ranges := []uint64{0, 5, 5, 5, 5, 20, 20, 64}
	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	for _, v := range ranges {
		p.MovU(1, v)
		p.Mov(10, 1)
	}
	p.Halt()

	c := isa.NewAssembler("cons")
	c.MapQ(10, 1, isa.QueueOut)
	c.MovI(1, 0)
	c.MovI(2, 0)
	c.Label("loop")
	c.Add(1, 1, 10)
	c.AddI(2, 2, 1)
	c.BneI(2, N, "loop")
	c.MovU(3, res)
	c.St8(3, 0, 1)
	c.Halt()

	ra.New(s.Cores[0], ra.Config{Mode: ra.Scan, In: 0, Out: 1, Base: table, ElemBytes: 8})
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[0].Load(1, c.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Mem.Read64(res), uint64(N*(N-1)/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// IndirectPair RA: index v yields table[v] and table[v+1] (the BFS offsets
// pattern).
func TestRAIndirectPair(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	table := s.Mem.AllocWords(10)
	for i := uint64(0); i < 10; i++ {
		s.Mem.Write64(table+i*8, 100+i)
	}
	res := s.Mem.AllocWords(2)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 4)
	p.Mov(10, 1) // index 4 -> outputs 104, 105
	p.Halt()

	c := isa.NewAssembler("cons")
	c.MapQ(10, 1, isa.QueueOut)
	c.Mov(1, 10)
	c.Mov(2, 10)
	c.MovU(3, res)
	c.St8(3, 0, 1)
	c.St8(3, 8, 2)
	c.Halt()

	ra.New(s.Cores[0], ra.Config{Mode: ra.IndirectPair, In: 0, Out: 1, Base: table, ElemBytes: 8})
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[0].Load(1, c.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Mem.Read64(res) != 104 || s.Mem.Read64(res+8) != 105 {
		t.Fatalf("pair = %d,%d", s.Mem.Read64(res), s.Mem.Read64(res+8))
	}
}

// Control values pass through RAs in order relative to the data stream.
func TestRACVPassthrough(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	table := s.Mem.AllocWords(4)
	s.Mem.Write64(table, 11)
	s.Mem.Write64(table+8, 22)
	res := s.Mem.AllocWords(3)

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Mov(10, 1)  // index 0 -> 11
	p.EnqCI(0, 7) // CV 7
	p.MovI(1, 1)
	p.Mov(10, 1) // index 1 -> 22
	p.Halt()

	c := isa.NewAssembler("cons")
	c.MapQ(10, 1, isa.QueueOut)
	c.OnDeqCV("h")
	c.MovU(3, res)
	c.Mov(1, 10) // 11
	c.St8(3, 0, 1)
	c.Label("again")
	c.Mov(1, 10) // traps on CV, handler consumes, then 22
	c.St8(3, 16, 1)
	c.Halt()
	c.Label("h")
	c.St8(3, 8, isa.RHCV)
	c.Jmp("again")

	ra.New(s.Cores[0], ra.Config{Mode: ra.Indirect, In: 0, Out: 1, Base: table, ElemBytes: 8})
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[0].Load(1, c.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Mem.Read64(res) != 11 || s.Mem.Read64(res+8) != 7 || s.Mem.Read64(res+16) != 22 {
		t.Fatalf("got %d,%d,%d want 11,7,22",
			s.Mem.Read64(res), s.Mem.Read64(res+8), s.Mem.Read64(res+16))
	}
}

// Cross-core connector: producer on core 0, consumer on core 1.
func TestConnectorCrossCore(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	s := sim.New(cfg)
	res := s.Mem.AllocWords(1)
	const N = 200

	p := isa.NewAssembler("prod")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(10, 1)
	p.BneI(1, N, "loop")
	p.Halt()

	c := isa.NewAssembler("cons")
	c.MapQ(10, 2, isa.QueueOut)
	c.MovI(1, 0)
	c.MovI(2, 0)
	c.Label("loop")
	c.Add(1, 1, 10)
	c.AddI(2, 2, 1)
	c.BneI(2, N, "loop")
	c.MovU(3, res)
	c.St8(3, 0, 1)
	c.Halt()

	conn := s.Connect(0, 0, 1, 2)
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[1].Load(0, c.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Mem.Read64(res), uint64(N*(N+1)/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if conn.Stats.Sent != N {
		t.Fatalf("connector sent = %d, want %d", conn.Stats.Sent, N)
	}
}

// A genuinely deadlocked program (both threads dequeue first) must trip the
// watchdog instead of hanging.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WatchdogCycles = 5000
	s := sim.New(cfg)

	a := isa.NewAssembler("a")
	a.MapQ(10, 0, isa.QueueOut) // dequeue from q0
	a.MapQ(11, 1, isa.QueueIn)  // enqueue to q1
	a.Mov(11, 10)
	a.Halt()

	b := isa.NewAssembler("b")
	b.MapQ(10, 1, isa.QueueOut)
	b.MapQ(11, 0, isa.QueueIn)
	b.Mov(11, 10)
	b.Halt()

	s.Cores[0].Load(0, a.MustLink())
	s.Cores[0].Load(1, b.MustLink())
	_, err := s.Run()
	if err == nil {
		t.Fatal("watchdog did not fire on deadlock")
	}
	// The error must carry the last telemetry snapshot (forced at failure
	// time even though sampling was never enabled) so deadlock reports show
	// queue occupancies and per-thread stall reasons.
	for _, want := range []string{"deadlock", "telemetry snapshot", "stall=queue-empty"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error missing %q:\n%v", want, err)
		}
	}
}

// A run that ends by exhausting MaxCycles also reports the final snapshot,
// and an explicitly-enabled sampler records the series.
func TestSamplingSeries(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	s.EnableTracing(0)
	s.EnableSampling(64)
	a := isa.NewAssembler("t")
	a.MovI(1, 2000)
	a.Label("l")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "l")
	a.Halt()
	s.Cores[0].Load(0, a.MustLink())
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Sampler().Samples()); n < 10 {
		t.Fatalf("got %d samples for a %d-cycle run at interval 64", n, r.Cycles)
	}
	last, _ := s.Sampler().Last()
	if last.Committed != r.Committed {
		t.Fatalf("final sample committed=%d, result=%d", last.Committed, r.Committed)
	}
	rep := r.Report()
	rep.Telemetry = telemetry.TelemetrySummary(s.Tracer(), s.Sampler(), core.StallNames())
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateReport(strings.NewReader(b.String())); err != nil {
		t.Fatalf("Result.Report does not validate: %v", err)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	res := s.Mem.AllocWords(1)
	arr := s.Mem.AllocWords(4096)
	a := isa.NewAssembler("t")
	a.MovU(1, arr)
	a.MovI(2, 4096)
	a.MovI(3, 0)
	a.Label("loop")
	a.Ld8(4, 1, 0)
	a.Add(3, 3, 4)
	a.AddI(1, 1, 8)
	a.SubI(2, 2, 1)
	a.BneI(2, 0, "loop")
	a.MovU(5, res)
	a.St8(5, 0, 3)
	a.Halt()
	s.Cores[0].Load(0, a.MustLink())
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles)
	if b.CoreDyn <= 0 || b.Static <= 0 || b.Total() <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
	if b.DRAMDyn <= 0 {
		t.Fatalf("streaming workload should touch DRAM: %+v", b)
	}
	if r.IPC() <= 0 || r.IPC() > float64(6) {
		t.Fatalf("IPC out of range: %f", r.IPC())
	}
}

// A three-core relay: values hop core0 -> core1 -> core2 through two
// connectors, with a transform at the middle core.
func TestConnectorRelayChain(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 3
	s := sim.New(cfg)
	res := s.Mem.AllocWords(1)
	const N = 100

	p := isa.NewAssembler("head")
	p.MapQ(10, 0, isa.QueueIn)
	p.MovI(1, 0)
	p.Label("loop")
	p.AddI(1, 1, 1)
	p.Mov(10, 1)
	p.BneI(1, N, "loop")
	p.Halt()

	mid := isa.NewAssembler("mid")
	mid.MapQ(10, 1, isa.QueueOut)
	mid.MapQ(11, 2, isa.QueueIn)
	mid.MovI(2, 0)
	mid.Label("loop")
	mid.ShlI(1, 10, 1) // double each value
	mid.Mov(11, 1)
	mid.AddI(2, 2, 1)
	mid.BneI(2, N, "loop")
	mid.Halt()

	tail := isa.NewAssembler("tail")
	tail.MapQ(10, 3, isa.QueueOut)
	tail.MovI(1, 0)
	tail.MovI(2, 0)
	tail.Label("loop")
	tail.Add(1, 1, 10)
	tail.AddI(2, 2, 1)
	tail.BneI(2, N, "loop")
	tail.MovU(3, res)
	tail.St8(3, 0, 1)
	tail.Halt()

	s.Connect(0, 0, 1, 1)
	s.Connect(1, 2, 2, 3)
	s.Cores[0].Load(0, p.MustLink())
	s.Cores[1].Load(0, mid.MustLink())
	s.Cores[2].Load(0, tail.MustLink())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Mem.Read64(res), uint64(N*(N+1)); got != want {
		t.Fatalf("relay sum = %d, want %d", got, want)
	}
}

func TestResultAccessors(t *testing.T) {
	s := sim.New(sim.DefaultConfig())
	a := isa.NewAssembler("t")
	a.MovI(1, 10)
	a.Label("l")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "l")
	a.Halt()
	s.Cores[0].Load(0, a.MustLink())
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreIPC(0) <= 0 {
		t.Fatal("CoreIPC zero")
	}
	if r.IPC() <= 0 || r.Committed == 0 {
		t.Fatal("empty result")
	}
}
