// Checkpoint/restore for whole systems. The snapshot payload is a gob
// encoding of sysState — plain exported structs, no maps — so identical
// machine states always serialize to identical bytes and StateHash is a
// meaningful equality check. The restore contract (docs/CHECKPOINT.md):
// snapshots hold dynamic state only; the caller reconstructs structural
// state (programs, queue capacities, RAs, connectors) by re-running the
// same deterministic workload builder on an identically configured system,
// either before Restore (resuming a mid-run snapshot) or after it (forking
// a quiesced warmup snapshot).
package sim

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"pipette/internal/cache"
	"pipette/internal/checkpoint"
	"pipette/internal/connector"
	"pipette/internal/core"
	"pipette/internal/mem"
)

// sysState is the complete dynamic state of a System.
type sysState struct {
	Cycle   uint64
	ROIBase uint64
	Mem     mem.State
	Cache   cache.State
	Cores   []core.State
	Conns   []connector.State
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// ConfigJSON returns the configuration as canonical JSON (the form stored
// in snapshot metadata and compared on strict restore).
func (s *System) ConfigJSON() ([]byte, error) { return json.Marshal(s.cfg) }

// snapshotState gathers the complete dynamic state into the snapshot
// struct without serializing it.
func (s *System) snapshotState() (sysState, error) {
	st := sysState{
		Cycle:   s.now,
		ROIBase: s.roiBase,
		Mem:     s.Mem.SaveState(),
		Cache:   s.Hier.SaveState(),
	}
	for _, c := range s.Cores {
		cs, err := c.SaveState()
		if err != nil {
			return sysState{}, err
		}
		st.Cores = append(st.Cores, cs)
	}
	for _, c := range s.conns {
		st.Conns = append(st.Conns, c.SaveState())
	}
	return st, nil
}

// EncodeState serializes the system's dynamic state into a snapshot
// payload.
func (s *System) EncodeState() ([]byte, error) {
	st, err := s.snapshotState()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("sim: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// DiffStates compares the complete dynamic state of two systems field by
// field and returns sorted "path: a != b" lines. It sees everything
// StateHash hashes — in-flight uop timestamps, cache arrays, memory
// contents — so when two hashes disagree this pinpoints where, even for
// divergences invisible in the coarser DebugState dump.
func DiffStates(a, b *System) ([]string, error) {
	sa, err := a.snapshotState()
	if err != nil {
		return nil, err
	}
	sb, err := b.snapshotState()
	if err != nil {
		return nil, err
	}
	return checkpoint.DiffJSON(sa, sb)
}

// DecodeState overwrites the system's dynamic state from a snapshot
// payload. The system must be structurally identical to the one that was
// saved (same core/queue/cache shape; same programs loaded and units
// attached for any state that references them).
func (s *System) DecodeState(payload []byte) error {
	var st sysState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return fmt.Errorf("sim: decoding state: %w", err)
	}
	if len(st.Cores) != len(s.Cores) {
		return fmt.Errorf("sim: snapshot has %d cores, system has %d", len(st.Cores), len(s.Cores))
	}
	if len(st.Conns) != len(s.conns) {
		return fmt.Errorf("sim: snapshot has %d connectors, system has %d", len(st.Conns), len(s.conns))
	}
	s.Mem.RestoreState(st.Mem)
	if err := s.Hier.RestoreState(st.Cache); err != nil {
		return err
	}
	for i, c := range s.Cores {
		if err := c.RestoreState(st.Cores[i]); err != nil {
			return err
		}
	}
	for i, c := range s.conns {
		c.RestoreState(st.Conns[i])
	}
	s.now = st.Cycle
	s.roiBase = st.ROIBase
	// Re-prime the watchdog: progress is measured from the restore point.
	s.lastProgress = s.now
	s.lastCommit = 0
	for _, c := range s.Cores {
		s.lastCommit += c.Committed()
	}
	return nil
}

// StateHash returns the hex SHA-256 of the canonical state encoding: two
// systems are in identical dynamic states iff their hashes match.
func (s *System) StateHash() (string, error) {
	payload, err := s.EncodeState()
	if err != nil {
		return "", err
	}
	return checkpoint.HashPayload(payload), nil
}

// Save writes a pipette.snapshot/v1 checkpoint of the current state. wl
// records workload provenance for tools that rebuild the builder side from
// the snapshot alone (pipette-sim -resume); pass the zero value when the
// restoring caller supplies its own builder.
func (s *System) Save(w io.Writer, wl checkpoint.Workload) error {
	payload, err := s.EncodeState()
	if err != nil {
		return err
	}
	cfgJSON, err := s.ConfigJSON()
	if err != nil {
		return err
	}
	return checkpoint.Write(w, checkpoint.Meta{
		Cycle:    s.now,
		Config:   cfgJSON,
		Workload: wl,
	}, payload)
}

// Restore reads a checkpoint and overwrites the system's state. It is
// strict: the snapshot's recorded configuration must equal this system's
// byte-for-byte, so a resumed run is cycle-identical to the uninterrupted
// one by construction.
func (s *System) Restore(r io.Reader) (checkpoint.Meta, error) {
	meta, payload, err := checkpoint.Read(r)
	if err != nil {
		return checkpoint.Meta{}, err
	}
	cfgJSON, err := s.ConfigJSON()
	if err != nil {
		return checkpoint.Meta{}, err
	}
	if !bytes.Equal(cfgJSON, meta.Config) {
		return checkpoint.Meta{}, fmt.Errorf("sim: snapshot config mismatch\n  snapshot: %s\n  system:   %s", meta.Config, cfgJSON)
	}
	return meta, s.DecodeState(payload)
}

// RestoreLoose reads a checkpoint into a system whose configuration may
// differ in timing-only knobs (latencies, widths, ports, policies) — the
// basis of pipette-diverge, which forks two differently configured systems
// from one snapshot. Structural shape (core count, threads, physical
// registers, queues, predictor and cache geometry) must still match; those
// checks live in the component RestoreState methods plus the explicit
// guards here. Overriding capacity limits below the snapshot's live
// occupancy is not supported.
func (s *System) RestoreLoose(r io.Reader) (checkpoint.Meta, error) {
	meta, payload, err := checkpoint.Read(r)
	if err != nil {
		return checkpoint.Meta{}, err
	}
	var snapCfg Config
	if len(meta.Config) > 0 {
		if err := json.Unmarshal(meta.Config, &snapCfg); err != nil {
			return checkpoint.Meta{}, fmt.Errorf("sim: decoding snapshot config: %w", err)
		}
		if snapCfg.Cores != s.cfg.Cores {
			return checkpoint.Meta{}, fmt.Errorf("sim: snapshot has %d cores, system has %d", snapCfg.Cores, s.cfg.Cores)
		}
		if snapCfg.Core.Threads != s.cfg.Core.Threads ||
			snapCfg.Core.PhysRegs != s.cfg.Core.PhysRegs ||
			snapCfg.Core.NumQueues != s.cfg.Core.NumQueues ||
			snapCfg.Core.BPredBits != s.cfg.Core.BPredBits {
			return checkpoint.Meta{}, fmt.Errorf("sim: snapshot core shape (threads/physregs/queues/bpred) differs from system")
		}
	}
	return meta, s.DecodeState(payload)
}

// ResetStats zeroes every statistics counter and moves the ROI base to the
// current cycle, so the next Result covers only cycles simulated from here
// on. Timing state (caches, predictor, cycle counter) is untouched.
func (s *System) ResetStats() {
	s.roiBase = s.now
	for _, c := range s.Cores {
		c.ResetStats()
	}
	s.Hier.ResetStats()
	for _, c := range s.conns {
		c.ResetStats()
	}
	s.lastProgress = s.now
	s.lastCommit = 0
}

// PrepareFork returns a completed (quiesced) system to a pristine-but-warm
// state: threads unloaded with their registers freed, the memory allocator
// rewound to its base, and all stats zeroed — while caches, branch
// predictor and the cycle counter stay warm. A snapshot saved after
// PrepareFork can be restored into a fresh system *before* running any
// workload builder; fork-after-warmup sweeps are built on this.
func (s *System) PrepareFork() error {
	if !s.done() {
		return fmt.Errorf("sim: PrepareFork on a machine with in-flight work (cycle %d)", s.now)
	}
	for _, c := range s.Cores {
		c.ResetThreads()
	}
	s.Mem.ResetAllocator()
	s.ResetStats()
	return nil
}
