package sim

import (
	"testing"

	"pipette/internal/isa"
)

// benchKernel runs a compute-bound countdown loop (no fast-forwardable
// spans to speak of) through the ticked kernel with the given watchdog
// check interval, reporting simulated cycles per host second.
func benchKernel(b *testing.B, interval uint64) {
	old := watchdogCheckInterval
	watchdogCheckInterval = interval
	defer func() { watchdogCheckInterval = old }()

	var cycles uint64
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		s.SetFastForward(false)
		a := isa.NewAssembler("t")
		a.MovI(1, 200_000)
		a.Label("l")
		a.SubI(1, 1, 1)
		a.BneI(1, 0, "l")
		a.Halt()
		s.Cores[0].Load(0, a.MustLink())
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkKernelWatchdogPerCycle forces the historical per-cycle commit
// scan (check interval 1); BenchmarkKernelWatchdogHoisted is the shipped
// every-K-cycles scan. The delta is the watchdog-hoist saving.
func BenchmarkKernelWatchdogPerCycle(b *testing.B) { benchKernel(b, 1) }
func BenchmarkKernelWatchdogHoisted(b *testing.B)  { benchKernel(b, watchdogCheckInterval) }
