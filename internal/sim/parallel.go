// The parallel tick kernel: multi-core systems split every cycle into a
// produce phase — each simulated core ticks against frozen shared state,
// buffering its cross-shard effects (deferred cache accesses, functional
// memory writes, staged telemetry) — and a sequential commit phase that
// applies those buffers in canonical core order (see core/deferred.go and
// docs/PARALLEL.md). Because the produce phases are mutually independent
// and the commit phase replays their effects in registry order, the cycle's
// result is bit-identical whether the produce phases run on one goroutine
// or on a worker pool; SetWorkers only chooses the execution strategy.
//
// tickPool is that worker pool: persistent goroutines (the driver doubles
// as worker 0) under a per-phase spin barrier built on atomics — channel
// handoffs cost microseconds, which at ~1 µs per simulated cycle would eat
// the entire speedup. Cores are dealt round-robin to workers; each phase is
// either a produce tick or a per-shard NextEvent min-reduce (the
// fast-forward probe), so the quiescence scan parallelizes too.
package sim

import (
	"runtime"
	"sync/atomic"
	"time"

	"pipette/internal/core"
)

const (
	opTick uint32 = iota // produce phase: tick my cores at p.now
	opNext               // min-reduce NextEvent(p.now) over my cores
	opQuit               // exit the worker goroutine
)

// spinLimit bounds busy-waiting before yielding the OS thread; on hosts
// with fewer cores than workers the barrier degrades to cooperative
// scheduling instead of burning the quantum.
const spinLimit = 128

// padU64 keeps per-worker result slots on separate cache lines.
type padU64 struct {
	v uint64
	_ [7]uint64
}

type tickPool struct {
	cores []*core.Core
	nw    int // total workers, driver included

	// op and now are written by the driver before the epoch release and read
	// by workers after observing it; the epoch/left atomics carry the
	// happens-before edges in both directions.
	op   uint32
	now  uint64
	mins []padU64 // per-worker opNext results

	epoch atomic.Uint32 // incremented by the driver to release a phase
	left  atomic.Int32  // workers yet to finish the current phase

	// Kernel-profiling instrumentation (EnableKernelProf): per-worker busy
	// nanoseconds inside phases and the driver's wall time across them. The
	// barrier's atomics order the worker-side writes before the driver's
	// harvest read; the profiled flag is set before the workers start. All
	// zero-cost when profiled is false (one branch per phase).
	profiled bool
	busy     []padU64 // per-worker ns spent executing phases
	wallNS   uint64   // driver wall ns inside phases (release to barrier exit)
}

// newTickPool starts nw-1 worker goroutines over the given cores. nw is
// clamped to the core count; a pool is only worth building for nw >= 2.
// profiled enables per-worker busy timing (kernel profiling).
func newTickPool(cores []*core.Core, nw int, profiled bool) *tickPool {
	if nw > len(cores) {
		nw = len(cores)
	}
	p := &tickPool{cores: cores, nw: nw, mins: make([]padU64, nw),
		profiled: profiled, busy: make([]padU64, nw)}
	for w := 1; w < nw; w++ {
		go p.worker(w)
	}
	return p
}

func (p *tickPool) worker(w int) {
	seen := uint32(0)
	for {
		for spins := 0; p.epoch.Load() == seen; spins++ {
			if spins >= spinLimit {
				runtime.Gosched()
			}
		}
		seen++
		if p.op == opQuit {
			p.left.Add(-1)
			return
		}
		if p.profiled {
			t0 := time.Now()
			p.do(w)
			p.busy[w].v += uint64(time.Since(t0))
		} else {
			p.do(w)
		}
		p.left.Add(-1)
	}
}

// do runs the current phase over worker w's cores (round-robin deal).
func (p *tickPool) do(w int) {
	switch p.op {
	case opTick:
		for i := w; i < len(p.cores); i += p.nw {
			p.cores[i].Tick(p.now)
		}
	case opNext:
		min := uint64(NoEvent)
		for i := w; i < len(p.cores); i += p.nw {
			if e := p.cores[i].NextEvent(p.now); e < min {
				min = e
			}
			if min <= p.now+1 {
				break // no jump possible; skip the rest of the shard scan
			}
		}
		p.mins[w].v = min
	}
}

// phase releases the workers for one op, does the driver's own share, and
// waits for everyone at the barrier.
func (p *tickPool) phase(op uint32, now uint64) {
	p.op, p.now = op, now
	p.left.Store(int32(p.nw - 1))
	var t0 time.Time
	if p.profiled {
		t0 = time.Now()
	}
	p.epoch.Add(1)
	p.do(0)
	if p.profiled {
		p.busy[0].v += uint64(time.Since(t0))
	}
	for spins := 0; p.left.Load() > 0; spins++ {
		if spins >= spinLimit {
			runtime.Gosched()
		}
	}
	if p.profiled {
		p.wallNS += uint64(time.Since(t0))
	}
}

// tick runs the produce phase of cycle now across all cores.
func (p *tickPool) tick(now uint64) { p.phase(opTick, now) }

// nextEvent min-reduces NextEvent(now) across all cores.
func (p *tickPool) nextEvent(now uint64) uint64 {
	p.phase(opNext, now)
	min := uint64(NoEvent)
	for w := 0; w < p.nw; w++ {
		if p.mins[w].v < min {
			min = p.mins[w].v
		}
	}
	return min
}

// busyNS copies the per-worker busy nanoseconds; call after shutdown (its
// barrier orders the workers' final writes before this read).
func (p *tickPool) busyNS() []uint64 {
	out := make([]uint64, p.nw)
	for w := range out {
		out[w] = p.busy[w].v
	}
	return out
}

// shutdown terminates the worker goroutines (the pool lives for one
// RunUntil segment).
func (p *tickPool) shutdown() {
	p.op = opQuit
	p.left.Store(int32(p.nw - 1))
	p.epoch.Add(1)
	for spins := 0; p.left.Load() > 0; spins++ {
		if spins >= spinLimit {
			runtime.Gosched()
		}
	}
}

// SetWorkers sets how many host goroutines tick simulated cores during the
// produce phase of each cycle (the -sim-workers flag). 1 — the default —
// keeps everything on the driver goroutine; higher values engage the worker
// pool on multi-core systems. Results are bit-identical at any setting:
// multi-core systems always run the produce/commit phase split, and the
// commit phase applies all cross-shard effects in canonical core order
// regardless of who ran the produce phases. Single-core systems ignore the
// setting (there is nothing to parallelize).
func (s *System) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured worker count.
func (s *System) Workers() int { return s.workers }

// stepDeferred is step for multi-core systems: the canonical registry order
// (memory, hierarchy, cores, connectors) becomes produce ticks for the
// cores followed by the sequential commit phase; Mem and Hier keep their
// (no-op) ticks for the component contract.
func (s *System) stepDeferred(p *tickPool, sampleEvery uint64) {
	s.now++
	var t0 time.Time
	if s.kprof != nil {
		t0 = time.Now()
	}
	s.Mem.Tick(s.now)
	s.Hier.Tick(s.now)
	if p != nil {
		p.tick(s.now)
	} else {
		for _, c := range s.Cores {
			c.Tick(s.now)
		}
	}
	if s.kprof != nil {
		s.kprof.Produce(time.Since(t0))
		t0 = time.Now()
	}
	s.commitCycle(s.now)
	if s.kprof != nil {
		s.kprof.Commit(time.Since(t0))
	}
	if sampleEvery != 0 && s.now%sampleEvery == 0 {
		s.sample(s.now)
	}
}

// commitCycle is the sequential commit phase of cycle now: replay each
// core's operation log (deferred cache accesses, staged telemetry) and
// flush its memory write buffer in canonical core order, then tick the
// connectors — which read the patched queue ready-times and emit directly
// to the shared tracer — exactly where the serial registry order put them.
func (s *System) commitCycle(now uint64) {
	if s.tracer != nil {
		s.tracer.Cycle = now
	}
	for _, c := range s.Cores {
		c.FlushPending(now, s.tracer)
	}
	if s.tracer != nil {
		for _, c := range s.Cores {
			c.StagePassthrough(true)
		}
	}
	for _, cn := range s.conns {
		cn.Tick(now)
	}
	if s.tracer != nil {
		for _, c := range s.Cores {
			c.StagePassthrough(false)
		}
	}
}

// nextEventWith is nextEvent with the core scan optionally min-reduced
// per-shard on the pool. The commit-shard components (memory, hierarchy,
// connectors) are scanned on the driver either way.
func (s *System) nextEventWith(p *tickPool, now uint64) uint64 {
	if p == nil {
		return s.nextEvent(now)
	}
	t := uint64(NoEvent)
	for _, c := range s.seqComps {
		e := c.NextEvent(now)
		if e <= now+1 {
			return now + 1
		}
		if e < t {
			t = e
		}
	}
	if m := p.nextEvent(now); m < t {
		t = m
	}
	if t <= now+1 {
		return now + 1
	}
	return t
}
