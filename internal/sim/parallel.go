// The parallel tick kernel: multi-core systems split every cycle into a
// produce phase — each simulated core ticks against frozen shared state,
// buffering its cross-shard effects (deferred cache accesses, functional
// memory writes, staged telemetry) — and a sequential commit phase that
// applies those buffers in canonical core order (see core/deferred.go and
// docs/PARALLEL.md). Because the produce phases are mutually independent
// and the commit phase replays their effects in registry order, the cycle's
// result is bit-identical whether the produce phases run on one goroutine
// or on a worker pool; SetWorkers only chooses the execution strategy.
//
// tickPool is that worker pool: persistent goroutines (the driver doubles
// as worker 0) under a per-phase barrier that spins briefly and then parks
// — pure channel handoffs cost microseconds, which at ~1 µs per simulated
// cycle would eat the entire speedup, but pure spinning burns whole host
// cores through long sequential phases (commit, fast-forward, epoch
// validation). After spinLimit spins a worker publishes itself in a parked
// bitmask and blocks on its wake channel; the driver claims the mask at
// each release and hands every claimed worker a token. The driver parks
// symmetrically while waiting for phase completion (dpark/dwake, signaled
// by the last finisher). Cores are dealt round-robin to workers; a phase is
// a produce tick, a per-shard NextEvent min-reduce (the fast-forward
// probe), or a speculative-epoch shard run (speculate.go).
package sim

import (
	"math/bits"
	"sync/atomic"
	"time"

	"pipette/internal/core"
)

const (
	opTick  uint32 = iota // produce phase: tick my cores at p.now
	opNext                // min-reduce NextEvent(p.now) over my cores
	opEpoch               // run p.efn over my share of p.n items
	opQuit                // exit the worker goroutine
)

// spinLimit bounds busy-waiting before parking on a channel; the common
// barrier handoff stays in the spin window while long sequential phases
// (commit, validation, fast-forward) and oversubscribed hosts fall back to
// blocking instead of burning the scheduler quantum.
const spinLimit = 128

// padU64 keeps per-worker result slots on separate cache lines.
type padU64 struct {
	v uint64
	_ [7]uint64
}

type tickPool struct {
	cores []*core.Core
	nw    int // total workers, driver included

	// op, now, efn and n are written by the driver before the epoch release
	// and read by workers after observing it; the epoch/left atomics (and
	// the park-path channel handoffs) carry the happens-before edges in
	// both directions.
	op   uint32
	now  uint64
	efn  func(i int) // opEpoch callback, applied per dealt item index
	n    int         // opEpoch item count
	mins []padU64    // per-worker opNext results

	epoch atomic.Uint32 // incremented by the driver to release a phase
	left  atomic.Int32  // workers yet to finish the current phase

	// Parking: a worker that exhausts its release spin publishes its bit in
	// parked and blocks on wake[w]; the driver claims the whole mask at each
	// release and tokens every claimed worker. The driver parks on dwake
	// (guarded by dpark) while waiting for phase completion; the last
	// finisher tokens it. Tokens can go stale when a park loses the race
	// with its wakeup condition — both wait loops re-check their condition
	// after every token, so a stale token costs one spurious wakeup, never
	// a lost one.
	parked atomic.Uint64
	wake   []chan struct{}
	dpark  atomic.Uint32
	dwake  chan struct{}

	// Kernel-profiling instrumentation (EnableKernelProf): per-worker busy
	// nanoseconds inside phases and the driver's wall time across them. The
	// barrier's atomics order the worker-side writes before the driver's
	// harvest read; the profiled flag is set before the workers start. All
	// zero-cost when profiled is false (one branch per phase).
	profiled bool
	busy     []padU64 // per-worker ns spent executing phases
	wallNS   uint64   // driver wall ns inside phases (release to barrier exit)
}

// newTickPool starts nw-1 worker goroutines over the given cores. nw is
// clamped to the core count (and to 64, the parked-bitmask width); a pool
// is only worth building for nw >= 2. profiled enables per-worker busy
// timing (kernel profiling).
func newTickPool(cores []*core.Core, nw int, profiled bool) *tickPool {
	if nw > len(cores) {
		nw = len(cores)
	}
	if nw > 64 {
		nw = 64
	}
	p := &tickPool{cores: cores, nw: nw, mins: make([]padU64, nw),
		profiled: profiled, busy: make([]padU64, nw),
		wake: make([]chan struct{}, nw), dwake: make(chan struct{}, 1)}
	for w := 1; w < nw; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

// awaitRelease blocks worker w until the driver releases epoch seen+1:
// spin briefly, then park. Parking publishes the worker's bit in the mask
// and re-checks the epoch — if the release raced in between, the worker
// either reclaims its bit (CAS wins) or, when the driver already claimed
// it, consumes the token the driver is committed to sending.
func (p *tickPool) awaitRelease(w int, seen uint32) {
	bit := uint64(1) << uint(w)
	for spins := 0; ; spins++ {
		if p.epoch.Load() != seen {
			return
		}
		if spins < spinLimit {
			continue
		}
		for {
			m := p.parked.Load()
			if p.parked.CompareAndSwap(m, m|bit) {
				break
			}
		}
		if p.epoch.Load() != seen {
			for {
				m := p.parked.Load()
				if m&bit == 0 {
					<-p.wake[w] // driver claimed us; its token is in flight
					return
				}
				if p.parked.CompareAndSwap(m, m&^bit) {
					return
				}
			}
		}
		<-p.wake[w]
		return
	}
}

// release opens the next phase: bump the epoch for the spinners and token
// every parked worker.
func (p *tickPool) release() {
	p.epoch.Add(1)
	if m := p.parked.Swap(0); m != 0 {
		for m != 0 {
			w := bits.TrailingZeros64(m)
			m &^= 1 << uint(w)
			p.wake[w] <- struct{}{}
		}
	}
}

// finish is a worker's phase completion: the last finisher wakes a parked
// driver. The dpark read is ordered after the decrement (both seq-cst), so
// a driver that observed left > 0 after setting dpark is always tokened.
func (p *tickPool) finish() {
	if p.left.Add(-1) == 0 && p.dpark.Load() == 1 {
		select {
		case p.dwake <- struct{}{}:
		default:
		}
	}
}

// awaitDone blocks the driver until every worker finished the phase: spin
// briefly, then park on dwake. The loop re-checks left after every token,
// so a stale token from a lost park race only costs a spurious wakeup.
func (p *tickPool) awaitDone() {
	for spins := 0; p.left.Load() > 0; spins++ {
		if spins < spinLimit {
			continue
		}
		p.dpark.Store(1)
		for p.left.Load() > 0 {
			<-p.dwake
		}
		p.dpark.Store(0)
		return
	}
}

func (p *tickPool) worker(w int) {
	seen := uint32(0)
	for {
		p.awaitRelease(w, seen)
		seen++
		if p.op == opQuit {
			p.finish()
			return
		}
		if p.profiled {
			t0 := time.Now()
			p.do(w)
			p.busy[w].v += uint64(time.Since(t0))
		} else {
			p.do(w)
		}
		p.finish()
	}
}

// do runs the current phase over worker w's cores (round-robin deal).
func (p *tickPool) do(w int) {
	switch p.op {
	case opTick:
		for i := w; i < len(p.cores); i += p.nw {
			p.cores[i].Tick(p.now)
		}
	case opEpoch:
		for i := w; i < p.n; i += p.nw {
			p.efn(i)
		}
	case opNext:
		min := uint64(NoEvent)
		for i := w; i < len(p.cores); i += p.nw {
			if e := p.cores[i].NextEvent(p.now); e < min {
				min = e
			}
			if min <= p.now+1 {
				break // no jump possible; skip the rest of the shard scan
			}
		}
		p.mins[w].v = min
	}
}

// phase releases the workers for one op, does the driver's own share, and
// waits for everyone at the barrier.
func (p *tickPool) phase(op uint32, now uint64) {
	p.op, p.now = op, now
	p.left.Store(int32(p.nw - 1))
	var t0 time.Time
	if p.profiled {
		t0 = time.Now()
	}
	p.release()
	p.do(0)
	if p.profiled {
		p.busy[0].v += uint64(time.Since(t0))
	}
	p.awaitDone()
	if p.profiled {
		p.wallNS += uint64(time.Since(t0))
	}
}

// tick runs the produce phase of cycle now across all cores.
func (p *tickPool) tick(now uint64) { p.phase(opTick, now) }

// runEpochs runs fn over item indices [0, n) dealt round-robin across the
// workers — the speculative kernel's parallel shard-epoch phase.
func (p *tickPool) runEpochs(n int, fn func(i int)) {
	p.efn, p.n = fn, n
	p.phase(opEpoch, 0)
	p.efn = nil
}

// nextEvent min-reduces NextEvent(now) across all cores.
func (p *tickPool) nextEvent(now uint64) uint64 {
	p.phase(opNext, now)
	min := uint64(NoEvent)
	for w := 0; w < p.nw; w++ {
		if p.mins[w].v < min {
			min = p.mins[w].v
		}
	}
	return min
}

// busyNS copies the per-worker busy nanoseconds; call after shutdown (its
// barrier orders the workers' final writes before this read).
func (p *tickPool) busyNS() []uint64 {
	out := make([]uint64, p.nw)
	for w := range out {
		out[w] = p.busy[w].v
	}
	return out
}

// shutdown terminates the worker goroutines (the pool lives for one
// RunUntil segment).
func (p *tickPool) shutdown() {
	p.op = opQuit
	p.left.Store(int32(p.nw - 1))
	p.release()
	p.awaitDone()
}

// SetWorkers sets how many host goroutines tick simulated cores during the
// produce phase of each cycle (the -sim-workers flag). 1 — the default —
// keeps everything on the driver goroutine; higher values engage the worker
// pool on multi-core systems. Results are bit-identical at any setting:
// multi-core systems always run the produce/commit phase split, and the
// commit phase applies all cross-shard effects in canonical core order
// regardless of who ran the produce phases. Single-core systems ignore the
// setting (there is nothing to parallelize).
func (s *System) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured worker count.
func (s *System) Workers() int { return s.workers }

// stepDeferred is step for multi-core systems: the canonical registry order
// (memory, hierarchy, cores, connectors) becomes produce ticks for the
// cores followed by the sequential commit phase; Mem and Hier keep their
// (no-op) ticks for the component contract.
func (s *System) stepDeferred(p *tickPool, sampleEvery uint64) {
	s.now++
	var t0 time.Time
	if s.kprof != nil {
		t0 = time.Now()
	}
	s.Mem.Tick(s.now)
	s.Hier.Tick(s.now)
	if p != nil {
		p.tick(s.now)
	} else {
		for _, c := range s.Cores {
			c.Tick(s.now)
		}
	}
	if s.kprof != nil {
		s.kprof.Produce(time.Since(t0))
		t0 = time.Now()
	}
	s.commitCycle(s.now)
	if s.kprof != nil {
		s.kprof.Commit(time.Since(t0))
	}
	if sampleEvery != 0 && s.now%sampleEvery == 0 {
		s.sample(s.now)
	}
}

// commitCycle is the sequential commit phase of cycle now: replay each
// core's operation log (deferred cache accesses, staged telemetry) and
// flush its memory write buffer in canonical core order, then tick the
// connectors — which read the patched queue ready-times and emit directly
// to the shared tracer — exactly where the serial registry order put them.
func (s *System) commitCycle(now uint64) {
	if s.tracer != nil {
		s.tracer.Cycle = now
	}
	for _, c := range s.Cores {
		c.FlushPending(now, s.tracer)
	}
	if s.tracer != nil {
		for _, c := range s.Cores {
			c.StagePassthrough(true)
		}
	}
	for _, cn := range s.conns {
		cn.Tick(now)
	}
	if s.tracer != nil {
		for _, c := range s.Cores {
			c.StagePassthrough(false)
		}
	}
}

// nextEventWith is nextEvent with the core scan optionally min-reduced
// per-shard on the pool. The commit-shard components (memory, hierarchy,
// connectors) are scanned on the driver either way.
func (s *System) nextEventWith(p *tickPool, now uint64) uint64 {
	if p == nil {
		return s.nextEvent(now)
	}
	t := uint64(NoEvent)
	for _, c := range s.seqComps {
		e := c.NextEvent(now)
		if e <= now+1 {
			return now + 1
		}
		if e < t {
			t = e
		}
	}
	if m := p.nextEvent(now); m < t {
		t = m
	}
	if t <= now+1 {
		return now + 1
	}
	return t
}
