package sim

import (
	"strings"

	"pipette/internal/core"
	"pipette/internal/telemetry"
)

// DebugSnapshot is the structured whole-system debug dump: per-core,
// per-thread and per-queue state plus the last telemetry sample when one
// exists. The watchdog deadlock report renders it with String;
// pipette-diverge serializes two of them and diffs field-by-field.
type DebugSnapshot struct {
	Cycle     uint64           `json:"cycle"`
	Cores     []core.CoreDebug `json:"cores"`
	Telemetry string           `json:"telemetry,omitempty"` // formatted last sample
}

// DebugSnapshot captures the current machine state for debugging. When
// sampling is (or was, via a watchdog snapshot) enabled, the last telemetry
// sample — queue occupancies and per-thread stall reasons — is included.
func (s *System) DebugSnapshot() DebugSnapshot {
	d := DebugSnapshot{Cycle: s.now}
	for _, c := range s.Cores {
		d.Cores = append(d.Cores, c.DebugSnapshot())
	}
	sm := s.sampler
	if sm == nil {
		sm = s.failSampler // point-of-failure snapshot taken with sampling disabled
	}
	if sm != nil {
		if last, ok := sm.Last(); ok {
			d.Telemetry = telemetry.FormatSnapshot(last, core.StallNames())
		}
	}
	return d
}

// String renders the dump in the traditional deadlock-report layout.
func (d DebugSnapshot) String() string {
	var b strings.Builder
	for _, c := range d.Cores {
		b.WriteString(c.String())
	}
	b.WriteString(d.Telemetry)
	return b.String()
}

// DebugState returns the structured debug dump. It stays printable with %s
// (deadlock reports embed it), while pipette-diverge walks the fields.
func (s *System) DebugState() DebugSnapshot { return s.DebugSnapshot() }
