package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"pipette/internal/core"
	"pipette/internal/isa"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// countdownSystem builds a fresh single-core system running a simple
// countdown loop (the workload from TestSamplingSeries).
func countdownSystem(iters int64) *sim.System {
	s := sim.New(sim.DefaultConfig())
	a := isa.NewAssembler("t")
	a.MovI(1, iters)
	a.Label("l")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "l")
	a.Halt()
	s.Cores[0].Load(0, a.MustLink())
	return s
}

// deadlockSystem builds a system whose two threads both dequeue first, so it
// commits a few instructions and then never makes progress again.
func deadlockSystem(cfg sim.Config) *sim.System {
	s := sim.New(cfg)
	a := isa.NewAssembler("a")
	a.MapQ(10, 0, isa.QueueOut)
	a.MapQ(11, 1, isa.QueueIn)
	a.Mov(11, 10)
	a.Halt()
	b := isa.NewAssembler("b")
	b.MapQ(10, 1, isa.QueueOut)
	b.MapQ(11, 0, isa.QueueIn)
	b.Mov(11, 10)
	b.Halt()
	s.Cores[0].Load(0, a.MustLink())
	s.Cores[0].Load(1, b.MustLink())
	return s
}

// RunUntil with `until` landing exactly on the completion cycle must finish
// the workload (not stop one cycle short, not overshoot), and a bound one
// cycle earlier must stop with the workload still in flight.
func TestRunUntilExactCompletionBoundary(t *testing.T) {
	ref := countdownSystem(2000)
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := ref.Now()

	s := countdownSystem(2000)
	r, err := s.RunUntil(final)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatalf("RunUntil(%d) did not complete the workload (now=%d)", final, s.Now())
	}
	if s.Now() != final {
		t.Fatalf("RunUntil(%d) stopped at %d", final, s.Now())
	}
	if !reflect.DeepEqual(r, refRes) {
		t.Fatalf("bounded run result differs:\n  bounded:   %+v\n  unbounded: %+v", r, refRes)
	}

	s = countdownSystem(2000)
	if _, err := s.RunUntil(final - 1); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatalf("RunUntil(%d) already done; completion was at %d", final-1, final)
	}
	if s.Now() != final-1 {
		t.Fatalf("RunUntil(%d) stopped at %d", final-1, s.Now())
	}
	// Resuming with no bound finishes at exactly the reference cycle.
	if _, err := s.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Now() != final {
		t.Fatalf("resume finished at %d (done=%v), want %d", s.Now(), s.Done(), final)
	}
}

// MaxCycles is measured from the ROI base, not from absolute cycle zero:
// after a warmup prefix and ResetStats (the fork-after-warmup pattern), the
// budget restarts. The error must fire at exactly roiBase+MaxCycles+1 with
// fast-forward on or off.
func TestMaxCyclesFromROIBase(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WatchdogCycles = 1 << 30 // keep the watchdog out of the way
	cfg.MaxCycles = 3000

	for _, ff := range []bool{true, false} {
		// Fresh run: budget starts at cycle 0.
		s := deadlockSystem(cfg)
		s.SetFastForward(ff)
		_, err := s.Run()
		if err == nil || !strings.Contains(err.Error(), "exceeded MaxCycles=3000") {
			t.Fatalf("ff=%v: want MaxCycles error, got %v", ff, err)
		}
		if s.Now() != 3001 {
			t.Fatalf("ff=%v: MaxCycles fired at cycle %d, want 3001", ff, s.Now())
		}

		// Warmup prefix + ResetStats: the budget restarts at the new base.
		s = deadlockSystem(cfg)
		s.SetFastForward(ff)
		if _, err := s.RunUntil(2000); err != nil {
			t.Fatalf("ff=%v: warmup prefix: %v", ff, err)
		}
		s.ResetStats()
		_, err = s.RunUntil(0)
		if err == nil || !strings.Contains(err.Error(), "exceeded MaxCycles=3000") {
			t.Fatalf("ff=%v: want MaxCycles error after reset, got %v", ff, err)
		}
		if s.Now() != 5001 {
			t.Fatalf("ff=%v: MaxCycles fired at cycle %d, want 5001 (roiBase 2000)", ff, s.Now())
		}
	}
}

// The final partial-interval sample lands exactly on the completion cycle,
// and calling RunUntil again on a finished system appends nothing.
func TestDoneFinalPartialSample(t *testing.T) {
	s := countdownSystem(500)
	sm := s.EnableSampling(64)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("workload not done")
	}
	samples := sm.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	last := samples[len(samples)-1]
	if last.Cycle != s.Now() {
		t.Fatalf("last sample at cycle %d, run finished at %d", last.Cycle, s.Now())
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatalf("sample cycles not strictly increasing: %d then %d",
				samples[i-1].Cycle, samples[i].Cycle)
		}
	}
	// RunUntil on a finished system is a no-op: no extra samples, no clock
	// movement (checkpoint loops and probes may call it past completion).
	n, now := len(samples), s.Now()
	if _, err := s.RunUntil(now + 1000); err != nil {
		t.Fatal(err)
	}
	if s.Now() != now {
		t.Fatalf("RunUntil on finished system moved the clock %d -> %d", now, s.Now())
	}
	if got := len(sm.Samples()); got != n {
		t.Fatalf("RunUntil on finished system appended samples: %d -> %d", n, got)
	}
}

// A watchdog failure with sampling disabled must not attach a sampler as a
// side effect: the failure snapshot reaches the error text, but the system
// still reports sampling as disabled afterwards.
func TestFailureSnapshotDoesNotAttachSampler(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WatchdogCycles = 5000
	s := deadlockSystem(cfg)
	if s.Sampler() != nil {
		t.Fatal("sampler attached before any run")
	}
	_, err := s.Run()
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	if !strings.Contains(err.Error(), "telemetry snapshot") {
		t.Fatalf("deadlock error lost the failure snapshot:\n%v", err)
	}
	if s.Sampler() != nil {
		t.Fatal("failure snapshot permanently attached a sampler")
	}
}

// A core that never classified a cycle (zero commits on an errored run)
// reports explicit zero CPI fractions instead of dividing by a fake total —
// and the resulting report still validates.
func TestReportZeroCommitCore(t *testing.T) {
	r := sim.Result{Cycles: 100, CoreStats: make([]core.Stats, 2)}
	r.CoreStats[0].Committed = 40
	r.CoreStats[0].Cycles = 100
	r.CoreStats[0].CPI.Issue = 40
	r.CoreStats[0].CPI.Backend = 60
	r.CoreStats[1].Cycles = 100 // never issued, never stalled-with-reason
	r.Committed = 40

	rep := r.Report()
	if got := rep.CoreStats[1].CPI; got != (telemetry.CPIReport{}) {
		t.Fatalf("zero-commit core CPI fractions = %+v, want all zero", got)
	}
	if got := rep.CoreStats[0].CPI; got.Issue != 0.4 || got.Backend != 0.6 {
		t.Fatalf("active core CPI fractions = %+v, want issue=0.4 backend=0.6", got)
	}

	rep.Error = "sim: deadlock (test)"
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateReport(strings.NewReader(b.String())); err != nil {
		t.Fatalf("zero-CPI report does not validate: %v", err)
	}
}
