package sim_test

import (
	"fmt"
	"testing"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/sim"
)

// maxAllocsPerCycle is the steady-state allocation budget of the per-cycle
// hot path: effectively zero, with headroom only for rare amortized growth
// (a queue or ROB crossing a previous high-water mark, map growth in the
// functional memory on a cold page). Sustained per-cycle allocation — one
// alloc every few cycles — lands orders of magnitude above this and fails.
const maxAllocsPerCycle = 0.05

// TestSteadyStateAllocs gates the per-cycle hot path against allocation
// creep: after a warmup segment has grown every pool and buffer to its
// high-water mark, continuing the run must be (amortized) allocation-free.
// Covers the serial single-core kernel and the multi-core deferred kernel —
// the produce/commit split buffers cross-shard effects per cycle, and those
// buffers must be reused, not reallocated. Skipped under -race (the
// instrumentation allocates); scripts/ci.sh runs it once without the
// detector so `make ci` still gates on it.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	cases := []struct {
		name    string
		app     string
		variant string
		workers int
		profile bool
	}{
		{"single-core/bfs-pipette", "bfs", bench.VPipette, 1, false},
		{"multi-core/bfs-streaming", "bfs", bench.VStreaming, 1, false},
		// The cycle-accounting profiler must stay on the same budget: its
		// histograms grow amortized to their high-water marks during warmup
		// and then every per-cycle attribution is increment-only.
		{"single-core/bfs-pipette-profiled", "bfs", bench.VPipette, 1, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b, cores, err := bench.Lookup(tc.app, tc.variant, "Rd", 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig()
			cfg.Cores = cores
			cfg.Cache = cache.DefaultConfig().Scale(8)
			s := sim.New(cfg)
			s.SetWorkers(tc.workers)
			if tc.profile {
				s.EnableProfiling()
			}
			b(s)

			// Warmup: reach the structural high-water marks (queue capacities,
			// ROB/pend/view buffers, memory chunk map).
			if _, err := s.RunUntil(64 * 1024); err != nil {
				t.Fatal(err)
			}
			if s.Done() {
				t.Fatal("workload finished during warmup; segment budget needs shrinking")
			}

			const segCycles = 8 * 1024
			target := s.Now()
			perRun := testing.AllocsPerRun(5, func() {
				target += segCycles
				if _, err := s.RunUntil(target); err != nil {
					t.Fatal(err)
				}
			})
			if s.Done() {
				t.Fatal("workload finished during measurement; allocs/cycle would be understated")
			}
			perCycle := perRun / segCycles
			t.Logf("%s: %.1f allocs per %d-cycle segment (%.5f/cycle)", tc.name, perRun, segCycles, perCycle)
			if perCycle > maxAllocsPerCycle {
				t.Errorf("steady-state allocation creep: %.5f allocs/cycle exceeds %.3f (%s)",
					perCycle, maxAllocsPerCycle, fmt.Sprintf("%.1f per %d-cycle segment", perRun, segCycles))
			}
		})
	}
}
