// The clocked-component model: every timing-carrying unit of the machine
// (cores, the cache hierarchy, functional memory, queue register maps,
// cross-core connectors, reference accelerators) implements Component, and
// System drives a single registry of them on one authoritative clock
// instead of hand-rolling per-kind tick loops.
//
// The contract enables quiescence fast-forward (docs/ARCHITECTURE.md): when
// every component reports that its next possible action lies strictly in
// the future, the kernel jumps the clock to min(NextEvent) and credits the
// skipped cycles through FastForward, so memory-bound stall phases simulate
// in O(events) instead of O(cycles) while staying bit-identical to the
// cycle-by-cycle run.
package sim

// NoEvent is the NextEvent return value for a component with no
// self-scheduled future work: it can only be re-activated by another
// component's action (a queue enqueue, a register free, a commit).
const NoEvent = ^uint64(0)

// Component is one clocked unit of the machine. The System owns the
// authoritative clock; components never advance time themselves.
//
// The fast-forward contract, on top of the usual SaveState/RestoreState
// checkpoint contract each implementation also provides:
//
//   - Tick(now) advances the component one clock edge to cycle `now`.
//     Ticks arrive in strictly increasing cycle order, but not necessarily
//     for consecutive cycles.
//   - NextEvent(now) is called after the component was ticked at `now` and
//     returns the earliest cycle > now at which ticking it could change any
//     machine state, assuming no other component acts in the interim
//     (the kernel guarantees that assumption by only skipping cycles when
//     *every* component is quiescent). It returns now+1 when the component
//     is busy, and NoEvent when only external input can re-activate it.
//     Returning too early merely costs a wasted tick; returning too late
//     breaks bit-exactness — be conservative.
//   - FastForward(from, to) applies the per-cycle statistics the skipped
//     ticks for cycles (from, to] would have accumulated (CPI stall
//     buckets, occupancy integrals, credit-stall counters) and advances any
//     internal cycle mirror to `to`. It must not change any other state:
//     by the NextEvent contract the skipped ticks were state no-ops.
type Component interface {
	Tick(now uint64)
	NextEvent(now uint64) uint64
	FastForward(from, to uint64)
}

// components returns the registry of clocked components in the canonical
// tick order: memory, cache hierarchy, cores (each core ticks its own
// attached units and QRM), then connectors. The order is stable and mirrors
// the sysState serialization order, so checkpoint gob payloads and the
// per-cycle tick sequence can never disagree across builds of the same
// workload. It is rebuilt on demand because builders may attach connectors
// (System.Connect) after construction.
func (s *System) components() []Component {
	comps := make([]Component, 0, 2+len(s.Cores)+len(s.conns))
	comps = append(comps, s.Mem, s.Hier)
	for _, c := range s.Cores {
		comps = append(comps, c)
	}
	for _, c := range s.conns {
		comps = append(comps, c)
	}
	return comps
}

// nextEvent returns the earliest cycle any component may act, clamped to at
// least now+1 so a misbehaving component cannot stall the clock. It bails
// out at the first component reporting now+1 (or earlier): no jump is
// possible then, and busy phases query this every cycle.
func (s *System) nextEvent(now uint64) uint64 {
	t := uint64(NoEvent)
	for _, c := range s.comps {
		e := c.NextEvent(now)
		if e <= now+1 {
			return now + 1
		}
		if e < t {
			t = e
		}
	}
	return t
}
