// The speculative epoch kernel: breaking the sequential-commit wall.
//
// The deferred produce/commit split (parallel.go) synchronizes every cycle —
// each simulated cycle costs one barrier plus the sequential commit scan,
// which caps parallel speedup long before core count does. Speculation
// amortizes that synchronization over whole epochs: each core's shard runs
// up to N cycles entirely privately, predicting the shared machine with
// per-shard replicas, and the shards synchronize once per epoch in a
// validate-and-commit pipeline.
//
// Per epoch:
//
//  1. Snapshot: every core saves its dynamic state (checkpoint.ShardSnapshots
//     over buffer-reusing SaveStateInto) and its profiler, so a misspeculated
//     epoch can be rolled back wholesale.
//  2. Resync: each shard's cache-hierarchy replica is repaired from the real
//     hierarchy's touched-set delta (cache.ResyncReplica), and each connector
//     endpoint's remote-queue replica is re-primed.
//  3. Produce: shards run E cycles against frozen shared state — functional
//     memory through the view's epoch overlay (multi-cycle read-own-writes
//     with word-granular access-set tracking), cache timing against the
//     replica hierarchy with every access logged (core.FlushSpec), and each
//     connector stepped on BOTH endpoint shards against replicas of the
//     remote half (connector.SpecSrcTick/SpecDstTick).
//  4. Validate: the driver reconciles the paired connector logs
//     (connector.SpecReconcile), scans for an in-epoch completion point,
//     checks cross-shard memory conflicts (mem.FirstConflict), then replays
//     every logged cache access into the real hierarchy in canonical
//     (cycle, core, log-order) order under an undo journal, comparing
//     predicted completions, and finally applies the functional-memory epoch
//     logs (mem.EpochApplier) comparing predicted atomic old-values.
//  5. Commit or abort: a clean epoch commits wholesale — the real hierarchy
//     already holds the replayed truth, connectors fold their agreed traffic
//     in (SpecCommit), and the clock jumps to epoch end. Any divergence at
//     offset D aborts the whole epoch: journals unwind, cores and profilers
//     restore, and the barrier kernel re-executes cycles start+1..start+D —
//     so every abort still makes ≥1 cycle of true progress.
//
// Replicas predict, they never decide: validation replays against the real
// structures, so a stale replica can only cost an epoch abort, never a wrong
// result. That is what makes speculative runs bit-identical to barrier runs
// at every worker count and epoch length (the equivalence matrix in
// internal/bench enforces this). Epoch length adapts online: halve on abort
// (with a barrier-step cooldown at the floor), double after a streak of
// clean commits, and every epoch is capped at the run bound, the next
// error-deadline cycle and the next sampling boundary so watchdog, MaxCycles
// and telemetry semantics stay exact. See docs/SPECULATION.md.
package sim

import (
	"time"

	"pipette/internal/cache"
	"pipette/internal/checkpoint"
	"pipette/internal/connector"
	"pipette/internal/core"
	"pipette/internal/mem"
	"pipette/internal/profile"
	"pipette/internal/queue"
)

// DefaultSpecEpoch is the default maximum epoch length (-epoch).
const DefaultSpecEpoch = 64

// specMinEpoch is the adaptive floor: below this the per-epoch overhead
// (snapshot + resync + replay) exceeds the saved barriers, so the
// controller barrier-steps through a cooldown instead of speculating.
const specMinEpoch = 8

// specGrowStreak is how many consecutive clean commits double the epoch.
const specGrowStreak = 4

// specRole is one connector endpoint owned by a shard: the producer side
// carries a SrcView replica of the consumer queue, the consumer side a full
// replica of the source queue. Each side logs one SpecAction per cycle.
type specRole struct {
	cn  *connector.Connector
	src bool
	v   connector.SrcView
	rq  *queue.Queue
	log []connector.SpecAction
}

// specShard is one core's private epoch context.
type specShard struct {
	c     *core.Core
	hier  *cache.Hierarchy // prediction replica of the real hierarchy
	port  *cache.Port      // this core's port on the replica
	roles []*specRole      // connector endpoints, in registry order
	acc   []core.SpecAccess
	done  []bool // per-offset: core reported Done after that cycle
	cur   int    // replay cursor into acc
	mcur  int    // apply cursor into the view's epoch log
}

// specPair joins the two endpoint logs of one connector for reconciliation.
type specPair struct {
	cn   *connector.Connector
	s, d *specRole
}

// specKernel is the per-system speculative state, built lazily on the first
// speculative RunUntil segment and reused across segments.
type specKernel struct {
	shards   []*specShard
	pairs    []specPair
	snaps    *checkpoint.ShardSnapshots
	profSnap []*profile.CoreProf
	applier  *mem.EpochApplier
	sets     []*mem.AccessSets

	epochLen uint64
	maxEpoch uint64
	minEpoch uint64
	streak   int
	cooldown uint64 // barrier cycles left before re-attempting speculation
}

// SetSpeculate enables or disables the speculative epoch kernel (the
// -speculate flag). Like fast-forward and worker count it is an execution
// strategy, not a configuration: results, state hashes and telemetry are
// bit-identical either way. It engages only on multi-core systems with no
// tracer attached and with every connector supported; otherwise the run
// silently falls back to the per-cycle barrier kernel.
func (s *System) SetSpeculate(enabled bool) { s.speculate = enabled }

// SetEpoch sets the maximum speculative epoch length in cycles (0 selects
// DefaultSpecEpoch). The controller adapts below it online.
func (s *System) SetEpoch(n uint64) { s.specEpoch = n }

// SpecStats returns the deterministic epoch accounting accumulated so far.
// Deliberately not part of Result: speculation never changes results, so
// cached sweep cells stay byte-identical whether it was on or off.
func (s *System) SpecStats() profile.SpecStats { return s.specStats }

// specKernelFor returns the (lazily built) speculative kernel, or nil when
// this system cannot speculate: a connector outside the supported shape, a
// unit without checkpoint support, or tracing attached. Callers gate on
// s.speculate && s.multi && s.tracer == nil first.
func (s *System) specKernelFor() *specKernel {
	for _, cn := range s.conns {
		if !cn.SpecSupported() {
			return nil
		}
	}
	if s.spec != nil && len(s.spec.shards) == len(s.Cores) && len(s.spec.pairs) == len(s.conns) {
		return s.spec
	}
	sk := &specKernel{snaps: checkpoint.NewShardSnapshots(len(s.Cores))}
	if err := sk.snaps.Save(s.Cores); err != nil {
		return nil // a unit is not checkpointable; speculation cannot roll back
	}
	s.Hier.EnableSpec()
	for _, c := range s.Cores {
		h := s.Hier.Clone(c.ID())
		sk.shards = append(sk.shards, &specShard{c: c, hier: h, port: h.Port(c.ID())})
	}
	for _, cn := range s.conns {
		sr := &specRole{cn: cn, src: true}
		dr := &specRole{cn: cn, rq: cn.NewSrcQReplica()}
		sk.shards[cn.SrcCore()].roles = append(sk.shards[cn.SrcCore()].roles, sr)
		sk.shards[cn.DstCore()].roles = append(sk.shards[cn.DstCore()].roles, dr)
		sk.pairs = append(sk.pairs, specPair{cn: cn, s: sr, d: dr})
	}
	sk.applier = mem.NewEpochApplier(s.Mem)
	sk.maxEpoch = s.specEpoch
	if sk.maxEpoch == 0 {
		sk.maxEpoch = DefaultSpecEpoch
	}
	sk.minEpoch = specMinEpoch
	if sk.maxEpoch < sk.minEpoch {
		sk.minEpoch = sk.maxEpoch
	}
	sk.epochLen = sk.maxEpoch
	s.spec = sk
	return sk
}

// specAdvance advances the run by one unit of speculative execution: a full
// epoch when one fits, a single barrier cycle otherwise (cooldown, or the
// capped window is below the adaptive floor). Epochs never cross `until`,
// the error deadline, or a sampling boundary, so error and telemetry
// semantics match the per-cycle kernel exactly.
func (s *System) specAdvance(sk *specKernel, p *tickPool, until, watchdog, sampleEvery uint64) error {
	start := s.now
	end := start + sk.epochLen
	if bound := s.errDeadline(watchdog); end > bound {
		end = bound
	}
	if until != 0 && end > until {
		end = until
	}
	if sampleEvery != 0 {
		if nb := start - start%sampleEvery + sampleEvery; end > nb {
			end = nb
		}
	}
	if sk.cooldown > 0 || end-start < sk.minEpoch {
		if sk.cooldown > 0 {
			sk.cooldown--
		}
		s.stepDeferred(p, sampleEvery)
		s.specStats.BarrierCycles++
		s.specStats.TotalCycles++
		return nil
	}
	return s.runEpoch(sk, p, start, end, sampleEvery)
}

// runTo produces one shard's epoch: E private cycles against the replicas,
// logging every cross-shard interaction for validation.
func (sh *specShard) runTo(start uint64, E int) {
	v := sh.c.View()
	v.BeginEpoch()
	sh.acc = sh.acc[:0]
	sh.done = sh.done[:0]
	for _, r := range sh.roles {
		r.log = r.log[:0]
	}
	for off := 1; off <= E; off++ {
		now := start + uint64(off)
		v.EpochCycle(uint32(off))
		sh.c.Tick(now)
		sh.c.FlushSpec(now, sh.port, uint32(off), &sh.acc)
		for _, r := range sh.roles {
			if r.src {
				r.cn.SpecSrcTick(now, &r.v, &r.log)
			} else {
				r.cn.SpecDstTick(now, r.rq, &r.log)
			}
		}
		sh.done = append(sh.done, sh.c.Done())
	}
}

// runEpoch executes one speculative epoch (start, end] and either commits
// it wholesale or aborts and barrier-reruns through the divergence point.
func (s *System) runEpoch(sk *specKernel, p *tickPool, start, end, sampleEvery uint64) error {
	E := int(end - start)
	var t0 time.Time
	if s.kprof != nil {
		t0 = time.Now()
	}

	// Snapshot for rollback: core state and (when profiling) the
	// deterministic profiler counters the epoch will advance.
	if err := sk.snaps.Save(s.Cores); err != nil {
		return err
	}
	if s.profs != nil {
		for len(sk.profSnap) < len(s.profs) {
			sk.profSnap = append(sk.profSnap, &profile.CoreProf{})
		}
		for i, pr := range s.profs {
			pr.CopyInto(sk.profSnap[i])
		}
	}

	// Resync every replica from the real structures' drift since the last
	// epoch, then reset the real hierarchy's touched tracking so the next
	// resync sees only the coming epoch's (and any interleaved barrier
	// cycles') mutations.
	for _, sh := range sk.shards {
		s.Hier.ResyncReplica(sh.hier, sh.c.ID())
		for _, r := range sh.roles {
			if r.src {
				r.cn.SyncSrcView(&r.v)
			} else {
				r.cn.SyncSrcReplica(r.rq)
			}
		}
	}
	s.Hier.ResetTouched()

	// Produce: all shards run their epoch privately (in parallel on the
	// pool when one is attached).
	if p != nil {
		p.runEpochs(len(sk.shards), func(i int) { sk.shards[i].runTo(start, E) })
	} else {
		for _, sh := range sk.shards {
			sh.runTo(start, E)
		}
	}
	if s.kprof != nil {
		s.kprof.SpecProduceNS += uint64(time.Since(t0))
		t0 = time.Now()
	}

	// Validation, cheapest detector first. D is the first divergent offset
	// (E+1 = clean); any D <= E aborts the whole epoch.
	D := E + 1

	// Connector reconciliation: the paired logs must agree cycle by cycle.
	for i := range sk.pairs {
		pr := &sk.pairs[i]
		for off := 0; off < E && off < D-1; off++ {
			if !connector.SpecReconcile(&pr.s.log[off], &pr.d.log[off]) {
				D = off + 1
				break
			}
		}
	}

	// Completion scan: if the whole system goes done strictly inside the
	// epoch, the cycles past that point must not commit (the barrier kernel
	// would have stopped). Treated as a divergence at the done offset; the
	// rerun stops exactly there via its own done checks.
	for off := 1; off < E && off < D; off++ {
		all := true
		for _, sh := range sk.shards {
			if !sh.done[off-1] {
				all = false
				break
			}
		}
		if all {
			for i := range sk.pairs {
				if sk.pairs[i].s.log[off-1].SrcCanDeq {
					all = false
					break
				}
			}
		}
		if all {
			D = off
			break
		}
	}

	// Cross-shard memory conflicts: a shard read a word another shard wrote
	// this epoch, at an offset where the barrier kernel would have made the
	// write visible.
	sk.sets = sk.sets[:0]
	for _, sh := range sk.shards {
		sk.sets = append(sk.sets, sh.c.View().EpochSets())
	}
	if d, ok := mem.FirstConflict(sk.sets); ok && int(d) < D {
		D = int(d)
	}

	if D <= E {
		if s.kprof != nil {
			s.kprof.SpecValidateNS += uint64(time.Since(t0))
		}
		return s.specAbort(sk, p, E, D, sampleEvery)
	}

	// Timing replay: every logged cache access re-executes against the real
	// hierarchy in canonical (cycle, core, log-order) order under an undo
	// journal; a consumed completion or level that differs from the
	// prediction is a divergence at that offset.
	s.Hier.BeginJournal()
	for _, sh := range sk.shards {
		sh.cur = 0
	}
	fail := 0
replay:
	for off := 1; off <= E; off++ {
		now := start + uint64(off)
		for _, sh := range sk.shards {
			for sh.cur < len(sh.acc) && sh.acc[sh.cur].Off == uint32(off) {
				a := &sh.acc[sh.cur]
				sh.cur++
				done, lvl := sh.c.ReplaySpec(now, a)
				if a.Kind != core.SpecStore && (done != a.Done || lvl != a.Lvl) {
					fail = off
					break replay
				}
			}
		}
	}
	if fail != 0 {
		s.Hier.AbortJournal()
		if s.kprof != nil {
			s.kprof.SpecValidateNS += uint64(time.Since(t0))
		}
		return s.specAbort(sk, p, E, fail, sampleEvery)
	}

	// Functional-memory apply: the epochs' write logs merge into shared
	// memory in canonical order; a predicted atomic old-value that differs
	// from the true one is a divergence (the shard's RMW computed on it).
	sk.applier.Begin()
	for _, sh := range sk.shards {
		sh.mcur = 0
	}
apply:
	for off := 1; off <= E; off++ {
		for _, sh := range sk.shards {
			lg := sh.c.View().EpochLog()
			for sh.mcur < len(lg) && lg[sh.mcur].Off == uint32(off) {
				op := &lg[sh.mcur]
				sh.mcur++
				if !sk.applier.Apply(op) {
					fail = off
					break apply
				}
			}
		}
	}
	if fail != 0 {
		sk.applier.Rollback()
		s.Hier.AbortJournal()
		if s.kprof != nil {
			s.kprof.SpecValidateNS += uint64(time.Since(t0))
		}
		return s.specAbort(sk, p, E, fail, sampleEvery)
	}

	// Commit: the real hierarchy and memory already hold the epoch's truth;
	// fold in the connectors' agreed traffic and jump the clock.
	s.Hier.EndJournal()
	for i := range sk.pairs {
		sk.pairs[i].cn.SpecCommit(start, sk.pairs[i].s.log)
	}
	for _, sh := range sk.shards {
		sh.c.View().EndEpoch()
	}
	s.now = end
	s.specStats.Epochs++
	s.specStats.Commits++
	s.specStats.CommittedCycles += uint64(E)
	s.specStats.TotalCycles += uint64(E)
	if s.kprof != nil {
		s.kprof.SpecValidateNS += uint64(time.Since(t0))
	}
	if sampleEvery != 0 && s.now%sampleEvery == 0 {
		s.sample(s.now)
	}
	sk.streak++
	if sk.streak >= specGrowStreak && sk.epochLen < sk.maxEpoch {
		sk.streak = 0
		if sk.epochLen *= 2; sk.epochLen > sk.maxEpoch {
			sk.epochLen = sk.maxEpoch
		}
	}
	return nil
}

// specAbort rolls a misspeculated epoch back — cores, profilers and views
// to epoch start (shared memory and the real hierarchy were never touched,
// or were unwound by the callers' journals) — then barrier-reruns through
// the divergence offset so the abort still makes true progress.
func (s *System) specAbort(sk *specKernel, p *tickPool, E, D int, sampleEvery uint64) error {
	for _, sh := range sk.shards {
		sh.c.View().EndEpoch()
	}
	for i, c := range s.Cores {
		if err := sk.snaps.Restore(c, i); err != nil {
			return err
		}
		// The watchdog's commit-cycle scratch is not part of the restored
		// state; commits inside the discarded epoch would leave it ahead of
		// the rolled-back clock.
		c.ClampCommitScratch()
	}
	if s.profs != nil {
		// After RestoreState: it resets the profiler's outstanding-load
		// bookkeeping, which the snapshot overwrite must win over.
		for i, pr := range s.profs {
			sk.profSnap[i].CopyInto(pr)
		}
	}
	s.specStats.Epochs++
	s.specStats.Aborts++
	s.specStats.AbortedCycles += uint64(E)
	for i := 0; i < D && !s.done(); i++ {
		s.stepDeferred(p, sampleEvery)
		s.specStats.RerunCycles++
		s.specStats.TotalCycles++
	}
	sk.streak = 0
	if sk.epochLen > sk.minEpoch {
		if sk.epochLen /= 2; sk.epochLen < sk.minEpoch {
			sk.epochLen = sk.minEpoch
		}
	} else {
		sk.cooldown = 4 * sk.minEpoch
	}
	return nil
}
