//go:build race

package sim_test

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation inflates allocation counts; the
// steady-state allocation gate skips itself there.
const raceEnabled = true
