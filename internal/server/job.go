// Job records: the persistent unit of work pipette-server accepts,
// schedules and serves. One job asks for one cell of the evaluation
// matrix (app x variant x input under a harness.Config) on behalf of a
// tenant. Records are single JSON documents (pipette.job/v1) written
// atomically (temp + rename) under <data>/jobs/, so a crashed or
// SIGTERM-drained server finds every accepted job on restart and resumes
// it; simulation determinism plus the content-addressed sweep cache make
// the resumed results byte-identical (docs/SERVER.md).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"pipette/internal/harness"
)

// JobSchema identifies the persisted job-record document format.
const JobSchema = "pipette.job/v1"

// Job states. A job moves queued -> running -> done|failed; a restarted
// server moves interrupted running jobs back to queued.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobSpec names the cell to simulate and the configuration to run it
// under. The base configuration is harness.Default() (or harness.Tiny()
// with Tiny set), optionally replaced wholesale by Config and then
// adjusted by the single-knob overrides — the PR 7 model-calibration
// knobs plus the input seed. Identical resolved (config, cell) pairs
// hash to the same content address no matter how they were spelled, so
// they dedup and cache together.
type JobSpec struct {
	App     string `json:"app"`
	Variant string `json:"variant"`
	Input   string `json:"input"`

	Tiny   bool `json:"tiny,omitempty"`   // base config harness.Tiny() instead of Default()
	Warmup bool `json:"warmup,omitempty"` // run the cell through the warm-fork path

	// Config, when present, replaces the base configuration wholesale
	// (fields use the harness.Config Go names).
	Config *harness.Config `json:"config,omitempty"`

	Seed        *int64  `json:"seed,omitempty"`
	DRAMLat     *uint64 `json:"dram_lat,omitempty"`
	L2Lat       *uint64 `json:"l2_lat,omitempty"`
	L3Lat       *uint64 `json:"l3_lat,omitempty"`
	NoCLat      *uint64 `json:"noc_lat,omitempty"`
	TrapPenalty *uint64 `json:"trap_penalty,omitempty"`
}

// Key returns the cell identity the spec names.
func (sp JobSpec) Key() harness.Key {
	return harness.Key{App: sp.App, Variant: sp.Variant, Input: sp.Input}
}

// HarnessConfig resolves the spec into the exact harness.Config the cell
// runs under (and is content-addressed by).
func (sp JobSpec) HarnessConfig() harness.Config {
	var cfg harness.Config
	switch {
	case sp.Config != nil:
		cfg = *sp.Config
	case sp.Tiny:
		cfg = harness.Tiny()
	default:
		cfg = harness.Default()
	}
	if sp.Seed != nil {
		cfg.Seed = *sp.Seed
	}
	if sp.DRAMLat != nil {
		cfg.DRAMLat = *sp.DRAMLat
	}
	if sp.L2Lat != nil {
		cfg.L2Lat = *sp.L2Lat
	}
	if sp.L3Lat != nil {
		cfg.L3Lat = *sp.L3Lat
	}
	if sp.NoCLat != nil {
		cfg.NoCLat = *sp.NoCLat
	}
	if sp.TrapPenalty != nil {
		cfg.TrapPenalty = *sp.TrapPenalty
	}
	return cfg
}

// Job is one persisted pipette.job/v1 record. The embedded Cell is the
// full simulation result, attached when the job completes, so results
// survive independently of the sweep cache's lifecycle.
type Job struct {
	Schema        string        `json:"schema"`
	ID            string        `json:"id"`
	Tenant        string        `json:"tenant"`
	Spec          JobSpec       `json:"spec"`
	State         string        `json:"state"`
	CellHash      string        `json:"cell_hash,omitempty"`
	SubmittedUnix int64         `json:"submitted_unix"`
	StartedUnix   int64         `json:"started_unix,omitempty"`
	FinishedUnix  int64         `json:"finished_unix,omitempty"`
	DedupHit      bool          `json:"dedup_hit,omitempty"` // attached to another job's in-flight computation
	CacheHit      bool          `json:"cache_hit,omitempty"` // served from the content-addressed sweep cache
	Error         string        `json:"error,omitempty"`
	Cell          *harness.Cell `json:"cell,omitempty"`
}

// clone returns a deep-enough copy for handing outside the server's lock
// (Cell is treated as immutable once attached).
func (j *Job) clone() *Job {
	c := *j
	return &c
}

var (
	tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)
	stateSet = map[string]bool{StateQueued: true, StateRunning: true, StateDone: true, StateFailed: true}
)

// ValidateJob parses and checks one pipette.job/v1 document. Unknown
// schema versions inside the pipette.job/ family are rejected with an
// error naming the supported version (pipette-validate's contract).
func ValidateJob(r io.Reader) (*Job, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(j.Schema, "pipette.job/") {
		return nil, fmt.Errorf("schema %q is not a job record", j.Schema)
	}
	if j.Schema != JobSchema {
		return nil, fmt.Errorf("unsupported job schema version %q (supported: %s)", j.Schema, JobSchema)
	}
	if j.ID == "" {
		return nil, fmt.Errorf("job has no id")
	}
	if !tenantRe.MatchString(j.Tenant) {
		return nil, fmt.Errorf("job %s: bad tenant %q", j.ID, j.Tenant)
	}
	if j.Spec.App == "" || j.Spec.Variant == "" || j.Spec.Input == "" {
		return nil, fmt.Errorf("job %s: spec must name app, variant and input", j.ID)
	}
	if !stateSet[j.State] {
		return nil, fmt.Errorf("job %s: unknown state %q", j.ID, j.State)
	}
	if j.SubmittedUnix <= 0 {
		return nil, fmt.Errorf("job %s: missing submitted_unix", j.ID)
	}
	switch j.State {
	case StateDone:
		if j.Cell == nil || j.CellHash == "" {
			return nil, fmt.Errorf("job %s: done without cell payload and hash", j.ID)
		}
	case StateFailed:
		if j.Error == "" {
			return nil, fmt.Errorf("job %s: failed without an error", j.ID)
		}
	case StateQueued:
		if j.Cell != nil {
			return nil, fmt.Errorf("job %s: queued job carries a cell payload", j.ID)
		}
	}
	if j.FinishedUnix != 0 && j.FinishedUnix < j.SubmittedUnix {
		return nil, fmt.Errorf("job %s: finished_unix precedes submitted_unix", j.ID)
	}
	return &j, nil
}

// EncodeJob renders the canonical wire form of a job record (indented
// JSON, trailing newline) — the exact bytes the store persists and the
// golden-file test pins.
func EncodeJob(j *Job) ([]byte, error) {
	data, err := json.MarshalIndent(j, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// jobStore persists job records under dir, one file per job, written via
// unique temp names (pid + per-call random suffix) and rename so
// concurrent workers — or an overlapping process — never tear a record.
// close() makes every later save a silent no-op: the crash-injection and
// drain-timeout paths use it so a zombie computation finishing after the
// "crash" cannot rewrite history that a restarted server now owns.
type jobStore struct {
	dir string

	mu     sync.Mutex
	closed bool
}

func newJobStore(dir string) (*jobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &jobStore{dir: dir}, nil
}

func (st *jobStore) path(id string) string { return filepath.Join(st.dir, id+".json") }

func (st *jobStore) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// save persists the record atomically. Saves after close are dropped.
func (st *jobStore) save(j *Job) error {
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return nil
	}
	data, err := EncodeJob(j)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, fmt.Sprintf("%s.%d.tmp*", j.ID, os.Getpid()))
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(j.ID)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadAll reads every well-formed job record under the store, in submit
// order (ties broken by ID). Malformed files are skipped, not fatal: one
// corrupt record must not stop a restarted server from resuming the
// rest. Their count is reported so the server can surface it.
func (st *jobStore) loadAll() (jobs []*Job, skipped int, err error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		f, err := os.Open(filepath.Join(st.dir, name))
		if err != nil {
			skipped++
			continue
		}
		j, err := ValidateJob(f)
		f.Close()
		if err != nil || j.ID != strings.TrimSuffix(name, ".json") {
			skipped++
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].SubmittedUnix != jobs[k].SubmittedUnix {
			return jobs[i].SubmittedUnix < jobs[k].SubmittedUnix
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs, skipped, nil
}
