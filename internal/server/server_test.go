package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipette/internal/harness"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// tinySiloCfg is the cheapest real matrix (5 cells: one app, one input,
// five variants); unit tests validate submissions against it but replace
// the execution seam with fakes, so no simulation runs here.
func tinySiloCfg() harness.Config {
	c := harness.Tiny()
	c.AppFilter = "silo"
	return c
}

func tinySiloSpec(variant string) JobSpec {
	cfg := tinySiloCfg()
	return JobSpec{App: "silo", Variant: variant, Input: "ycsbc", Config: &cfg}
}

func fakeCell(cycles uint64) harness.Cell {
	return harness.Cell{R: sim.Result{Cycles: cycles}, Cores: 1}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Kill()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, tenant string, spec JobSpec) (*Job, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Pipette-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitSettled(t *testing.T, s *Server, pred func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for server state; stats: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func terminal(st Stats) bool { return st.Jobs[StateQueued] == 0 && st.Jobs[StateRunning] == 0 }

func TestSubmitRunResult(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		return fakeCell(1234), false, nil
	}
	s.Start()
	j, code := submit(t, ts, "alice", tinySiloSpec("pipette"))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if j.State != StateQueued || j.CellHash == "" || j.Tenant != "alice" {
		t.Fatalf("submit response %+v", j)
	}
	waitSettled(t, s, terminal)
	var got Job
	if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID, &got); code != 200 {
		t.Fatalf("get job status %d", code)
	}
	if got.State != StateDone || got.Cell == nil || got.Cell.R.Cycles != 1234 {
		t.Fatalf("job after run: %+v", got)
	}
	var cell harness.Cell
	if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/result", &cell); code != 200 {
		t.Fatalf("result status %d", code)
	}
	if cell.R.Cycles != 1234 {
		t.Fatalf("result cell %+v", cell)
	}
	var health Stats
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz %d %+v", code, health)
	}
	if health.Submitted != 1 || health.Computed != 1 {
		t.Fatalf("healthz counters %+v", health)
	}
	// The expvar mirror serves the same snapshot.
	var vars struct {
		PS Stats `json:"pipette_server"`
	}
	if code := getJSON(t, ts.URL+"/debug/vars", &vars); code != 200 || vars.PS.Submitted != 1 {
		t.Fatalf("expvar %d %+v", code, vars.PS)
	}
}

func TestSubmitRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_ = s
	cases := []struct {
		name   string
		tenant string
		body   string
		code   int
		want   string
	}{
		{"unknown cell", "a", `{"app":"silo","variant":"nope","input":"ycsbc","tiny":true}`, 400, "no cell"},
		{"missing fields", "a", `{"app":"silo"}`, 400, "must name"},
		{"unknown spec field", "a", `{"app":"silo","variant":"pipette","input":"ycsbc","bogus":1}`, 400, "bogus"},
		{"bad tenant", "spaced out", `{"app":"silo","variant":"pipette","input":"ycsbc","tiny":true}`, 400, "X-Pipette-Tenant"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(tc.body))
		req.Header.Set("X-Pipette-Tenant", tc.tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e struct{ Error string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.code || !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: got %d %q, want %d containing %q", tc.name, resp.StatusCode, e.Error, tc.code, tc.want)
		}
	}
}

// TestSingleFlightDedup is the satellite-3 race check: N concurrent
// identical submissions must trigger exactly one cell execution, with the
// other N-1 jobs attached as dedup followers, and all N responses must
// carry the identical Cell.
func TestSingleFlightDedup(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{Workers: n})
	var computes atomic.Int64
	release := make(chan struct{})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		computes.Add(1)
		<-release // hold the flight open so every follower must dedup
		return fakeCell(777), false, nil
	}
	s.Start()
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, code := submit(t, ts, "alice", tinySiloSpec("pipette"))
			if code != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	// All n jobs reach running (1 leader + n-1 waiters) before we let the
	// single computation finish.
	waitSettled(t, s, func(st Stats) bool { return st.Jobs[StateRunning] == n })
	if got := computes.Load(); got != 1 {
		t.Fatalf("computations before release = %d, want 1", got)
	}
	close(release)
	st := waitSettled(t, s, terminal)
	if got := computes.Load(); got != 1 {
		t.Fatalf("computations = %d, want exactly 1", got)
	}
	if st.DedupHits != n-1 || st.Jobs[StateDone] != n || st.Jobs[StateFailed] != 0 {
		t.Fatalf("stats after dedup run: %+v", st)
	}
	var first []byte
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("result %s: status %d", id, resp.StatusCode)
		}
		if i == 0 {
			first = body.Bytes()
		} else if !bytes.Equal(first, body.Bytes()) {
			t.Fatalf("result %s differs from the leader's:\n%s\nvs\n%s", id, body.Bytes(), first)
		}
	}
}

func TestTenantConcurrentJobQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Limits:  TenantLimits{MaxActive: 2}, // rate limiting disabled
	})
	release := make(chan struct{})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		<-release
		return fakeCell(1), false, nil
	}
	s.Start()
	if _, code := submit(t, ts, "alice", tinySiloSpec("pipette")); code != 202 {
		t.Fatalf("first submit: %d", code)
	}
	if _, code := submit(t, ts, "alice", tinySiloSpec("serial")); code != 202 {
		t.Fatalf("second submit: %d", code)
	}
	// Third hits MaxActive (both jobs still active); an independent tenant
	// has its own quota and gets through.
	if _, code := submit(t, ts, "alice", tinySiloSpec("streaming")); code != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %d, want 429", code)
	}
	if _, code := submit(t, ts, "bob", tinySiloSpec("pipette")); code != 202 {
		t.Fatalf("bob submit: %d", code)
	}
	close(release)
	st := waitSettled(t, s, terminal)
	if st.QuotaRejected != 1 || st.RateLimited != 0 {
		t.Fatalf("rejection counters: %+v", st)
	}
	// Terminal jobs released their active slots: alice is admitted again.
	if _, code := submit(t, ts, "alice", tinySiloSpec("streaming")); code != 202 {
		t.Fatalf("alice post-completion submit: %d, want 202", code)
	}
}

func TestTenantRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Limits:  TenantLimits{Rate: 1e-9, Burst: 2}, // quota disabled, no meaningful refill
	})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		return fakeCell(1), false, nil
	}
	s.Start()
	if _, code := submit(t, ts, "alice", tinySiloSpec("pipette")); code != 202 {
		t.Fatalf("first submit: %d", code)
	}
	if _, code := submit(t, ts, "alice", tinySiloSpec("serial")); code != 202 {
		t.Fatalf("second submit: %d", code)
	}
	// The bucket (burst 2) is empty: rejected even with quota disabled and
	// regardless of job completion. A fresh tenant has a full bucket.
	if _, code := submit(t, ts, "alice", tinySiloSpec("streaming")); code != http.StatusTooManyRequests {
		t.Fatalf("rate submit: want 429")
	}
	if _, code := submit(t, ts, "bob", tinySiloSpec("pipette")); code != 202 {
		t.Fatalf("bob submit: %d", code)
	}
	st := waitSettled(t, s, terminal)
	if st.RateLimited != 1 || st.QuotaRejected != 0 {
		t.Fatalf("rejection counters: %+v", st)
	}
}

// TestStreamFollowsJob reads the ndjson stream end to end: queued and
// running states, forwarded telemetry samples from the execution seam,
// and the terminal done event, after which the stream closes.
func TestStreamFollowsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SampleEvery: 64})
	started := make(chan struct{})
	release := make(chan struct{})
	s.runCell = func(_ harness.Config, key harness.Key, opts harness.SweepOptions) (harness.Cell, bool, error) {
		close(started)
		<-release
		for i := uint64(1); i <= 3; i++ {
			opts.OnSample(key, telemetry.Sample{Cycle: i * opts.SampleInterval})
		}
		return fakeCell(42), false, nil
	}
	s.Start()
	j, code := submit(t, ts, "alice", tinySiloSpec("pipette"))
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	<-started
	// Attach mid-run: the replay buffer serves queued+running history.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	close(release)
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var states []string
	samples := 0
	for _, ev := range events {
		switch ev.Type {
		case "state":
			states = append(states, ev.State)
		case "sample":
			samples++
			if ev.Sample == nil || ev.Cycle == 0 {
				t.Fatalf("malformed sample event %+v", ev)
			}
		}
	}
	if want := []string{StateQueued, StateRunning, StateDone}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("stream states %v, want %v", states, want)
	}
	if samples != 3 {
		t.Fatalf("stream samples = %d, want 3", samples)
	}
}

// TestKillResume is the unit-scale crash drill (the full-fidelity version
// lives in soak_test.go): kill a server mid-flight, verify the on-disk
// state still says running/queued, then adopt the directory with a fresh
// instance and watch every job complete.
func TestKillResume(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	blocked := make(chan struct{})
	release := make(chan struct{})
	s1.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		close(blocked)
		<-release
		return harness.Cell{}, false, fmt.Errorf("zombie result, must be discarded")
	}
	s1.Start()
	j1, _ := submit(t, ts1, "alice", tinySiloSpec("pipette"))
	j2, _ := submit(t, ts1, "bob", tinySiloSpec("serial"))
	<-blocked
	s1.Kill()
	close(release) // the zombie settles after the crash; its error must not surface
	ts1.Close()

	st, err := newJobStore(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, j := range onDisk {
		states[j.ID] = j.State
	}
	if states[j1.ID] != StateRunning || states[j2.ID] != StateQueued {
		t.Fatalf("on-disk states after kill: %v", states)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	s2.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		return fakeCell(99), false, nil
	}
	s2.Start()
	stats := waitSettled(t, s2, terminal)
	if stats.Resumed != 2 || stats.Jobs[StateDone] != 2 || stats.Jobs[StateFailed] != 0 {
		t.Fatalf("stats after resume: %+v", stats)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		var got Job
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, &got); code != 200 || got.State != StateDone {
			t.Fatalf("resumed job %s: code %d state %+v", id, code, got.State)
		}
		if got.DedupHit {
			t.Fatalf("resumed job %s kept stale dedup flag", id)
		}
	}
}

// TestDrainGraceful: a clean drain finishes in-flight work, leaves queued
// work queued on disk, and rejects new submissions with 503.
func TestDrainGraceful(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	started := make(chan struct{})
	release := make(chan struct{})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		close(started)
		<-release
		return fakeCell(5), false, nil
	}
	s.Start()
	jRun, _ := submit(t, ts, "alice", tinySiloSpec("pipette"))
	<-started
	jQueued, _ := submit(t, ts, "alice", tinySiloSpec("serial"))

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let draining latch before releasing
	if _, code := submit(t, ts, "bob", tinySiloSpec("pipette")); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := newJobStore(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, j := range onDisk {
		states[j.ID] = j.State
	}
	if states[jRun.ID] != StateDone || states[jQueued.ID] != StateQueued {
		t.Fatalf("on-disk states after drain: %v", states)
	}
}

// TestDrainTimeoutRevertsRunning: when the context expires first, running
// jobs are reverted to queued on disk and the late result is discarded.
func TestDrainTimeoutRevertsRunning(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	started := make(chan struct{})
	release := make(chan struct{})
	s.runCell = func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error) {
		close(started)
		<-release
		return fakeCell(5), false, nil
	}
	s.Start()
	j, _ := submit(t, ts, "alice", tinySiloSpec("pipette"))
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain error %v, want deadline exceeded", err)
	}
	close(release) // zombie completes after the freeze
	time.Sleep(20 * time.Millisecond)
	st, err := newJobStore(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 1 || onDisk[0].ID != j.ID || onDisk[0].State != StateQueued {
		t.Fatalf("on-disk record after drain timeout: %+v", onDisk)
	}
}
