package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pipette/internal/harness"
)

// TestSoakKillRestart is the acceptance soak: 3 tenants x 20 jobs (with
// heavy duplication over the 5-cell tiny silo matrix) against a real
// simulation backend, one injected crash mid-computation, then a restart
// that must finish every job — zero lost, zero duplicated, zero failed,
// with dedup and cache hits observed and every returned Cell byte-
// identical to a direct harness.Sweep over a fresh cache.
func TestSoakKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs real simulations; skipped with -short")
	}
	dir := t.TempDir()
	cfg := tinySiloCfg()
	keys, _ := cfg.Matrix()
	if len(keys) != 5 {
		t.Fatalf("tiny silo matrix has %d cells, want 5", len(keys))
	}

	// Server 1: real execution, instrumented to crash the process (Kill)
	// while the third distinct cell is mid-simulation.
	s1, err := New(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var starts atomic.Int64
	thirdStarted := make(chan struct{})
	crashed := make(chan struct{})
	s1.runCell = func(c harness.Config, k harness.Key, opts harness.SweepOptions) (harness.Cell, bool, error) {
		if starts.Add(1) == 3 {
			close(thirdStarted)
			<-crashed // the "process" dies while this cell computes
			return harness.Cell{}, false, fmt.Errorf("interrupted by crash")
		}
		return harness.RunCell(c, k, opts)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// Submit everything before Start so the queue is deep when workers
	// come up. Queue order is engineered for both duplication flavors:
	// slots 0-14 put 9 adjacent copies of each cell in the queue (3
	// tenants x 3 slots), so whichever worker pops a duplicate while the
	// first copy computes must attach to its flight — dedup hits; slots
	// 15-19 append one more round-robin pass whose copies land long after
	// those flights settled — disk-cache hits.
	tenants := []string{"team-a", "team-b", "team-c"}
	const perTenant = 20
	keyFor := func(slot int) harness.Key {
		if slot < 15 {
			return keys[slot/3]
		}
		return keys[slot-15]
	}
	submitted := map[string]harness.Key{} // job id -> cell key
	for slot := 0; slot < perTenant; slot++ {
		for _, tenant := range tenants {
			key := keyFor(slot)
			spec := JobSpec{App: key.App, Variant: key.Variant, Input: key.Input, Config: &cfg}
			j, code := submit(t, ts1, tenant, spec)
			if code != http.StatusAccepted {
				t.Fatalf("%s slot %d: status %d", tenant, slot, code)
			}
			submitted[j.ID] = key
		}
	}
	if len(submitted) != len(tenants)*perTenant {
		t.Fatalf("submitted %d jobs, want %d", len(submitted), len(tenants)*perTenant)
	}
	s1.Start()
	select {
	case <-thirdStarted:
	case <-time.After(120 * time.Second):
		t.Fatal("third cell never started computing")
	}
	s1.Kill()
	close(crashed)
	ts1.Close()
	st1 := s1.Stats()

	// Server 2: plain restart over the same data dir, stock execution.
	s2, err := New(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.Start()
	deadline := time.Now().Add(10 * time.Minute)
	for {
		st := s2.Stats()
		if st.Jobs[StateQueued] == 0 && st.Jobs[StateRunning] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("soak did not settle; stats %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	st2 := s2.Stats()
	if st2.Resumed == 0 {
		t.Fatalf("restart resumed no jobs; stats %+v", st2)
	}
	if st1.DedupHits+st2.DedupHits == 0 {
		t.Fatalf("no dedup hits across the soak (s1 %+v, s2 %+v)", st1, st2)
	}
	if st1.CacheHits+st2.CacheHits == 0 {
		t.Fatalf("no cache hits across the soak (s1 %+v, s2 %+v)", st1, st2)
	}

	// Ground truth: the same matrix from a direct in-process sweep over a
	// fresh cache directory (no sharing with the server's store).
	eval, err := harness.Sweep(cfg, harness.SweepOptions{Jobs: 2, CacheDir: t.TempDir() + "/truth"})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(eval.Sweep.Failures); n != 0 {
		t.Fatalf("%d ground-truth cells failed: %v", n, eval.Sweep.Failures)
	}
	truth := map[harness.Key][]byte{}
	for k, c := range eval.Cells {
		truth[k] = canonCell(t, c)
	}

	// Every submitted job: exactly one record, state done, payload byte-
	// identical to the ground-truth cell.
	var listing struct{ Jobs []*Job }
	if code := getJSON(t, ts2.URL+"/v1/jobs", &listing); code != 200 {
		t.Fatalf("list jobs: %d", code)
	}
	if len(listing.Jobs) != len(submitted) {
		t.Fatalf("server reports %d jobs, submitted %d (lost or duplicated)", len(listing.Jobs), len(submitted))
	}
	seen := map[string]bool{}
	for _, j := range listing.Jobs {
		key, ok := submitted[j.ID]
		if !ok || seen[j.ID] {
			t.Fatalf("unexpected or duplicated job %s in listing", j.ID)
		}
		seen[j.ID] = true
		if j.State != StateDone {
			t.Fatalf("job %s finished as %s (%s)", j.ID, j.State, j.Error)
		}
		if j.Cell == nil {
			t.Fatalf("job %s done without a cell", j.ID)
		}
		if got, want := canonCell(t, *j.Cell), truth[key]; string(got) != string(want) {
			t.Fatalf("job %s (%v): cell differs from direct sweep\n got: %s\nwant: %s", j.ID, key, got, want)
		}
	}
	if len(seen) != len(submitted) {
		t.Fatalf("only %d of %d jobs accounted for", len(seen), len(submitted))
	}
}

// canonCell renders a Cell in comparison form: WallSeconds is the only
// nondeterministic field (FromCache is already json-invisible), so zero
// it and let the JSON encoding stand in for byte identity.
func canonCell(t *testing.T, c harness.Cell) []byte {
	t.Helper()
	c.WallSeconds = 0
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
