package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/harness"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenJob() *Job {
	seed := int64(7)
	dram := uint64(220)
	return &Job{
		Schema: JobSchema,
		ID:     "j-cafe0123-000042",
		Tenant: "team-a",
		Spec: JobSpec{
			App:     "silo",
			Variant: "pipette",
			Input:   "ycsbc",
			Tiny:    true,
			Seed:    &seed,
			DRAMLat: &dram,
		},
		State:         StateQueued,
		CellHash:      "deadbeef",
		SubmittedUnix: 1700000000,
	}
}

// TestJobGolden pins the canonical wire form of a pipette.job/v1 record:
// the exact bytes the store persists and pipette-validate accepts.
func TestJobGolden(t *testing.T) {
	got, err := EncodeJob(goldenJob())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "job_v1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job encoding drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
	j, err := ValidateJob(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden record does not validate: %v", err)
	}
	if j.ID != "j-cafe0123-000042" || j.Tenant != "team-a" || j.State != StateQueued {
		t.Fatalf("golden round-trip mismatch: %+v", j)
	}
}

func TestValidateJobRejects(t *testing.T) {
	mutate := func(f func(*Job)) string {
		j := goldenJob()
		f(j)
		data, err := EncodeJob(j)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	cases := []struct {
		name, doc, want string
	}{
		{"future version", mutate(func(j *Job) { j.Schema = "pipette.job/v2" }), "unsupported job schema version"},
		{"foreign schema", mutate(func(j *Job) { j.Schema = "pipette.sweepcell/v2" }), "not a job record"},
		{"no id", mutate(func(j *Job) { j.ID = "" }), "no id"},
		{"bad tenant", mutate(func(j *Job) { j.Tenant = "a b" }), "bad tenant"},
		{"no cell name", mutate(func(j *Job) { j.Spec.Variant = "" }), "must name app, variant and input"},
		{"bad state", mutate(func(j *Job) { j.State = "paused" }), "unknown state"},
		{"no timestamp", mutate(func(j *Job) { j.SubmittedUnix = 0 }), "missing submitted_unix"},
		{"done without cell", mutate(func(j *Job) { j.State = StateDone }), "done without cell"},
		{"failed without error", mutate(func(j *Job) { j.State = StateFailed }), "failed without an error"},
		{"queued with cell", mutate(func(j *Job) { j.Cell = &harness.Cell{} }), "carries a cell payload"},
		{"unknown field", `{"schema":"pipette.job/v1","id":"x","bogus":1}`, "bogus"},
	}
	for _, tc := range cases {
		_, err := ValidateJob(strings.NewReader(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestJobStoreConcurrentSave hammers one store from many goroutines (and
// distinct IDs from the same pid) to exercise the unique-temp-name write
// path; every surviving record must parse and match its file name.
func TestJobStoreConcurrentSave(t *testing.T) {
	dir := t.TempDir()
	st, err := newJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 8, 20
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			var ferr error
			for r := 0; r < rounds; r++ {
				j := goldenJob()
				j.ID = []string{"j-a", "j-b", "j-c", "j-d"}[w%4] // deliberate same-ID contention
				j.SubmittedUnix = int64(1700000000 + r)
				if err := st.save(j); err != nil {
					ferr = err
				}
			}
			done <- ferr
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	jobs, skipped, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(jobs) != 4 {
		t.Fatalf("loadAll = %d jobs, %d skipped; want 4, 0", len(jobs), skipped)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestJobStoreClosedDropsWrites verifies the zombie-write guard: saves
// after close are silent no-ops, so a computation finishing after a crash
// cannot rewrite a record the next server instance owns.
func TestJobStoreClosedDropsWrites(t *testing.T) {
	st, err := newJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := goldenJob()
	if err := st.save(j); err != nil {
		t.Fatal(err)
	}
	st.close()
	j2 := goldenJob()
	j2.State = StateFailed
	j2.Error = "zombie"
	if err := st.save(j2); err != nil {
		t.Fatal(err)
	}
	jobs, _, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != StateQueued {
		t.Fatalf("record after closed save = %+v, want original queued record", jobs[0])
	}
}
