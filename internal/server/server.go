// Package server is pipette's simulation-as-a-service front end: a
// multi-tenant HTTP/JSON API (stdlib net/http only) that accepts
// simulation jobs, schedules them on a bounded worker fleet layered on
// the internal/harness sweep engine, and serves results out of the same
// content-addressed sweep cache the CLI tools use.
//
// The moving parts, in one place:
//
//   - Persistent job queue: every accepted job is a pipette.job/v1
//     record on disk before the submit response goes out. States move
//     queued -> running -> done|failed; a restarted server re-queues
//     whatever was queued or running and completes it with byte-identical
//     results (determinism + the content-addressed cache — the PR 3
//     crash-resume argument, promoted to a serving loop).
//   - Single-flight dedup: jobs are keyed by the sweep cell hash. While
//     one job computes a cell, every other job asking for the same hash
//     attaches to that flight and shares its one execution; completed
//     cells come straight from the disk cache.
//   - Tenancy: the X-Pipette-Tenant header names the tenant; each gets a
//     token-bucket submission rate limit and a concurrent-job quota.
//   - Streaming: GET /v1/jobs/{id}/stream follows a job as chunked JSON
//     lines — state transitions plus live internal/telemetry samples
//     forwarded from the simulation loop.
//   - Observability: GET /healthz returns the counter snapshot; the same
//     snapshot is published as the "pipette_server" expvar on
//     GET /debug/vars.
//   - Drain: Drain() stops admission and dispatch, lets running cells
//     finish (or, on timeout, reverts them to queued for the next
//     process), and persists everything else untouched. Kill() models a
//     crash for tests: in-flight results are discarded so the on-disk
//     state is exactly what a dead process leaves behind.
//
// See docs/SERVER.md for the API reference and lifecycle details.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pipette/internal/harness"
	"pipette/internal/telemetry"
)

// Config configures one server instance.
type Config struct {
	// DataDir roots the server's persistent state: job records under
	// DataDir/jobs, the content-addressed result store (the sweep cache)
	// under DataDir/sweepcache.
	DataDir string
	// Workers sizes the simulation fleet; <= 0 selects GOMAXPROCS.
	Workers int
	// Limits is the per-tenant admission control.
	Limits TenantLimits
	// SampleEvery is the job-stream telemetry sample period in cycles;
	// 0 selects 65536 (coarse on purpose — streams are progress feeds,
	// not the CSV sink).
	SampleEvery uint64
	// Log, when non-nil, receives operational log lines.
	Log io.Writer
}

// Stats is the counter snapshot served by /healthz and the
// "pipette_server" expvar.
type Stats struct {
	Status         string         `json:"status"` // "ok" | "draining"
	Workers        int            `json:"workers"`
	QueueDepth     int            `json:"queue_depth"`
	InFlight       int            `json:"in_flight"` // cells computing right now
	Jobs           map[string]int `json:"jobs"`      // records by state
	Tenants        int            `json:"tenants"`
	Submitted      int64          `json:"submitted"`
	Computed       int64          `json:"computed"`
	DedupHits      int64          `json:"dedup_hits"`
	CacheHits      int64          `json:"cache_hits"`
	RateLimited    int64          `json:"rate_limited"`
	QuotaRejected  int64          `json:"quota_rejected"`
	Resumed        int64          `json:"resumed"`
	SkippedRecords int64          `json:"skipped_records"`
}

// flight is one in-progress cell computation; waiters are jobs that
// asked for the same cell hash while it was running and share the result.
type flight struct {
	hash    string
	leader  string
	waiters []string
}

// Server is one pipette-server instance. Create with New, launch the
// fleet with Start, serve Handler, stop with Drain (graceful) or Kill
// (crash injection for tests).
type Server struct {
	cfg     Config
	store   *jobStore
	tenants *tenantSet
	mux     *http.ServeMux

	// runCell is the execution seam: tests instrument it to count or gate
	// real cell computations. The default delegates to harness.RunCell.
	runCell func(harness.Config, harness.Key, harness.SweepOptions) (harness.Cell, bool, error)

	matMu    sync.Mutex
	matrices map[harness.Config]map[harness.Key]int

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // submit order, for listing
	queue    []string // pending job ids, FIFO
	flights  map[string]*flight
	streams  map[string]*stream
	inflight int
	seq      int
	nonce    string
	draining bool
	killed   bool
	started  bool

	submitted, computed, dedupHits, cacheHits    atomic.Int64
	rateLimited, quotaRejected, resumed, skiprec atomic.Int64

	workerWG sync.WaitGroup
}

// expvar names are process-global, so the package publishes one Func that
// reads whichever server instance is current (tests start several).
var (
	activeSrv  atomic.Pointer[Server]
	expvarOnce sync.Once
)

func registerExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("pipette_server", expvar.Func(func() any {
			if s := activeSrv.Load(); s != nil {
				return s.Stats()
			}
			return nil
		}))
	})
}

// New builds a server over DataDir and adopts every job record found
// there: done/failed jobs are served as history, queued and interrupted
// running jobs go back on the queue (crash/drain resume). Nothing runs
// until Start.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Config.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 65536
	}
	store, err := newJobStore(filepath.Join(cfg.DataDir, "jobs"))
	if err != nil {
		return nil, err
	}
	var nb [4]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		tenants:  newTenantSet(cfg.Limits),
		runCell:  harness.RunCell,
		matrices: map[harness.Config]map[harness.Key]int{},
		jobs:     map[string]*Job{},
		flights:  map[string]*flight{},
		streams:  map[string]*stream{},
		nonce:    hex.EncodeToString(nb[:]),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.adopt(); err != nil {
		return nil, err
	}
	s.buildMux()
	activeSrv.Store(s)
	registerExpvar()
	return s, nil
}

// adopt scans the job store and rebuilds queue + records.
func (s *Server) adopt() error {
	jobs, skipped, err := s.store.loadAll()
	if err != nil {
		return err
	}
	s.skiprec.Store(int64(skipped))
	for _, j := range jobs {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if j.State == StateDone || j.State == StateFailed {
			continue
		}
		// Interrupted or never-started work: back to the queue. Provenance
		// flags describe the previous attempt, so reset them.
		j.State = StateQueued
		j.StartedUnix, j.FinishedUnix = 0, 0
		j.DedupHit, j.CacheHit = false, false
		if j.CellHash == "" {
			// Hand-seeded or legacy record: resolve (and validate) the cell now.
			cfg := j.Spec.HarnessConfig()
			cores, err := s.cellCores(cfg, j.Spec.Key())
			if err != nil {
				j.State = StateFailed
				j.Error = err.Error()
				j.FinishedUnix = time.Now().Unix()
				_ = s.store.save(j)
				continue
			}
			j.CellHash = cfg.HashCell(j.Spec.Key(), cores, j.Spec.Warmup)
		}
		if err := s.store.save(j); err != nil {
			return err
		}
		s.tenants.claim(j.Tenant)
		s.queue = append(s.queue, j.ID)
		s.streams[j.ID] = newStream()
		s.resumed.Add(1)
		s.logf("resumed job %s (%s/%s/%s, tenant %s)", j.ID, j.Spec.App, j.Spec.Variant, j.Spec.Input, j.Tenant)
	}
	return nil
}

// Start launches the worker fleet. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.killed {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) sweepCacheDir() string { return filepath.Join(s.cfg.DataDir, "sweepcache") }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "pipette-server: "+format+"\n", args...)
	}
}

// cellCores validates that key exists in cfg's matrix and returns its
// core count, memoizing the (expensive) matrix enumeration per Config.
func (s *Server) cellCores(cfg harness.Config, key harness.Key) (int, error) {
	s.matMu.Lock()
	defer s.matMu.Unlock()
	m, ok := s.matrices[cfg]
	if !ok {
		_, m = cfg.Matrix()
		s.matrices[cfg] = m
	}
	cores, ok := m[key]
	if !ok {
		return 0, fmt.Errorf("no cell %s/%s/%s in the evaluation matrix for this config",
			key.App, key.Variant, key.Input)
	}
	return cores, nil
}

// worker pulls queued jobs: each either becomes the leader of a new
// flight (and computes the cell) or attaches to the running flight for
// its hash and waits for free. Workers exit on drain or kill; a draining
// worker leaves the rest of the queue persisted for the next process.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining && !s.killed {
			s.cond.Wait()
		}
		if s.draining || s.killed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		job := s.jobs[id]
		job.State = StateRunning
		job.StartedUnix = time.Now().Unix()
		st := s.streams[id]
		if fl, ok := s.flights[job.CellHash]; ok {
			job.DedupHit = true
			s.dedupHits.Add(1)
			fl.waiters = append(fl.waiters, id)
			leader := fl.leader
			s.persistLocked(job)
			s.mu.Unlock()
			st.publish(StreamEvent{Type: "state", Job: id, State: StateRunning})
			st.publish(StreamEvent{Type: "dedup", Job: id, Leader: leader})
			continue
		}
		fl := &flight{hash: job.CellHash, leader: id}
		s.flights[job.CellHash] = fl
		s.inflight++
		hcfg := job.Spec.HarnessConfig()
		key := job.Spec.Key()
		warm := job.Spec.Warmup
		s.persistLocked(job)
		s.mu.Unlock()
		st.publish(StreamEvent{Type: "state", Job: id, State: StateRunning})
		opts := harness.SweepOptions{
			CacheDir:       s.sweepCacheDir(),
			Warmup:         warm,
			SampleInterval: s.cfg.SampleEvery,
			OnSample: func(_ harness.Key, smp telemetry.Sample) {
				sm := smp
				st.publish(StreamEvent{Type: "sample", Job: id, Cycle: smp.Cycle, Sample: &sm})
			},
		}
		cell, hit, err := s.runCell(hcfg, key, opts)
		s.settle(fl, cell, hit, err)
	}
}

// settle completes a flight: the leader and every waiter get the shared
// result, persisted and streamed. After Kill (crash injection) results
// are discarded — the on-disk records keep saying "running", exactly as
// a dead process would leave them, and the next server re-queues them.
func (s *Server) settle(fl *flight, cell harness.Cell, hit bool, err error) {
	now := time.Now().Unix()
	s.mu.Lock()
	delete(s.flights, fl.hash)
	s.inflight--
	if s.killed {
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	if err == nil {
		if hit {
			s.cacheHits.Add(1)
		} else {
			s.computed.Add(1)
		}
	}
	shared := cell // one immutable payload shared by leader and waiters
	var publishes []func()
	for i, id := range append([]string{fl.leader}, fl.waiters...) {
		job := s.jobs[id]
		job.FinishedUnix = now
		if err != nil {
			job.State = StateFailed
			job.Error = err.Error()
		} else {
			job.State = StateDone
			job.Cell = &shared
			if i == 0 {
				job.CacheHit = hit
			}
		}
		s.persistLocked(job)
		s.tenants.release(job.Tenant)
		st := s.streams[id]
		state, jerr, jid := job.State, job.Error, id
		publishes = append(publishes, func() {
			st.publish(StreamEvent{Type: "state", Job: jid, State: state, Error: jerr})
			st.close()
		})
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, pub := range publishes {
		pub()
	}
}

// persistLocked saves a record while holding s.mu (records are small;
// keeping persistence inside the critical section keeps disk order equal
// to state order). Failures are logged, never fatal to the job flow.
func (s *Server) persistLocked(j *Job) {
	if err := s.store.save(j); err != nil {
		s.logf("persist %s: %v", j.ID, err)
	}
}

// Drain stops admission and dispatch, waits for in-flight cells, and
// freezes the store. If ctx expires first, still-running jobs are
// reverted to queued on disk — the next process recomputes them
// deterministically — and their late results are discarded.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.logf("draining: waiting for in-flight cells")
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			s.workerWG.Wait()
			s.store.close()
			activeSrv.CompareAndSwap(s, nil)
			s.logf("drained cleanly")
			return nil
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for _, fl := range s.flights {
				for _, id := range append([]string{fl.leader}, fl.waiters...) {
					job := s.jobs[id]
					job.State = StateQueued
					job.StartedUnix = 0
					job.DedupHit = false
					s.persistLocked(job)
				}
			}
			s.killed = true // discard the zombie completions
			s.cond.Broadcast()
			s.mu.Unlock()
			s.store.close()
			activeSrv.CompareAndSwap(s, nil)
			s.logf("drain timed out; running jobs reverted to queued")
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Kill models a crash for the soak tests: stop everything instantly and
// discard any in-flight results, leaving the on-disk state exactly as a
// dead process would — running/queued records that the next New() must
// resume. It never waits for in-flight simulations (a real crash would
// not either); their completions are silently dropped.
func (s *Server) Kill() {
	s.mu.Lock()
	s.killed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.store.close()
	activeSrv.CompareAndSwap(s, nil)
}

// Stats assembles the live counter snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	byState := map[string]int{}
	for _, j := range s.jobs {
		byState[j.State]++
	}
	st := Stats{
		Status:         "ok",
		Workers:        s.cfg.Workers,
		QueueDepth:     len(s.queue),
		InFlight:       s.inflight,
		Jobs:           byState,
		Submitted:      s.submitted.Load(),
		Computed:       s.computed.Load(),
		DedupHits:      s.dedupHits.Load(),
		CacheHits:      s.cacheHits.Load(),
		RateLimited:    s.rateLimited.Load(),
		QuotaRejected:  s.quotaRejected.Load(),
		Resumed:        s.resumed.Load(),
		SkippedRecords: s.skiprec.Load(),
	}
	if s.draining || s.killed {
		st.Status = "draining"
	}
	s.mu.Unlock()
	st.Tenants = s.tenants.count()
	return st
}

// ---- HTTP layer ----

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// tenantOf extracts and validates the tenant name; the header is
// optional, anonymous traffic shares the "default" tenant (and its
// limits).
func tenantOf(r *http.Request) (string, error) {
	name := r.Header.Get("X-Pipette-Tenant")
	if name == "" {
		return "default", nil
	}
	if !tenantRe.MatchString(name) {
		return "", fmt.Errorf("bad X-Pipette-Tenant %q", name)
	}
	return name, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenantName, err := tenantOf(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.App == "" || spec.Variant == "" || spec.Input == "" {
		httpError(w, http.StatusBadRequest, "job spec must name app, variant and input")
		return
	}
	hcfg := spec.HarnessConfig()
	key := spec.Key()
	cores, err := s.cellCores(hcfg, key)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash := hcfg.HashCell(key, cores, spec.Warmup)

	switch s.tenants.admit(tenantName) {
	case admitRateLimited:
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %s: %s", tenantName, admitRateLimited)
		return
	case admitQuotaFull:
		s.quotaRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %s: %s", tenantName, admitQuotaFull)
		return
	}

	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		s.tenants.release(tenantName)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.seq++
	job := &Job{
		Schema:        JobSchema,
		ID:            fmt.Sprintf("j-%s-%06d", s.nonce, s.seq),
		Tenant:        tenantName,
		Spec:          spec,
		State:         StateQueued,
		CellHash:      hash,
		SubmittedUnix: time.Now().Unix(),
	}
	if err := s.store.save(job); err != nil {
		s.mu.Unlock()
		s.tenants.release(tenantName)
		httpError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.queue = append(s.queue, job.ID)
	st := newStream()
	s.streams[job.ID] = st
	s.submitted.Add(1)
	resp := job.clone()
	s.cond.Signal()
	s.mu.Unlock()
	st.publish(StreamEvent{Type: "state", Job: job.ID, State: StateQueued})
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenantFilter := r.URL.Query().Get("tenant")
	stateFilter := r.URL.Query().Get("state")
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if (tenantFilter == "" || j.Tenant == tenantFilter) &&
			(stateFilter == "" || j.State == stateFilter) {
			jobs = append(jobs, j.clone())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) jobByID(id string) (*Job, *stream) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, nil
	}
	return j.clone(), s.streams[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, _ := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, _ := s.jobByID(r.PathValue("id"))
	switch {
	case j == nil:
		httpError(w, http.StatusNotFound, "no such job")
	case j.State == StateFailed:
		httpError(w, http.StatusConflict, "job failed: %s", j.Error)
	case j.State != StateDone:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": j.State})
	default:
		writeJSON(w, http.StatusOK, j.Cell)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, st := s.jobByID(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if st == nil {
		// Job finished in an earlier server incarnation: no live stream,
		// synthesize the terminal event from the record.
		line, _ := json.Marshal(StreamEvent{Type: "state", Job: id, State: j.State, Error: j.Error, Unix: j.FinishedUnix})
		w.Write(append(line, '\n'))
		flush()
		return
	}
	ctx := r.Context()
	stopWake := context.AfterFunc(ctx, st.wake)
	defer stopWake()
	idx := 0
	for {
		line, next, more := st.next(idx, func() bool { return ctx.Err() != nil })
		if !more {
			return
		}
		idx = next
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
