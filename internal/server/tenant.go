// Per-tenant admission control: a token-bucket rate limit on job
// submissions plus a cap on concurrently active (queued + running) jobs.
// Tenants are identified by the X-Pipette-Tenant header; every tenant
// gets the same limits (the server is a shared-fleet scheduler, not a
// billing system). Both checks happen at submit time so a hot tenant can
// saturate neither the queue nor the worker fleet.
package server

import (
	"sync"
	"time"
)

// TenantLimits configures admission control, applied identically to each
// tenant. Zero values disable the corresponding check.
type TenantLimits struct {
	Rate      float64 // job submissions per second refilled; <= 0 disables rate limiting
	Burst     int     // token-bucket capacity; <= 0 selects max(1, ceil(Rate))
	MaxActive int     // max queued+running jobs per tenant; <= 0 disables the quota
}

func (l TenantLimits) burst() float64 {
	if l.Burst > 0 {
		return float64(l.Burst)
	}
	if l.Rate >= 1 {
		return l.Rate
	}
	return 1
}

// tenant is one tenant's live admission state. Guarded by the server's
// lock: admission decisions must be atomic with queue mutations.
type tenant struct {
	name      string
	tokens    float64
	lastFill  time.Time
	active    int   // queued + running jobs
	submitted int64 // accepted jobs, lifetime
}

// tenantSet lazily materializes tenants on first sight.
type tenantSet struct {
	mu     sync.Mutex
	limits TenantLimits
	m      map[string]*tenant
	now    func() time.Time // test hook
}

func newTenantSet(limits TenantLimits) *tenantSet {
	return &tenantSet{limits: limits, m: map[string]*tenant{}, now: time.Now}
}

func (ts *tenantSet) get(name string) *tenant {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.m[name]
	if !ok {
		t = &tenant{name: name, tokens: ts.limits.burst(), lastFill: ts.now()}
		ts.m[name] = t
	}
	return t
}

func (ts *tenantSet) count() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.m)
}

// admitReason explains a rejection; empty means admitted.
type admitReason string

const (
	admitOK          admitReason = ""
	admitRateLimited admitReason = "rate limit exceeded"
	admitQuotaFull   admitReason = "concurrent-job quota exhausted"
)

// admit charges one submission against the tenant: refill the bucket by
// elapsed wall time, take a token, and claim an active-job slot. On
// rejection nothing is consumed.
func (ts *tenantSet) admit(name string) admitReason {
	t := ts.get(name)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.limits.MaxActive > 0 && t.active >= ts.limits.MaxActive {
		return admitQuotaFull
	}
	if ts.limits.Rate > 0 {
		now := ts.now()
		t.tokens += now.Sub(t.lastFill).Seconds() * ts.limits.Rate
		if capacity := ts.limits.burst(); t.tokens > capacity {
			t.tokens = capacity
		}
		t.lastFill = now
		if t.tokens < 1 {
			return admitRateLimited
		}
		t.tokens--
	}
	t.active++
	t.submitted++
	return admitOK
}

// release returns an active-job slot when a job reaches a terminal state
// (or is adopted as already-terminal during a restart scan).
func (ts *tenantSet) release(name string) {
	t := ts.get(name)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t.active > 0 {
		t.active--
	}
}

// claim re-registers an active job during the restart scan, bypassing
// rate limiting: the job was admitted before the restart.
func (ts *tenantSet) claim(name string) {
	t := ts.get(name)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t.active++
	t.submitted++
}
