// Per-job progress/telemetry streams: chunked JSON lines (ndjson) of
// state transitions and live telemetry samples. Each job owns one stream
// with a bounded replay buffer; subscribers walk it by absolute index —
// connect late and the retained history replays, then the walk follows
// live appends until the job reaches a terminal state. Samples come
// straight from internal/telemetry's Sampler via the sweep engine's
// OnSample hook; only the job that actually computes a cell emits
// samples (dedup followers see state events plus a pointer at the
// computing job).
package server

import (
	"encoding/json"
	"sync"
	"time"

	"pipette/internal/telemetry"
)

// StreamEvent is one line of a job stream.
type StreamEvent struct {
	Type   string            `json:"type"` // "state" | "sample" | "dedup"
	Job    string            `json:"job"`
	Unix   int64             `json:"unix,omitempty"`
	State  string            `json:"state,omitempty"`  // with type "state"
	Error  string            `json:"error,omitempty"`  // with terminal "state" events
	Leader string            `json:"leader,omitempty"` // with type "dedup": the computing job
	Cycle  uint64            `json:"cycle,omitempty"`  // with type "sample"
	Sample *telemetry.Sample `json:"sample,omitempty"` // with type "sample"
}

// streamHistCap bounds the retained lines per job. State events are few,
// so the cap effectively limits samples; when it overflows, the oldest
// retained line is dropped and late subscribers start further in.
const streamHistCap = 512

type stream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	hist    [][]byte
	dropped int // lines aged out of the front of hist
	closed  bool
}

func newStream() *stream {
	st := &stream{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// publish appends one event line and wakes every waiting subscriber.
func (st *stream) publish(ev StreamEvent) {
	if ev.Unix == 0 {
		ev.Unix = time.Now().Unix()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	if len(st.hist) >= streamHistCap {
		copy(st.hist, st.hist[1:])
		st.hist = st.hist[:len(st.hist)-1]
		st.dropped++
	}
	st.hist = append(st.hist, line)
	st.cond.Broadcast()
}

// close marks the stream complete (after the terminal state event) and
// unblocks every subscriber.
func (st *stream) close() {
	st.mu.Lock()
	st.closed = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// wake lets the handler interrupt next() when its client disconnects.
func (st *stream) wake() {
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// next blocks until the line at absolute index idx (or a later one, if
// the buffer aged it out) is available, the stream closes, or stop
// returns true. It returns the line, the next index to ask for, and
// whether the subscriber should keep reading.
func (st *stream) next(idx int, stop func() bool) (line []byte, nextIdx int, more bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if idx < st.dropped {
			idx = st.dropped
		}
		if idx < st.dropped+len(st.hist) {
			return st.hist[idx-st.dropped], idx + 1, true
		}
		if st.closed || stop() {
			return nil, idx, false
		}
		st.cond.Wait()
	}
}
