package isa

import (
	"strings"
	"testing"
)

func TestParseAsmBasic(t *testing.T) {
	p, err := ParseAsm(`
; a counting loop
.name counter
.set r1 10
loop:
  subi r1, r1, 1    ; decrement
  bnei r1, 0, loop
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "counter" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Code) != 3 {
		t.Fatalf("code len = %d", len(p.Code))
	}
	if p.Code[0].Op != OpSub || !p.Code[0].UseImm || p.Code[0].Imm != 1 {
		t.Fatalf("subi parsed as %+v", p.Code[0])
	}
	if p.Code[1].Op != OpBne || p.Code[1].Target != 0 {
		t.Fatalf("bnei parsed as %+v", p.Code[1])
	}
	if p.InitRegs[1] != 10 {
		t.Fatalf("initregs = %v", p.InitRegs)
	}
}

func TestParseAsmQueuesAndHandlers(t *testing.T) {
	p, err := ParseAsm(`
.map r10 q0 in
.map r11 q1 out
.ondeq dh
.onenq eh
  mov r10, r11      ; dequeue q1, enqueue q0
  enqc q0, r3
  enqc q0, 99
  peek r4, q1
  skipc r5, q1
  qpoll r6, q1
  halt
dh:
  halt
eh:
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := p.BindingFor(10); !ok || b.Q != 0 || b.Dir != QueueIn {
		t.Fatalf("binding r10: %+v %v", b, ok)
	}
	if b, ok := p.BindingFor(11); !ok || b.Q != 1 || b.Dir != QueueOut {
		t.Fatalf("binding r11: %+v %v", b, ok)
	}
	if p.DeqHandler < 0 || p.EnqHandler < 0 {
		t.Fatal("handlers not registered")
	}
	if p.Code[1].Op != OpEnqC || p.Code[1].Ra != 3 {
		t.Fatalf("enqc reg form: %+v", p.Code[1])
	}
	if p.Code[2].Op != OpEnqC || !p.Code[2].UseImm || p.Code[2].Imm != 99 {
		t.Fatalf("enqc imm form: %+v", p.Code[2])
	}
	for i, want := range map[int]Op{3: OpPeek, 4: OpSkipC, 5: OpQPoll} {
		if p.Code[i].Op != want {
			t.Fatalf("code[%d] = %v, want %v", i, p.Code[i].Op, want)
		}
	}
}

func TestParseAsmMemoryAndAtomics(t *testing.T) {
	p, err := ParseAsm(`
  ld8 r1, r2, 16
  st4 r2, 8, r3
  cas r4, r5, r6, r7
  fetchadd r1, r2, r3
  movi r9, 0xFF
  itof r1, r2
  labeladdr r3, tgt
tgt:
  jr r3
  jmp tgt
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != OpLd8 || p.Code[0].Imm != 16 {
		t.Fatalf("ld8: %+v", p.Code[0])
	}
	if p.Code[1].Op != OpSt4 || p.Code[1].Rb != 3 {
		t.Fatalf("st4: %+v", p.Code[1])
	}
	if p.Code[2].Op != OpCas || p.Code[2].Rc != 7 {
		t.Fatalf("cas: %+v", p.Code[2])
	}
	if p.Code[4].Imm != 0xFF {
		t.Fatalf("movi hex: %+v", p.Code[4])
	}
	if p.Code[6].Op != OpAdd || p.Code[6].Imm != 7 { // labeladdr of tgt (pc 7)
		t.Fatalf("labeladdr: %+v", p.Code[6])
	}
}

func TestParseAsmHandlerRegisters(t *testing.T) {
	p, err := ParseAsm(`
  mov r1, rhcv
  mov r2, rhq
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Ra != RHCV || p.Code[1].Ra != RHQ {
		t.Fatalf("handler regs: %+v %+v", p.Code[0], p.Code[1])
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []string{
		"frobnicate r1, r2", // unknown mnemonic
		"add r1, r2",        // arity
		"add r1, r2, r99",   // bad register
		"jmp nowhere\nhalt", // unknown label at link
		"peek r1, x2",       // bad queue
		"addi r1, r2, zz",   // bad immediate
		"bad label:",        // label with space
	}
	for _, src := range cases {
		if _, err := ParseAsm(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// Parsed and builder-built programs are interchangeable: assemble the same
// loop both ways and compare the linked code.
func TestParseAsmMatchesBuilder(t *testing.T) {
	parsed, err := ParseAsm(`
.set r1 5
l:
  addi r2, r2, 3
  subi r1, r1, 1
  bnei r1, 0, l
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewAssembler("asm")
	b.SetReg(1, 5)
	b.Label("l")
	b.AddI(2, 2, 3)
	b.SubI(1, 1, 1)
	b.BneI(1, 0, "l")
	b.Halt()
	built := b.MustLink()
	if len(parsed.Code) != len(built.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(parsed.Code), len(built.Code))
	}
	for i := range built.Code {
		if parsed.Code[i] != built.Code[i] {
			t.Fatalf("inst %d differs: %+v vs %+v", i, parsed.Code[i], built.Code[i])
		}
	}
}

func TestParseAsmLineNumbersInErrors(t *testing.T) {
	_, err := ParseAsm("halt\nbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}
