package isa

import "fmt"

// Assembler builds a Program instruction by instruction. Branch targets are
// symbolic labels resolved by Link. Methods panic on misuse (unknown label at
// link time, double label definition): programs are built by trusted
// benchmark code, and failing fast during construction beats propagating
// errors through every emit call.
type Assembler struct {
	name     string
	code     []Inst
	labels   map[string]int
	bindings []QueueBinding
	initRegs map[Reg]uint64
	deqH     string // label of dequeue control handler
	enqH     string
}

// NewAssembler returns an empty assembler for a program with the given name.
func NewAssembler(name string) *Assembler {
	return &Assembler{
		name:     name,
		labels:   map[string]int{},
		initRegs: map[Reg]uint64{},
	}
}

// Label defines a label at the current position.
func (a *Assembler) Label(l string) {
	if _, dup := a.labels[l]; dup {
		panic(fmt.Sprintf("asm %s: duplicate label %q", a.name, l))
	}
	a.labels[l] = len(a.code)
}

// MapQ binds an architectural register to a queue endpoint (the privileged
// map operation of Sec. III-C, performed before the thread runs).
func (a *Assembler) MapQ(r Reg, q uint8, dir QueueDir) {
	a.bindings = append(a.bindings, QueueBinding{Reg: r, Q: q, Dir: dir})
}

// SetReg seeds an architectural register's initial value.
func (a *Assembler) SetReg(r Reg, v uint64) { a.initRegs[r] = v }

// OnDeqCV registers the dequeue control handler entry label.
func (a *Assembler) OnDeqCV(label string) { a.deqH = label }

// OnEnqCV registers the enqueue control handler entry label.
func (a *Assembler) OnEnqCV(label string) { a.enqH = label }

func (a *Assembler) emit(i Inst) { a.code = append(a.code, i) }

// --- integer ALU ---

func (a *Assembler) op3(op Op, rd, ra, rb Reg) { a.emit(Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}) }
func (a *Assembler) opImm(op Op, rd, ra Reg, imm int64) {
	a.emit(Inst{Op: op, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// Add emits rd = ra + rb.
func (a *Assembler) Add(rd, ra, rb Reg) { a.op3(OpAdd, rd, ra, rb) }

// AddI emits rd = ra + imm.
func (a *Assembler) AddI(rd, ra Reg, imm int64) { a.opImm(OpAdd, rd, ra, imm) }

// Sub emits rd = ra - rb.
func (a *Assembler) Sub(rd, ra, rb Reg) { a.op3(OpSub, rd, ra, rb) }

// SubI emits rd = ra - imm.
func (a *Assembler) SubI(rd, ra Reg, imm int64) { a.opImm(OpSub, rd, ra, imm) }

// And emits rd = ra & rb.
func (a *Assembler) And(rd, ra, rb Reg) { a.op3(OpAnd, rd, ra, rb) }

// AndI emits rd = ra & imm.
func (a *Assembler) AndI(rd, ra Reg, imm int64) { a.opImm(OpAnd, rd, ra, imm) }

// Or emits rd = ra | rb.
func (a *Assembler) Or(rd, ra, rb Reg) { a.op3(OpOr, rd, ra, rb) }

// OrI emits rd = ra | imm.
func (a *Assembler) OrI(rd, ra Reg, imm int64) { a.opImm(OpOr, rd, ra, imm) }

// Xor emits rd = ra ^ rb.
func (a *Assembler) Xor(rd, ra, rb Reg) { a.op3(OpXor, rd, ra, rb) }

// ShlI emits rd = ra << imm.
func (a *Assembler) ShlI(rd, ra Reg, imm int64) { a.opImm(OpShl, rd, ra, imm) }

// ShrI emits rd = ra >> imm (logical).
func (a *Assembler) ShrI(rd, ra Reg, imm int64) { a.opImm(OpShr, rd, ra, imm) }

// Mul emits rd = ra * rb.
func (a *Assembler) Mul(rd, ra, rb Reg) { a.op3(OpMul, rd, ra, rb) }

// MulI emits rd = ra * imm.
func (a *Assembler) MulI(rd, ra Reg, imm int64) { a.opImm(OpMul, rd, ra, imm) }

// Div emits rd = ra / rb (unsigned; /0 yields all-ones).
func (a *Assembler) Div(rd, ra, rb Reg) { a.op3(OpDiv, rd, ra, rb) }

// Sltu emits rd = 1 if ra < rb (unsigned) else 0.
func (a *Assembler) Sltu(rd, ra, rb Reg) { a.op3(OpSltu, rd, ra, rb) }

// Min emits rd = min(ra, rb) (unsigned).
func (a *Assembler) Min(rd, ra, rb Reg) { a.op3(OpMin, rd, ra, rb) }

// Max emits rd = max(ra, rb) (unsigned).
func (a *Assembler) Max(rd, ra, rb Reg) { a.op3(OpMax, rd, ra, rb) }

// Mov copies ra into rd (an add with zero). Writing to a queue-mapped rd
// makes this the canonical "enqueue a copy" instruction.
func (a *Assembler) Mov(rd, ra Reg) { a.opImm(OpAdd, rd, ra, 0) }

// MovI loads a 64-bit immediate into rd.
func (a *Assembler) MovI(rd Reg, imm int64) { a.opImm(OpAdd, rd, R0, imm) }

// MovU loads a 64-bit unsigned immediate (e.g. an address or float bits).
func (a *Assembler) MovU(rd Reg, imm uint64) { a.opImm(OpAdd, rd, R0, int64(imm)) }

// --- floating point ---

// FAdd emits rd = f(ra) + f(rb).
func (a *Assembler) FAdd(rd, ra, rb Reg) { a.op3(OpFAdd, rd, ra, rb) }

// FSub emits rd = f(ra) - f(rb).
func (a *Assembler) FSub(rd, ra, rb Reg) { a.op3(OpFSub, rd, ra, rb) }

// FMul emits rd = f(ra) * f(rb).
func (a *Assembler) FMul(rd, ra, rb Reg) { a.op3(OpFMul, rd, ra, rb) }

// FDiv emits rd = f(ra) / f(rb).
func (a *Assembler) FDiv(rd, ra, rb Reg) { a.op3(OpFDiv, rd, ra, rb) }

// FLt emits rd = 1 if f(ra) < f(rb) else 0.
func (a *Assembler) FLt(rd, ra, rb Reg) { a.op3(OpFLt, rd, ra, rb) }

// FAbs emits rd = |f(ra)|.
func (a *Assembler) FAbs(rd, ra Reg) { a.emit(Inst{Op: OpFAbs, Rd: rd, Ra: ra}) }

// IToF emits rd = float64(int64(ra)).
func (a *Assembler) IToF(rd, ra Reg) { a.emit(Inst{Op: OpIToF, Rd: rd, Ra: ra}) }

// --- memory ---

// Ld8 emits rd = mem64[ra+off].
func (a *Assembler) Ld8(rd, ra Reg, off int64) { a.emit(Inst{Op: OpLd8, Rd: rd, Ra: ra, Imm: off}) }

// Ld4 emits rd = zext(mem32[ra+off]).
func (a *Assembler) Ld4(rd, ra Reg, off int64) { a.emit(Inst{Op: OpLd4, Rd: rd, Ra: ra, Imm: off}) }

// St8 emits mem64[ra+off] = rb.
func (a *Assembler) St8(ra Reg, off int64, rb Reg) {
	a.emit(Inst{Op: OpSt8, Ra: ra, Imm: off, Rb: rb})
}

// St4 emits mem32[ra+off] = rb.
func (a *Assembler) St4(ra Reg, off int64, rb Reg) {
	a.emit(Inst{Op: OpSt4, Ra: ra, Imm: off, Rb: rb})
}

// Cas compares mem[ra] with expected rb; if equal stores rc. rd gets old value.
func (a *Assembler) Cas(rd, ra, rb, rc Reg) { a.emit(Inst{Op: OpCas, Rd: rd, Ra: ra, Rb: rb, Rc: rc}) }

// FetchAdd emits an atomic rd = mem[ra]; mem[ra] += rb.
func (a *Assembler) FetchAdd(rd, ra, rb Reg) {
	a.emit(Inst{Op: OpFetchAdd, Rd: rd, Ra: ra, Rb: rb})
}

// FetchMin emits an atomic rd = mem[ra]; mem[ra] = min(mem[ra], rb) (unsigned).
func (a *Assembler) FetchMin(rd, ra, rb Reg) {
	a.emit(Inst{Op: OpFetchMin, Rd: rd, Ra: ra, Rb: rb})
}

// FetchOr emits an atomic rd = mem[ra]; mem[ra] |= rb.
func (a *Assembler) FetchOr(rd, ra, rb Reg) { a.emit(Inst{Op: OpFetchOr, Rd: rd, Ra: ra, Rb: rb}) }

// --- control flow ---

func (a *Assembler) br(op Op, ra, rb Reg, label string) {
	a.emit(Inst{Op: op, Ra: ra, Rb: rb, Label: label})
}
func (a *Assembler) brI(op Op, ra Reg, imm int64, label string) {
	a.emit(Inst{Op: op, Ra: ra, Imm: imm, UseImm: true, Label: label})
}

// Beq branches to l when ra == rb.
func (a *Assembler) Beq(ra, rb Reg, l string) { a.br(OpBeq, ra, rb, l) }

// BeqI branches to l when ra == imm.
func (a *Assembler) BeqI(ra Reg, imm int64, l string) { a.brI(OpBeq, ra, imm, l) }

// Bne branches to l when ra != rb.
func (a *Assembler) Bne(ra, rb Reg, l string) { a.br(OpBne, ra, rb, l) }

// BneI branches to l when ra != imm.
func (a *Assembler) BneI(ra Reg, imm int64, l string) { a.brI(OpBne, ra, imm, l) }

// Blt branches to l when ra < rb (signed).
func (a *Assembler) Blt(ra, rb Reg, l string) { a.br(OpBlt, ra, rb, l) }

// Bge branches to l when ra >= rb (signed).
func (a *Assembler) Bge(ra, rb Reg, l string) { a.br(OpBge, ra, rb, l) }

// Bltu branches to l when ra < rb (unsigned).
func (a *Assembler) Bltu(ra, rb Reg, l string) { a.br(OpBltu, ra, rb, l) }

// BltuI branches to l when ra < imm (unsigned).
func (a *Assembler) BltuI(ra Reg, imm int64, l string) { a.brI(OpBltu, ra, imm, l) }

// Bgeu branches to l when ra >= rb (unsigned).
func (a *Assembler) Bgeu(ra, rb Reg, l string) { a.br(OpBgeu, ra, rb, l) }

// Jmp branches unconditionally to l.
func (a *Assembler) Jmp(l string) { a.emit(Inst{Op: OpJmp, Label: l}) }

// Jr jumps to the instruction index held in ra.
func (a *Assembler) Jr(ra Reg) { a.emit(Inst{Op: OpJr, Ra: ra}) }

// LabelAddr emits a MovI of a label's instruction index into rd, for storing
// return PCs used by Jr. The value is patched at link time.
func (a *Assembler) LabelAddr(rd Reg, label string) {
	a.emit(Inst{Op: OpAdd, Rd: rd, Ra: R0, UseImm: true, Label: "&" + label})
}

// --- Pipette ---

// Peek emits rd = head of queue q without dequeuing (Table II).
func (a *Assembler) Peek(rd Reg, q uint8) { a.emit(Inst{Op: OpPeek, Rd: rd, Q: q}) }

// EnqC enqueues ra into q with the control bit set (enq_ctrl, Table II).
func (a *Assembler) EnqC(q uint8, ra Reg) { a.emit(Inst{Op: OpEnqC, Q: q, Ra: ra}) }

// EnqCI enqueues the immediate into q with the control bit set.
func (a *Assembler) EnqCI(q uint8, imm int64) {
	// enqc with an immediate control value: materialize via the zero reg.
	a.emit(Inst{Op: OpEnqC, Q: q, Ra: R0, Imm: imm, UseImm: true})
}

// SkipC emits skip_to_ctrl: rd = next control value of q, discarding earlier data.
func (a *Assembler) SkipC(rd Reg, q uint8) { a.emit(Inst{Op: OpSkipC, Rd: rd, Q: q}) }

// QPoll emits rd = current occupancy of q (non-blocking; DESIGN.md extension).
func (a *Assembler) QPoll(rd Reg, q uint8) { a.emit(Inst{Op: OpQPoll, Rd: rd, Q: q}) }

// Nop emits a no-op.
func (a *Assembler) Nop() { a.emit(Inst{Op: OpNop}) }

// Halt marks the thread finished.
func (a *Assembler) Halt() { a.emit(Inst{Op: OpHalt}) }

// Link resolves labels and returns the finished program.
func (a *Assembler) Link() (*Program, error) {
	p := &Program{
		Name:       a.name,
		Code:       append([]Inst(nil), a.code...),
		DeqHandler: -1,
		EnqHandler: -1,
		Bindings:   append([]QueueBinding(nil), a.bindings...),
		InitRegs:   a.initRegs,
	}
	resolve := func(l string) (int, error) {
		pc, ok := a.labels[l]
		if !ok {
			return 0, fmt.Errorf("asm %s: unknown label %q", a.name, l)
		}
		return pc, nil
	}
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Label == "" {
			continue
		}
		if in.Label[0] == '&' { // LabelAddr immediate
			t, err := resolve(in.Label[1:])
			if err != nil {
				return nil, err
			}
			in.Imm = int64(t)
			in.Label = ""
			continue
		}
		t, err := resolve(in.Label)
		if err != nil {
			return nil, err
		}
		in.Target = t
		in.Label = ""
	}
	if a.deqH != "" {
		t, err := resolve(a.deqH)
		if err != nil {
			return nil, err
		}
		p.DeqHandler = t
	}
	if a.enqH != "" {
		t, err := resolve(a.enqH)
		if err != nil {
			return nil, err
		}
		p.EnqHandler = t
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustLink is Link that panics on error, for benchmark builders.
func (a *Assembler) MustLink() *Program {
	p, err := a.Link()
	if err != nil {
		panic(err)
	}
	return p
}
