package isa

import (
	"strings"
	"testing"
)

// predecodeProg builds a small queue-using kernel exercising every operand
// category: deq sources, an enq destination, plain ALU, memory, branches.
func predecodeProg(t *testing.T) *Program {
	t.Helper()
	a := NewAssembler("pd")
	a.MapQ(10, 0, QueueOut) // reads of r10 dequeue q0
	a.MapQ(11, 1, QueueIn)  // writes of r11 enqueue q1
	a.MovI(1, 100)          // 0
	a.Label("loop")
	a.AddI(2, 1, 8)      // 1: addr-gen ...
	a.Ld8(3, 2, 0)       // 2: ... fused load
	a.Add(11, 10, 3)     // 3: deq q0, add, enq q1
	a.SubI(1, 1, 1)      // 4: cmp chain ...
	a.BneI(1, 0, "loop") // 5: ... fused branch
	a.Halt()             // 6
	return a.MustLink()
}

func TestPredecodeKindsAndOperands(t *testing.T) {
	p := predecodeProg(t)
	d := Predecode(p)
	if len(d.Ops) != len(p.Code) {
		t.Fatalf("decoded %d ops for %d instructions", len(d.Ops), len(p.Code))
	}
	wantKinds := []UopKind{KindALU, KindALU, KindLoad, KindALU, KindALU, KindCondBranch, KindHalt}
	for pc, want := range wantKinds {
		if got := d.Ops[pc].Kind; got != want {
			t.Errorf("pc %d: kind = %v, want %v", pc, got, want)
		}
	}

	// pc 3: add r11, r10, r3 — r10 dequeues, r3 is a timing source, the
	// r11 write enqueues.
	o := &d.Ops[3]
	if o.NDeq != 1 || o.DeqRegs[0] != 10 {
		t.Fatalf("pc 3: deq regs = %v[:%d], want [r10]", o.DeqRegs, o.NDeq)
	}
	if o.NTiming != 1 || o.TimingRegs[0] != 3 {
		t.Fatalf("pc 3: timing regs = %v[:%d], want [r3]", o.TimingRegs, o.NTiming)
	}
	if !o.EnqDst || o.Dst != 11 {
		t.Fatalf("pc 3: enqDst=%v dst=r%d, want enq to r11", o.EnqDst, o.Dst)
	}
	if o.RaDeq != 1 || o.RbDeq != 0 {
		t.Fatalf("pc 3: RaDeq=%d RbDeq=%d, want 1,0 (Ra comes from the dequeue)", o.RaDeq, o.RbDeq)
	}

	// pc 2: load r3, [r2+0] — plain rename destination.
	o = &d.Ops[2]
	if o.EnqDst || !o.Writes || o.Dst != 3 || o.MemBytes != 8 || !o.IsLoad {
		t.Fatalf("pc 2: decoded load wrong: %+v", o)
	}
}

func TestPredecodeBlocksAndFusion(t *testing.T) {
	p := predecodeProg(t)
	d := Predecode(p)

	// Leaders: 0 (entry), 1 (branch target "loop"), 6 (post-branch).
	wantBlocks := []Block{{0, 1}, {1, 6}, {6, 7}}
	if len(d.Blocks) != len(wantBlocks) {
		t.Fatalf("blocks = %v, want %v", d.Blocks, wantBlocks)
	}
	for i, b := range wantBlocks {
		if d.Blocks[i] != b {
			t.Fatalf("blocks = %v, want %v", d.Blocks, wantBlocks)
		}
	}

	// pc 1 (addi) + pc 2 (ld8 via r2): address-generation fusion.
	if f := d.Ops[1].Fuse; f != FuseAddrGen {
		t.Errorf("pc 1 fuse = %v, want %v", f, FuseAddrGen)
	}
	// pc 4 (subi) + pc 5 (bne r1): compare-branch fusion.
	if f := d.Ops[4].Fuse; f != FuseCmpBr {
		t.Errorf("pc 4 fuse = %v, want %v", f, FuseCmpBr)
	}
	// pc 3 has dequeue sources and an enqueue destination: never a leader.
	if f := d.Ops[3].Fuse; f != FuseNone {
		t.Errorf("pc 3 fuse = %v, want none (queue effects)", f)
	}
	if d.NFused != 2 {
		t.Errorf("NFused = %d, want 2", d.NFused)
	}
	if f, lead := d.FusedWith(2); f != FuseAddrGen || lead {
		t.Errorf("FusedWith(2) = %v,%v, want addr-gen second slot", f, lead)
	}
}

func TestPredecodeFusionStopsAtBlockBoundary(t *testing.T) {
	a := NewAssembler("bb")
	a.MovI(1, 5) // 0
	a.Label("target")
	a.AddI(2, 1, 1)         // 1: block leader (branch target)
	a.BneI(2, 99, "target") // 2
	a.Halt()
	p := a.MustLink()
	d := Predecode(p)
	// pc 0 -> pc 1 crosses into the "target" block: no fusion.
	if f := d.Ops[0].Fuse; f != FuseNone {
		t.Fatalf("pc 0 fuse = %v, want none across block boundary", f)
	}
	// pc 1 -> pc 2 stays inside the block: cmp-branch pair.
	if f := d.Ops[1].Fuse; f != FuseCmpBr {
		t.Fatalf("pc 1 fuse = %v, want %v", f, FuseCmpBr)
	}
}

func TestPredecodeRMWFusion(t *testing.T) {
	a := NewAssembler("rmw")
	a.AddI(1, 0, 64)    // 0: address gen ...
	a.FetchAdd(3, 1, 2) // 1: ... fused atomic
	a.Halt()
	d := Predecode(a.MustLink())
	if f := d.Ops[0].Fuse; f != FuseRMW {
		t.Fatalf("fuse = %v, want %v", f, FuseRMW)
	}
}

func TestPredecodeBadQueueUse(t *testing.T) {
	// Reading an input-mapped register is a rename-time panic on the raw
	// path; decode defers it the same way instead of rejecting the program.
	a := NewAssembler("bad")
	a.MapQ(11, 1, QueueIn)
	a.Add(2, 11, 1) // reads input-mapped r11
	a.Halt()
	d := Predecode(a.MustLink())
	if d.Ops[0].Kind != KindBadQueue {
		t.Fatalf("kind = %v, want %v", d.Ops[0].Kind, KindBadQueue)
	}
	if !strings.Contains(d.Ops[0].BadMsg, "input-mapped register r11") {
		t.Fatalf("BadMsg = %q", d.Ops[0].BadMsg)
	}
	// A bad op never leads or joins a fusion pair.
	if d.Ops[0].Fuse != FuseNone {
		t.Fatalf("bad op fused")
	}
}

func TestPredecodeDisassemble(t *testing.T) {
	d := Predecode(predecodeProg(t))
	dis := d.Disassemble()
	for _, want := range []string{
		"2 fused pairs",
		"map r10 -> q0 (out)",
		"fuse[addr-gen]",
		"fuse[cmp-br]",
		"deq:r10",
		"enq:r11",
		"block 1..5:",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
