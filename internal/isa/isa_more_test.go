package isa

import (
	"math/rand"
	"testing"
)

// Property: ReadsInto agrees with Reads for randomized instructions.
func TestReadsIntoMatchesReads(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		in := Inst{
			Op:     Op(r.Intn(int(numOps))),
			Rd:     Reg(r.Intn(NumArchRegs)),
			Ra:     Reg(r.Intn(NumArchRegs)),
			Rb:     Reg(r.Intn(NumArchRegs)),
			Rc:     Reg(r.Intn(NumArchRegs)),
			UseImm: r.Intn(2) == 0,
		}
		want := in.Reads()
		var buf [3]Reg
		n := in.ReadsInto(&buf)
		if n != len(want) {
			t.Fatalf("%v: ReadsInto n=%d, Reads=%v", in.Op, n, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("%v: ReadsInto[%d]=%d, want %d", in.Op, i, buf[i], want[i])
			}
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < numOps; o++ {
		s := o.String()
		if s == "" {
			t.Fatalf("op %d has empty name", o)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share name %q", prev, o, s)
		}
		seen[s] = o
	}
}

func TestInstStringCoversClasses(t *testing.T) {
	cases := []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpAdd, Rd: 1, Ra: 2, Imm: 7, UseImm: true},
		{Op: OpLd8, Rd: 1, Ra: 2, Imm: 16},
		{Op: OpSt4, Ra: 2, Rb: 3, Imm: 4},
		{Op: OpCas, Rd: 1, Ra: 2, Rb: 3, Rc: 4},
		{Op: OpFetchAdd, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpBeq, Ra: 1, Rb: 2, Target: 5},
		{Op: OpBne, Ra: 1, Imm: 3, UseImm: true, Target: 5},
		{Op: OpJmp, Target: 9},
		{Op: OpJr, Ra: 4},
		{Op: OpPeek, Rd: 1, Q: 2},
		{Op: OpEnqC, Ra: 1, Q: 2},
		{Op: OpSkipC, Rd: 1, Q: 2},
		{Op: OpQPoll, Rd: 1, Q: 2},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Fatalf("%v: empty String()", in.Op)
		}
	}
}

func TestEvalBranchSignedUnsignedSplit(t *testing.T) {
	big := ^uint64(0) // -1 signed, max unsigned
	if !EvalBranch(OpBge, 0, big) {
		t.Error("0 >= -1 signed")
	}
	if EvalBranch(OpBgeu, 0, big) {
		t.Error("0 >= max unsigned is false")
	}
	if !EvalBranch(OpBltu, 0, big) {
		t.Error("0 < max unsigned")
	}
	if EvalBranch(OpBlt, 0, big) {
		t.Error("0 < -1 signed is false")
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift amounts use only the low 6 bits, like real 64-bit ISAs.
	if got := EvalALU(OpShl, 1, 64); got != 1 {
		t.Fatalf("shl by 64 = %d, want 1 (masked to 0)", got)
	}
	if got := EvalALU(OpShr, 8, 65); got != 4 {
		t.Fatalf("shr by 65 = %d, want 4 (masked to 1)", got)
	}
}

func TestProgramValidateHandlersOutOfRange(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Op: OpHalt}}, DeqHandler: 5, EnqHandler: -1}
	if err := p.Validate(); err == nil {
		t.Fatal("want handler range error")
	}
}

func TestAssemblerBindR0Rejected(t *testing.T) {
	a := NewAssembler("t")
	a.MapQ(R0, 1, QueueIn)
	a.Halt()
	if _, err := a.Link(); err == nil {
		t.Fatal("binding r0 must fail validation")
	}
}
