// Package isa defines the RISC-like instruction set simulated by this
// repository, including the Pipette extensions from the paper: queue-mapped
// registers with implicit enqueue/dequeue, peek, enq_ctrl, skip_to_ctrl, and
// control-handler registration. Programs are built with the Assembler and
// executed by the cycle-level core model in internal/core.
package isa

import "fmt"

// Reg names an architectural register. Each thread has NumArchRegs 64-bit
// registers. R0 always reads as zero; writes to it are discarded.
type Reg uint8

// NumArchRegs is the number of architectural integer registers per thread.
// The paper's cores are x86-64 (16 GPRs + SIMD); we use a flat 32-register
// file, which is what the "32 architectural registers" per extra SMT thread
// in Sec. V corresponds to.
const NumArchRegs = 32

// Register conventions. Only R0, RHCV and RHQ have hardware meaning; the
// rest are assembler-level conventions.
const (
	R0 Reg = 0 // hardwired zero

	// RHCV and RHQ are written by the control-value trap logic before
	// redirecting to a dequeue control handler: RHCV holds the control
	// value, RHQ the id of the queue that triggered the handler.
	RHCV Reg = 30
	RHQ  Reg = 31
)

// Op is an opcode.
type Op uint8

// Opcodes. ALU ops take Rd, Ra and either Rb or an immediate.
// Loads compute Ra+Imm; stores write Rb (or Imm) to [Ra+Imm... no:
// stores write the value in Rb to address Ra+Imm.
const (
	OpNop Op = iota

	// Integer ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical right shift
	OpSra // arithmetic right shift
	OpMul
	OpDiv  // unsigned; divide by zero yields all-ones, like a trap-free core
	OpSltu // set if Ra < Rb/Imm, unsigned
	OpSlt  // set if Ra < Rb/Imm, signed
	OpMin  // unsigned min
	OpMax  // unsigned max

	// Floating point. Operands are float64 bit patterns in integer regs.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFLt  // Rd = 1 if f(Ra) < f(Rb) else 0
	OpFAbs // Rd = |f(Ra)|
	OpIToF // Rd = float64(int64(Ra))
	OpFToI // Rd = int64(f(Ra))

	// Memory. Address is Ra+Imm. Loads zero-extend into Rd.
	OpLd8
	OpLd4
	OpLd2
	OpLd1
	OpSt8 // mem[Ra+Imm] = Rb
	OpSt4
	OpSt2
	OpSt1

	// Atomics (sequentially consistent RMW at the address in Ra).
	// Rd receives the old value.
	OpCas      // if mem==Rb then mem=Imm-reg? see AtomicsNote: CAS uses Rb=expected, Rc encoded in Imm? We use: Rd=old, compare Rb, swap value in Rc.
	OpFetchAdd // Rd = old; mem += Rb
	OpFetchMin // Rd = old; mem = min(mem, Rb) (unsigned)
	OpFetchOr  // Rd = old; mem |= Rb

	// Control flow. Branches compare Ra and Rb (or Imm) and jump to Target.
	OpBeq
	OpBne
	OpBlt  // signed
	OpBge  // signed
	OpBltu // unsigned
	OpBgeu // unsigned
	OpJmp  // unconditional, to Target
	OpJr   // indirect jump to address in Ra (used to return from handlers)

	// Pipette queue instructions (Table II). Implicit enqueue/dequeue need
	// no opcode: they happen when an instruction writes/reads a
	// queue-mapped register.
	OpPeek  // Rd = value at head of queue Q without dequeuing
	OpEnqC  // enqueue Ra into queue Q with the control bit set
	OpSkipC // Rd = next control value in queue Q, discarding earlier data
	OpQPoll // Rd = number of committed entries in queue Q (extension; see DESIGN.md §4.6)

	// Thread control.
	OpHalt // thread is done

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSra: "sra", OpMul: "mul", OpDiv: "div",
	OpSltu: "sltu", OpSlt: "slt", OpMin: "min", OpMax: "max",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFLt: "flt", OpFAbs: "fabs", OpIToF: "itof", OpFToI: "ftoi",
	OpLd8: "ld8", OpLd4: "ld4", OpLd2: "ld2", OpLd1: "ld1",
	OpSt8: "st8", OpSt4: "st4", OpSt2: "st2", OpSt1: "st1",
	OpCas: "cas", OpFetchAdd: "fetchadd", OpFetchMin: "fetchmin", OpFetchOr: "fetchor",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu", OpJmp: "jmp", OpJr: "jr",
	OpPeek: "peek", OpEnqC: "enqc", OpSkipC: "skipc", OpQPoll: "qpoll",
	OpHalt: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class buckets opcodes by execution resource and latency; the timing model
// keys functional-unit latency off this.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassAtomic
	ClassBranch
	ClassQueue // peek/enqc/skipc/qpoll
	ClassHalt

	numClasses
)

// NumClasses is the number of execution classes (for dense per-class
// tables, e.g. the core's precomputed latency table).
const NumClasses = int(numClasses)

// Class returns the execution class of an opcode.
func (o Op) Class() Class {
	switch o {
	case OpNop:
		return ClassNop
	case OpMul:
		return ClassMul
	case OpDiv:
		return ClassDiv
	case OpFAdd, OpFSub, OpFLt, OpFAbs, OpIToF, OpFToI:
		return ClassFPAdd
	case OpFMul:
		return ClassFPMul
	case OpFDiv:
		return ClassFPDiv
	case OpLd8, OpLd4, OpLd2, OpLd1:
		return ClassLoad
	case OpSt8, OpSt4, OpSt2, OpSt1:
		return ClassStore
	case OpCas, OpFetchAdd, OpFetchMin, OpFetchOr:
		return ClassAtomic
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJr:
		return ClassBranch
	case OpPeek, OpEnqC, OpSkipC, OpQPoll:
		return ClassQueue
	case OpHalt:
		return ClassHalt
	default:
		return ClassALU
	}
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { c := o.Class(); return c == ClassLoad || c == ClassAtomic }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { c := o.Class(); return c == ClassStore || c == ClassAtomic }

// MemBytes returns the access width of a memory opcode (8 for atomics).
func (o Op) MemBytes() int {
	switch o {
	case OpLd8, OpSt8, OpCas, OpFetchAdd, OpFetchMin, OpFetchOr:
		return 8
	case OpLd4, OpSt4:
		return 4
	case OpLd2, OpSt2:
		return 2
	case OpLd1, OpSt1:
		return 1
	}
	return 0
}

// Inst is one instruction. The assembler resolves Label into Target.
//
// Operand usage by class:
//   - ALU/FP:  Rd = Ra <op> (Rb | Imm)
//   - Load:    Rd = mem[Ra + Imm]
//   - Store:   mem[Ra + Imm] = Rb
//   - CAS:     Rd = old; if old == Rb { mem[Ra] = Rc }
//   - other atomics: Rd = old; mem[Ra] = old <op> Rb
//   - Branch:  if Ra <cmp> (Rb | Imm) then goto Target
//   - Queue ops use Q; EnqC enqueues Ra.
type Inst struct {
	Op     Op
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Rc     Reg // CAS swap value only
	Imm    int64
	UseImm bool
	Target int    // resolved branch/jump target (instruction index)
	Q      uint8  // queue id for explicit queue ops
	Label  string // unresolved branch target; empty once linked
}

// Reads returns the architectural source registers of i (excluding R0).
func (i *Inst) Reads() []Reg {
	var rs []Reg
	add := func(r Reg) {
		if r != R0 {
			rs = append(rs, r)
		}
	}
	switch i.Op.Class() {
	case ClassALU, ClassMul, ClassDiv, ClassFPAdd, ClassFPMul, ClassFPDiv:
		add(i.Ra)
		if !i.UseImm {
			add(i.Rb)
		}
	case ClassLoad:
		add(i.Ra)
	case ClassStore:
		add(i.Ra)
		add(i.Rb)
	case ClassAtomic:
		add(i.Ra)
		add(i.Rb)
		if i.Op == OpCas {
			add(i.Rc)
		}
	case ClassBranch:
		if i.Op == OpJmp {
			break
		}
		add(i.Ra)
		if i.Op != OpJr && !i.UseImm {
			add(i.Rb)
		}
	case ClassQueue:
		if i.Op == OpEnqC {
			add(i.Ra)
		}
	}
	return rs
}

// WritesReg reports whether i writes an architectural destination register,
// and which one.
func (i *Inst) WritesReg() (Reg, bool) {
	switch i.Op.Class() {
	case ClassALU, ClassMul, ClassDiv, ClassFPAdd, ClassFPMul, ClassFPDiv, ClassLoad, ClassAtomic:
		return i.Rd, i.Rd != R0
	case ClassQueue:
		if i.Op == OpPeek || i.Op == OpSkipC || i.Op == OpQPoll {
			return i.Rd, i.Rd != R0
		}
	}
	return R0, false
}

// String renders the instruction in assembly syntax.
func (i *Inst) String() string {
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassBranch:
		if i.Op == OpJmp {
			return fmt.Sprintf("jmp %d", i.Target)
		}
		if i.Op == OpJr {
			return fmt.Sprintf("jr r%d", i.Ra)
		}
		if i.UseImm {
			return fmt.Sprintf("%s r%d, %d, ->%d", i.Op, i.Ra, i.Imm, i.Target)
		}
		return fmt.Sprintf("%s r%d, r%d, ->%d", i.Op, i.Ra, i.Rb, i.Target)
	case ClassLoad:
		return fmt.Sprintf("%s r%d, [r%d+%d]", i.Op, i.Rd, i.Ra, i.Imm)
	case ClassStore:
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.Ra, i.Imm, i.Rb)
	case ClassAtomic:
		if i.Op == OpCas {
			return fmt.Sprintf("cas r%d, [r%d], r%d -> r%d", i.Rd, i.Ra, i.Rc, i.Rb)
		}
		return fmt.Sprintf("%s r%d, [r%d], r%d", i.Op, i.Rd, i.Ra, i.Rb)
	case ClassQueue:
		switch i.Op {
		case OpEnqC:
			if i.UseImm {
				return fmt.Sprintf("enqc q%d, %d", i.Q, i.Imm)
			}
			return fmt.Sprintf("enqc q%d, r%d", i.Q, i.Ra)
		default:
			return fmt.Sprintf("%s r%d, q%d", i.Op, i.Rd, i.Q)
		}
	}
	if i.UseImm {
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
}

// QueueDir says whether a mapped register is a queue input (writes enqueue)
// or output (reads dequeue).
type QueueDir uint8

const (
	QueueIn  QueueDir = iota // register writes enqueue to the queue
	QueueOut                 // register reads dequeue from the queue
)

// QueueBinding maps one architectural register to a queue endpoint.
type QueueBinding struct {
	Reg Reg
	Q   uint8
	Dir QueueDir
}

// Program is a linked instruction sequence for one thread.
type Program struct {
	Name string
	Code []Inst
	// DeqHandler and EnqHandler are the control-handler entry PCs
	// (instruction indices), or -1 when not registered. They model the
	// per-thread control registers of Sec. III-B.
	DeqHandler int
	EnqHandler int
	// Bindings are the thread's queue-register mappings, established by
	// the (privileged) map operation before the thread runs.
	Bindings []QueueBinding
	// InitRegs seeds architectural registers before the first fetch.
	InitRegs map[Reg]uint64
}

// BindingFor returns the binding covering register r, if any.
func (p *Program) BindingFor(r Reg) (QueueBinding, bool) {
	for _, b := range p.Bindings {
		if b.Reg == r {
			return b, true
		}
	}
	return QueueBinding{}, false
}

// Validate checks structural invariants: resolved branches, in-range targets,
// handler PCs, and that no register is bound twice.
func (p *Program) Validate() error {
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Label != "" {
			return fmt.Errorf("%s: pc %d: unresolved label %q", p.Name, pc, in.Label)
		}
		if in.Op.IsBranch() && in.Op != OpJr {
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("%s: pc %d: branch target %d out of range", p.Name, pc, in.Target)
			}
		}
	}
	if p.DeqHandler >= len(p.Code) || p.EnqHandler >= len(p.Code) {
		return fmt.Errorf("%s: handler PC out of range", p.Name)
	}
	seen := map[Reg]bool{}
	for _, b := range p.Bindings {
		if seen[b.Reg] {
			return fmt.Errorf("%s: register r%d bound to multiple queues", p.Name, b.Reg)
		}
		seen[b.Reg] = true
		if b.Reg == R0 {
			return fmt.Errorf("%s: cannot bind r0", p.Name)
		}
	}
	return nil
}

// Disassemble renders the program for debugging.
func (p *Program) Disassemble() string {
	s := fmt.Sprintf("; program %s (deqh=%d enqh=%d)\n", p.Name, p.DeqHandler, p.EnqHandler)
	for _, b := range p.Bindings {
		dir := "in"
		if b.Dir == QueueOut {
			dir = "out"
		}
		s += fmt.Sprintf("; map r%d -> q%d (%s)\n", b.Reg, b.Q, dir)
	}
	for pc := range p.Code {
		s += fmt.Sprintf("%4d: %s\n", pc, p.Code[pc].String())
	}
	return s
}

// ReadsInto is an allocation-free Reads: it fills buf with the source
// registers and returns how many there are. The hot rename path uses this.
func (i *Inst) ReadsInto(buf *[3]Reg) int {
	n := 0
	add := func(r Reg) {
		if r != R0 && n < len(buf) {
			buf[n] = r
			n++
		}
	}
	switch i.Op.Class() {
	case ClassALU, ClassMul, ClassDiv, ClassFPAdd, ClassFPMul, ClassFPDiv:
		add(i.Ra)
		if !i.UseImm {
			add(i.Rb)
		}
	case ClassLoad:
		add(i.Ra)
	case ClassStore:
		add(i.Ra)
		add(i.Rb)
	case ClassAtomic:
		add(i.Ra)
		add(i.Rb)
		if i.Op == OpCas {
			add(i.Rc)
		}
	case ClassBranch:
		if i.Op == OpJmp {
			break
		}
		add(i.Ra)
		if i.Op != OpJr && !i.UseImm {
			add(i.Rb)
		}
	case ClassQueue:
		if i.Op == OpEnqC {
			add(i.Ra)
		}
	}
	return n
}
