package isa

import "math"

// EvalALU computes the result of a non-memory, non-branch instruction given
// its operand values. a is the value of Ra; b is the value of Rb or the
// immediate, already selected by the caller.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSra:
		return uint64(int64(a) >> (b & 63))
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpFAdd:
		return f2u(u2f(a) + u2f(b))
	case OpFSub:
		return f2u(u2f(a) - u2f(b))
	case OpFMul:
		return f2u(u2f(a) * u2f(b))
	case OpFDiv:
		return f2u(u2f(a) / u2f(b))
	case OpFLt:
		if u2f(a) < u2f(b) {
			return 1
		}
		return 0
	case OpFAbs:
		return f2u(math.Abs(u2f(a)))
	case OpIToF:
		return f2u(float64(int64(a)))
	case OpFToI:
		return uint64(int64(u2f(a)))
	}
	return 0
}

// EvalBranch reports whether a conditional branch is taken. a is Ra's value,
// b is Rb's value or the immediate. Unconditional jumps return true.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	case OpBltu:
		return a < b
	case OpBgeu:
		return a >= b
	case OpJmp, OpJr:
		return true
	}
	return false
}

// F2U converts a float64 to its register bit pattern.
func F2U(f float64) uint64 { return f2u(f) }

// U2F converts a register bit pattern to float64.
func U2F(u uint64) float64 { return u2f(u) }

func f2u(f float64) uint64 { return math.Float64bits(f) }
func u2f(u uint64) float64 { return math.Float64frombits(u) }
