package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEvalALUBasic(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, ^uint64(0)},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 8, 256},
		{OpShr, 256, 8, 1},
		{OpSra, uint64(0xFFFFFFFFFFFFFF00), 4, 0xFFFFFFFFFFFFFFF0},
		{OpMul, 7, 6, 42},
		{OpDiv, 42, 6, 7},
		{OpDiv, 42, 0, ^uint64(0)},
		{OpSltu, 1, 2, 1},
		{OpSltu, 2, 1, 0},
		{OpSlt, uint64(0xFFFFFFFFFFFFFFFF), 0, 1}, // -1 < 0 signed
		{OpMin, 3, 9, 3},
		{OpMax, 3, 9, 9},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	a, b := F2U(1.5), F2U(2.5)
	if got := U2F(EvalALU(OpFAdd, a, b)); got != 4.0 {
		t.Errorf("fadd = %v", got)
	}
	if got := U2F(EvalALU(OpFMul, a, b)); got != 3.75 {
		t.Errorf("fmul = %v", got)
	}
	if got := EvalALU(OpFLt, a, b); got != 1 {
		t.Errorf("flt = %v", got)
	}
	if got := U2F(EvalALU(OpFAbs, F2U(-2.0), 0)); got != 2.0 {
		t.Errorf("fabs = %v", got)
	}
	if got := EvalALU(OpFToI, F2U(42.9), 0); got != 42 {
		t.Errorf("ftoi = %v", got)
	}
	if got := U2F(EvalALU(OpIToF, 42, 0)); got != 42.0 {
		t.Errorf("itof = %v", got)
	}
}

func TestEvalBranch(t *testing.T) {
	if !EvalBranch(OpBeq, 5, 5) || EvalBranch(OpBeq, 5, 6) {
		t.Error("beq wrong")
	}
	if !EvalBranch(OpBne, 5, 6) || EvalBranch(OpBne, 5, 5) {
		t.Error("bne wrong")
	}
	if !EvalBranch(OpBlt, uint64(math.MaxUint64), 0) { // -1 < 0 signed
		t.Error("blt signed wrong")
	}
	if EvalBranch(OpBltu, uint64(math.MaxUint64), 0) {
		t.Error("bltu unsigned wrong")
	}
	if !EvalBranch(OpJmp, 0, 0) {
		t.Error("jmp must be taken")
	}
}

// Property: float round-trip through register bits is exact.
func TestFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return math.IsNaN(U2F(F2U(x)))
		}
		return U2F(F2U(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min/max are commutative and idempotent.
func TestMinMaxProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		return EvalALU(OpMin, a, b) == EvalALU(OpMin, b, a) &&
			EvalALU(OpMax, a, b) == EvalALU(OpMax, b, a) &&
			EvalALU(OpMin, a, a) == a &&
			EvalALU(OpMax, a, a) == a &&
			EvalALU(OpMin, a, b) <= EvalALU(OpMax, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssemblerLink(t *testing.T) {
	a := NewAssembler("t")
	a.MovI(1, 10)
	a.Label("loop")
	a.SubI(1, 1, 1)
	a.BneI(1, 0, "loop")
	a.Halt()
	p, err := a.Link()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len = %d", len(p.Code))
	}
	if p.Code[2].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[2].Target)
	}
	if p.Code[2].Label != "" {
		t.Error("label not cleared")
	}
}

func TestAssemblerUnknownLabel(t *testing.T) {
	a := NewAssembler("t")
	a.Jmp("nowhere")
	if _, err := a.Link(); err == nil {
		t.Fatal("want error for unknown label")
	}
}

func TestAssemblerDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate label")
		}
	}()
	a := NewAssembler("t")
	a.Label("x")
	a.Label("x")
}

func TestLabelAddr(t *testing.T) {
	a := NewAssembler("t")
	a.LabelAddr(5, "ret")
	a.Jr(5)
	a.Label("ret")
	a.Halt()
	p := a.MustLink()
	if p.Code[0].Imm != 2 {
		t.Errorf("LabelAddr imm = %d, want 2", p.Code[0].Imm)
	}
}

func TestHandlers(t *testing.T) {
	a := NewAssembler("t")
	a.OnDeqCV("dh")
	a.OnEnqCV("eh")
	a.Halt()
	a.Label("dh")
	a.Halt()
	a.Label("eh")
	a.Halt()
	p := a.MustLink()
	if p.DeqHandler != 1 || p.EnqHandler != 2 {
		t.Errorf("handlers = %d, %d", p.DeqHandler, p.EnqHandler)
	}
}

func TestBindings(t *testing.T) {
	a := NewAssembler("t")
	a.MapQ(4, 2, QueueIn)
	a.MapQ(5, 2, QueueOut)
	a.Halt()
	p := a.MustLink()
	if b, ok := p.BindingFor(4); !ok || b.Q != 2 || b.Dir != QueueIn {
		t.Errorf("binding r4 = %+v ok=%v", b, ok)
	}
	if _, ok := p.BindingFor(6); ok {
		t.Error("r6 should not be bound")
	}
}

func TestDoubleBindingRejected(t *testing.T) {
	a := NewAssembler("t")
	a.MapQ(4, 2, QueueIn)
	a.MapQ(4, 3, QueueOut)
	a.Halt()
	if _, err := a.Link(); err == nil {
		t.Fatal("want error for double binding")
	}
}

func TestReadsWrites(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: 3, Ra: 1, Rb: 2}
	if got := in.Reads(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("reads = %v", got)
	}
	if rd, ok := in.WritesReg(); !ok || rd != 3 {
		t.Errorf("writes = %v %v", rd, ok)
	}
	st := Inst{Op: OpSt8, Ra: 1, Rb: 2}
	if _, ok := st.WritesReg(); ok {
		t.Error("store must not write a reg")
	}
	br := Inst{Op: OpBeq, Ra: 1, Rb: 2}
	if got := br.Reads(); len(got) != 2 {
		t.Errorf("branch reads = %v", got)
	}
	cas := Inst{Op: OpCas, Rd: 3, Ra: 1, Rb: 2, Rc: 4}
	if got := cas.Reads(); len(got) != 3 {
		t.Errorf("cas reads = %v", got)
	}
	// Immediate operand suppresses Rb read.
	ai := Inst{Op: OpAdd, Rd: 3, Ra: 1, Imm: 7, UseImm: true}
	if got := ai.Reads(); len(got) != 1 {
		t.Errorf("addi reads = %v", got)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpBeq.IsBranch() || OpAdd.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpLd8.IsLoad() || !OpCas.IsLoad() || OpSt8.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpSt4.IsStore() || !OpFetchAdd.IsStore() || OpLd8.IsStore() {
		t.Error("IsStore wrong")
	}
	if OpLd4.MemBytes() != 4 || OpSt8.MemBytes() != 8 || OpCas.MemBytes() != 8 {
		t.Error("MemBytes wrong")
	}
}

func TestDisassemble(t *testing.T) {
	a := NewAssembler("demo")
	a.MapQ(4, 1, QueueIn)
	a.MovI(1, 5)
	a.Ld8(2, 1, 8)
	a.St8(1, 0, 2)
	a.EnqC(1, 2)
	a.Peek(3, 1)
	a.Halt()
	p := a.MustLink()
	d := p.Disassemble()
	for _, want := range []string{"map r4 -> q1 (in)", "ld8 r2, [r1+8]", "enqc q1, r2", "peek r3, q1", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestValidateTargetRange(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Op: OpJmp, Target: 5}}, DeqHandler: -1, EnqHandler: -1}
	if err := p.Validate(); err == nil {
		t.Fatal("want out-of-range target error")
	}
}
