// Pre-decode: lowering a linked Program into a flat micro-op array the
// core's hot rename path consumes instead of raw Inst values.
//
// The cycle-level model re-derives the same facts about every static
// instruction each time it renames it: operand lists (Reads/ReadsInto
// switch), destination (WritesReg switch), execution class, memory width,
// and — for the Pipette extensions — which operands are queue-mapped under
// the program's bindings. Predecode hoists all of that to load time: each
// instruction becomes one DecodedOp with the operand sets resolved to flat
// index lists, the dispatch switch collapsed to a dense UopKind jump table,
// and queue/port effects (dequeue sources, enqueue destination) resolved
// against the program's own bindings. Adjacent dependent pairs that the
// core can rename back-to-back without any stall hazard between them are
// additionally fused (FuseKind) so the frontend dispatches them as one
// step with chained timing — the software analogue of the scalar-chaining
// ISA extension in PAPERS.md.
//
// Predecode is a pure function of the Program: it never changes simulated
// semantics, only how fast the host interprets them. The core keeps the
// raw-Inst path as an escape hatch (-no-predecode) and the equivalence
// matrix proves the two paths bit-identical. See docs/FRONTEND.md.
package isa

import "fmt"

// UopKind is the devirtualized dispatch key of a decoded micro-op: the
// rename stage switches on it (a dense jump table) instead of re-deriving
// Op.Class plus per-op special cases every cycle.
type UopKind uint8

// Micro-op kinds. KindALU covers every single-result register op
// (integer and FP alike — the latency difference is carried by Class, not
// Kind). Jumps are split from conditional branches because only the latter
// consult the branch predictor.
const (
	KindNop UopKind = iota
	KindALU
	KindLoad
	KindStore
	KindAtomic
	KindCondBranch
	KindJump
	KindPeek
	KindEnqC
	KindSkipC
	KindQPoll
	KindHalt
	// KindBadQueue marks a statically invalid queue-register use (reading
	// an input-mapped register, writing an output-mapped one, or binding
	// the same queue register twice in one instruction). The raw-Inst path
	// panics when such an instruction is *renamed*, not when it is loaded;
	// decode preserves that by deferring the panic to rename time.
	KindBadQueue

	numUopKinds
)

var kindNames = [numUopKinds]string{
	"nop", "alu", "load", "store", "atomic", "br", "jump",
	"peek", "enqc", "skipc", "qpoll", "halt", "badq",
}

// String names the micro-op kind.
func (k UopKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FuseKind annotates a micro-op that leads a fused pair: the frontend
// renames it and its successor in one dispatch step. Fusion never changes
// timing or architectural effects — the pair still allocates two µops with
// the dependent one's sources chained onto the leader's destination — it
// only removes per-instruction dispatch overhead on the host.
type FuseKind uint8

// Fusion pair classes, named after the dependent idioms they capture.
const (
	FuseNone    FuseKind = iota
	FuseAddrGen          // ALU producing the address of the next load/store
	FuseCmpBr            // compare producing the condition of the next branch
	FuseRMW              // ALU producing the address of the next atomic (fetch-add chains)
	FusePair             // any other back-to-back simple pair
)

var fuseNames = [...]string{"", "addr-gen", "cmp-br", "rmw", "pair"}

// String names the fusion class ("" for FuseNone).
func (f FuseKind) String() string {
	if int(f) < len(fuseNames) {
		return fuseNames[f]
	}
	return fmt.Sprintf("fuse(%d)", uint8(f))
}

// DecodedOp is one pre-decoded micro-op: an Inst with every per-rename
// derivation cached. All fields are immutable after Predecode.
type DecodedOp struct {
	Inst *Inst // backing instruction (aliases Program.Code)
	Op   Op
	Kind UopKind
	Cls  Class

	// Reads is the architectural source set (ReadsInto order, R0 already
	// excluded). DeqRegs is the subset mapped to queue outputs under the
	// program's bindings (reads dequeue), TimingRegs the complement (reads
	// that carry rename-map timing dependencies). Read order is preserved
	// in both: CV-trap priority follows dequeue binding order.
	Reads      [3]Reg
	NReads     uint8
	DeqRegs    [3]Reg
	NDeq       uint8
	TimingRegs [3]Reg
	NTiming    uint8

	// RaDeq/RbDeq/RcDeq are 1-based indices into the dequeued-value list
	// when that operand's register is queue-mapped (0 = read the register
	// file). They make operand resolution branch-cheap at rename.
	RaDeq, RbDeq, RcDeq uint8

	Dst    Reg
	Writes bool // Dst is a real architectural destination (non-R0)
	EnqDst bool // Dst is input-mapped: the write enqueues instead of renaming

	Ra, Rb, Rc Reg
	Imm        int64
	UseImm     bool
	Target     int
	Q          uint8
	MemBytes   uint8
	IsLoad     bool // reads memory (loads and atomics)
	IsStore    bool // writes memory (stores and atomics)

	// Fuse marks this op as the leader of a fused pair with the next op.
	Fuse FuseKind

	// BadMsg is the deferred panic text for KindBadQueue.
	BadMsg string
}

// Block is one basic block: [Start, End) in instruction indices. Blocks
// partition the program at every leader (entry point, branch target,
// post-branch fall-through, control-handler entry); fusion never crosses a
// block boundary, so entering a block mid-pair is impossible.
type Block struct {
	Start, End int
}

// DecodedProgram is the flat micro-op form of one Program, shared by every
// thread (and core) running it. It is derived state: cores cache it per
// loaded program but never serialize it — checkpoints restore it by
// re-decoding, which keeps state hashes identical with predecode on or off.
type DecodedProgram struct {
	Prog   *Program
	Ops    []DecodedOp
	Blocks []Block
	NFused int // fused pairs marked
}

// Predecode lowers p into its flat micro-op form. The program must be
// linked (Validate-clean); statically invalid queue-register uses are
// lowered to KindBadQueue rather than rejected, matching the raw path's
// rename-time panic semantics.
func Predecode(p *Program) *DecodedProgram {
	d := &DecodedProgram{Prog: p, Ops: make([]DecodedOp, len(p.Code))}

	// Queue binding direction per register, from the program's bindings.
	var inMap, outMap [NumArchRegs]bool
	for _, b := range p.Bindings {
		if b.Dir == QueueIn {
			inMap[b.Reg] = true
		} else {
			outMap[b.Reg] = true
		}
	}

	for pc := range p.Code {
		decodeOne(p, pc, &inMap, &outMap, &d.Ops[pc])
	}
	d.Blocks = findBlocks(p)

	// Fusion: greedy, non-overlapping, within basic blocks only.
	leader := make([]bool, len(p.Code)+1)
	for _, b := range d.Blocks {
		leader[b.Start] = true
	}
	for pc := 0; pc+1 < len(d.Ops); pc++ {
		if leader[pc+1] {
			continue // successor starts a new block
		}
		o1, o2 := &d.Ops[pc], &d.Ops[pc+1]
		if f := classifyFusion(o1, o2); f != FuseNone {
			o1.Fuse = f
			d.NFused++
			pc++ // pairs never overlap
		}
	}
	return d
}

// decodeOne fills out for the instruction at pc.
func decodeOne(p *Program, pc int, inMap, outMap *[NumArchRegs]bool, o *DecodedOp) {
	in := &p.Code[pc]
	*o = DecodedOp{
		Inst: in, Op: in.Op, Cls: in.Op.Class(),
		Ra: in.Ra, Rb: in.Rb, Rc: in.Rc,
		Imm: in.Imm, UseImm: in.UseImm, Target: in.Target, Q: in.Q,
		MemBytes: uint8(in.Op.MemBytes()),
		IsLoad:   in.Op.IsLoad(), IsStore: in.Op.IsStore(),
	}

	switch o.Cls {
	case ClassNop:
		o.Kind = KindNop
	case ClassALU, ClassMul, ClassDiv, ClassFPAdd, ClassFPMul, ClassFPDiv:
		o.Kind = KindALU
	case ClassLoad:
		o.Kind = KindLoad
	case ClassStore:
		o.Kind = KindStore
	case ClassAtomic:
		o.Kind = KindAtomic
	case ClassBranch:
		if in.Op == OpJmp || in.Op == OpJr {
			o.Kind = KindJump
		} else {
			o.Kind = KindCondBranch
		}
	case ClassQueue:
		switch in.Op {
		case OpPeek:
			o.Kind = KindPeek
		case OpEnqC:
			o.Kind = KindEnqC
		case OpSkipC:
			o.Kind = KindSkipC
		default:
			o.Kind = KindQPoll
		}
	case ClassHalt:
		o.Kind = KindHalt
	}

	// Source set, split by queue mapping.
	var buf [3]Reg
	n := in.ReadsInto(&buf)
	o.NReads = uint8(n)
	o.Reads = buf
	for i := 0; i < n; i++ {
		r := buf[i]
		if outMap[r] {
			for j := 0; j < int(o.NDeq); j++ {
				if o.DeqRegs[j] == r {
					o.Kind = KindBadQueue
					o.BadMsg = fmt.Sprintf("%s pc=%d: queue register r%d read twice in one instruction", p.Name, pc, r)
					return
				}
			}
			o.DeqRegs[o.NDeq] = r
			o.NDeq++
		} else if inMap[r] {
			o.Kind = KindBadQueue
			o.BadMsg = fmt.Sprintf("%s pc=%d: reads input-mapped register r%d", p.Name, pc, r)
			return
		} else {
			o.TimingRegs[o.NTiming] = r
			o.NTiming++
		}
	}
	deqIdx := func(r Reg) uint8 {
		for j := 0; j < int(o.NDeq); j++ {
			if o.DeqRegs[j] == r {
				return uint8(j) + 1
			}
		}
		return 0
	}
	o.RaDeq, o.RbDeq, o.RcDeq = deqIdx(in.Ra), deqIdx(in.Rb), deqIdx(in.Rc)

	// Destination.
	o.Dst, o.Writes = in.WritesReg()
	if o.Writes {
		if inMap[o.Dst] {
			o.EnqDst = true
		} else if outMap[o.Dst] {
			o.Kind = KindBadQueue
			o.BadMsg = fmt.Sprintf("%s pc=%d: writes output-mapped register r%d", p.Name, pc, o.Dst)
			return
		}
	}
}

// findBlocks computes basic-block boundaries: entry, branch targets,
// post-branch fall-throughs, and control-handler entries all start blocks.
func findBlocks(p *Program) []Block {
	n := len(p.Code)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0], leader[n] = true, true
	mark := func(pc int) {
		if pc >= 0 && pc <= n {
			leader[pc] = true
		}
	}
	mark(p.DeqHandler)
	mark(p.EnqHandler)
	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op.IsBranch() {
			if in.Op != OpJr {
				mark(in.Target)
			}
			mark(pc + 1)
		}
	}
	var blocks []Block
	start := 0
	for pc := 1; pc <= n; pc++ {
		if leader[pc] {
			blocks = append(blocks, Block{Start: start, End: pc})
			start = pc
		}
	}
	return blocks
}

// classifyFusion decides whether o1 can lead a fused pair with o2, and
// which idiom the pair is. The constraints keep the fused dispatch exactly
// equivalent to two back-to-back single renames:
//
//   - the leader is a plain single-result op (no queue effects, no control
//     flow, no memory, no traps), so after it renames the only loop state
//     that changed is pc, resources, and the rename map;
//   - the second op touches no queues either (no dequeue sources, no
//     enqueue destination), so once the pair's combined resource check
//     passes it cannot stall or trap mid-pair.
func classifyFusion(o1, o2 *DecodedOp) FuseKind {
	if o1.Kind != KindALU || o1.NDeq != 0 || o1.EnqDst {
		return FuseNone
	}
	if o2.NDeq != 0 || o2.EnqDst {
		return FuseNone
	}
	dep := func(r Reg) bool { return o1.Writes && r == o1.Dst }
	switch o2.Kind {
	case KindLoad, KindStore:
		if dep(o2.Ra) {
			return FuseAddrGen
		}
		return FusePair
	case KindAtomic:
		if dep(o2.Ra) {
			return FuseRMW
		}
		return FusePair
	case KindCondBranch:
		if dep(o2.Ra) || (!o2.UseImm && dep(o2.Rb)) {
			return FuseCmpBr
		}
		return FusePair
	case KindALU, KindJump:
		return FusePair
	}
	return FuseNone
}

// FusedWith reports the fusion annotation covering instruction pc: the
// pair kind and whether pc is the leader (false = it is the fused-in
// second slot of the previous op's pair).
func (d *DecodedProgram) FusedWith(pc int) (FuseKind, bool) {
	if pc < len(d.Ops) && d.Ops[pc].Fuse != FuseNone {
		return d.Ops[pc].Fuse, true
	}
	if pc > 0 && d.Ops[pc-1].Fuse != FuseNone {
		return d.Ops[pc-1].Fuse, false
	}
	return FuseNone, false
}

// BlockOf returns the basic block containing pc.
func (d *DecodedProgram) BlockOf(pc int) Block {
	for _, b := range d.Blocks {
		if pc >= b.Start && pc < b.End {
			return b
		}
	}
	return Block{}
}

// Disassemble renders the micro-op stream with block boundaries and fusion
// decisions annotated (cmd/pipette-dis -uops).
func (d *DecodedProgram) Disassemble() string {
	p := d.Prog
	s := fmt.Sprintf("; uops %s: %d ops, %d blocks, %d fused pairs\n",
		p.Name, len(d.Ops), len(d.Blocks), d.NFused)
	for _, b := range p.Bindings {
		dir := "in"
		if b.Dir == QueueOut {
			dir = "out"
		}
		s += fmt.Sprintf("; map r%d -> q%d (%s)\n", b.Reg, b.Q, dir)
	}
	blockOf := map[int]Block{}
	for _, b := range d.Blocks {
		blockOf[b.Start] = b
	}
	for pc := range d.Ops {
		o := &d.Ops[pc]
		if b, ok := blockOf[pc]; ok {
			s += fmt.Sprintf("block %d..%d:\n", b.Start, b.End-1)
		}
		fuse := ""
		if f, lead := d.FusedWith(pc); f != FuseNone {
			if lead {
				fuse = fmt.Sprintf("  ; fuse[%s] v", f)
			} else {
				fuse = fmt.Sprintf("  ; fuse[%s] ^", f)
			}
		}
		detail := o.describe()
		s += fmt.Sprintf("%4d: %-28s ; %s%s\n", pc, o.Inst.String(), detail, fuse)
	}
	return s
}

// describe renders the decoded metadata of one micro-op.
func (o *DecodedOp) describe() string {
	s := o.Kind.String()
	if o.Kind == KindBadQueue {
		return s
	}
	for i := 0; i < int(o.NDeq); i++ {
		s += fmt.Sprintf(" deq:r%d", o.DeqRegs[i])
	}
	if o.EnqDst {
		s += fmt.Sprintf(" enq:r%d", o.Dst)
	} else if o.Writes {
		s += fmt.Sprintf(" wr:r%d", o.Dst)
	}
	for i := 0; i < int(o.NTiming); i++ {
		s += fmt.Sprintf(" src:r%d", o.TimingRegs[i])
	}
	if o.MemBytes != 0 {
		s += fmt.Sprintf(" mem:%dB", o.MemBytes)
	}
	return s
}
