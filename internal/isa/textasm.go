package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm assembles a textual program. The syntax mirrors the builder API:
//
//	; comments run to end of line
//	.name producer          ; program name
//	.map r10 q0 in          ; bind r10 as queue 0's input (writes enqueue)
//	.map r11 q1 out         ; bind r11 as queue 1's output (reads dequeue)
//	.set r1 4096            ; initial register value (decimal or 0x hex)
//	.ondeq handler          ; dequeue control handler label
//	.onenq handler          ; enqueue control handler label
//
//	loop:                   ; labels end with a colon
//	  add  r1, r2, r3       ; three-register ALU
//	  addi r1, r2, 42       ; "i" suffix = immediate second operand
//	  ld8  r4, r2, 8        ; rd, base, offset
//	  st8  r2, 0, r3        ; base, offset, value
//	  cas  r5, r1, r2, r3   ; rd, addr, expected, new
//	  beq  r1, r2, loop     ; compare-and-branch to label
//	  beqi r1, 0, loop
//	  jmp  loop
//	  jr   r4
//	  peek r3, q1
//	  enqc q0, r2
//	  skipc r3, q1
//	  qpoll r3, q1
//	  halt
func ParseAsm(src string) (*Program, error) {
	a := NewAssembler("asm")
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(a, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return a.Link()
}

func parseLine(a *Assembler, line string) error {
	if strings.HasSuffix(line, ":") {
		label := strings.TrimSuffix(line, ":")
		if label == "" || strings.ContainsAny(label, " \t") {
			return fmt.Errorf("bad label %q", line)
		}
		a.Label(label)
		return nil
	}
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	op, args := strings.ToLower(fields[0]), fields[1:]

	switch op {
	case ".name":
		if len(args) != 1 {
			return fmt.Errorf(".name wants 1 arg")
		}
		a.name = args[0]
		return nil
	case ".map":
		if len(args) != 3 {
			return fmt.Errorf(".map wants: reg queue in|out")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		q, err := parseQueue(args[1])
		if err != nil {
			return err
		}
		switch strings.ToLower(args[2]) {
		case "in":
			a.MapQ(r, q, QueueIn)
		case "out":
			a.MapQ(r, q, QueueOut)
		default:
			return fmt.Errorf("direction %q (want in|out)", args[2])
		}
		return nil
	case ".set":
		if len(args) != 2 {
			return fmt.Errorf(".set wants: reg value")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.SetReg(r, uint64(v))
		return nil
	case ".ondeq":
		a.OnDeqCV(args[0])
		return nil
	case ".onenq":
		a.OnEnqCV(args[0])
		return nil
	}

	return parseInst(a, op, args)
}

// aluOps maps mnemonics to opcodes for the regular rd, ra, rb/imm shapes.
var aluOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "shr": OpShr, "sra": OpSra, "mul": OpMul, "div": OpDiv,
	"sltu": OpSltu, "slt": OpSlt, "min": OpMin, "max": OpMax,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv, "flt": OpFLt,
}

var branchOps = map[string]Op{
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"bltu": OpBltu, "bgeu": OpBgeu,
}

var loadOps = map[string]Op{"ld8": OpLd8, "ld4": OpLd4, "ld2": OpLd2, "ld1": OpLd1}
var storeOps = map[string]Op{"st8": OpSt8, "st4": OpSt4, "st2": OpSt2, "st1": OpSt1}
var atomicOps = map[string]Op{"fetchadd": OpFetchAdd, "fetchmin": OpFetchMin, "fetchor": OpFetchOr}

func parseInst(a *Assembler, op string, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	base := strings.TrimSuffix(op, "i")
	imm := strings.HasSuffix(op, "i")

	if o, ok := aluOps[op]; ok { // register form (exact mnemonic)
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Rd: rd, Ra: ra, Rb: rb})
		return nil
	}
	if o, ok := aluOps[base]; ok && imm { // "addi" etc: immediate form
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		v, err := parseImm(args[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Rd: rd, Ra: ra, Imm: v, UseImm: true})
		return nil
	}

	if o, ok := branchOps[op]; ok { // register compare
		if err := need(3); err != nil {
			return err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Ra: ra, Rb: rb, Label: args[2]})
		return nil
	}
	if o, ok := branchOps[base]; ok && imm { // "beqi" etc: immediate compare
		if err := need(3); err != nil {
			return err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Ra: ra, Imm: v, UseImm: true, Label: args[2]})
		return nil
	}

	if o, ok := loadOps[op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		off, err := parseImm(args[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Rd: rd, Ra: ra, Imm: off})
		return nil
	}
	if o, ok := storeOps[op]; ok {
		if err := need(3); err != nil {
			return err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, err := parseImm(args[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Ra: ra, Imm: off, Rb: rb})
		return nil
	}
	if o, ok := atomicOps[op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: o, Rd: rd, Ra: ra, Rb: rb})
		return nil
	}

	switch op {
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.Mov(rd, ra)
		return nil
	case "movi":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.MovI(rd, v)
		return nil
	case "cas":
		if err := need(4); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[2])
		if err != nil {
			return err
		}
		rc, err := parseReg(args[3])
		if err != nil {
			return err
		}
		a.Cas(rd, ra, rb, rc)
		return nil
	case "itof", "ftoi", "fabs":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		ops := map[string]Op{"itof": OpIToF, "ftoi": OpFToI, "fabs": OpFAbs}
		a.emit(Inst{Op: ops[op], Rd: rd, Ra: ra})
		return nil
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		a.Jmp(args[0])
		return nil
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a.Jr(ra)
		return nil
	case "labeladdr":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a.LabelAddr(rd, args[1])
		return nil
	case "peek", "skipc", "qpoll":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		q, err := parseQueue(args[1])
		if err != nil {
			return err
		}
		switch op {
		case "peek":
			a.Peek(rd, q)
		case "skipc":
			a.SkipC(rd, q)
		default:
			a.QPoll(rd, q)
		}
		return nil
	case "enqc":
		if err := need(2); err != nil {
			return err
		}
		q, err := parseQueue(args[0])
		if err != nil {
			return err
		}
		if r, rerr := parseReg(args[1]); rerr == nil {
			a.EnqC(q, r)
			return nil
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.EnqCI(q, v)
		return nil
	case "nop":
		a.Nop()
		return nil
	case "halt":
		a.Halt()
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

func parseReg(s string) (Reg, error) {
	ls := strings.ToLower(s)
	switch ls {
	case "rhcv":
		return RHCV, nil
	case "rhq":
		return RHQ, nil
	}
	if !strings.HasPrefix(ls, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 || n >= NumArchRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseQueue(s string) (uint8, error) {
	ls := strings.ToLower(s)
	if !strings.HasPrefix(ls, "q") {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 || n > 255 {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned (e.g. 0xFFFFFFFFFFFFFFFF).
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}
