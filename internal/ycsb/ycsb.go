// Package ycsb generates YCSB-C workloads: read-only key lookups with a
// zipfian popularity distribution, as used for the Silo evaluation
// (Sec. V-B). The zipfian sampler follows the standard YCSB/Gray et al.
// rejection-free construction.
package ycsb

import (
	"math"
	"math/rand"
)

// ZipfTheta is YCSB's default skew.
const ZipfTheta = 0.99

// Generator produces keys in [0, N) with zipfian skew.
type Generator struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	r     *rand.Rand
}

// NewGenerator builds a zipfian generator over n items.
func NewGenerator(n uint64, seed int64) *Generator {
	g := &Generator{n: n, theta: ZipfTheta, r: rand.New(rand.NewSource(seed))}
	g.zetan = zeta(n, g.theta)
	g.alpha = 1 / (1 - g.theta)
	zeta2 := zeta(2, g.theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-g.theta)) / (1 - zeta2/g.zetan)
	return g
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipfian-distributed item index in [0, n).
func (g *Generator) Next() uint64 {
	u := g.r.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	idx := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if idx >= g.n {
		idx = g.n - 1
	}
	return idx
}

// Keys returns count zipfian-sampled key indices.
func (g *Generator) Keys(count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
