package ycsb

import "testing"

func TestRange(t *testing.T) {
	g := NewGenerator(1000, 1)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 1000
	g := NewGenerator(n, 2)
	counts := make([]int, n)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	// Item 0 should be far hotter than the median item.
	if counts[0] < draws/50 {
		t.Fatalf("head not hot: %d/%d", counts[0], draws)
	}
	tail := 0
	for i := n / 2; i < n; i++ {
		tail += counts[i]
	}
	if tail > draws/3 {
		t.Fatalf("tail too hot for zipf(0.99): %d/%d", tail, draws)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(500, 7).Keys(100)
	b := NewGenerator(500, 7).Keys(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewGenerator(500, 8).Keys(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequence")
	}
}
