package graph

import (
	"testing"
	"testing/quick"

	"pipette/internal/mem"
)

func TestFromEdgesCSR(t *testing.T) {
	// The Fig. 1(b) example-style graph: 0->1, 0->2, 1->2, 2->0.
	g := FromEdges("t", 3, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 0}})
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if n := g.Ngh(0); n[0] != 1 || n[1] != 2 {
		t.Fatalf("ngh(0) = %v", n)
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := FromEdges("t", 2, [][2]int{{0, 1}, {0, 1}, {0, 0}, {1, 0}})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (dedup, no self loops)", g.M())
	}
}

func TestBFSOnGrid(t *testing.T) {
	g := Road(10, 10, 1)
	d := BFS(g, 0)
	if d[0] != 0 {
		t.Fatal("src distance != 0")
	}
	// Opposite corner is reachable within grid manhattan distance.
	if d[99] == Unreached || d[99] > 18 {
		t.Fatalf("corner distance = %d", d[99])
	}
	// Property: neighbor distances differ by at most 1 when both reached.
	for v := 0; v < g.N; v++ {
		for _, u := range g.Ngh(v) {
			if d[v] != Unreached && d[u] != Unreached {
				dv, du := int64(d[v]), int64(d[u])
				if dv-du > 1 || du-dv > 1 {
					t.Fatalf("BFS property violated: d[%d]=%d d[%d]=%d", v, dv, u, du)
				}
			}
		}
	}
}

func TestCCLabels(t *testing.T) {
	// Two disjoint triangles.
	g := FromEdges("t", 6, symmetrize([][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}))
	l := CC(g)
	if l[0] != l[1] || l[1] != l[2] {
		t.Fatalf("component 1 split: %v", l)
	}
	if l[3] != l[4] || l[4] != l[5] {
		t.Fatalf("component 2 split: %v", l)
	}
	if l[0] == l[3] {
		t.Fatalf("components merged: %v", l)
	}
	if l[0] != 0 || l[3] != 3 {
		t.Fatalf("min labels: %v", l)
	}
}

func TestRadiiReasonable(t *testing.T) {
	g := Road(20, 20, 2)
	r := Radii(g, 3, 64)
	maxR := uint64(0)
	for _, x := range r {
		if x > maxR {
			maxR = x
		}
	}
	if maxR == 0 {
		t.Fatal("radii all zero")
	}
	if maxR > uint64(g.N) {
		t.Fatalf("radius %d out of range", maxR)
	}
}

func TestPageRankDeltaConserves(t *testing.T) {
	g := PowerLaw(500, 4, 3)
	r := PageRankDelta(g, 20, 1e-9)
	sum := 0.0
	for _, x := range r {
		if x < 0 {
			t.Fatal("negative rank")
		}
		sum += x
	}
	if sum <= 0 || sum > 1.5 {
		t.Fatalf("rank mass = %f", sum)
	}
}

func TestGeneratorsShape(t *testing.T) {
	for _, in := range Inputs(1, 1) {
		g := in.G
		if g.N == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", in.Label)
		}
		avg := float64(g.M()) / float64(g.N)
		if avg < 1 || avg > 40 {
			t.Fatalf("%s: degenerate avg degree %f", in.Label, avg)
		}
		// CSR invariants.
		if int(g.Offsets[g.N]) != g.M() {
			t.Fatalf("%s: offsets tail mismatch", in.Label)
		}
		for v := 0; v < g.N; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				t.Fatalf("%s: offsets not monotone at %d", in.Label, v)
			}
		}
		for _, u := range g.Neighbors {
			if int(u) >= g.N {
				t.Fatalf("%s: neighbor out of range", in.Label)
			}
		}
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	g := PowerLaw(2000, 4, 7)
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.M()) / float64(g.N)
	if float64(maxDeg) < 8*avg {
		t.Fatalf("not skewed: max %d vs avg %f", maxDeg, avg)
	}
}

func TestRoadIsLowDegreeHighDiameter(t *testing.T) {
	g := Road(50, 50, 4)
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 8 {
		t.Fatalf("road max degree %d too high", maxDeg)
	}
	d := BFS(g, 0)
	if d[g.N-1] < 40 {
		t.Fatalf("diameter too small: %d", d[g.N-1])
	}
}

func TestWriteToMemory(t *testing.T) {
	m := mem.New()
	g := Collaboration(200, 5)
	l := g.WriteTo(m)
	for v := 0; v <= g.N; v++ {
		if m.Read64(l.OffsetsAddr+uint64(v)*8) != g.Offsets[v] {
			t.Fatalf("offsets[%d] mismatch", v)
		}
	}
	for i, u := range g.Neighbors {
		if m.Read64(l.NeighborsAddr+uint64(i)*8) != u {
			t.Fatalf("neighbors[%d] mismatch", i)
		}
	}
}

// Property: BFS from any vertex of a symmetric graph gives dist 0 only at
// the source.
func TestBFSSourceProperty(t *testing.T) {
	g := Uniform(300, 3, 9)
	f := func(srcRaw uint16) bool {
		src := int(srcRaw) % g.N
		d := BFS(g, src)
		if d[src] != 0 {
			return false
		}
		zero := 0
		for _, x := range d {
			if x == 0 {
				zero++
			}
		}
		return zero == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
