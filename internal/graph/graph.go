// Package graph provides CSR graphs, synthetic generators shaped like the
// paper's Table V inputs, reference algorithm implementations used to check
// simulated results, and layout of graph data into simulated memory.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"pipette/internal/mem"
)

// Graph is a directed graph in compressed sparse row format (Fig. 1(c)).
type Graph struct {
	Name      string
	N         int
	Offsets   []uint64 // len N+1
	Neighbors []uint64
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Neighbors) }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Ngh returns the neighbor slice of v.
func (g *Graph) Ngh(v int) []uint64 { return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]] }

// FromEdges builds a CSR graph from an edge list, deduplicating and sorting
// adjacency lists.
func FromEdges(name string, n int, edges [][2]int) *Graph {
	adj := make([][]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			continue
		}
		adj[u] = append(adj[u], v)
	}
	g := &Graph{Name: name, N: n, Offsets: make([]uint64, n+1)}
	for u := 0; u < n; u++ {
		sort.Ints(adj[u])
		prev := -1
		for _, v := range adj[u] {
			if v == prev {
				continue
			}
			prev = v
			g.Neighbors = append(g.Neighbors, uint64(v))
		}
		g.Offsets[u+1] = uint64(len(g.Neighbors))
	}
	return g
}

// symmetrize duplicates every edge in both directions before CSR build.
func symmetrize(edges [][2]int) [][2]int {
	out := make([][2]int, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, [2]int{e[1], e[0]})
	}
	return out
}

// Road generates a road-network-like graph (USA-road class): a w×h grid with
// occasional diagonal shortcuts — degree ~2-4, huge diameter.
func Road(w, h int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	n := w * h
	var edges [][2]int
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, [2]int{id(x, y), id(x, y+1)})
			}
			if x+1 < w && y+1 < h && r.Intn(10) == 0 {
				edges = append(edges, [2]int{id(x, y), id(x+1, y+1)})
			}
		}
	}
	return FromEdges(fmt.Sprintf("road-%d", n), n, symmetrize(edges))
}

// PowerLaw generates a scale-free graph (as-Skitter class) by preferential
// attachment: each new vertex attaches k edges biased toward earlier
// (high-degree) vertices.
func PowerLaw(n, k int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	var targets []int // multiset of endpoints; sampling it ≈ preferential
	var edges [][2]int
	for v := 1; v < n; v++ {
		for e := 0; e < k; e++ {
			var u int
			if len(targets) == 0 || r.Intn(4) == 0 {
				u = r.Intn(v)
			} else {
				u = targets[r.Intn(len(targets))]
			}
			if u == v {
				continue
			}
			edges = append(edges, [2]int{v, u})
			targets = append(targets, u, v)
		}
	}
	return FromEdges(fmt.Sprintf("powerlaw-%d", n), n, symmetrize(edges))
}

// Uniform generates an Erdős–Rényi-style graph with average degree deg
// (hugetrace class: large, sparse, fairly regular).
func Uniform(n, deg int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 0; v < n; v++ {
		for e := 0; e < deg; e++ {
			u := r.Intn(n)
			if u != v {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return FromEdges(fmt.Sprintf("uniform-%d", n), n, symmetrize(edges))
}

// Collaboration generates a clustered small-world graph (coAuthorsDBLP
// class): vertices join cliques of 3-8, plus sparse random cross links.
func Collaboration(n int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	var edges [][2]int
	v := 0
	for v < n {
		size := 3 + r.Intn(6)
		if v+size > n {
			size = n - v
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{v + i, v + j})
			}
		}
		// Cross link to an earlier clique member.
		if v > 0 {
			edges = append(edges, [2]int{v, r.Intn(v)})
		}
		v += size
	}
	return FromEdges(fmt.Sprintf("collab-%d", n), n, symmetrize(edges))
}

// Circuit generates a circuit-simulation-style graph (Freescale class):
// mostly short local wires with a few long-distance nets.
func Circuit(n int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 0; v < n; v++ {
		deg := 2 + r.Intn(4)
		for e := 0; e < deg; e++ {
			var u int
			if r.Intn(20) == 0 { // long wire
				u = r.Intn(n)
			} else {
				u = v + 1 + r.Intn(16)
			}
			if u >= 0 && u < n && u != v {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return FromEdges(fmt.Sprintf("circuit-%d", n), n, symmetrize(edges))
}

// Layout is the simulated-memory image of a graph.
type Layout struct {
	OffsetsAddr   uint64 // N+1 8-byte words
	NeighborsAddr uint64 // M 8-byte words
}

// WriteTo lays the graph out in simulated memory (8-byte elements; see
// DESIGN.md: widths are uniform to keep RA configs simple).
func (g *Graph) WriteTo(m *mem.Memory) Layout {
	l := Layout{
		OffsetsAddr:   m.AllocWords(uint64(g.N + 1)),
		NeighborsAddr: m.AllocWords(uint64(max(g.M(), 1))),
	}
	m.WriteWords(l.OffsetsAddr, g.Offsets)
	m.WriteWords(l.NeighborsAddr, g.Neighbors)
	return l
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Reference algorithms (used to validate simulated results). ----

// Unreached marks vertices not reached by BFS.
const Unreached = ^uint64(0)

// BFS returns shortest hop distances from src.
func BFS(g *Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	fringe := []int{src}
	for d := uint64(1); len(fringe) > 0; d++ {
		var next []int
		for _, v := range fringe {
			for _, u := range g.Ngh(v) {
				if dist[u] == Unreached {
					dist[u] = d
					next = append(next, int(u))
				}
			}
		}
		fringe = next
	}
	return dist
}

// CC returns connected-component labels via label propagation (minimum
// label wins), matching the Ligra-style kernel the benchmarks implement.
func CC(g *Graph) []uint64 {
	label := make([]uint64, g.N)
	for i := range label {
		label[i] = uint64(i)
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			for _, u := range g.Ngh(v) {
				if label[v] < label[u] {
					label[u] = label[v]
					changed = true
				}
			}
		}
	}
	return label
}

// RadiiSetup returns the initial visit masks and fringe for the Radii
// kernel: up to 64 random sources, each owning one mask bit. Both the
// reference implementation and the simulated kernels start from this state.
func RadiiSetup(g *Graph, seed int64, k int) (visited []uint64, fringe []int) {
	r := rand.New(rand.NewSource(seed))
	visited = make([]uint64, g.N)
	if k <= 0 || k > 64 {
		k = 64
	}
	if g.N < k {
		k = g.N
	}
	for i := 0; i < k; i++ {
		v := r.Intn(g.N)
		if visited[v]&(1<<uint(i)) == 0 {
			visited[v] |= 1 << uint(i)
			fringe = append(fringe, v)
		}
	}
	return visited, fringe
}

// Radii estimates vertex eccentricities with k simultaneous BFS waves
// (k <= 64) using 64-bit visit masks (the Ligra Radii kernel). It returns
// the radii array.
func Radii(g *Graph, seed int64, k int) []uint64 {
	visited, fringe := RadiiSetup(g, seed, k)
	next := make([]uint64, g.N)
	radii := make([]uint64, g.N)
	copy(next, visited)
	for round := uint64(1); len(fringe) > 0; round++ {
		seen := map[int]bool{}
		var nf []int
		for _, v := range fringe {
			for _, uu := range g.Ngh(v) {
				u := int(uu)
				add := visited[v] &^ visited[u]
				if add != 0 {
					next[u] |= add
					radii[u] = round
					if !seen[u] {
						seen[u] = true
						nf = append(nf, u)
					}
				}
			}
		}
		for _, u := range nf {
			visited[u] = next[u]
		}
		fringe = nf
	}
	return radii
}

// PageRankDelta runs the delta-based PageRank variant: only vertices whose
// accumulated delta exceeds eps propagate in each iteration. Returns ranks.
func PageRankDelta(g *Graph, iters int, eps float64) []float64 {
	const damping = 0.85
	n := g.N
	rank := make([]float64, n)
	delta := make([]float64, n)
	accum := make([]float64, n)
	base := (1 - damping) / float64(n)
	for i := range rank {
		rank[i] = base
		delta[i] = base
	}
	fringe := make([]int, n)
	for i := range fringe {
		fringe[i] = i
	}
	for it := 0; it < iters && len(fringe) > 0; it++ {
		for i := range accum {
			accum[i] = 0
		}
		for _, v := range fringe {
			if d := g.Degree(v); d > 0 {
				share := damping * delta[v] / float64(d)
				for _, u := range g.Ngh(v) {
					accum[u] += share
				}
			}
		}
		var next []int
		for v := 0; v < n; v++ {
			delta[v] = accum[v]
			if delta[v] > eps {
				rank[v] += delta[v]
				next = append(next, v)
			}
		}
		fringe = next
	}
	return rank
}
