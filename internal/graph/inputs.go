package graph

// Input couples a short label (matching Fig. 13's axis) with a generated
// graph shaped like the corresponding Table V input.
type Input struct {
	Label string // Co, Dy, Fs, Sk, Rd
	Full  string
	G     *Graph
}

// Inputs generates the five Table V-shaped graphs. size scales vertex
// counts; size=1 is the default evaluation scale used in EXPERIMENTS.md
// (tens of thousands of edges, far larger than the scaled caches). seed is
// the run's base seed: input i is generated from seed+10+i, so the default
// seed of 1 reproduces the historical per-input seeds 11..15 exactly (run
// reports record the base seed; see docs/CHECKPOINT.md on reproducibility).
func Inputs(size int, seed int64) []Input {
	if size <= 0 {
		size = 1
	}
	s := size
	b := seed + 10
	return []Input{
		{"Co", "collaboration (coAuthorsDBLP class)", Collaboration(3000*s, b)},
		{"Dy", "dynamic simulation (hugetrace class)", Uniform(6000*s, 3, b+1)},
		{"Fs", "circuit simulation (Freescale class)", Circuit(5000*s, b+2)},
		{"Sk", "internet topology (as-Skitter class)", PowerLaw(4000*s, 6, b+3)},
		{"Rd", "road network (USA-road class)", Road(90*s, 90*s, b+4)},
	}
}
