package graph

// Input couples a short label (matching Fig. 13's axis) with a generated
// graph shaped like the corresponding Table V input.
type Input struct {
	Label string // Co, Dy, Fs, Sk, Rd
	Full  string
	G     *Graph
}

// Inputs generates the five Table V-shaped graphs. size scales vertex
// counts; size=1 is the default evaluation scale used in EXPERIMENTS.md
// (tens of thousands of edges, far larger than the scaled caches).
func Inputs(size int) []Input {
	if size <= 0 {
		size = 1
	}
	s := size
	return []Input{
		{"Co", "collaboration (coAuthorsDBLP class)", Collaboration(3000*s, 11)},
		{"Dy", "dynamic simulation (hugetrace class)", Uniform(6000*s, 3, 12)},
		{"Fs", "circuit simulation (Freescale class)", Circuit(5000*s, 13)},
		{"Sk", "internet topology (as-Skitter class)", PowerLaw(4000*s, 6, 14)},
		{"Rd", "road network (USA-road class)", Road(90*s, 90*s, 15)},
	}
}
