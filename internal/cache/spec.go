// Speculative-kernel support: prediction replicas, touched-set tracking,
// and a journaled replay mode.
//
// The speculative kernel (internal/sim/speculate.go) runs each core's epoch
// against a *replica* of the hierarchy — a deep clone whose port predicts
// completion times without touching shared state. Replicas are prediction-
// only: correctness comes from replaying every access into the real
// hierarchy at validation time, in canonical (cycle, core, program) order,
// and comparing the predicted (done, level) pairs. A mismatch aborts the
// epoch, so replica drift can cost throughput but never correctness.
//
// Three mechanisms live here:
//
//   - Touched-set tracking: every mutated cache set (and presence entry) is
//     recorded so a replica can be resynchronized from the real hierarchy
//     by copying only what changed since the last resync, instead of a full
//     snapshot per epoch. LRU `use` values are copied verbatim and the
//     array clocks follow a max() rule — only the relative use order within
//     one set matters for victim selection, and both timelines are
//     monotonic, so predictions match the real arrays exactly.
//
//   - Journaled replay: validation replays an epoch's accesses into the
//     real hierarchy under an undo journal (set-level line pre-images,
//     presence pre-images, and the scalar clocks/MSHR/prefetch state saved
//     eagerly), so a mid-replay mismatch can restore the pre-epoch state
//     bit-exactly before the barrier kernel re-executes the cycles.
//
//   - Replica coherence: a replica's invalidateRemote decides the
//     write-ownership penalty from the presence directory alone and never
//     touches remote ports' arrays (which are stale copies in a replica).
//     The directory invariant (bit j set iff core j caches the line) makes
//     this equivalent to the real scan; any drift surfaces as a replay
//     mismatch, not a wrong result.
//
// None of this state is serialized: checkpoints and StateHash see only the
// explicit cache.State fields.
package cache

// specState hangs off a Hierarchy when the speculative kernel is active
// (or when the hierarchy IS a prediction replica).
type specState struct {
	replica   bool     // prediction replica: presence-directed coherence
	presTouch []uint64 // presence keys mutated since last reset
	jrn       *hjournal
}

// hjournal is the undo journal for a validation replay.
type hjournal struct {
	active   bool
	arrays   []*array // l3 + every port's l1/l2, in fixed order
	ticks    []uint64
	dramFree uint64
	stats    Stats
	jsets    []jset
	jlines   []line
	jpres    []jpre
	ports    []portSave
}

type jset struct {
	a   *array
	set int32
	off int32
}

type jpre struct {
	line uint64
	mask uint32
	had  bool
}

type portSave struct {
	mshr    []uint64
	streams [numStreams]stream
	nextStr int
}

// markSlow records a set mutation: into the touched list (for resync) and,
// during an active replay, a set pre-image into the journal. Called from
// the inlined mark() guard only when tracking is enabled.
func (a *array) markSlow(lineAddr uint64) {
	s := int(lineAddr) & (a.sets - 1)
	if a.stamp[s] != a.gen {
		a.stamp[s] = a.gen
		a.touched = append(a.touched, int32(s))
	}
	if j := a.jrn; j != nil && j.active {
		if a.jstamp[s] != a.jgen {
			a.jstamp[s] = a.jgen
			off := len(j.jlines)
			j.jlines = append(j.jlines, a.lines[s*a.ways:(s+1)*a.ways]...)
			j.jsets = append(j.jsets, jset{a: a, set: int32(s), off: int32(off)})
		}
	}
}

// enableTrack allocates the tracking scratch for one array.
func (a *array) enableTrack(j *hjournal) {
	if a.stamp == nil {
		a.stamp = make([]uint32, a.sets)
		a.jstamp = make([]uint32, a.sets)
		a.gen = 1
		a.jgen = 1
	}
	a.jrn = j
}

// resetTrack forgets the touched list (stale stamps are invalidated by the
// generation bump).
func (a *array) resetTrack() {
	a.gen++
	a.touched = a.touched[:0]
}

// copyTouchedFrom copies every set touched on either side from src into a,
// then resets a's tracking. The array clocks follow the max rule: copied
// use values stay comparable within their set on both timelines.
func (a *array) copyTouchedFrom(src *array) {
	for _, s := range src.touched {
		copy(a.lines[int(s)*a.ways:(int(s)+1)*a.ways], src.lines[int(s)*src.ways:(int(s)+1)*src.ways])
	}
	for _, s := range a.touched {
		copy(a.lines[int(s)*a.ways:(int(s)+1)*a.ways], src.lines[int(s)*src.ways:(int(s)+1)*src.ways])
	}
	if src.tick > a.tick {
		a.tick = src.tick
	}
	a.resetTrack()
}

// allArrays lists the hierarchy's arrays in a fixed order (l3, then each
// port's l1 and l2).
func (h *Hierarchy) allArrays() []*array {
	out := make([]*array, 0, 1+2*len(h.ports))
	out = append(out, h.l3)
	for _, p := range h.ports {
		out = append(out, p.l1, p.l2)
	}
	return out
}

// EnableSpec switches the hierarchy into speculative-kernel mode: set and
// presence mutations are tracked for replica resync, and BeginJournal
// becomes available. Idempotent.
func (h *Hierarchy) EnableSpec() {
	if h.sp != nil {
		return
	}
	j := &hjournal{arrays: h.allArrays()}
	j.ticks = make([]uint64, len(j.arrays))
	j.ports = make([]portSave, len(h.ports))
	h.sp = &specState{jrn: j}
	for _, a := range j.arrays {
		a.enableTrack(j)
	}
}

// presMut records a presence-directory mutation (touch list + journal
// pre-image). Called before the mutation.
func (h *Hierarchy) presMut(lineAddr uint64) {
	sp := h.sp
	sp.presTouch = append(sp.presTouch, lineAddr)
	if j := sp.jrn; j != nil && j.active {
		m, ok := h.presence[lineAddr]
		j.jpres = append(j.jpres, jpre{line: lineAddr, mask: m, had: ok})
	}
}

// setPresence writes (or deletes) a presence entry through the mutation
// hook; used by the replica coherence path.
func (h *Hierarchy) setPresence(lineAddr uint64, mask uint32) {
	h.presMut(lineAddr)
	if mask == 0 {
		delete(h.presence, lineAddr)
	} else {
		h.presence[lineAddr] = mask
	}
}

// BeginJournal starts recording undo state for a validation replay.
// Requires EnableSpec.
func (h *Hierarchy) BeginJournal() {
	j := h.sp.jrn
	j.active = true
	j.jsets = j.jsets[:0]
	j.jlines = j.jlines[:0]
	j.jpres = j.jpres[:0]
	for i, a := range j.arrays {
		j.ticks[i] = a.tick
		a.jgen++
	}
	j.dramFree = h.dramFree
	j.stats = h.Stats
	for i, p := range h.ports {
		ps := &j.ports[i]
		ps.mshr = append(ps.mshr[:0], p.mshr...)
		ps.streams = p.streams
		ps.nextStr = p.nextStr
	}
}

// EndJournal commits the replay: pre-images are discarded (the touched
// lists persist for the next replica resync).
func (h *Hierarchy) EndJournal() { h.sp.jrn.active = false }

// AbortJournal undoes everything since BeginJournal, restoring the
// hierarchy to its pre-replay state bit-exactly.
func (h *Hierarchy) AbortJournal() {
	j := h.sp.jrn
	for i := len(j.jsets) - 1; i >= 0; i-- {
		js := &j.jsets[i]
		a := js.a
		copy(a.lines[int(js.set)*a.ways:(int(js.set)+1)*a.ways], j.jlines[js.off:int(js.off)+a.ways])
	}
	for i := len(j.jpres) - 1; i >= 0; i-- {
		jp := &j.jpres[i]
		if jp.had {
			h.presence[jp.line] = jp.mask
		} else {
			delete(h.presence, jp.line)
		}
	}
	for i, a := range j.arrays {
		a.tick = j.ticks[i]
	}
	h.dramFree = j.dramFree
	h.Stats = j.stats
	for i, p := range h.ports {
		ps := &j.ports[i]
		p.mshr = append(p.mshr[:0], ps.mshr...)
		p.streams = ps.streams
		p.nextStr = ps.nextStr
	}
	j.active = false
}

// Clone returns a prediction replica for core `owner`: a deep copy whose
// port computes the same completion times as the real hierarchy as long as
// the state they both consult stays in sync. Only the owner's port is ever
// used; remote ports exist so ids and the presence directory line up.
func (h *Hierarchy) Clone(owner int) *Hierarchy {
	r := &Hierarchy{
		cfg:       h.cfg,
		lineShift: h.lineShift,
		l3:        h.l3.clone(),
		dramFree:  h.dramFree,
		presence:  make(map[uint64]uint32, len(h.presence)),
		Stats:     h.Stats,
	}
	for k, v := range h.presence {
		r.presence[k] = v
	}
	for _, p := range h.ports {
		rp := &Port{
			h:       r,
			id:      p.id,
			l1:      p.l1.clone(),
			l2:      p.l2.clone(),
			mshr:    append([]uint64(nil), p.mshr...),
			streams: p.streams,
			nextStr: p.nextStr,
		}
		r.ports = append(r.ports, rp)
	}
	r.sp = &specState{replica: true}
	own := r.ports[owner]
	r.l3.enableTrack(nil)
	own.l1.enableTrack(nil)
	own.l2.enableTrack(nil)
	return r
}

func (a *array) clone() *array {
	c := &array{sets: a.sets, ways: a.ways, tick: a.tick}
	c.lines = append([]line(nil), a.lines...)
	return c
}

// ResyncReplica brings replica r (owned by core `owner`) back to the real
// hierarchy's state by copying the union of both sides' touched sets, the
// mutated presence entries, and the owner port's scalar state. The real
// hierarchy's tracking is NOT reset here — every replica consumes it first;
// the caller resets it once via ResetTouched.
func (h *Hierarchy) ResyncReplica(r *Hierarchy, owner int) {
	r.l3.copyTouchedFrom(h.l3)
	hp, rp := h.ports[owner], r.ports[owner]
	rp.l1.copyTouchedFrom(hp.l1)
	rp.l2.copyTouchedFrom(hp.l2)
	for _, k := range h.sp.presTouch {
		if m, ok := h.presence[k]; ok {
			r.presence[k] = m
		} else {
			delete(r.presence, k)
		}
	}
	for _, k := range r.sp.presTouch {
		if m, ok := h.presence[k]; ok {
			r.presence[k] = m
		} else {
			delete(r.presence, k)
		}
	}
	r.sp.presTouch = r.sp.presTouch[:0]
	r.dramFree = h.dramFree
	rp.mshr = append(rp.mshr[:0], hp.mshr...)
	rp.streams = hp.streams
	rp.nextStr = hp.nextStr
}

// ResetTouched forgets the real hierarchy's touched lists after all
// replicas have resynced.
func (h *Hierarchy) ResetTouched() {
	h.l3.resetTrack()
	for _, p := range h.ports {
		p.l1.resetTrack()
		p.l2.resetTrack()
	}
	h.sp.presTouch = h.sp.presTouch[:0]
}
