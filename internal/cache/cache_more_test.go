package cache

import "testing"

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := smallCfg()
	cfg.L1Sets, cfg.L1Ways = 1, 1
	cfg.L2Sets, cfg.L2Ways = 1, 1
	cfg.L3Sets, cfg.L3Ways = 1, 1
	h := New(cfg, 1)
	p := h.Port(0)
	now, _ := p.Access(0, 0, true) // dirty line 0
	p.Access(now, 64, false)       // evicts dirty line 0 everywhere
	if h.Stats.Writebacks == 0 {
		t.Fatal("dirty eviction produced no writeback")
	}
}

func TestAtomicCountsAsWriteForCoherence(t *testing.T) {
	h := New(smallCfg(), 2)
	a, b := h.Port(0), h.Port(1)
	d, _ := a.Access(0, 0x8000, false)
	b.Access(d, 0x8000, true) // RMW on the other core
	_, lvl := a.Access(d+500, 0x8000, false)
	if lvl == LvlL1 || lvl == LvlL2 {
		t.Fatalf("stale private copy survived a remote RMW: %v", lvl)
	}
}

func TestPrefetcherIgnoresRandomPattern(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg, 1)
	p := h.Port(0)
	// Pseudo-random line addresses: no ascending unit stride.
	addr := uint64(12345)
	now := uint64(0)
	for i := 0; i < 200; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		d, _ := p.Access(now, (addr%100000)*64, false)
		now = d
	}
	if h.Stats.Prefetches > 20 {
		t.Fatalf("prefetcher fired %d times on a random stream", h.Stats.Prefetches)
	}
}

func TestMultipleStreamsTrackedIndependently(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg, 1)
	p := h.Port(0)
	now := uint64(0)
	// Interleave two ascending streams far apart.
	for i := uint64(0); i < 32; i++ {
		d, _ := p.Access(now, i*64, false)
		now = d
		d, _ = p.Access(now, 1<<20|i*64, false)
		now = d
	}
	if h.Stats.Prefetches == 0 {
		t.Fatal("interleaved streams defeated the stream table")
	}
}

func TestSharedL3AcrossCores(t *testing.T) {
	h := New(smallCfg(), 2)
	a, b := h.Port(0), h.Port(1)
	d, _ := a.Access(0, 0xA000, false) // core 0 brings it into L3
	_, lvl := b.Access(d, 0xA000, false)
	if lvl != LvlL3 {
		t.Fatalf("core 1 should hit shared L3, got %v", lvl)
	}
}

func TestInclusiveL2EvictionDropsL1(t *testing.T) {
	cfg := smallCfg()
	cfg.L1Sets, cfg.L1Ways = 1, 4 // L1 could hold 4 lines of one set...
	cfg.L2Sets, cfg.L2Ways = 1, 2 // ...but L2 holds only 2: inclusivity forces L1 drops
	h := New(cfg, 1)
	p := h.Port(0)
	now := uint64(0)
	for i := uint64(0); i < 3; i++ {
		d, _ := p.Access(now, i*64, false)
		now = d
	}
	// Line 0 was evicted from L2, so inclusivity must have dropped it from
	// L1 too: the re-access cannot be an L1 hit.
	_, lvl := p.Access(now, 0, false)
	if lvl == LvlL1 {
		t.Fatal("L1 retained a line its L2 evicted (inclusion violated)")
	}
}
