package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	c := DefaultConfig()
	c.StreamPrefetch = false
	return c
}

func TestL1HitAfterMiss(t *testing.T) {
	h := New(smallCfg(), 1)
	p := h.Port(0)
	done1, lvl1 := p.Access(0, 0x1000, false)
	if lvl1 != LvlDRAM {
		t.Fatalf("first access level = %v, want DRAM", lvl1)
	}
	if done1 < h.cfg.DRAMLat {
		t.Fatalf("DRAM access too fast: %d", done1)
	}
	done2, lvl2 := p.Access(done1, 0x1000, false)
	if lvl2 != LvlL1 {
		t.Fatalf("second access level = %v, want L1", lvl2)
	}
	if done2 != done1+h.cfg.L1Lat {
		t.Fatalf("L1 hit latency = %d, want %d", done2-done1, h.cfg.L1Lat)
	}
}

func TestSameLineIsOneMiss(t *testing.T) {
	h := New(smallCfg(), 1)
	p := h.Port(0)
	p.Access(0, 0x2000, false)
	_, lvl := p.Access(1000, 0x2000+32, false) // same 64B line
	if lvl != LvlL1 {
		t.Fatalf("same-line access = %v, want L1 hit", lvl)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := smallCfg()
	cfg.L1Sets, cfg.L1Ways = 1, 2
	cfg.L2Sets, cfg.L2Ways = 1, 2
	cfg.L3Sets, cfg.L3Ways = 1, 2
	h := New(cfg, 1)
	p := h.Port(0)
	now := uint64(0)
	addr := func(i int) uint64 { return uint64(i) * 64 }
	for i := 0; i < 3; i++ { // 3 distinct lines through 2-way caches
		d, _ := p.Access(now, addr(i), false)
		now = d
	}
	// line 0 must have been evicted everywhere (LRU, all levels 2-way).
	_, lvl := p.Access(now, addr(0), false)
	if lvl != LvlDRAM {
		t.Fatalf("evicted line served at %v, want DRAM", lvl)
	}
}

func TestMSHRLimitsMLP(t *testing.T) {
	cfg := smallCfg()
	cfg.MSHRs = 2
	cfg.DRAMCyclesPerLine = 0
	h := New(cfg, 1)
	p := h.Port(0)
	d1, _ := p.Access(0, 64*100, false)
	d2, _ := p.Access(0, 64*200, false)
	d3, _ := p.Access(0, 64*300, false) // must wait for an MSHR
	if d2 < d1 {
		t.Fatalf("parallel misses out of order: %d < %d", d2, d1)
	}
	if d3 <= d2 {
		t.Fatalf("third miss should be serialized by MSHRs: d3=%d d2=%d", d3, d2)
	}
}

func TestDRAMBandwidthSerializes(t *testing.T) {
	cfg := smallCfg()
	cfg.DRAMCyclesPerLine = 50
	h := New(cfg, 1)
	p := h.Port(0)
	d1, _ := p.Access(0, 64*1000, false)
	d2, _ := p.Access(0, 64*2000, false)
	if d2 != d1+50 {
		t.Fatalf("bandwidth not applied: d1=%d d2=%d", d1, d2)
	}
}

func TestRemoteInvalidation(t *testing.T) {
	h := New(smallCfg(), 2)
	a, b := h.Port(0), h.Port(1)
	d, _ := a.Access(0, 0x4000, false)
	_, lvl := a.Access(d, 0x4000, false)
	if lvl != LvlL1 {
		t.Fatalf("warmup failed: %v", lvl)
	}
	b.Access(d, 0x4000, true) // remote write invalidates core 0's copy
	if h.Stats.Invalidations == 0 {
		t.Fatal("no invalidation counted")
	}
	_, lvl = a.Access(d+1000, 0x4000, false)
	if lvl == LvlL1 || lvl == LvlL2 {
		t.Fatalf("core 0 still hit privately after remote write: %v", lvl)
	}
}

func TestStreamPrefetchHidesSequentialMisses(t *testing.T) {
	cfg := DefaultConfig() // prefetch on
	h := New(cfg, 1)
	p := h.Port(0)
	now := uint64(0)
	var dramWith uint64
	for i := 0; i < 64; i++ {
		d, _ := p.Access(now, uint64(i)*64, false)
		now = d
	}
	dramWith = h.Stats.DRAMAccesses
	// Without prefetch every line misses to DRAM.
	cfg2 := smallCfg()
	h2 := New(cfg2, 1)
	p2 := h2.Port(0)
	now = 0
	for i := 0; i < 64; i++ {
		d, _ := p2.Access(now, uint64(i)*64, false)
		now = d
	}
	if dramWith >= h2.Stats.DRAMAccesses {
		t.Fatalf("prefetcher did not reduce demand DRAM accesses: %d vs %d", dramWith, h2.Stats.DRAMAccesses)
	}
	if h.Stats.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestScaleConfig(t *testing.T) {
	c := DefaultConfig().Scale(8)
	if c.L3Sets != 256 || c.L1Sets != 8 {
		t.Fatalf("scale wrong: %+v", c)
	}
	if DefaultConfig().Scale(1).L3Sets != 2048 {
		t.Fatal("scale(1) must be identity")
	}
	// Scaling never produces fewer than 2 sets.
	c = DefaultConfig().Scale(1 << 20)
	if c.L1Sets < 2 || c.L2Sets < 2 || c.L3Sets < 2 {
		t.Fatalf("over-scaled: %+v", c)
	}
}

// Property: completion time is always at least the L1 latency after issue,
// and monotone in issue time for the same address.
func TestAccessLatencyProperty(t *testing.T) {
	h := New(smallCfg(), 1)
	p := h.Port(0)
	f := func(addr uint64, w bool) bool {
		addr &= 0xFFFFFF
		d, _ := p.Access(0, addr, w)
		return d >= h.cfg.L1Lat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hits at higher levels are never slower than the level below.
func TestLevelOrderingProperty(t *testing.T) {
	h := New(smallCfg(), 1)
	p := h.Port(0)
	dMiss, _ := p.Access(0, 0x9000, false)
	dHit, _ := p.Access(dMiss, 0x9000, false)
	if dHit-dMiss >= dMiss {
		t.Fatalf("L1 hit (%d) not faster than DRAM miss (%d)", dHit-dMiss, dMiss)
	}
}
