// Clocked-component face of the cache hierarchy (sim.Component). The
// hierarchy is passive in the timing model: Port.Access computes completion
// times (hit levels, MSHR merging, DRAM bandwidth) at the moment of the
// access, and in-flight state such as MSHR entries and the DRAM free
// timestamp is pruned lazily against the caller-supplied cycle on the next
// access. Nothing ever needs a tick of its own, and pending DRAM responses
// need no NextEvent entry either: a response only matters at the cycle the
// issuing µop completes, and that µop's core already schedules its doneAt.
package cache

// Tick is a no-op: all hierarchy state advances lazily at access time.
func (h *Hierarchy) Tick(now uint64) {}

// NextEvent reports no self-scheduled work, ever (sim.NoEvent).
func (h *Hierarchy) NextEvent(now uint64) uint64 { return ^uint64(0) }

// FastForward is a no-op: the hierarchy counts accesses, not cycles.
func (h *Hierarchy) FastForward(from, to uint64) {}
