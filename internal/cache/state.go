package cache

import (
	"fmt"
	"sort"
)

// LineState is one cache line's tag state.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Use   uint64
}

// ArrayState is one set-associative array's full tag store plus its LRU
// tick counter.
type ArrayState struct {
	Sets, Ways int
	Lines      []LineState
	Tick       uint64
}

// StreamState is one prefetch stream detector.
type StreamState struct {
	LastLine uint64
	Conf     int
	Valid    bool
}

// PortState is one core's private slice of the hierarchy.
type PortState struct {
	L1, L2  ArrayState
	MSHR    []uint64
	Streams []StreamState
	NextStr int
}

// PresenceEntry is one presence-directory row (sorted by Line in State so
// the serialized form is canonical despite the in-memory map).
type PresenceEntry struct {
	Line uint64
	Mask uint32
}

// State is the serializable dynamic state of the whole hierarchy.
type State struct {
	L3       ArrayState
	DRAMFree uint64
	Presence []PresenceEntry
	Stats    Stats
	Ports    []PortState
}

func saveArray(a *array) ArrayState {
	st := ArrayState{Sets: a.sets, Ways: a.ways, Tick: a.tick}
	st.Lines = make([]LineState, len(a.lines))
	for i, l := range a.lines {
		st.Lines[i] = LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, Use: l.use}
	}
	return st
}

func restoreArray(a *array, st ArrayState) error {
	if st.Sets != a.sets || st.Ways != a.ways || len(st.Lines) != len(a.lines) {
		return fmt.Errorf("cache: array geometry mismatch: have %dx%d, snapshot %dx%d",
			a.sets, a.ways, st.Sets, st.Ways)
	}
	a.tick = st.Tick
	for i, l := range st.Lines {
		a.lines[i] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, use: l.Use}
	}
	return nil
}

// SaveState captures the hierarchy's dynamic state in canonical form.
func (h *Hierarchy) SaveState() State {
	st := State{
		L3:       saveArray(h.l3),
		DRAMFree: h.dramFree,
		Stats:    h.Stats,
	}
	for line, mask := range h.presence {
		st.Presence = append(st.Presence, PresenceEntry{Line: line, Mask: mask})
	}
	sort.Slice(st.Presence, func(i, j int) bool { return st.Presence[i].Line < st.Presence[j].Line })
	for _, p := range h.ports {
		ps := PortState{
			L1:      saveArray(p.l1),
			L2:      saveArray(p.l2),
			MSHR:    append([]uint64(nil), p.mshr...),
			NextStr: p.nextStr,
		}
		for _, s := range p.streams {
			ps.Streams = append(ps.Streams, StreamState{LastLine: s.lastLine, Conf: s.conf, Valid: s.valid})
		}
		st.Ports = append(st.Ports, ps)
	}
	return st
}

// RestoreState overwrites the hierarchy's dynamic state from st. The
// hierarchy must have been built with the same geometry and core count.
func (h *Hierarchy) RestoreState(st State) error {
	if len(st.Ports) != len(h.ports) {
		return fmt.Errorf("cache: snapshot has %d ports, hierarchy has %d", len(st.Ports), len(h.ports))
	}
	if err := restoreArray(h.l3, st.L3); err != nil {
		return fmt.Errorf("L3: %w", err)
	}
	h.dramFree = st.DRAMFree
	h.Stats = st.Stats
	h.presence = make(map[uint64]uint32, len(st.Presence))
	for _, e := range st.Presence {
		h.presence[e.Line] = e.Mask
	}
	for i, ps := range st.Ports {
		p := h.ports[i]
		if err := restoreArray(p.l1, ps.L1); err != nil {
			return fmt.Errorf("port %d L1: %w", i, err)
		}
		if err := restoreArray(p.l2, ps.L2); err != nil {
			return fmt.Errorf("port %d L2: %w", i, err)
		}
		p.mshr = append(p.mshr[:0], ps.MSHR...)
		if len(ps.Streams) != numStreams {
			return fmt.Errorf("port %d: snapshot has %d prefetch streams, want %d", i, len(ps.Streams), numStreams)
		}
		for j, s := range ps.Streams {
			p.streams[j] = stream{lastLine: s.LastLine, conf: s.Conf, valid: s.Valid}
		}
		p.nextStr = ps.NextStr
	}
	return nil
}

// ResetStats zeroes the event counters without touching timing state.
// Fork-after-warmup calls this at the ROI boundary so a cell's Result
// covers only its own region of interest.
func (h *Hierarchy) ResetStats() { h.Stats = Stats{} }
