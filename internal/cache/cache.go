// Package cache models the timing of the memory hierarchy: per-core L1D and
// L2, a shared L3, MSHR-limited miss-level parallelism, a stream prefetcher,
// and a bandwidth-limited DRAM channel. Functional data lives in
// internal/mem and is always coherent; this package computes completion
// times and maintains a presence directory so that writes invalidate remote
// private copies (enough coherence for the data-parallel baselines).
package cache

import (
	"fmt"

	"pipette/internal/telemetry"
)

// Config sizes the hierarchy. All latencies are in core cycles and are
// cumulative per level (an L2 hit costs L1Lat+L2Lat).
type Config struct {
	LineBytes int

	L1Sets, L1Ways int
	L1Lat          uint64

	L2Sets, L2Ways int
	L2Lat          uint64

	L3Sets, L3Ways int
	L3Lat          uint64

	DRAMLat           uint64 // latency of a row access
	DRAMCyclesPerLine uint64 // channel occupancy per line (bandwidth)

	MSHRs int // outstanding misses per core

	// CoherencePenalty is added to a write that invalidates copies in
	// other cores' private caches (the read-for-ownership round trip).
	// Contended shared lines — data-parallel barriers, atomics — pay it;
	// queue-based communication does not touch shared lines and avoids it.
	CoherencePenalty uint64

	StreamPrefetch bool
	PrefetchDegree int
}

// DefaultConfig mirrors Table IV scaled for this simulator: 32 KB 8-way L1D,
// 256 KB 8-way L2, 2 MB/core 16-way shared L3, ~50 GB/s-class DRAM channel.
func DefaultConfig() Config {
	return Config{
		LineBytes: 64,
		L1Sets:    64, L1Ways: 8, L1Lat: 4, // 32 KB
		L2Sets: 512, L2Ways: 8, L2Lat: 10, // 256 KB
		L3Sets: 2048, L3Ways: 16, L3Lat: 32, // 2 MB
		DRAMLat: 180, DRAMCyclesPerLine: 10,
		MSHRs:            16,
		CoherencePenalty: 36,
		StreamPrefetch:   true,
		PrefetchDegree:   4,
	}
}

// Scale returns a copy of c with all cache capacities divided by f (sets
// shrink; ways stay). Used to keep scaled-down inputs in the paper's
// "working set ≫ LLC" regime.
func (c Config) Scale(f int) Config {
	if f <= 1 {
		return c
	}
	div := func(n int) int {
		n /= f
		if n < 2 {
			n = 2
		}
		return n
	}
	c.L1Sets = div(c.L1Sets)
	c.L2Sets = div(c.L2Sets)
	c.L3Sets = div(c.L3Sets)
	return c
}

// Stats counts hierarchy events; used by the energy model and reports.
type Stats struct {
	L1Hits, L2Hits, L3Hits, DRAMAccesses uint64
	Writebacks                           uint64
	Prefetches                           uint64
	Invalidations                        uint64
}

// Level identifies where an access was satisfied.
type Level uint8

// Access service levels.
const (
	LvlL1 Level = iota
	LvlL2
	LvlL3
	LvlDRAM
)

var levelNames = [...]string{"L1", "L2", "L3", "DRAM"}

// String names the service level (telemetry and debug output).
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level%d", uint8(l))
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64
}

type array struct {
	sets, ways int
	lines      []line // sets*ways
	tick       uint64

	// Speculative-kernel scratch (see spec.go); nil unless EnableSpec or
	// Clone armed it. Never serialized.
	stamp   []uint32
	gen     uint32
	touched []int32
	jrn     *hjournal
	jstamp  []uint32
	jgen    uint32
}

// mark records a set mutation for the speculative kernel; one nil check
// when speculation is off.
func (a *array) mark(lineAddr uint64) {
	if a.stamp == nil {
		return
	}
	a.markSlow(lineAddr)
}

func newArray(sets, ways int) *array {
	return &array{sets: sets, ways: ways, lines: make([]line, sets*ways)}
}

func (a *array) set(lineAddr uint64) []line {
	s := int(lineAddr) & (a.sets - 1)
	return a.lines[s*a.ways : (s+1)*a.ways]
}

// lookup returns whether lineAddr hits, updating LRU on hit.
func (a *array) lookup(lineAddr uint64, write bool) bool {
	a.tick++
	for i := range a.set(lineAddr) {
		l := &a.set(lineAddr)[i]
		if l.valid && l.tag == lineAddr {
			a.mark(lineAddr)
			l.use = a.tick
			if write {
				l.dirty = true
			}
			return true
		}
	}
	return false
}

// install brings lineAddr in, evicting LRU if needed. It returns the evicted
// line address and whether it was valid and dirty.
func (a *array) install(lineAddr uint64, write bool) (evicted uint64, hadValid, wasDirty bool) {
	a.mark(lineAddr)
	a.tick++
	set := a.set(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].use < set[victim].use {
			victim = i
		}
	}
	v := &set[victim]
	evicted, hadValid, wasDirty = v.tag, v.valid, v.valid && v.dirty
	*v = line{tag: lineAddr, valid: true, dirty: write, use: a.tick}
	return evicted, hadValid, wasDirty
}

// invalidate drops lineAddr if present; reports whether it was present.
func (a *array) invalidate(lineAddr uint64) bool {
	a.mark(lineAddr)
	for i := range a.set(lineAddr) {
		l := &a.set(lineAddr)[i]
		if l.valid && l.tag == lineAddr {
			l.valid = false
			return true
		}
	}
	return false
}

// present reports presence without touching LRU state.
func (a *array) present(lineAddr uint64) bool {
	for i := range a.set(lineAddr) {
		l := &a.set(lineAddr)[i]
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}

const numStreams = 8

type stream struct {
	lastLine uint64
	conf     int
	valid    bool
}

// Hierarchy is the whole-system memory model: one Port per core plus the
// shared L3 and DRAM channel.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	l3        *array
	dramFree  uint64 // next cycle the DRAM channel is free
	ports     []*Port
	presence  map[uint64]uint32 // line -> bitmask of cores caching it
	Stats     Stats

	// sp is the speculative-kernel state (see spec.go); nil unless armed.
	sp *specState

	// trace, when non-nil, receives an event for every L1 miss with the
	// level that served it; nil costs one pointer check per miss.
	trace *telemetry.Tracer
}

// SetTracer attaches (or detaches, with nil) an event tracer; Access emits
// EvCacheMiss events through it.
func (h *Hierarchy) SetTracer(tr *telemetry.Tracer) { h.trace = tr }

// New builds a hierarchy with nCores private L1/L2 pairs.
func New(cfg Config, nCores int) *Hierarchy {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: shift,
		l3:        newArray(cfg.L3Sets, cfg.L3Ways),
		presence:  map[uint64]uint32{},
	}
	for i := 0; i < nCores; i++ {
		h.ports = append(h.ports, &Port{
			h:  h,
			id: i,
			l1: newArray(cfg.L1Sets, cfg.L1Ways),
			l2: newArray(cfg.L2Sets, cfg.L2Ways),
		})
	}
	return h
}

// Port returns core i's private port.
func (h *Hierarchy) Port(i int) *Port { return h.ports[i] }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Port is a core's private L1D+L2 slice of the hierarchy.
type Port struct {
	h       *Hierarchy
	id      int
	l1, l2  *array
	mshr    []uint64 // completion cycles of outstanding misses
	streams [numStreams]stream
	nextStr int
}

func (p *Port) lineOf(addr uint64) uint64 { return addr >> p.h.lineShift }

// pruneMSHR drops completed entries and returns the earliest completion time
// if the MSHRs are full (0 otherwise).
func (p *Port) pruneMSHR(now uint64) uint64 {
	out := p.mshr[:0]
	var earliest uint64
	for _, t := range p.mshr {
		if t > now {
			out = append(out, t)
			if earliest == 0 || t < earliest {
				earliest = t
			}
		}
	}
	p.mshr = out
	if len(p.mshr) >= p.h.cfg.MSHRs {
		return earliest
	}
	return 0
}

func (p *Port) markPresent(lineAddr uint64) {
	if p.h.sp != nil {
		p.h.presMut(lineAddr)
	}
	p.h.presence[lineAddr] |= 1 << uint(p.id)
}

func (p *Port) markAbsent(lineAddr uint64) {
	if m, ok := p.h.presence[lineAddr]; ok {
		if p.h.sp != nil {
			p.h.presMut(lineAddr)
		}
		m &^= 1 << uint(p.id)
		if m == 0 {
			delete(p.h.presence, lineAddr)
		} else {
			p.h.presence[lineAddr] = m
		}
	}
}

// installPrivate brings a line into this core's L2 and L1, maintaining the
// presence directory and counting writebacks.
func (p *Port) installPrivate(lineAddr uint64, write bool) {
	if ev, had, dirty := p.l2.install(lineAddr, write); had {
		if dirty {
			p.h.Stats.Writebacks++
		}
		if !p.l1.present(ev) {
			p.markAbsent(ev)
		}
		p.l1.invalidate(ev) // keep inclusive: L1 ⊆ L2
		p.markAbsent(ev)
	}
	if ev, had, dirty := p.l1.install(lineAddr, write); had {
		if dirty {
			p.h.Stats.Writebacks++
		}
		if !p.l2.present(ev) {
			p.markAbsent(ev)
		}
	}
	p.markPresent(lineAddr)
}

// invalidateRemote drops the line from every other core's private caches and
// reports whether any remote copy existed (the writer then pays the
// read-for-ownership penalty).
func (p *Port) invalidateRemote(lineAddr uint64) bool {
	mask, ok := p.h.presence[lineAddr]
	if !ok {
		return false
	}
	if sp := p.h.sp; sp != nil && sp.replica {
		// Prediction replica: remote ports hold stale copies, so decide
		// from the presence directory alone (bit j set iff core j caches
		// the line) and clear the remote bits. Any drift shows up as a
		// replay mismatch at validation, never as a wrong result.
		rem := mask &^ (1 << uint(p.id))
		if rem == 0 {
			return false
		}
		p.h.Stats.Invalidations++ // replica stats are never read
		p.h.setPresence(lineAddr, mask&(1<<uint(p.id)))
		return true
	}
	any := false
	for i, q := range p.h.ports {
		if i == p.id || mask&(1<<uint(i)) == 0 {
			continue
		}
		in1 := q.l1.invalidate(lineAddr)
		in2 := q.l2.invalidate(lineAddr)
		if in1 || in2 {
			p.h.Stats.Invalidations++
			any = true
		}
		q.markAbsent(lineAddr)
	}
	return any
}

// Access simulates a data access issued at cycle `now` and returns its
// completion cycle and the level that served it. Writes (and atomics, which
// the core issues as write=true) invalidate remote private copies.
func (p *Port) Access(now uint64, addr uint64, write bool) (done uint64, lvl Level) {
	cfg := &p.h.cfg
	la := p.lineOf(addr)
	var coherence uint64
	if write && p.invalidateRemote(la) {
		coherence = cfg.CoherencePenalty
	}
	if p.h.cfg.StreamPrefetch {
		p.trainPrefetch(la)
	}
	if p.l1.lookup(la, write) {
		p.h.Stats.L1Hits++
		return now + cfg.L1Lat + coherence, LvlL1
	}
	if p.l2.lookup(la, write) {
		p.h.Stats.L2Hits++
		p.installL1Only(la, write)
		done = now + cfg.L1Lat + cfg.L2Lat + coherence
		if p.h.trace != nil {
			p.h.trace.Emit(telemetry.EvCacheMiss, int16(p.id), telemetry.UnitCache, uint64(LvlL2), done)
		}
		return done, LvlL2
	}
	// Miss in private caches: take an MSHR.
	start := now
	if full := p.pruneMSHR(now); full != 0 {
		start = full
	}
	if p.h.l3.lookup(la, false) {
		p.h.Stats.L3Hits++
		p.installPrivate(la, write)
		done = start + cfg.L1Lat + cfg.L2Lat + cfg.L3Lat + coherence
		p.mshr = append(p.mshr, done)
		if p.h.trace != nil {
			p.h.trace.Emit(telemetry.EvCacheMiss, int16(p.id), telemetry.UnitCache, uint64(LvlL3), done)
		}
		return done, LvlL3
	}
	// DRAM. Respect channel bandwidth.
	p.h.Stats.DRAMAccesses++
	reqAt := start + cfg.L1Lat + cfg.L2Lat + cfg.L3Lat
	dramStart := reqAt
	if p.h.dramFree > dramStart {
		dramStart = p.h.dramFree
	}
	p.h.dramFree = dramStart + cfg.DRAMCyclesPerLine
	done = dramStart + cfg.DRAMLat
	p.installL3(la)
	p.installPrivate(la, write)
	p.mshr = append(p.mshr, done)
	if p.h.trace != nil {
		p.h.trace.Emit(telemetry.EvCacheMiss, int16(p.id), telemetry.UnitCache, uint64(LvlDRAM), done)
	}
	return done, LvlDRAM
}

func (p *Port) installL1Only(lineAddr uint64, write bool) {
	if ev, had, dirty := p.l1.install(lineAddr, write); had {
		if dirty {
			p.h.Stats.Writebacks++
		}
		if !p.l2.present(ev) {
			p.markAbsent(ev)
		}
	}
	p.markPresent(lineAddr)
}

func (p *Port) installL3(lineAddr uint64) {
	if _, had, dirty := p.h.l3.install(lineAddr, false); had && dirty {
		p.h.Stats.Writebacks++
	}
}

// trainPrefetch detects ascending unit-stride line streams and installs the
// next PrefetchDegree lines into L2 and L3, charging DRAM bandwidth but not
// demand latency (an idealized but standard stream prefetcher; the paper
// notes sequential fringe accesses are "trivially handled" by one).
func (p *Port) trainPrefetch(la uint64) {
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		if la == s.lastLine {
			return // same line, no retrain
		}
		if la == s.lastLine+1 {
			s.lastLine = la
			if s.conf < 4 {
				s.conf++
			}
			if s.conf >= 2 {
				for k := 1; k <= p.h.cfg.PrefetchDegree; k++ {
					nl := la + uint64(k)
					if p.l2.present(nl) {
						continue
					}
					p.h.Stats.Prefetches++
					if !p.h.l3.lookup(nl, false) {
						p.h.dramFree += p.h.cfg.DRAMCyclesPerLine
						p.installL3(nl)
					}
					if ev, had, dirty := p.l2.install(nl, false); had {
						if dirty {
							p.h.Stats.Writebacks++
						}
						p.l1.invalidate(ev)
						p.markAbsent(ev)
					}
					p.markPresent(nl)
				}
			}
			return
		}
	}
	// New stream.
	s := &p.streams[p.nextStr]
	p.nextStr = (p.nextStr + 1) % numStreams
	*s = stream{lastLine: la, conf: 0, valid: true}
}
