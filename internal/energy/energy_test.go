package energy

import (
	"testing"

	"pipette/internal/cache"
	"pipette/internal/core"
)

func TestComputeLinearInEvents(t *testing.T) {
	p := DefaultParams()
	cs := []core.Stats{{Uops: 100, RegReads: 200, RegWrites: 100}}
	hs := cache.Stats{L1Hits: 50, L2Hits: 20, L3Hits: 10, DRAMAccesses: 5}
	b1 := Compute(p, cs, hs, 1000)
	cs2 := []core.Stats{{Uops: 200, RegReads: 400, RegWrites: 200}}
	hs2 := cache.Stats{L1Hits: 100, L2Hits: 40, L3Hits: 20, DRAMAccesses: 10}
	b2 := Compute(p, cs2, hs2, 1000)
	if b2.CoreDyn != 2*b1.CoreDyn {
		t.Fatalf("core dyn not linear: %v vs %v", b2.CoreDyn, b1.CoreDyn)
	}
	if b2.CacheDyn != 2*b1.CacheDyn || b2.DRAMDyn != 2*b1.DRAMDyn {
		t.Fatalf("cache/dram not linear")
	}
	if b2.Static != b1.Static {
		t.Fatalf("static must depend on cycles only")
	}
}

func TestStaticScalesWithCoresAndCycles(t *testing.T) {
	p := DefaultParams()
	one := Compute(p, make([]core.Stats, 1), cache.Stats{}, 1000).Static
	four := Compute(p, make([]core.Stats, 4), cache.Stats{}, 1000).Static
	if four <= one {
		t.Fatal("static energy must grow with core count")
	}
	long := Compute(p, make([]core.Stats, 1), cache.Stats{}, 2000).Static
	if long != 2*one {
		t.Fatalf("static not linear in cycles: %v vs %v", long, one)
	}
}

func TestTotalIsSum(t *testing.T) {
	b := Breakdown{CoreDyn: 1, CacheDyn: 2, DRAMDyn: 3, Static: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %v", b.Total())
	}
}
