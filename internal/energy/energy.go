// Package energy models system energy with per-event costs plus static
// power, standing in for the paper's McPAT + DDR3L methodology. Absolute
// joules are not meaningful; the model preserves the relative breakdowns of
// Fig. 12 (core dynamic vs. static vs. cache vs. DRAM) because every variant
// is charged from the same event counts.
package energy

import (
	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/telemetry"
)

// Params are per-event energies in picojoules and per-cycle static power in
// picojoules/cycle, loosely calibrated to 22 nm class numbers.
type Params struct {
	UopPJ      float64 // decode+schedule+execute a µop
	RegReadPJ  float64
	RegWritePJ float64
	L1PJ       float64
	L2PJ       float64
	L3PJ       float64
	DRAMPJ     float64

	CoreStaticPJ   float64 // per core per cycle
	UncoreStaticPJ float64 // shared L3 + NoC per cycle
}

// DefaultParams returns the calibration used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		UopPJ:      22,
		RegReadPJ:  1.5,
		RegWritePJ: 2.5,
		L1PJ:       25,
		L2PJ:       60,
		L3PJ:       180,
		DRAMPJ:     2600,

		CoreStaticPJ:   220,
		UncoreStaticPJ: 140,
	}
}

// Breakdown is the Fig. 12 decomposition, in picojoules.
type Breakdown struct {
	CoreDyn  float64 // µops + register file
	CacheDyn float64 // L1/L2/L3 accesses
	DRAMDyn  float64
	Static   float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 { return b.CoreDyn + b.CacheDyn + b.DRAMDyn + b.Static }

// Report converts the breakdown into the run-report schema.
func (b Breakdown) Report() *telemetry.EnergyReport {
	return &telemetry.EnergyReport{
		CoreDyn: b.CoreDyn, CacheDyn: b.CacheDyn, DRAMDyn: b.DRAMDyn,
		Static: b.Static, Total: b.Total(),
	}
}

// Compute charges the run's event counts. cycles is the wall-clock of the
// run; every instantiated core pays static power for the whole run.
func Compute(p Params, cores []core.Stats, cs cache.Stats, cycles uint64) Breakdown {
	var b Breakdown
	for _, c := range cores {
		b.CoreDyn += float64(c.Uops)*p.UopPJ +
			float64(c.RegReads)*p.RegReadPJ +
			float64(c.RegWrites)*p.RegWritePJ
	}
	b.CacheDyn = float64(cs.L1Hits+cs.L2Hits+cs.L3Hits+cs.DRAMAccesses)*p.L1PJ +
		float64(cs.L2Hits+cs.L3Hits+cs.DRAMAccesses)*p.L2PJ +
		float64(cs.L3Hits+cs.DRAMAccesses+cs.Prefetches)*p.L3PJ
	b.DRAMDyn = float64(cs.DRAMAccesses+cs.Prefetches+cs.Writebacks) * p.DRAMPJ
	b.Static = float64(cycles) * (float64(len(cores))*p.CoreStaticPJ + p.UncoreStaticPJ)
	return b
}
