package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	a := m.Alloc(64, 8)
	m.Write(a, 8, 0x1122334455667788)
	if got := m.Read(a, 8); got != 0x1122334455667788 {
		t.Fatalf("read64 = %#x", got)
	}
	if got := m.Read(a, 4); got != 0x55667788 {
		t.Fatalf("read32 low = %#x", got)
	}
	if got := m.Read(a+4, 4); got != 0x11223344 {
		t.Fatalf("read32 high = %#x", got)
	}
	if got := m.Read(a, 1); got != 0x88 {
		t.Fatalf("read8 = %#x", got)
	}
	m.Write(a+1, 1, 0xFF)
	if got := m.Read(a, 8); got != 0x112233445566FF88 {
		t.Fatalf("byte write = %#x", got)
	}
}

func TestAllocAlignment(t *testing.T) {
	m := New()
	a := m.Alloc(3, 8)
	b := m.Alloc(8, 64)
	if a%8 != 0 {
		t.Errorf("a=%#x not 8-aligned", a)
	}
	if b%64 != 0 {
		t.Errorf("b=%#x not 64-aligned", b)
	}
	if b < a+3 {
		t.Errorf("allocations overlap: a=%#x b=%#x", a, b)
	}
}

func TestAllocBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New().Alloc(8, 3)
}

func TestChunkCrossing(t *testing.T) {
	m := New()
	addr := uint64(chunkSize) - 3 // crosses the first chunk boundary
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("cross-chunk = %#x", got)
	}
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	m.WriteBytes(addr-50, buf)
	out := make([]byte, 100)
	m.ReadBytes(addr-50, out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("byte %d = %d, want %d", i, out[i], buf[i])
		}
	}
}

func TestWords(t *testing.T) {
	m := New()
	a := m.AllocWords(4)
	m.WriteWords(a, []uint64{1, 2, 3, 4})
	ws := m.ReadWords(a, 4)
	for i, w := range ws {
		if w != uint64(i+1) {
			t.Fatalf("word %d = %d", i, w)
		}
	}
	m.WriteWords32(a, []uint32{9, 8})
	if m.Read32(a) != 9 || m.Read32(a+4) != 8 {
		t.Fatal("WriteWords32 wrong")
	}
}

// Property: a write followed by a read of the same width and address returns
// the value truncated to the width.
func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, wsel uint8) bool {
		n := []int{1, 2, 4, 8}[wsel%4]
		addr &= 0x3FFFFFF
		m.Write(addr, n, v)
		want := v
		if n < 8 {
			want = v & ((1 << (8 * uint(n))) - 1)
		}
		return m.Read(addr, n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New()
	if m.Read64(0x123456) != 0 {
		t.Fatal("fresh memory not zero")
	}
}

func TestBrkGrows(t *testing.T) {
	m := New()
	b0 := m.Brk()
	m.Alloc(1000, 8)
	if m.Brk() < b0+1000 {
		t.Fatal("brk did not grow")
	}
}
