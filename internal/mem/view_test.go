package mem

import "testing"

func TestPeekMissingChunkReadsZero(t *testing.T) {
	m := New()
	if got := m.Peek(0x1000, 8); got != 0 {
		t.Fatalf("Peek of untouched memory = %#x, want 0", got)
	}
	// Peek must not create the chunk: a later StateHash-relevant walk of the
	// chunk map should still see pristine memory.
	if n := len(m.chunks); n != 0 {
		t.Fatalf("Peek materialized %d chunks", n)
	}
	m.Write(0x1000, 8, 0xdeadbeef)
	if got := m.Peek(0x1000, 8); got != 0xdeadbeef {
		t.Fatalf("Peek after write = %#x, want 0xdeadbeef", got)
	}
}

func TestPeekStraddlesChunks(t *testing.T) {
	m := New()
	edge := uint64(chunkSize) - 4
	m.Write(edge, 8, 0x1122334455667788)
	if got, want := m.Peek(edge, 8), m.Read(edge, 8); got != want {
		t.Fatalf("straddling Peek = %#x, Read = %#x", got, want)
	}
}

func TestViewReadOverlaysOwnStores(t *testing.T) {
	m := New()
	m.Write(64, 8, 0xaaaaaaaaaaaaaaaa)
	v := NewView(m)

	v.Write(64, 8, 0x1111111111111111)
	if got := v.Read(64, 8); got != 0x1111111111111111 {
		t.Fatalf("view read after own store = %#x", got)
	}
	// Partial overlap: a later 4-byte store patches the low half only.
	v.Write(64, 4, 0x22222222)
	if got := v.Read(64, 8); got != 0x1111111122222222 {
		t.Fatalf("view read after partial store = %#x", got)
	}
	// The shared memory stays frozen until Flush.
	if got := m.Read(64, 8); got != 0xaaaaaaaaaaaaaaaa {
		t.Fatalf("store leaked to shared memory before Flush: %#x", got)
	}
	v.Flush()
	if got := m.Read(64, 8); got != 0x1111111122222222 {
		t.Fatalf("flushed value = %#x", got)
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending after Flush = %d", v.Pending())
	}
}

func TestViewAtomicsApplyAtFlushInOrder(t *testing.T) {
	m := New()
	m.Write(0, 8, 10)
	v := NewView(m)

	var old1, old2 uint64
	v.Atomic(OpFetchAdd, 0, 5, 0, &old1)
	v.Atomic(OpFetchMin, 0, 3, 0, &old2)
	// Atomics are not overlaid mid-cycle: reads still see the frozen image.
	if got := v.Read(0, 8); got != 10 {
		t.Fatalf("mid-cycle read past buffered atomics = %d, want 10", got)
	}
	v.Flush()
	if old1 != 10 {
		t.Fatalf("fetch-add old = %d, want 10", old1)
	}
	if old2 != 15 {
		t.Fatalf("fetch-min old = %d, want 15 (sees the earlier add)", old2)
	}
	if got := m.Read(0, 8); got != 3 {
		t.Fatalf("final memory = %d, want 3", got)
	}
}

func TestViewCasAndFetchOr(t *testing.T) {
	m := New()
	m.Write(8, 8, 7)
	v := NewView(m)

	var old uint64
	v.Atomic(OpCas, 8, 7, 42, &old) // matches: swap in 42
	v.Atomic(OpCas, 8, 7, 99, nil)  // stale expectation: must not swap
	v.Atomic(OpFetchOr, 8, 0x80, 0, nil)
	v.Flush()
	if old != 7 {
		t.Fatalf("CAS old = %d, want 7", old)
	}
	if got := m.Read(8, 8); got != 42|0x80 {
		t.Fatalf("final memory = %#x, want %#x", got, uint64(42|0x80))
	}
}

// TestViewCrossViewVisibility pins the commit-order contract: two views over
// the same memory never see each other's buffered writes, and flushing in
// canonical order makes the later flush win.
func TestViewCrossViewVisibility(t *testing.T) {
	m := New()
	a, b := NewView(m), NewView(m)
	a.Write(16, 8, 1)
	b.Write(16, 8, 2)
	if got := b.Read(16, 8); got != 2 {
		t.Fatalf("view b sees %d, want its own store 2", got)
	}
	a.Flush()
	b.Flush()
	if got := m.Read(16, 8); got != 2 {
		t.Fatalf("last-flushed view must win: memory = %d", got)
	}
}
